package alpacomm_test

import (
	"testing"

	alpacomm "alpacomm"
)

// TestPublicReshardAPI exercises the full public flow: cluster, meshes,
// specs, task, plan, simulate, execute, verify.
func TestPublicReshardAPI(t *testing.T) {
	cluster := alpacomm.AWSP3Cluster(2)
	meshA, err := cluster.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	meshB, err := cluster.Slice([]int{2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := alpacomm.NewShape(256, 256)
	if err != nil {
		t.Fatal(err)
	}
	src, err := alpacomm.ParseSpec("S01R")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := alpacomm.ParseSpec("S0S1")
	if err != nil {
		t.Fatal(err)
	}
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, meshA, src, meshB, dst)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := alpacomm.PlanReshard(task, alpacomm.ReshardOptions{
		Strategy:  alpacomm.StrategyBroadcast,
		Scheduler: alpacomm.SchedulerEnsemble,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.EffectiveGbps <= 0 {
		t.Errorf("degenerate simulation: %+v", res)
	}
	srcBufs, err := task.Src.Buffers()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range srcBufs {
		b.FillLinear()
	}
	dstBufs, err := task.Dst.Buffers()
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Execute(srcBufs, dstBufs); err != nil {
		t.Fatal(err)
	}
	for dev, b := range dstBufs {
		if ok, _, _, _ := b.VerifyLinear(); !ok {
			t.Errorf("device %d holds wrong data", dev)
		}
	}
}

func gptJob(t *testing.T, strategy alpacomm.Strategy, sched alpacomm.PipelineKind, overlap bool) *alpacomm.TrainingReport {
	t.Helper()
	pc := alpacomm.ParallelConfig{DP: 2, OP: 2, PP: 2}
	w, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	job := alpacomm.TrainingJob{
		Cluster:  alpacomm.AWSP3Cluster(2),
		Device:   alpacomm.V100(),
		Workload: w,
		Parallel: pc,
		Schedule: sched,
		Overlap:  overlap,
		Reshard:  alpacomm.ReshardOptions{Strategy: strategy, Scheduler: alpacomm.SchedulerEnsemble, Seed: 1},
	}
	rep, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTrainingJobGPTOrdering pins Fig. 7a's ordering on a reduced batch:
// Send/Recv < Alpa <= Ours <= Signal.
func TestTrainingJobGPTOrdering(t *testing.T) {
	sr := gptJob(t, alpacomm.StrategySendRecv, alpacomm.Schedule1F1B, false)
	alpa := gptJob(t, alpacomm.StrategyAlpa, alpacomm.Schedule1F1B, false)
	ours := gptJob(t, alpacomm.StrategyBroadcast, alpacomm.ScheduleEager1F1B, true)
	signal := gptJob(t, alpacomm.StrategySignal, alpacomm.Schedule1F1B, false)
	if !(sr.TFLOPS < alpa.TFLOPS) {
		t.Errorf("send/recv (%v) should lose to alpa (%v)", sr.TFLOPS, alpa.TFLOPS)
	}
	if !(alpa.TFLOPS < ours.TFLOPS) {
		t.Errorf("alpa (%v) should lose to ours (%v)", alpa.TFLOPS, ours.TFLOPS)
	}
	if ours.TFLOPS > signal.TFLOPS*1.01 {
		t.Errorf("ours (%v) cannot beat the signal bound (%v)", ours.TFLOPS, signal.TFLOPS)
	}
	if ours.TFLOPS < signal.TFLOPS*0.75 {
		t.Errorf("ours (%v) should reach >=75%% of signal (%v)", ours.TFLOPS, signal.TFLOPS)
	}
	// Paper: ~1.1x over Alpa for GPT.
	if r := ours.TFLOPS / alpa.TFLOPS; r < 1.05 || r > 1.6 {
		t.Errorf("ours/alpa = %v, expected ≈ 1.1-1.5x", r)
	}
}

// TestTrainingJobUTransSpeedup pins Fig. 7c: eager-1F1B+overlap recovers a
// large fraction of the signal bound on the comm-bound U-Transformer and
// beats the blocking baseline by ≈1.5x.
func TestTrainingJobUTransSpeedup(t *testing.T) {
	pc := alpacomm.ParallelConfig{DP: 2, OP: 4, PP: 2}
	w, err := alpacomm.NewUTransWorkload(alpacomm.UTrans1B(), pc, alpacomm.Float16, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(strategy alpacomm.Strategy, sched alpacomm.PipelineKind, overlap bool) float64 {
		job := alpacomm.TrainingJob{
			Cluster:  alpacomm.AWSP3Cluster(4),
			Device:   alpacomm.V100Conv(),
			Workload: w,
			Parallel: pc,
			Schedule: sched,
			Overlap:  overlap,
			Reshard:  alpacomm.ReshardOptions{Strategy: strategy, Scheduler: alpacomm.SchedulerEnsemble, Seed: 1},
		}
		rep, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.TFLOPS
	}
	alpa := run(alpacomm.StrategyAlpa, alpacomm.Schedule1F1B, false)
	ours := run(alpacomm.StrategyBroadcast, alpacomm.ScheduleEager1F1B, true)
	signal := run(alpacomm.StrategySignal, alpacomm.Schedule1F1B, false)
	if r := ours / alpa; r < 1.25 {
		t.Errorf("ours/alpa = %v, expected ≈ 1.5x on the U-Transformer", r)
	}
	if ours < signal*0.75 {
		t.Errorf("ours (%v) should reach >=75%% of signal (%v)", ours, signal)
	}
}

func TestTrainingJobValidation(t *testing.T) {
	pc := alpacomm.ParallelConfig{DP: 2, OP: 2, PP: 2}
	w, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	job := alpacomm.TrainingJob{Cluster: alpacomm.AWSP3Cluster(1), Device: alpacomm.V100(), Workload: w, Parallel: pc}
	if _, err := job.Run(); err == nil {
		t.Error("cluster too small should fail")
	}
	job.Cluster = alpacomm.AWSP3Cluster(2)
	job.Parallel = alpacomm.ParallelConfig{DP: 2, OP: 2, PP: 1}
	if _, err := job.Run(); err == nil {
		t.Error("stage-count mismatch should fail")
	}
	job.Workload = nil
	if _, err := job.Run(); err == nil {
		t.Error("nil workload should fail")
	}
}

// TestEagerMemoryAccounting cross-checks the Table 1 helpers exposed on
// the facade.
func TestEagerMemoryAccounting(t *testing.T) {
	m := alpacomm.GPTLayerMemory(1024, 12288, 2, 8)
	if m.ActivationBytes != 48<<20 {
		t.Errorf("activation bytes = %d", m.ActivationBytes)
	}
	if alpacomm.EagerMemoryIncreaseBytes(2, 0, m.ActivationBytes) != m.ActivationBytes {
		t.Error("2-stage eager increase at stage 0 should be one activation")
	}
}

// TestFig9Ordering pins the ablation: Broadcast < Overlap < Eager at 32
// micro-batches, and the gaps shrink at 4 micro-batches.
func TestFig9Ordering(t *testing.T) {
	rows, err := alpacomm.Fig9Rows()
	if err != nil {
		t.Fatal(err)
	}
	val := func(mb int, method string) float64 {
		for _, r := range rows {
			if r.MicroBatches == mb && r.Method == method {
				return r.TFLOPS
			}
		}
		t.Fatalf("missing %d/%s", mb, method)
		return 0
	}
	for _, mb := range []int{4, 32} {
		b, o, e := val(mb, "Broadcast"), val(mb, "Overlap"), val(mb, "Eager-1F1B")
		if !(b < o && o < e) {
			t.Errorf("mb=%d: want Broadcast < Overlap < Eager, got %v %v %v", mb, b, o, e)
		}
	}
	// The eager-over-overlap gain is larger in the steady-state regime.
	gain4 := val(4, "Eager-1F1B") / val(4, "Overlap")
	gain32 := val(32, "Eager-1F1B") / val(32, "Overlap")
	if gain32 < gain4 {
		t.Errorf("eager gain should grow with micro-batches: %v (4) vs %v (32)", gain4, gain32)
	}
}

// TestDeepPipelineGPT exercises pp=4 (beyond the paper's Table 3): a
// 4-stage GPT with eager-1F1B must still beat blocking 1F1B and respect
// the signal bound.
func TestDeepPipelineGPT(t *testing.T) {
	pc := alpacomm.ParallelConfig{DP: 1, OP: 4, PP: 4}
	w, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(strategy alpacomm.Strategy, sched alpacomm.PipelineKind, overlap bool) *alpacomm.TrainingReport {
		job := alpacomm.TrainingJob{
			Cluster:  alpacomm.AWSP3Cluster(4),
			Device:   alpacomm.V100(),
			Workload: w,
			Parallel: pc,
			Schedule: sched,
			Overlap:  overlap,
			Reshard:  alpacomm.ReshardOptions{Strategy: strategy, Scheduler: alpacomm.SchedulerEnsemble, Seed: 1},
		}
		rep, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	blocking := run(alpacomm.StrategyBroadcast, alpacomm.Schedule1F1B, false)
	ours := run(alpacomm.StrategyBroadcast, alpacomm.ScheduleEager1F1B, true)
	signal := run(alpacomm.StrategySignal, alpacomm.Schedule1F1B, false)
	if !(ours.TFLOPS > blocking.TFLOPS) {
		t.Errorf("eager+overlap (%v) should beat blocking (%v) at pp=4", ours.TFLOPS, blocking.TFLOPS)
	}
	if ours.TFLOPS > signal.TFLOPS*1.01 {
		t.Errorf("ours (%v) cannot beat signal (%v)", ours.TFLOPS, signal.TFLOPS)
	}
	// Eager warm-up depths decrease along the pipeline.
	for s := 0; s+1 < 4; s++ {
		if ours.PeakActivations[s] < ours.PeakActivations[s+1] {
			t.Errorf("peak activations should decrease along stages: %v", ours.PeakActivations)
		}
	}
}

// TestIntraMeshFacade exercises the §2.1 intra-mesh conversion through the
// public API.
func TestIntraMeshFacade(t *testing.T) {
	cluster := alpacomm.AWSP3Cluster(1)
	m, err := cluster.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	shape, _ := alpacomm.NewShape(64, 64)
	src, _ := alpacomm.ParseSpec("S0S1")
	dst, _ := alpacomm.ParseSpec("RR")
	task, err := alpacomm.NewIntraMeshTask(shape, alpacomm.Float32, m, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if task.CollectiveKind() != "all-gather" {
		t.Errorf("kind = %s", task.CollectiveKind())
	}
	res, err := task.Simulate()
	if err != nil || res.Makespan <= 0 {
		t.Errorf("simulate: %+v, %v", res, err)
	}
}
