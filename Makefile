# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test lint lint-fix fmt bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repo's own invariant suite (see internal/analysis and the
# README "Static analysis" section) plus go vet. CI layers pinned
# staticcheck and govulncheck on top; they are not required locally.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/alpalint ./...

# lint-fix applies alpalint's mechanical rewrites (sorted map iteration,
# capacity hints) in place, then re-runs the suite.
lint-fix:
	$(GO) run ./cmd/alpalint -fix ./...
	$(GO) run ./cmd/alpalint ./...

fmt:
	gofmt -w .

bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .
