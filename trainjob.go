package alpacomm

import (
	"context"
	"fmt"

	"alpacomm/internal/model"
	"alpacomm/internal/pipeline"
	"alpacomm/internal/sharding"
)

// TrainingJob assembles the full §5.2 end-to-end experiment: a workload
// partitioned over pipeline-stage meshes sliced from a cluster, a
// communication configuration for the cross-mesh resharding at every stage
// boundary, and a pipeline schedule.
type TrainingJob struct {
	// Cluster is the hardware topology to run on; must hold
	// Parallel.TotalDevices() devices. Any Topology implementation works:
	// the homogeneous p3-style Cluster or a heterogeneous HeteroCluster.
	Cluster Topology
	// Device is the accelerator throughput model.
	Device DeviceSpec
	// Workload is the partitioned model.
	Workload *Workload
	// Parallel is the (dp, op, pp) configuration; dp·op devices per stage.
	Parallel ParallelConfig
	// Schedule is the pipeline schedule to run.
	Schedule PipelineKind
	// Overlap enables communication/computation overlapping (§4).
	Overlap bool
	// SplitBackward enables backward weight delaying (§4).
	SplitBackward bool
	// Reshard configures the boundary communication (§3).
	Reshard ReshardOptions
	// Planner is the planning session every boundary plans through: its
	// caches collapse congruent boundaries (and, when shared across jobs,
	// congruent jobs) to one computation, and its context plumbing makes
	// RunContext cancellable mid-search. Nil means the job assembles a
	// private session from the legacy Cache/Autotune* fields below.
	Planner *Planner
	// Cache memoizes boundary resharding plans. Structurally identical
	// stage boundaries (the common case: every GPT boundary reshards the
	// same tensor between congruent meshes) plan once and share the timing.
	// Nil means Run uses a private per-run cache; share one cache across
	// jobs to also reuse plans between runs on congruent topologies.
	//
	// Deprecated: set Planner (e.g. NewPlanner(WithCache(c))) instead;
	// ignored when Planner is non-nil.
	Cache *ReshardCache
	// Autotune searches the full strategy x scheduler grid per distinct
	// boundary (deterministically, in parallel) instead of using Reshard's
	// fixed Strategy/Scheduler.
	Autotune bool
	// AutotuneWorkers bounds the autotuner's concurrency (0 = GOMAXPROCS).
	//
	// Deprecated: set Planner (e.g. NewPlanner(WithParallelism(n)))
	// instead; ignored when Planner is non-nil.
	AutotuneWorkers int
}

// TrainingReport is the outcome of one simulated training iteration.
type TrainingReport struct {
	// IterationTime is the simulated wall-clock of one iteration, seconds.
	IterationTime float64
	// TFLOPS is the paper's throughput metric: aggregated model FLOPs per
	// second across the whole cluster, in TFLOPS (Fig. 7's y-axis).
	TFLOPS float64
	// PerGPUTFLOPS is TFLOPS divided by the device count.
	PerGPUTFLOPS float64
	// FwdCommTime[s] is the simulated resharding time of boundary s per
	// micro-batch (forward direction).
	FwdCommTime []float64
	// PeakActivations[s] is the schedule's per-stage activation memory in
	// micro-batches.
	PeakActivations []int
	// Pipeline is the underlying pipeline simulation.
	Pipeline *PipelineResult
	// StageMeshes are the device meshes assigned to each stage.
	StageMeshes []*Mesh
}

// StageMeshes slices one (dp, op) mesh per pipeline stage out of the
// cluster, stages occupying consecutive device ranges (stage 0 on the
// first dp·op devices, and so on — Alpa's mesh slicing).
func (j *TrainingJob) StageMeshes() ([]*Mesh, error) {
	pc := j.Parallel
	if !pc.Valid() {
		return nil, fmt.Errorf("alpacomm: invalid parallel config %+v", pc)
	}
	if pc.TotalDevices() > j.Cluster.NumDevices() {
		return nil, fmt.Errorf("alpacomm: config needs %d devices, cluster has %d", pc.TotalDevices(), j.Cluster.NumDevices())
	}
	meshes := make([]*Mesh, pc.PP)
	for s := 0; s < pc.PP; s++ {
		m, err := j.Cluster.Slice([]int{pc.DP, pc.OP}, s*pc.DevicesPerStage())
		if err != nil {
			return nil, err
		}
		meshes[s] = m
	}
	return meshes, nil
}

// boundaryTask decomposes one workload boundary tensor into a resharding
// task between its stage meshes.
func (j *TrainingJob) boundaryTask(meshes []*Mesh, bt model.BoundaryTensor) (*ReshardTask, error) {
	srcSpec, err := sharding.Parse(bt.SrcSpec)
	if err != nil {
		return nil, err
	}
	dstSpec, err := sharding.Parse(bt.DstSpec)
	if err != nil {
		return nil, err
	}
	task, err := sharding.NewTask(bt.Shape, j.Workload.DType, meshes[bt.Boundary], srcSpec, meshes[bt.Boundary+1], dstSpec)
	if err != nil {
		return nil, fmt.Errorf("alpacomm: boundary %d tensor %q: %v", bt.Boundary, bt.Name, err)
	}
	return task, nil
}

// boundaryCommTime plans and simulates the resharding of every tensor
// crossing boundary s (stage s -> s+1) through the session and returns the
// summed makespan per micro-batch. Plans come from the session cache, so
// boundaries that reshard the same tensor between congruent meshes are
// planned once.
func (j *TrainingJob) boundaryCommTime(ctx context.Context, p *Planner, meshes []*Mesh, s int) (float64, error) {
	var total float64
	for _, bt := range j.Workload.Boundaries {
		if bt.Boundary != s {
			continue
		}
		task, err := j.boundaryTask(meshes, bt)
		if err != nil {
			return 0, err
		}
		if j.Autotune {
			res, err := p.Autotune(ctx, task, j.Reshard)
			if err != nil {
				return 0, err
			}
			total += res.BestSim.Makespan
			continue
		}
		sim, err := p.Simulate(ctx, task, j.Reshard)
		if err != nil {
			return 0, err
		}
		total += sim.Makespan
	}
	return total, nil
}

// Run simulates one training iteration and reports throughput. It cannot
// be interrupted; long autotuned runs should use RunContext.
func (j *TrainingJob) Run() (*TrainingReport, error) {
	return j.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation threaded through every
// boundary's planning and autotuning, so a deadline aborts a deep job's
// grid searches mid-candidate instead of riding them out.
func (j *TrainingJob) RunContext(ctx context.Context) (*TrainingReport, error) {
	if j.Workload == nil {
		return nil, fmt.Errorf("alpacomm: nil workload")
	}
	if err := j.Workload.Validate(); err != nil {
		return nil, err
	}
	pc := j.Parallel
	if len(j.Workload.Stages) != pc.PP {
		return nil, fmt.Errorf("alpacomm: workload has %d stages but pp=%d", len(j.Workload.Stages), pc.PP)
	}
	meshes, err := j.StageMeshes()
	if err != nil {
		return nil, err
	}

	// Per-stage compute time: the stage processes dp·microBatch samples on
	// dp·op devices, i.e. the per-replica FLOPs spread over op devices.
	eff := j.Device.Effective(j.Workload.DType)
	fwd := make([]float64, pc.PP)
	bwd := make([]float64, pc.PP)
	for s, st := range j.Workload.Stages {
		fwd[s] = st.FlopsFwd / (float64(pc.OP) * eff)
		bwd[s] = st.FlopsBwd / (float64(pc.OP) * eff)
	}

	// Per-boundary communication from simulated resharding plans. The
	// backward gradient has the same shape; reuse the forward time.
	planner := j.session()
	comm := make([]float64, pc.PP-1)
	for s := 0; s < pc.PP-1; s++ {
		c, err := j.boundaryCommTime(ctx, planner, meshes, s)
		if err != nil {
			return nil, err
		}
		comm[s] = c
	}

	cfg := pipeline.Config{
		Stages:        pc.PP,
		MicroBatches:  j.Workload.NumMicroBatches,
		Schedule:      j.Schedule,
		FwdTime:       fwd,
		BwdTime:       bwd,
		Overlap:       j.Overlap,
		SplitBackward: j.SplitBackward,
	}
	if pc.PP > 1 {
		cfg.FwdCommTime = comm
	}
	pres, err := pipeline.Simulate(cfg)
	if err != nil {
		return nil, err
	}

	// Aggregated throughput: model FLOPs across all dp replicas per
	// iteration, divided by iteration time.
	totalFlops := j.Workload.TotalFlopsPerIteration() * float64(pc.DP)
	report := &TrainingReport{
		IterationTime:   pres.Makespan,
		TFLOPS:          totalFlops / pres.Makespan / 1e12,
		FwdCommTime:     comm,
		PeakActivations: pres.PeakActivations,
		Pipeline:        pres,
		StageMeshes:     meshes,
	}
	report.PerGPUTFLOPS = report.TFLOPS / float64(pc.TotalDevices())
	return report, nil
}

// GPTLayerMemory evaluates the paper's Table 1 memory formulas.
var GPTLayerMemory = model.GPTLayerMemory

// EagerMemoryIncreaseBytes bounds eager-1F1B's extra activation memory.
var EagerMemoryIncreaseBytes = model.EagerMemoryIncreaseBytes
