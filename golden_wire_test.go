// Cross-format serving parity against the golden fixtures: every reshard
// of testdata/golden_netsim.json and every healthy/degraded row of
// testdata/golden_degraded.json is served through the real HTTP handlers
// over both wire formats (JSON and application/x-alpacomm-plan), and the
// decoded responses must be identical to each other and to the committed
// fixture — proving the pre-serialized serve path and the binary codec
// change the encoding, never the plan.
package alpacomm_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alpacomm/internal/service"
)

// goldenWireTopology maps a fixture preset name to the wire reference that
// builds the same topology the fixture was captured on (see goldenPresets:
// p3 = AWSP3Cluster(4), dgx-a100 = DGXA100Cluster(2), mixed =
// MixedP3DGXCluster(2,2,2) — the registry's mixed preset splits hosts
// half/half, so 4 hosts at oversubscription 2 is the same cluster).
func goldenWireTopology(t *testing.T, preset string, degraded bool) service.TopologyRef {
	t.Helper()
	switch preset {
	case "p3":
		return service.TopologyRef{Name: "p3", Hosts: 4}
	case "dgx-a100":
		hosts := 2
		if degraded {
			// goldenDegradedPresets uses a third DGX host so link-down
			// scenarios have a detour.
			hosts = 3
		}
		return service.TopologyRef{Name: "dgx-a100", Hosts: hosts}
	case "mixed":
		return service.TopologyRef{Name: "mixed", Hosts: 4, Oversubscription: 2}
	default:
		t.Fatalf("unknown golden preset %q", preset)
		return service.TopologyRef{}
	}
}

// goldenWireOptions maps a fixture strategy name to the wire form of the
// exact options the fixture was built with (see goldenStrategies).
func goldenWireOptions(t *testing.T, strategy string) service.PlanOptions {
	t.Helper()
	switch strategy {
	case "send/recv":
		return service.PlanOptions{Strategy: "send/recv", Scheduler: "greedy-load"}
	case "broadcast":
		return service.PlanOptions{Strategy: "broadcast", Scheduler: "ensemble", Seed: 1, DFSNodes: 20000, Chunks: 8}
	case "alpa":
		return service.PlanOptions{Strategy: "alpa", Scheduler: "greedy-load"}
	default:
		t.Fatalf("unknown golden strategy %q", strategy)
		return service.PlanOptions{}
	}
}

// goldenWireRequest is the golden boundary (see buildGolden) as a wire
// request: (128,128,8) fp32, (2,4) meshes at devices 0 and 8.
func goldenWireRequest(topo service.TopologyRef, opts service.PlanOptions, faults *service.FaultsRef) *service.PlanRequest {
	return &service.PlanRequest{
		Topology: topo,
		Faults:   faults,
		Shape:    []int{128, 128, 8},
		Src:      service.Endpoint{Mesh: "2x4@0", Spec: "RS01R"},
		Dst:      service.Endpoint{Mesh: "2x4@8", Spec: "S01RR"},
		Options:  opts,
	}
}

// serveBothFormats requests the same plan over JSON and binary and asserts
// the decoded responses are identical; it returns the (shared) response.
func serveBothFormats(t *testing.T, jsonClient, binClient *service.Client, req *service.PlanRequest) *service.PlanResponse {
	t.Helper()
	ctx := context.Background()
	jr, err := jsonClient.PlanV2(ctx, req)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	br, err := binClient.PlanV2(ctx, req)
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	// The binary request is a cache hit of the JSON one; hit vs fill is not
	// a format property, and neither request coalesced, so both flags are
	// false already — compare everything.
	if !reflect.DeepEqual(jr, br) {
		t.Fatalf("wire formats decode differently:\n json %+v\n bin  %+v", jr, br)
	}
	return jr
}

// checkGoldenPlan asserts a served response matches a fixture's plan:
// sender assignment, launch order and makespan (effGbps/numOps where the
// fixture records them, signalled by effGbps > 0).
func checkGoldenPlan(t *testing.T, resp *service.PlanResponse,
	senderOf map[int]int, order []int, makespan, effGbps float64, numOps int) {
	t.Helper()
	if len(resp.Senders) != len(senderOf) {
		t.Fatalf("served %d units, fixture has %d", len(resp.Senders), len(senderOf))
	}
	for i, d := range resp.Senders {
		if d != senderOf[i] {
			t.Errorf("unit %d: served sender %d, fixture %d", i, d, senderOf[i])
		}
	}
	if !reflect.DeepEqual(resp.Order, order) {
		t.Errorf("served order %v, fixture %v", resp.Order, order)
	}
	if resp.MakespanSeconds != makespan {
		t.Errorf("served makespan %v, fixture %v", resp.MakespanSeconds, makespan)
	}
	if effGbps > 0 {
		if resp.EffectiveGbps != effGbps {
			t.Errorf("served eff_gbps %v, fixture %v", resp.EffectiveGbps, effGbps)
		}
	}
	if numOps > 0 && resp.NumOps != numOps {
		t.Errorf("served num_ops %d, fixture %d", resp.NumOps, numOps)
	}
}

func newGoldenWireClients(t *testing.T) (*service.Client, *service.Client) {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{}))
	t.Cleanup(ts.Close)
	return service.NewClient(ts.URL, nil), service.NewClient(ts.URL, nil, service.WithBinary())
}

// TestGoldenWireParity serves every reshard fixture of golden_netsim.json
// over both wire formats.
func TestGoldenWireParity(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_netsim.json"))
	if err != nil {
		t.Fatalf("missing golden fixtures (run go test -run TestGolden -update .): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	jsonClient, binClient := newGoldenWireClients(t)
	for _, r := range g.Reshards {
		t.Run(r.Preset+"/"+r.Strategy, func(t *testing.T) {
			req := goldenWireRequest(
				goldenWireTopology(t, r.Preset, false),
				goldenWireOptions(t, r.Strategy), nil)
			resp := serveBothFormats(t, jsonClient, binClient, req)
			checkGoldenPlan(t, resp, r.SenderOf, r.Order, r.Makespan, r.EffGbps, r.NumOps)
		})
	}
}

// TestGoldenWireParityDegraded serves every healthy baseline and every
// (preset, scenario) replan row of golden_degraded.json over both formats;
// the scenario rides the request's faults block.
func TestGoldenWireParityDegraded(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_degraded.json"))
	if err != nil {
		t.Fatalf("missing degraded golden fixtures (run go test -run TestGoldenDegraded -update .): %v", err)
	}
	var g goldenDegradedFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	jsonClient, binClient := newGoldenWireClients(t)
	opts := goldenWireOptions(t, "broadcast") // == goldenDegradedOpts over the wire
	for _, h := range g.Healthy {
		t.Run(h.Preset+"/healthy", func(t *testing.T) {
			req := goldenWireRequest(goldenWireTopology(t, h.Preset, true), opts, nil)
			resp := serveBothFormats(t, jsonClient, binClient, req)
			checkGoldenPlan(t, resp, h.SenderOf, h.Order, h.Makespan, 0, 0)
		})
	}
	for _, r := range g.Rows {
		t.Run(r.Preset+"/"+r.Scenario, func(t *testing.T) {
			req := goldenWireRequest(goldenWireTopology(t, r.Preset, true), opts,
				&service.FaultsRef{Scenario: r.Scenario})
			resp := serveBothFormats(t, jsonClient, binClient, req)
			checkGoldenPlan(t, resp, r.SenderOf, r.Order, r.Makespan, r.EffGbps, 0)
		})
	}
}
