module alpacomm

go 1.24
