package alpacomm_test

import (
	"context"
	"testing"

	alpacomm "alpacomm"
)

// TestChurnTimelineExample keeps the README's "Incremental replanning"
// example compiling and honest: a healthy plan, a parsed timeline replayed
// through ReplanDegradedFrom, and ReplanStats accounting for every step.
func TestChurnTimelineExample(t *testing.T) {
	cluster := alpacomm.AWSP3Cluster(4)
	src, err := cluster.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := cluster.Slice([]int{2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := alpacomm.NewShape(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	sspec, err := alpacomm.ParseSpec("S01R")
	if err != nil {
		t.Fatal(err)
	}
	dspec, err := alpacomm.ParseSpec("S0R")
	if err != nil {
		t.Fatal(err)
	}
	task, err := alpacomm.NewReshardTask(shape, alpacomm.Float32, src, sspec, dst, dspec)
	if err != nil {
		t.Fatal(err)
	}
	// Only the ensemble scheduler pays a search worth warming; the
	// closed-form schedulers replan cold in microseconds anyway.
	opts := alpacomm.ReshardOptions{Scheduler: alpacomm.SchedulerEnsemble, Seed: 1}
	ctx := context.Background()

	planner := alpacomm.NewPlanner(alpacomm.WithTopology(cluster))
	healthy, _, err := planner.Plan(ctx, task, opts)
	if err != nil {
		t.Fatal(err)
	}

	tl, err := alpacomm.ParseChurnTimeline("@0 link:0-1:down | @500ms | @1s host:1:nic=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Steps) != 3 {
		t.Fatalf("timeline has %d steps, want 3", len(tl.Steps))
	}
	prev := alpacomm.FaultSet{}
	var plans []*alpacomm.ReshardPlan
	for _, step := range tl.Steps {
		plan, sim, err := planner.ReplanDegradedFrom(ctx, task, opts, prev, step.Faults)
		if err != nil {
			t.Fatalf("step @%v: %v", step.At, err)
		}
		if sim == nil || sim.Makespan <= 0 {
			t.Fatalf("step @%v: no simulation", step.At)
		}
		plans = append(plans, plan)
		prev = step.Faults
	}
	// The @500ms heal returns the cached healthy plan itself.
	if plans[1] != healthy {
		t.Error("heal step did not hit the healthy cache entry")
	}
	s := planner.ReplanStats()
	if s.Cold != 0 {
		t.Errorf("cold replans = %d, want 0 (every step had an incumbent)", s.Cold)
	}
	if s.WarmIdentity < 1 {
		t.Errorf("warm identity = %d, want >= 1 (the link-down step)", s.WarmIdentity)
	}
	if got := s.CacheHits + s.WarmIdentity + s.WarmSearch + s.WarmRejected + s.WarmInvalid + s.Cold; got != int64(len(tl.Steps)) {
		t.Errorf("replan counters sum to %d, want %d", got, len(tl.Steps))
	}
	// The default registry's churn scenarios are usable the same way.
	for _, name := range []string{alpacomm.ChurnScenarioFlap, alpacomm.ChurnScenarioCascade, alpacomm.ChurnScenarioBrownoutRecovery} {
		scenarioTL, err := alpacomm.DefaultTopologyRegistry().BuildChurnScenario(name, cluster)
		if err != nil {
			t.Fatalf("scenario %s: %v", name, err)
		}
		if len(scenarioTL.Steps) == 0 || !scenarioTL.Steps[len(scenarioTL.Steps)-1].Faults.Empty() {
			t.Errorf("scenario %s must end healed", name)
		}
	}
}
