// Package alpacomm is a Go reproduction of "On Optimizing the
// Communication of Model Parallelism" (MLSys 2023): a library for planning,
// simulating and executing cross-mesh resharding — the communication
// pattern that appears at pipeline-stage boundaries when intra-operator and
// inter-operator model parallelism are combined.
//
// The library has three layers:
//
//   - Resharding: describe a tensor sharded on one device mesh and required
//     under a (possibly different) sharding spec on a disjoint mesh; the
//     planner decomposes it into unit communication tasks, picks senders
//     and a launch order (load balancing + scheduling, §3.2), and carries
//     each unit task with a pipelined broadcast (§3.1). Plans can be timed
//     on a deterministic cluster network model and executed on real buffers.
//
//   - Pipeline schedules: GPipe, 1F1B and the overlapping-friendly
//     eager-1F1B (§4), with communication overlap and backward weight
//     delaying.
//
//   - End-to-end training simulation: analytic GPT and U-Transformer cost
//     models drive the pipeline simulator, with every stage boundary's
//     communication time coming from a resharding plan (§5.2).
//
// Since no GPU cluster is required, the "hardware" is a discrete-event
// model behind the pluggable Topology interface: the paper's homogeneous
// testbed (NVLink intra-host, one 10 Gbps NIC per host, full duplex) is one
// implementation, and HeteroCluster models per-host device counts, NIC
// tiers and oversubscribed fabrics (DGX-A100/InfiniBand-class presets
// included). Every layer — transfer timing, resharding planning, the
// pipeline harness — works against the interface, so new fabrics plug in
// without touching the planner.
//
// The recommended entry point for planning is the Planner session: one
// object owning the topology, caches and defaults, whose Plan / Simulate /
// Autotune / PlanBoundaries methods all take a context.Context and honor
// it end to end (grid searches abort between DFS node-budget slices,
// coalesced cache waits are cancellable). The free functions PlanReshard,
// AutotuneReshard and the hand-wired ReshardCache remain as wrappers.
package alpacomm

import (
	"alpacomm/internal/cluster"
	"alpacomm/internal/intramesh"
	"alpacomm/internal/loadmodel"
	"alpacomm/internal/mesh"
	"alpacomm/internal/model"
	"alpacomm/internal/netsim"
	"alpacomm/internal/pipeline"
	"alpacomm/internal/resharding"
	"alpacomm/internal/schedule"
	"alpacomm/internal/service"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// Cluster hardware model.
type (
	// Topology is the pluggable hardware abstraction every layer plans
	// against: hosts with devices, intra-host links, NIC tiers and an
	// inter-host fabric. Cluster and HeteroCluster implement it.
	Topology = mesh.Topology
	// Cluster is a homogeneous accelerator cluster (hosts x devices).
	Cluster = mesh.Cluster
	// HeteroCluster is a heterogeneous cluster: per-host device counts,
	// interconnects and NIC tiers plus fabric oversubscription.
	HeteroCluster = mesh.HeteroCluster
	// HostSpec describes one host of a heterogeneous cluster.
	HostSpec = mesh.HostSpec
	// Mesh is an n-dimensional logical device array sliced from a topology.
	Mesh = mesh.Mesh
)

// NewCluster builds a cluster from explicit topology parameters.
var NewCluster = mesh.NewCluster

// AWSP3Cluster builds the paper's testbed: hosts x 4 V100, NVLink
// intra-host, 10 Gbps Ethernet between hosts.
var AWSP3Cluster = mesh.AWSP3Cluster

// NewHeteroCluster builds a heterogeneous cluster from per-host specs, a
// cross-host latency and a fabric oversubscription factor (>= 1).
var NewHeteroCluster = mesh.NewHeteroCluster

// DGXA100Cluster builds an InfiniBand/NVSwitch-class cluster of DGX-A100
// nodes (8 GPUs behind NVSwitch, 8 x 200 Gbps NICs per host).
var DGXA100Cluster = mesh.DGXA100Cluster

// MixedP3DGXCluster mixes p3-style Ethernet hosts with DGX-A100-style
// InfiniBand hosts on one fabric with the given oversubscription.
var MixedP3DGXCluster = mesh.MixedP3DGXCluster

// Host presets for building custom heterogeneous clusters.
var (
	P3HostSpec      = mesh.P3HostSpec
	DGXA100HostSpec = mesh.DGXA100HostSpec
)

// Degraded-topology scenario engine: deterministic fault overlays on any
// topology (down links with detour rerouting, per-link bandwidth scaling
// and latency inflation, straggler hosts), folded into the topology
// fingerprint so healthy and degraded plans never share a cache entry.
type (
	// FaultSet is a deterministic overlay of degradations; the zero value
	// is the healthy identity.
	FaultSet = mesh.FaultSet
	// LinkFault degrades or downs one inter-host link.
	LinkFault = mesh.LinkFault
	// HostFault marks one host a straggler (NIC / intra-host scaling).
	HostFault = mesh.HostFault
	// FaultedTopology decorates a base Topology with a FaultSet; every
	// layer above sees the degraded fabric through the same interface.
	FaultedTopology = mesh.Faulted
)

// NewFaultedTopology validates a fault set against a base topology and
// builds the degraded overlay.
var NewFaultedTopology = mesh.NewFaulted

// ParseFaultSet parses the CLIs' compact fault notation, e.g.
// "link:0-1:down;host:3:nic=0.25,intra=0.5".
var ParseFaultSet = mesh.ParseFaultSet

// Named fault scenarios of the default topology registry.
const (
	FaultScenarioLinkDown  = mesh.FaultLinkDown
	FaultScenarioBrownout  = mesh.FaultBrownout
	FaultScenarioStraggler = mesh.FaultStraggler
)

// Continuous topology churn: deterministic timelines of fault arrivals and
// heals, replayed through Planner.ReplanDegradedFrom (each step warms from
// the previous overlay's cached plan) or served live via /v2/plan.
type (
	// ChurnTimeline is a deterministic schedule of fault-overlay changes;
	// each step's FaultSet is the complete overlay active from that
	// instant (empty = healed).
	ChurnTimeline = mesh.ChurnTimeline
	// ChurnStep is one timeline entry: an arrival time and the overlay
	// active from it.
	ChurnStep = mesh.ChurnStep
	// ReplanStats reports how a session's replan steps were served: cache
	// hits, warm identity/search/rejected/invalid fills, cold fills.
	ReplanStats = resharding.ReplanStats
	// WarmReplanInfo describes how one warm replan produced its plan.
	WarmReplanInfo = resharding.WarmInfo
)

// ParseChurnTimeline parses the CLIs' timeline notation, e.g.
// "@0 link:0-1:down | @500ms | @1s host:1:nic=0.25" — steps separated by
// "|", each "@<duration> <fault spec>", an empty spec meaning healed.
var ParseChurnTimeline = mesh.ParseChurnTimeline

// Named churn scenarios of the default topology registry.
const (
	ChurnScenarioFlap             = mesh.ChurnFlap
	ChurnScenarioCascade          = mesh.ChurnCascade
	ChurnScenarioBrownoutRecovery = mesh.ChurnBrownoutRecovery
)

// Named topology presets.
type (
	// TopologyRegistry maps preset names ("p3", "dgx-a100", "mixed") to
	// topology builders, for command lines and the plan-serving API.
	TopologyRegistry = mesh.Registry
	// TopologyParams parameterize a named preset (host count, fabric
	// oversubscription).
	TopologyParams = mesh.TopologyParams
)

// NewTopologyRegistry returns an empty registry.
var NewTopologyRegistry = mesh.NewRegistry

// DefaultTopologyRegistry returns the built-in presets: "p3",
// "dgx-a100" (alias "dgx") and "mixed".
var DefaultTopologyRegistry = mesh.DefaultRegistry

// Tensors and sharding specs.
type (
	// Shape is an N-dimensional tensor shape.
	Shape = tensor.Shape
	// DType is a tensor element type.
	DType = tensor.DType
	// Spec is a sharding spec in the paper's S/R notation.
	Spec = sharding.Spec
	// Placement binds a spec to a mesh and tensor shape.
	Placement = sharding.Placement
	// ReshardTask is a decomposed cross-mesh resharding task.
	ReshardTask = sharding.Task
	// UnitTask is one unit communication task (one data slice).
	UnitTask = sharding.UnitTask
	// Buffer is a device-resident fragment of a global tensor.
	Buffer = tensor.Buffer
)

// Element types.
const (
	Float16 = tensor.Float16
	Float32 = tensor.Float32
	Float64 = tensor.Float64
)

// NewShape validates and builds a Shape.
var NewShape = tensor.NewShape

// ParseSpec parses the paper's spec notation ("S0RR", "RS01R", ...).
var ParseSpec = sharding.Parse

// NewReshardTask decomposes a cross-mesh resharding into unit tasks
// (Appendix B.2).
var NewReshardTask = sharding.NewTask

// Resharding planner.
type (
	// ReshardOptions selects strategy and scheduler.
	ReshardOptions = resharding.Options
	// ReshardPlan is a scheduled resharding ready to simulate or execute.
	ReshardPlan = resharding.Plan
	// ReshardResult reports simulated timing.
	ReshardResult = resharding.SimResult
	// Strategy is a §3.1 unit-task communication strategy.
	Strategy = resharding.Strategy
	// SchedulerKind is a §3.2 load-balance/ordering algorithm.
	SchedulerKind = resharding.Scheduler
)

// Strategies (§3.1).
const (
	StrategySendRecv        = resharding.SendRecv
	StrategyLocalAllGather  = resharding.LocalAllGather
	StrategyGlobalAllGather = resharding.GlobalAllGather
	StrategyBroadcast       = resharding.Broadcast
	StrategyAlpa            = resharding.Alpa
	StrategySignal          = resharding.Signal
)

// Schedulers (§3.2).
const (
	SchedulerNaive           = resharding.SchedNaive
	SchedulerGreedyLoad      = resharding.SchedGreedyLoad
	SchedulerLoadBalanceOnly = resharding.SchedLoadBalanceOnly
	SchedulerEnsemble        = resharding.SchedEnsemble
)

// PlanReshard schedules a resharding task: load balancing and ordering of
// its unit tasks per the chosen scheduler. Prefer a Planner session (which
// also caches and threads cancellation); for a one-off cancellable plan
// use PlanReshardContext.
var PlanReshard = resharding.NewPlan

// PlanReshardContext is PlanReshard with cooperative cancellation polled
// between the ensemble DFS's node-budget slices.
var PlanReshardContext = resharding.NewPlanContext

// Concurrent plan autotuning and cross-boundary plan caching.
type (
	// AutotuneOptions configures the strategy x scheduler grid search.
	AutotuneOptions = resharding.AutotuneOptions
	// AutotuneCandidate is one grid point.
	AutotuneCandidate = resharding.AutotuneCandidate
	// AutotuneResult reports the winner and every trial.
	AutotuneResult = resharding.AutotuneResult
	// AutotuneTrial is one candidate's outcome.
	AutotuneTrial = resharding.AutotuneTrial
	// ReshardCache memoizes plans across structurally identical
	// reshardings (e.g. the congruent stage boundaries of a pipeline).
	ReshardCache = resharding.PlanCache
	// ReshardCacheStats reports cache hit/miss counters.
	ReshardCacheStats = resharding.CacheStats
)

// AutotuneReshard searches the strategy x scheduler grid concurrently for
// the fastest plan of one resharding task; deterministic under a fixed
// seed regardless of worker count.
//
// Deprecated: use Planner.Autotune (or AutotuneReshardContext) so a
// deadline or disconnect can abort the search.
var AutotuneReshard = resharding.Autotune

// AutotuneReshardContext is AutotuneReshard with cooperative cancellation:
// the context is checked between candidates and polled inside each
// candidate's DFS between node-budget slices.
var AutotuneReshardContext = resharding.AutotuneContext

// DefaultAutotuneGrid returns the full strategy x scheduler candidate grid.
var DefaultAutotuneGrid = resharding.DefaultAutotuneGrid

// NewReshardCache creates an empty plan cache to share across boundaries,
// jobs and autotuning runs.
var NewReshardCache = resharding.NewPlanCache

// NewLRUReshardCache creates a plan cache bounded to the given entry count
// with least-recently-used eviction (capacity <= 0 means unbounded), so
// memory stays flat under millions of distinct reshardings.
var NewLRUReshardCache = resharding.NewLRUPlanCache

// Plan-serving subsystem: the resharding planner as a concurrent HTTP
// service with request coalescing, a bounded LRU cache and admission
// control (internal/service; cmd/planserver and cmd/loadgen are the
// daemon and its load generator).
type (
	// PlanServer is the plan-serving HTTP handler.
	PlanServer = service.Server
	// PlanServerConfig configures a PlanServer.
	PlanServerConfig = service.Config
	// PlanClient talks to a plan server.
	PlanClient = service.Client
	// PlanServiceRequest asks a server for one resharding plan.
	PlanServiceRequest = service.PlanRequest
	// PlanServiceResponse is one planned-and-simulated resharding.
	PlanServiceResponse = service.PlanResponse
	// AutotuneServiceRequest asks a server for a grid search.
	AutotuneServiceRequest = service.AutotuneRequest
	// AutotuneServiceResponse is a grid search outcome.
	AutotuneServiceResponse = service.AutotuneResponse
	// BatchPlanServiceRequest asks /v2/plan:batch for every stage boundary
	// of a pipeline job in one request.
	BatchPlanServiceRequest = service.BatchPlanRequest
	// BatchPlanServiceItem is one boundary of a batch request.
	BatchPlanServiceItem = service.BatchPlanItem
	// BatchPlanServiceResponse reports a batch in request order.
	BatchPlanServiceResponse = service.BatchPlanResponse
	// PlanServiceError is the structured /v2 error payload.
	PlanServiceError = service.V2Error
	// ServiceTopologyRef names a topology preset in a service request.
	ServiceTopologyRef = service.TopologyRef
	// ServiceEndpoint is one side of a served resharding.
	ServiceEndpoint = service.Endpoint
	// ServiceStats is the /v1/stats payload.
	ServiceStats = service.StatsResponse
)

// DefaultPlanCacheCapacity is the served plan cache's default LRU bound.
const DefaultPlanCacheCapacity = service.DefaultCacheCapacity

// NewPlanServer builds the plan-serving HTTP handler.
var NewPlanServer = service.New

// NewPlanClient builds a client for a plan server base URL.
var NewPlanClient = service.NewClient

// PlanClientOption configures NewPlanClient.
type PlanClientOption = service.ClientOption

// WithBinaryWire makes a plan client negotiate the binary wire format
// (PlanWireContentType) on /v2 responses; safe against servers that only
// speak JSON.
var WithBinaryWire = service.WithBinary

// PlanWireContentType is the media type of the binary plan wire format.
const PlanWireContentType = service.ContentTypeBinary

// SLO-aware admission (internal/service): a sliding-window latency and
// queue-depth controller that degrades /v2 planning to a greedy
// single-pass schedule under pressure and sheds load outright past the
// budget, recovering with hysteresis.
type (
	// ServiceSLOConfig enables the admission controller on a PlanServer
	// (PlanServerConfig.SLO); the zero value of each field picks the
	// documented default.
	ServiceSLOConfig = service.SLOConfig
	// ServiceAdmissionMode is the controller's decision for one request:
	// full, degraded or shed.
	ServiceAdmissionMode = service.AdmissionMode
	// ServiceAdmissionStats is the admission block of /v2/stats.
	ServiceAdmissionStats = service.AdmissionStats
)

// PlanAdmissionHeader is the /v2 response header naming the admission
// mode that produced the response ("degraded" or "shed").
const PlanAdmissionHeader = service.AdmissionHeader

// Open-loop load modeling (internal/loadmodel): seeded arrival processes
// for distribution-driven load generation (cmd/loadgen -open/-open-sim).
type (
	// ArrivalProcess emits successive interarrival gaps.
	ArrivalProcess = loadmodel.Process
	// BurstyArrivalConfig shapes a two-state (base/burst) MMPP.
	BurstyArrivalConfig = loadmodel.BurstyConfig
	// DiurnalArrivalConfig shapes a sinusoidal rate curve.
	DiurnalArrivalConfig = loadmodel.DiurnalConfig
)

// NewPoissonArrivals builds a seeded open-loop Poisson process.
var NewPoissonArrivals = loadmodel.NewPoisson

// NewBurstyArrivals builds a seeded two-state bursty process.
var NewBurstyArrivals = loadmodel.NewBursty

// NewDiurnalArrivals builds a seeded sinusoidal-rate process.
var NewDiurnalArrivals = loadmodel.NewDiurnal

// DeriveAgentSeed maps (base seed, agent index) to a statistically
// independent per-agent stream seed; the mapping is pinned forever.
var DeriveAgentSeed = loadmodel.DeriveSeed

// ArrivalOffsets materializes a process into intended-start offsets
// within a horizon.
var ArrivalOffsets = loadmodel.Offsets

// Distributed plan-serving tier (internal/cluster): N plan servers as one
// logical plan cache — consistent-hash key ownership, cross-node
// singleflight, verified peer fills, snapshot warm restarts.
type (
	// ClusterNode makes one PlanServer a member of a plan-serving tier.
	ClusterNode = cluster.Node
	// ClusterNodeConfig configures a tier node.
	ClusterNodeConfig = cluster.Config
	// ClusterRing is the consistent-hash ring the tier routes on.
	ClusterRing = cluster.Ring
	// ClusterNodeStats is the per-node tier block of ServiceStats.
	ClusterNodeStats = service.ClusterNodeStats
	// ClusterSnapshotStats reports one snapshot or warm-restore pass.
	ClusterSnapshotStats = cluster.SnapshotStats
)

// NewClusterNode builds a tier node around a plan server and installs it
// as the server's router.
var NewClusterNode = cluster.New

// NewClusterRing builds a consistent-hash ring with the given virtual-node
// count per member (<= 0 = cluster.DefaultVNodes).
var NewClusterRing = cluster.NewRing

// VerifyPlanFill re-simulates a peer-supplied plan against a local task
// and rejects it on any mismatch — the tier's prove-don't-trust gate.
var VerifyPlanFill = cluster.VerifyFill

// AsPeerPlanClient marks a plan client's requests as tier-internal: the
// receiving node resolves them locally instead of re-routing.
var AsPeerPlanClient = service.AsPeer

// PlanPeerHeader is the header marking tier-internal peer requests.
const PlanPeerHeader = service.PeerHeader

// Pipeline schedules (§4).
type (
	// PipelineConfig describes one pipeline-parallel iteration.
	PipelineConfig = pipeline.Config
	// PipelineResult reports a simulated iteration.
	PipelineResult = pipeline.Result
	// PipelineKind is a schedule family.
	PipelineKind = pipeline.Kind
)

const (
	ScheduleGPipe     = pipeline.GPipe
	Schedule1F1B      = pipeline.OneFOneB
	ScheduleEager1F1B = pipeline.Eager1F1B
)

// SimulatePipeline times one iteration of a pipeline schedule.
var SimulatePipeline = pipeline.Simulate

// Models and parallel configs (§5.2).
type (
	// Workload is a pipeline-partitioned model with boundary tensors.
	Workload = model.Workload
	// ParallelConfig is the (dp, op, pp) triple of Table 3.
	ParallelConfig = model.ParallelConfig
	// DeviceSpec models accelerator throughput.
	DeviceSpec = model.DeviceSpec
	// GPTConfig is a GPT-3-style transformer.
	GPTConfig = model.GPTConfig
	// UTransConfig is a U-Transformer.
	UTransConfig = model.UTransConfig
)

// Model presets from Table 3.
var (
	GPT1_3B    = model.GPT1_3B
	GPT2_6B    = model.GPT2_6B
	UTrans1B   = model.UTrans1B
	UTrans2_1B = model.UTrans2_1B
	V100       = model.V100
	V100Conv   = model.V100Conv
)

// Workload constructors.
var (
	NewGPTWorkload    = model.NewGPTWorkload
	NewUTransWorkload = model.NewUTransWorkload
)

// Low-level building blocks, exposed for extension.
type (
	// Sim is the deterministic discrete-event engine.
	Sim = netsim.Sim
	// ClusterNet issues topology-aware transfers on a Sim.
	ClusterNet = netsim.ClusterNet
	// NetResourceID is a typed handle to one serial resource of a Sim.
	NetResourceID = netsim.ResourceID
	// NetLabel is a lazily rendered op label.
	NetLabel = netsim.Label
	// NetEvent is one scheduled op of a completed run.
	NetEvent = netsim.Event
	// ReshardPlanBuilder is a reusable (poolable) plan-simulation context.
	ReshardPlanBuilder = resharding.PlanBuilder
	// HostTask is one Eq. 1-3 host-level task.
	HostTask = schedule.Task
	// HostPlan is an Eq. 1-3 solution.
	HostPlan = schedule.Plan
)

// NewSim creates an empty discrete-event simulator.
var NewSim = netsim.NewSim

// NewClusterNet creates a simulator bound to a cluster topology.
var NewClusterNet = netsim.NewClusterNet

// PlainLabel wraps a fixed string as a lazily rendered op label — the thin
// string shim over the tuple-based Label API.
var PlainLabel = netsim.Plain

// AcquireReshardPlanBuilder takes a reusable simulation context from the
// shared pool; Release it when done. Plan.Simulate pools automatically —
// hold a builder explicitly only when simulating many plans on one
// goroutine.
var AcquireReshardPlanBuilder = resharding.AcquirePlanBuilder

// Intra-mesh layout conversion (§2.1 background): resharding a tensor
// between two specs on the same mesh, served by collective communication.
type (
	// IntraMeshTask is a planned layout conversion within one mesh.
	IntraMeshTask = intramesh.Task
	// IntraMeshMove is one required data movement of a conversion.
	IntraMeshMove = intramesh.Move
)

// NewIntraMeshTask decomposes an intra-mesh layout conversion.
var NewIntraMeshTask = intramesh.NewTask
