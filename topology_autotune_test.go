package alpacomm_test

import (
	"testing"

	alpacomm "alpacomm"
)

// deepGPTJob builds an 8-stage GPT pipeline (7 congruent stage boundaries,
// one p3 host per stage) for the cache and autotune integration tests.
func deepGPTJob(t *testing.T) alpacomm.TrainingJob {
	t.Helper()
	pc := alpacomm.ParallelConfig{DP: 2, OP: 2, PP: 8}
	w, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	return alpacomm.TrainingJob{
		Cluster:  alpacomm.AWSP3Cluster(8),
		Device:   alpacomm.V100(),
		Workload: w,
		Parallel: pc,
		Schedule: alpacomm.ScheduleEager1F1B,
		Overlap:  true,
		Reshard: alpacomm.ReshardOptions{
			Strategy:  alpacomm.StrategyBroadcast,
			Scheduler: alpacomm.SchedulerEnsemble,
			Seed:      1,
		},
	}
}

// TestDeepPipelineCachedBoundariesMatchFresh pins the refactor's
// correctness contract: on the homogeneous p3 topology, the plan cache
// must reproduce exactly the timings that planning every boundary from
// scratch produces — same floats, not approximately.
func TestDeepPipelineCachedBoundariesMatchFresh(t *testing.T) {
	job := deepGPTJob(t)
	rep, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FwdCommTime) != 7 {
		t.Fatalf("boundaries = %d, want 7", len(rep.FwdCommTime))
	}
	// All 7 boundaries are congruent (one host per stage, identical
	// tensors), so the cached times must be identical.
	for s, c := range rep.FwdCommTime {
		if c != rep.FwdCommTime[0] {
			t.Errorf("boundary %d time %g != boundary 0 time %g", s, c, rep.FwdCommTime[0])
		}
		if c <= 0 {
			t.Errorf("boundary %d has degenerate comm time %g", s, c)
		}
	}
	// Re-plan boundary 5 from scratch, bypassing the cache; it must match
	// the cached value bit for bit.
	meshes, err := job.StageMeshes()
	if err != nil {
		t.Fatal(err)
	}
	var fresh float64
	for _, bt := range job.Workload.Boundaries {
		if bt.Boundary != 5 {
			continue
		}
		srcSpec, err := alpacomm.ParseSpec(bt.SrcSpec)
		if err != nil {
			t.Fatal(err)
		}
		dstSpec, err := alpacomm.ParseSpec(bt.DstSpec)
		if err != nil {
			t.Fatal(err)
		}
		task, err := alpacomm.NewReshardTask(bt.Shape, job.Workload.DType, meshes[5], srcSpec, meshes[6], dstSpec)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := alpacomm.PlanReshard(task, job.Reshard)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		fresh += res.Makespan
	}
	if fresh != rep.FwdCommTime[5] {
		t.Errorf("cached boundary time %g != fresh plan time %g", rep.FwdCommTime[5], fresh)
	}
	// The run must be reproducible end to end.
	rep2, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.IterationTime != rep.IterationTime {
		t.Errorf("iteration time not reproducible: %g vs %g", rep2.IterationTime, rep.IterationTime)
	}
}

// TestSharedCacheAcrossRuns: a caller-owned cache serves a second run
// entirely from memory.
func TestSharedCacheAcrossRuns(t *testing.T) {
	cache := alpacomm.NewReshardCache()
	job := deepGPTJob(t)
	job.Cache = cache
	rep1, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Entries != 1 {
		t.Errorf("7 congruent boundaries should collapse to one entry, got %+v", st)
	}
	if st.Hits != 6 || st.Misses != 1 {
		t.Errorf("want 1 miss + 6 hits, got %+v", st)
	}
	rep2, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 1 || st.Hits != 13 {
		t.Errorf("second run should be all hits, got %+v", st)
	}
	if rep1.IterationTime != rep2.IterationTime {
		t.Errorf("runs disagree: %g vs %g", rep1.IterationTime, rep2.IterationTime)
	}
}

// TestTrainingJobOnHeteroCluster runs the full stack on the DGX-A100
// preset: same model and device throughput as a p3 run, but faster NICs —
// so iterations must be at least as fast, and strictly faster when the
// boundary crosses hosts.
func TestTrainingJobOnHeteroCluster(t *testing.T) {
	pc := alpacomm.ParallelConfig{DP: 2, OP: 4, PP: 2}
	w, err := alpacomm.NewGPTWorkload(alpacomm.GPT1_3B(), pc, alpacomm.Float16, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(topo alpacomm.Topology) *alpacomm.TrainingReport {
		job := alpacomm.TrainingJob{
			Cluster:  topo,
			Device:   alpacomm.V100(),
			Workload: w,
			Parallel: pc,
			Schedule: alpacomm.Schedule1F1B,
			Reshard: alpacomm.ReshardOptions{
				Strategy:  alpacomm.StrategyBroadcast,
				Scheduler: alpacomm.SchedulerEnsemble,
				Seed:      1,
			},
		}
		rep, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	p3 := run(alpacomm.AWSP3Cluster(4))    // 2 hosts per stage
	dgx := run(alpacomm.DGXA100Cluster(2)) // 1 host per stage
	if dgx.TFLOPS <= 0 || p3.TFLOPS <= 0 {
		t.Fatalf("degenerate throughput: dgx %g, p3 %g", dgx.TFLOPS, p3.TFLOPS)
	}
	if dgx.IterationTime >= p3.IterationTime {
		t.Errorf("DGX iteration (%g) should beat p3 (%g): same compute, faster fabric",
			dgx.IterationTime, p3.IterationTime)
	}
	if dgx.FwdCommTime[0] >= p3.FwdCommTime[0] {
		t.Errorf("DGX boundary comm (%g) should beat p3 (%g)", dgx.FwdCommTime[0], p3.FwdCommTime[0])
	}
}

// TestTrainingJobAutotune: the per-boundary grid search runs end to end,
// reuses the cache across congruent boundaries, and is reproducible.
func TestTrainingJobAutotune(t *testing.T) {
	cache := alpacomm.NewReshardCache()
	job := deepGPTJob(t)
	job.Autotune = true
	job.Cache = cache
	rep1, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range rep1.FwdCommTime {
		if c != rep1.FwdCommTime[0] {
			t.Errorf("autotuned boundary %d time %g != boundary 0 time %g", s, c, rep1.FwdCommTime[0])
		}
	}
	// One grid sweep total: every candidate planned once, then 6 boundaries
	// x grid-size hits.
	grid := len(alpacomm.DefaultAutotuneGrid())
	st := cache.Stats()
	if st.Entries != grid || st.Misses != grid || st.Hits != 6*grid {
		t.Errorf("autotune cache stats = %+v, want %d entries, %d misses, %d hits",
			st, grid, grid, 6*grid)
	}
	rep2, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.IterationTime != rep2.IterationTime {
		t.Errorf("autotuned runs disagree: %g vs %g", rep1.IterationTime, rep2.IterationTime)
	}
	// The autotuned boundary cannot be slower than the fixed broadcast
	// configuration's boundary under the same derived-seed grid.
	fixed := deepGPTJob(t)
	repFixed, err := fixed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.FwdCommTime[0] > repFixed.FwdCommTime[0]*1.05 {
		t.Errorf("autotuned boundary %g should not lose to fixed config %g",
			rep1.FwdCommTime[0], repFixed.FwdCommTime[0])
	}
}
