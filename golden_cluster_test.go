// Distributed serving parity against the golden fixtures: a 3-node tier
// (built through the public facade, like a deployment would) serves every
// reshard of testdata/golden_netsim.json from EVERY node, and each response
// must be byte-identical to a standalone server's — ownership, proxying and
// cache-aside fills change where a plan is computed, never the plan. A
// snapshot/restore round trip over the same fixtures must preserve that
// byte identity through a warm restart.
package alpacomm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	alpacomm "alpacomm"
	"alpacomm/internal/service"
)

// goldenTier builds an n-node tier through the facade over loopback HTTP.
func goldenTier(t *testing.T, ids []string) ([]*alpacomm.ClusterNode, []*httptest.Server) {
	t.Helper()
	nodes := make([]*alpacomm.ClusterNode, len(ids))
	servers := make([]*httptest.Server, len(ids))
	handlers := make([]http.Handler, len(ids))
	for i := range ids {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(servers[i].Close)
	}
	for i, id := range ids {
		peers := map[string]string{}
		for j, pid := range ids {
			if j != i {
				peers[pid] = servers[j].URL
			}
		}
		srv := alpacomm.NewPlanServer(alpacomm.PlanServerConfig{})
		node, err := alpacomm.NewClusterNode(alpacomm.ClusterNodeConfig{NodeID: id, Peers: peers}, srv)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		handlers[i] = node.Handler()
	}
	return nodes, servers
}

// goldenRawPlan returns the raw /v2/plan response body for byte-level
// comparison.
func goldenRawPlan(t *testing.T, baseURL string, req *service.PlanRequest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v2/plan", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s: %s", baseURL, resp.Status, body)
	}
	return body
}

// goldenFixtureRequests loads golden_netsim.json and returns one wire
// request per reshard fixture plus its expected-plan check.
func goldenFixtureRequests(t *testing.T) []*service.PlanRequest {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_netsim.json"))
	if err != nil {
		t.Fatalf("missing golden fixtures (run go test -run TestGolden -update .): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	reqs := make([]*service.PlanRequest, 0, len(g.Reshards))
	for _, r := range g.Reshards {
		reqs = append(reqs, goldenWireRequest(
			goldenWireTopology(t, r.Preset, false),
			goldenWireOptions(t, r.Strategy), nil))
	}
	return reqs
}

// TestGoldenClusterByteIdentity: every golden reshard served from every
// node of a 3-node tier is byte-identical to the standalone answer, and
// the tier computed each fixture exactly once.
func TestGoldenClusterByteIdentity(t *testing.T) {
	reqs := goldenFixtureRequests(t)
	standalone := httptest.NewServer(alpacomm.NewPlanServer(alpacomm.PlanServerConfig{}))
	defer standalone.Close()
	_, servers := goldenTier(t, []string{"a", "b", "c"})
	for _, req := range reqs {
		want := goldenRawPlan(t, standalone.URL, req)
		for ni, ts := range servers {
			if got := goldenRawPlan(t, ts.URL, req); !bytes.Equal(got, want) {
				t.Fatalf("node %d serves different bytes for %s/%s:\n got %s\nwant %s",
					ni, req.Topology.Name, req.Options.Strategy, got, want)
			}
		}
	}
}

// TestGoldenClusterSnapshotRoundTrip: snapshot each tier node after
// serving the golden fixtures, restore into a fresh tier with the same
// identities, and every fixture serves byte-identically — without a
// single recomputation on the restored owners.
func TestGoldenClusterSnapshotRoundTrip(t *testing.T) {
	reqs := goldenFixtureRequests(t)
	ids := []string{"a", "b", "c"}
	warmNodes, warmServers := goldenTier(t, ids)
	want := make([][]byte, len(reqs))
	for i, req := range reqs {
		// Serve through every node so each holds its share (owned or
		// cache-aside) and journals the fill.
		for _, ts := range warmServers {
			want[i] = goldenRawPlan(t, ts.URL, req)
		}
	}
	dir := t.TempDir()
	paths := make([]string, len(ids))
	total := 0
	for i, node := range warmNodes {
		paths[i] = filepath.Join(dir, "plans-"+ids[i]+".snap")
		st, err := node.Snapshot(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		total += st.Entries
	}
	if total < len(reqs) {
		t.Fatalf("tier snapshots hold %d entries for %d fixtures", total, len(reqs))
	}

	coldNodes, coldServers := goldenTier(t, ids)
	for i, node := range coldNodes {
		st, err := node.Restore(context.Background(), paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if st.Rejected != 0 || st.Restored != st.Entries {
			t.Fatalf("node %s restore %+v: golden snapshot must verify clean", ids[i], st)
		}
	}
	for i, req := range reqs {
		for ni, ts := range coldServers {
			if got := goldenRawPlan(t, ts.URL, req); !bytes.Equal(got, want[i]) {
				t.Fatalf("restored node %d serves different bytes for fixture %d", ni, i)
			}
		}
	}
}
