package alpacomm

import (
	"context"

	"alpacomm/internal/harness"
	"alpacomm/internal/mesh"
	"alpacomm/internal/model"
	"alpacomm/internal/pipeline"
	"alpacomm/internal/resharding"
)

// Experiment row types, re-exported for tools and benchmarks.
type (
	// MicroRow is one microbenchmark measurement (Figs. 5, 6, 8).
	MicroRow = harness.MicroRow
	// E2ERow is one end-to-end throughput measurement (Fig. 7).
	E2ERow = harness.E2ERow
	// Fig9Row is one overlap-ablation measurement.
	Fig9Row = harness.Fig9Row
)

// trainingRunner adapts TrainingJob to the harness's runner signature,
// threading the sweep's context into each job's planning session.
func trainingRunner(ctx context.Context, cluster mesh.Topology, device model.DeviceSpec, w *model.Workload,
	pc model.ParallelConfig, sched pipeline.Kind, overlap bool, opts resharding.Options) (float64, float64, error) {
	job := TrainingJob{
		Cluster:  cluster,
		Device:   device,
		Workload: w,
		Parallel: pc,
		Schedule: sched,
		Overlap:  overlap,
		Reshard:  opts,
	}
	rep, err := job.RunContext(ctx)
	if err != nil {
		return 0, 0, err
	}
	return rep.IterationTime, rep.TFLOPS, nil
}

// Fig5aRows regenerates Fig. 5a (single device to one multi-GPU node).
// scale >= 1 shrinks the 1 GB message for fast runs.
func Fig5aRows(scale int) ([]MicroRow, error) { return harness.Fig5a(scale) }

// Fig5bRows regenerates Fig. 5b (single device to multiple 2-GPU nodes).
func Fig5bRows(scale int) ([]MicroRow, error) { return harness.Fig5b(scale) }

// Fig6Rows regenerates Fig. 6 (the nine Table 2 multi-device cases).
func Fig6Rows(scale int) ([]MicroRow, error) { return harness.Fig6(scale) }

// Fig7Rows regenerates Fig. 7 (Table 3 end-to-end training throughput).
// batchScale >= 1 divides the global batch for fast runs.
func Fig7Rows(batchScale int) ([]E2ERow, error) {
	return harness.Fig7(context.Background(), trainingRunner, batchScale)
}

// Fig7RowsOn runs the Table 3 sweep on a named topology preset ("p3",
// "dgx-a100", "mixed") instead of the paper's homogeneous testbed; each
// case keeps its host count, with the fabric oversubscription applied to
// presets that take one.
func Fig7RowsOn(batchScale int, topology string, oversub float64) ([]E2ERow, error) {
	return Fig7RowsOnContext(context.Background(), batchScale, topology, oversub)
}

// Fig7RowsOnContext is Fig7RowsOn with cooperative cancellation threaded
// through every case's planning session, so a deadline aborts the sweep
// mid-search (cmd/e2e wires its -timeout flag here).
func Fig7RowsOnContext(ctx context.Context, batchScale int, topology string, oversub float64) ([]E2ERow, error) {
	reg := mesh.DefaultRegistry()
	return harness.Fig7On(ctx, trainingRunner, batchScale, func(hosts int) (mesh.Topology, error) {
		return reg.Build(topology, mesh.TopologyParams{Hosts: hosts, Oversubscription: oversub})
	})
}

// Fig8Rows regenerates Fig. 8 (load-balance ablation).
func Fig8Rows(scale int) ([]MicroRow, error) { return harness.Fig8(scale) }

// Fig9Rows regenerates Fig. 9 (overlap ablation).
func Fig9Rows() ([]Fig9Row, error) { return harness.Fig9(context.Background(), trainingRunner) }

// Table1Report renders the paper's Table 1 memory accounting.
func Table1Report() string { return harness.Table1Report() }

// Render helpers.
var (
	RenderMicroRows = harness.RenderMicroRows
	RenderE2ERows   = harness.RenderE2ERows
	RenderFig9Rows  = harness.RenderFig9Rows
)

// ChunkRow is one point of the broadcast pipelining-depth ablation.
type ChunkRow = harness.ChunkRow

// ChunkSweepRows ablates the broadcast chunk count K (§3.1's T = t + A·t/K
// tradeoff against per-chunk launch latency).
func ChunkSweepRows(scale int) ([]ChunkRow, error) { return harness.ChunkSweep(scale) }

// RenderChunkRows formats the chunk ablation.
var RenderChunkRows = harness.RenderChunkRows
