// Command microbench regenerates the paper's communication
// microbenchmarks: Fig. 5a/5b (single sender to multi-GPU receivers) and
// Fig. 6 (the nine Table 2 multi-device resharding cases). It also
// measures the netsim core's hot paths (plan build, autotune grid cell,
// served cache miss, served cache hit in both wire formats, arena replay)
// and records ns/op + allocs/op to a JSON artifact — the baseline
// cmd/benchgate gates CI against.
//
// Usage:
//
//	microbench [-fig 5a|5b|6|all] [-scale N] [-netsim BENCH_netsim.json]
//	           [-degraded BENCH_degraded.json] [-churn BENCH_churn.json]
//
// scale divides the message size (1 for the paper's full 1-2 GB tensors).
// With -netsim, -degraded and/or -churn the figure benchmarks are skipped
// unless -fig is given explicitly. -degraded runs the degraded-topology
// scenario pack: the golden boundary planned healthy and under every named
// fault scenario on p3/dgx-a100/mixed, reporting makespan deltas. -churn
// runs the warm-replan benchmark: warm vs cold replan latency and plan
// quality per (preset, fault scenario), plus every registry churn timeline
// replayed through a planner session.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	alpacomm "alpacomm"
	"alpacomm/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "which figure to run: 5a, 5b, 6, or all (default all, or none with -netsim/-degraded)")
	scale := flag.Int("scale", 1, "divide message sizes by this factor for faster runs")
	jsonOut := flag.String("json", "", "also record all rows to this JSON file (artifact format)")
	netsimOut := flag.String("netsim", "", "measure netsim core hot paths (ns/op + allocs/op) and write them to this JSON file")
	degradedOut := flag.String("degraded", "", "run the degraded-topology scenario pack and write it to this JSON file")
	churnOut := flag.String("churn", "", "run the warm-replan churn benchmark and write it to this JSON file")
	flag.Parse()

	ranAux := false
	if *netsimOut != "" {
		ranAux = true
		rows, err := harness.NetsimBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: netsim bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.RenderNetsimBenchRows(rows))
		fmt.Println()
		if err := harness.WriteNetsimBenchJSON(*netsimOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *degradedOut != "" {
		ranAux = true
		rows, err := harness.DegradedScenarioPack(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: degraded scenario pack: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.RenderDegradedRows(rows))
		fmt.Println()
		if err := harness.WriteDegradedJSON(*degradedOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *churnOut != "" {
		ranAux = true
		report, err := harness.ChurnBench(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: churn bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.RenderChurnReport(report))
		fmt.Println()
		if err := harness.WriteChurnJSON(*churnOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
	}
	if ranAux && *fig == "" {
		return
	}
	if *fig == "" {
		*fig = "all"
	}

	var all []alpacomm.MicroRow
	run := func(name string, f func(int) ([]alpacomm.MicroRow, error)) {
		rows, err := f(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		all = append(all, rows...)
		fmt.Print(alpacomm.RenderMicroRows(name, rows))
		fmt.Println()
	}
	defer func() {
		if *jsonOut == "" {
			return
		}
		if err := harness.WriteMicroJSON(*jsonOut, all); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
	}()

	switch *fig {
	case "5a":
		run("Fig 5a: single device -> one receiver node (1-4 GPUs)", alpacomm.Fig5aRows)
	case "5b":
		run("Fig 5b: single device -> 1-4 receiver nodes (2 GPUs each)", alpacomm.Fig5bRows)
	case "6":
		run("Fig 6: multi-device to multi-device (Table 2 cases)", alpacomm.Fig6Rows)
	case "all":
		run("Fig 5a: single device -> one receiver node (1-4 GPUs)", alpacomm.Fig5aRows)
		run("Fig 5b: single device -> 1-4 receiver nodes (2 GPUs each)", alpacomm.Fig5bRows)
		run("Fig 6: multi-device to multi-device (Table 2 cases)", alpacomm.Fig6Rows)
	default:
		fmt.Fprintf(os.Stderr, "microbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
