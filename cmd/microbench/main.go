// Command microbench regenerates the paper's communication
// microbenchmarks: Fig. 5a/5b (single sender to multi-GPU receivers) and
// Fig. 6 (the nine Table 2 multi-device resharding cases).
//
// Usage:
//
//	microbench [-fig 5a|5b|6|all] [-scale N]
//
// scale divides the message size (1 for the paper's full 1-2 GB tensors).
package main

import (
	"flag"
	"fmt"
	"os"

	alpacomm "alpacomm"
	"alpacomm/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "which figure to run: 5a, 5b, 6, or all")
	scale := flag.Int("scale", 1, "divide message sizes by this factor for faster runs")
	jsonOut := flag.String("json", "", "also record all rows to this JSON file (artifact format)")
	flag.Parse()

	var all []alpacomm.MicroRow
	run := func(name string, f func(int) ([]alpacomm.MicroRow, error)) {
		rows, err := f(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		all = append(all, rows...)
		fmt.Print(alpacomm.RenderMicroRows(name, rows))
		fmt.Println()
	}
	defer func() {
		if *jsonOut == "" {
			return
		}
		if err := harness.WriteMicroJSON(*jsonOut, all); err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
	}()

	switch *fig {
	case "5a":
		run("Fig 5a: single device -> one receiver node (1-4 GPUs)", alpacomm.Fig5aRows)
	case "5b":
		run("Fig 5b: single device -> 1-4 receiver nodes (2 GPUs each)", alpacomm.Fig5bRows)
	case "6":
		run("Fig 6: multi-device to multi-device (Table 2 cases)", alpacomm.Fig6Rows)
	case "all":
		run("Fig 5a: single device -> one receiver node (1-4 GPUs)", alpacomm.Fig5aRows)
		run("Fig 5b: single device -> 1-4 receiver nodes (2 GPUs each)", alpacomm.Fig5bRows)
		run("Fig 6: multi-device to multi-device (Table 2 cases)", alpacomm.Fig6Rows)
	default:
		fmt.Fprintf(os.Stderr, "microbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
