// Command planserver runs the plan-serving daemon: an HTTP+JSON API that
// plans, simulates and autotunes cross-mesh reshardings against named
// hardware topologies, with request coalescing, a bounded LRU plan cache
// and per-endpoint admission control (see internal/service). With
// -slo-p99 the /v2 endpoints additionally run SLO-aware admission: when
// the sliding-window p99 approaches the budget the server degrades
// planning to a greedy single-pass schedule (flagged in the response),
// and past the budget it sheds with a structured overloaded error and
// Retry-After.
//
// Example:
//
//	planserver -addr :8100 -cache-capacity 4096 &
//	curl -s localhost:8100/v1/plan -d '{
//	  "topology": {"name": "p3", "hosts": 2},
//	  "shape": [1024, 1024],
//	  "src": {"mesh": "2x2@0", "spec": "S01R"},
//	  "dst": {"mesh": "2x2@4", "spec": "S0R"},
//	  "options": {"seed": 1}
//	}'
//	curl -s localhost:8100/v1/stats
//
// The /v2 API (same payloads, structured error envelope, X-Timeout-Ms
// deadline propagation) adds /v2/plan, /v2/autotune, /v2/plan:batch —
// the latter plans every stage boundary of a pipeline job in one request
// — and /v2/stats. Every /v2 response is also available as a compact
// binary frame: send "Accept: application/x-alpacomm-plan".
//
// Cluster mode (-node-id + -peers) makes N planservers one logical plan
// cache: a consistent-hash ring routes each canonical cache key to an
// owner node, non-owners fetch cold keys from the owner (re-simulating
// every received plan before caching it — see internal/cluster), and the
// owner's request coalescing gives the tier cluster-wide singleflight.
// With -snapshot the cache is periodically persisted and replay-verified
// back on start, so a bounced node rejoins warm:
//
//	planserver -addr :8101 -node-id a -peers 'b=http://127.0.0.1:8102' \
//	    -self http://127.0.0.1:8101 -snapshot /var/tmp/plans-a.snap
//
// Shutdown is graceful on SIGINT/SIGTERM: the node leaves the ring first
// (peers stop routing new keys to it), drains in-flight requests under
// -drain-timeout, then writes a final snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	alpacomm "alpacomm"
)

// parsePeers parses "id=url,id=url" into the peer map.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		peers[id] = url
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8100", "listen address")
	capacity := flag.Int("cache-capacity", alpacomm.DefaultPlanCacheCapacity,
		"plan cache LRU capacity (0 = unbounded)")
	planWorkers := flag.Int("plan-workers", 0, "/v1/plan worker pool size (0 = GOMAXPROCS)")
	planQueue := flag.Int("plan-queue", 0, "/v1/plan wait-queue depth (0 = 4x workers)")
	autotuneWorkers := flag.Int("autotune-workers", 0, "/v1/autotune worker pool size (0 = GOMAXPROCS/2)")
	autotuneQueue := flag.Int("autotune-queue", 0, "/v1/autotune wait-queue depth (0 = 2x workers)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint on 429 responses")
	sloP99 := flag.Duration("slo-p99", 0,
		"corrected p99 latency budget for SLO-aware /v2 admission (0 = fixed worker-pool gate only)")
	nodeID := flag.String("node-id", "", "cluster node identity (empty = standalone)")
	peersFlag := flag.String("peers", "", "cluster peers as id=url,id=url")
	selfAddr := flag.String("self", "", "this node's advertised base URL for peer announcements")
	snapshotPath := flag.String("snapshot", "", "plan-cache snapshot file (cluster mode; empty = no persistence)")
	snapshotEvery := flag.Duration("snapshot-interval", time.Minute, "periodic snapshot interval")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("planserver: %v", err)
	}
	if *nodeID == "" && len(peers) > 0 {
		log.Fatal("planserver: -peers requires -node-id")
	}

	reg := alpacomm.DefaultTopologyRegistry()
	cfg := alpacomm.PlanServerConfig{
		Registry:        reg,
		Cache:           alpacomm.NewLRUReshardCache(*capacity),
		PlanWorkers:     *planWorkers,
		PlanQueue:       *planQueue,
		AutotuneWorkers: *autotuneWorkers,
		AutotuneQueue:   *autotuneQueue,
		RetryAfter:      *retryAfter,
	}
	if *sloP99 > 0 {
		cfg.SLO = &alpacomm.ServiceSLOConfig{P99Budget: *sloP99}
	}
	srv := alpacomm.NewPlanServer(cfg)

	var handler http.Handler = srv
	var node *alpacomm.ClusterNode
	if *nodeID != "" {
		node, err = alpacomm.NewClusterNode(alpacomm.ClusterNodeConfig{
			NodeID:   *nodeID,
			SelfAddr: *selfAddr,
			Peers:    peers,
		}, srv)
		if err != nil {
			log.Fatalf("planserver: %v", err)
		}
		handler = node.Handler()
	}

	fmt.Printf("planserver: listening on %s (APIs: /v1, /v2 incl. /v2/plan:batch)\n", *addr)
	fmt.Printf("planserver: topologies: %s\n", strings.Join(reg.Names(), ", "))
	fmt.Printf("planserver: cache capacity %d, retry-after %v\n", *capacity, *retryAfter)
	if *sloP99 > 0 {
		fmt.Printf("planserver: SLO admission on /v2: p99 budget %v (degrade, then shed)\n", *sloP99)
	}

	// ctx ends on the first SIGINT/SIGTERM and starts the graceful path;
	// a second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if node != nil {
		fmt.Printf("planserver: cluster node %q, peers: %v\n", *nodeID, peers)
		if *snapshotPath != "" {
			if st, err := node.Restore(ctx, *snapshotPath); err != nil {
				log.Printf("planserver: warm restart failed: %v", err)
			} else if st.Entries > 0 {
				fmt.Printf("planserver: warm restart: %d/%d snapshot entries verified and restored\n",
					st.Restored, st.Entries)
			}
		}
		if err := node.Join(ctx); err != nil {
			// Best-effort: static -peers already seeded the ring.
			log.Printf("planserver: join announcement incomplete: %v", err)
		}
		if *snapshotPath != "" {
			// The loop's final snapshot runs on ctx end — before Shutdown
			// completes the drain — so the post-drain snapshot below is the
			// authoritative last write.
			go node.SnapshotLoop(ctx, *snapshotPath, *snapshotEvery, func(err error) {
				log.Printf("planserver: snapshot failed: %v", err)
			})
		}
	}

	// Connection handling must be as bounded as the admission layers
	// behind it: without read/idle timeouts, slow or idle connections pin
	// goroutines before a request ever reaches the intake gate.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Graceful shutdown, leave-the-ring first: peers stop routing new keys
	// here while in-flight requests drain (the node keeps serving hits and
	// proxies until Shutdown returns), then the drained cache is persisted.
	fmt.Println("planserver: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if node != nil {
		node.Leave(drainCtx)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("planserver: drain incomplete: %v", err)
	}
	if node != nil && *snapshotPath != "" {
		if st, err := node.Snapshot(*snapshotPath); err != nil {
			log.Printf("planserver: final snapshot failed: %v", err)
		} else {
			fmt.Printf("planserver: final snapshot: %d entries (%d bytes)\n", st.Entries, st.Bytes)
		}
	}
}
