// Command planserver runs the plan-serving daemon: an HTTP+JSON API that
// plans, simulates and autotunes cross-mesh reshardings against named
// hardware topologies, with request coalescing, a bounded LRU plan cache
// and per-endpoint admission control (see internal/service).
//
// Example:
//
//	planserver -addr :8100 -cache-capacity 4096 &
//	curl -s localhost:8100/v1/plan -d '{
//	  "topology": {"name": "p3", "hosts": 2},
//	  "shape": [1024, 1024],
//	  "src": {"mesh": "2x2@0", "spec": "S01R"},
//	  "dst": {"mesh": "2x2@4", "spec": "S0R"},
//	  "options": {"seed": 1}
//	}'
//	curl -s localhost:8100/v1/stats
//
// The /v2 API (same payloads, structured error envelope, X-Timeout-Ms
// deadline propagation) adds /v2/plan, /v2/autotune and /v2/plan:batch —
// the latter plans every stage boundary of a pipeline job in one request:
//
//	curl -s localhost:8100/v2/plan:batch -H 'X-Timeout-Ms: 2000' -d '{
//	  "topology": {"name": "p3", "hosts": 3},
//	  "items": [
//	    {"shape": [1024, 1024], "src": {"mesh": "2x2@0", "spec": "S01R"},
//	     "dst": {"mesh": "2x2@4", "spec": "S0R"}, "options": {"seed": 1}},
//	    {"shape": [1024, 1024], "src": {"mesh": "2x2@4", "spec": "S01R"},
//	     "dst": {"mesh": "2x2@8", "spec": "S0R"}, "options": {"seed": 1}}
//	  ]
//	}'
//
// Every /v2 response — including error envelopes — is also available in a
// compact binary frame format: send "Accept: application/x-alpacomm-plan"
// (clients: service.WithBinary / alpacomm.WithBinaryWire). JSON stays the
// default and /v1 is JSON-only.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	alpacomm "alpacomm"
)

func main() {
	addr := flag.String("addr", ":8100", "listen address")
	capacity := flag.Int("cache-capacity", alpacomm.DefaultPlanCacheCapacity,
		"plan cache LRU capacity (0 = unbounded)")
	planWorkers := flag.Int("plan-workers", 0, "/v1/plan worker pool size (0 = GOMAXPROCS)")
	planQueue := flag.Int("plan-queue", 0, "/v1/plan wait-queue depth (0 = 4x workers)")
	autotuneWorkers := flag.Int("autotune-workers", 0, "/v1/autotune worker pool size (0 = GOMAXPROCS/2)")
	autotuneQueue := flag.Int("autotune-queue", 0, "/v1/autotune wait-queue depth (0 = 2x workers)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint on 429 responses")
	flag.Parse()

	reg := alpacomm.DefaultTopologyRegistry()
	srv := alpacomm.NewPlanServer(alpacomm.PlanServerConfig{
		Registry:        reg,
		Cache:           alpacomm.NewLRUReshardCache(*capacity),
		PlanWorkers:     *planWorkers,
		PlanQueue:       *planQueue,
		AutotuneWorkers: *autotuneWorkers,
		AutotuneQueue:   *autotuneQueue,
		RetryAfter:      *retryAfter,
	})

	fmt.Printf("planserver: listening on %s (APIs: /v1, /v2 incl. /v2/plan:batch)\n", *addr)
	fmt.Printf("planserver: topologies: %s\n", strings.Join(reg.Names(), ", "))
	fmt.Printf("planserver: cache capacity %d, retry-after %v\n", *capacity, *retryAfter)
	// Connection handling must be as bounded as the admission layers
	// behind it: without read/idle timeouts, slow or idle connections pin
	// goroutines before a request ever reaches the intake gate.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
