// Distributed-tier benchmark (-cluster): spins in-process plan-serving
// tiers of 1/2/4/8 nodes over loopback HTTP, drives a working set that
// overflows any single node's plan cache, and measures how aggregate
// throughput scales as the tier absorbs the cache-miss load — one node
// thrashes its LRU and pays a full DFS per miss, eight nodes keep the
// whole working set resident and serve hits or one-hop proxied hits.
// The run then proves the tier's correctness contracts on a 3-node tier
// (byte-identical plans from every node, cross-node singleflight: a cold
// thundering herd costs exactly one computation tier-wide) and measures
// the warm-restart hit rate of a snapshot/restore cycle. Results land in
// BENCH_cluster.json; cmd/benchgate gates them.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	alpacomm "alpacomm"
	"alpacomm/internal/service"
)

// clusterRunReport is one node-count scaling run.
type clusterRunReport struct {
	Nodes            int     `json:"nodes"`
	OK               int     `json:"ok"`
	DurationSeconds  float64 `json:"duration_seconds"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`
	// TierComputations is the number of actual planner computations the
	// tier ran during the measured window (Σ cache misses across nodes):
	// the figure the tier exists to shrink.
	TierComputations int `json:"tier_computations"`
	// RoutedProxied / ProxyFallbacks aggregate the tier's routing counters
	// over the whole run (fill + measurement).
	RoutedProxied  int64 `json:"routed_proxied"`
	ProxyFallbacks int64 `json:"proxy_fallbacks"`
}

// clusterWarmRestart reports the snapshot/restore cycle.
type clusterWarmRestart struct {
	Keys             int `json:"keys"`
	SnapshotEntries  int `json:"snapshot_entries"`
	Restored         int `json:"restored"`
	SnapshotRejected int `json:"snapshot_rejected"`
	// HitRate is the fraction of replayed keys served without any planner
	// computation anywhere in the restarted tier.
	HitRate float64 `json:"hit_rate"`
}

// clusterReport is BENCH_cluster.json.
type clusterReport struct {
	NodeCounts           []int              `json:"node_counts"`
	PerNodeCacheCapacity int                `json:"per_node_cache_capacity"`
	WorkingSetKeys       int                `json:"working_set_keys"`
	Clients              int                `json:"clients"`
	Runs                 []clusterRunReport `json:"runs"`
	// Speedup8xVs1 is the headline scaling figure: measured throughput of
	// the 8-node tier over the single node on the identical workload.
	Speedup8xVs1 float64 `json:"speedup_8x_vs_1"`
	// ByteIdentical: every node of a 3-node tier served every checked plan
	// byte-identically to a standalone server.
	ByteIdentical bool `json:"byte_identical"`
	// SingleflightComputations: planner computations tier-wide for a
	// 24-way thundering herd on one cold key. The contract is exactly 1.
	SingleflightComputations int                `json:"singleflight_computations"`
	WarmRestart              clusterWarmRestart `json:"warm_restart"`
	// WarmRestartHitRate duplicates WarmRestart.HitRate at top level for
	// the benchmark gate.
	WarmRestartHitRate float64 `json:"warm_restart_hit_rate"`
}

// benchTier is an in-process tier over real loopback TCP: every node is a
// full plan server wrapped by a cluster node, with static peer addresses.
type benchTier struct {
	nodes   []*alpacomm.ClusterNode
	clients []*alpacomm.PlanClient
	urls    []string
	closers []func()
}

func (bt *benchTier) close() {
	for _, c := range bt.closers {
		c()
	}
}

// stats fetches every node's service stats.
func (bt *benchTier) stats(ctx context.Context) []*service.StatsResponse {
	out := make([]*service.StatsResponse, len(bt.clients))
	for i, cl := range bt.clients {
		st, err := cl.Stats(ctx)
		if err != nil {
			fail("cluster: stats from node %d: %v", i, err)
		}
		out[i] = st
	}
	return out
}

// tierComputations sums actual planner computations (cache misses) across
// the tier.
func tierComputations(stats []*service.StatsResponse) int {
	total := 0
	for _, st := range stats {
		total += st.Cache.Misses
	}
	return total
}

// startBenchTier builds an n-node tier with the given per-node cache
// capacity. Listeners come up first so every node knows every peer's
// address at construction.
func startBenchTier(n, capacity int) *benchTier {
	bt := &benchTier{}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("cluster: listen: %v", err)
		}
		lns[i] = ln
		bt.urls = append(bt.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		peers := map[string]string{}
		for j := 0; j < n; j++ {
			if j != i {
				peers[fmt.Sprintf("node%d", j)] = bt.urls[j]
			}
		}
		srv := alpacomm.NewPlanServer(alpacomm.PlanServerConfig{
			Cache:     alpacomm.NewLRUReshardCache(capacity),
			PlanQueue: 256,
		})
		node, err := alpacomm.NewClusterNode(alpacomm.ClusterNodeConfig{
			NodeID:   fmt.Sprintf("node%d", i),
			SelfAddr: bt.urls[i],
			Peers:    peers,
		}, srv)
		if err != nil {
			fail("cluster: node: %v", err)
		}
		hs := &http.Server{Handler: node.Handler()}
		go func(ln net.Listener) { _ = hs.Serve(ln) }(lns[i])
		bt.nodes = append(bt.nodes, node)
		bt.clients = append(bt.clients, alpacomm.NewPlanClient(bt.urls[i], nil))
		bt.closers = append(bt.closers, func() { _ = hs.Close() })
	}
	return bt
}

// clusterKeyReq is the scaling workload's request shape: a 4x4 -> 4x4
// boundary over 8 p3 hosts — expensive enough to plan (~ms-scale DFS)
// that a cache-resident tier is decisively cheaper than recomputation.
// Distinct seeds give distinct canonical cache keys.
func clusterKeyReq(seed int64) *service.PlanRequest {
	return &service.PlanRequest{
		Topology: service.TopologyRef{Name: "p3", Hosts: 8},
		Shape:    []int{128, 128, 8},
		Src:      service.Endpoint{Mesh: "4x4@0", Spec: "RS01R"},
		Dst:      service.Endpoint{Mesh: "4x4@16", Spec: "S01RR"},
		Options: service.PlanOptions{
			Seed: seed, Strategy: "broadcast", Scheduler: "ensemble",
			DFSNodes: 20000, Chunks: 8,
		},
	}
}

// smallKeyReq is the cheap request shape used by the correctness checks.
func smallKeyReq(seed int64) *service.PlanRequest {
	return &service.PlanRequest{
		Topology: service.TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{256, 256},
		Src:      service.Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      service.Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  service.PlanOptions{Seed: seed},
	}
}

// rawClusterPlan posts a plan request and returns the raw body bytes.
func rawClusterPlan(baseURL string, req *service.PlanRequest) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	resp, err := http.Post(baseURL+"/v2/plan", "application/json", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", baseURL, resp.Status, body)
	}
	return body, nil
}

// normalizeCoalesced strips the coalesced flag: whether a response joined
// an in-flight computation is timing, not plan content.
func normalizeCoalesced(b []byte) string {
	return string(bytes.ReplaceAll(b, []byte(`,"coalesced":true`), nil))
}

// keyOwners precomputes, for each working-set key, which tier node owns
// it: the canonical cache key from a scratch parse, routed on a ring
// built exactly like the tier's. This is what a smart client does in a
// consistent-hash serving tier — route to the owner, let the tier handle
// the rest — and the bench sends most traffic that way, keeping a random
// slice to exercise the proxy path under load.
func keyOwners(n, workingSet int) []int {
	scratch := service.New(service.Config{})
	ring := alpacomm.NewClusterRing(0)
	idx := map[string]int{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node%d", i)
		ring.Add(id)
		idx[id] = i
	}
	owners := make([]int, workingSet)
	for k := 0; k < workingSet; k++ {
		_, _, key, err := scratch.ParsePlanRequest(context.Background(), clusterKeyReq(int64(k)))
		if err != nil {
			fail("cluster: parse key %d: %v", k, err)
		}
		owner, ok := ring.Owner(key)
		if !ok {
			fail("cluster: empty ring")
		}
		owners[k] = idx[owner]
	}
	return owners
}

// affinityFraction is the share of measured traffic a smart client routes
// straight to the key's owner; the rest lands on a random node and takes
// the proxy / cache-aside path.
const affinityFraction = 0.9

// runScaling measures one node count: warm every key once (round-robin,
// off the clock), then a closed loop of clients hitting uniformly random
// keys — mostly owner-routed, partly on random nodes — for the measured
// window.
func runScaling(n, capacity, workingSet, clients int, window time.Duration) clusterRunReport {
	bt := startBenchTier(n, capacity)
	defer bt.close()
	ctx := context.Background()
	owners := keyOwners(n, workingSet)

	for k := 0; k < workingSet; k++ {
		if _, err := bt.clients[k%n].PlanV2(ctx, clusterKeyReq(int64(k))); err != nil {
			fail("cluster: warmup key %d: %v", k, err)
		}
	}
	warmComputations := tierComputations(bt.stats(ctx))

	type workerOut struct {
		ok        int
		latencies []float64
	}
	outs := make([]workerOut, clients)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c+1) * -0x61c8864680b583eb))
			for time.Now().Before(deadline) {
				k := rng.Intn(workingSet)
				req := clusterKeyReq(int64(k))
				node := owners[k]
				if rng.Float64() >= affinityFraction {
					node = rng.Intn(n)
				}
				start := time.Now()
				if _, err := bt.clients[node].PlanV2(ctx, req); err != nil {
					fail("cluster: plan on node %d: %v", node, err)
				}
				outs[c].ok++
				outs[c].latencies = append(outs[c].latencies, time.Since(start).Seconds())
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var ok int
	var lat []float64
	for _, o := range outs {
		ok += o.ok
		lat = append(lat, o.latencies...)
	}
	sort.Float64s(lat)
	stats := bt.stats(ctx)
	var proxied, fallbacks int64
	for _, st := range stats {
		if st.Cluster != nil {
			proxied += st.Cluster.RoutedProxied
			fallbacks += st.Cluster.ProxyFallbacks
		}
	}
	return clusterRunReport{
		Nodes:            n,
		OK:               ok,
		DurationSeconds:  elapsed,
		ThroughputRPS:    float64(ok) / elapsed,
		LatencyP50Millis: percentileMillis(lat, 50),
		LatencyP99Millis: percentileMillis(lat, 99),
		TierComputations: tierComputations(stats) - warmComputations,
		RoutedProxied:    proxied,
		ProxyFallbacks:   fallbacks,
	}
}

// checkByteIdentity serves seeds through every node of a 3-node tier —
// cold and cached rounds — and compares bytes against a standalone
// server.
func checkByteIdentity() bool {
	bt := startBenchTier(3, 0)
	defer bt.close()
	standalone := alpacomm.NewPlanServer(alpacomm.PlanServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("cluster: listen: %v", err)
	}
	hs := &http.Server{Handler: standalone}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	saURL := "http://" + ln.Addr().String()

	ok := true
	for seed := int64(1); seed <= 12; seed++ {
		req := smallKeyReq(seed)
		want, err := rawClusterPlan(saURL, req)
		if err != nil {
			fail("cluster: standalone plan: %v", err)
		}
		for round := 0; round < 2; round++ {
			for ni, url := range bt.urls {
				got, err := rawClusterPlan(url, req)
				if err != nil {
					fail("cluster: node %d plan: %v", ni, err)
				}
				if !bytes.Equal(got, want) {
					fmt.Printf("BYTE-IDENTITY FAILED: seed %d round %d node %d diverged\n", seed, round, ni)
					ok = false
				}
			}
		}
	}
	return ok
}

// checkSingleflight fans a 24-way thundering herd on one cold key across
// a fresh 3-node tier and returns how many planner computations the tier
// ran — the cluster-wide singleflight contract says exactly one.
func checkSingleflight() int {
	bt := startBenchTier(3, 0)
	defer bt.close()
	req := clusterKeyReq(1 << 20)
	const herd = 24
	bodies := make([][]byte, herd)
	var wg sync.WaitGroup
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body, err := rawClusterPlan(bt.urls[g%3], req)
			if err != nil {
				fail("cluster: herd request: %v", err)
			}
			bodies[g] = body
		}(g)
	}
	wg.Wait()
	for g := 1; g < herd; g++ {
		if normalizeCoalesced(bodies[g]) != normalizeCoalesced(bodies[0]) {
			fail("cluster: herd members got different plans")
		}
	}
	return tierComputations(bt.stats(context.Background()))
}

// runWarmRestart fills a 3-node tier, snapshots every node, restores the
// snapshots into a fresh tier with the same identities (same ring), and
// replays every key once: the hit rate is the fraction of keys served
// without any planner computation anywhere.
func runWarmRestart(keys int) clusterWarmRestart {
	wr := clusterWarmRestart{Keys: keys}
	dir, err := os.MkdirTemp("", "loadgen-cluster-snap-")
	if err != nil {
		fail("cluster: tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	warm := startBenchTier(3, 4*keys)
	for k := 0; k < keys; k++ {
		if _, err := warm.clients[k%3].PlanV2(ctx, smallKeyReq(int64(k+1))); err != nil {
			fail("cluster: warm fill: %v", err)
		}
	}
	paths := make([]string, 3)
	for i, node := range warm.nodes {
		paths[i] = filepath.Join(dir, fmt.Sprintf("plans-%d.snap", i))
		st, err := node.Snapshot(paths[i])
		if err != nil {
			fail("cluster: snapshot: %v", err)
		}
		wr.SnapshotEntries += st.Entries
	}
	warm.close()

	cold := startBenchTier(3, 4*keys)
	defer cold.close()
	for i, node := range cold.nodes {
		st, err := node.Restore(ctx, paths[i])
		if err != nil {
			fail("cluster: restore: %v", err)
		}
		wr.Restored += st.Restored
		wr.SnapshotRejected += st.Rejected
	}
	for k := 0; k < keys; k++ {
		if _, err := cold.clients[(k+1)%3].PlanV2(ctx, smallKeyReq(int64(k+1))); err != nil {
			fail("cluster: replay: %v", err)
		}
	}
	recomputed := tierComputations(cold.stats(ctx))
	wr.HitRate = 1 - float64(recomputed)/float64(keys)
	return wr
}

// runClusterBench is the -cluster mode entry point.
func runClusterBench(jsonPath string, window time.Duration) {
	if jsonPath == "" {
		jsonPath = "BENCH_cluster.json"
	}
	const (
		capacity   = 32
		workingSet = 160
		clients    = 8
	)
	rep := clusterReport{
		NodeCounts:           []int{1, 2, 4, 8},
		PerNodeCacheCapacity: capacity,
		WorkingSetKeys:       workingSet,
		Clients:              clients,
	}
	for _, n := range rep.NodeCounts {
		fmt.Printf("cluster: measuring %d-node tier (capacity %d, working set %d keys, %s window)\n",
			n, capacity, workingSet, window)
		run := runScaling(n, capacity, workingSet, clients, window)
		fmt.Printf("cluster: %d node(s): %.0f rps, p50 %.2fms p99 %.2fms, %d computations, %d proxied\n",
			n, run.ThroughputRPS, run.LatencyP50Millis, run.LatencyP99Millis,
			run.TierComputations, run.RoutedProxied)
		rep.Runs = append(rep.Runs, run)
	}
	rep.Speedup8xVs1 = rep.Runs[len(rep.Runs)-1].ThroughputRPS / rep.Runs[0].ThroughputRPS
	fmt.Printf("cluster: 8-node vs 1-node speedup: %.1fx\n", rep.Speedup8xVs1)

	rep.ByteIdentical = checkByteIdentity()
	if rep.ByteIdentical {
		fmt.Println("cluster: every node serves byte-identical plans")
	}
	rep.SingleflightComputations = checkSingleflight()
	fmt.Printf("cluster: 24-way cold herd cost %d computation(s) tier-wide\n", rep.SingleflightComputations)
	rep.WarmRestart = runWarmRestart(60)
	rep.WarmRestartHitRate = rep.WarmRestart.HitRate
	fmt.Printf("cluster: warm restart: %d/%d entries restored, hit rate %.1f%%\n",
		rep.WarmRestart.Restored, rep.WarmRestart.SnapshotEntries, 100*rep.WarmRestartHitRate)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail("cluster: marshal report: %v", err)
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		fail("cluster: write report: %v", err)
	}
	fmt.Printf("report written to %s\n", jsonPath)

	failed := false
	if !rep.ByteIdentical {
		failed = true
	}
	if rep.SingleflightComputations != 1 {
		fmt.Printf("SINGLEFLIGHT FAILED: %d computations for one cold key, want 1\n", rep.SingleflightComputations)
		failed = true
	}
	if rep.WarmRestartHitRate < 0.95 {
		fmt.Printf("WARM RESTART FAILED: hit rate %.2f < 0.95\n", rep.WarmRestartHitRate)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
