// Churn mode (-churn): drive a deterministic fault/heal timeline through
// /v2/plan under concurrent load and verify the server serves the churn
// warm — every degraded step warmed from the cached healthy twin, every
// revisited overlay (heal-back, flap) from the cache, no step cold.
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	alpacomm "alpacomm"
	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/service"
)

// churnResult is the churn phase's tally plus the server's replan-counter
// delta over the phase.
type churnResult struct {
	scenario string
	steps    int
	passes   int
	ok       int
	rejected int
	errs     int
	firstErr string
	// delta is ReplanStats(after) - ReplanStats(before): only fills the
	// churn phase itself caused.
	delta resharding.ReplanStats
}

// churnTemplate returns the fixed boundary churn traffic replans: p3 on 4
// hosts, wide enough that the registry timelines (which down the 0-1
// link) leave detour routes.
func churnTemplate() template {
	return template{name: "p3-churn", topology: service.TopologyRef{Name: "p3", Hosts: 4},
		shape: []int{512, 512},
		src:   service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "S0R"}}
}

// faultsRefOf converts a validated mesh overlay to its wire form — the
// inverse of the server's resolveFaults. An empty set maps to nil: a
// healed step is a plain healthy request, not an empty overlay.
func faultsRefOf(fs mesh.FaultSet) *service.FaultsRef {
	if fs.Empty() {
		return nil
	}
	ref := &service.FaultsRef{}
	for _, lf := range fs.Links {
		ref.Links = append(ref.Links, service.LinkFaultRef{
			A: lf.A, B: lf.B, Down: lf.Down,
			BandwidthScale:      lf.BandwidthScale,
			ExtraLatencySeconds: lf.ExtraLatency,
		})
	}
	for _, hf := range fs.Hosts {
		ref.Hosts = append(ref.Hosts, service.HostFaultRef{
			Host: hf.Host, NICScale: hf.NICScale, IntraScale: hf.IntraScale,
		})
	}
	return ref
}

// runChurnPhase walks a churn timeline against the server: a stepper
// advances the active overlay every period while workers replan the churn
// boundary closed-loop with whatever overlay is active. The timeline runs
// `passes` times so heal-backs and flap revisits exercise the cache, and
// the healthy boundary is planned once up front so the very first
// degraded step already has an incumbent to warm from.
func runChurnPhase(ctx context.Context, client *alpacomm.PlanClient, scenario string, period time.Duration, workers, passes int) (*churnResult, error) {
	reg := alpacomm.DefaultTopologyRegistry()
	tmpl := churnTemplate()
	topo, err := reg.Build(tmpl.topology.Name, alpacomm.TopologyParams{Hosts: tmpl.topology.Hosts})
	if err != nil {
		return nil, err
	}
	var tl mesh.ChurnTimeline
	if tl, err = reg.BuildChurnScenario(scenario, topo); err != nil {
		// Not a registry scenario: accept an inline timeline spec, the same
		// notation mesh.ParseChurnTimeline and the README use.
		parsed, perr := mesh.ParseChurnTimeline(scenario)
		if perr != nil {
			return nil, fmt.Errorf("-churn-scenario %q: not a registry scenario (%v) or a timeline spec (%v)", scenario, err, perr)
		}
		if err := parsed.Validate(topo); err != nil {
			return nil, fmt.Errorf("-churn-scenario %q: %v", scenario, err)
		}
		tl = parsed
	}
	res := &churnResult{scenario: scenario, steps: len(tl.Steps), passes: passes}

	// The healthy incumbent: one warm-up plan so step 0 warms instead of
	// going cold, mirroring a real deployment where the healthy plan was
	// serving before the fault arrived.
	if _, err := client.PlanV2(ctx, &alpacomm.PlanServiceRequest{
		Topology: tmpl.topology, Shape: tmpl.shape, DType: tmpl.dtype,
		Src: tmpl.src, Dst: tmpl.dst,
		Options: service.PlanOptions{Seed: 1},
	}); err != nil {
		return nil, fmt.Errorf("healthy warm-up: %v", err)
	}
	before, err := client.Stats(ctx)
	if err != nil {
		return nil, err
	}

	// The stepper owns the active overlay; workers load it per request.
	var active atomic.Value // *service.FaultsRef (nil wrapped below)
	type box struct{ ref *service.FaultsRef }
	active.Store(box{nil})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := 0; p < passes; p++ {
			for _, step := range tl.Steps {
				active.Store(box{faultsRefOf(step.Faults)})
				time.Sleep(period)
			}
		}
	}()

	stats := make([]clientStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(out *clientStats) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_, err := client.PlanV2(ctx, &alpacomm.PlanServiceRequest{
					Topology: tmpl.topology, Shape: tmpl.shape, DType: tmpl.dtype,
					Src: tmpl.src, Dst: tmpl.dst,
					Options: service.PlanOptions{Seed: 1},
					Faults:  active.Load().(box).ref,
				})
				switch e := err.(type) {
				case nil:
					out.ok++
				case *service.OverloadedError:
					out.rejected++
					backoff := e.RetryAfter
					if backoff > 50*time.Millisecond {
						backoff = 50 * time.Millisecond
					}
					time.Sleep(backoff)
				default:
					out.errs++
					if out.firstErr == "" {
						out.firstErr = err.Error()
					}
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	for _, s := range stats {
		res.ok += s.ok
		res.rejected += s.rejected
		res.errs += s.errs
		if res.firstErr == "" {
			res.firstErr = s.firstErr
		}
	}

	after, err := client.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.delta = resharding.ReplanStats{
		CacheHits:    after.Replan.CacheHits - before.Replan.CacheHits,
		WarmIdentity: after.Replan.WarmIdentity - before.Replan.WarmIdentity,
		WarmSearch:   after.Replan.WarmSearch - before.Replan.WarmSearch,
		WarmRejected: after.Replan.WarmRejected - before.Replan.WarmRejected,
		WarmInvalid:  after.Replan.WarmInvalid - before.Replan.WarmInvalid,
		Cold:         after.Replan.Cold - before.Replan.Cold,
	}
	return res, nil
}
