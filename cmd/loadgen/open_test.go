package main

import (
	"reflect"
	"testing"
	"time"
)

// Tests for the open-loop engine: the coordinated-omission regression
// (the reason corrected percentiles exist), determinism of the simulated
// rows, and the SLO-vs-no-SLO contrast the benchgate -slo gate relies on.

// TestCoordinatedOmissionCorrection pins the correction: a server that
// stalls for one second in the middle of the run must show that second in
// the corrected p99, while the naive (dispatch-measured) p99 stays small
// because agents with a busy connection simply dispatch late. A closed
// loop — or an open loop measured naively — would report the naive
// figure and hide the outage.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	row := runOpenSim(simParams{
		mix:        "poisson",
		rate:       1000,
		agents:     10, // ~100 arrivals per agent land inside the stall
		horizon:    3 * time.Second,
		seed:       7,
		budget:     0, // no controller: the stall must surface undamped
		stallStart: 1 * time.Second,
		stallEnd:   2 * time.Second,
	})
	if row.Shed != 0 || row.Served != row.Offered {
		t.Fatalf("no-SLO stall run shed %d of %d; every request must eventually serve", row.Shed, row.Offered)
	}
	// The last request dispatched before the stall completes ~1s late, and
	// every arrival scheduled during the stall inherits that delay from
	// its intended start.
	if row.CorrectedP99Ms < 500 {
		t.Fatalf("corrected p99 = %.2fms; a 1s stall must dominate it", row.CorrectedP99Ms)
	}
	if ratio := row.CorrectedP99Ms / row.NaiveP99Ms; ratio < 10 {
		t.Fatalf("corrected p99 %.2fms only %.1fx naive %.2fms; correction must expose the stall",
			row.CorrectedP99Ms, ratio, row.NaiveP99Ms)
	}
	if row.CorrectedP50Ms < row.NaiveP50Ms {
		t.Fatalf("corrected p50 %.3fms < naive p50 %.3fms; corrected latency includes schedule delay",
			row.CorrectedP50Ms, row.NaiveP50Ms)
	}
}

// TestOpenSimDeterministic pins the BENCH contract: the same parameters
// produce an identical row, and a different seed produces a different
// one.
func TestOpenSimDeterministic(t *testing.T) {
	p := simParams{
		mix: "bursty", rate: 5000, agents: 200,
		horizon: time.Second, seed: 3, budget: 25 * time.Millisecond,
	}
	a, b := runOpenSim(p), runOpenSim(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical params diverge:\n %+v\n %+v", a, b)
	}
	p.seed = 4
	if c := runOpenSim(p); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced an identical row")
	}
}

// TestOpenSimSLOHoldsBudget pins the acceptance criterion the -slo gate
// enforces: under a saturating offered rate, the controller keeps the
// corrected p99 within budget by degrading and shedding, while the same
// load without the controller blows through it.
func TestOpenSimSLOHoldsBudget(t *testing.T) {
	const budget = 25 * time.Millisecond
	for _, mix := range []string{"poisson", "bursty", "diurnal"} {
		base := simParams{
			mix: mix, rate: 20000, agents: 800,
			horizon: time.Second, seed: 1,
		}
		withSLO, withoutSLO := base, base
		withSLO.budget = budget
		slo := runOpenSim(withSLO)
		raw := runOpenSim(withoutSLO)
		if slo.CorrectedP99Ms > budget.Seconds()*1e3 {
			t.Errorf("%s: corrected p99 %.2fms exceeds the %.0fms budget with the controller on",
				mix, slo.CorrectedP99Ms, budget.Seconds()*1e3)
		}
		if slo.Degraded == 0 {
			t.Errorf("%s: controller never degraded under a saturating rate", mix)
		}
		if raw.CorrectedP99Ms <= budget.Seconds()*1e3 {
			t.Errorf("%s: no-SLO corrected p99 %.2fms within budget — the load is not saturating",
				mix, raw.CorrectedP99Ms)
		}
		if slo.Served+slo.Shed != slo.Offered {
			t.Errorf("%s: served %d + shed %d != offered %d", mix, slo.Served, slo.Shed, slo.Offered)
		}
	}
}

// TestParseMixes pins the flag parsing.
func TestParseMixes(t *testing.T) {
	got := parseMixes("poisson, bursty,diurnal")
	want := []string{"poisson", "bursty", "diurnal"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMixes = %v, want %v", got, want)
	}
}
