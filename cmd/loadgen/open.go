package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	alpacomm "alpacomm"
	"alpacomm/internal/loadmodel"
	"alpacomm/internal/service"
)

// Open-loop load generation. The closed loop in main.go sends the next
// request when the previous response lands, so a slow server throttles
// its own load and the measured percentiles flatter it — coordinated
// omission. The open loop fixes the schedule first: every request gets an
// intended start time drawn from a seeded arrival process
// (internal/loadmodel), agents dispatch on that schedule no matter how
// the server is doing, and latency is measured from the intended start.
//
// Two modes share the machinery:
//
//   - -open drives a real server over HTTP: many lightweight agents, one
//     connection each, dispatching /v2/plan requests on their private
//     arrival streams (per-agent derived seeds make the fleet shardable).
//   - -open-sim replays the same arrival streams through a discrete-event
//     model of the serve path — fixed worker pool, FIFO queue, cache-hit
//     fraction, and the *real* service.SLOController on a simulated
//     clock. No wall time, no goroutines: the run is a pure function of
//     its seed, so the BENCH rows are byte-identical across reruns and CI
//     can gate on them exactly.

// openLoopRow is one open-loop measurement in BENCH_service.json.
type openLoopRow struct {
	Mix    string `json:"mix"` // poisson | bursty | diurnal
	SLO    bool   `json:"slo"` // admission controller enabled
	Agents int    `json:"agents"`
	Seed   uint64 `json:"seed"`
	// OfferedRPS is the scheduled arrival rate; AchievedRPS counts
	// responses served within the run horizon. GapFraction is the
	// offered-vs-achieved shortfall (0 = the server kept up).
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	GapFraction float64 `json:"gap_fraction"`
	Offered     int     `json:"offered"`
	Served      int     `json:"served"`
	Shed        int     `json:"shed"`
	Degraded    int     `json:"degraded_served"`
	BudgetMs    float64 `json:"budget_ms,omitempty"`
	// Corrected percentiles measure from the intended start (coordinated
	// omission corrected); naive percentiles measure from dispatch, the
	// figure a closed-loop generator would report.
	CorrectedP50Ms  float64 `json:"corrected_p50_ms"`
	CorrectedP99Ms  float64 `json:"corrected_p99_ms"`
	CorrectedP999Ms float64 `json:"corrected_p99_9_ms"`
	NaiveP50Ms      float64 `json:"naive_p50_ms"`
	NaiveP99Ms      float64 `json:"naive_p99_ms"`
	NaiveP999Ms     float64 `json:"naive_p99_9_ms"`
	// Controller counters (SLO rows only).
	Degrades   int64 `json:"degrades,omitempty"`
	Sheds      int64 `json:"sheds,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
}

// buildProcess maps a mix name to its arrival process at the given
// per-agent rate.
func buildProcess(mix string, rate float64, seed uint64) loadmodel.Process {
	switch mix {
	case "poisson":
		return loadmodel.NewPoisson(rate, seed)
	case "bursty":
		return loadmodel.StandardBursty(rate, seed)
	case "diurnal":
		return loadmodel.StandardDiurnal(rate, seed)
	default:
		fail("unknown -open-mix %q (want poisson, bursty or diurnal)", mix)
		return nil
	}
}

// ---------------------------------------------------------------------------
// Deterministic simulation (-open-sim)

// Simulated serve-path costs. Constants, not flags: they parameterize the
// committed BENCH rows, so changing them means regenerating the baseline.
const (
	simWorkers      = 8
	simFullCost     = 8 * time.Millisecond   // full-quality planning (DFS)
	simDegradedCost = 300 * time.Microsecond // greedy-degraded planning
	simHitCost      = 40 * time.Microsecond  // pre-serialized cache hit
	simHitFraction  = 0.25                   // fraction of arrivals hitting the cache
	simWindow       = 250 * time.Millisecond // controller latency window
	simDwell        = 50 * time.Millisecond  // controller de-escalation dwell
	simDegradeDepth = 2 * simWorkers         // queue depth that degrades
	simShedDepth    = 32 * simWorkers        // queue depth that sheds
)

// simParams configures one simulated run.
type simParams struct {
	mix     string
	rate    float64 // total offered arrivals per second
	agents  int
	horizon time.Duration
	seed    uint64
	budget  time.Duration // 0 disables the SLO controller
	// stall freezes service starts inside [stallStart, stallEnd): the
	// deliberately wedged server of the coordinated-omission regression
	// test.
	stallStart, stallEnd time.Duration
}

// simArrival is one scheduled request: intended start plus whether it
// hits the plan cache (drawn at schedule build time so the trace is fixed
// before the run).
type simArrival struct {
	intended time.Duration
	hit      bool
}

// simComplete is a queued completion event.
type simComplete struct {
	at         time.Duration
	agent      int
	intended   time.Duration
	dispatched time.Duration
}

// simQueued is one request waiting for a worker.
type simQueued struct {
	agent      int
	intended   time.Duration
	dispatched time.Duration
	cost       time.Duration
}

// simClock adapts simulated time to the controller's injected clock.
type simClock struct{ now time.Duration }

func (c *simClock) time() time.Time { return time.Unix(0, 0).Add(c.now) }

// openSim is the discrete-event state: per-agent arrival streams with one
// connection each, a worker pool with FIFO queue, and the real admission
// controller.
type openSim struct {
	p   simParams
	arr [][]simArrival
	nxt []int
	bsy []bool

	clk *simClock
	ctl *service.SLOController

	running int
	queue   []simQueued
	qhead   int

	completions []simComplete // min-heap by (at, agent)

	served, shed, degraded int
	servedInHorizon        int
	corrected, naive       []float64 // seconds
}

// runOpenSim executes one simulated run and returns its BENCH row.
func runOpenSim(p simParams) openLoopRow {
	s := &openSim{p: p, clk: &simClock{}}
	if p.budget > 0 {
		s.ctl = service.NewSLOController(service.SLOConfig{
			P99Budget:    p.budget,
			Window:       simWindow,
			Dwell:        simDwell,
			EvalEvery:    -1, // re-evaluate every Admit: decisions depend only on the trace
			DegradeDepth: simDegradeDepth,
			ShedDepth:    simShedDepth,
		}, s.clk.time)
	}

	// Build the full schedule up front: per-agent streams from derived
	// seeds, cache-hit draws from an independent derived stream.
	perAgent := p.rate / float64(p.agents)
	offered := 0
	s.arr = make([][]simArrival, p.agents)
	s.nxt = make([]int, p.agents)
	s.bsy = make([]bool, p.agents)
	type arrivalEvent struct {
		at    time.Duration
		agent int
		idx   int
	}
	var events []arrivalEvent
	for a := 0; a < p.agents; a++ {
		proc := buildProcess(p.mix, perAgent, loadmodel.DeriveSeed(p.seed, a))
		hits := rand.New(rand.NewSource(int64(loadmodel.DeriveSeed(p.seed+1, a))))
		for _, off := range loadmodel.Offsets(proc, p.horizon) {
			s.arr[a] = append(s.arr[a], simArrival{intended: off, hit: hits.Float64() < simHitFraction})
			events = append(events, arrivalEvent{at: off, agent: a, idx: len(s.arr[a]) - 1})
			offered++
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].agent < events[j].agent
	})

	// Event loop: completions and arrivals merged in time order,
	// completions first on ties so freed workers and agents are visible
	// to same-instant arrivals.
	ei := 0
	for ei < len(events) || len(s.completions) > 0 {
		if len(s.completions) > 0 &&
			(ei == len(events) || s.completions[0].at <= events[ei].at) {
			s.complete(s.popCompletion())
			continue
		}
		ev := events[ei]
		ei++
		if !s.bsy[ev.agent] && ev.idx == s.nxt[ev.agent] {
			s.agentNext(ev.at, ev.agent)
		}
	}

	sort.Float64s(s.corrected)
	sort.Float64s(s.naive)
	horizonSec := p.horizon.Seconds()
	row := openLoopRow{
		Mix:             p.mix,
		SLO:             p.budget > 0,
		Agents:          p.agents,
		Seed:            p.seed,
		Offered:         offered,
		OfferedRPS:      float64(offered) / horizonSec,
		AchievedRPS:     float64(s.servedInHorizon) / horizonSec,
		Served:          s.served,
		Shed:            s.shed,
		Degraded:        s.degraded,
		BudgetMs:        float64(p.budget) / float64(time.Millisecond),
		CorrectedP50Ms:  percentileMillis(s.corrected, 50),
		CorrectedP99Ms:  percentileMillis(s.corrected, 99),
		CorrectedP999Ms: percentileMillis(s.corrected, 99.9),
		NaiveP50Ms:      percentileMillis(s.naive, 50),
		NaiveP99Ms:      percentileMillis(s.naive, 99),
		NaiveP999Ms:     percentileMillis(s.naive, 99.9),
	}
	if row.OfferedRPS > 0 {
		row.GapFraction = 1 - row.AchievedRPS/row.OfferedRPS
	}
	if s.ctl != nil {
		st := s.ctl.Snapshot()
		row.Degrades, row.Sheds, row.Recoveries = st.Degrades, st.Sheds, st.Recoveries
	}
	return row
}

// agentNext dispatches the agent's due arrivals in order until one is in
// flight (the agent's single connection is busy) or none are due. Shed
// requests finish instantly, so a backlog built up behind a stall can
// drain several arrivals at one instant.
func (s *openSim) agentNext(now time.Duration, a int) {
	for s.nxt[a] < len(s.arr[a]) && s.arr[a][s.nxt[a]].intended <= now {
		r := s.arr[a][s.nxt[a]]
		s.nxt[a]++
		if s.dispatch(now, a, r) {
			s.bsy[a] = true
			return
		}
	}
	s.bsy[a] = false
}

// dispatch admits one request exactly as the /v2 handler does: cache hits
// always serve, degraded mode swaps the planning cost, shed mode rejects
// misses. Reports whether the request occupies the agent's connection.
func (s *openSim) dispatch(now time.Duration, a int, r simArrival) bool {
	mode := service.AdmitFull
	if s.ctl != nil {
		s.clk.now = now
		mode = s.ctl.Admit(s.running + len(s.queue) - s.qhead)
	}
	var cost time.Duration
	switch {
	case r.hit:
		cost = simHitCost
	case mode == service.AdmitShed:
		s.shed++
		s.ctl.NoteShed(false)
		return false
	case mode == service.AdmitDegraded:
		cost = simDegradedCost
		s.degraded++
		s.ctl.NoteDegraded()
	default:
		cost = simFullCost
	}
	if s.running < simWorkers {
		s.running++
		s.pushCompletion(simComplete{
			at: s.stallAdjust(now) + cost, agent: a, intended: r.intended, dispatched: now,
		})
	} else {
		s.queue = append(s.queue, simQueued{agent: a, intended: r.intended, dispatched: now, cost: cost})
	}
	return true
}

// complete retires one served request: record both latencies, feed the
// controller, hand the worker to the queue head, and let the agent
// dispatch its next due arrival.
func (s *openSim) complete(e simComplete) {
	s.served++
	if e.at <= s.p.horizon {
		s.servedInHorizon++
	}
	s.corrected = append(s.corrected, (e.at - e.intended).Seconds())
	s.naive = append(s.naive, (e.at - e.dispatched).Seconds())
	if s.ctl != nil {
		s.clk.now = e.at
		s.ctl.Observe(e.at - e.dispatched)
	}
	s.running--
	if s.qhead < len(s.queue) {
		q := s.queue[s.qhead]
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue, s.qhead = s.queue[:0], 0
		}
		s.running++
		s.pushCompletion(simComplete{
			at: s.stallAdjust(e.at) + q.cost, agent: q.agent, intended: q.intended, dispatched: q.dispatched,
		})
	}
	s.agentNext(e.at, e.agent)
}

// stallAdjust delays a service start that lands inside the stall window.
func (s *openSim) stallAdjust(t time.Duration) time.Duration {
	if t >= s.p.stallStart && t < s.p.stallEnd {
		return s.p.stallEnd
	}
	return t
}

// pushCompletion / popCompletion: a small binary min-heap ordered by
// (time, agent) so same-instant completions retire in a fixed order.
func (s *openSim) pushCompletion(e simComplete) {
	h := append(s.completions, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !completionLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.completions = h
}

func (s *openSim) popCompletion() simComplete {
	h := s.completions
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && completionLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && completionLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	s.completions = h
	return top
}

func completionLess(a, b simComplete) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.agent < b.agent
}

// runOpenSimMode runs the full simulated matrix — every mix, with and
// without the controller — and merges the rows into the report JSON.
func runOpenSimMode(jsonPath string, mixes []string, rate float64, agents int, horizon time.Duration, seed uint64, budget time.Duration) {
	var rows []openLoopRow
	for _, mix := range mixes {
		for _, b := range []time.Duration{budget, 0} {
			p := simParams{mix: mix, rate: rate, agents: agents, horizon: horizon, seed: seed, budget: b}
			row := runOpenSim(p)
			rows = append(rows, row)
			printOpenRow(row)
		}
	}
	if jsonPath != "" {
		mergeOpenRows(jsonPath, rows)
		fmt.Printf("open-loop rows merged into %s\n", jsonPath)
	}
}

// mergeOpenRows rewrites the report file with the open_loop section
// replaced, preserving every closed-loop field already there. The report
// struct is the file's only writer, so the round-trip is lossless.
func mergeOpenRows(path string, rows []openLoopRow) {
	var rep report
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			fail("merge %s: %v", path, err)
		}
	}
	rep.OpenLoop = rows
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail("marshal report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail("write report: %v", err)
	}
}

func printOpenRow(r openLoopRow) {
	slo := "slo off"
	if r.SLO {
		slo = fmt.Sprintf("slo %gms", r.BudgetMs)
	}
	fmt.Printf("open-loop %-7s %-9s %5d agents  offered %7.0f/s  achieved %7.0f/s  gap %5.1f%%\n",
		r.Mix, slo, r.Agents, r.OfferedRPS, r.AchievedRPS, 100*r.GapFraction)
	fmt.Printf("  served %d (degraded %d, shed %d)  corrected p50/p99/p99.9 %.2f/%.2f/%.2fms  naive %.2f/%.2f/%.2fms\n",
		r.Served, r.Degraded, r.Shed,
		r.CorrectedP50Ms, r.CorrectedP99Ms, r.CorrectedP999Ms,
		r.NaiveP50Ms, r.NaiveP99Ms, r.NaiveP999Ms)
	if r.SLO {
		fmt.Printf("  controller: %d degrades, %d sheds, %d recoveries\n", r.Degrades, r.Sheds, r.Recoveries)
	}
}

// ---------------------------------------------------------------------------
// Live open loop (-open)

// openAgentStats is one live agent's tally.
type openAgentStats struct {
	served, shed, errs, degraded int
	corrected, naive             []float64
	firstErr                     string
}

// runOpenLive drives a real server with open-loop agents: each agent owns
// one connection and a private arrival stream, dispatches on schedule (or
// as soon as its connection frees, for arrivals whose intended start has
// passed), and measures latency from the intended start.
func runOpenLive(ctx context.Context, client *alpacomm.PlanClient, mix string, rate float64, agents int, horizon time.Duration, seed uint64, budget time.Duration) openLoopRow {
	templates := make([]template, 0)
	for _, t := range requestMix() {
		if !t.autotune {
			templates = append(templates, t)
		}
	}
	perAgent := rate / float64(agents)
	stats := make([]openAgentStats, agents)
	offsets := make([][]time.Duration, agents)
	offered := 0
	for a := 0; a < agents; a++ {
		proc := buildProcess(mix, perAgent, loadmodel.DeriveSeed(seed, a))
		offsets[a] = loadmodel.Offsets(proc, horizon)
		offered += len(offsets[a])
	}

	start := time.Now()
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(loadmodel.DeriveSeed(seed+1, a))))
			out := &stats[a]
			for _, off := range offsets[a] {
				intended := start.Add(off)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				t := templates[rng.Intn(len(templates))]
				dispatched := time.Now()
				resp, err := client.PlanV2(ctx, &alpacomm.PlanServiceRequest{
					Topology: t.topology, Shape: t.shape, DType: t.dtype,
					Src: t.src, Dst: t.dst,
					Options: service.PlanOptions{Seed: 1 + int64(rng.Intn(8))},
				})
				now := time.Now()
				switch err.(type) {
				case nil:
					out.served++
					if resp.Degraded {
						out.degraded++
					}
					out.corrected = append(out.corrected, now.Sub(intended).Seconds())
					out.naive = append(out.naive, now.Sub(dispatched).Seconds())
				case *service.OverloadedError:
					// Open loop: no backoff, the schedule is the schedule.
					out.shed++
				default:
					out.errs++
					if out.firstErr == "" {
						out.firstErr = err.Error()
					}
				}
			}
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all openAgentStats
	for _, s := range stats {
		all.served += s.served
		all.shed += s.shed
		all.errs += s.errs
		all.degraded += s.degraded
		all.corrected = append(all.corrected, s.corrected...)
		all.naive = append(all.naive, s.naive...)
		if all.firstErr == "" {
			all.firstErr = s.firstErr
		}
	}
	sort.Float64s(all.corrected)
	sort.Float64s(all.naive)
	row := openLoopRow{
		Mix:             mix,
		SLO:             true,
		Agents:          agents,
		Seed:            seed,
		Offered:         offered,
		OfferedRPS:      float64(offered) / horizon.Seconds(),
		AchievedRPS:     float64(all.served) / elapsed,
		Served:          all.served,
		Shed:            all.shed,
		Degraded:        all.degraded,
		BudgetMs:        float64(budget) / float64(time.Millisecond),
		CorrectedP50Ms:  percentileMillis(all.corrected, 50),
		CorrectedP99Ms:  percentileMillis(all.corrected, 99),
		CorrectedP999Ms: percentileMillis(all.corrected, 99.9),
		NaiveP50Ms:      percentileMillis(all.naive, 50),
		NaiveP99Ms:      percentileMillis(all.naive, 99),
		NaiveP999Ms:     percentileMillis(all.naive, 99.9),
	}
	if row.OfferedRPS > 0 {
		row.GapFraction = 1 - row.AchievedRPS/row.OfferedRPS
	}
	if all.errs > 0 {
		fmt.Printf("open-loop: %d request errors (first: %s)\n", all.errs, all.firstErr)
	}
	printOpenRow(row)
	if all.errs > 0 || all.served == 0 {
		fail("open-loop live run failed: %d errors, %d served", all.errs, all.served)
	}
	return row
}

// parseMixes splits the -open-mix list and validates every entry.
func parseMixes(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		switch m {
		case "poisson", "bursty", "diurnal":
			out = append(out, m)
		default:
			fail("unknown mix %q in -open-mix (want poisson, bursty or diurnal)", m)
		}
	}
	if len(out) == 0 {
		fail("-open-mix selects no mixes")
	}
	return out
}
