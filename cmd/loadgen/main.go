// Command loadgen is a closed-loop, multi-client load generator for the
// plan server (cmd/planserver): each client issues plan/autotune requests
// back-to-back from a deterministic request mix over shapes, sharding
// specs and hardware topologies, and the run reports throughput, latency
// percentiles (p50/p95/p99), coalescing and backpressure counts.
//
// Modes:
//
//	loadgen -addr http://host:8100 -clients 64 -requests 100
//	loadgen -smoke -json BENCH_service.json
//
// -smoke starts an in-process server on a loopback port, runs a fixed
// closed-loop load, verifies that served plans are byte-identical to the
// direct resharding path and that the LRU cache respected its capacity,
// and writes the benchmark JSON — the CI perf gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"time"

	alpacomm "alpacomm"
	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/service"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}

// template is one request shape of the deterministic mix.
type template struct {
	name     string
	autotune bool
	topology service.TopologyRef
	shape    []int
	dtype    string
	src, dst service.Endpoint
}

// requestMix returns the fixed slate the generator draws from: a spread of
// topologies (p3 / dgx-a100 / mixed), tensor shapes and spec pairs. With
// few templates and many clients, duplicate keys are common — exactly the
// coalescing- and cache-heavy traffic a production planner sees.
func requestMix() []template {
	return []template{
		{name: "p3-small", topology: service.TopologyRef{Name: "p3", Hosts: 2},
			shape: []int{256, 256},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		{name: "p3-large", topology: service.TopologyRef{Name: "p3", Hosts: 2},
			shape: []int{1024, 1024},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "RS0"}},
		{name: "p3-wide", topology: service.TopologyRef{Name: "p3", Hosts: 4},
			shape: []int{1024, 512},
			src:   service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "S0R"}},
		{name: "dgx-mid", topology: service.TopologyRef{Name: "dgx-a100", Hosts: 2},
			shape: []int{512, 512}, dtype: "fp16",
			src: service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "S0R"}},
		{name: "dgx-large", topology: service.TopologyRef{Name: "dgx-a100", Hosts: 2},
			shape: []int{2048, 1024},
			src:   service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "RS1"}},
		{name: "mixed-tier", topology: service.TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 1.5},
			shape: []int{256, 512},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		{name: "p3-autotune", autotune: true, topology: service.TopologyRef{Name: "p3", Hosts: 2},
			shape: []int{512, 512},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		{name: "mixed-autotune", autotune: true, topology: service.TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 1.5},
			shape: []int{256, 256},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "RS0"}},
	}
}

// clientStats is one worker's tally, merged after the run.
type clientStats struct {
	ok, rejected, errs int
	coalesced          int
	latencies          []float64 // seconds, successful requests only
	firstErr           string
}

// report is the benchmark JSON (BENCH_service.json in CI).
type report struct {
	Clients         int     `json:"clients"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Rejected        int     `json:"rejected"`
	Errors          int     `json:"errors"`
	Coalesced       int     `json:"coalesced"`
	DurationSeconds float64 `json:"duration_seconds"`
	// ThroughputRPS counts served (200) responses only; rejected and
	// errored requests are excluded so overload cannot inflate the figure.
	ThroughputRPS float64 `json:"throughput_rps"`
	// OfferedRPS is the closed-loop offered load including rejections.
	OfferedRPS       float64 `json:"offered_rps"`
	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP95Millis float64 `json:"latency_p95_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`
	LatencyMaxMillis float64 `json:"latency_max_ms"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	CacheEntries     int     `json:"cache_entries"`
	CacheEvictions   int     `json:"cache_evictions"`
	CacheCapacity    int     `json:"cache_capacity"`
	ServerCoalesced  int64   `json:"server_coalesced"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8100", "plan server base URL")
	clients := flag.Int("clients", 64, "concurrent closed-loop clients")
	requests := flag.Int("requests", 100, "requests per client (count mode)")
	duration := flag.Duration("duration", 0, "run for a fixed duration instead of a fixed count")
	seed := flag.Int64("seed", 1, "request-mix seed (the mix is deterministic per seed)")
	autotuneFrac := flag.Float64("autotune-fraction", 0.05, "fraction of requests sent to /v1/autotune")
	spread := flag.Int("spread", 1, "distinct Options.Seed values per template (>1 multiplies distinct cache keys, exercising LRU eviction)")
	jsonPath := flag.String("json", "", "write the benchmark report JSON to this file")
	verify := flag.Bool("verify", false, "verify served plans byte-identical to the direct resharding path")
	smoke := flag.Bool("smoke", false, "self-contained CI smoke: in-process server, fixed load, verification")
	smokeCapacity := flag.Int("smoke-cache-capacity", 64, "in-process server LRU capacity in -smoke mode")
	flag.Parse()
	if *spread < 1 {
		*spread = 1
	}

	base := *addr
	var srv *alpacomm.PlanServer
	if *smoke {
		srv = alpacomm.NewPlanServer(alpacomm.PlanServerConfig{
			Cache:     alpacomm.NewLRUReshardCache(*smokeCapacity),
			PlanQueue: 256,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("listen: %v", err)
		}
		defer ln.Close()
		go func() { _ = (&http.Server{Handler: srv}).Serve(ln) }()
		base = "http://" + ln.Addr().String()
		*verify = true
		if *jsonPath == "" {
			*jsonPath = "BENCH_service.json"
		}
		fmt.Printf("loadgen: smoke server on %s (cache capacity %d)\n", base, *smokeCapacity)
	}

	mix := requestMix()
	client := alpacomm.NewPlanClient(base, nil)
	ctx := context.Background()

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	fmt.Printf("loadgen: %d clients, mix of %d templates (spread %d), target %s\n",
		*clients, len(mix), *spread, base)
	start := time.Now()
	stats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runClient(ctx, client, mix, &stats[c], clientConfig{
				rng:          rand.New(rand.NewSource(*seed ^ int64(c+1)*-0x61c8864680b583eb)),
				requests:     *requests,
				deadline:     deadline,
				autotuneFrac: *autotuneFrac,
				spread:       *spread,
			})
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// Merge.
	var all clientStats
	for _, s := range stats {
		all.ok += s.ok
		all.rejected += s.rejected
		all.errs += s.errs
		all.coalesced += s.coalesced
		all.latencies = append(all.latencies, s.latencies...)
		if all.firstErr == "" {
			all.firstErr = s.firstErr
		}
	}
	sort.Float64s(all.latencies)
	total := all.ok + all.rejected + all.errs

	sstats, err := client.Stats(ctx)
	if err != nil {
		fail("stats: %v", err)
	}

	rep := report{
		Clients:          *clients,
		Requests:         total,
		OK:               all.ok,
		Rejected:         all.rejected,
		Errors:           all.errs,
		Coalesced:        all.coalesced,
		DurationSeconds:  elapsed,
		ThroughputRPS:    float64(all.ok) / elapsed,
		OfferedRPS:       float64(total) / elapsed,
		LatencyP50Millis: percentileMillis(all.latencies, 50),
		LatencyP95Millis: percentileMillis(all.latencies, 95),
		LatencyP99Millis: percentileMillis(all.latencies, 99),
		LatencyMaxMillis: percentileMillis(all.latencies, 100),
		CacheHits:        sstats.Cache.Hits,
		CacheMisses:      sstats.Cache.Misses,
		CacheEntries:     sstats.Cache.Entries,
		CacheEvictions:   sstats.Cache.Evictions,
		CacheCapacity:    sstats.Cache.Capacity,
		ServerCoalesced:  sstats.Plan.Coalesced + sstats.Autotune.Coalesced,
	}
	printReport(rep)
	if all.firstErr != "" {
		fmt.Printf("first error: %s\n", all.firstErr)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail("marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fail("write report: %v", err)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}

	failed := false
	if *verify {
		if n := verifyPlans(ctx, client, mix); n > 0 {
			fmt.Printf("VERIFY FAILED: %d template(s) diverged from the direct resharding path\n", n)
			failed = true
		} else {
			fmt.Println("verify: served plans byte-identical to the direct resharding path")
		}
	}
	if rep.CacheCapacity > 0 && rep.CacheEntries > rep.CacheCapacity {
		fmt.Printf("LRU VIOLATION: %d entries > capacity %d\n", rep.CacheEntries, rep.CacheCapacity)
		failed = true
	}
	if ac := sstats.AutotuneCache; ac.Capacity > 0 && ac.Entries > ac.Capacity {
		fmt.Printf("LRU VIOLATION (autotune cache): %d entries > capacity %d\n", ac.Entries, ac.Capacity)
		failed = true
	}
	if *smoke {
		if all.errs > 0 {
			fmt.Printf("SMOKE FAILED: %d request errors\n", all.errs)
			failed = true
		}
		if rep.CacheHits+int(rep.ServerCoalesced) == 0 {
			fmt.Println("SMOKE FAILED: duplicate requests neither coalesced nor hit the cache")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

type clientConfig struct {
	rng          *rand.Rand
	requests     int
	deadline     time.Time
	autotuneFrac float64
	spread       int
}

// runClient is one closed-loop worker: next request starts when the
// previous response lands.
func runClient(ctx context.Context, client *alpacomm.PlanClient, mix []template, out *clientStats, cfg clientConfig) {
	planTemplates := make([]template, 0, len(mix))
	autoTemplates := make([]template, 0, len(mix))
	for _, t := range mix {
		if t.autotune {
			autoTemplates = append(autoTemplates, t)
		} else {
			planTemplates = append(planTemplates, t)
		}
	}
	for i := 0; cfg.deadline.IsZero() && i < cfg.requests || !cfg.deadline.IsZero() && time.Now().Before(cfg.deadline); i++ {
		var t template
		autotune := len(autoTemplates) > 0 && cfg.rng.Float64() < cfg.autotuneFrac
		if autotune {
			t = autoTemplates[cfg.rng.Intn(len(autoTemplates))]
		} else {
			t = planTemplates[cfg.rng.Intn(len(planTemplates))]
		}
		opts := service.PlanOptions{Seed: 1 + int64(cfg.rng.Intn(cfg.spread))}
		begin := time.Now()
		var err error
		var coalesced bool
		if autotune {
			var resp *alpacomm.AutotuneServiceResponse
			resp, err = client.Autotune(ctx, &alpacomm.AutotuneServiceRequest{
				Topology: t.topology, Shape: t.shape, DType: t.dtype,
				Src: t.src, Dst: t.dst, Options: opts,
			})
			if err == nil {
				coalesced = resp.Coalesced
			}
		} else {
			var resp *alpacomm.PlanServiceResponse
			resp, err = client.Plan(ctx, &alpacomm.PlanServiceRequest{
				Topology: t.topology, Shape: t.shape, DType: t.dtype,
				Src: t.src, Dst: t.dst, Options: opts,
			})
			if err == nil {
				coalesced = resp.Coalesced
			}
		}
		switch e := err.(type) {
		case nil:
			out.ok++
			out.latencies = append(out.latencies, time.Since(begin).Seconds())
			if coalesced {
				out.coalesced++
			}
		case *service.OverloadedError:
			out.rejected++
			// Honor the backoff hint, capped so a closed loop keeps
			// exercising the admission path.
			backoff := e.RetryAfter
			if backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
		default:
			out.errs++
			if out.firstErr == "" {
				out.firstErr = err.Error()
			}
		}
	}
}

// verifyPlans replays each plan template once and compares the served plan
// against resharding.NewPlan computed locally with the service's
// normalized options: senders, launch order, makespan, ops — byte for
// byte. Returns the number of diverging templates.
func verifyPlans(ctx context.Context, client *alpacomm.PlanClient, mix []template) int {
	reg := alpacomm.DefaultTopologyRegistry()
	bad := 0
	for _, t := range mix {
		if t.autotune {
			continue
		}
		resp, err := client.Plan(ctx, &alpacomm.PlanServiceRequest{
			Topology: t.topology, Shape: t.shape, DType: t.dtype,
			Src: t.src, Dst: t.dst, Options: service.PlanOptions{Seed: 1},
		})
		if err != nil {
			fmt.Printf("verify %s: request: %v\n", t.name, err)
			bad++
			continue
		}
		plan, sim, err := directPlan(reg, t)
		if err != nil {
			fmt.Printf("verify %s: direct path: %v\n", t.name, err)
			bad++
			continue
		}
		senders := make([]int, len(plan.Task.Units))
		for i := range senders {
			senders[i] = plan.SenderOf[i]
		}
		switch {
		case !reflect.DeepEqual(resp.Senders, senders):
			fmt.Printf("verify %s: senders differ: served %v, direct %v\n", t.name, resp.Senders, senders)
			bad++
		case !reflect.DeepEqual(resp.Order, plan.Order):
			fmt.Printf("verify %s: order differs: served %v, direct %v\n", t.name, resp.Order, plan.Order)
			bad++
		case resp.MakespanSeconds != sim.Makespan || resp.NumOps != sim.NumOps:
			fmt.Printf("verify %s: timing differs: served (%.9g, %d ops), direct (%.9g, %d ops)\n",
				t.name, resp.MakespanSeconds, resp.NumOps, sim.Makespan, sim.NumOps)
			bad++
		}
	}
	return bad
}

// directPlan computes the template's plan without the service: same
// registry topology, same deterministic options.
func directPlan(reg *alpacomm.TopologyRegistry, t template) (*alpacomm.ReshardPlan, *alpacomm.ReshardResult, error) {
	topo, err := reg.Build(t.topology.Name, alpacomm.TopologyParams{
		Hosts: t.topology.Hosts, Oversubscription: t.topology.Oversubscription,
	})
	if err != nil {
		return nil, nil, err
	}
	shape, err := tensor.NewShape(t.shape...)
	if err != nil {
		return nil, nil, err
	}
	dt, err := service.ParseDType(t.dtype)
	if err != nil {
		return nil, nil, err
	}
	src, err := mesh.ParseSlice(topo, t.src.Mesh)
	if err != nil {
		return nil, nil, err
	}
	dst, err := mesh.ParseSlice(topo, t.dst.Mesh)
	if err != nil {
		return nil, nil, err
	}
	task, err := sharding.NewTask(shape, dt, src, sharding.MustParse(t.src.Spec), dst, sharding.MustParse(t.dst.Spec))
	if err != nil {
		return nil, nil, err
	}
	// Plan with the exact options the server derives from the wire
	// request, so the comparison is byte-for-byte.
	opts, err := service.NormalizedOptions(service.PlanOptions{Seed: 1})
	if err != nil {
		return nil, nil, err
	}
	plan, err := resharding.NewPlan(task, opts)
	if err != nil {
		return nil, nil, err
	}
	sim, err := plan.Simulate()
	if err != nil {
		return nil, nil, err
	}
	return plan, sim, nil
}

// percentileMillis returns the p-th percentile (nearest-rank) in
// milliseconds of an ascending latency slice in seconds.
func percentileMillis(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx] * 1e3
}

func printReport(r report) {
	fmt.Printf("\n%d requests in %.2fs — %.0f served req/s, %.0f offered (%d clients)\n",
		r.Requests, r.DurationSeconds, r.ThroughputRPS, r.OfferedRPS, r.Clients)
	fmt.Printf("  ok %d, rejected(429) %d, errors %d, coalesced %d\n",
		r.OK, r.Rejected, r.Errors, r.Coalesced)
	fmt.Printf("  latency p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		r.LatencyP50Millis, r.LatencyP95Millis, r.LatencyP99Millis, r.LatencyMaxMillis)
	fmt.Printf("  server cache: %d hits, %d misses, %d entries (capacity %d), %d evictions\n",
		r.CacheHits, r.CacheMisses, r.CacheEntries, r.CacheCapacity, r.CacheEvictions)
}
