// Command loadgen is a closed-loop, multi-client load generator for the
// plan server (cmd/planserver): each client issues plan/autotune requests
// back-to-back from a deterministic request mix over shapes, sharding
// specs and hardware topologies, and the run reports throughput, latency
// percentiles (p50/p95/p99), coalescing and backpressure counts.
//
// Modes:
//
//	loadgen -addr http://host:8100 -clients 64 -requests 100
//	loadgen -smoke -json BENCH_service.json
//	loadgen -smoke -batch -json BENCH_service.json
//	loadgen -cluster -json BENCH_cluster.json
//
// -smoke starts an in-process server on a loopback port, runs a fixed
// closed-loop load, verifies that served plans are byte-identical to the
// direct resharding path and that the LRU cache respected its capacity,
// and writes the benchmark JSON — the CI perf gate.
//
// -batch adds /v2/plan:batch traffic to the mix: each batch request plans
// all stage boundaries of a pipeline job at once, and its latency
// percentiles are recorded alongside the single-request mix. With -verify
// (or -smoke) every batch item is also checked byte-identical to the same
// boundary served individually by /v1/plan.
//
// -wire binary negotiates the binary wire format (see the service
// package's wire.go) on every /v2 response, after first proving one
// response decodes identically over both formats.
//
// -churn appends a continuous-churn phase after the main load: a
// deterministic fault/heal timeline (-churn-scenario, default "flap")
// advances every -churn-period while closed-loop clients replan one
// boundary through /v2/plan with whatever overlay is active. The phase
// measures the server's replan counters and, under -smoke, fails unless
// every degraded step was served warm (no cold fills) — see churn.go.
//
// -cluster benchmarks the distributed plan-serving tier instead: see
// cluster.go.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"time"

	alpacomm "alpacomm"
	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/service"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}

// template is one request shape of the deterministic mix.
type template struct {
	name     string
	autotune bool
	topology service.TopologyRef
	shape    []int
	dtype    string
	src, dst service.Endpoint
}

// requestMix returns the fixed slate the generator draws from: a spread of
// topologies (p3 / dgx-a100 / mixed), tensor shapes and spec pairs. With
// few templates and many clients, duplicate keys are common — exactly the
// coalescing- and cache-heavy traffic a production planner sees.
func requestMix() []template {
	return []template{
		{name: "p3-small", topology: service.TopologyRef{Name: "p3", Hosts: 2},
			shape: []int{256, 256},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		{name: "p3-large", topology: service.TopologyRef{Name: "p3", Hosts: 2},
			shape: []int{1024, 1024},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "RS0"}},
		{name: "p3-wide", topology: service.TopologyRef{Name: "p3", Hosts: 4},
			shape: []int{1024, 512},
			src:   service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "S0R"}},
		{name: "dgx-mid", topology: service.TopologyRef{Name: "dgx-a100", Hosts: 2},
			shape: []int{512, 512}, dtype: "fp16",
			src: service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "S0R"}},
		{name: "dgx-large", topology: service.TopologyRef{Name: "dgx-a100", Hosts: 2},
			shape: []int{2048, 1024},
			src:   service.Endpoint{Mesh: "2x4@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x4@8", Spec: "RS1"}},
		{name: "mixed-tier", topology: service.TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 1.5},
			shape: []int{256, 512},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		{name: "p3-autotune", autotune: true, topology: service.TopologyRef{Name: "p3", Hosts: 2},
			shape: []int{512, 512},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		{name: "mixed-autotune", autotune: true, topology: service.TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 1.5},
			shape: []int{256, 256},
			src:   service.Endpoint{Mesh: "2x2@0", Spec: "S01R"}, dst: service.Endpoint{Mesh: "2x2@4", Spec: "RS0"}},
	}
}

// faultMix returns the degradation overlays -faults churn traffic cycles
// through. Every overlay touches hosts 0/1 or the 0-1 link, which every
// mix template's boundary involves — so each degraded request re-keys
// away from its healthy twin and the cache partitions visibly.
func faultMix() []*service.FaultsRef {
	return []*service.FaultsRef{
		{Hosts: []service.HostFaultRef{{Host: 0, NICScale: 0.5}}},
		{Hosts: []service.HostFaultRef{{Host: 1, NICScale: 0.25, IntraScale: 0.5}}},
		{Links: []service.LinkFaultRef{{A: 0, B: 1, BandwidthScale: 0.5, ExtraLatencySeconds: 20e-6}}},
	}
}

// batchTemplate is one /v2/plan:batch request shape: the boundaries of a
// pipeline job on one named topology.
type batchTemplate struct {
	name string
	req  alpacomm.BatchPlanServiceRequest
}

// batchMix returns the pipeline-job batches -batch traffic draws from:
// GPT-style chains of congruent boundaries, so one batch is exactly the
// traffic shape the endpoint exists for.
func batchMix() []batchTemplate {
	pipelineReq := func(topo service.TopologyRef, stride int, boundaries int, shape []int, mesh string, seed int64) alpacomm.BatchPlanServiceRequest {
		req := alpacomm.BatchPlanServiceRequest{Topology: topo}
		for s := 0; s < boundaries; s++ {
			req.Items = append(req.Items, service.BatchPlanItem{
				Shape: shape,
				Src:   service.Endpoint{Mesh: fmt.Sprintf("%s@%d", mesh, stride*s), Spec: "S01R"},
				Dst:   service.Endpoint{Mesh: fmt.Sprintf("%s@%d", mesh, stride*(s+1)), Spec: "S0R"},
				Options: service.PlanOptions{
					Seed: seed,
				},
			})
		}
		return req
	}
	return []batchTemplate{
		{name: "p3-gpt-pipeline", req: pipelineReq(service.TopologyRef{Name: "p3", Hosts: 4}, 4, 3, []int{512, 512}, "2x2", 1)},
		{name: "dgx-pipeline", req: pipelineReq(service.TopologyRef{Name: "dgx-a100", Hosts: 3}, 8, 2, []int{1024, 512}, "2x4", 1)},
	}
}

// clientStats is one worker's tally, merged after the run.
type clientStats struct {
	ok, rejected, errs int
	coalesced          int
	latencies          []float64 // seconds, successful requests only
	batchAttempts      int
	batchOK            int
	batchItems         int
	batchLatencies     []float64 // seconds, successful batch requests only
	faultAttempts      int
	faultOK            int
	firstErr           string
}

// report is the benchmark JSON (BENCH_service.json in CI).
type report struct {
	Clients         int     `json:"clients"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Rejected        int     `json:"rejected"`
	Errors          int     `json:"errors"`
	Coalesced       int     `json:"coalesced"`
	DurationSeconds float64 `json:"duration_seconds"`
	// ThroughputRPS counts served (200) responses only; rejected and
	// errored requests are excluded so overload cannot inflate the figure.
	ThroughputRPS float64 `json:"throughput_rps"`
	// OfferedRPS is the closed-loop offered load including rejections.
	OfferedRPS       float64 `json:"offered_rps"`
	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP95Millis float64 `json:"latency_p95_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`
	LatencyMaxMillis float64 `json:"latency_max_ms"`
	// Batch fields cover the /v2/plan:batch slice of the mix (-batch);
	// zero when batch traffic is disabled. One batch request plans a whole
	// pipeline job, so its latency is reported separately from the
	// single-plan percentiles above.
	BatchRequests         int     `json:"batch_requests,omitempty"`
	BatchOK               int     `json:"batch_ok,omitempty"`
	BatchItems            int     `json:"batch_items,omitempty"`
	BatchLatencyP50Millis float64 `json:"batch_latency_p50_ms,omitempty"`
	BatchLatencyP95Millis float64 `json:"batch_latency_p95_ms,omitempty"`
	BatchLatencyP99Millis float64 `json:"batch_latency_p99_ms,omitempty"`
	BatchLatencyMaxMillis float64 `json:"batch_latency_max_ms,omitempty"`
	// Fault fields cover the degraded-topology churn slice of the mix
	// (-faults): /v2/plan requests carrying a fault overlay. Zero when
	// fault churn is disabled.
	FaultRequests int `json:"fault_requests,omitempty"`
	FaultOK       int `json:"fault_ok,omitempty"`
	// Churn fields cover the -churn phase: a fault/heal timeline walked
	// through /v2/plan after the main load, with the server's replan
	// counters (warm/cold fill split) measured over the phase alone.
	ChurnScenario string                  `json:"churn_scenario,omitempty"`
	ChurnSteps    int                     `json:"churn_steps,omitempty"`
	ChurnPasses   int                     `json:"churn_passes,omitempty"`
	ChurnRequests int                     `json:"churn_requests,omitempty"`
	ChurnOK       int                     `json:"churn_ok,omitempty"`
	ChurnReplan   *resharding.ReplanStats `json:"churn_replan,omitempty"`
	// OpenLoop rows cover the open-loop distribution-driven mode (-open /
	// -open-sim): per arrival mix, coordinated-omission-corrected
	// percentiles and the offered-vs-achieved gap, with and without the
	// SLO admission controller. Simulated rows are byte-identical across
	// reruns with the same seed.
	OpenLoop        []openLoopRow `json:"open_loop,omitempty"`
	CacheHits       int           `json:"cache_hits"`
	CacheMisses     int           `json:"cache_misses"`
	CacheEntries    int           `json:"cache_entries"`
	CacheEvictions  int           `json:"cache_evictions"`
	CacheCapacity   int           `json:"cache_capacity"`
	ServerCoalesced int64         `json:"server_coalesced"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8100", "plan server base URL")
	clients := flag.Int("clients", 64, "concurrent closed-loop clients")
	requests := flag.Int("requests", 100, "requests per client (count mode)")
	duration := flag.Duration("duration", 0, "run for a fixed duration instead of a fixed count")
	seed := flag.Int64("seed", 1, "request-mix seed (the mix is deterministic per seed)")
	autotuneFrac := flag.Float64("autotune-fraction", 0.05, "fraction of requests sent to /v1/autotune")
	batch := flag.Bool("batch", false, "add /v2/plan:batch pipeline-job requests to the mix and report their latency percentiles")
	batchFrac := flag.Float64("batch-fraction", 0.15, "fraction of requests sent to /v2/plan:batch when -batch is set")
	faults := flag.Bool("faults", false, "add degraded-topology churn to the mix: /v2/plan requests carrying fault overlays alongside their healthy twins")
	faultsFrac := flag.Float64("faults-fraction", 0.2, "fraction of plan requests carrying a fault overlay when -faults is set")
	churnMode := flag.Bool("churn", false, "after the main load, walk a fault/heal timeline through /v2/plan and verify the server replans warm (no cold fills)")
	churnScenario := flag.String("churn-scenario", mesh.ChurnFlap, "churn timeline: a registry scenario (flap, cascade, brownout-recovery) or an inline spec like \"@0 link:0-1:down | @500ms\"")
	churnPeriod := flag.Duration("churn-period", 150*time.Millisecond, "wall time each timeline step stays active in -churn mode")
	churnWorkers := flag.Int("churn-clients", 8, "concurrent closed-loop clients during the churn phase")
	churnPasses := flag.Int("churn-passes", 2, "times the churn timeline repeats (>1 exercises heal-back cache hits)")
	spread := flag.Int("spread", 1, "distinct Options.Seed values per template (>1 multiplies distinct cache keys, exercising LRU eviction)")
	jsonPath := flag.String("json", "", "write the benchmark report JSON to this file")
	verify := flag.Bool("verify", false, "verify served plans byte-identical to the direct resharding path")
	smoke := flag.Bool("smoke", false, "self-contained CI smoke: in-process server, fixed load, verification")
	smokeCapacity := flag.Int("smoke-cache-capacity", 64, "in-process server LRU capacity in -smoke mode")
	wire := flag.String("wire", "json", "wire format for /v2 responses: json or binary (binary also cross-checks one response against the JSON path)")
	clusterMode := flag.Bool("cluster", false, "run the distributed-tier benchmark: in-process 1/2/4/8-node tiers, byte-identity + cross-node singleflight checks, warm-restart hit rate (writes BENCH_cluster.json)")
	clusterWindow := flag.Duration("cluster-measure", 3*time.Second, "measured window per node count in -cluster mode")
	open := flag.Bool("open", false, "open-loop mode: distribution-driven agents dispatch /v2/plan on a fixed schedule and report coordinated-omission-corrected percentiles")
	openSim := flag.Bool("open-sim", false, "deterministic open-loop simulation: replay the arrival schedule through a serve-path model with the real SLO controller on a simulated clock (byte-identical BENCH rows per seed)")
	openMix := flag.String("open-mix", "poisson,bursty,diurnal", "comma-separated arrival mixes for open-loop modes (-open uses the first)")
	openRate := flag.Float64("open-rate", 40000, "total offered arrival rate (requests per second) in open-loop modes")
	openAgents := flag.Int("open-agents", 1600, "open-loop agents (each owns one connection and a derived-seed arrival stream)")
	openDur := flag.Duration("open-duration", 2*time.Second, "open-loop schedule horizon")
	sloBudget := flag.Duration("slo-budget", 25*time.Millisecond, "p99 budget for the SLO admission controller (-open-sim rows; -open -smoke server)")
	flag.Parse()
	if *spread < 1 {
		*spread = 1
	}
	if *clusterMode {
		runClusterBench(*jsonPath, *clusterWindow)
		return
	}
	if *openSim {
		runOpenSimMode(*jsonPath, parseMixes(*openMix), *openRate, *openAgents, *openDur, uint64(*seed), *sloBudget)
		return
	}

	base := *addr
	var srv *alpacomm.PlanServer
	if *smoke {
		cfg := alpacomm.PlanServerConfig{
			Cache:     alpacomm.NewLRUReshardCache(*smokeCapacity),
			PlanQueue: 256,
		}
		if *open {
			// Open-loop smoke exists to exercise the admission controller
			// under distribution-driven load.
			cfg.SLO = &service.SLOConfig{P99Budget: *sloBudget}
		}
		srv = alpacomm.NewPlanServer(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("listen: %v", err)
		}
		defer ln.Close()
		go func() { _ = (&http.Server{Handler: srv}).Serve(ln) }()
		base = "http://" + ln.Addr().String()
		*verify = true
		// Open-loop live rows are wall-clock measurements; never merge
		// them into the committed deterministic report by default.
		if *jsonPath == "" && !*open {
			*jsonPath = "BENCH_service.json"
		}
		fmt.Printf("loadgen: smoke server on %s (cache capacity %d)\n", base, *smokeCapacity)
	}

	mix := requestMix()
	batches := []batchTemplate(nil)
	if *batch {
		batches = batchMix()
	}
	overlays := []*service.FaultsRef(nil)
	if *faults {
		overlays = faultMix()
	}
	var clientOpts []alpacomm.PlanClientOption
	switch *wire {
	case "json":
	case "binary":
		clientOpts = append(clientOpts, alpacomm.WithBinaryWire())
	default:
		fail("unknown -wire %q (want json or binary)", *wire)
	}
	client := alpacomm.NewPlanClient(base, nil, clientOpts...)
	ctx := context.Background()

	if *wire == "binary" {
		// One cross-format sanity check before the load: the same request
		// served over JSON and binary must decode identically.
		verifyWireParity(ctx, base, client, mix[0])
	}

	if *open {
		mixName := parseMixes(*openMix)[0]
		fmt.Printf("loadgen: open loop: %s mix, %d agents, %.0f offered rps for %v against %s\n",
			mixName, *openAgents, *openRate, *openDur, base)
		row := runOpenLive(ctx, client, mixName, *openRate, *openAgents, *openDur, uint64(*seed), *sloBudget)
		if *jsonPath != "" {
			mergeOpenRows(*jsonPath, []openLoopRow{row})
			fmt.Printf("open-loop row merged into %s\n", *jsonPath)
		}
		return
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	fmt.Printf("loadgen: %d clients, mix of %d templates (spread %d), target %s\n",
		*clients, len(mix), *spread, base)
	start := time.Now()
	stats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runClient(ctx, client, mix, &stats[c], clientConfig{
				rng:          rand.New(rand.NewSource(*seed ^ int64(c+1)*-0x61c8864680b583eb)),
				requests:     *requests,
				deadline:     deadline,
				autotuneFrac: *autotuneFrac,
				batches:      batches,
				batchFrac:    *batchFrac,
				overlays:     overlays,
				faultsFrac:   *faultsFrac,
				spread:       *spread,
			})
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var churn *churnResult
	if *churnMode {
		fmt.Printf("loadgen: churn phase: scenario %q, %d clients, %v per step, %d pass(es)\n",
			*churnScenario, *churnWorkers, *churnPeriod, *churnPasses)
		var err error
		churn, err = runChurnPhase(ctx, client, *churnScenario, *churnPeriod, *churnWorkers, *churnPasses)
		if err != nil {
			fail("churn phase: %v", err)
		}
	}

	// Merge.
	var all clientStats
	for _, s := range stats {
		all.ok += s.ok
		all.rejected += s.rejected
		all.errs += s.errs
		all.coalesced += s.coalesced
		all.latencies = append(all.latencies, s.latencies...)
		all.batchAttempts += s.batchAttempts
		all.batchOK += s.batchOK
		all.batchItems += s.batchItems
		all.batchLatencies = append(all.batchLatencies, s.batchLatencies...)
		all.faultAttempts += s.faultAttempts
		all.faultOK += s.faultOK
		if all.firstErr == "" {
			all.firstErr = s.firstErr
		}
	}
	sort.Float64s(all.latencies)
	sort.Float64s(all.batchLatencies)
	total := all.ok + all.rejected + all.errs + all.batchOK

	sstats, err := client.Stats(ctx)
	if err != nil {
		fail("stats: %v", err)
	}

	rep := report{
		Clients:          *clients,
		Requests:         total,
		OK:               all.ok,
		Rejected:         all.rejected,
		Errors:           all.errs,
		Coalesced:        all.coalesced,
		DurationSeconds:  elapsed,
		ThroughputRPS:    float64(all.ok) / elapsed,
		OfferedRPS:       float64(total) / elapsed,
		LatencyP50Millis: percentileMillis(all.latencies, 50),
		LatencyP95Millis: percentileMillis(all.latencies, 95),
		LatencyP99Millis: percentileMillis(all.latencies, 99),
		LatencyMaxMillis: percentileMillis(all.latencies, 100),

		BatchRequests:         all.batchAttempts,
		BatchOK:               all.batchOK,
		BatchItems:            all.batchItems,
		BatchLatencyP50Millis: percentileMillis(all.batchLatencies, 50),
		BatchLatencyP95Millis: percentileMillis(all.batchLatencies, 95),
		BatchLatencyP99Millis: percentileMillis(all.batchLatencies, 99),
		BatchLatencyMaxMillis: percentileMillis(all.batchLatencies, 100),
		FaultRequests:         all.faultAttempts,
		FaultOK:               all.faultOK,
		CacheHits:             sstats.Cache.Hits,
		CacheMisses:           sstats.Cache.Misses,
		CacheEntries:          sstats.Cache.Entries,
		CacheEvictions:        sstats.Cache.Evictions,
		CacheCapacity:         sstats.Cache.Capacity,
		ServerCoalesced:       sstats.Plan.Coalesced + sstats.Autotune.Coalesced + sstats.Batch.Coalesced,
	}
	if churn != nil {
		rep.ChurnScenario = churn.scenario
		rep.ChurnSteps = churn.steps
		rep.ChurnPasses = churn.passes
		rep.ChurnRequests = churn.ok + churn.rejected + churn.errs
		rep.ChurnOK = churn.ok
		rep.ChurnReplan = &churn.delta
	}
	printReport(rep)
	if all.firstErr != "" {
		fmt.Printf("first error: %s\n", all.firstErr)
	}

	if *jsonPath != "" {
		// Closed-loop and open-loop runs share the artifact: carry any
		// committed open_loop rows forward, mirroring mergeOpenRows.
		if prev, err := os.ReadFile(*jsonPath); err == nil {
			var old report
			if json.Unmarshal(prev, &old) == nil {
				rep.OpenLoop = old.OpenLoop
			}
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail("marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fail("write report: %v", err)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}

	failed := false
	if *verify {
		if n := verifyPlans(ctx, client, mix); n > 0 {
			fmt.Printf("VERIFY FAILED: %d template(s) diverged from the direct resharding path\n", n)
			failed = true
		} else {
			fmt.Println("verify: served plans byte-identical to the direct resharding path")
		}
		if len(batches) > 0 {
			if n := verifyBatches(ctx, client, batches); n > 0 {
				fmt.Printf("VERIFY FAILED: %d batch item(s) diverged from /v1/plan\n", n)
				failed = true
			} else {
				fmt.Println("verify: /v2/plan:batch items byte-identical to per-boundary /v1/plan")
			}
		}
		if len(overlays) > 0 {
			if n := verifyFaults(ctx, client, mix, overlays); n > 0 {
				fmt.Printf("VERIFY FAILED: %d degraded request(s) violated the fault-overlay contract\n", n)
				failed = true
			} else {
				fmt.Println("verify: degraded plans re-keyed, deterministic, and never faster than healthy")
			}
		}
	}
	if *smoke && len(batches) > 0 && all.batchOK == 0 {
		fmt.Println("SMOKE FAILED: no /v2/plan:batch request succeeded")
		failed = true
	}
	if *smoke && len(overlays) > 0 && all.faultOK == 0 {
		fmt.Println("SMOKE FAILED: no degraded-topology request succeeded")
		failed = true
	}
	if churn != nil {
		if churn.ok == 0 {
			fmt.Println("CHURN FAILED: no churn-phase request succeeded")
			if churn.firstErr != "" {
				fmt.Printf("first churn error: %s\n", churn.firstErr)
			}
			failed = true
		}
		if *smoke && churn.errs > 0 {
			fmt.Printf("SMOKE FAILED: %d churn-phase request errors (first: %s)\n", churn.errs, churn.firstErr)
			failed = true
		}
		warm := churn.delta.WarmIdentity + churn.delta.WarmSearch + churn.delta.WarmRejected
		if *smoke && warm == 0 {
			fmt.Println("SMOKE FAILED: churn phase produced no warm replans")
			failed = true
		}
		// The healthy incumbent is planned before the first fault arrives,
		// so no churn step may ever fall back to a cold search.
		if *smoke && churn.delta.Cold > 0 {
			fmt.Printf("SMOKE FAILED: %d cold replan(s) during churn despite a cached healthy incumbent\n", churn.delta.Cold)
			failed = true
		}
	}
	if rep.CacheCapacity > 0 && rep.CacheEntries > rep.CacheCapacity {
		fmt.Printf("LRU VIOLATION: %d entries > capacity %d\n", rep.CacheEntries, rep.CacheCapacity)
		failed = true
	}
	if ac := sstats.AutotuneCache; ac.Capacity > 0 && ac.Entries > ac.Capacity {
		fmt.Printf("LRU VIOLATION (autotune cache): %d entries > capacity %d\n", ac.Entries, ac.Capacity)
		failed = true
	}
	if *smoke {
		if all.errs > 0 {
			fmt.Printf("SMOKE FAILED: %d request errors\n", all.errs)
			failed = true
		}
		if rep.CacheHits+int(rep.ServerCoalesced) == 0 {
			fmt.Println("SMOKE FAILED: duplicate requests neither coalesced nor hit the cache")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

type clientConfig struct {
	rng          *rand.Rand
	requests     int
	deadline     time.Time
	autotuneFrac float64
	batches      []batchTemplate
	batchFrac    float64
	overlays     []*service.FaultsRef
	faultsFrac   float64
	spread       int
}

// runClient is one closed-loop worker: next request starts when the
// previous response lands.
func runClient(ctx context.Context, client *alpacomm.PlanClient, mix []template, out *clientStats, cfg clientConfig) {
	planTemplates := make([]template, 0, len(mix))
	autoTemplates := make([]template, 0, len(mix))
	for _, t := range mix {
		if t.autotune {
			autoTemplates = append(autoTemplates, t)
		} else {
			planTemplates = append(planTemplates, t)
		}
	}
	for i := 0; cfg.deadline.IsZero() && i < cfg.requests || !cfg.deadline.IsZero() && time.Now().Before(cfg.deadline); i++ {
		if len(cfg.batches) > 0 && cfg.rng.Float64() < cfg.batchFrac {
			bt := cfg.batches[cfg.rng.Intn(len(cfg.batches))]
			out.batchAttempts++
			begin := time.Now()
			resp, err := client.PlanBatch(ctx, &bt.req)
			switch e := err.(type) {
			case nil:
				out.batchOK++
				out.batchItems += len(resp.Items)
				out.batchLatencies = append(out.batchLatencies, time.Since(begin).Seconds())
			case *service.OverloadedError:
				out.rejected++
				backoff := e.RetryAfter
				if backoff > 50*time.Millisecond {
					backoff = 50 * time.Millisecond
				}
				time.Sleep(backoff)
			default:
				out.errs++
				if out.firstErr == "" {
					out.firstErr = err.Error()
				}
			}
			continue
		}
		if len(cfg.overlays) > 0 && cfg.rng.Float64() < cfg.faultsFrac {
			// Degraded-topology churn: the same template the healthy mix
			// plans, with a fault overlay — exercising replan-on-degrade
			// and the healthy/degraded cache partition under load.
			t := planTemplates[cfg.rng.Intn(len(planTemplates))]
			ov := cfg.overlays[cfg.rng.Intn(len(cfg.overlays))]
			out.faultAttempts++
			begin := time.Now()
			resp, err := client.PlanV2(ctx, &alpacomm.PlanServiceRequest{
				Topology: t.topology, Shape: t.shape, DType: t.dtype,
				Src: t.src, Dst: t.dst,
				Options: service.PlanOptions{Seed: 1 + int64(cfg.rng.Intn(cfg.spread))},
				Faults:  ov,
			})
			switch e := err.(type) {
			case nil:
				out.ok++
				out.faultOK++
				out.latencies = append(out.latencies, time.Since(begin).Seconds())
				if resp.Coalesced {
					out.coalesced++
				}
			case *service.OverloadedError:
				out.rejected++
				backoff := e.RetryAfter
				if backoff > 50*time.Millisecond {
					backoff = 50 * time.Millisecond
				}
				time.Sleep(backoff)
			default:
				out.errs++
				if out.firstErr == "" {
					out.firstErr = err.Error()
				}
			}
			continue
		}
		var t template
		autotune := len(autoTemplates) > 0 && cfg.rng.Float64() < cfg.autotuneFrac
		if autotune {
			t = autoTemplates[cfg.rng.Intn(len(autoTemplates))]
		} else {
			t = planTemplates[cfg.rng.Intn(len(planTemplates))]
		}
		opts := service.PlanOptions{Seed: 1 + int64(cfg.rng.Intn(cfg.spread))}
		begin := time.Now()
		var err error
		var coalesced bool
		if autotune {
			var resp *alpacomm.AutotuneServiceResponse
			resp, err = client.Autotune(ctx, &alpacomm.AutotuneServiceRequest{
				Topology: t.topology, Shape: t.shape, DType: t.dtype,
				Src: t.src, Dst: t.dst, Options: opts,
			})
			if err == nil {
				coalesced = resp.Coalesced
			}
		} else {
			var resp *alpacomm.PlanServiceResponse
			resp, err = client.Plan(ctx, &alpacomm.PlanServiceRequest{
				Topology: t.topology, Shape: t.shape, DType: t.dtype,
				Src: t.src, Dst: t.dst, Options: opts,
			})
			if err == nil {
				coalesced = resp.Coalesced
			}
		}
		switch e := err.(type) {
		case nil:
			out.ok++
			out.latencies = append(out.latencies, time.Since(begin).Seconds())
			if coalesced {
				out.coalesced++
			}
		case *service.OverloadedError:
			out.rejected++
			// Honor the backoff hint, capped so a closed loop keeps
			// exercising the admission path.
			backoff := e.RetryAfter
			if backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
		default:
			out.errs++
			if out.firstErr == "" {
				out.firstErr = err.Error()
			}
		}
	}
}

// verifyPlans replays each plan template once and compares the served plan
// against resharding.NewPlan computed locally with the service's
// normalized options: senders, launch order, makespan, ops — byte for
// byte. Returns the number of diverging templates.
// verifyWireParity serves one template over both wire formats and fails
// the run unless the decoded responses are identical — the quick parity
// proof -wire=binary runs before trusting the binary path under load.
func verifyWireParity(ctx context.Context, base string, binClient *alpacomm.PlanClient, t template) {
	req := &alpacomm.PlanServiceRequest{
		Topology: t.topology, Shape: t.shape, DType: t.dtype,
		Src: t.src, Dst: t.dst,
		Options: service.PlanOptions{Seed: 1},
	}
	jsonResp, err := alpacomm.NewPlanClient(base, nil).PlanV2(ctx, req)
	if err != nil {
		fail("wire parity (json): %v", err)
	}
	binResp, err := binClient.PlanV2(ctx, req)
	if err != nil {
		fail("wire parity (binary): %v", err)
	}
	// Coalesced depends on request timing, not wire format.
	jsonResp.Coalesced, binResp.Coalesced = false, false
	if !reflect.DeepEqual(jsonResp, binResp) {
		fail("wire parity: JSON and binary responses differ:\n json %+v\n bin  %+v", jsonResp, binResp)
	}
	fmt.Println("loadgen: wire parity verified (json == binary)")
}

func verifyPlans(ctx context.Context, client *alpacomm.PlanClient, mix []template) int {
	reg := alpacomm.DefaultTopologyRegistry()
	bad := 0
	for _, t := range mix {
		if t.autotune {
			continue
		}
		resp, err := client.Plan(ctx, &alpacomm.PlanServiceRequest{
			Topology: t.topology, Shape: t.shape, DType: t.dtype,
			Src: t.src, Dst: t.dst, Options: service.PlanOptions{Seed: 1},
		})
		if err != nil {
			fmt.Printf("verify %s: request: %v\n", t.name, err)
			bad++
			continue
		}
		plan, sim, err := directPlan(reg, t)
		if err != nil {
			fmt.Printf("verify %s: direct path: %v\n", t.name, err)
			bad++
			continue
		}
		senders := make([]int, len(plan.Task.Units))
		for i := range senders {
			senders[i] = plan.SenderOf[i]
		}
		switch {
		case !reflect.DeepEqual(resp.Senders, senders):
			fmt.Printf("verify %s: senders differ: served %v, direct %v\n", t.name, resp.Senders, senders)
			bad++
		case !reflect.DeepEqual(resp.Order, plan.Order):
			fmt.Printf("verify %s: order differs: served %v, direct %v\n", t.name, resp.Order, plan.Order)
			bad++
		case resp.MakespanSeconds != sim.Makespan || resp.NumOps != sim.NumOps:
			fmt.Printf("verify %s: timing differs: served (%.9g, %d ops), direct (%.9g, %d ops)\n",
				t.name, resp.MakespanSeconds, resp.NumOps, sim.Makespan, sim.NumOps)
			bad++
		}
	}
	return bad
}

// verifyBatches replays each batch template once and compares every item
// against the same boundary served individually by /v1/plan: senders,
// order, makespan, ops — byte for byte. It also checks the batch reported
// at most one equivalence class per distinct cache key. Returns the number
// of diverging items.
func verifyBatches(ctx context.Context, client *alpacomm.PlanClient, batches []batchTemplate) int {
	bad := 0
	for _, bt := range batches {
		resp, err := client.PlanBatch(ctx, &bt.req)
		if err != nil {
			fmt.Printf("verify %s: batch request: %v\n", bt.name, err)
			bad++
			continue
		}
		if len(resp.Items) != len(bt.req.Items) {
			fmt.Printf("verify %s: %d items returned for %d requested\n", bt.name, len(resp.Items), len(bt.req.Items))
			bad++
			continue
		}
		keys := map[string]bool{}
		itemErrs := 0
		for i, item := range resp.Items {
			if item.Error != nil {
				fmt.Printf("verify %s item %d: %s: %s\n", bt.name, i, item.Error.Code, item.Error.Message)
				bad++
				itemErrs++
				continue
			}
			keys[item.Plan.Key] = true
			single, err := client.Plan(ctx, &alpacomm.PlanServiceRequest{
				Topology: bt.req.Topology,
				Shape:    bt.req.Items[i].Shape,
				DType:    bt.req.Items[i].DType,
				Src:      bt.req.Items[i].Src,
				Dst:      bt.req.Items[i].Dst,
				Options:  bt.req.Items[i].Options,
			})
			if err != nil {
				fmt.Printf("verify %s item %d: /v1/plan: %v\n", bt.name, i, err)
				bad++
				continue
			}
			switch {
			case !reflect.DeepEqual(item.Plan.Senders, single.Senders):
				fmt.Printf("verify %s item %d: senders differ: batch %v, v1 %v\n", bt.name, i, item.Plan.Senders, single.Senders)
				bad++
			case !reflect.DeepEqual(item.Plan.Order, single.Order):
				fmt.Printf("verify %s item %d: order differs: batch %v, v1 %v\n", bt.name, i, item.Plan.Order, single.Order)
				bad++
			case item.Plan.MakespanSeconds != single.MakespanSeconds || item.Plan.NumOps != single.NumOps:
				fmt.Printf("verify %s item %d: timing differs: batch (%.9g, %d ops), v1 (%.9g, %d ops)\n",
					bt.name, i, item.Plan.MakespanSeconds, item.Plan.NumOps, single.MakespanSeconds, single.NumOps)
				bad++
			}
		}
		// Distinct counts every parse-OK class including errored ones, so
		// the cross-check is only meaningful when every item of this
		// template planned.
		if itemErrs == 0 && resp.Distinct != len(keys) {
			fmt.Printf("verify %s: batch reports %d equivalence classes, items span %d keys\n", bt.name, resp.Distinct, len(keys))
			bad++
		}
	}
	return bad
}

// verifyFaults replays each (plan template, overlay) pair once and checks
// the fault-overlay contract: the degraded response carries a different
// cache key than the healthy one, is deterministic across repeats, and —
// since every overlay only slows hardware down — never reports a smaller
// makespan than the healthy plan. The makespan comparison is across two
// independently searched plans; it is stable here because the templates
// and overlays are fixed, planning is deterministic, and every overlay
// degrades the involved hardware by at least 2x (the plan-for-plan
// guarantee is fuzz-tested in internal/resharding). Returns the number
// of violations.
func verifyFaults(ctx context.Context, client *alpacomm.PlanClient, mix []template, overlays []*service.FaultsRef) int {
	bad := 0
	for _, t := range mix {
		if t.autotune {
			continue
		}
		healthy, err := client.PlanV2(ctx, &alpacomm.PlanServiceRequest{
			Topology: t.topology, Shape: t.shape, DType: t.dtype,
			Src: t.src, Dst: t.dst, Options: service.PlanOptions{Seed: 1},
		})
		if err != nil {
			fmt.Printf("verify %s: healthy request: %v\n", t.name, err)
			bad++
			continue
		}
		for oi, ov := range overlays {
			req := &alpacomm.PlanServiceRequest{
				Topology: t.topology, Shape: t.shape, DType: t.dtype,
				Src: t.src, Dst: t.dst, Options: service.PlanOptions{Seed: 1},
				Faults: ov,
			}
			degraded, err := client.PlanV2(ctx, req)
			if err != nil {
				fmt.Printf("verify %s overlay %d: %v\n", t.name, oi, err)
				bad++
				continue
			}
			again, err := client.PlanV2(ctx, req)
			if err != nil {
				fmt.Printf("verify %s overlay %d: repeat: %v\n", t.name, oi, err)
				bad++
				continue
			}
			switch {
			case degraded.Key == healthy.Key:
				fmt.Printf("verify %s overlay %d: degraded request shares the healthy cache key\n", t.name, oi)
				bad++
			case degraded.MakespanSeconds < healthy.MakespanSeconds:
				fmt.Printf("verify %s overlay %d: degraded makespan %.9g beats healthy %.9g\n",
					t.name, oi, degraded.MakespanSeconds, healthy.MakespanSeconds)
				bad++
			case again.Key != degraded.Key || again.MakespanSeconds != degraded.MakespanSeconds ||
				!reflect.DeepEqual(again.Senders, degraded.Senders) || !reflect.DeepEqual(again.Order, degraded.Order):
				fmt.Printf("verify %s overlay %d: degraded plan not deterministic across repeats\n", t.name, oi)
				bad++
			}
		}
	}
	return bad
}

// directPlan computes the template's plan without the service: same
// registry topology, same deterministic options.
func directPlan(reg *alpacomm.TopologyRegistry, t template) (*alpacomm.ReshardPlan, *alpacomm.ReshardResult, error) {
	topo, err := reg.Build(t.topology.Name, alpacomm.TopologyParams{
		Hosts: t.topology.Hosts, Oversubscription: t.topology.Oversubscription,
	})
	if err != nil {
		return nil, nil, err
	}
	shape, err := tensor.NewShape(t.shape...)
	if err != nil {
		return nil, nil, err
	}
	dt, err := service.ParseDType(t.dtype)
	if err != nil {
		return nil, nil, err
	}
	src, err := mesh.ParseSlice(topo, t.src.Mesh)
	if err != nil {
		return nil, nil, err
	}
	dst, err := mesh.ParseSlice(topo, t.dst.Mesh)
	if err != nil {
		return nil, nil, err
	}
	task, err := sharding.NewTask(shape, dt, src, sharding.MustParse(t.src.Spec), dst, sharding.MustParse(t.dst.Spec))
	if err != nil {
		return nil, nil, err
	}
	// Plan with the exact options the server derives from the wire
	// request, so the comparison is byte-for-byte.
	opts, err := service.NormalizedOptions(service.PlanOptions{Seed: 1})
	if err != nil {
		return nil, nil, err
	}
	plan, err := resharding.NewPlan(task, opts)
	if err != nil {
		return nil, nil, err
	}
	sim, err := plan.Simulate()
	if err != nil {
		return nil, nil, err
	}
	return plan, sim, nil
}

// percentileMillis returns the p-th percentile (nearest-rank) in
// milliseconds of an ascending latency slice in seconds.
func percentileMillis(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx] * 1e3
}

func printReport(r report) {
	fmt.Printf("\n%d requests in %.2fs — %.0f served req/s, %.0f offered (%d clients)\n",
		r.Requests, r.DurationSeconds, r.ThroughputRPS, r.OfferedRPS, r.Clients)
	fmt.Printf("  ok %d, rejected(429) %d, errors %d, coalesced %d\n",
		r.OK, r.Rejected, r.Errors, r.Coalesced)
	fmt.Printf("  latency p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		r.LatencyP50Millis, r.LatencyP95Millis, r.LatencyP99Millis, r.LatencyMaxMillis)
	if r.BatchRequests > 0 {
		fmt.Printf("  batch: %d requests (%d ok, %d items planned)\n", r.BatchRequests, r.BatchOK, r.BatchItems)
		fmt.Printf("  batch latency p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
			r.BatchLatencyP50Millis, r.BatchLatencyP95Millis, r.BatchLatencyP99Millis, r.BatchLatencyMaxMillis)
	}
	if r.FaultRequests > 0 {
		fmt.Printf("  degraded churn: %d requests (%d ok)\n", r.FaultRequests, r.FaultOK)
	}
	if r.ChurnReplan != nil {
		fmt.Printf("  churn timeline %q: %d steps x %d passes, %d requests (%d ok)\n",
			r.ChurnScenario, r.ChurnSteps, r.ChurnPasses, r.ChurnRequests, r.ChurnOK)
		d := r.ChurnReplan
		fmt.Printf("  churn replans: %d cache hits, %d warm identity, %d warm search, %d warm rejected, %d invalid, %d cold\n",
			d.CacheHits, d.WarmIdentity, d.WarmSearch, d.WarmRejected, d.WarmInvalid, d.Cold)
	}
	fmt.Printf("  server cache: %d hits, %d misses, %d entries (capacity %d), %d evictions\n",
		r.CacheHits, r.CacheMisses, r.CacheEntries, r.CacheCapacity, r.CacheEvictions)
}
