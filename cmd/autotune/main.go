// Command autotune searches the full strategy x scheduler grid for the
// fastest plan of one cross-mesh resharding, concurrently and
// deterministically, on a chosen hardware topology (the paper's AWS p3
// testbed, a DGX-A100/InfiniBand cluster, or a mixed fabric).
//
// Example (a stage boundary between the two tiers of a mixed cluster):
//
//	autotune -topo mixed -shape 1024,1024 -src-spec S01R -dst-spec S0R \
//	         -src-mesh 2x4@0 -dst-mesh 2x4@8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	alpacomm "alpacomm"
	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "autotune: "+format+"\n", args...)
	os.Exit(1)
}

func parseShape(s string) (tensor.Shape, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		dims = append(dims, v)
	}
	return tensor.NewShape(dims...)
}

func buildTopology(kind string, hosts int, oversub float64) mesh.Topology {
	topo, err := alpacomm.DefaultTopologyRegistry().Build(kind,
		alpacomm.TopologyParams{Hosts: hosts, Oversubscription: oversub})
	if err != nil {
		fail("%v", err)
	}
	return topo
}

func main() {
	topoKind := flag.String("topo", "mixed", "hardware topology preset: p3, dgx-a100, mixed")
	hosts := flag.Int("hosts", 3, "host count (mixed: half p3, half DGX)")
	oversub := flag.Float64("oversub", 1.5, "fabric oversubscription (mixed topology)")
	shapeStr := flag.String("shape", "1024,1024", "global tensor shape")
	srcSpec := flag.String("src-spec", "S01R", "source sharding spec")
	dstSpec := flag.String("dst-spec", "S0R", "destination sharding spec")
	srcMesh := flag.String("src-mesh", "2x4@0", "source mesh as ROWSxCOLS@FIRSTDEV")
	dstMesh := flag.String("dst-mesh", "2x4@8", "destination mesh")
	workers := flag.Int("workers", 0, "autotune worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "base RNG seed (result is deterministic per seed)")
	timeout := flag.Duration("timeout", 0, "abort the grid search after this long (0 = no limit); cancellation reaches inside a running candidate's DFS")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	topo := buildTopology(*topoKind, *hosts, *oversub)
	fmt.Printf("topology: %v\n", topo)

	shape, err := parseShape(*shapeStr)
	if err != nil {
		fail("bad shape: %v", err)
	}
	src, err := mesh.ParseSlice(topo, *srcMesh)
	if err != nil {
		fail("bad src mesh: %v", err)
	}
	dst, err := mesh.ParseSlice(topo, *dstMesh)
	if err != nil {
		fail("bad dst mesh: %v", err)
	}
	sspec, err := sharding.Parse(*srcSpec)
	if err != nil {
		fail("bad src spec: %v", err)
	}
	dspec, err := sharding.Parse(*dstSpec)
	if err != nil {
		fail("bad dst spec: %v", err)
	}
	task, err := sharding.NewTask(shape, tensor.Float32, src, sspec, dst, dspec)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("task: %v\n\n", task)

	planner := alpacomm.NewPlanner(
		alpacomm.WithTopology(topo),
		alpacomm.WithParallelism(*workers),
	)
	res, err := planner.Autotune(ctx, task, alpacomm.ReshardOptions{Seed: *seed})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fail("grid search exceeded the -timeout budget of %v", *timeout)
		}
		fail("%v", err)
	}

	fmt.Printf("%-44s %14s %14s\n", "candidate", "time (s)", "eff-bw (Gbps)")
	for i, tr := range res.Trials {
		marker := "  "
		if i == res.BestIndex {
			marker = "* "
		}
		if tr.Err != "" {
			fmt.Printf("%s%-44s %14s %14s  (%s)\n", marker, tr.Candidate, "-", "-", tr.Err)
			continue
		}
		fmt.Printf("%s%-44s %14.6f %14.2f\n", marker, tr.Candidate, tr.Makespan, tr.EffectiveGbps)
	}
	best := res.Trials[res.BestIndex]
	fmt.Printf("\nwinner: %v — %.6fs, %.2f Gbps effective\n",
		best.Candidate, res.BestSim.Makespan, res.BestSim.EffectiveGbps)
}
