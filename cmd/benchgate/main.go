// Command benchgate compares a freshly measured netsim benchmark artifact
// against the committed baseline (BENCH_netsim.json) and fails when the
// zero-alloc serve path regresses. It gates on allocation counts only —
// deterministic across machines — and reports wall times for context
// without failing on them.
//
// Gates:
//
//   - served_cache_hit / served_cache_hit_binary: allocs/op must stay at
//     or below the absolute ceiling (-max-hit-allocs, default 50). The
//     hit path is pre-serialized end to end; any new allocation is a leak
//     into the hot path, not noise.
//   - served_cache_miss: allocs/op must not exceed the committed baseline
//     by more than the relative slack (-miss-slack, default 20%).
//
// With -cluster it instead gates a distributed-tier artifact written by
// `loadgen -cluster` (BENCH_cluster.json):
//
//   - speedup_8x_vs_1 must reach -min-cluster-speedup (default 6): the
//     8-node tier must absorb the cache-miss load a single node thrashes
//     on.
//   - byte_identical must be true: every node serves the same bytes.
//   - singleflight_computations must be exactly 1: a tier-wide cold herd
//     costs one DFS.
//   - warm_restart_hit_rate must reach -min-warm-hit-rate (default 0.95).
//
// With -churn it gates a warm-replan artifact written by
// `microbench -churn` (BENCH_churn.json):
//
//   - every replan row's warm makespan must be at or below its cold
//     makespan — warm replanning never serves a worse plan than a cold
//     search would;
//   - every link-down replan row's warm path must be at least
//     -min-warm-speedup (default 5) times faster than the cold replan;
//   - link-down and brownout rows must replan in identity mode with zero
//     impacted units (link faults never change the host-level instance);
//   - every timeline must end healed at the healthy makespan, serve at
//     least one step from cache (the heal-back hit), and serve no step
//     cold.
//
// With -slo it gates the open-loop rows written by `loadgen -open-sim`
// into BENCH_service.json. The open-loop simulator is a pure function of
// its seed, so these gates are exact, not statistical:
//
//   - every mix (poisson, bursty, diurnal) must have a controller-on and
//     a controller-off row;
//   - controller-on rows must hold the corrected p99 within the budget,
//     keep the offered-vs-achieved gap at or below -max-slo-gap (default
//     0.65), and show the controller actually engaged;
//   - controller-off rows must blow through the same budget — proof the
//     offered load saturates the modeled server and the controller, not
//     slack capacity, holds the SLO;
//   - every candidate row must be byte-identical to the committed
//     baseline row (regenerate the baseline on intentional changes).
//
// Usage:
//
//	benchgate -baseline BENCH_netsim.json -current BENCH_netsim.ci.json
//	benchgate -cluster -current BENCH_cluster.ci.json
//	benchgate -churn -current BENCH_churn.json
//	benchgate -slo -baseline BENCH_service.json -current BENCH_service.ci.json
//
// Exit status 0 when every gate holds, 1 on any regression or missing row.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"alpacomm/internal/harness"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_netsim.json", "committed baseline artifact")
	currentPath := flag.String("current", "", "freshly measured artifact to gate (required)")
	maxHitAllocs := flag.Int64("max-hit-allocs", 50, "absolute allocs/op ceiling for served cache hits")
	missSlack := flag.Float64("miss-slack", 0.20, "allowed relative allocs/op growth for served_cache_miss vs baseline")
	cluster := flag.Bool("cluster", false, "gate a distributed-tier artifact (loadgen -cluster) instead of the netsim one")
	minSpeedup := flag.Float64("min-cluster-speedup", 6, "minimum 8-node vs 1-node throughput ratio (-cluster)")
	minWarmHit := flag.Float64("min-warm-hit-rate", 0.95, "minimum warm-restart hit rate (-cluster)")
	churn := flag.Bool("churn", false, "gate a warm-replan artifact (microbench -churn) instead of the netsim one")
	minWarmSpeedup := flag.Float64("min-warm-speedup", 5, "minimum warm vs cold replan speedup on link-down rows (-churn)")
	slo := flag.Bool("slo", false, "gate open-loop rows (loadgen -open-sim) in a service artifact instead of the netsim one")
	maxSLOGap := flag.Float64("max-slo-gap", 0.65, "maximum offered-vs-achieved gap fraction for controller-on rows (-slo)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	if *cluster {
		os.Exit(gateCluster(*currentPath, *minSpeedup, *minWarmHit))
	}
	if *churn {
		os.Exit(gateChurn(*currentPath, *minWarmSpeedup))
	}
	if *slo {
		os.Exit(gateSLO(*baselinePath, *currentPath, *maxSLOGap))
	}

	baseline, err := readRows(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	current, err := readRows(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	failed := false
	report := func(ok bool, format string, args ...interface{}) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}

	for _, name := range []string{"served_cache_hit", "served_cache_hit_binary"} {
		row, ok := current[name]
		if !ok {
			report(false, "%s: missing from %s", name, *currentPath)
			continue
		}
		report(row.AllocsPerOp <= *maxHitAllocs,
			"%s: %d allocs/op (ceiling %d), %.0f ns/op",
			name, row.AllocsPerOp, *maxHitAllocs, row.NsPerOp)
	}

	const miss = "served_cache_miss"
	cur, curOK := current[miss]
	base, baseOK := baseline[miss]
	switch {
	case !curOK:
		report(false, "%s: missing from %s", miss, *currentPath)
	case !baseOK:
		report(false, "%s: missing from baseline %s", miss, *baselinePath)
	default:
		limit := int64(float64(base.AllocsPerOp) * (1 + *missSlack))
		report(cur.AllocsPerOp <= limit,
			"%s: %d allocs/op (baseline %d, limit %d), %.0f ns/op",
			miss, cur.AllocsPerOp, base.AllocsPerOp, limit, cur.NsPerOp)
	}

	if failed {
		fmt.Println("benchgate: allocation regression — see FAIL rows above")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates hold")
}

// clusterArtifact mirrors the gated subset of loadgen's BENCH_cluster.json.
type clusterArtifact struct {
	Speedup8xVs1             float64 `json:"speedup_8x_vs_1"`
	ByteIdentical            bool    `json:"byte_identical"`
	SingleflightComputations int     `json:"singleflight_computations"`
	WarmRestartHitRate       float64 `json:"warm_restart_hit_rate"`
}

// gateCluster checks a distributed-tier artifact and returns the exit
// status.
func gateCluster(path string, minSpeedup, minWarmHit float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	var a clusterArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		return 1
	}
	failed := false
	report := func(ok bool, format string, args ...interface{}) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}
	report(a.Speedup8xVs1 >= minSpeedup,
		"speedup_8x_vs_1: %.1fx (floor %.1fx)", a.Speedup8xVs1, minSpeedup)
	report(a.ByteIdentical, "byte_identical: %v", a.ByteIdentical)
	report(a.SingleflightComputations == 1,
		"singleflight_computations: %d (want exactly 1)", a.SingleflightComputations)
	report(a.WarmRestartHitRate >= minWarmHit,
		"warm_restart_hit_rate: %.3f (floor %.3f)", a.WarmRestartHitRate, minWarmHit)
	if failed {
		fmt.Println("benchgate: cluster gate failed — see FAIL rows above")
		return 1
	}
	fmt.Println("benchgate: all gates hold")
	return 0
}

// gateChurn checks a warm-replan artifact (microbench -churn) and returns
// the exit status.
func gateChurn(path string, minWarmSpeedup float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	var r harness.ChurnReport
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		return 1
	}
	failed := false
	report := func(ok bool, format string, args ...interface{}) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}

	if len(r.Replans) == 0 {
		report(false, "replans: no rows in %s", path)
	}
	presets := map[string]bool{}
	linkDown := map[string]bool{}
	for _, row := range r.Replans {
		presets[row.Preset] = true
		name := row.Preset + "/" + row.Scenario
		// Warm replanning must never serve a worse plan than a cold search
		// would have produced (acceptance rule + identity proof).
		report(row.WarmMakespan <= row.ColdMakespan,
			"%s: warm makespan %.9f vs cold %.9f (%+.2f%%)",
			name, row.WarmMakespan, row.ColdMakespan, row.QualityDeltaPct)
		// Link faults never change the host-level instance, so link-only
		// overlays must replan as identity — zero impact, no search — and
		// beat the cold search by the speedup floor.
		if row.Scenario == "link-down" || row.Scenario == "brownout" {
			report(row.WarmMode == "identity" && row.ImpactedUnits == 0,
				"%s: warm mode %s with %d impacted units (want identity, 0)",
				name, row.WarmMode, row.ImpactedUnits)
		}
		if row.Scenario == "link-down" {
			linkDown[row.Preset] = true
			report(row.Speedup >= minWarmSpeedup,
				"%s: warm replan %.1fx faster than cold (floor %.1fx)",
				name, row.Speedup, minWarmSpeedup)
		}
	}
	for p := range presets {
		if !linkDown[p] {
			report(false, "%s: no link-down replan row", p)
		}
	}

	if len(r.Timelines) == 0 {
		report(false, "timelines: no rows in %s", path)
	}
	healed := map[string]float64{}
	for _, row := range r.Timelines {
		name := row.Preset + "/" + row.Scenario
		served := row.Stats.CacheHits + row.Stats.WarmIdentity + row.Stats.WarmSearch +
			row.Stats.WarmRejected + row.Stats.WarmInvalid + row.Stats.Cold
		report(served == int64(row.Steps),
			"%s: %d steps served (hit %d, identity %d, search %d, rejected %d, invalid %d, cold %d)",
			name, served, row.Stats.CacheHits, row.Stats.WarmIdentity, row.Stats.WarmSearch,
			row.Stats.WarmRejected, row.Stats.WarmInvalid, row.Stats.Cold)
		// Every registry timeline ends healed, and the healthy plan was
		// cached before the first step — so at least the final heal must be
		// a cache hit, and no step may fall back to an incumbent-less cold
		// plan.
		report(row.Stats.CacheHits >= 1, "%s: %d cache hits (heal-back must hit)", name, row.Stats.CacheHits)
		report(row.Stats.Cold == 0, "%s: %d cold replans (every step has an incumbent)", name, row.Stats.Cold)
		// All timelines on one preset end healed on the same boundary, so
		// they must agree on the final makespan byte for byte.
		if prev, ok := healed[row.Preset]; ok {
			report(prev == row.FinalMakespan,
				"%s: final healed makespan %.9f (%s's other timelines: %.9f)",
				name, row.FinalMakespan, row.Preset, prev)
		} else {
			healed[row.Preset] = row.FinalMakespan
		}
	}

	if failed {
		fmt.Println("benchgate: churn gate failed — see FAIL rows above")
		return 1
	}
	fmt.Println("benchgate: all gates hold")
	return 0
}

// sloRow mirrors the gated subset of loadgen's open_loop rows.
type sloRow struct {
	Mix            string  `json:"mix"`
	SLO            bool    `json:"slo"`
	GapFraction    float64 `json:"gap_fraction"`
	Served         int     `json:"served"`
	Shed           int     `json:"shed"`
	Degraded       int     `json:"degraded_served"`
	BudgetMs       float64 `json:"budget_ms"`
	CorrectedP99Ms float64 `json:"corrected_p99_ms"`
}

// readOpenLoop returns the open_loop rows of a service artifact both raw
// (for the byte-identity gate) and decoded (for the semantic gates).
func readOpenLoop(path string) ([]json.RawMessage, []sloRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var a struct {
		OpenLoop []json.RawMessage `json:"open_loop"`
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	rows := make([]sloRow, len(a.OpenLoop))
	for i, raw := range a.OpenLoop {
		if err := json.Unmarshal(raw, &rows[i]); err != nil {
			return nil, nil, fmt.Errorf("%s: open_loop[%d]: %v", path, i, err)
		}
	}
	return a.OpenLoop, rows, nil
}

// gateSLO checks the open-loop rows of a service artifact against the
// committed baseline and returns the exit status.
func gateSLO(baselinePath, currentPath string, maxGap float64) int {
	curRaw, cur, err := readOpenLoop(currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	baseRaw, _, err := readOpenLoop(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	failed := false
	report := func(ok bool, format string, args ...interface{}) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}

	byKey := map[string]sloRow{}
	for _, r := range cur {
		byKey[fmt.Sprintf("%s/slo=%v", r.Mix, r.SLO)] = r
	}
	for _, mix := range []string{"poisson", "bursty", "diurnal"} {
		ctl, okCtl := byKey[mix+"/slo=true"]
		raw, okRaw := byKey[mix+"/slo=false"]
		if !okCtl || !okRaw {
			report(false, "%s: missing controller-on and/or controller-off row in %s", mix, currentPath)
			continue
		}
		report(ctl.BudgetMs > 0 && ctl.CorrectedP99Ms <= ctl.BudgetMs,
			"%s: corrected p99 %.2fms within %.0fms budget", mix, ctl.CorrectedP99Ms, ctl.BudgetMs)
		report(ctl.GapFraction <= maxGap,
			"%s: offered-vs-achieved gap %.3f (ceiling %.3f)", mix, ctl.GapFraction, maxGap)
		report(ctl.Degraded > 0 || ctl.Shed > 0,
			"%s: controller engaged (degraded %d, shed %d)", mix, ctl.Degraded, ctl.Shed)
		// Without the controller the same offered load must violate the
		// budget, otherwise the gate proves nothing about admission.
		report(raw.CorrectedP99Ms > ctl.BudgetMs,
			"%s: uncontrolled corrected p99 %.2fms exceeds the %.0fms budget (load saturates)",
			mix, raw.CorrectedP99Ms, ctl.BudgetMs)
	}

	// The simulator is a pure function of its seed: every candidate row
	// must match the committed baseline byte for byte.
	if len(curRaw) != len(baseRaw) {
		report(false, "open_loop: %d rows, baseline %s has %d", len(curRaw), baselinePath, len(baseRaw))
	} else {
		for i := range curRaw {
			name := fmt.Sprintf("open_loop[%d]", i)
			if i < len(cur) {
				name = fmt.Sprintf("%s/slo=%v", cur[i].Mix, cur[i].SLO)
			}
			report(compactJSON(curRaw[i]) == compactJSON(baseRaw[i]),
				"%s: row byte-identical to baseline", name)
		}
	}

	if failed {
		fmt.Println("benchgate: slo gate failed — see FAIL rows above")
		return 1
	}
	fmt.Println("benchgate: all gates hold")
	return 0
}

// compactJSON normalizes whitespace so the identity gate compares values,
// not indentation.
func compactJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}

func readRows(path string) (map[string]harness.NetsimBenchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []harness.NetsimBenchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]harness.NetsimBenchRow, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out, nil
}
