// Command benchgate compares a freshly measured netsim benchmark artifact
// against the committed baseline (BENCH_netsim.json) and fails when the
// zero-alloc serve path regresses. It gates on allocation counts only —
// deterministic across machines — and reports wall times for context
// without failing on them.
//
// Gates:
//
//   - served_cache_hit / served_cache_hit_binary: allocs/op must stay at
//     or below the absolute ceiling (-max-hit-allocs, default 50). The
//     hit path is pre-serialized end to end; any new allocation is a leak
//     into the hot path, not noise.
//   - served_cache_miss: allocs/op must not exceed the committed baseline
//     by more than the relative slack (-miss-slack, default 20%).
//
// With -cluster it instead gates a distributed-tier artifact written by
// `loadgen -cluster` (BENCH_cluster.json):
//
//   - speedup_8x_vs_1 must reach -min-cluster-speedup (default 6): the
//     8-node tier must absorb the cache-miss load a single node thrashes
//     on.
//   - byte_identical must be true: every node serves the same bytes.
//   - singleflight_computations must be exactly 1: a tier-wide cold herd
//     costs one DFS.
//   - warm_restart_hit_rate must reach -min-warm-hit-rate (default 0.95).
//
// Usage:
//
//	benchgate -baseline BENCH_netsim.json -current BENCH_netsim.ci.json
//	benchgate -cluster -current BENCH_cluster.ci.json
//
// Exit status 0 when every gate holds, 1 on any regression or missing row.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"alpacomm/internal/harness"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_netsim.json", "committed baseline artifact")
	currentPath := flag.String("current", "", "freshly measured artifact to gate (required)")
	maxHitAllocs := flag.Int64("max-hit-allocs", 50, "absolute allocs/op ceiling for served cache hits")
	missSlack := flag.Float64("miss-slack", 0.20, "allowed relative allocs/op growth for served_cache_miss vs baseline")
	cluster := flag.Bool("cluster", false, "gate a distributed-tier artifact (loadgen -cluster) instead of the netsim one")
	minSpeedup := flag.Float64("min-cluster-speedup", 6, "minimum 8-node vs 1-node throughput ratio (-cluster)")
	minWarmHit := flag.Float64("min-warm-hit-rate", 0.95, "minimum warm-restart hit rate (-cluster)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	if *cluster {
		os.Exit(gateCluster(*currentPath, *minSpeedup, *minWarmHit))
	}

	baseline, err := readRows(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	current, err := readRows(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	failed := false
	report := func(ok bool, format string, args ...interface{}) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}

	for _, name := range []string{"served_cache_hit", "served_cache_hit_binary"} {
		row, ok := current[name]
		if !ok {
			report(false, "%s: missing from %s", name, *currentPath)
			continue
		}
		report(row.AllocsPerOp <= *maxHitAllocs,
			"%s: %d allocs/op (ceiling %d), %.0f ns/op",
			name, row.AllocsPerOp, *maxHitAllocs, row.NsPerOp)
	}

	const miss = "served_cache_miss"
	cur, curOK := current[miss]
	base, baseOK := baseline[miss]
	switch {
	case !curOK:
		report(false, "%s: missing from %s", miss, *currentPath)
	case !baseOK:
		report(false, "%s: missing from baseline %s", miss, *baselinePath)
	default:
		limit := int64(float64(base.AllocsPerOp) * (1 + *missSlack))
		report(cur.AllocsPerOp <= limit,
			"%s: %d allocs/op (baseline %d, limit %d), %.0f ns/op",
			miss, cur.AllocsPerOp, base.AllocsPerOp, limit, cur.NsPerOp)
	}

	if failed {
		fmt.Println("benchgate: allocation regression — see FAIL rows above")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates hold")
}

// clusterArtifact mirrors the gated subset of loadgen's BENCH_cluster.json.
type clusterArtifact struct {
	Speedup8xVs1             float64 `json:"speedup_8x_vs_1"`
	ByteIdentical            bool    `json:"byte_identical"`
	SingleflightComputations int     `json:"singleflight_computations"`
	WarmRestartHitRate       float64 `json:"warm_restart_hit_rate"`
}

// gateCluster checks a distributed-tier artifact and returns the exit
// status.
func gateCluster(path string, minSpeedup, minWarmHit float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	var a clusterArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		return 1
	}
	failed := false
	report := func(ok bool, format string, args ...interface{}) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s\n", status, fmt.Sprintf(format, args...))
	}
	report(a.Speedup8xVs1 >= minSpeedup,
		"speedup_8x_vs_1: %.1fx (floor %.1fx)", a.Speedup8xVs1, minSpeedup)
	report(a.ByteIdentical, "byte_identical: %v", a.ByteIdentical)
	report(a.SingleflightComputations == 1,
		"singleflight_computations: %d (want exactly 1)", a.SingleflightComputations)
	report(a.WarmRestartHitRate >= minWarmHit,
		"warm_restart_hit_rate: %.3f (floor %.3f)", a.WarmRestartHitRate, minWarmHit)
	if failed {
		fmt.Println("benchgate: cluster gate failed — see FAIL rows above")
		return 1
	}
	fmt.Println("benchgate: all gates hold")
	return 0
}

func readRows(path string) (map[string]harness.NetsimBenchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []harness.NetsimBenchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]harness.NetsimBenchRow, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out, nil
}
