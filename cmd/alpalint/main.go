// Command alpalint runs the repo's static-analysis suite
// (internal/analysis) over the module: five analyzers that mechanically
// enforce the invariants the planner and serve path depend on —
// determinism, hotalloc, ctxflow, pooldiscipline and fingerprint.
//
// Usage:
//
//	go run ./cmd/alpalint ./...          # text diagnostics, exit 1 if any
//	go run ./cmd/alpalint -json ./...    # machine-readable findings
//	go run ./cmd/alpalint -fix ./...     # apply suggested fixes in place
//	go run ./cmd/alpalint -list          # describe the analyzers
//
// Each analyzer is package-agnostic; this driver decides where each one
// applies. Determinism runs over the plan-producing packages (planner,
// schedule, netsim, resharding, mesh), ctxflow over the layers that block
// or search on behalf of a caller (service, cluster, resharding), and the
// remaining three everywhere. Test files are never analyzed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"

	"alpacomm/internal/analysis"
)

// analyzerScope maps analyzer name -> import paths it applies to. A nil
// entry means every package.
var analyzerScope = map[string][]string{
	"determinism": {
		"alpacomm",
		"alpacomm/internal/schedule",
		"alpacomm/internal/netsim",
		"alpacomm/internal/resharding",
		"alpacomm/internal/mesh",
		"alpacomm/internal/loadmodel",
	},
	"ctxflow": {
		"alpacomm/internal/service",
		"alpacomm/internal/cluster",
		"alpacomm/internal/resharding",
	},
	"hotalloc":       nil,
	"pooldiscipline": nil,
	"fingerprint":    nil,
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	applyFix := flag.Bool("fix", false, "apply suggested fixes in place")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadPackages(dir, patterns...)
	if err != nil {
		fatal(err)
	}

	var findings []jsonFinding
	fixed := 0
	for _, pkg := range pkgs {
		analyzers := scopedAnalyzers(pkg.ImportPath)
		if len(analyzers) == 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		if *applyFix {
			n, remaining, err := applyFixes(pkg, diags)
			if err != nil {
				fatal(err)
			}
			fixed += n
			diags = remaining
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, jsonFinding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Fixable:  len(d.Fixes) > 0,
			})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
		if fixed > 0 {
			fmt.Fprintf(os.Stderr, "alpalint: applied %d fix(es)\n", fixed)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func scopedAnalyzers(importPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		scope, known := analyzerScope[a.Name]
		if !known {
			// New analyzer without a scope entry: run everywhere rather
			// than silently skip it.
			out = append(out, a)
			continue
		}
		if scope == nil {
			out = append(out, a)
			continue
		}
		for _, p := range scope {
			if p == importPath {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// applyFixes applies the first suggested fix of each diagnostic that has
// one, skipping fixes that overlap an already-applied edit. Returns the
// number of fixes applied and the diagnostics that remain (no fix, or
// fix skipped due to overlap).
func applyFixes(pkg *analysis.Package, diags []analysis.Diagnostic) (int, []analysis.Diagnostic, error) {
	type edit struct {
		pos, end token.Pos
		text     []byte
		imp      string
	}
	byFile := map[string][]edit{}
	var remaining []analysis.Diagnostic
	applied := 0
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			remaining = append(remaining, d)
			continue
		}
		fix := d.Fixes[0]
		file := pkg.Fset.Position(d.Pos).Filename
		overlap := false
		for _, e := range fix.Edits {
			for _, prev := range byFile[file] {
				if e.Pos < prev.end && prev.pos < e.End {
					overlap = true
				}
			}
		}
		if overlap {
			remaining = append(remaining, d)
			continue
		}
		for _, e := range fix.Edits {
			byFile[file] = append(byFile[file], edit{e.Pos, e.End, e.NewText, fix.NeedImport})
		}
		applied++
	}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return 0, nil, err
		}
		tf := pkg.Fset.File(edits[0].pos)
		// Apply back-to-front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].pos > edits[j].pos })
		imports := map[string]bool{}
		for _, e := range edits {
			start := tf.Offset(e.pos)
			end := tf.Offset(e.end)
			src = append(src[:start:start], append(e.text, src[end:]...)...)
			if e.imp != "" {
				imports[e.imp] = true
			}
		}
		src, err = ensureImports(src, imports)
		if err != nil {
			return 0, nil, fmt.Errorf("%s: %v", file, err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return 0, nil, fmt.Errorf("%s: formatting fixed source: %v", file, err)
		}
		if err := os.WriteFile(file, formatted, 0o644); err != nil {
			return 0, nil, err
		}
	}
	return applied, remaining, nil
}

// ensureImports adds each needed import to the file's import block if the
// source does not already import it. Textual insertion is enough here:
// the result is gofmt-ed immediately after, and fix targets always have
// an import block (they import the package that got them flagged).
func ensureImports(src []byte, needed map[string]bool) ([]byte, error) {
	text := string(src)
	var missing []string
	for imp := range needed {
		if !strings.Contains(text, `"`+imp+`"`) {
			missing = append(missing, imp)
		}
	}
	if len(missing) == 0 {
		return src, nil
	}
	sort.Strings(missing)
	idx := strings.Index(text, "import (")
	if idx < 0 {
		// Single-import or importless file: synthesize a block after the
		// package clause.
		nl := strings.Index(text, "\n")
		if pkgEnd := strings.Index(text, "package "); pkgEnd >= 0 {
			nl = pkgEnd + strings.Index(text[pkgEnd:], "\n")
		}
		if nl < 0 {
			return nil, fmt.Errorf("cannot locate package clause to add imports %v", missing)
		}
		var block strings.Builder
		block.WriteString("\n\nimport (\n")
		for _, imp := range missing {
			fmt.Fprintf(&block, "\t%q\n", imp)
		}
		block.WriteString(")")
		return []byte(text[:nl] + block.String() + text[nl:]), nil
	}
	insert := idx + len("import (")
	var add strings.Builder
	for _, imp := range missing {
		fmt.Fprintf(&add, "\n\t%q", imp)
	}
	return []byte(text[:insert] + add.String() + text[insert:]), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alpalint:", err)
	os.Exit(1)
}
