// Command ablation regenerates the paper's ablation studies: Fig. 8 (load
// balancing and ordering algorithms over the Table 2 cases) and Fig. 9
// (overlap and eager-1F1B on the U-Transformer).
//
// Usage:
//
//	ablation [-fig 8|9|all] [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"

	alpacomm "alpacomm"
)

func main() {
	fig := flag.String("fig", "all", "which ablation to run: 8, 9, chunks, or all")
	scale := flag.Int("scale", 1, "divide Fig. 8 message sizes by this factor")
	flag.Parse()

	runFig8 := func() {
		rows, err := alpacomm.Fig8Rows(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation: fig8: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(alpacomm.RenderMicroRows("Fig 8: load-balance ablation (broadcast strategy)", rows))
		fmt.Println()
	}
	runFig9 := func() {
		rows, err := alpacomm.Fig9Rows()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation: fig9: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(alpacomm.RenderFig9Rows(rows))
	}

	runChunks := func() {
		rows, err := alpacomm.ChunkSweepRows(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation: chunks: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(alpacomm.RenderChunkRows(rows))
		fmt.Println()
	}

	switch *fig {
	case "8":
		runFig8()
	case "9":
		runFig9()
	case "chunks":
		runChunks()
	case "all":
		runFig8()
		runFig9()
		runChunks()
	default:
		fmt.Fprintf(os.Stderr, "ablation: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
