// Command reshard plans, simulates and verifies a single cross-mesh
// resharding task described on the command line, printing the unit-task
// decomposition (Fig. 2 / Appendix B), the schedule, and a network
// timeline.
//
// Example (the paper's Figure 2, Task 1):
//
//	reshard -shape 4,4 -src-spec S01R -dst-spec S0R \
//	        -src-mesh 2x2@0 -dst-mesh 2x2@4 -hosts 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	alpacomm "alpacomm"
	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
	"alpacomm/internal/trace"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "reshard: "+format+"\n", args...)
	os.Exit(1)
}

// parseShape parses "4,4" into a tensor shape.
func parseShape(s string) (tensor.Shape, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		dims = append(dims, v)
	}
	return tensor.NewShape(dims...)
}

func main() {
	shapeStr := flag.String("shape", "4,4", "global tensor shape, e.g. 4,4")
	srcSpec := flag.String("src-spec", "S01R", "source sharding spec")
	dstSpec := flag.String("dst-spec", "S0R", "destination sharding spec")
	srcMesh := flag.String("src-mesh", "2x2@0", "source mesh as ROWSxCOLS@FIRSTDEV")
	dstMesh := flag.String("dst-mesh", "2x2@4", "destination mesh")
	topology := flag.String("topology", "p3", "hardware topology preset: p3, dgx-a100, mixed")
	hosts := flag.Int("hosts", 2, "host count (0 = preset default; mixed: half p3, half DGX)")
	oversub := flag.Float64("oversub", 1, "fabric oversubscription (mixed topology)")
	strategy := flag.String("strategy", "broadcast", "send-recv, local-allgather, global-allgather, broadcast, alpa, signal")
	scheduler := flag.String("scheduler", "ensemble", "naive, greedy-load, loadbalance, ensemble")
	faults := flag.String("faults", "", `degrade the topology and re-plan: a named scenario (link-down, brownout, straggler) or a fault spec like "link:0-1:down;host:1:nic=0.25"`)
	showTimeline := flag.Bool("timeline", true, "print the network timeline")
	timeout := flag.Duration("timeout", 0, "abort planning after this long (0 = no limit); the deadline reaches inside the DFS")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	shape, err := parseShape(*shapeStr)
	if err != nil {
		fail("bad shape: %v", err)
	}
	registry := alpacomm.DefaultTopologyRegistry()
	cluster, err := registry.Build(*topology,
		alpacomm.TopologyParams{Hosts: *hosts, Oversubscription: *oversub})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("topology: %v\n", cluster)
	src, err := mesh.ParseSlice(cluster, *srcMesh)
	if err != nil {
		fail("bad src mesh: %v", err)
	}
	dst, err := mesh.ParseSlice(cluster, *dstMesh)
	if err != nil {
		fail("bad dst mesh: %v", err)
	}
	sspec, err := sharding.Parse(*srcSpec)
	if err != nil {
		fail("bad src spec: %v", err)
	}
	dspec, err := sharding.Parse(*dstSpec)
	if err != nil {
		fail("bad dst spec: %v", err)
	}

	task, err := sharding.NewTask(shape, tensor.Float32, src, sspec, dst, dspec)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(task)
	fmt.Println("\nUnit communication tasks (Appendix B decomposition):")
	for _, u := range task.Units {
		fmt.Printf("  #%d slice %v  senders %v -> receivers %v (%d bytes)\n",
			u.Index, u.Slice, u.Senders, u.Receivers, u.Bytes(task.DType))
	}

	opts := resharding.Options{Seed: 1}
	if opts.Strategy, err = resharding.ParseStrategy(*strategy); err != nil {
		fail("%v", err)
	}
	if opts.Scheduler, err = resharding.ParseScheduler(*scheduler); err != nil {
		fail("%v", err)
	}

	planner := alpacomm.NewPlanner(
		alpacomm.WithTopology(cluster),
		alpacomm.WithDefaultPlanOptions(opts),
	)
	plan, _, err := planner.Plan(ctx, task, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fail("planning exceeded the -timeout budget of %v", *timeout)
		}
		fail("%v", err)
	}
	fmt.Printf("\nPlan: %v\n  launch order %v\n  senders %v\n", plan, plan.Order, plan.SenderOf)

	res, err := resharding.RoundTrip(plan)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("\nData plane: every destination device verified correct.\n")
	fmt.Printf("Simulated completion: %.6fs, effective bandwidth %.2f Gbps, %d ops\n",
		res.Makespan, res.EffectiveGbps, res.NumOps)
	if *showTimeline {
		fmt.Println("\nNetwork timeline:")
		fmt.Print(trace.Gantt(res.Events, nil, 100))
	}

	if *faults != "" {
		// Replan-on-degrade: the healthy plan above is cached in the
		// session; the same boundary re-planned under the overlay lands in
		// its own cache partition.
		var fs alpacomm.FaultSet
		if isScenario := func() bool {
			for _, n := range registry.FaultScenarioNames() {
				if n == *faults {
					return true
				}
			}
			return false
		}(); isScenario {
			// A known scenario that fails to build (e.g. link-down on 2
			// hosts) must report the topology problem, not fall through to
			// the spec parser and mask it.
			var err error
			if fs, err = registry.BuildFaultScenario(*faults, cluster); err != nil {
				fail("%v", err)
			}
		} else {
			var err error
			if fs, err = alpacomm.ParseFaultSet(*faults); err != nil {
				fail("bad -faults %q: not a scenario name (have %s) or a fault spec: %v",
					*faults, strings.Join(registry.FaultScenarioNames(), ", "), err)
			}
		}
		degPlan, degSim, err := planner.ReplanDegraded(ctx, task, opts, fs)
		if err != nil {
			fail("replan under faults: %v", err)
		}
		fmt.Printf("\nDegraded topology (-faults %s): %d link fault(s), %d straggler host(s)\n",
			*faults, len(fs.Links), len(fs.Hosts))
		fmt.Printf("Degraded plan: %v\n  launch order %v\n  senders %v\n", degPlan, degPlan.Order, degPlan.SenderOf)
		fmt.Printf("Degraded completion: %.6fs (healthy %.6fs, %+.1f%%), effective bandwidth %.2f Gbps\n",
			degSim.Makespan, res.Makespan, 100*(degSim.Makespan-res.Makespan)/res.Makespan, degSim.EffectiveGbps)

		// Warm vs cold replan: time a from-scratch search on the degraded
		// boundary against the incremental warm path seeded by the healthy
		// plan — what the serving session above actually did.
		degTask, err := task.OnTopology(mesh.MustFaulted(cluster, fs))
		if err != nil {
			fail("rebind under faults: %v", err)
		}
		start := time.Now()
		coldPlan, err := resharding.NewPlanContext(ctx, degTask, opts)
		if err != nil {
			fail("cold replan under faults: %v", err)
		}
		coldLatency := time.Since(start)
		coldSim, err := coldPlan.SimulateNoTrace()
		if err != nil {
			fail("cold replan simulate: %v", err)
		}
		start = time.Now()
		warmPlan, warmSim, warmInfo, err := resharding.WarmReplanContext(ctx, degTask, opts, task, plan)
		if err != nil {
			fail("warm replan under faults: %v", err)
		}
		warmLatency := time.Since(start)
		if warmSim == nil {
			if warmSim, err = warmPlan.SimulateNoTrace(); err != nil {
				fail("warm replan simulate: %v", err)
			}
		}
		fmt.Printf("\nWarm vs cold replan (%d of %d units impacted, warm mode %s):\n",
			warmInfo.ImpactedUnits, warmInfo.TotalUnits, warmInfo.Mode)
		fmt.Printf("  cold search: %v -> makespan %.6fs\n", coldLatency, coldSim.Makespan)
		fmt.Printf("  warm replan: %v -> makespan %.6fs (%.1fx faster, makespan %+.2f%%)\n",
			warmLatency, warmSim.Makespan,
			float64(coldLatency)/float64(warmLatency),
			100*(warmSim.Makespan-coldSim.Makespan)/coldSim.Makespan)

		if *showTimeline {
			fmt.Println("\nDegraded network timeline:")
			fmt.Print(trace.Gantt(degSim.Events, nil, 100))
		}
	}
}
