// Command e2e regenerates the paper's end-to-end evaluation: Fig. 7
// (training throughput of GPT and U-Transformer under Table 3's
// configurations), Table 1 (memory accounting), and Fig. 4-style pipeline
// timelines.
//
// Usage:
//
//	e2e [-batch-scale N] [-table1] [-timeline]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	alpacomm "alpacomm"
	"alpacomm/internal/harness"
	"alpacomm/internal/pipeline"
	"alpacomm/internal/trace"
)

func main() {
	batchScale := flag.Int("batch-scale", 1, "divide global batch sizes by this factor")
	topology := flag.String("topology", "p3", "hardware topology preset: p3, dgx-a100, mixed")
	oversub := flag.Float64("oversub", 1, "fabric oversubscription (mixed topology)")
	tsvOut := flag.String("tsv", "", "also record rows to this TSV file (artifact format)")
	table1 := flag.Bool("table1", false, "print Table 1 (GPT layer memory) and exit")
	timeline := flag.Bool("timeline", false, "print Fig. 4-style 1F1B vs eager-1F1B timelines and exit")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
	flag.Parse()

	if *table1 {
		fmt.Print(alpacomm.Table1Report())
		return
	}
	if *timeline {
		printTimelines()
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rows, err := alpacomm.Fig7RowsOnContext(ctx, *batchScale, *topology, *oversub)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "e2e: sweep exceeded the -timeout budget of %v\n", *timeout)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "e2e: %v\n", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("Fig 7: end-to-end training throughput (Table 3 cases, topology %s)", *topology)
	fmt.Print(alpacomm.RenderE2ERows(title, rows))
	if *tsvOut != "" {
		if err := harness.WriteE2ETSV(*tsvOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "e2e: %v\n", err)
			os.Exit(1)
		}
	}
}

// printTimelines renders the Fig. 4 comparison: 2 stages, 7 micro-batches,
// with communication visible between dependent tasks.
func printTimelines() {
	base := pipeline.Config{
		Stages:       2,
		MicroBatches: 7,
		FwdTime:      []float64{1, 1},
		BwdTime:      []float64{2, 2},
		FwdCommTime:  []float64{0.5},
		Overlap:      true,
	}
	for _, kind := range []pipeline.Kind{pipeline.OneFOneB, pipeline.Eager1F1B} {
		cfg := base
		cfg.Schedule = kind
		res, err := pipeline.Simulate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "e2e: timeline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s schedule (makespan %.2f):\n", kind, res.Makespan)
		fmt.Print(trace.Gantt(res.Events, trace.StageOrder(2), 100))
		fmt.Println()
	}
}
