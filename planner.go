package alpacomm

import (
	"context"
	"fmt"

	"alpacomm/internal/resharding"
)

// Planner is the session API every layer of the system consumes: one
// object owning the topology, the translation-canonical plan cache, the
// autotune candidate cache and the default planning options, with a single
// cancellable entry point per operation. A context deadline or
// cancellation reaches every layer below — queued admission waits,
// coalesced cache waits, and the autotuner's DFS between node-budget
// slices — so a disconnected caller aborts heavy work instead of riding
// it out.
//
// Construct with NewPlanner and the With* options; a zero-config session
// owns private unbounded caches. The deprecated free functions
// (PlanReshard + Plan.Simulate, AutotuneReshard, ReshardCache hand-wiring)
// remain as thin wrappers for one release; new code should hold a session:
//
//	planner := alpacomm.NewPlanner(
//		alpacomm.WithTopology(cluster),
//		alpacomm.WithLRUCache(4096),
//	)
//	plan, sim, err := planner.Plan(ctx, task, opts)
type Planner struct {
	*resharding.Planner
}

// PlannerOption configures a Planner session at construction.
type PlannerOption = resharding.PlannerOption

// WithTopology pins the session to one hardware topology; planning a task
// that lives on a different topology fails immediately.
func WithTopology(t Topology) PlannerOption { return resharding.WithTopology(t) }

// WithCache supplies the session's plan cache (share one across sessions
// to reuse plans between congruent jobs).
var WithCache = resharding.WithCache

// WithLRUCache bounds the session's plan cache to n entries with LRU
// eviction (n <= 0 means unbounded).
var WithLRUCache = resharding.WithLRUCache

// WithAutotuneCache supplies the separate cache memoizing autotune
// candidate plans.
var WithAutotuneCache = resharding.WithAutotuneCache

// WithAutotuneGrid replaces the strategy x scheduler grid Autotune
// searches (nil/empty = the full DefaultAutotuneGrid).
var WithAutotuneGrid = resharding.WithAutotuneGrid

// WithParallelism bounds the session's autotune fan-out (0 = GOMAXPROCS);
// results are identical for every worker count.
var WithParallelism = resharding.WithParallelism

// WithDefaultPlanOptions sets the options a zero ReshardOptions value
// plans under.
var WithDefaultPlanOptions = resharding.WithDefaultPlanOptions

// WithFaults overlays a deterministic degradation (FaultSet) on every
// task planned through the session; see Planner.ReplanDegraded for
// per-call overlays on a healthy session.
var WithFaults = resharding.WithFaults

// NewPlanner builds a planning session; see Planner.
func NewPlanner(opts ...PlannerOption) *Planner {
	return &Planner{resharding.NewPlanner(opts...)}
}

// BoundaryPlan is one stage boundary's plan within a training job.
type BoundaryPlan struct {
	// Boundary is the stage-boundary index (stage Boundary -> Boundary+1).
	Boundary int
	// Tensor names the workload tensor crossing the boundary.
	Tensor string
	// Key is the boundary's canonical cache key: congruent boundaries
	// share it, and shared keys were planned exactly once.
	Key string
	// Plan is the session's plan. Boundaries that hit a congruent cache
	// entry carry the shared plan with devices of the first congruent
	// boundary planned — see ReshardCache.
	Plan *ReshardPlan
	// Sim is the plan's simulated timing (exact for this boundary even on
	// a translated hit).
	Sim *ReshardResult
}

// PlanBoundaries plans the resharding of every stage boundary of the job
// through the session in one cancellable call — the library-level
// equivalent of the service's /v2/plan:batch. Congruent boundaries (the
// common case: every GPT boundary reshards the same tensor between
// congruent meshes) collapse to one planner computation via the session
// cache; the returned slice lists every boundary tensor in workload order.
func (p *Planner) PlanBoundaries(ctx context.Context, job *TrainingJob) ([]BoundaryPlan, error) {
	if job == nil || job.Workload == nil {
		return nil, fmt.Errorf("alpacomm: PlanBoundaries: nil job or workload")
	}
	if err := job.Workload.Validate(); err != nil {
		return nil, err
	}
	meshes, err := job.StageMeshes()
	if err != nil {
		return nil, err
	}
	out := make([]BoundaryPlan, 0, len(job.Workload.Boundaries))
	for _, bt := range job.Workload.Boundaries {
		if bt.Boundary < 0 || bt.Boundary+1 >= len(meshes) {
			return nil, fmt.Errorf("alpacomm: boundary tensor %q crosses boundary %d of a %d-stage job", bt.Name, bt.Boundary, len(meshes))
		}
		task, err := job.boundaryTask(meshes, bt)
		if err != nil {
			return nil, err
		}
		opts := p.ResolveOptions(job.Reshard)
		// TaskKey folds the session's fault overlay (if any) into the key,
		// so the reported Key always matches what PlanKeyed plans under.
		key, _, err := p.TaskKey(task, opts)
		if err != nil {
			return nil, fmt.Errorf("alpacomm: boundary %d tensor %q: %w", bt.Boundary, bt.Name, err)
		}
		plan, sim, err := p.PlanKeyed(ctx, key, task, opts)
		if err != nil {
			return nil, fmt.Errorf("alpacomm: boundary %d tensor %q: %w", bt.Boundary, bt.Name, err)
		}
		out = append(out, BoundaryPlan{Boundary: bt.Boundary, Tensor: bt.Name, Key: key, Plan: plan, Sim: sim})
	}
	return out, nil
}

// session returns the job's planning session: the caller-owned one when
// set, otherwise a private session assembled from the job's legacy
// Cache/Autotune fields (kept for one release).
func (j *TrainingJob) session() *Planner {
	if j.Planner != nil {
		return j.Planner
	}
	opts := []PlannerOption{
		WithTopology(j.Cluster),
		WithDefaultPlanOptions(j.Reshard),
		WithParallelism(j.AutotuneWorkers),
	}
	if j.Cache != nil {
		// Legacy sharing semantics: the caller's cache held both served
		// plans and autotune candidate plans (their derived-seed keys never
		// collide).
		opts = append(opts, WithCache(j.Cache), WithAutotuneCache(j.Cache))
	}
	return NewPlanner(opts...)
}
