package trace

import (
	"strings"
	"testing"

	"alpacomm/internal/netsim"
)

func TestGanttBasic(t *testing.T) {
	s := netsim.NewSim()
	r1 := s.MustResource("stage0")
	r2 := s.MustResource("stage1")
	a := s.MustAddOp(netsim.Plain("s0/F0"), 2, 0, []netsim.ResourceID{r1})
	s.MustAddOp(netsim.Plain("s1/F0"), 2, 1, []netsim.ResourceID{r2}, a)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	out := Gantt(s.Events(), StageOrder(2), 40)
	if !strings.Contains(out, "stage0") || !strings.Contains(out, "stage1") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines", len(lines))
	}
	// Stage 0's F fills the first half, stage 1's the second.
	row0 := lines[1]
	row1 := lines[2]
	if !strings.Contains(row0, "F") || !strings.Contains(row1, "F") {
		t.Errorf("rows should contain task marks:\n%s", out)
	}
	if strings.Index(row1, "F") <= strings.Index(row0, "F") {
		t.Errorf("stage1 should start after stage0:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := Gantt(nil, nil, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty trace rendering = %q", got)
	}
}

func TestGanttAutoOrder(t *testing.T) {
	s := netsim.NewSim()
	s.MustAddOp(netsim.Plain("x/A0"), 1, 0, []netsim.ResourceID{s.MustResource("b")})
	s.MustAddOp(netsim.Plain("y/B0"), 1, 1, []netsim.ResourceID{s.MustResource("a")})
	s.Run()
	out := Gantt(s.Events(), nil, 20)
	// Auto order sorts resource names: "a" row before "b".
	ai := strings.Index(out, "a |")
	bi := strings.Index(out, "b |")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("rows not sorted:\n%s", out)
	}
}

func TestGanttTinyWidthClamped(t *testing.T) {
	s := netsim.NewSim()
	s.MustAddOp(netsim.Plain("z/C0"), 1, 0, []netsim.ResourceID{s.MustResource("r")})
	s.Run()
	out := Gantt(s.Events(), nil, 1)
	if len(out) == 0 {
		t.Error("clamped width should still render")
	}
}

func TestEventMark(t *testing.T) {
	if eventMark("s0/F3") != 'F' {
		t.Errorf("mark = %c", eventMark("s0/F3"))
	}
	if eventMark("plain") != 'p' {
		t.Errorf("mark = %c", eventMark("plain"))
	}
	if eventMark("") != '#' {
		t.Errorf("mark = %c", eventMark(""))
	}
}

func TestStageOrder(t *testing.T) {
	got := StageOrder(3)
	if len(got) != 3 || got[0] != "stage0" || got[2] != "stage2" {
		t.Errorf("StageOrder = %v", got)
	}
}
