// Package trace renders netsim event traces as ASCII Gantt timelines, for
// inspecting pipeline schedules (Fig. 4) and resharding executions.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"alpacomm/internal/netsim"
)

// Gantt renders one row per resource, time scaled to `width` characters.
// Each event paints its label's first rune over its time span on every
// resource it occupies. Resources are sorted by name unless an explicit
// order is given.
func Gantt(events []netsim.Event, resourceOrder []string, width int) string {
	if width < 10 {
		width = 10
	}
	var makespan float64
	rows := map[string][]netsim.Event{}
	for _, e := range events {
		if e.Finish > makespan {
			makespan = e.Finish
		}
		for _, r := range e.Resources {
			rows[r] = append(rows[r], e)
		}
	}
	if makespan == 0 || len(rows) == 0 {
		return "(empty timeline)\n"
	}
	names := resourceOrder
	if names == nil {
		for r := range rows {
			names = append(names, r)
		}
		sort.Strings(names)
	}
	nameWidth := 0
	for _, n := range names {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s |%s| t=%.4g\n", nameWidth, "", strings.Repeat("-", width), makespan)
	for _, name := range names {
		line := []rune(strings.Repeat(" ", width))
		for _, e := range rows[name] {
			lo := int(e.Start / makespan * float64(width))
			hi := int(e.Finish / makespan * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			mark := eventMark(e.Label)
			for i := lo; i < hi; i++ {
				line[i] = mark
			}
		}
		fmt.Fprintf(&b, "%*s |%s|\n", nameWidth, name, string(line))
	}
	return b.String()
}

// eventMark picks the display rune for an event: the first letter of the
// task name after the location prefix ("s0/F3" -> 'F', "c0:fwd/2" -> 'c').
func eventMark(label string) rune {
	if i := strings.IndexByte(label, '/'); i >= 0 && i+1 < len(label) {
		return rune(label[i+1])
	}
	if label != "" {
		return rune(label[0])
	}
	return '#'
}

// StageOrder returns the resource names "stage0".."stageN-1", the row
// order for pipeline timelines.
func StageOrder(stages int) []string {
	out := make([]string, stages)
	for s := range out {
		out[s] = fmt.Sprintf("stage%d", s)
	}
	return out
}
