package netsim

import (
	"fmt"
	"strconv"

	"alpacomm/internal/mesh"
)

// ClusterNet binds a Sim to a hardware topology and issues point-to-point
// transfers with the right resources and durations:
//
//   - intra-host transfers occupy the source device's send side and the
//     destination device's receive side at the host's intra-host bandwidth;
//   - cross-host transfers occupy the source host's NIC send side and the
//     destination host's NIC receive side at the effective inter-host
//     bandwidth (full duplex — §3's cluster properties, generalised to
//     per-host NIC tiers and oversubscribed fabrics).
//
// Resource handles are interned once per (topology, Sim generation): the
// first transfer touching a device or NIC direction registers it and every
// later transfer reuses the typed ResourceID, so no per-op name formatting
// or map lookup happens on the hot path. Reset rewinds the bound Sim and
// invalidates the interned handles in one step, letting a pooled ClusterNet
// replay arbitrarily many schedules on the same topology allocation-free.
type ClusterNet struct {
	Sim *Sim
	// Topo is the topology transfers are timed and resourced against.
	Topo mesh.Topology
	// nic selects which of a host's NICs cross-host transfers ride, taken
	// modulo each host's NIC count (always 0 for single-NIC hosts). Set
	// with OnNIC.
	nic int
	// ids is the intern table, shared across OnNIC views.
	ids *resourceTable
}

// resSlot caches one interned resource: its rendered name (kept across
// generations so re-registration after Reset is allocation-free) and its
// handle in the current Sim generation.
type resSlot struct {
	name string
	id   ResourceID
	gen  uint32
}

// resourceTable holds the lazily interned per-device and per-NIC resource
// handles. gen is bumped by Reset; slots from older generations re-register
// on next use.
type resourceTable struct {
	gen      uint32
	devSend  []resSlot
	devRecv  []resSlot
	hostOff  []int32 // hostOff[h] is host h's first slot; len hosts+1
	hostSend []resSlot
	hostRecv []resSlot
}

func newResourceTable(t mesh.Topology) *resourceTable {
	hosts := t.HostCount()
	tab := &resourceTable{
		gen:     1,
		devSend: make([]resSlot, t.NumDevices()),
		devRecv: make([]resSlot, t.NumDevices()),
		hostOff: make([]int32, hosts+1),
	}
	for h := 0; h < hosts; h++ {
		tab.hostOff[h+1] = tab.hostOff[h] + int32(t.NICCount(h))
	}
	nicSlots := tab.hostOff[hosts]
	tab.hostSend = make([]resSlot, nicSlots)
	tab.hostRecv = make([]resSlot, nicSlots)
	return tab
}

// OnNIC returns a view of the net whose cross-host transfers use the k-th
// NIC of each host (k taken modulo each host's NIC count). The paper's
// multi-NIC extension splits a unit task into one sub-task per NIC.
func (n *ClusterNet) OnNIC(k int) *ClusterNet {
	cp := *n
	cp.nic = k
	return &cp
}

// NewClusterNet creates a fresh simulator over the topology.
func NewClusterNet(t mesh.Topology) *ClusterNet {
	return &ClusterNet{Sim: NewSim(), Topo: t, ids: newResourceTable(t)}
}

// Reset rewinds the bound Sim and invalidates all interned resource
// handles, keeping every arena and the cached resource names. The next
// schedule built on this net re-registers only the resources it touches.
func (n *ClusterNet) Reset() {
	n.Sim.Reset()
	n.ids.gen++
}

// resource-name patterns for intern; kept as an enum (not closures) so the
// hot path builds no function values.
const (
	nameDevSend = iota
	nameDevRecv
	nameHostSend
	nameHostRecv
)

// intern returns the slot's handle, registering the resource in the
// current Sim generation (and rendering its name on first-ever use).
func (n *ClusterNet) intern(slot *resSlot, kind, a, b, nics int) ResourceID {
	if slot.gen == n.ids.gen {
		return slot.id
	}
	if slot.name == "" {
		switch kind {
		case nameDevSend:
			slot.name = "dev" + strconv.Itoa(a) + ":send"
		case nameDevRecv:
			slot.name = "dev" + strconv.Itoa(a) + ":recv"
		case nameHostSend:
			slot.name = hostName(a, "send", b, nics)
		case nameHostRecv:
			slot.name = hostName(a, "recv", b, nics)
		}
	}
	id, err := n.Sim.NewResource(slot.name)
	if err != nil {
		// The transfer path rejects post-Run builds before interning, so
		// this is only reachable by calling DeviceSend/HostSend & co.
		// directly on a completed schedule — a handle request that cannot
		// be satisfied, reported loudly.
		panic(err)
	}
	slot.id = id
	slot.gen = n.ids.gen
	return id
}

// DeviceSend returns the send-side resource of a device's intra-host link.
func (n *ClusterNet) DeviceSend(dev int) ResourceID {
	return n.intern(&n.ids.devSend[dev], nameDevSend, dev, 0, 0)
}

// DeviceRecv returns the receive-side resource of a device's intra-host link.
func (n *ClusterNet) DeviceRecv(dev int) ResourceID {
	return n.intern(&n.ids.devRecv[dev], nameDevRecv, dev, 0, 0)
}

// nicIndex resolves this net view's NIC selector on a concrete host.
func (n *ClusterNet) nicIndex(host int) int {
	nics := n.Topo.NICCount(host)
	return ((n.nic % nics) + nics) % nics
}

// hostName renders the NIC-direction resource name exactly as the
// single-NIC and multi-NIC naming schemes require.
func hostName(host int, dir string, nic, nics int) string {
	if nics > 1 {
		return "host" + strconv.Itoa(host) + ":" + dir + ":nic" + strconv.Itoa(nic)
	}
	return "host" + strconv.Itoa(host) + ":" + dir
}

// HostSend returns the send side of the host NIC this net view uses.
func (n *ClusterNet) HostSend(host int) ResourceID {
	nics := n.Topo.NICCount(host)
	k := n.nicIndex(host)
	return n.intern(&n.ids.hostSend[n.ids.hostOff[host]+int32(k)], nameHostSend, host, k, nics)
}

// HostRecv returns the receive side of the host NIC this net view uses.
func (n *ClusterNet) HostRecv(host int) ResourceID {
	nics := n.Topo.NICCount(host)
	k := n.nicIndex(host)
	return n.intern(&n.ids.hostRecv[n.ids.hostOff[host]+int32(k)], nameHostRecv, host, k, nics)
}

// TransferTime returns the modelled duration of one point-to-point transfer
// of the given size between two devices (latency + bytes/bandwidth).
func (n *ClusterNet) TransferTime(src, dst int, bytes int64) float64 {
	t := n.Topo
	if t.SameHost(src, dst) {
		h := t.HostOf(src)
		return t.IntraLatency(h) + float64(bytes)/t.IntraBandwidth(h)
	}
	hs, hd := t.HostOf(src), t.HostOf(dst)
	return t.InterLatency(hs, hd) + float64(bytes)/t.InterBandwidth(hs, hd)
}

// Transfer registers a point-to-point transfer op between two devices and
// returns its id. seq fixes per-resource FIFO order among simultaneously
// ready transfers.
func (n *ClusterNet) Transfer(label Label, src, dst int, bytes int64, seq int, deps ...OpID) (OpID, error) {
	return n.transfer(label, src, dst, bytes, seq, true, deps)
}

// StreamTransfer registers a transfer that continues an established stream
// on the same route: it pays bandwidth but not the per-transfer latency.
// Used for the non-first chunks of a pipelined broadcast, which NCCL
// streams without re-paying launch and wire latency.
func (n *ClusterNet) StreamTransfer(label Label, src, dst int, bytes int64, seq int, deps ...OpID) (OpID, error) {
	return n.transfer(label, src, dst, bytes, seq, false, deps)
}

func (n *ClusterNet) transfer(label Label, src, dst int, bytes int64, seq int, withLatency bool, deps []OpID) (OpID, error) {
	if n.Sim.ran {
		// Guard before interning: resolving resources for a post-Run
		// transfer would otherwise try to register into the completed
		// schedule. Matches AddOp's error path.
		return 0, fmt.Errorf("netsim: cannot add ops after Run")
	}
	t := n.Topo
	if !t.ValidDevice(src) || !t.ValidDevice(dst) {
		return 0, fmt.Errorf("netsim: transfer %q between invalid devices %d -> %d", label.String(), src, dst)
	}
	if src == dst {
		return 0, fmt.Errorf("netsim: transfer %q to self on device %d", label.String(), src)
	}
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: transfer %q has negative size %d", label.String(), bytes)
	}
	var res [2]ResourceID
	dur := n.TransferTime(src, dst, bytes)
	if !withLatency {
		if t.SameHost(src, dst) {
			dur -= t.IntraLatency(t.HostOf(src))
		} else {
			dur -= t.InterLatency(t.HostOf(src), t.HostOf(dst))
		}
	}
	if t.SameHost(src, dst) {
		res[0], res[1] = n.DeviceSend(src), n.DeviceRecv(dst)
	} else {
		res[0], res[1] = n.HostSend(t.HostOf(src)), n.HostRecv(t.HostOf(dst))
	}
	return n.Sim.AddOp(label, dur, seq, res[:], deps...)
}

// MustTransfer is Transfer that panics on error.
func (n *ClusterNet) MustTransfer(label Label, src, dst int, bytes int64, seq int, deps ...OpID) OpID {
	id, err := n.Transfer(label, src, dst, bytes, seq, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// Run executes the accumulated schedule and returns its makespan.
func (n *ClusterNet) Run() (float64, error) { return n.Sim.Run() }
