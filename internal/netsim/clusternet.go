package netsim

import (
	"fmt"

	"alpacomm/internal/mesh"
)

// ClusterNet binds a Sim to a hardware topology and issues point-to-point
// transfers with the right resources and durations:
//
//   - intra-host transfers occupy the source device's send side and the
//     destination device's receive side at the host's intra-host bandwidth;
//   - cross-host transfers occupy the source host's NIC send side and the
//     destination host's NIC receive side at the effective inter-host
//     bandwidth (full duplex — §3's cluster properties, generalised to
//     per-host NIC tiers and oversubscribed fabrics).
type ClusterNet struct {
	Sim *Sim
	// Topo is the topology transfers are timed and resourced against.
	Topo mesh.Topology
	// nic selects which of a host's NICs cross-host transfers ride, taken
	// modulo each host's NIC count (always 0 for single-NIC hosts). Set
	// with OnNIC.
	nic int
}

// OnNIC returns a view of the net whose cross-host transfers use the k-th
// NIC of each host (k taken modulo each host's NIC count). The paper's
// multi-NIC extension splits a unit task into one sub-task per NIC.
func (n *ClusterNet) OnNIC(k int) *ClusterNet {
	cp := *n
	cp.nic = k
	return &cp
}

// NewClusterNet creates a fresh simulator over the topology.
func NewClusterNet(t mesh.Topology) *ClusterNet {
	return &ClusterNet{Sim: NewSim(), Topo: t}
}

// DeviceSend returns the send-side resource of a device's intra-host link.
func (n *ClusterNet) DeviceSend(dev int) *Resource {
	return n.Sim.Resource(fmt.Sprintf("dev%d:send", dev))
}

// DeviceRecv returns the receive-side resource of a device's intra-host link.
func (n *ClusterNet) DeviceRecv(dev int) *Resource {
	return n.Sim.Resource(fmt.Sprintf("dev%d:recv", dev))
}

// nicIndex resolves this net view's NIC selector on a concrete host.
func (n *ClusterNet) nicIndex(host int) int {
	nics := n.Topo.NICCount(host)
	return ((n.nic % nics) + nics) % nics
}

// HostSend returns the send side of the host NIC this net view uses.
func (n *ClusterNet) HostSend(host int) *Resource {
	if n.Topo.NICCount(host) > 1 {
		return n.Sim.Resource(fmt.Sprintf("host%d:send:nic%d", host, n.nicIndex(host)))
	}
	return n.Sim.Resource(fmt.Sprintf("host%d:send", host))
}

// HostRecv returns the receive side of the host NIC this net view uses.
func (n *ClusterNet) HostRecv(host int) *Resource {
	if n.Topo.NICCount(host) > 1 {
		return n.Sim.Resource(fmt.Sprintf("host%d:recv:nic%d", host, n.nicIndex(host)))
	}
	return n.Sim.Resource(fmt.Sprintf("host%d:recv", host))
}

// TransferTime returns the modelled duration of one point-to-point transfer
// of the given size between two devices (latency + bytes/bandwidth).
func (n *ClusterNet) TransferTime(src, dst int, bytes int64) float64 {
	t := n.Topo
	if t.SameHost(src, dst) {
		h := t.HostOf(src)
		return t.IntraLatency(h) + float64(bytes)/t.IntraBandwidth(h)
	}
	hs, hd := t.HostOf(src), t.HostOf(dst)
	return t.InterLatency(hs, hd) + float64(bytes)/t.InterBandwidth(hs, hd)
}

// Transfer registers a point-to-point transfer op between two devices and
// returns its id. seq fixes per-resource FIFO order among simultaneously
// ready transfers.
func (n *ClusterNet) Transfer(label string, src, dst int, bytes int64, seq int, deps ...OpID) (OpID, error) {
	return n.transfer(label, src, dst, bytes, seq, true, deps)
}

// StreamTransfer registers a transfer that continues an established stream
// on the same route: it pays bandwidth but not the per-transfer latency.
// Used for the non-first chunks of a pipelined broadcast, which NCCL
// streams without re-paying launch and wire latency.
func (n *ClusterNet) StreamTransfer(label string, src, dst int, bytes int64, seq int, deps ...OpID) (OpID, error) {
	return n.transfer(label, src, dst, bytes, seq, false, deps)
}

func (n *ClusterNet) transfer(label string, src, dst int, bytes int64, seq int, withLatency bool, deps []OpID) (OpID, error) {
	t := n.Topo
	if !t.ValidDevice(src) || !t.ValidDevice(dst) {
		return 0, fmt.Errorf("netsim: transfer %q between invalid devices %d -> %d", label, src, dst)
	}
	if src == dst {
		return 0, fmt.Errorf("netsim: transfer %q to self on device %d", label, src)
	}
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: transfer %q has negative size %d", label, bytes)
	}
	var res []*Resource
	dur := n.TransferTime(src, dst, bytes)
	if !withLatency {
		if t.SameHost(src, dst) {
			dur -= t.IntraLatency(t.HostOf(src))
		} else {
			dur -= t.InterLatency(t.HostOf(src), t.HostOf(dst))
		}
	}
	if t.SameHost(src, dst) {
		res = []*Resource{n.DeviceSend(src), n.DeviceRecv(dst)}
	} else {
		res = []*Resource{n.HostSend(t.HostOf(src)), n.HostRecv(t.HostOf(dst))}
	}
	return n.Sim.AddOp(label, dur, seq, res, deps...)
}

// MustTransfer is Transfer that panics on error.
func (n *ClusterNet) MustTransfer(label string, src, dst int, bytes int64, seq int, deps ...OpID) OpID {
	id, err := n.Transfer(label, src, dst, bytes, seq, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// Run executes the accumulated schedule and returns its makespan.
func (n *ClusterNet) Run() (float64, error) { return n.Sim.Run() }
