package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleOp(t *testing.T) {
	s := NewSim()
	r := s.Resource("r")
	s.MustAddOp("a", 5, 0, []*Resource{r})
	mk, err := s.Run()
	if err != nil || mk != 5 {
		t.Fatalf("makespan = %v, %v", mk, err)
	}
	if s.OpStart(0) != 0 || s.OpFinish(0) != 5 {
		t.Errorf("op window = [%v,%v]", s.OpStart(0), s.OpFinish(0))
	}
}

func TestSerialResource(t *testing.T) {
	s := NewSim()
	r := s.Resource("nic")
	s.MustAddOp("a", 3, 0, []*Resource{r})
	s.MustAddOp("b", 4, 1, []*Resource{r})
	mk, _ := s.Run()
	if mk != 7 {
		t.Errorf("two ops on one resource: makespan = %v, want 7", mk)
	}
}

func TestParallelResources(t *testing.T) {
	s := NewSim()
	s.MustAddOp("a", 3, 0, []*Resource{s.Resource("r1")})
	s.MustAddOp("b", 4, 1, []*Resource{s.Resource("r2")})
	mk, _ := s.Run()
	if mk != 4 {
		t.Errorf("independent ops: makespan = %v, want 4", mk)
	}
}

func TestDependencyChain(t *testing.T) {
	s := NewSim()
	a := s.MustAddOp("a", 2, 0, nil)
	b := s.MustAddOp("b", 3, 0, nil, a)
	s.MustAddOp("c", 1, 0, nil, b)
	mk, _ := s.Run()
	if mk != 6 {
		t.Errorf("chain makespan = %v, want 6", mk)
	}
}

func TestSeqControlsTieBreak(t *testing.T) {
	// Two ops ready at t=0 on the same resource: the one with smaller seq
	// must run first.
	s := NewSim()
	r := s.Resource("r")
	slow := s.MustAddOp("slow", 10, 2, []*Resource{r})
	fast := s.MustAddOp("fast", 1, 1, []*Resource{r})
	s.Run()
	if s.OpStart(fast) != 0 {
		t.Errorf("fast (seq 1) should start first, started at %v", s.OpStart(fast))
	}
	if s.OpStart(slow) != 1 {
		t.Errorf("slow should start at 1, started at %v", s.OpStart(slow))
	}
}

func TestReadyTimeBeatsSeq(t *testing.T) {
	// An op that becomes ready earlier grabs the resource even with a
	// larger seq (FIFO by readiness, then seq).
	s := NewSim()
	r := s.Resource("r")
	gate := s.MustAddOp("gate", 5, 0, nil)
	early := s.MustAddOp("early", 2, 9, []*Resource{r})
	late := s.MustAddOp("late", 2, 1, []*Resource{r}, gate)
	s.Run()
	if s.OpStart(early) != 0 {
		t.Errorf("early started at %v, want 0", s.OpStart(early))
	}
	if s.OpStart(late) != 5 {
		t.Errorf("late started at %v, want 5", s.OpStart(late))
	}
}

func TestMultiResourceOp(t *testing.T) {
	// An op occupying two resources blocks both.
	s := NewSim()
	r1, r2 := s.Resource("r1"), s.Resource("r2")
	s.MustAddOp("both", 5, 0, []*Resource{r1, r2})
	s.MustAddOp("on1", 1, 1, []*Resource{r1})
	s.MustAddOp("on2", 1, 1, []*Resource{r2})
	mk, _ := s.Run()
	if mk != 6 {
		t.Errorf("makespan = %v, want 6", mk)
	}
}

func TestAddOpValidation(t *testing.T) {
	s := NewSim()
	if _, err := s.AddOp("bad", -1, 0, nil); err == nil {
		t.Error("negative duration should fail")
	}
	if _, err := s.AddOp("bad", 1, 0, nil, OpID(5)); err == nil {
		t.Error("unknown dependency should fail")
	}
	s.MustAddOp("ok", 1, 0, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddOp("late", 1, 0, nil); err == nil {
		t.Error("adding after Run should fail")
	}
}

func TestRunTwiceIsIdempotent(t *testing.T) {
	s := NewSim()
	s.MustAddOp("a", 2, 0, nil)
	m1, _ := s.Run()
	m2, err := s.Run()
	if err != nil || m1 != m2 {
		t.Errorf("second Run = %v, %v", m2, err)
	}
}

func TestCycleDetection(t *testing.T) {
	// Build a cycle by hand: a <- b requires forward references, which
	// AddOp forbids; so simulate one by making an op depend on itself via
	// the internal path: two ops each depending on the other is impossible
	// through the API, so the only reachable "cycle" is a self-dependency
	// at the last index.
	s := NewSim()
	a := s.MustAddOp("a", 1, 0, nil)
	_ = a
	// Self-dependency: op 1 depends on op 1 — AddOp checks d < len(ops),
	// and at call time len(ops) == 1, so OpID(1) is rejected. The API makes
	// cycles unrepresentable; verify the validation.
	if _, err := s.AddOp("self", 1, 0, nil, OpID(1)); err == nil {
		t.Error("self-dependency should be rejected")
	}
}

func TestZeroDurationOps(t *testing.T) {
	s := NewSim()
	a := s.MustAddOp("a", 0, 0, nil)
	b := s.MustAddOp("b", 0, 0, nil, a)
	mk, _ := s.Run()
	if mk != 0 {
		t.Errorf("makespan = %v", mk)
	}
	if s.OpFinish(b) != 0 {
		t.Errorf("finish = %v", s.OpFinish(b))
	}
}

func TestEventsSorted(t *testing.T) {
	s := NewSim()
	r := s.Resource("r")
	s.MustAddOp("second", 1, 2, []*Resource{r})
	s.MustAddOp("first", 1, 1, []*Resource{r})
	s.Run()
	ev := s.Events()
	if len(ev) != 2 || ev[0].Label != "first" || ev[1].Label != "second" {
		t.Errorf("events = %+v", ev)
	}
	if len(ev[0].Resources) != 1 || ev[0].Resources[0] != "r" {
		t.Errorf("event resources = %v", ev[0].Resources)
	}
}

func TestUtilization(t *testing.T) {
	s := NewSim()
	r1, r2 := s.Resource("busy"), s.Resource("half")
	s.MustAddOp("a", 4, 0, []*Resource{r1})
	s.MustAddOp("b", 2, 0, []*Resource{r2})
	s.Run()
	u := s.Utilization()
	if u["busy"] != 1.0 || u["half"] != 0.5 {
		t.Errorf("utilization = %v", u)
	}
}

func TestResourceIdentity(t *testing.T) {
	s := NewSim()
	if s.Resource("x") != s.Resource("x") {
		t.Error("Resource must return the same object for the same name")
	}
}

// Property: makespan >= critical path length and >= max per-resource load;
// every op starts after all of its dependencies finish.
func TestSimInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSim()
		nres := 1 + r.Intn(4)
		res := make([]*Resource, nres)
		for i := range res {
			res[i] = s.Resource(string(rune('a' + i)))
		}
		n := 1 + r.Intn(40)
		durations := make([]float64, n)
		deps := make([][]OpID, n)
		for i := 0; i < n; i++ {
			durations[i] = float64(r.Intn(10))
			var d []OpID
			for j := 0; j < i; j++ {
				if r.Float64() < 0.1 {
					d = append(d, OpID(j))
				}
			}
			deps[i] = d
			rs := []*Resource{res[r.Intn(nres)]}
			s.MustAddOp("op", durations[i], i, rs, d...)
		}
		mk, err := s.Run()
		if err != nil {
			return false
		}
		// Dependency ordering holds.
		for i := 0; i < n; i++ {
			for _, d := range deps[i] {
				if s.OpStart(OpID(i)) < s.OpFinish(d)-1e-9 {
					return false
				}
			}
		}
		// Makespan lower bounds.
		var totalPerRes = map[*Resource]float64{}
		longest := make([]float64, n)
		var critical float64
		for i := 0; i < n; i++ {
			longest[i] = durations[i]
			for _, d := range deps[i] {
				if longest[d]+durations[i] > longest[i] {
					longest[i] = longest[d] + durations[i]
				}
			}
			if longest[i] > critical {
				critical = longest[i]
			}
		}
		if mk < critical-1e-9 {
			return false
		}
		for _, v := range totalPerRes {
			if mk < v-1e-9 {
				return false
			}
		}
		return !math.IsNaN(mk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: resources never run two ops at once (verified by reconstructing
// intervals from events per resource).
func TestResourceExclusivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSim()
		res := []*Resource{s.Resource("r1"), s.Resource("r2")}
		n := 2 + r.Intn(30)
		type window struct{ start, finish float64 }
		byRes := map[string][]window{}
		ids := make([]OpID, 0, n)
		resOf := make([]string, 0, n)
		for i := 0; i < n; i++ {
			rs := res[r.Intn(2)]
			var d []OpID
			if i > 0 && r.Float64() < 0.3 {
				d = append(d, ids[r.Intn(len(ids))])
			}
			id := s.MustAddOp("op", 1+float64(r.Intn(5)), i, []*Resource{rs}, d...)
			ids = append(ids, id)
			resOf = append(resOf, rs.Name)
		}
		if _, err := s.Run(); err != nil {
			return false
		}
		for i, id := range ids {
			byRes[resOf[i]] = append(byRes[resOf[i]], window{s.OpStart(id), s.OpFinish(id)})
		}
		for _, ws := range byRes {
			for i := range ws {
				for j := i + 1; j < len(ws); j++ {
					lo := math.Max(ws[i].start, ws[j].start)
					hi := math.Min(ws[i].finish, ws[j].finish)
					if hi-lo > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
