package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// addOp is test shorthand for plain-labelled ops.
func addOp(s *Sim, label string, dur float64, seq int, res []ResourceID, deps ...OpID) OpID {
	return s.MustAddOp(Plain(label), dur, seq, res, deps...)
}

func TestSingleOp(t *testing.T) {
	s := NewSim()
	r := s.MustResource("r")
	addOp(s, "a", 5, 0, []ResourceID{r})
	mk, err := s.Run()
	if err != nil || mk != 5 {
		t.Fatalf("makespan = %v, %v", mk, err)
	}
	if s.OpStart(0) != 0 || s.OpFinish(0) != 5 {
		t.Errorf("op window = [%v,%v]", s.OpStart(0), s.OpFinish(0))
	}
}

func TestSerialResource(t *testing.T) {
	s := NewSim()
	r := s.MustResource("nic")
	addOp(s, "a", 3, 0, []ResourceID{r})
	addOp(s, "b", 4, 1, []ResourceID{r})
	mk, _ := s.Run()
	if mk != 7 {
		t.Errorf("two ops on one resource: makespan = %v, want 7", mk)
	}
}

func TestParallelResources(t *testing.T) {
	s := NewSim()
	addOp(s, "a", 3, 0, []ResourceID{s.MustResource("r1")})
	addOp(s, "b", 4, 1, []ResourceID{s.MustResource("r2")})
	mk, _ := s.Run()
	if mk != 4 {
		t.Errorf("independent ops: makespan = %v, want 4", mk)
	}
}

func TestDependencyChain(t *testing.T) {
	s := NewSim()
	a := addOp(s, "a", 2, 0, nil)
	b := addOp(s, "b", 3, 0, nil, a)
	addOp(s, "c", 1, 0, nil, b)
	mk, _ := s.Run()
	if mk != 6 {
		t.Errorf("chain makespan = %v, want 6", mk)
	}
}

func TestSeqControlsTieBreak(t *testing.T) {
	// Two ops ready at t=0 on the same resource: the one with smaller seq
	// must run first.
	s := NewSim()
	r := s.MustResource("r")
	slow := addOp(s, "slow", 10, 2, []ResourceID{r})
	fast := addOp(s, "fast", 1, 1, []ResourceID{r})
	s.Run()
	if s.OpStart(fast) != 0 {
		t.Errorf("fast (seq 1) should start first, started at %v", s.OpStart(fast))
	}
	if s.OpStart(slow) != 1 {
		t.Errorf("slow should start at 1, started at %v", s.OpStart(slow))
	}
}

func TestReadyTimeBeatsSeq(t *testing.T) {
	// An op that becomes ready earlier grabs the resource even with a
	// larger seq (FIFO by readiness, then seq).
	s := NewSim()
	r := s.MustResource("r")
	gate := addOp(s, "gate", 5, 0, nil)
	early := addOp(s, "early", 2, 9, []ResourceID{r})
	late := addOp(s, "late", 2, 1, []ResourceID{r}, gate)
	s.Run()
	if s.OpStart(early) != 0 {
		t.Errorf("early started at %v, want 0", s.OpStart(early))
	}
	if s.OpStart(late) != 5 {
		t.Errorf("late started at %v, want 5", s.OpStart(late))
	}
}

func TestMultiResourceOp(t *testing.T) {
	// An op occupying two resources blocks both.
	s := NewSim()
	r1, r2 := s.MustResource("r1"), s.MustResource("r2")
	addOp(s, "both", 5, 0, []ResourceID{r1, r2})
	addOp(s, "on1", 1, 1, []ResourceID{r1})
	addOp(s, "on2", 1, 1, []ResourceID{r2})
	mk, _ := s.Run()
	if mk != 6 {
		t.Errorf("makespan = %v, want 6", mk)
	}
}

func TestAddOpValidation(t *testing.T) {
	s := NewSim()
	if _, err := s.AddOpS("bad", -1, 0, nil); err == nil {
		t.Error("negative duration should fail")
	}
	if _, err := s.AddOpS("bad", 1, 0, nil, OpID(5)); err == nil {
		t.Error("unknown dependency should fail")
	}
	if _, err := s.AddOpS("bad", 1, 0, []ResourceID{7}); err == nil {
		t.Error("unknown resource handle should fail")
	}
	addOp(s, "ok", 1, 0, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddOpS("late", 1, 0, nil); err == nil {
		t.Error("adding after Run should fail")
	}
}

// TestResourceAfterRunFails pins the post-Run guard: Resource and
// NewResource share AddOp's error path instead of silently minting dead
// resources into a completed schedule.
func TestResourceAfterRunFails(t *testing.T) {
	s := NewSim()
	addOp(s, "a", 1, 0, nil)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resource("late"); err == nil {
		t.Error("Resource after Run should fail")
	}
	if _, err := s.NewResource("late"); err == nil {
		t.Error("NewResource after Run should fail")
	}
	if got := s.NumResources(); got != 0 {
		t.Errorf("failed registrations must not leak resources, have %d", got)
	}
	if u := s.Utilization(); len(u) != 0 {
		t.Errorf("utilization reports dead resources: %v", u)
	}
	// After Reset the guard lifts.
	s.Reset()
	if _, err := s.Resource("fresh"); err != nil {
		t.Errorf("Resource after Reset failed: %v", err)
	}
}

func TestRunTwiceIsIdempotent(t *testing.T) {
	s := NewSim()
	addOp(s, "a", 2, 0, nil)
	m1, _ := s.Run()
	m2, err := s.Run()
	if err != nil || m1 != m2 {
		t.Errorf("second Run = %v, %v", m2, err)
	}
}

func TestCycleDetection(t *testing.T) {
	// Forward references are unrepresentable through AddOp, so the only
	// reachable "cycle" is a self-dependency at the last index; verify the
	// validation rejects it.
	s := NewSim()
	addOp(s, "a", 1, 0, nil)
	if _, err := s.AddOpS("self", 1, 0, nil, OpID(1)); err == nil {
		t.Error("self-dependency should be rejected")
	}
}

func TestZeroDurationOps(t *testing.T) {
	s := NewSim()
	a := addOp(s, "a", 0, 0, nil)
	b := addOp(s, "b", 0, 0, nil, a)
	mk, _ := s.Run()
	if mk != 0 {
		t.Errorf("makespan = %v", mk)
	}
	if s.OpFinish(b) != 0 {
		t.Errorf("finish = %v", s.OpFinish(b))
	}
}

func TestEventsSorted(t *testing.T) {
	s := NewSim()
	r := s.MustResource("r")
	addOp(s, "second", 1, 2, []ResourceID{r})
	addOp(s, "first", 1, 1, []ResourceID{r})
	s.Run()
	ev := s.Events()
	if len(ev) != 2 || ev[0].Label != "first" || ev[1].Label != "second" {
		t.Errorf("events = %+v", ev)
	}
	if len(ev[0].Resources) != 1 || ev[0].Resources[0] != "r" {
		t.Errorf("event resources = %v", ev[0].Resources)
	}
}

func TestUtilization(t *testing.T) {
	s := NewSim()
	r1, r2 := s.MustResource("busy"), s.MustResource("half")
	addOp(s, "a", 4, 0, []ResourceID{r1})
	addOp(s, "b", 2, 0, []ResourceID{r2})
	s.Run()
	u := s.Utilization()
	if u["busy"] != 1.0 || u["half"] != 0.5 {
		t.Errorf("utilization = %v", u)
	}
}

func TestResourceIdentity(t *testing.T) {
	s := NewSim()
	a := s.MustResource("x")
	b := s.MustResource("x")
	if a != b {
		t.Error("Resource must return the same handle for the same name")
	}
	if s.ResourceName(a) != "x" {
		t.Errorf("name = %q", s.ResourceName(a))
	}
}

// TestLabelRendering pins every Label pattern against its legacy
// fmt.Sprintf format.
func TestLabelRendering(t *testing.T) {
	cases := []struct {
		l    Label
		want string
	}{
		{Plain("u3/bc"), "u3/bc"},
		{Label{Prefix: "u2", Kind: LabelSendRecv, A: 7}, "u2/sr->7"},
		{Label{Prefix: "u2", Kind: LabelScatter, A: 11}, "u2/scatter->11"},
		{Label{Prefix: "u0/bc", Kind: LabelChunkHop, A: 3, B: 2}, "u0/bc/c3/h2"},
		{Label{Prefix: "x/lag", Kind: LabelRound, A: 1, B: 4}, "x/lag/r1/d4"},
		{Label{Prefix: "a2a", Kind: LabelPair, A: 5, B: 9}, "a2a/5->9"},
		{Label{Prefix: "a2a", Kind: LabelJoin, A: 6}, "a2a/join6"},
		{Label{Prefix: "m", Kind: LabelMove, A: 4, B: 8}, "m4->8"},
		{Label{Prefix: "Bd", Kind: LabelStageTask, A: 2, B: 13}, "s2/Bd13"},
		{Label{Prefix: "fwd", Kind: LabelComm, A: 1, B: 7}, "c1:fwd/7"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("label %+v renders %q, want %q", c.l, got, c.want)
		}
	}
}

// TestResetReplaysIdentically: after Reset, rebuilding the same schedule
// on the same Sim produces identical makespan and events, and the arena
// reuse does not leak state from the previous run.
func TestResetReplaysIdentically(t *testing.T) {
	build := func(s *Sim) {
		r1, r2 := s.MustResource("r1"), s.MustResource("r2")
		a := addOp(s, "a", 3, 0, []ResourceID{r1})
		b := addOp(s, "b", 2, 1, []ResourceID{r1, r2}, a)
		addOp(s, "c", 4, 2, []ResourceID{r2}, b)
	}
	s := NewSim()
	build(s)
	mk1, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ev1 := s.Events()
	for i := 0; i < 3; i++ {
		s.Reset()
		if s.NumOps() != 0 || s.NumResources() != 0 {
			t.Fatalf("Reset left %d ops, %d resources", s.NumOps(), s.NumResources())
		}
		build(s)
		mk2, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if mk2 != mk1 {
			t.Fatalf("replay %d makespan = %v, want %v", i, mk2, mk1)
		}
		ev2 := s.Events()
		if len(ev2) != len(ev1) {
			t.Fatalf("replay %d: %d events, want %d", i, len(ev2), len(ev1))
		}
		for j := range ev1 {
			if ev1[j].Label != ev2[j].Label || ev1[j].Start != ev2[j].Start || ev1[j].Finish != ev2[j].Finish {
				t.Fatalf("replay %d event %d = %+v, want %+v", i, j, ev2[j], ev1[j])
			}
		}
	}
}

// TestResetAfterPartialBuild: resetting an un-run schedule discards it.
func TestResetAfterPartialBuild(t *testing.T) {
	s := NewSim()
	addOp(s, "orphan", 5, 0, []ResourceID{s.MustResource("r")})
	s.Reset()
	addOp(s, "a", 1, 0, []ResourceID{s.MustResource("r")})
	mk, err := s.Run()
	if err != nil || mk != 1 {
		t.Fatalf("makespan after reset = %v, %v; want 1", mk, err)
	}
}

// Property: makespan >= critical path length and >= max per-resource load;
// every op starts after all of its dependencies finish.
func TestSimInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSim()
		nres := 1 + r.Intn(4)
		res := make([]ResourceID, nres)
		for i := range res {
			res[i] = s.MustResource(string(rune('a' + i)))
		}
		n := 1 + r.Intn(40)
		durations := make([]float64, n)
		deps := make([][]OpID, n)
		for i := 0; i < n; i++ {
			durations[i] = float64(r.Intn(10))
			var d []OpID
			for j := 0; j < i; j++ {
				if r.Float64() < 0.1 {
					d = append(d, OpID(j))
				}
			}
			deps[i] = d
			rs := []ResourceID{res[r.Intn(nres)]}
			addOp(s, "op", durations[i], i, rs, d...)
		}
		mk, err := s.Run()
		if err != nil {
			return false
		}
		// Dependency ordering holds.
		for i := 0; i < n; i++ {
			for _, d := range deps[i] {
				if s.OpStart(OpID(i)) < s.OpFinish(d)-1e-9 {
					return false
				}
			}
		}
		// Makespan lower bound: the critical path.
		longest := make([]float64, n)
		var critical float64
		for i := 0; i < n; i++ {
			longest[i] = durations[i]
			for _, d := range deps[i] {
				if longest[d]+durations[i] > longest[i] {
					longest[i] = longest[d] + durations[i]
				}
			}
			if longest[i] > critical {
				critical = longest[i]
			}
		}
		if mk < critical-1e-9 {
			return false
		}
		return !math.IsNaN(mk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: resources never run two ops at once (verified by reconstructing
// intervals from events per resource).
func TestResourceExclusivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSim()
		res := []ResourceID{s.MustResource("r1"), s.MustResource("r2")}
		n := 2 + r.Intn(30)
		type window struct{ start, finish float64 }
		byRes := map[ResourceID][]window{}
		ids := make([]OpID, 0, n)
		resOf := make([]ResourceID, 0, n)
		for i := 0; i < n; i++ {
			rs := res[r.Intn(2)]
			var d []OpID
			if i > 0 && r.Float64() < 0.3 {
				d = append(d, ids[r.Intn(len(ids))])
			}
			id := addOp(s, "op", 1+float64(r.Intn(5)), i, []ResourceID{rs}, d...)
			ids = append(ids, id)
			resOf = append(resOf, rs)
		}
		if _, err := s.Run(); err != nil {
			return false
		}
		for i, id := range ids {
			byRes[resOf[i]] = append(byRes[resOf[i]], window{s.OpStart(id), s.OpFinish(id)})
		}
		for _, ws := range byRes {
			for i := range ws {
				for j := i + 1; j < len(ws); j++ {
					lo := math.Max(ws[i].start, ws[j].start)
					hi := math.Min(ws[i].finish, ws[j].finish)
					if hi-lo > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
