// Package netsim is a deterministic discrete-event simulator for
// communication and compute schedules.
//
// The model: an Op has dependencies (other ops), a set of serial Resources
// it occupies (e.g. a host NIC's send side), a fixed duration, and an issue
// sequence number. Ops become ready when all dependencies finish; ready ops
// are started in (readyTime, seq) order; an op starts at the latest of its
// ready time and the availability of all its resources, and occupies every
// resource exclusively until it finishes.
//
// Per-resource FIFO in issue order models NCCL-style stream queueing, which
// is what makes the paper's §3.2 schedule-ordering algorithms observable in
// simulated time. The simulator is O(N log N) in the number of ops and
// fully deterministic.
package netsim

import (
	"container/heap"
	"fmt"
)

// OpID identifies an op inside one Sim.
type OpID int

// Resource is a serially occupied entity: a NIC direction, a device link
// direction, or a compute unit.
type Resource struct {
	// Name is the unique identifier of the resource within its Sim.
	Name string
	// BusyUntil is the simulated time at which the resource next becomes
	// free; valid during and after Run.
	BusyUntil float64
	// BusyTime accumulates total occupied time, for utilization reports.
	BusyTime float64
}

type op struct {
	id        OpID
	label     string
	duration  float64
	seq       int
	resources []*Resource
	deps      []OpID

	ndeps      int
	dependents []OpID
	readyTime  float64
	start      float64
	finish     float64
	done       bool
}

// Sim accumulates ops and resources, then computes the schedule.
type Sim struct {
	resources map[string]*Resource
	resOrder  []*Resource
	ops       []*op
	ran       bool
	makespan  float64
}

// NewSim returns an empty simulator.
func NewSim() *Sim {
	return &Sim{resources: map[string]*Resource{}}
}

// Resource returns the resource with the given name, creating it on first
// use.
func (s *Sim) Resource(name string) *Resource {
	if r, ok := s.resources[name]; ok {
		return r
	}
	r := &Resource{Name: name}
	s.resources[name] = r
	s.resOrder = append(s.resOrder, r)
	return r
}

// AddOp registers an op. seq controls per-resource FIFO order among ops that
// become ready simultaneously; pass the op's position in the intended
// schedule (or 0 to order by insertion). Duration must be non-negative, and
// deps must refer to already-added ops.
func (s *Sim) AddOp(label string, duration float64, seq int, resources []*Resource, deps ...OpID) (OpID, error) {
	if s.ran {
		return 0, fmt.Errorf("netsim: cannot add ops after Run")
	}
	if duration < 0 {
		return 0, fmt.Errorf("netsim: op %q has negative duration %g", label, duration)
	}
	id := OpID(len(s.ops))
	for _, d := range deps {
		if d < 0 || int(d) >= len(s.ops) {
			return 0, fmt.Errorf("netsim: op %q depends on unknown op %d", label, d)
		}
	}
	o := &op{
		id:        id,
		label:     label,
		duration:  duration,
		seq:       seq,
		resources: resources,
		deps:      append([]OpID(nil), deps...),
	}
	s.ops = append(s.ops, o)
	return id, nil
}

// MustAddOp is AddOp that panics on error; for builders whose inputs are
// structurally valid by construction.
func (s *Sim) MustAddOp(label string, duration float64, seq int, resources []*Resource, deps ...OpID) OpID {
	id, err := s.AddOp(label, duration, seq, resources, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// readyHeap orders ready ops by (readyTime, seq, id).
type readyHeap []*op

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].readyTime != h[j].readyTime {
		return h[i].readyTime < h[j].readyTime
	}
	if h[i].seq != h[j].seq {
		return h[i].seq < h[j].seq
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(*op)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the schedule and returns the makespan (finish time of the
// last op). It fails if the dependency graph has a cycle. Run may be called
// once; results are then available through OpStart/OpFinish/Events.
func (s *Sim) Run() (float64, error) {
	if s.ran {
		return s.makespan, nil
	}
	// Build dependent lists and dependency counts.
	for _, o := range s.ops {
		o.ndeps = len(o.deps)
		for _, d := range o.deps {
			s.ops[d].dependents = append(s.ops[d].dependents, o.id)
		}
	}
	h := &readyHeap{}
	for _, o := range s.ops {
		if o.ndeps == 0 {
			heap.Push(h, o)
		}
	}
	scheduled := 0
	for h.Len() > 0 {
		o := heap.Pop(h).(*op)
		start := o.readyTime
		for _, r := range o.resources {
			if r.BusyUntil > start {
				start = r.BusyUntil
			}
		}
		o.start = start
		o.finish = start + o.duration
		o.done = true
		for _, r := range o.resources {
			r.BusyUntil = o.finish
			r.BusyTime += o.duration
		}
		if o.finish > s.makespan {
			s.makespan = o.finish
		}
		scheduled++
		for _, did := range o.dependents {
			d := s.ops[did]
			if o.finish > d.readyTime {
				d.readyTime = o.finish
			}
			d.ndeps--
			if d.ndeps == 0 {
				heap.Push(h, d)
			}
		}
	}
	if scheduled != len(s.ops) {
		return 0, fmt.Errorf("netsim: dependency cycle — scheduled %d of %d ops", scheduled, len(s.ops))
	}
	s.ran = true
	return s.makespan, nil
}

// Makespan returns the finish time of the completed run.
func (s *Sim) Makespan() float64 { return s.makespan }

// NumOps returns the number of registered ops.
func (s *Sim) NumOps() int { return len(s.ops) }

// OpStart returns the scheduled start time of an op after Run.
func (s *Sim) OpStart(id OpID) float64 { return s.ops[id].start }

// OpFinish returns the scheduled finish time of an op after Run.
func (s *Sim) OpFinish(id OpID) float64 { return s.ops[id].finish }

// Event is one scheduled op, for traces and timeline rendering.
type Event struct {
	Label     string
	Start     float64
	Finish    float64
	Resources []string
}

// Events returns all scheduled ops sorted by (start, finish, label).
func (s *Sim) Events() []Event {
	out := make([]Event, 0, len(s.ops))
	for _, o := range s.ops {
		names := make([]string, len(o.resources))
		for i, r := range o.resources {
			names[i] = r.Name
		}
		out = append(out, Event{Label: o.label, Start: o.start, Finish: o.finish, Resources: names})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && eventLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func eventLess(a, b Event) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Finish != b.Finish {
		return a.Finish < b.Finish
	}
	return a.Label < b.Label
}

// Utilization returns BusyTime/makespan per resource name. Resources that
// were never used report 0.
func (s *Sim) Utilization() map[string]float64 {
	out := make(map[string]float64, len(s.resOrder))
	for _, r := range s.resOrder {
		if s.makespan > 0 {
			out[r.Name] = r.BusyTime / s.makespan
		} else {
			out[r.Name] = 0
		}
	}
	return out
}
