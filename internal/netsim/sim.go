// Package netsim is a deterministic discrete-event simulator for
// communication and compute schedules.
//
// The model: an Op has dependencies (other ops), a set of serial Resources
// it occupies (e.g. a host NIC's send side), a fixed duration, and an issue
// sequence number. Ops become ready when all dependencies finish; ready ops
// are started in (readyTime, seq) order; an op starts at the latest of its
// ready time and the availability of all its resources, and occupies every
// resource exclusively until it finishes.
//
// Per-resource FIFO in issue order models NCCL-style stream queueing, which
// is what makes the paper's §3.2 schedule-ordering algorithms observable in
// simulated time. The simulator is O(N log N) in the number of ops and
// fully deterministic.
//
// The core is allocation-free on the hot path: resources are addressed by
// typed integer ResourceID handles into a flat slice, ops live in a flat
// arena (no per-op pointers), per-op resource and dependency lists share
// two append-only arenas, and labels are (kind, prefix, a, b) tuples
// rendered only when Events or an error message needs them. Reset rewinds
// the arenas without freeing, so one Sim can replay many schedules —
// autotune grid cells, serving-cache misses — with near-zero steady-state
// allocation.
package netsim

import (
	"fmt"
	"sort"
	"strconv"
)

// OpID identifies an op inside one Sim.
type OpID int

// ResourceID is a typed handle to a serially occupied entity: a NIC
// direction, a device link direction, or a compute unit. IDs are dense
// indices into the Sim's resource table, valid until the next Reset.
type ResourceID int32

// Resource is the state of one serially occupied entity.
type Resource struct {
	// Name is the identifier of the resource within its Sim.
	Name string
	// BusyUntil is the simulated time at which the resource next becomes
	// free; valid during and after Run.
	BusyUntil float64
	// BusyTime accumulates total occupied time, for utilization reports.
	BusyTime float64
}

// LabelKind selects how a Label renders. The kinds cover every op-naming
// pattern of the builders above the engine, so no builder formats a string
// per op.
type LabelKind uint8

const (
	// LabelPlain renders Prefix verbatim.
	LabelPlain LabelKind = iota
	// LabelSendRecv renders "<prefix>/sr-><A>".
	LabelSendRecv
	// LabelScatter renders "<prefix>/scatter-><A>".
	LabelScatter
	// LabelChunkHop renders "<prefix>/c<A>/h<B>" (pipelined broadcast).
	LabelChunkHop
	// LabelRound renders "<prefix>/r<A>/d<B>" (ring collectives).
	LabelRound
	// LabelPair renders "<prefix>/<A>-><B>" (all-to-all).
	LabelPair
	// LabelJoin renders "<prefix>/join<A>".
	LabelJoin
	// LabelMove renders "<prefix><A>-><B>" (intra-mesh moves).
	LabelMove
	// LabelStageTask renders "s<A>/<prefix><B>" (pipeline compute tasks).
	LabelStageTask
	// LabelComm renders "c<A>:<prefix>/<B>" (pipeline boundary transfers).
	LabelComm
)

// Label names an op lazily: a shared prefix plus up to two integers,
// rendered by String only when a trace, an Events call or an error message
// needs the text. Storing the tuple instead of a formatted string removes
// the dominant per-op allocation of schedule building.
type Label struct {
	// Prefix is the shared textual part (e.g. the unit-task name).
	Prefix string
	// Kind selects the rendering pattern.
	Kind LabelKind
	// A and B are the pattern's integer slots.
	A, B int32
}

// Plain wraps a fixed string as a Label.
func Plain(s string) Label { return Label{Prefix: s} }

// String renders the label text.
func (l Label) String() string {
	switch l.Kind {
	case LabelPlain:
		return l.Prefix
	case LabelSendRecv:
		return l.Prefix + "/sr->" + itoa(l.A)
	case LabelScatter:
		return l.Prefix + "/scatter->" + itoa(l.A)
	case LabelChunkHop:
		return l.Prefix + "/c" + itoa(l.A) + "/h" + itoa(l.B)
	case LabelRound:
		return l.Prefix + "/r" + itoa(l.A) + "/d" + itoa(l.B)
	case LabelPair:
		return l.Prefix + "/" + itoa(l.A) + "->" + itoa(l.B)
	case LabelJoin:
		return l.Prefix + "/join" + itoa(l.A)
	case LabelMove:
		return l.Prefix + itoa(l.A) + "->" + itoa(l.B)
	case LabelStageTask:
		return "s" + itoa(l.A) + "/" + l.Prefix + itoa(l.B)
	case LabelComm:
		return "c" + itoa(l.A) + ":" + l.Prefix + "/" + itoa(l.B)
	default:
		return l.Prefix
	}
}

func itoa(v int32) string { return strconv.Itoa(int(v)) }

// op is one scheduled task. Resource and dependency lists are (offset,
// count) windows into the Sim's shared arenas, so an op carries no pointers
// and the op table is a single flat allocation.
type op struct {
	label    Label
	duration float64
	seq      int

	resOff, resN int32
	depOff, depN int32

	ndeps     int32
	readyTime float64
	start     float64
	finish    float64
}

// Sim accumulates ops and resources, then computes the schedule.
type Sim struct {
	resources []Resource
	byName    map[string]ResourceID
	ops       []op
	resArena  []ResourceID
	depArena  []OpID
	ran       bool
	makespan  float64

	// Run scratch, reused across Reset: CSR dependents and the ready heap.
	depHead []int32
	depList []int32
	heap    []int32
}

// NewSim returns an empty simulator.
func NewSim() *Sim {
	return &Sim{}
}

// Reset rewinds the simulator to empty while keeping every internal arena's
// capacity, so the next schedule builds without reallocating. All OpIDs and
// ResourceIDs from before the Reset are invalidated.
func (s *Sim) Reset() {
	s.resources = s.resources[:0]
	if s.byName != nil {
		clear(s.byName)
	}
	s.ops = s.ops[:0]
	s.resArena = s.resArena[:0]
	s.depArena = s.depArena[:0]
	s.ran = false
	s.makespan = 0
}

// NewResource registers a resource under the given name and returns its
// handle. Names are not deduplicated — callers that intern resources keep
// their own tables (see ClusterNet). Like AddOp, registration fails after
// Run: a resource minted into a completed schedule could never be occupied
// and would silently pollute utilization reports.
func (s *Sim) NewResource(name string) (ResourceID, error) {
	if s.ran {
		return 0, fmt.Errorf("netsim: cannot create resource %q after Run", name)
	}
	id := ResourceID(len(s.resources))
	s.resources = append(s.resources, Resource{Name: name})
	return id, nil
}

// Resource returns the resource with the given name, creating it on first
// use. It shares AddOp's error path after Run.
func (s *Sim) Resource(name string) (ResourceID, error) {
	if id, ok := s.byName[name]; ok {
		return id, nil
	}
	id, err := s.NewResource(name)
	if err != nil {
		return 0, err
	}
	if s.byName == nil {
		s.byName = map[string]ResourceID{}
	}
	s.byName[name] = id
	return id, nil
}

// MustResource is Resource that panics on error; for builders that
// register resources before running by construction.
func (s *Sim) MustResource(name string) ResourceID {
	id, err := s.Resource(name)
	if err != nil {
		panic(err)
	}
	return id
}

// NumResources returns the number of registered resources.
func (s *Sim) NumResources() int { return len(s.resources) }

// ResourceName returns the name a resource was registered under.
func (s *Sim) ResourceName(id ResourceID) string { return s.resources[id].Name }

// ResourceState returns a snapshot of a resource's occupancy counters.
func (s *Sim) ResourceState(id ResourceID) Resource { return s.resources[id] }

// AddOp registers an op under a lazily rendered label. seq controls
// per-resource FIFO order among ops that become ready simultaneously; pass
// the op's position in the intended schedule (or 0 to order by insertion).
// Duration must be non-negative, deps must refer to already-added ops, and
// resources must be valid handles. The resource and dep slices are copied
// into the Sim's arenas, so callers may reuse their buffers.
func (s *Sim) AddOp(label Label, duration float64, seq int, resources []ResourceID, deps ...OpID) (OpID, error) {
	if s.ran {
		return 0, fmt.Errorf("netsim: cannot add ops after Run")
	}
	if duration < 0 {
		return 0, fmt.Errorf("netsim: op %q has negative duration %g", label.String(), duration)
	}
	id := OpID(len(s.ops))
	for _, d := range deps {
		if d < 0 || int(d) >= len(s.ops) {
			return 0, fmt.Errorf("netsim: op %q depends on unknown op %d", label.String(), d)
		}
	}
	for _, r := range resources {
		if r < 0 || int(r) >= len(s.resources) {
			return 0, fmt.Errorf("netsim: op %q occupies unknown resource %d", label.String(), r)
		}
	}
	resOff := int32(len(s.resArena))
	s.resArena = append(s.resArena, resources...)
	depOff := int32(len(s.depArena))
	s.depArena = append(s.depArena, deps...)
	s.ops = append(s.ops, op{
		label:    label,
		duration: duration,
		seq:      seq,
		resOff:   resOff,
		resN:     int32(len(resources)),
		depOff:   depOff,
		depN:     int32(len(deps)),
	})
	return id, nil
}

// AddOpS is AddOp with a plain string label — the thin shim for callers
// outside the hot builders.
func (s *Sim) AddOpS(label string, duration float64, seq int, resources []ResourceID, deps ...OpID) (OpID, error) {
	return s.AddOp(Plain(label), duration, seq, resources, deps...)
}

// MustAddOp is AddOp that panics on error; for builders whose inputs are
// structurally valid by construction.
func (s *Sim) MustAddOp(label Label, duration float64, seq int, resources []ResourceID, deps ...OpID) OpID {
	id, err := s.AddOp(label, duration, seq, resources, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// resIDs returns an op's resource handles.
func (s *Sim) resIDs(o *op) []ResourceID { return s.resArena[o.resOff : o.resOff+o.resN] }

// depIDs returns an op's dependency list.
func (s *Sim) depIDs(o *op) []OpID { return s.depArena[o.depOff : o.depOff+o.depN] }

// heapLess orders ready ops by (readyTime, seq, id).
func (s *Sim) heapLess(a, b int32) bool {
	oa, ob := &s.ops[a], &s.ops[b]
	if oa.readyTime != ob.readyTime {
		return oa.readyTime < ob.readyTime
	}
	if oa.seq != ob.seq {
		return oa.seq < ob.seq
	}
	return a < b
}

func (s *Sim) heapPush(x int32) {
	s.heap = append(s.heap, x)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Sim) heapPop() int32 {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.heapLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && s.heapLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Run executes the schedule and returns the makespan (finish time of the
// last op). It fails if the dependency graph has a cycle. Run may be called
// once per Reset; results are then available through OpStart/OpFinish/
// Events.
func (s *Sim) Run() (float64, error) {
	if s.ran {
		return s.makespan, nil
	}
	n := len(s.ops)
	// Build the dependents lists in CSR form over reusable scratch: one
	// counting pass, a prefix sum, one fill pass.
	if cap(s.depHead) < n+1 {
		s.depHead = make([]int32, n+1)
	}
	head := s.depHead[:n+1]
	for i := range head {
		head[i] = 0
	}
	for i := range s.ops {
		o := &s.ops[i]
		o.ndeps = o.depN
		o.readyTime = 0
		for _, d := range s.depIDs(o) {
			head[d+1]++
		}
	}
	for i := 0; i < n; i++ {
		head[i+1] += head[i]
	}
	total := int(head[n])
	if cap(s.depList) < total {
		s.depList = make([]int32, total)
	}
	depList := s.depList[:total]
	// Fill pass: head[d] is used as a cursor, then restored by the shift at
	// the end (head[d] ends up holding the start of d's window again because
	// each window was advanced exactly by its length).
	for i := n - 1; i >= 0; i-- {
		o := &s.ops[i]
		deps := s.depIDs(o)
		for j := len(deps) - 1; j >= 0; j-- {
			d := deps[j]
			head[d+1]--
			depList[head[d+1]] = int32(i)
		}
	}
	// After the reverse fill, head[d+1] is the start of d's window; shift
	// expectations accordingly: dependents of op d are
	// depList[head[d+1]:end] where end is the next op's start.
	s.heap = s.heap[:0]
	for i := range s.ops {
		if s.ops[i].ndeps == 0 {
			s.heapPush(int32(i))
		}
	}
	scheduled := 0
	for len(s.heap) > 0 {
		oi := s.heapPop()
		o := &s.ops[oi]
		start := o.readyTime
		for _, r := range s.resIDs(o) {
			if s.resources[r].BusyUntil > start {
				start = s.resources[r].BusyUntil
			}
		}
		o.start = start
		o.finish = start + o.duration
		for _, r := range s.resIDs(o) {
			s.resources[r].BusyUntil = o.finish
			s.resources[r].BusyTime += o.duration
		}
		if o.finish > s.makespan {
			s.makespan = o.finish
		}
		scheduled++
		lo, hi := head[oi+1], int32(total)
		if int(oi)+1 < n {
			hi = head[oi+2]
		}
		for _, di := range depList[lo:hi] {
			d := &s.ops[di]
			if o.finish > d.readyTime {
				d.readyTime = o.finish
			}
			d.ndeps--
			if d.ndeps == 0 {
				s.heapPush(di)
			}
		}
	}
	if scheduled != len(s.ops) {
		return 0, fmt.Errorf("netsim: dependency cycle — scheduled %d of %d ops", scheduled, len(s.ops))
	}
	s.ran = true
	return s.makespan, nil
}

// Makespan returns the finish time of the completed run.
func (s *Sim) Makespan() float64 { return s.makespan }

// NumOps returns the number of registered ops.
func (s *Sim) NumOps() int { return len(s.ops) }

// OpStart returns the scheduled start time of an op after Run.
func (s *Sim) OpStart(id OpID) float64 { return s.ops[id].start }

// OpFinish returns the scheduled finish time of an op after Run.
func (s *Sim) OpFinish(id OpID) float64 { return s.ops[id].finish }

// OpLabel renders the label of an op.
func (s *Sim) OpLabel(id OpID) string { return s.ops[id].label.String() }

// Event is one scheduled op, for traces and timeline rendering.
type Event struct {
	Label     string
	Start     float64
	Finish    float64
	Resources []string
}

// Events returns all scheduled ops sorted by (start, finish, label). This
// is where labels and resource names are rendered — schedules that are
// only timed never pay for the text.
func (s *Sim) Events() []Event {
	out := make([]Event, 0, len(s.ops))
	for i := range s.ops {
		o := &s.ops[i]
		ids := s.resIDs(o)
		names := make([]string, len(ids))
		for j, r := range ids {
			names[j] = s.resources[r].Name
		}
		out = append(out, Event{Label: o.label.String(), Start: o.start, Finish: o.finish, Resources: names})
	}
	// SliceStable keeps insertion order among events that tie on the full
	// (start, finish, label) key, matching the stable insertion sort this
	// replaced.
	sort.SliceStable(out, func(i, j int) bool { return eventLess(out[i], out[j]) })
	return out
}

func eventLess(a, b Event) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Finish != b.Finish {
		return a.Finish < b.Finish
	}
	return a.Label < b.Label
}

// Utilization returns BusyTime/makespan per resource name. Resources that
// were never used report 0.
func (s *Sim) Utilization() map[string]float64 {
	out := make(map[string]float64, len(s.resources))
	for i := range s.resources {
		r := &s.resources[i]
		if s.makespan > 0 {
			out[r.Name] = r.BusyTime / s.makespan
		} else {
			out[r.Name] = 0
		}
	}
	return out
}
