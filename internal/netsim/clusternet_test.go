package netsim

import (
	"math"
	"testing"

	"alpacomm/internal/mesh"
)

// testCluster returns a cluster with round numbers for exact assertions:
// 2 devices/host, intra 100 B/s, NIC 10 B/s, zero latency.
func testCluster(hosts int) *mesh.Cluster {
	c, err := mesh.NewCluster(hosts, 2, 100, 10, 0, 0)
	if err != nil {
		panic(err)
	}
	return c
}

func TestTransferTimes(t *testing.T) {
	n := NewClusterNet(testCluster(2))
	if got := n.TransferTime(0, 1, 100); got != 1.0 {
		t.Errorf("intra-host time = %v, want 1.0", got)
	}
	if got := n.TransferTime(0, 2, 100); got != 10.0 {
		t.Errorf("cross-host time = %v, want 10.0", got)
	}
}

func TestTransferLatency(t *testing.T) {
	c, _ := mesh.NewCluster(2, 2, 100, 10, 0.5, 2.0)
	n := NewClusterNet(c)
	if got := n.TransferTime(0, 1, 100); got != 1.5 {
		t.Errorf("intra time with latency = %v", got)
	}
	if got := n.TransferTime(0, 2, 0); got != 2.0 {
		t.Errorf("zero-byte cross time = %v (signal send/recv must cost latency only)", got)
	}
}

func TestTransferValidation(t *testing.T) {
	n := NewClusterNet(testCluster(1))
	if _, err := n.Transfer(Plain("bad"), 0, 9, 1, 0); err == nil {
		t.Error("invalid destination should fail")
	}
	if _, err := n.Transfer(Plain("bad"), 0, 0, 1, 0); err == nil {
		t.Error("self transfer should fail")
	}
	if _, err := n.Transfer(Plain("bad"), 0, 1, -5, 0); err == nil {
		t.Error("negative size should fail")
	}
}

// TestNICSerialization pins the §3 host-bottleneck property: two devices on
// one host sending cross-host at the same time share the host NIC and
// serialize.
func TestNICSerialization(t *testing.T) {
	n := NewClusterNet(testCluster(2))
	n.MustTransfer(Plain("a"), 0, 2, 100, 0) // host0 -> host1, 10s
	n.MustTransfer(Plain("b"), 1, 3, 100, 1) // also host0 -> host1
	mk, err := n.Run()
	if err != nil || mk != 20 {
		t.Errorf("makespan = %v, %v; want 20 (serialized NIC)", mk, err)
	}
}

// TestFullDuplex pins the full-duplex property: a host can send and receive
// at full bandwidth simultaneously.
func TestFullDuplex(t *testing.T) {
	n := NewClusterNet(testCluster(2))
	n.MustTransfer(Plain("out"), 0, 2, 100, 0) // host0 sends
	n.MustTransfer(Plain("in"), 2, 0, 100, 1)  // host0 receives
	mk, _ := n.Run()
	if mk != 10 {
		t.Errorf("makespan = %v, want 10 (full duplex)", mk)
	}
}

// TestDisjointHostPairs pins the fully-connected fabric property: transfers
// between disjoint host pairs do not interfere.
func TestDisjointHostPairs(t *testing.T) {
	n := NewClusterNet(testCluster(4))
	n.MustTransfer(Plain("a"), 0, 2, 100, 0) // host0 -> host1
	n.MustTransfer(Plain("b"), 4, 6, 100, 1) // host2 -> host3
	mk, _ := n.Run()
	if mk != 10 {
		t.Errorf("makespan = %v, want 10 (independent pairs)", mk)
	}
}

// TestIntraNodeParallelism: intra-host transfers between different device
// pairs proceed in parallel (NVLink is per-device, not shared per host).
func TestIntraNodeParallelism(t *testing.T) {
	c, _ := mesh.NewCluster(1, 4, 100, 10, 0, 0)
	n := NewClusterNet(c)
	n.MustTransfer(Plain("a"), 0, 1, 100, 0)
	n.MustTransfer(Plain("b"), 2, 3, 100, 1)
	mk, _ := n.Run()
	if mk != 1 {
		t.Errorf("makespan = %v, want 1", mk)
	}
}

// TestIntraCrossIndependence: a device sending intra-host does not block
// its host's NIC.
func TestIntraCrossIndependence(t *testing.T) {
	n := NewClusterNet(testCluster(2))
	n.MustTransfer(Plain("nvlink"), 0, 1, 100, 0) // 1s intra
	n.MustTransfer(Plain("nic"), 1, 2, 100, 1)    // 10s cross; device 1 recv is busy 1s but NIC path is separate
	mk, _ := n.Run()
	if math.Abs(mk-10) > 1e-9 {
		t.Errorf("makespan = %v, want 10", mk)
	}
}

func TestTransferWithDeps(t *testing.T) {
	n := NewClusterNet(testCluster(2))
	a := n.MustTransfer(Plain("first"), 0, 2, 100, 0)
	n.MustTransfer(Plain("second"), 2, 0, 100, 1, a) // depends on first
	mk, _ := n.Run()
	if mk != 20 {
		t.Errorf("makespan = %v, want 20 (chained)", mk)
	}
}

// TestTransferAfterRunFails pins the post-Run guard on the transfer path:
// like AddOp, a late transfer returns an error — even when it would need
// resources not yet interned — instead of minting state into a completed
// schedule.
func TestTransferAfterRunFails(t *testing.T) {
	n := NewClusterNet(testCluster(4))
	n.MustTransfer(Plain("a"), 0, 2, 100, 0)
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// Devices 4->6 cross hosts never touched before Run, so their NIC
	// resources are not interned yet.
	if _, err := n.Transfer(Plain("late"), 4, 6, 100, 1); err == nil {
		t.Error("transfer after Run should fail")
	}
	if _, err := n.StreamTransfer(Plain("late"), 4, 6, 100, 1); err == nil {
		t.Error("stream transfer after Run should fail")
	}
	// Reset lifts the guard and the replay works.
	n.Reset()
	n.MustTransfer(Plain("b"), 4, 6, 100, 0)
	if mk, err := n.Run(); err != nil || mk != 10 {
		t.Errorf("post-reset run = %v, %v; want 10", mk, err)
	}
}

func TestMustTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTransfer should panic on invalid transfer")
		}
	}()
	NewClusterNet(testCluster(1)).MustTransfer(Plain("bad"), 0, 0, 1, 0)
}

// TestStreamTransferSkipsLatency: streamed chunks pay bandwidth only.
func TestStreamTransferSkipsLatency(t *testing.T) {
	c, _ := mesh.NewCluster(2, 2, 100, 10, 0.5, 2.0)
	n := NewClusterNet(c)
	a, err := n.Transfer(Plain("first"), 0, 2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.StreamTransfer(Plain("stream"), 0, 2, 100, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	// First: 2.0 latency + 10 transfer; stream: 10 only.
	if got := n.Sim.OpFinish(a); got != 12 {
		t.Errorf("first finish = %v, want 12", got)
	}
	if got := n.Sim.OpFinish(b); got != 22 {
		t.Errorf("stream finish = %v, want 22", got)
	}
	// Intra-host stream skips the intra latency.
	n2 := NewClusterNet(c)
	x, _ := n2.Transfer(Plain("i1"), 0, 1, 100, 0)
	y, _ := n2.StreamTransfer(Plain("i2"), 0, 1, 100, 1, x)
	n2.Run()
	if got := n2.Sim.OpFinish(y) - n2.Sim.OpFinish(x); got != 1.0 {
		t.Errorf("intra stream duration = %v, want 1.0", got)
	}
}

// TestStreamTransferValidation: stream transfers validate like normal ones.
func TestStreamTransferValidation(t *testing.T) {
	n := NewClusterNet(testCluster(1))
	if _, err := n.StreamTransfer(Plain("bad"), 0, 0, 1, 0); err == nil {
		t.Error("self stream transfer should fail")
	}
}

// TestHeteroTransferTimes: per-host bandwidths and fabric oversubscription
// drive transfer durations on a heterogeneous topology.
func TestHeteroTransferTimes(t *testing.T) {
	// Host 0: 2 devices, intra 100 B/s, NIC 10 B/s.
	// Host 1: 2 devices, intra 400 B/s, NIC 40 B/s. Fabric 2:1 oversubscribed.
	hc, err := mesh.NewHeteroCluster([]mesh.HostSpec{
		{Devices: 2, IntraBandwidth: 100, NICBandwidth: 10},
		{Devices: 2, IntraBandwidth: 400, NICBandwidth: 40},
	}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := NewClusterNet(hc)
	if got := n.TransferTime(0, 1, 100); got != 1.0 {
		t.Errorf("slow-host intra time = %v, want 1.0", got)
	}
	if got := n.TransferTime(2, 3, 100); got != 0.25 {
		t.Errorf("fast-host intra time = %v, want 0.25", got)
	}
	// Cross-host: min(10, 40) / 2 = 5 B/s effective.
	if got := n.TransferTime(0, 2, 100); got != 20.0 {
		t.Errorf("cross-host time = %v, want 20.0", got)
	}
	if got := n.TransferTime(2, 0, 100); got != 20.0 {
		t.Errorf("reverse cross-host time = %v, want 20.0", got)
	}
}

// TestHeteroPerHostNICs: NIC striping respects per-host NIC counts — the
// same net view can ride NIC 3 on an 8-NIC host and NIC 1 on a 2-NIC host.
func TestHeteroPerHostNICs(t *testing.T) {
	hc, err := mesh.NewHeteroCluster([]mesh.HostSpec{
		{Devices: 1, IntraBandwidth: 100, NICBandwidth: 10, NICs: 8},
		{Devices: 1, IntraBandwidth: 100, NICBandwidth: 10, NICs: 2},
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := NewClusterNet(hc)
	v := n.OnNIC(3)
	if v.HostSend(0) != n.OnNIC(11).HostSend(0) {
		t.Error("NIC selector must wrap modulo the 8-NIC host's count")
	}
	if v.HostRecv(1) != n.OnNIC(1).HostRecv(1) {
		t.Error("NIC selector must wrap modulo the 2-NIC host's count")
	}
	if v.HostSend(0) == n.OnNIC(4).HostSend(0) {
		t.Error("distinct NICs on one host must be distinct resources")
	}
}

// TestMultiNICParallelism: with 2 NICs per host, two cross-host transfers
// from one host proceed in parallel on distinct NICs.
func TestMultiNICParallelism(t *testing.T) {
	c := testCluster(2).WithNICs(2)
	n := NewClusterNet(c)
	if _, err := n.OnNIC(0).Transfer(Plain("a"), 0, 2, 100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OnNIC(1).Transfer(Plain("b"), 1, 3, 100, 1); err != nil {
		t.Fatal(err)
	}
	mk, err := n.Run()
	if err != nil || mk != 10 {
		t.Errorf("makespan = %v, %v; want 10 (parallel NICs)", mk, err)
	}
	// Same NIC still serializes.
	n2 := NewClusterNet(c)
	n2.OnNIC(1).Transfer(Plain("a"), 0, 2, 100, 0)
	n2.OnNIC(1).Transfer(Plain("b"), 1, 3, 100, 1)
	mk2, _ := n2.Run()
	if mk2 != 20 {
		t.Errorf("same-NIC makespan = %v, want 20", mk2)
	}
	// Modulo wrap: OnNIC(3) on a 2-NIC host is NIC 1.
	if n.OnNIC(3).HostSend(0) != n.OnNIC(1).HostSend(0) {
		t.Error("OnNIC should wrap modulo NIC count")
	}
}
