package sharding

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"alpacomm/internal/mesh"
	"alpacomm/internal/tensor"
)

// fig2MeshA returns the (2,2) mesh [[0,1],[2,3]] from Figure 2.
func fig2MeshA(t *testing.T) *mesh.Mesh {
	t.Helper()
	c := mesh.AWSP3Cluster(2)
	m, err := c.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fig2MeshB returns the (2,2) mesh [[4,5],[6,7]] from Figure 2.
func fig2MeshB(t *testing.T) *mesh.Mesh {
	t.Helper()
	c := mesh.AWSP3Cluster(2)
	m, err := c.Slice([]int{2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFig2Spec1 pins the first sharding spec of Figure 2: S01R on MeshA —
// each device holds one 1x4 row slice.
func TestFig2Spec1(t *testing.T) {
	m := fig2MeshA(t)
	p, err := NewPlacement(m, MustParse("S01R"), tensor.MustShape(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]tensor.Region{
		0: tensor.Box(0, 1, 0, 4),
		1: tensor.Box(1, 2, 0, 4),
		2: tensor.Box(2, 3, 0, 4),
		3: tensor.Box(3, 4, 0, 4),
	}
	for dev, wr := range want {
		r, err := p.RegionOfDevice(dev)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Equal(wr) {
			t.Errorf("device %d region = %v, want %v", dev, r, wr)
		}
	}
}

// TestFig2Spec2 pins the second spec: S0R on MeshB — devices 4,5 replicate
// the top 2x4 slice, devices 6,7 the bottom.
func TestFig2Spec2(t *testing.T) {
	m := fig2MeshB(t)
	p, err := NewPlacement(m, MustParse("S0R"), tensor.MustShape(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	top := tensor.Box(0, 2, 0, 4)
	bottom := tensor.Box(2, 4, 0, 4)
	for _, dev := range []int{4, 5} {
		r, _ := p.RegionOfDevice(dev)
		if !r.Equal(top) {
			t.Errorf("device %d region = %v, want %v", dev, r, top)
		}
	}
	for _, dev := range []int{6, 7} {
		r, _ := p.RegionOfDevice(dev)
		if !r.Equal(bottom) {
			t.Errorf("device %d region = %v, want %v", dev, r, bottom)
		}
	}
	// Replicas: the top slice is held by exactly devices 4 and 5.
	if got := p.HoldersOf(top); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("HoldersOf(top) = %v", got)
	}
}

// TestFig2Spec3 pins the third spec: S0S1 on MeshA — a 2x2 block per device.
func TestFig2Spec3(t *testing.T) {
	m := fig2MeshA(t)
	p, err := NewPlacement(m, MustParse("S0S1"), tensor.MustShape(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]tensor.Region{
		0: tensor.Box(0, 2, 0, 2),
		1: tensor.Box(0, 2, 2, 4),
		2: tensor.Box(2, 4, 0, 2),
		3: tensor.Box(2, 4, 2, 4),
	}
	for dev, wr := range want {
		r, _ := p.RegionOfDevice(dev)
		if !r.Equal(wr) {
			t.Errorf("device %d region = %v, want %v", dev, r, wr)
		}
	}
}

func TestPlacementReplicatedAll(t *testing.T) {
	m := fig2MeshA(t)
	p, err := NewPlacement(m, MustParse("RR"), tensor.MustShape(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	full := tensor.MustShape(4, 4).Region()
	if got := p.HoldersOf(full); len(got) != 4 {
		t.Errorf("all devices should hold the full tensor, got %v", got)
	}
}

func TestPlacementErrors(t *testing.T) {
	m := fig2MeshA(t)
	if _, err := NewPlacement(m, MustParse("S0S0"), tensor.MustShape(4, 4)); err == nil {
		t.Error("invalid spec should fail")
	}
	p, _ := NewPlacement(m, MustParse("S0R"), tensor.MustShape(4, 4))
	if _, err := p.RegionAt(0); err == nil {
		t.Error("wrong coordinate rank should fail")
	}
	if _, err := p.RegionAt(2, 0); err == nil {
		t.Error("out-of-range coordinate should fail")
	}
	if _, err := p.RegionOfDevice(99); err == nil {
		t.Error("device outside mesh should fail")
	}
}

func TestPlacementBuffers(t *testing.T) {
	m := fig2MeshB(t)
	p, _ := NewPlacement(m, MustParse("S0R"), tensor.MustShape(4, 4))
	bufs, err := p.Buffers()
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 4 {
		t.Fatalf("got %d buffers", len(bufs))
	}
	if got := bufs[4].Region; !got.Equal(tensor.Box(0, 2, 0, 4)) {
		t.Errorf("buffer region = %v", got)
	}
	if p.BytesPerDevice(tensor.Float32) != 8*4 {
		t.Errorf("BytesPerDevice = %d", p.BytesPerDevice(tensor.Float32))
	}
}

// randomSpec builds a random valid spec for a rank-2 tensor on a rank-2 mesh.
func randomSpec(r *rand.Rand) Spec {
	choices := []string{"RR", "S0R", "S1R", "RS0", "RS1", "S0S1", "S1S0", "S01R", "RS01", "S10R", "RS10"}
	return MustParse(choices[r.Intn(len(choices))])
}

// Property: under any valid placement, the regions held by all devices
// cover the whole tensor (every element is held by at least one device),
// and devices in the same replica group hold identical regions.
func TestPlacementCoversTensor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := mesh.AWSP3Cluster(2)
		m, _ := c.Slice([]int{2, 2}, 0)
		shape := tensor.MustShape(4+r.Intn(8), 4+r.Intn(8))
		spec := randomSpec(r)
		p, err := NewPlacement(m, spec, shape)
		if err != nil {
			return false
		}
		covered := 0
		shape.Region().ForEachPoint(func(pt []int) {
			for _, dr := range p.DeviceRegions() {
				if dr.Region.ContainsPoint(pt) {
					covered++
					return
				}
			}
		})
		return int64(covered) == shape.NumElements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: total elements held across devices = tensor size x replication
// factor (mesh size / total shard degree).
func TestPlacementReplicationAccounting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := mesh.AWSP3Cluster(2)
		m, _ := c.Slice([]int{2, 2}, 0)
		shape := tensor.MustShape(8, 8) // divisible by all degrees here
		spec := randomSpec(r)
		p, err := NewPlacement(m, spec, shape)
		if err != nil {
			return false
		}
		deg := int64(spec.ShardDegree(m, 0) * spec.ShardDegree(m, 1))
		replicas := int64(m.NumDevices()) / deg
		var total int64
		for _, dr := range p.DeviceRegions() {
			total += dr.Region.NumElements()
		}
		return total == shape.NumElements()*replicas
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
