package sharding

import (
	"fmt"

	"alpacomm/internal/mesh"
	"alpacomm/internal/tensor"
)

// Placement binds a spec to a concrete mesh and tensor shape and answers
// "which region of the global tensor does each device hold?".
type Placement struct {
	Mesh   *mesh.Mesh
	Spec   Spec
	Global tensor.Shape
	// cuts[i] holds the shard boundaries of tensor dimension i.
	cuts [][]int
	// regions caches the per-device regions, computed once: decomposition
	// queries HoldersOf for every slice of the merged tiling, and
	// recomputing every device's region per query dominated planning
	// allocations.
	regions []DeviceRegion
}

// NewPlacement validates the triple and precomputes shard boundaries.
func NewPlacement(m *mesh.Mesh, spec Spec, global tensor.Shape) (*Placement, error) {
	if err := spec.Validate(m, global); err != nil {
		return nil, err
	}
	cuts := make([][]int, global.Rank())
	for i := range cuts {
		deg := spec.ShardDegree(m, i)
		b, err := tensor.PartitionBoundaries(global[i], deg)
		if err != nil {
			return nil, fmt.Errorf("sharding: dim %d: %v", i, err)
		}
		cuts[i] = b
	}
	p := &Placement{Mesh: m, Spec: spec, Global: global.Clone(), cuts: cuts}
	p.regions = make([]DeviceRegion, p.Mesh.NumDevices())
	for flat, d := range p.Mesh.Devices {
		r, err := p.RegionAt(p.Mesh.CoordOf(flat)...)
		if err != nil {
			return nil, err // unreachable: coordinates come from the mesh itself
		}
		p.regions[flat] = DeviceRegion{Device: d, Region: r}
	}
	return p, nil
}

// Cuts returns the shard boundaries along tensor dimension i.
func (p *Placement) Cuts(i int) []int { return p.cuts[i] }

// shardIndex computes which shard of tensor dim i the device at the given
// mesh coordinates holds: the lexicographic combination of its coordinates
// along the dim's mesh axes.
func (p *Placement) shardIndex(dim int, coord []int) int {
	idx := 0
	for _, a := range p.Spec.Dims[dim].MeshAxes {
		idx = idx*p.Mesh.Shape[a] + coord[a]
	}
	return idx
}

// RegionAt returns the global-tensor region held by the device at the given
// logical mesh coordinates.
func (p *Placement) RegionAt(coord ...int) (tensor.Region, error) {
	if len(coord) != p.Mesh.Rank() {
		return nil, fmt.Errorf("sharding: coordinate rank %d != mesh rank %d", len(coord), p.Mesh.Rank())
	}
	for i, c := range coord {
		if c < 0 || c >= p.Mesh.Shape[i] {
			return nil, fmt.Errorf("sharding: coordinate %v outside mesh shape %v", coord, p.Mesh.Shape)
		}
	}
	r := make(tensor.Region, p.Global.Rank())
	for i := range r {
		j := p.shardIndex(i, coord)
		r[i] = tensor.Interval{Lo: p.cuts[i][j], Hi: p.cuts[i][j+1]}
	}
	return r, nil
}

// RegionOfDevice returns the region held by a physical device that belongs
// to the mesh.
func (p *Placement) RegionOfDevice(device int) (tensor.Region, error) {
	for flat, d := range p.Mesh.Devices {
		if d == device {
			return p.RegionAt(p.Mesh.CoordOf(flat)...)
		}
	}
	return nil, fmt.Errorf("sharding: device %d not in mesh %v", device, p.Mesh)
}

// DeviceRegions returns, for every device of the mesh (in mesh row-major
// order), the pair (physical device index, region held). The returned
// slice is the placement's cached copy; callers must not modify it.
func (p *Placement) DeviceRegions() []DeviceRegion {
	return p.regions
}

// DeviceRegion pairs a physical device with the global-tensor region it
// holds under a placement.
type DeviceRegion struct {
	Device int
	Region tensor.Region
}

// HoldersOf returns the physical devices whose region fully contains r
// (replicas of the slice, the paper's set N_i / M_i).
func (p *Placement) HoldersOf(r tensor.Region) []int {
	var out []int
	for _, dr := range p.DeviceRegions() {
		if dr.Region.Contains(r) {
			out = append(out, dr.Device)
		}
	}
	return out
}

// Buffers allocates one data-plane buffer per device, covering exactly the
// region the placement assigns it. The map key is the physical device index.
func (p *Placement) Buffers() (map[int]*tensor.Buffer, error) {
	out := make(map[int]*tensor.Buffer, p.Mesh.NumDevices())
	for _, dr := range p.DeviceRegions() {
		b, err := tensor.NewBuffer(p.Global, dr.Region)
		if err != nil {
			return nil, err
		}
		out[dr.Device] = b
	}
	return out, nil
}

// BytesPerDevice returns the size in bytes of the largest per-device region
// under the placement.
func (p *Placement) BytesPerDevice(dt tensor.DType) int64 {
	var max int64
	for _, dr := range p.DeviceRegions() {
		if b := dr.Region.NumElements() * dt.Size(); b > max {
			max = b
		}
	}
	return max
}
