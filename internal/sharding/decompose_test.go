package sharding

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"alpacomm/internal/mesh"
	"alpacomm/internal/tensor"
)

// TestFig2Task1 pins the paper's cross-mesh resharding Task 1 (Figure 2 and
// Figure 10): S01R on MeshA -> S0R on MeshB decomposes into four unit
// tasks, one per row, where the first sends row 0 to devices 4 and 5.
func TestFig2Task1(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	meshA, _ := c.Slice([]int{2, 2}, 0)
	meshB, _ := c.Slice([]int{2, 2}, 4)
	task, err := NewTask(tensor.MustShape(4, 4), tensor.Float32, meshA, MustParse("S01R"), meshB, MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Units) != 4 {
		t.Fatalf("unit tasks = %d, want 4", len(task.Units))
	}
	want := []UnitTask{
		{Index: 0, Slice: tensor.Box(0, 1, 0, 4), Senders: []int{0}, Receivers: []int{4, 5}},
		{Index: 1, Slice: tensor.Box(1, 2, 0, 4), Senders: []int{1}, Receivers: []int{4, 5}},
		{Index: 2, Slice: tensor.Box(2, 3, 0, 4), Senders: []int{2}, Receivers: []int{6, 7}},
		{Index: 3, Slice: tensor.Box(3, 4, 0, 4), Senders: []int{3}, Receivers: []int{6, 7}},
	}
	for i, w := range want {
		got := task.Units[i]
		if !got.Slice.Equal(w.Slice) || !reflect.DeepEqual(got.Senders, w.Senders) || !reflect.DeepEqual(got.Receivers, w.Receivers) {
			t.Errorf("unit %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestFig2Task2 pins Task 2 (Figure 2 and Figure 11): S0R on MeshB -> S0S1
// on MeshA. The Appendix B.2 refinement yields four 2x2 unit tasks, each
// replicated on two senders and required by one receiver.
func TestFig2Task2(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	meshA, _ := c.Slice([]int{2, 2}, 0)
	meshB, _ := c.Slice([]int{2, 2}, 4)
	task, err := NewTask(tensor.MustShape(4, 4), tensor.Float32, meshB, MustParse("S0R"), meshA, MustParse("S0S1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Units) != 4 {
		t.Fatalf("unit tasks = %d, want 4", len(task.Units))
	}
	want := []UnitTask{
		{Slice: tensor.Box(0, 2, 0, 2), Senders: []int{4, 5}, Receivers: []int{0}},
		{Slice: tensor.Box(0, 2, 2, 4), Senders: []int{4, 5}, Receivers: []int{1}},
		{Slice: tensor.Box(2, 4, 0, 2), Senders: []int{6, 7}, Receivers: []int{2}},
		{Slice: tensor.Box(2, 4, 2, 4), Senders: []int{6, 7}, Receivers: []int{3}},
	}
	for i, w := range want {
		got := task.Units[i]
		if !got.Slice.Equal(w.Slice) || !reflect.DeepEqual(got.Senders, w.Senders) || !reflect.DeepEqual(got.Receivers, w.Receivers) {
			t.Errorf("unit %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestNewTaskRejectsOverlappingMeshes(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	a, _ := c.Slice([]int{2, 2}, 0)
	b, _ := c.Slice([]int{2, 2}, 2)
	if _, err := NewTask(tensor.MustShape(4, 4), tensor.Float32, a, MustParse("S0R"), b, MustParse("S0R")); err == nil {
		t.Error("overlapping meshes should be rejected")
	}
}

func TestNewTaskRejectsBadSpecs(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	a, _ := c.Slice([]int{2, 2}, 0)
	b, _ := c.Slice([]int{2, 2}, 4)
	if _, err := NewTask(tensor.MustShape(4, 4), tensor.Float32, a, MustParse("S2R"), b, MustParse("S0R")); err == nil {
		t.Error("bad source spec should be rejected")
	}
	if _, err := NewTask(tensor.MustShape(4, 4), tensor.Float32, a, MustParse("S0R"), b, MustParse("S2R")); err == nil {
		t.Error("bad destination spec should be rejected")
	}
}

func TestTaskHostSets(t *testing.T) {
	c := mesh.AWSP3Cluster(2) // 4 devices per host
	meshA, _ := c.Slice([]int{1, 4}, 0)
	meshB, _ := c.Slice([]int{1, 4}, 4)
	task, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, meshA, MustParse("RR"), meshB, MustParse("RR"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Units) != 1 {
		t.Fatalf("replicated->replicated should be one unit task, got %d", len(task.Units))
	}
	u := task.Units[0]
	if !reflect.DeepEqual(task.SenderHosts(u), []int{0}) {
		t.Errorf("sender hosts = %v", task.SenderHosts(u))
	}
	if !reflect.DeepEqual(task.ReceiverHosts(u), []int{1}) {
		t.Errorf("receiver hosts = %v", task.ReceiverHosts(u))
	}
}

func TestTaskTotalBytes(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	meshA, _ := c.Slice([]int{2, 2}, 0)
	meshB, _ := c.Slice([]int{2, 2}, 4)
	task, _ := NewTask(tensor.MustShape(4, 4), tensor.Float16, meshA, MustParse("S01R"), meshB, MustParse("S0R"))
	if task.TotalBytes() != 16*2 {
		t.Errorf("TotalBytes = %d", task.TotalBytes())
	}
	if task.String() == "" {
		t.Error("task String empty")
	}
}

func TestUnitTaskBytes(t *testing.T) {
	u := UnitTask{Slice: tensor.Box(0, 2, 0, 4)}
	if u.Bytes(tensor.Float32) != 32 {
		t.Errorf("Bytes = %d", u.Bytes(tensor.Float32))
	}
}

// Property (the paper's correctness requirement for the decomposition):
// for any pair of valid specs, the unit slices tile the tensor exactly,
// every unit task has at least one sender and one receiver, senders hold
// the slice, and receivers need it.
func TestDecomposeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := mesh.AWSP3Cluster(4)
		meshA, _ := c.Slice([]int{2, 2}, 0)
		meshB, _ := c.Slice([]int{2, 2}, 8)
		shape := tensor.MustShape(4+r.Intn(13), 4+r.Intn(13))
		task, err := NewTask(shape, tensor.Float32, meshA, randomSpec(r), meshB, randomSpec(r))
		if err != nil {
			return false
		}
		var total int64
		for i, u := range task.Units {
			if len(u.Senders) == 0 || len(u.Receivers) == 0 {
				return false
			}
			total += u.Slice.NumElements()
			for j := i + 1; j < len(task.Units); j++ {
				if u.Slice.Overlaps(task.Units[j].Slice) {
					return false
				}
			}
			for _, s := range u.Senders {
				reg, err := task.Src.RegionOfDevice(s)
				if err != nil || !reg.Contains(u.Slice) {
					return false
				}
			}
			for _, d := range u.Receivers {
				reg, err := task.Dst.RegionOfDevice(d)
				if err != nil || !reg.Contains(u.Slice) {
					return false
				}
			}
		}
		return total == shape.NumElements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: every destination device's full region is covered exactly by
// the unit tasks that list it as receiver (no gaps, no overlap).
func TestDecomposeCoversReceivers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := mesh.AWSP3Cluster(4)
		meshA, _ := c.Slice([]int{2, 2}, 0)
		meshB, _ := c.Slice([]int{2, 2}, 8)
		shape := tensor.MustShape(4+r.Intn(13), 4+r.Intn(13))
		task, err := NewTask(shape, tensor.Float32, meshA, randomSpec(r), meshB, randomSpec(r))
		if err != nil {
			return false
		}
		for _, dr := range task.Dst.DeviceRegions() {
			var got int64
			for _, u := range task.Units {
				for _, rcv := range u.Receivers {
					if rcv == dr.Device {
						got += u.Slice.NumElements()
					}
				}
			}
			if got != dr.Region.NumElements() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
