package sharding

import (
	"fmt"
	"sort"

	"alpacomm/internal/mesh"
	"alpacomm/internal/tensor"
)

// UnitTask is one unit communication task of a cross-mesh resharding
// (§2.2): a unique data slice that must travel from the source mesh (where
// Senders hold replicas) to every device in Receivers on the destination
// mesh.
type UnitTask struct {
	// Index is the task's position in the decomposition, used as a stable
	// identifier by the scheduler.
	Index int
	// Slice is the region of the global tensor this task moves.
	Slice tensor.Region
	// Senders are the physical devices on the source mesh holding a
	// replica of Slice (the paper's N_i). Sorted ascending.
	Senders []int
	// Receivers are the physical devices on the destination mesh that need
	// Slice (the paper's M_i). Sorted ascending.
	Receivers []int
}

// Bytes returns the size of the task's slice in bytes.
func (u UnitTask) Bytes(dt tensor.DType) int64 {
	return u.Slice.NumElements() * dt.Size()
}

// Task is a full cross-mesh resharding task: send tensor Global, sharded as
// SrcSpec on SrcMesh, to DstMesh where it must be laid out as DstSpec.
type Task struct {
	Global tensor.Shape
	DType  tensor.DType
	Src    *Placement
	Dst    *Placement
	Units  []UnitTask
}

// NewTask validates the resharding endpoints and decomposes the task into
// unit communication tasks with the Appendix B.2 cutpoint algorithm:
//
//  1. per tensor dimension, merge the shard cut points of the sender and
//     receiver placements;
//  2. the cross product of the resulting interval lists tiles the tensor
//     into slices;
//  3. each slice becomes a unit task whose senders are all source devices
//     holding it and whose receivers are all destination devices needing it.
func NewTask(global tensor.Shape, dt tensor.DType, srcMesh *mesh.Mesh, srcSpec Spec, dstMesh *mesh.Mesh, dstSpec Spec) (*Task, error) {
	if !mesh.Disjoint(srcMesh, dstMesh) {
		return nil, fmt.Errorf("sharding: cross-mesh resharding requires disjoint meshes")
	}
	src, err := NewPlacement(srcMesh, srcSpec, global)
	if err != nil {
		return nil, fmt.Errorf("sharding: source placement: %v", err)
	}
	dst, err := NewPlacement(dstMesh, dstSpec, global)
	if err != nil {
		return nil, fmt.Errorf("sharding: destination placement: %v", err)
	}
	t := &Task{Global: global.Clone(), DType: dt, Src: src, Dst: dst}
	t.Units = decompose(src, dst)
	return t, nil
}

// decompose implements Appendix B.2 over two placements.
func decompose(src, dst *Placement) []UnitTask {
	rank := src.Global.Rank()
	dims := make([][]tensor.Interval, rank)
	for i := 0; i < rank; i++ {
		cuts := tensor.MergeCuts(src.Cuts(i), dst.Cuts(i))
		dims[i] = tensor.IntervalsFromCuts(cuts)
	}
	slices := tensor.CrossProduct(dims)
	units := make([]UnitTask, 0, len(slices))
	for _, s := range slices {
		senders := src.HoldersOf(s)
		receivers := dst.HoldersOf(s)
		sort.Ints(senders)
		sort.Ints(receivers)
		units = append(units, UnitTask{
			Index:     len(units),
			Slice:     s,
			Senders:   senders,
			Receivers: receivers,
		})
	}
	return units
}

// OnTopology rebuilds the task with both meshes bound to a different
// topology: same logical shapes, same physical device indices, the same
// decomposition re-derived. The target must use the same device indexing
// as the meshes' current topology — the intended use is rebinding a task
// to a fault overlay (mesh.Faulted) of its own topology, or back to the
// overlay's base, without reconstructing the boundary by hand.
func (t *Task) OnTopology(topo mesh.Topology) (*Task, error) {
	src, err := mesh.NewMesh(topo, t.Src.Mesh.Shape, t.Src.Mesh.Devices)
	if err != nil {
		return nil, fmt.Errorf("sharding: rebind source mesh: %v", err)
	}
	dst, err := mesh.NewMesh(topo, t.Dst.Mesh.Shape, t.Dst.Mesh.Devices)
	if err != nil {
		return nil, fmt.Errorf("sharding: rebind destination mesh: %v", err)
	}
	return NewTask(t.Global, t.DType, src, t.Src.Spec, dst, t.Dst.Spec)
}

// TotalBytes returns the lower bound on cross-mesh traffic: the full tensor
// size (§2.2 — "the size of messages transferred between two meshes is
// lower bound by the size of D").
func (t *Task) TotalBytes() int64 {
	return t.Global.NumElements() * t.DType.Size()
}

// SenderHosts returns the candidate sender hosts of a unit task (the
// paper's n_i: scheduling happens at host granularity, §3.2).
func (t *Task) SenderHosts(u UnitTask) []int {
	return hostsOf(t.Src.Mesh.Topo, u.Senders)
}

// ReceiverHosts returns the receiver hosts of a unit task (m_i).
func (t *Task) ReceiverHosts(u UnitTask) []int {
	return hostsOf(t.Dst.Mesh.Topo, u.Receivers)
}

func hostsOf(c mesh.Topology, devices []int) []int {
	// Devices are sorted and hosts own contiguous ascending device runs, so
	// the host sequence is non-decreasing: deduplicating consecutive values
	// yields the sorted distinct host list without a set.
	var out []int
	for _, d := range devices {
		h := c.HostOf(d)
		if len(out) == 0 || out[len(out)-1] != h {
			out = append(out, h)
		}
	}
	return out
}

func (t *Task) String() string {
	return fmt.Sprintf("reshard %v %s: %s on %v -> %s on %v (%d unit tasks)",
		t.Global, t.DType, t.Src.Spec, t.Src.Mesh.Devices, t.Dst.Spec, t.Dst.Mesh.Devices, len(t.Units))
}
