package sharding

import (
	"reflect"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/tensor"
)

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"S01R", "S0R", "S0S1", "RRR", "S0RR", "RS0R", "RS01R", "S1RR", "RRS0"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "S", "SR0", "X", "RSx"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseStructure(t *testing.T) {
	spec := MustParse("S01R")
	if spec.Rank() != 2 {
		t.Fatalf("rank = %d", spec.Rank())
	}
	if !reflect.DeepEqual(spec.Dims[0].MeshAxes, []int{0, 1}) {
		t.Errorf("dim0 axes = %v", spec.Dims[0].MeshAxes)
	}
	if !spec.Dims[1].Replicated() {
		t.Error("dim1 should be replicated")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of bad spec should panic")
		}
	}()
	MustParse("Q")
}

func TestSpecConstructors(t *testing.T) {
	spec := NewSpec(S(0, 1), R())
	if spec.String() != "S01R" {
		t.Errorf("constructed spec = %s", spec)
	}
	if Replicated(3).String() != "RRR" {
		t.Errorf("Replicated(3) = %s", Replicated(3))
	}
}

func TestSpecEqual(t *testing.T) {
	if !MustParse("S0R").Equal(NewSpec(S(0), R())) {
		t.Error("equal specs reported unequal")
	}
	if MustParse("S0R").Equal(MustParse("S1R")) {
		t.Error("different axes reported equal")
	}
	if MustParse("S0R").Equal(MustParse("S0")) {
		t.Error("different ranks reported equal")
	}
	if MustParse("S01R").Equal(MustParse("S0R")) {
		t.Error("different axis counts reported equal")
	}
}

func TestValidate(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	m, _ := c.Slice([]int{2, 2}, 0)
	shape := tensor.MustShape(4, 4)

	if err := MustParse("S01R").Validate(m, shape); err != nil {
		t.Errorf("S01R should validate: %v", err)
	}
	if err := MustParse("S0S1").Validate(m, shape); err != nil {
		t.Errorf("S0S1 should validate: %v", err)
	}
	if err := MustParse("S0R").Validate(m, tensor.MustShape(4)); err == nil {
		t.Error("rank mismatch should fail")
	}
	if err := MustParse("S0S0").Validate(m, shape); err == nil {
		t.Error("reusing a mesh axis should fail")
	}
	if err := MustParse("S2R").Validate(m, shape); err == nil {
		t.Error("nonexistent mesh axis should fail")
	}
	if err := MustParse("S01R").Validate(m, tensor.MustShape(2, 4)); err == nil {
		t.Error("over-sharding a short dimension should fail")
	}
}

func TestShardDegree(t *testing.T) {
	c := mesh.AWSP3Cluster(2)
	m, _ := c.Slice([]int{2, 4}, 0)
	spec := MustParse("S01R")
	if d := spec.ShardDegree(m, 0); d != 8 {
		t.Errorf("degree dim0 = %d, want 8", d)
	}
	if d := spec.ShardDegree(m, 1); d != 1 {
		t.Errorf("degree dim1 = %d, want 1", d)
	}
}
