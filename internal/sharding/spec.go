// Package sharding implements the paper's tensor-layout formalism (§2.2):
// sharding specs over device meshes, per-device data regions, and the
// decomposition of a cross-mesh resharding into unit communication tasks
// (Appendix B.2).
package sharding

import (
	"fmt"
	"strings"

	"alpacomm/internal/mesh"
	"alpacomm/internal/tensor"
)

// DimSharding describes how one tensor dimension is laid out on a mesh:
// replicated (MeshAxes empty) or sharded over one or more mesh axes in
// order (S0, S1, S01, ...).
type DimSharding struct {
	// MeshAxes lists the mesh dimensions this tensor dimension is sharded
	// over, in significance order (S01 means axis 0 is the major axis).
	// Empty means replicated (R).
	MeshAxes []int
}

// Replicated reports whether this dimension is replicated.
func (d DimSharding) Replicated() bool { return len(d.MeshAxes) == 0 }

// Spec is a sharding spec: one DimSharding per tensor dimension, e.g.
// "S01R" for a 2-D tensor whose first dim is sharded over both mesh axes
// and whose second dim is replicated.
type Spec struct {
	Dims []DimSharding
}

// R is a replicated dimension, for building specs as literals.
func R() DimSharding { return DimSharding{} }

// S returns a dimension sharded over the given mesh axes.
func S(axes ...int) DimSharding {
	return DimSharding{MeshAxes: append([]int(nil), axes...)}
}

// NewSpec builds a spec from per-dimension shardings.
func NewSpec(dims ...DimSharding) Spec {
	out := make([]DimSharding, len(dims))
	copy(out, dims)
	return Spec{Dims: out}
}

// Replicated returns the fully replicated spec of the given tensor rank.
func Replicated(rank int) Spec {
	return Spec{Dims: make([]DimSharding, rank)}
}

// Rank returns the tensor rank the spec applies to.
func (s Spec) Rank() int { return len(s.Dims) }

// Validate checks the spec against a mesh and tensor shape: mesh axes must
// exist, no mesh axis may shard two tensor dimensions, and every sharded
// dimension must be long enough to give each shard at least one element.
func (s Spec) Validate(m *mesh.Mesh, shape tensor.Shape) error {
	if len(s.Dims) != shape.Rank() {
		return fmt.Errorf("sharding: spec rank %d != tensor rank %d", len(s.Dims), shape.Rank())
	}
	used := map[int]bool{}
	for i, d := range s.Dims {
		deg := 1
		for _, a := range d.MeshAxes {
			if a < 0 || a >= m.Rank() {
				return fmt.Errorf("sharding: dim %d refers to mesh axis %d, mesh rank is %d", i, a, m.Rank())
			}
			if used[a] {
				return fmt.Errorf("sharding: mesh axis %d used by more than one tensor dimension", a)
			}
			used[a] = true
			deg *= m.Shape[a]
		}
		if deg > shape[i] {
			return fmt.Errorf("sharding: dim %d of length %d cannot be sharded %d ways", i, shape[i], deg)
		}
	}
	return nil
}

// ShardDegree returns the number of shards of tensor dimension i on mesh m.
func (s Spec) ShardDegree(m *mesh.Mesh, i int) int {
	deg := 1
	for _, a := range s.Dims[i].MeshAxes {
		deg *= m.Shape[a]
	}
	return deg
}

// Parse builds a spec from the paper's string notation, e.g. "S01R",
// "RS0R", "RRR". Each tensor dimension is either 'R' or 'S' followed by one
// digit per mesh axis.
func Parse(str string) (Spec, error) {
	var dims []DimSharding
	i := 0
	for i < len(str) {
		switch str[i] {
		case 'R':
			dims = append(dims, DimSharding{})
			i++
		case 'S':
			i++
			start := i
			for i < len(str) && str[i] >= '0' && str[i] <= '9' {
				i++
			}
			if i == start {
				return Spec{}, fmt.Errorf("sharding: 'S' without mesh axes in %q", str)
			}
			axes := make([]int, 0, i-start)
			for _, c := range str[start:i] {
				axes = append(axes, int(c-'0'))
			}
			dims = append(dims, DimSharding{MeshAxes: axes})
		default:
			return Spec{}, fmt.Errorf("sharding: unexpected character %q in spec %q", str[i], str)
		}
	}
	if len(dims) == 0 {
		return Spec{}, fmt.Errorf("sharding: empty spec")
	}
	return Spec{Dims: dims}, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(str string) Spec {
	s, err := Parse(str)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the spec in the paper's notation.
func (s Spec) String() string {
	var b strings.Builder
	for _, d := range s.Dims {
		if d.Replicated() {
			b.WriteByte('R')
			continue
		}
		b.WriteByte('S')
		for _, a := range d.MeshAxes {
			fmt.Fprintf(&b, "%d", a)
		}
	}
	return b.String()
}

// Equal reports whether two specs are identical.
func (s Spec) Equal(o Spec) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		a, b := s.Dims[i].MeshAxes, o.Dims[i].MeshAxes
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}
