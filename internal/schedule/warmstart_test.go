package schedule

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProblem builds a reproducible scheduling problem: n tasks over
// hosts with random candidate sender sets, receiver sets and durations.
func randomProblem(rng *rand.Rand, n, hosts int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		senders := rng.Intn(hosts) + 1
		perm := rng.Perm(hosts)
		tasks[i] = Task{
			ID:            i,
			SenderHosts:   append([]int(nil), perm[:senders]...),
			ReceiverHosts: []int{rng.Intn(hosts)},
			Duration:      0.1 + rng.Float64(),
		}
	}
	return tasks
}

func mustMakespan(t *testing.T, tasks []Task, p Plan) float64 {
	t.Helper()
	m, err := Makespan(tasks, p)
	if err != nil {
		t.Fatalf("makespan: %v", err)
	}
	return m
}

func TestDFSPruningWarmStartNeverWorseThanIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tasks := randomProblem(rng, 3+rng.Intn(8), 2+rng.Intn(4))
		incumbent := LoadBalanceOnly(tasks)
		incSpan := mustMakespan(t, tasks, incumbent)
		// Tiny node budgets starve the search on purpose: even when the DFS
		// finds nothing, the incumbent-seeded bound must hold.
		for _, nodes := range []int{1, 64, 4096} {
			warm := DFSPruningWarmStart(tasks, nodes, incumbent, nil)
			if err := Validate(tasks, warm); err != nil {
				t.Fatalf("trial %d nodes %d: invalid warm plan: %v", trial, nodes, err)
			}
			if span := mustMakespan(t, tasks, warm); span > incSpan+1e-12 {
				t.Fatalf("trial %d nodes %d: warm makespan %.9f worse than incumbent %.9f",
					trial, nodes, span, incSpan)
			}
		}
	}
}

func TestDFSPruningWarmStartInvalidIncumbentIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tasks := randomProblem(rng, 8, 3)
	cold := DFSPruningNodesStop(tasks, 2000, nil)
	for name, bad := range map[string]Plan{
		"empty":          {},
		"missing-task":   {Sender: map[int]int{0: tasks[0].SenderHosts[0]}, Order: []int{0}},
		"illegal-sender": {Sender: map[int]int{0: -1}, Order: []int{0}},
	} {
		warm := DFSPruningWarmStart(tasks, 2000, bad, nil)
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("%s incumbent: warm result diverged from cold DFS", name)
		}
	}
}

func TestEnsembleWarmStartNeverWorseThanIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		tasks := randomProblem(rng, 3+rng.Intn(10), 2+rng.Intn(4))
		incumbent := Naive(tasks)
		// Perturb toward a better incumbent than Naive sometimes, so the
		// test covers incumbents both above and below the ensemble's own
		// candidates.
		if trial%2 == 1 {
			incumbent = LoadBalanceOnly(tasks)
		}
		incSpan := mustMakespan(t, tasks, incumbent)
		warm := EnsembleWarmStart(tasks, 500, 4, rand.New(rand.NewSource(int64(trial))), incumbent, nil)
		if err := Validate(tasks, warm); err != nil {
			t.Fatalf("trial %d: invalid warm ensemble plan: %v", trial, err)
		}
		if span := mustMakespan(t, tasks, warm); span > incSpan+1e-12 {
			t.Fatalf("trial %d: warm ensemble makespan %.9f worse than incumbent %.9f",
				trial, span, incSpan)
		}
	}
}

// A warm ensemble whose incumbent merely matches the cold winner must
// return the cold result bit for bit: the incumbent is appended last and
// ties break toward earlier candidates, so equal-information warm replans
// cannot perturb served plans.
func TestEnsembleWarmStartBitIdenticalWhenIncumbentAddsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		tasks := randomProblem(rng, 3+rng.Intn(8), 2+rng.Intn(4))
		cold := EnsembleNodesStop(tasks, 2000, 4, rand.New(rand.NewSource(99)), nil)
		warm := EnsembleWarmStart(tasks, 2000, 4, rand.New(rand.NewSource(99)), cold, nil)
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("trial %d: warm ensemble with the cold winner as incumbent diverged from cold", trial)
		}
		// An invalid incumbent must be ignored entirely, with the same
		// bit-identity guarantee.
		warm = EnsembleWarmStart(tasks, 2000, 4, rand.New(rand.NewSource(99)), Plan{}, nil)
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("trial %d: warm ensemble with an invalid incumbent diverged from cold", trial)
		}
	}
}
