package schedule

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// referenceDFSNodes is the pre-refactor dfsPruning (per-node map-based
// symmetry dedup, rendered-string keys) under a node budget. The optimized
// implementation must visit the same nodes in the same order, so with any
// equal budget it must return the identical plan — this differential test
// is what pins the stamp-array symmetry breaking to the original
// semantics.
func referenceDFSNodes(tasks []Task, maxNodes int) Plan {
	if len(tasks) == 0 {
		return Plan{Sender: map[int]int{}}
	}
	if maxNodes < 1 {
		maxNodes = 1
	}
	best := LoadBalanceOnly(tasks)
	bestSpan, err := Makespan(tasks, best)
	if err != nil {
		panic(err)
	}
	n := len(tasks)
	used := make([]bool, n)
	order := make([]int, 0, n)
	sender := map[int]int{}
	sendFree := map[int]float64{}
	recvFree := map[int]float64{}
	var expired bool
	checkCount := 0
	var dfs func(depth int, span float64)
	dfs = func(depth int, span float64) {
		if expired {
			return
		}
		checkCount++
		if checkCount > maxNodes {
			expired = true
			return
		}
		if span >= bestSpan {
			return
		}
		if depth == n {
			bestSpan = span
			cp := Plan{Sender: map[int]int{}, Order: append([]int(nil), order...)}
			for k, v := range sender {
				cp.Sender[k] = v
			}
			best = cp
			return
		}
		type key struct {
			s, r string
			d    float64
		}
		tried := map[key]bool{}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			t := tasks[i]
			k := key{fmt.Sprint(t.SenderHosts), fmt.Sprint(t.ReceiverHosts), t.Duration}
			if tried[k] {
				continue
			}
			tried[k] = true
			for _, s := range t.SenderHosts {
				start := sendFree[s]
				for _, r := range t.ReceiverHosts {
					if recvFree[r] > start {
						start = recvFree[r]
					}
				}
				finish := start + t.Duration
				newSpan := span
				if finish > newSpan {
					newSpan = finish
				}
				if newSpan >= bestSpan {
					continue
				}
				used[i] = true
				order = append(order, t.ID)
				sender[t.ID] = s
				oldSend := sendFree[s]
				oldRecv := make([]float64, len(t.ReceiverHosts))
				sendFree[s] = finish
				for j, r := range t.ReceiverHosts {
					oldRecv[j] = recvFree[r]
					recvFree[r] = finish
				}
				dfs(depth+1, newSpan)
				sendFree[s] = oldSend
				for j, r := range t.ReceiverHosts {
					recvFree[r] = oldRecv[j]
				}
				delete(sender, t.ID)
				order = order[:len(order)-1]
				used[i] = false
				if expired {
					return
				}
			}
		}
	}
	dfs(0, 0)
	return best
}

// randomDFSInstance generates a small instance with deliberately many
// symmetric (identical) tasks, the shape that exposes symmetry-breaking
// regressions.
func randomDFSInstance(rng *rand.Rand) []Task {
	hosts := 2 + rng.Intn(3)
	shapes := 1 + rng.Intn(3) // distinct task shapes; duplicates are symmetric
	type shape struct {
		senders, receivers []int
		dur                float64
	}
	mk := func() shape {
		ns := 1 + rng.Intn(2)
		nr := 1 + rng.Intn(2)
		var s, r []int
		for i := 0; i < ns; i++ {
			s = append(s, rng.Intn(hosts))
		}
		for i := 0; i < nr; i++ {
			r = append(r, hosts+rng.Intn(hosts))
		}
		return shape{s, r, float64(1 + rng.Intn(4))}
	}
	protos := make([]shape, shapes)
	for i := range protos {
		protos[i] = mk()
	}
	n := 3 + rng.Intn(6)
	tasks := make([]Task, n)
	for i := range tasks {
		p := protos[rng.Intn(shapes)]
		tasks[i] = Task{
			ID:            i,
			SenderHosts:   append([]int(nil), p.senders...),
			ReceiverHosts: append([]int(nil), p.receivers...),
			Duration:      p.dur,
		}
	}
	return tasks
}

// TestDFSMatchesReferenceUnderBudget checks that the optimized DFS and the
// pre-refactor reference return identical plans for identical node
// budgets — including tight budgets, where any difference in traversal or
// symmetry pruning changes where the search expires.
func TestDFSMatchesReferenceUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tasks := randomDFSInstance(rng)
		for _, budget := range []int{1, 7, 50, 400, 20000} {
			got := DFSPruningNodes(tasks, budget)
			want := referenceDFSNodes(tasks, budget)
			if !reflect.DeepEqual(got.Order, want.Order) || !reflect.DeepEqual(got.Sender, want.Sender) {
				t.Fatalf("trial %d budget %d: plan diverged from reference\n got: %+v\nwant: %+v\ntasks: %+v",
					trial, budget, got, want, tasks)
			}
		}
	}
}

// bruteForceOptimal exhaustively enumerates every launch order and sender
// assignment — no pruning, no symmetry breaking, no budget — and returns
// the smallest achievable makespan. Only viable for tiny instances; it is
// the ground truth the budgeted searches are checked against.
func bruteForceOptimal(t *testing.T, tasks []Task) float64 {
	t.Helper()
	n := len(tasks)
	used := make([]bool, n)
	order := make([]int, 0, n)
	sender := make(map[int]int, n)
	best := math.Inf(1)
	var walk func(depth int)
	walk = func(depth int) {
		if depth == n {
			ids := make([]int, n)
			copy(ids, order)
			span, err := Makespan(tasks, Plan{Sender: sender, Order: ids})
			if err != nil {
				t.Fatalf("brute force built an invalid plan: %v", err)
			}
			if span < best {
				best = span
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			order = append(order, tasks[i].ID)
			for _, s := range tasks[i].SenderHosts {
				sender[tasks[i].ID] = s
				walk(depth + 1)
			}
			delete(sender, tasks[i].ID)
			order = order[:len(order)-1]
			used[i] = false
		}
	}
	walk(0)
	return best
}

// tinyDFSInstance generates an instance small enough to brute-force:
// at most 5 tasks with at most 2 candidate senders each.
func tinyDFSInstance(rng *rand.Rand) []Task {
	hosts := 2 + rng.Intn(2)
	n := 2 + rng.Intn(4)
	tasks := make([]Task, n)
	for i := range tasks {
		ns := 1 + rng.Intn(2)
		senders := make([]int, ns)
		for j := range senders {
			senders[j] = rng.Intn(hosts)
		}
		tasks[i] = Task{
			ID:            i,
			SenderHosts:   senders,
			ReceiverHosts: []int{hosts + rng.Intn(hosts)},
			Duration:      float64(1 + rng.Intn(5)),
		}
	}
	return tasks
}

// TestDFSNodesStopReachesBruteForceOptimal: with a budget generous enough
// to complete, DFSPruningNodesStop and EnsembleNodesStop reach exactly
// the brute-force optimal makespan on small instances. Pruning and
// symmetry breaking may change WHICH optimal plan is found, never how
// good it is.
func TestDFSNodesStopReachesBruteForceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		tasks := tinyDFSInstance(rng)
		want := bruteForceOptimal(t, tasks)

		dfsPlan := DFSPruningNodesStop(tasks, 10_000_000, nil)
		if err := Validate(tasks, dfsPlan); err != nil {
			t.Fatalf("trial %d: DFS plan invalid: %v", trial, err)
		}
		got, err := Makespan(tasks, dfsPlan)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: DFS makespan %g, brute force optimal %g\ntasks: %+v", trial, got, want, tasks)
		}

		ens := EnsembleNodesStop(tasks, 10_000_000, 16, rand.New(rand.NewSource(int64(trial))), nil)
		if err := Validate(tasks, ens); err != nil {
			t.Fatalf("trial %d: ensemble plan invalid: %v", trial, err)
		}
		if got, _ := Makespan(tasks, ens); got != want {
			t.Fatalf("trial %d: ensemble makespan %g, brute force optimal %g", trial, got, want)
		}
	}
}

// stopAfter returns a stop predicate that fires on its m-th poll. The DFS
// polls every StopStride nodes, so firing on poll m aborts the search at
// node m*StopStride — exactly where a node budget of m*StopStride-1
// expires (the budget check precedes the poll and aborts node budget+1).
func stopAfter(m int) func() bool {
	calls := 0
	return func() bool {
		calls++
		return calls >= m
	}
}

// hardDFSInstance generates an instance whose search space comfortably
// exceeds a few StopStride slices: 9-10 tasks with mostly distinct
// durations (little symmetry to prune).
func hardDFSInstance(rng *rand.Rand) []Task {
	hosts := 3
	n := 9 + rng.Intn(2)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			ID:            i,
			SenderHosts:   []int{rng.Intn(hosts), rng.Intn(hosts)},
			ReceiverHosts: []int{hosts + rng.Intn(hosts)},
			Duration:      1 + float64(rng.Intn(97))/7,
		}
	}
	return tasks
}

// TestDFSCancellationMatchesNodeBudget pins the mid-search cancellation
// semantics differentially: aborting via the stop predicate at poll m
// must return the byte-identical plan as running the pre-refactor
// reference (and the optimized node-budget path) to node m*StopStride-1.
// Cancellation only truncates the search — it never perturbs traversal.
func TestDFSCancellationMatchesNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		tasks := hardDFSInstance(rng)
		for _, m := range []int{1, 2, 3, 5} {
			cancelled := DFSPruningNodesStop(tasks, 1<<30, stopAfter(m))
			budget := m*StopStride - 1
			wantRef := referenceDFSNodes(tasks, budget)
			wantOpt := DFSPruningNodes(tasks, budget)
			if !reflect.DeepEqual(cancelled.Order, wantRef.Order) || !reflect.DeepEqual(cancelled.Sender, wantRef.Sender) {
				t.Fatalf("trial %d m=%d: cancelled plan diverged from reference at node budget %d", trial, m, budget)
			}
			if !reflect.DeepEqual(cancelled.Order, wantOpt.Order) || !reflect.DeepEqual(cancelled.Sender, wantOpt.Sender) {
				t.Fatalf("trial %d m=%d: cancelled plan diverged from node-budget path", trial, m)
			}
			if err := Validate(tasks, cancelled); err != nil {
				t.Fatalf("trial %d m=%d: cancelled plan invalid: %v", trial, m, err)
			}
		}
	}
}

// referenceEnsembleNodes mirrors the production ensemble exactly but with
// the pre-refactor reference DFS as its search component: same candidate
// set, same order, same tie-breaking.
func referenceEnsembleNodes(tasks []Task, dfsNodes, trials int, rng *rand.Rand) Plan {
	candidates := []Plan{Naive(tasks), LoadBalanceOnly(tasks), GreedyRandomized(tasks, trials, rng)}
	if len(tasks) <= 20 {
		candidates = append(candidates, referenceDFSNodes(tasks, dfsNodes))
	}
	best := candidates[0]
	bestSpan := math.Inf(1)
	for _, c := range candidates {
		span, err := Makespan(tasks, c)
		if err != nil {
			continue
		}
		if span < bestSpan {
			best, bestSpan = c, span
		}
	}
	return best
}

// TestEnsembleNodesStopMatchesReference checks the full ensemble — not
// just its DFS component — against the reference implementation, both
// uncancelled under various node budgets and cancelled mid-search (the
// stop fires inside the DFS; the closed-form components always finish).
// The randomized component consumes its rng identically on both sides,
// so plans must be byte-identical.
func TestEnsembleNodesStopMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		tasks := randomDFSInstance(rng)
		seed := int64(trial)*7919 + 1
		for _, budget := range []int{1, 50, 2000, 50000} {
			got := EnsembleNodesStop(tasks, budget, 16, rand.New(rand.NewSource(seed)), nil)
			want := referenceEnsembleNodes(tasks, budget, 16, rand.New(rand.NewSource(seed)))
			if !reflect.DeepEqual(got.Order, want.Order) || !reflect.DeepEqual(got.Sender, want.Sender) {
				t.Fatalf("trial %d budget %d: ensemble diverged from reference\n got: %+v\nwant: %+v", trial, budget, got, want)
			}
		}
	}
	// Mid-search cancellation points on hard instances.
	hard := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		tasks := hardDFSInstance(hard)
		seed := int64(trial)*104729 + 13
		for _, m := range []int{1, 2, 4} {
			got := EnsembleNodesStop(tasks, 1<<30, 16, rand.New(rand.NewSource(seed)), stopAfter(m))
			want := referenceEnsembleNodes(tasks, m*StopStride-1, 16, rand.New(rand.NewSource(seed)))
			if !reflect.DeepEqual(got.Order, want.Order) || !reflect.DeepEqual(got.Sender, want.Sender) {
				t.Fatalf("trial %d m=%d: cancelled ensemble diverged from reference", trial, m)
			}
		}
	}
}
