package schedule

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// referenceDFSNodes is the pre-refactor dfsPruning (per-node map-based
// symmetry dedup, rendered-string keys) under a node budget. The optimized
// implementation must visit the same nodes in the same order, so with any
// equal budget it must return the identical plan — this differential test
// is what pins the stamp-array symmetry breaking to the original
// semantics.
func referenceDFSNodes(tasks []Task, maxNodes int) Plan {
	if len(tasks) == 0 {
		return Plan{Sender: map[int]int{}}
	}
	if maxNodes < 1 {
		maxNodes = 1
	}
	best := LoadBalanceOnly(tasks)
	bestSpan, err := Makespan(tasks, best)
	if err != nil {
		panic(err)
	}
	n := len(tasks)
	used := make([]bool, n)
	order := make([]int, 0, n)
	sender := map[int]int{}
	sendFree := map[int]float64{}
	recvFree := map[int]float64{}
	var expired bool
	checkCount := 0
	var dfs func(depth int, span float64)
	dfs = func(depth int, span float64) {
		if expired {
			return
		}
		checkCount++
		if checkCount > maxNodes {
			expired = true
			return
		}
		if span >= bestSpan {
			return
		}
		if depth == n {
			bestSpan = span
			cp := Plan{Sender: map[int]int{}, Order: append([]int(nil), order...)}
			for k, v := range sender {
				cp.Sender[k] = v
			}
			best = cp
			return
		}
		type key struct {
			s, r string
			d    float64
		}
		tried := map[key]bool{}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			t := tasks[i]
			k := key{fmt.Sprint(t.SenderHosts), fmt.Sprint(t.ReceiverHosts), t.Duration}
			if tried[k] {
				continue
			}
			tried[k] = true
			for _, s := range t.SenderHosts {
				start := sendFree[s]
				for _, r := range t.ReceiverHosts {
					if recvFree[r] > start {
						start = recvFree[r]
					}
				}
				finish := start + t.Duration
				newSpan := span
				if finish > newSpan {
					newSpan = finish
				}
				if newSpan >= bestSpan {
					continue
				}
				used[i] = true
				order = append(order, t.ID)
				sender[t.ID] = s
				oldSend := sendFree[s]
				oldRecv := make([]float64, len(t.ReceiverHosts))
				sendFree[s] = finish
				for j, r := range t.ReceiverHosts {
					oldRecv[j] = recvFree[r]
					recvFree[r] = finish
				}
				dfs(depth+1, newSpan)
				sendFree[s] = oldSend
				for j, r := range t.ReceiverHosts {
					recvFree[r] = oldRecv[j]
				}
				delete(sender, t.ID)
				order = order[:len(order)-1]
				used[i] = false
				if expired {
					return
				}
			}
		}
	}
	dfs(0, 0)
	return best
}

// randomDFSInstance generates a small instance with deliberately many
// symmetric (identical) tasks, the shape that exposes symmetry-breaking
// regressions.
func randomDFSInstance(rng *rand.Rand) []Task {
	hosts := 2 + rng.Intn(3)
	shapes := 1 + rng.Intn(3) // distinct task shapes; duplicates are symmetric
	type shape struct {
		senders, receivers []int
		dur                float64
	}
	mk := func() shape {
		ns := 1 + rng.Intn(2)
		nr := 1 + rng.Intn(2)
		var s, r []int
		for i := 0; i < ns; i++ {
			s = append(s, rng.Intn(hosts))
		}
		for i := 0; i < nr; i++ {
			r = append(r, hosts+rng.Intn(hosts))
		}
		return shape{s, r, float64(1 + rng.Intn(4))}
	}
	protos := make([]shape, shapes)
	for i := range protos {
		protos[i] = mk()
	}
	n := 3 + rng.Intn(6)
	tasks := make([]Task, n)
	for i := range tasks {
		p := protos[rng.Intn(shapes)]
		tasks[i] = Task{
			ID:            i,
			SenderHosts:   append([]int(nil), p.senders...),
			ReceiverHosts: append([]int(nil), p.receivers...),
			Duration:      p.dur,
		}
	}
	return tasks
}

// TestDFSMatchesReferenceUnderBudget checks that the optimized DFS and the
// pre-refactor reference return identical plans for identical node
// budgets — including tight budgets, where any difference in traversal or
// symmetry pruning changes where the search expires.
func TestDFSMatchesReferenceUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tasks := randomDFSInstance(rng)
		for _, budget := range []int{1, 7, 50, 400, 20000} {
			got := DFSPruningNodes(tasks, budget)
			want := referenceDFSNodes(tasks, budget)
			if !reflect.DeepEqual(got.Order, want.Order) || !reflect.DeepEqual(got.Sender, want.Sender) {
				t.Fatalf("trial %d budget %d: plan diverged from reference\n got: %+v\nwant: %+v\ntasks: %+v",
					trial, budget, got, want, tasks)
			}
		}
	}
}
