package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func twoIndependent() []Task {
	return []Task{
		{ID: 0, SenderHosts: []int{0}, ReceiverHosts: []int{2}, Duration: 3},
		{ID: 1, SenderHosts: []int{1}, ReceiverHosts: []int{3}, Duration: 5},
	}
}

func TestMakespanIndependentTasksOverlap(t *testing.T) {
	tasks := twoIndependent()
	p := Naive(tasks)
	span, err := Makespan(tasks, p)
	if err != nil || span != 5 {
		t.Errorf("span = %v, %v; want 5 (tasks on disjoint hosts overlap)", span, err)
	}
}

func TestMakespanSharedReceiverSerializes(t *testing.T) {
	tasks := []Task{
		{ID: 0, SenderHosts: []int{0}, ReceiverHosts: []int{2}, Duration: 3},
		{ID: 1, SenderHosts: []int{1}, ReceiverHosts: []int{2}, Duration: 5},
	}
	span, _ := Makespan(tasks, Naive(tasks))
	if span != 8 {
		t.Errorf("span = %v, want 8 (shared receiver serializes, Eq. 3)", span)
	}
}

func TestMakespanSharedSenderSerializes(t *testing.T) {
	tasks := []Task{
		{ID: 0, SenderHosts: []int{0}, ReceiverHosts: []int{2}, Duration: 3},
		{ID: 1, SenderHosts: []int{0}, ReceiverHosts: []int{3}, Duration: 5},
	}
	span, _ := Makespan(tasks, Naive(tasks))
	if span != 8 {
		t.Errorf("span = %v, want 8 (shared sender serializes)", span)
	}
}

func TestMakespanFullDuplex(t *testing.T) {
	// Host 1 receives task 0 while sending task 1: full duplex allows
	// overlap (§3's separate send/receive bandwidth).
	tasks := []Task{
		{ID: 0, SenderHosts: []int{0}, ReceiverHosts: []int{1}, Duration: 4},
		{ID: 1, SenderHosts: []int{1}, ReceiverHosts: []int{2}, Duration: 4},
	}
	span, _ := Makespan(tasks, Naive(tasks))
	if span != 4 {
		t.Errorf("span = %v, want 4 (full duplex)", span)
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	tasks := twoIndependent()
	good := Naive(tasks)
	if err := Validate(tasks, good); err != nil {
		t.Fatal(err)
	}
	if err := Validate(tasks, Plan{Sender: good.Sender, Order: []int{0}}); err == nil {
		t.Error("short order should fail")
	}
	if err := Validate(tasks, Plan{Sender: good.Sender, Order: []int{0, 0}}); err == nil {
		t.Error("duplicate order entry should fail")
	}
	if err := Validate(tasks, Plan{Sender: map[int]int{0: 9, 1: 1}, Order: []int{0, 1}}); err == nil {
		t.Error("non-candidate sender should fail")
	}
	if err := Validate(tasks, Plan{Sender: map[int]int{0: 0}, Order: []int{0, 1}}); err == nil {
		t.Error("missing sender should fail")
	}
	if err := Validate(tasks, Plan{Sender: good.Sender, Order: []int{0, 7}}); err == nil {
		t.Error("unknown task in order should fail")
	}
	dup := []Task{{ID: 3, SenderHosts: []int{0}, ReceiverHosts: []int{1}, Duration: 1}, {ID: 3, SenderHosts: []int{0}, ReceiverHosts: []int{1}, Duration: 1}}
	if err := Validate(dup, Plan{Sender: map[int]int{3: 0}, Order: []int{3, 3}}); err == nil {
		t.Error("duplicate task IDs should fail")
	}
}

func TestNaivePicksLowestSender(t *testing.T) {
	tasks := []Task{{ID: 0, SenderHosts: []int{3, 1, 2}, ReceiverHosts: []int{5}, Duration: 1}}
	p := Naive(tasks)
	if p.Sender[0] != 1 {
		t.Errorf("naive sender = %d, want 1", p.Sender[0])
	}
}

// TestLoadBalanceSpreadsSenders reproduces the paper's Fig. 8 case-2
// pathology: all tasks can be sent by either of two hosts; Naive sends
// everything from host 0 (congestion) while LoadBalanceOnly splits evenly.
func TestLoadBalanceSpreadsSenders(t *testing.T) {
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{ID: i, SenderHosts: []int{0, 1}, ReceiverHosts: []int{2 + i%4}, Duration: 1})
	}
	naiveSpan, _ := Makespan(tasks, Naive(tasks))
	lbSpan, _ := Makespan(tasks, LoadBalanceOnly(tasks))
	if naiveSpan != 8 {
		t.Errorf("naive span = %v, want 8", naiveSpan)
	}
	if lbSpan > naiveSpan/1.5 {
		t.Errorf("load-balanced span = %v, should clearly beat naive %v", lbSpan, naiveSpan)
	}
}

func TestLPTBalancesLoads(t *testing.T) {
	// Durations 4,3,3,2 over two senders: LPT assigns 4+2 vs 3+3 = 6/6.
	tasks := []Task{
		{ID: 0, SenderHosts: []int{0, 1}, ReceiverHosts: []int{2}, Duration: 4},
		{ID: 1, SenderHosts: []int{0, 1}, ReceiverHosts: []int{3}, Duration: 3},
		{ID: 2, SenderHosts: []int{0, 1}, ReceiverHosts: []int{4}, Duration: 3},
		{ID: 3, SenderHosts: []int{0, 1}, ReceiverHosts: []int{5}, Duration: 2},
	}
	p := LoadBalanceOnly(tasks)
	load := map[int]float64{}
	for _, task := range tasks {
		load[p.Sender[task.ID]] += task.Duration
	}
	if load[0] != 6 || load[1] != 6 {
		t.Errorf("LPT loads = %v, want 6/6", load)
	}
}

// TestDFSFindsOptimalOrder builds a case where sender choice alone cannot
// help — ordering matters. Two sender hosts each hold two tasks; receivers
// conflict so that a bad order forces idling.
func TestDFSFindsOptimalOrder(t *testing.T) {
	// Tasks: A (s0 -> r0), B (s0 -> r1), C (s1 -> r0), D (s1 -> r1).
	// Optimal: run A with D, then B with C: makespan 2. Bad order (A,C,B,D)
	// serializes on receivers: 2 as well with list scheduling... use
	// unequal durations to create a real gap.
	tasks := []Task{
		{ID: 0, SenderHosts: []int{0}, ReceiverHosts: []int{10}, Duration: 2},
		{ID: 1, SenderHosts: []int{0}, ReceiverHosts: []int{11}, Duration: 1},
		{ID: 2, SenderHosts: []int{1}, ReceiverHosts: []int{10}, Duration: 1},
		{ID: 3, SenderHosts: []int{1}, ReceiverHosts: []int{11}, Duration: 2},
	}
	p := DFSPruning(tasks, time.Second)
	span, err := Makespan(tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: pair (0 with 3) then (1 with 2): 2 + 1 = 3.
	if span > 3+1e-9 {
		t.Errorf("DFS span = %v, want 3", span)
	}
}

func TestDFSEmptyAndSmall(t *testing.T) {
	p := DFSPruning(nil, time.Millisecond)
	if len(p.Order) != 0 {
		t.Errorf("empty problem order = %v", p.Order)
	}
	one := []Task{{ID: 7, SenderHosts: []int{1, 2}, ReceiverHosts: []int{3}, Duration: 4}}
	p = DFSPruning(one, time.Second)
	span, err := Makespan(one, p)
	if err != nil || span != 4 {
		t.Errorf("single-task span = %v, %v", span, err)
	}
}

func TestGreedyRandomizedValidAndGood(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// The paper's observation: unit tasks of a resharding are mostly
	// identical, so randomized batching finds optimal packings. 4 sender
	// hosts x 4 receiver hosts, 16 identical tasks, all-to-all style.
	var tasks []Task
	id := 0
	for s := 0; s < 4; s++ {
		for r := 0; r < 4; r++ {
			tasks = append(tasks, Task{ID: id, SenderHosts: []int{s}, ReceiverHosts: []int{4 + r}, Duration: 1})
			id++
		}
	}
	p := GreedyRandomized(tasks, 32, rng)
	if err := Validate(tasks, p); err != nil {
		t.Fatal(err)
	}
	span, _ := Makespan(tasks, p)
	// Perfect packing: 4 rounds of 4 disjoint tasks.
	if span > 4+1e-9 {
		t.Errorf("greedy randomized span = %v, want 4", span)
	}
}

func TestEnsembleNeverWorseThanBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		var tasks []Task
		for i := 0; i < n; i++ {
			ns := 1 + r.Intn(3)
			senders := make([]int, ns)
			for j := range senders {
				senders[j] = r.Intn(4)
			}
			nr := 1 + r.Intn(3)
			recvs := make([]int, nr)
			for j := range recvs {
				recvs[j] = 4 + r.Intn(4)
			}
			tasks = append(tasks, Task{ID: i, SenderHosts: senders, ReceiverHosts: recvs, Duration: float64(1 + r.Intn(9))})
		}
		p := Ensemble(tasks, 50*time.Millisecond, 16, rng)
		if Validate(tasks, p) != nil {
			return false
		}
		span, err := Makespan(tasks, p)
		if err != nil {
			return false
		}
		naive, _ := Makespan(tasks, Naive(tasks))
		lb, _ := Makespan(tasks, LoadBalanceOnly(tasks))
		return span <= naive+1e-9 && span <= lb+1e-9 && span >= LowerBound(tasks)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLowerBound(t *testing.T) {
	tasks := []Task{
		{ID: 0, SenderHosts: []int{0}, ReceiverHosts: []int{5}, Duration: 3},
		{ID: 1, SenderHosts: []int{1}, ReceiverHosts: []int{5}, Duration: 4},
	}
	if lb := LowerBound(tasks); lb != 7 {
		t.Errorf("LowerBound = %v, want 7 (receiver 5 total)", lb)
	}
	if LowerBound(nil) != 0 {
		t.Error("empty lower bound should be 0")
	}
}

func TestMakespanRejectsInvalidPlan(t *testing.T) {
	tasks := twoIndependent()
	if _, err := Makespan(tasks, Plan{Sender: map[int]int{}, Order: []int{0, 1}}); err == nil {
		t.Error("invalid plan should be rejected")
	}
}

// Property: DFS with a generous budget is optimal on tiny instances
// (verified against brute force).
func TestDFSOptimalSmall(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		var tasks []Task
		for i := 0; i < n; i++ {
			tasks = append(tasks, Task{
				ID:            i,
				SenderHosts:   []int{r.Intn(2)},
				ReceiverHosts: []int{2 + r.Intn(2)},
				Duration:      float64(1 + r.Intn(5)),
			})
		}
		p := DFSPruning(tasks, time.Second)
		span, err := Makespan(tasks, p)
		if err != nil {
			return false
		}
		best := bruteForce(tasks)
		return math.Abs(span-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// bruteForce enumerates all orders (senders are single-candidate above).
func bruteForce(tasks []Task) float64 {
	n := len(tasks)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			p := Plan{Sender: map[int]int{}}
			for _, i := range perm {
				p.Order = append(p.Order, tasks[i].ID)
				p.Sender[tasks[i].ID] = tasks[i].SenderHosts[0]
			}
			if s, err := Makespan(tasks, p); err == nil && s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
