// Package schedule solves the paper's §3.2 load-balancing and ordering
// problem (Eq. 1-3): given the unit communication tasks of a cross-mesh
// resharding — each with candidate sender hosts n_i, receiver hosts m_i and
// duration T_i — pick one sender per task and an execution order that
// minimize the completion time of the last task, under the constraint that
// tasks sharing a host never overlap.
//
// Four algorithms are provided, mirroring the paper: Naive (lowest-index
// sender, arbitrary order), LoadBalanceOnly (classic LPT greedy on Eq. 4),
// DFSPruning (budgeted exhaustive search), and GreedyRandomized (iterative
// maximal non-conflicting batches). Ensemble runs all and keeps the best,
// which is AlpaComm's configuration ("we run both algorithms and choose
// the better result", §5.3.1).
package schedule

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Task is one host-level communication task.
type Task struct {
	// ID identifies the task; IDs must be unique within a problem.
	ID int
	// SenderHosts are the candidate hosts holding the data (n_i), at least
	// one.
	SenderHosts []int
	// ReceiverHosts are the hosts that must receive the data (m_i), at
	// least one.
	ReceiverHosts []int
	// Duration is the task's execution time T_i (e.g. bytes / NIC
	// bandwidth for a pipelined broadcast).
	Duration float64
}

// Plan is a solution: a sender per task and a launch order.
type Plan struct {
	// Sender maps task ID to the chosen sender host.
	Sender map[int]int
	// Order lists task IDs in launch order.
	Order []int
}

// Validate checks that the plan covers every task exactly once and picks
// senders from the candidate sets.
func Validate(tasks []Task, p Plan) error {
	if len(p.Order) != len(tasks) {
		return fmt.Errorf("schedule: order has %d entries for %d tasks", len(p.Order), len(tasks))
	}
	byID := make(map[int]*Task, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		if _, dup := byID[t.ID]; dup {
			return fmt.Errorf("schedule: duplicate task ID %d", t.ID)
		}
		byID[t.ID] = t
	}
	seen := map[int]bool{}
	for _, id := range p.Order {
		t, ok := byID[id]
		if !ok {
			return fmt.Errorf("schedule: order references unknown task %d", id)
		}
		if seen[id] {
			return fmt.Errorf("schedule: task %d appears twice in order", id)
		}
		seen[id] = true
		s, ok := p.Sender[id]
		if !ok {
			return fmt.Errorf("schedule: no sender chosen for task %d", id)
		}
		found := false
		for _, c := range t.SenderHosts {
			if c == s {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("schedule: sender %d for task %d not among candidates %v", s, id, t.SenderHosts)
		}
	}
	return nil
}

// Makespan evaluates a plan with list scheduling: tasks launch in Order;
// each starts as soon as its sender host and all receiver hosts are free,
// and occupies them for its duration (Eq. 3 exclusivity). Sender-side
// occupancy uses the host's send side and receiver-side occupancy the
// receive side — hosts are full duplex (§3), so a host may send one task
// while receiving another.
func Makespan(tasks []Task, p Plan) (float64, error) {
	if err := Validate(tasks, p); err != nil {
		return 0, err
	}
	byID := make(map[int]*Task, len(tasks))
	for i := range tasks {
		byID[tasks[i].ID] = &tasks[i]
	}
	sendFree := map[int]float64{}
	recvFree := map[int]float64{}
	var makespan float64
	for _, id := range p.Order {
		t := byID[id]
		s := p.Sender[id]
		start := sendFree[s]
		for _, r := range t.ReceiverHosts {
			if recvFree[r] > start {
				start = recvFree[r]
			}
		}
		finish := start + t.Duration
		sendFree[s] = finish
		for _, r := range t.ReceiverHosts {
			recvFree[r] = finish
		}
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan, nil
}

// LowerBound returns a makespan lower bound independent of the plan: the
// longest single task, and the heaviest receiver host's total incoming
// work.
func LowerBound(tasks []Task) float64 {
	lb := 0.0
	recvLoad := map[int]float64{}
	for _, t := range tasks {
		if t.Duration > lb {
			lb = t.Duration
		}
		seen := map[int]bool{}
		for _, r := range t.ReceiverHosts {
			if seen[r] {
				continue
			}
			seen[r] = true
			recvLoad[r] += t.Duration
		}
	}
	for _, v := range recvLoad {
		if v > lb {
			lb = v
		}
	}
	return lb
}

// Naive is the paper's baseline: every task is sent by its lowest-indexed
// candidate host, in task-ID order.
func Naive(tasks []Task) Plan {
	p := Plan{Sender: map[int]int{}}
	for _, t := range tasks {
		min := t.SenderHosts[0]
		for _, c := range t.SenderHosts {
			if c < min {
				min = c
			}
		}
		p.Sender[t.ID] = min
		p.Order = append(p.Order, t.ID)
	}
	return p
}

// LoadBalanceOnly solves the Eq. 4 relaxation with the classical LPT
// greedy: tasks sorted by descending duration, each assigned to the
// candidate sender with the lightest committed load. The order is the
// assignment order (longest first).
func LoadBalanceOnly(tasks []Task) Plan {
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if tasks[idx[a]].Duration != tasks[idx[b]].Duration {
			return tasks[idx[a]].Duration > tasks[idx[b]].Duration
		}
		return tasks[idx[a]].ID < tasks[idx[b]].ID
	})
	load := map[int]float64{}
	p := Plan{Sender: map[int]int{}}
	for _, i := range idx {
		t := tasks[i]
		best, bestLoad := -1, math.Inf(1)
		for _, c := range t.SenderHosts {
			if load[c] < bestLoad || (load[c] == bestLoad && c < best) {
				best, bestLoad = c, load[c]
			}
		}
		p.Sender[t.ID] = best
		load[best] += t.Duration
		p.Order = append(p.Order, t.ID)
	}
	return p
}

// GreedyLoad assigns each task, in input order, to the candidate sender
// with the lowest committed load (ties to the lower host id) — the
// input-order counterpart of LoadBalanceOnly, matching the baseline
// systems' load balancing (§5.1.2). It is cheap enough to run per task
// on the serving hot path.
func GreedyLoad(tasks []Task) Plan {
	load := map[int]float64{}
	p := Plan{Sender: map[int]int{}}
	for _, t := range tasks {
		best, bestLoad := -1, math.Inf(1)
		for _, c := range t.SenderHosts {
			if load[c] < bestLoad || (load[c] == bestLoad && c < best) {
				best, bestLoad = c, load[c]
			}
		}
		p.Sender[t.ID] = best
		load[best] += t.Duration
		p.Order = append(p.Order, t.ID)
	}
	return p
}

// GreedyEnsemble is the search-free companion of Ensemble: the best of
// Naive, LoadBalanceOnly and GreedyLoad by list-scheduled makespan. No
// DFS, no randomized trials, no RNG — O(n log n) and deterministic
// without a seed. This is the plan quality an overloaded server can
// afford while defending its latency SLO: the admission controller's
// degraded mode plans with it instead of the ensemble DFS.
func GreedyEnsemble(tasks []Task) Plan {
	return bestOf(tasks, []Plan{Naive(tasks), LoadBalanceOnly(tasks), GreedyLoad(tasks)})
}

// DFSPruning searches jointly over sender assignments and launch orders
// with depth-first search, pruning branches whose lower bound (current
// makespan, or any host's committed send load plus unavoidable future
// load) meets the best complete schedule found. The search stops at the
// time budget and returns the best plan seen; with a generous budget and
// few tasks (the paper reports < 20) the result is optimal.
func DFSPruning(tasks []Task, budget time.Duration) Plan {
	return dfsPruning(tasks, budget, 0, nil, nil)
}

// DFSPruningNodes is DFSPruning with a deterministic budget: the search
// visits at most maxNodes states instead of racing a wall clock, so the
// returned plan is a pure function of its inputs — identical across runs,
// machines and concurrent callers. The autotuner uses this variant.
func DFSPruningNodes(tasks []Task, maxNodes int) Plan {
	return DFSPruningNodesStop(tasks, maxNodes, nil)
}

// DFSPruningWarmStart is DFSPruningNodesStop seeded from an incumbent
// plan: when the incumbent is valid for the tasks, best/bestSpan start at
// the better of the incumbent and the LPT baseline, so pruning bites from
// node one instead of waiting for the search to rediscover a bound the
// caller already holds. An incremental replanner feeds the previous
// overlay's plan here; because the seed only tightens the bound, the
// search tree is a subset of the cold tree and the result is never worse
// at the host level than the incumbent. An invalid incumbent is ignored,
// making the call bit-identical to DFSPruningNodesStop.
func DFSPruningWarmStart(tasks []Task, maxNodes int, incumbent Plan, stop func() bool) Plan {
	if maxNodes < 1 {
		maxNodes = 1
	}
	return dfsPruning(tasks, 0, maxNodes, stop, &incumbent)
}

// clonePlan deep-copies a plan so a warm seed never aliases the caller's
// incumbent maps.
func clonePlan(p Plan) Plan {
	cp := Plan{Sender: make(map[int]int, len(p.Sender)), Order: append([]int(nil), p.Order...)}
	for id, s := range p.Sender {
		cp.Sender[id] = s
	}
	return cp
}

// StopStride is how many DFS nodes one budget slice spans: a stop function
// is polled once per slice, so an aborted search returns within one
// slice's worth of work while an uncancelled search never pays more than
// one predicate call per StopStride nodes.
const StopStride = 2048

// DFSPruningNodesStop is DFSPruningNodes with a cooperative abort: stop is
// polled between node-budget slices (every StopStride visited states) and
// a true return abandons the search, returning the best plan found so far.
// When stop never fires the result is bit-identical to DFSPruningNodes —
// polling does not perturb the exploration order.
func DFSPruningNodesStop(tasks []Task, maxNodes int, stop func() bool) Plan {
	if maxNodes < 1 {
		maxNodes = 1
	}
	return dfsPruning(tasks, 0, maxNodes, stop, nil)
}

// symmetryClasses assigns each task the index of the first task with
// identical (SenderHosts, ReceiverHosts, Duration). The DFS prunes with
// these classes: exploring two interchangeable tasks at one node explores
// the same subtree twice.
func symmetryClasses(tasks []Task) (classOf []int, classes int) {
	classOf = make([]int, len(tasks))
	for i := range tasks {
		classOf[i] = -1
		for j := 0; j < i; j++ {
			if sameTaskShape(&tasks[i], &tasks[j]) {
				classOf[i] = classOf[j]
				break
			}
		}
		if classOf[i] < 0 {
			classOf[i] = classes
			classes++
		}
	}
	return classOf, classes
}

func sameTaskShape(a, b *Task) bool {
	if a.Duration != b.Duration || len(a.SenderHosts) != len(b.SenderHosts) || len(a.ReceiverHosts) != len(b.ReceiverHosts) {
		return false
	}
	for i := range a.SenderHosts {
		if a.SenderHosts[i] != b.SenderHosts[i] {
			return false
		}
	}
	for i := range a.ReceiverHosts {
		if a.ReceiverHosts[i] != b.ReceiverHosts[i] {
			return false
		}
	}
	return true
}

// dfsPruning runs the search under a wall-clock budget (maxNodes == 0) or a
// node budget (maxNodes > 0; the clock is then ignored), polling stop (when
// non-nil) every StopStride nodes. All scratch state is allocated once up
// front: the per-node symmetry set is a stamp array over precomputed task
// classes and the rollback stack is one flat per-depth buffer, so the
// search allocates only when it improves on the incumbent plan. A non-nil
// warm plan seeds best/bestSpan when it is valid and beats the LPT
// baseline; seeding only tightens the bound, so every node a seeded search
// visits, the unseeded search visits too.
//
//alpacomm:hotpath
func dfsPruning(tasks []Task, budget time.Duration, maxNodes int, stop func() bool, warm *Plan) Plan {
	if len(tasks) == 0 {
		return Plan{Sender: map[int]int{}}
	}
	deadline := time.Now().Add(budget) //alpacomm:nondet-ok wall-clock budget is the documented non-reproducible mode; DFSNodes is the deterministic one

	// Seed with the LPT plan so pruning has a baseline.
	best := LoadBalanceOnly(tasks)
	bestSpan, err := Makespan(tasks, best)
	if err != nil {
		panic(err) // unreachable: LoadBalanceOnly plans are valid
	}
	if warm != nil {
		if ws, werr := Makespan(tasks, *warm); werr == nil && ws < bestSpan {
			best, bestSpan = clonePlan(*warm), ws
		}
	}

	n := len(tasks)
	used := make([]bool, n)
	order := make([]int, 0, n)
	sender := make([]int, n) // sender[i] is task i's committed sender host
	sendFree := map[int]float64{}
	recvFree := map[int]float64{}
	classOf, classes := symmetryClasses(tasks)
	// triedStamp[depth*classes+class] marks classes already tried at the
	// node currently active at that depth. Rows are per-depth so a node's
	// marks survive its descendants' recursion (deeper nodes write to
	// deeper rows), and stamping with the node's unique visit number makes
	// re-entering a depth reset its row for free.
	triedStamp := make([]int, n*classes)
	maxRecv := 0
	for i := range tasks {
		if len(tasks[i].ReceiverHosts) > maxRecv {
			maxRecv = len(tasks[i].ReceiverHosts)
		}
	}
	// recvSave[depth*maxRecv:] holds the pre-commit receiver frees of the
	// branch taken at that depth.
	recvSave := make([]float64, n*maxRecv)

	var expired bool
	checkCount := 0

	var dfs func(depth int, span float64)
	dfs = func(depth int, span float64) { //alpacomm:allow hotalloc recursive search closure, allocated once per search not per node
		if expired {
			return
		}
		checkCount++
		if maxNodes > 0 {
			if checkCount > maxNodes {
				expired = true
				return
			}
		} else if checkCount%1024 == 0 && time.Now().After(deadline) { //alpacomm:nondet-ok same opt-in wall-clock mode as the deadline above
			expired = true
			return
		}
		if stop != nil && checkCount%StopStride == 0 && stop() {
			expired = true
			return
		}
		if span >= bestSpan {
			return
		}
		if depth == n {
			bestSpan = span
			cp := Plan{Sender: make(map[int]int, n), Order: append([]int(nil), order...)}
			for i := 0; i < n; i++ {
				cp.Sender[tasks[i].ID] = sender[i]
			}
			best = cp
			return
		}
		// Symmetry breaking: among unscheduled tasks with identical
		// (senders, receivers, duration), try only the first.
		stamp := checkCount
		tried := triedStamp[depth*classes : (depth+1)*classes]
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			t := &tasks[i]
			if tried[classOf[i]] == stamp {
				continue
			}
			tried[classOf[i]] = stamp
			for _, s := range t.SenderHosts {
				start := sendFree[s]
				for _, r := range t.ReceiverHosts {
					if recvFree[r] > start {
						start = recvFree[r]
					}
				}
				finish := start + t.Duration
				newSpan := span
				if finish > newSpan {
					newSpan = finish
				}
				if newSpan >= bestSpan {
					continue
				}
				// Commit.
				used[i] = true
				order = append(order, t.ID)
				sender[i] = s
				oldSend := sendFree[s]
				oldRecv := recvSave[depth*maxRecv : depth*maxRecv+len(t.ReceiverHosts)]
				sendFree[s] = finish
				for j, r := range t.ReceiverHosts {
					oldRecv[j] = recvFree[r]
					recvFree[r] = finish
				}
				dfs(depth+1, newSpan)
				// Roll back.
				sendFree[s] = oldSend
				for j, r := range t.ReceiverHosts {
					recvFree[r] = oldRecv[j]
				}
				order = order[:len(order)-1]
				used[i] = false
				if expired {
					return
				}
			}
		}
	}
	dfs(0, 0)
	return best
}

// GreedyRandomized is the paper's scalable algorithm: repeatedly select a
// maximal set of mutually non-conflicting tasks (found as the best of
// `trials` random orderings), launch the set, and recurse on the rest.
// Senders within a batch are chosen to avoid conflicts and balance load.
// Scratch buffers are reused across trials and rounds, so one call
// allocates a fixed handful of objects regardless of trial count.
func GreedyRandomized(tasks []Task, trials int, rng *rand.Rand) Plan {
	if trials < 1 {
		trials = 1
	}
	remaining := make([]int, len(tasks))
	for i := range remaining {
		remaining[i] = i
	}
	load := map[int]float64{}
	p := Plan{Sender: map[int]int{}}
	type pick struct {
		taskIdx int
		sender  int
	}
	// Reused across trials and rounds; every per-trial structure is reset
	// by clearing, not reallocating.
	perm := make([]int, 0, len(tasks))
	var batch, bestBatch []pick
	usedSend := map[int]bool{}
	usedRecv := map[int]bool{}
	inBatch := make([]bool, len(tasks))
	rest := make([]int, 0, len(tasks))
	for len(remaining) > 0 {
		bestBatch = bestBatch[:0]
		bestHosts := -1
		for trial := 0; trial < trials; trial++ {
			perm = append(perm[:0], remaining...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			clear(usedSend)
			clear(usedRecv)
			batch = batch[:0]
			hosts := 0
			for _, ti := range perm {
				t := &tasks[ti]
				conflict := false
				for _, r := range t.ReceiverHosts {
					if usedRecv[r] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				// Pick a free candidate sender with the lightest load.
				s, sLoad := -1, math.Inf(1)
				for _, c := range t.SenderHosts {
					if usedSend[c] {
						continue
					}
					if load[c] < sLoad || (load[c] == sLoad && c < s) {
						s, sLoad = c, load[c]
					}
				}
				if s < 0 {
					continue
				}
				usedSend[s] = true
				for _, r := range t.ReceiverHosts {
					usedRecv[r] = true
				}
				batch = append(batch, pick{ti, s})
				hosts += 1 + len(t.ReceiverHosts)
			}
			if hosts > bestHosts {
				bestHosts = hosts
				bestBatch = append(bestBatch[:0], batch...)
			}
		}
		// Launch the batch, longest tasks first so stragglers start early.
		sort.SliceStable(bestBatch, func(a, b int) bool {
			return tasks[bestBatch[a].taskIdx].Duration > tasks[bestBatch[b].taskIdx].Duration
		})
		for _, b := range bestBatch {
			t := &tasks[b.taskIdx]
			p.Sender[t.ID] = b.sender
			p.Order = append(p.Order, t.ID)
			load[b.sender] += t.Duration
			inBatch[b.taskIdx] = true
		}
		rest = rest[:0]
		for _, ti := range remaining {
			if !inBatch[ti] {
				rest = append(rest, ti)
			}
		}
		remaining, rest = rest, remaining
	}
	return p
}

// Ensemble runs Naive, LoadBalanceOnly, GreedyRandomized and (for small
// problems) DFSPruning, and returns the plan with the smallest makespan.
// This is AlpaComm's production configuration.
func Ensemble(tasks []Task, dfsBudget time.Duration, trials int, rng *rand.Rand) Plan {
	return EnsembleStop(tasks, dfsBudget, trials, rng, nil)
}

// EnsembleStop is Ensemble with a cooperative abort threaded into its
// wall-clock DFS component: stop is polled every StopStride visited states
// alongside the deadline check, and a true return makes the DFS yield its
// incumbent early.
func EnsembleStop(tasks []Task, dfsBudget time.Duration, trials int, rng *rand.Rand, stop func() bool) Plan {
	return ensemble(tasks, func(t []Task) Plan { return dfsPruning(t, dfsBudget, 0, stop, nil) }, trials, rng)
}

// EnsembleNodes is Ensemble with the deterministic node-budgeted DFS, for
// callers that need bit-reproducible plans (the concurrent autotuner).
func EnsembleNodes(tasks []Task, dfsNodes, trials int, rng *rand.Rand) Plan {
	return EnsembleNodesStop(tasks, dfsNodes, trials, rng, nil)
}

// EnsembleNodesStop is EnsembleNodes with a cooperative abort threaded into
// its DFS component: stop is polled between node-budget slices, and a true
// return makes the DFS yield its incumbent early (the cheap closed-form
// components always run to completion). With stop nil — or never firing —
// the plan is bit-identical to EnsembleNodes.
func EnsembleNodesStop(tasks []Task, dfsNodes, trials int, rng *rand.Rand, stop func() bool) Plan {
	return ensemble(tasks, func(t []Task) Plan { return DFSPruningNodesStop(t, dfsNodes, stop) }, trials, rng)
}

// EnsembleWarmStart is EnsembleNodesStop with an incumbent plan threaded
// through: the DFS component runs warm-started (DFSPruningWarmStart) and
// the incumbent itself joins the candidate set as the final entry — so the
// returned plan's host-level makespan is never worse than the incumbent's,
// even on problems too large for the DFS to run. Ties break toward the
// earlier candidate, exactly as in the cold ensemble: an incumbent that
// merely matches the cold winner never displaces it, which keeps warm
// replans bit-identical to cold ones whenever the incumbent adds no new
// information. An invalid incumbent is ignored entirely, making the call
// bit-identical to EnsembleNodesStop.
func EnsembleWarmStart(tasks []Task, dfsNodes, trials int, rng *rand.Rand, incumbent Plan, stop func() bool) Plan {
	warm := &incumbent
	if _, err := Makespan(tasks, incumbent); err != nil {
		warm = nil
	}
	dfs := func(t []Task) Plan {
		if warm == nil {
			return DFSPruningNodesStop(t, dfsNodes, stop)
		}
		return DFSPruningWarmStart(t, dfsNodes, *warm, stop)
	}
	if warm == nil {
		return ensemble(tasks, dfs, trials, rng)
	}
	return ensemble(tasks, dfs, trials, rng, *warm)
}

// ensemble picks the best of the closed-form candidates, the DFS (on small
// problems) and any extra candidates appended after them; invalid extras
// are skipped by the makespan evaluation.
func ensemble(tasks []Task, dfs func([]Task) Plan, trials int, rng *rand.Rand, extra ...Plan) Plan {
	candidates := []Plan{Naive(tasks), LoadBalanceOnly(tasks), GreedyRandomized(tasks, trials, rng)}
	// DFS explodes combinatorially; the paper reports it fails beyond ~20
	// unit tasks, so only attempt it below that scale.
	if len(tasks) <= 20 {
		candidates = append(candidates, dfs(tasks))
	}
	candidates = append(candidates, extra...)
	return bestOf(tasks, candidates)
}

// bestOf returns the candidate with the smallest list-scheduled makespan,
// ties breaking toward the earlier candidate; invalid candidates are
// skipped by the makespan evaluation.
func bestOf(tasks []Task, candidates []Plan) Plan {
	best := candidates[0]
	bestSpan := math.Inf(1)
	for _, c := range candidates {
		span, err := Makespan(tasks, c)
		if err != nil {
			continue
		}
		if span < bestSpan {
			best, bestSpan = c, span
		}
	}
	return best
}
