package loadmodel

import (
	"math"
	"testing"
	"time"
)

// Property tests for the arrival processes: empirical rates match the
// configured rates within tolerance, identical seeds reproduce identical
// traces exactly, and derived per-agent seeds yield disjoint streams.

// empiricalRate counts arrivals over enough of the process to average out
// burst cycles and diurnal periods, and returns arrivals per second.
func empiricalRate(p Process, horizon time.Duration) float64 {
	n := 0
	for t := p.Next(); t < horizon; t += p.Next() {
		n++
	}
	return float64(n) / horizon.Seconds()
}

// TestEmpiricalMeanRate pins each distribution's long-run rate: the
// normalized bursty and diurnal shapes must deliver the same mean offered
// load as plain Poisson, or offered-vs-achieved comparisons across mixes
// would be meaningless.
func TestEmpiricalMeanRate(t *testing.T) {
	const rate = 500.0
	// Horizon covers many burst residences and diurnal periods. The MMPP
	// sets the length: its count variance is dominated by rate-switching
	// (std ≈ 2% of the mean at 1000s for these shapes), so 5% tolerance
	// keeps a comfortable margin. The processes are pure RNG draws; 500k
	// arrivals cost milliseconds.
	const horizon = 1000 * time.Second
	cases := []struct {
		name string
		p    Process
		want float64
	}{
		{"poisson", NewPoisson(rate, 1), rate},
		{"bursty", StandardBursty(rate, 2), rate},
		{"diurnal", StandardDiurnal(rate, 3), rate},
		{"bursty-custom", NewBursty(BurstyConfig{
			BaseRate: 100, BurstRate: 900,
			MeanBase: time.Second, MeanBurst: time.Second,
		}, 4), 500},
		{"diurnal-custom", NewDiurnal(DiurnalConfig{
			Trough: 200, Peak: 600, Period: 5 * time.Second,
		}, 5), 400},
	}
	for _, tc := range cases {
		got := empiricalRate(tc.p, horizon)
		if math.Abs(got-tc.want)/tc.want > 0.05 {
			t.Errorf("%s: empirical rate %.1f/s, want %.1f/s ±5%%", tc.name, got, tc.want)
		}
	}
}

// TestConfiguredMeanRate pins the analytic normalization the standard
// shapes rely on.
func TestConfiguredMeanRate(t *testing.T) {
	b := BurstyConfig{BaseRate: 100, BurstRate: 900, MeanBase: 3 * time.Second, MeanBurst: time.Second}
	if got := b.MeanRate(); math.Abs(got-300) > 1e-9 {
		t.Errorf("bursty mean rate = %v, want 300", got)
	}
	d := DiurnalConfig{Trough: 100, Peak: 500}
	if got := d.MeanRate(); got != 300 {
		t.Errorf("diurnal mean rate = %v, want 300", got)
	}
}

// TestSameSeedSameTrace pins exact reproducibility: two processes built
// from the same seed emit identical gaps, which is what makes BENCH
// entries byte-identical across reruns.
func TestSameSeedSameTrace(t *testing.T) {
	builders := map[string]func(seed uint64) Process{
		"poisson": func(s uint64) Process { return NewPoisson(1000, s) },
		"bursty":  func(s uint64) Process { return StandardBursty(1000, s) },
		"diurnal": func(s uint64) Process { return StandardDiurnal(1000, s) },
	}
	for name, build := range builders {
		a, b := build(42), build(42)
		for i := 0; i < 10000; i++ {
			if ga, gb := a.Next(), b.Next(); ga != gb {
				t.Fatalf("%s: gap %d diverges on identical seeds: %v vs %v", name, i, ga, gb)
			}
		}
	}
}

// TestOffsetsDeterministic pins the materialized schedule too: same seed,
// same offsets, strictly increasing, all inside the horizon.
func TestOffsetsDeterministic(t *testing.T) {
	a := Offsets(NewPoisson(2000, 7), time.Second)
	b := Offsets(NewPoisson(2000, 7), time.Second)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("offsets not reproducible: %d vs %d arrivals", len(a), len(b))
	}
	prev := time.Duration(-1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d diverges: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= prev || a[i] >= time.Second {
			t.Fatalf("offset %d = %v not strictly increasing within horizon", i, a[i])
		}
		prev = a[i]
	}
}

// TestDerivedSeedsDisjoint pins the sharding property: per-agent derived
// seeds never collide across a large fleet, and neighboring agents'
// streams are unrelated.
func TestDerivedSeedsDisjoint(t *testing.T) {
	const agents = 100000
	seen := make(map[uint64]int, agents)
	for i := 0; i < agents; i++ {
		s := DeriveSeed(12345, i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("agents %d and %d derive the same seed %#x", prev, i, s)
		}
		seen[s] = i
	}

	// Adjacent agents (the worst case for a weak mix) share no prefix of
	// their traces.
	a := NewPoisson(1000, DeriveSeed(12345, 0))
	b := NewPoisson(1000, DeriveSeed(12345, 1))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent agents share %d/1000 identical gaps", same)
	}
}

// TestDeriveSeedStableAcrossProcesses pins the exact derivation: agents
// are assigned by index, so the mapping must never change between builds
// or the sharding contract (and every committed BENCH entry) breaks.
func TestDeriveSeedStableAcrossProcesses(t *testing.T) {
	got := []uint64{DeriveSeed(0, 0), DeriveSeed(0, 1), DeriveSeed(1, 0)}
	want := []uint64{
		0xe220a8397b1dcdaf, // splitmix64(golden gamma)
		0x6e789e6aa1b965f4,
		0x910a2dec89025cc1,
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("DeriveSeed pin %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}
