// Package loadmodel generates the arrival processes behind the open-loop
// load generator: seeded, deterministic request schedules drawn from a
// Poisson process, a bursty (Markov-modulated) process or a diurnal rate
// curve.
//
// Open-loop means the schedule is fixed before the first request is sent:
// every request has an *intended* start time drawn from the process, and
// the generator dispatches at those times no matter how slowly the server
// answers. Latency is then measured from the intended start, so a stalled
// server accrues the queueing delay it actually caused instead of
// silently pausing the clock — the coordinated-omission correction. A
// closed loop (send, wait, send) measures only the server's good moods.
//
// Determinism is load-bearing: BENCH entries must be byte-identical
// across reruns with the same seed, and a fleet of generator agents must
// be shardable across processes without coordination. Both come from the
// same mechanism — every process is driven by a *rand.Rand built from an
// explicit seed, and per-agent seeds are derived with DeriveSeed's
// splitmix64 mix, so agent i's stream is a pure function of (base seed,
// i) wherever it runs. Nothing in this package reads the wall clock.
package loadmodel

import (
	"math"
	"math/rand"
	"time"
)

// Process is one arrival stream: Next returns the gap to the next
// arrival. Implementations are deterministic in their seed and are not
// safe for concurrent use — one Process per agent.
type Process interface {
	Next() time.Duration
}

// DeriveSeed mixes an agent index into a base seed (splitmix64 finalizer
// over base + i·golden gamma). Distinct agents get statistically
// independent streams; the same (base, agent) pair derives the same seed
// in every process, which is what makes a fleet shardable.
func DeriveSeed(base uint64, agent int) uint64 {
	z := base + uint64(agent+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Offsets materializes a process into absolute intended-start offsets
// (from schedule start) up to and excluding horizon. These are the
// timestamps coordinated-omission-corrected latency is measured from.
func Offsets(p Process, horizon time.Duration) []time.Duration {
	var out []time.Duration
	for t := p.Next(); t < horizon; t += p.Next() {
		out = append(out, t)
	}
	return out
}

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(seed)))
}

// expGap draws one exponential interarrival at the given rate (arrivals
// per second).
func expGap(rng *rand.Rand, rate float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// Poisson is a homogeneous Poisson process: i.i.d. exponential
// interarrivals with mean 1/rate. The memoryless baseline every open-loop
// benchmark should include.
type Poisson struct {
	rng  *rand.Rand
	rate float64
}

// NewPoisson builds a Poisson process at rate arrivals per second.
func NewPoisson(rate float64, seed uint64) *Poisson {
	return &Poisson{rng: newRand(seed), rate: rate}
}

func (p *Poisson) Next() time.Duration {
	return expGap(p.rng, p.rate)
}

// BurstyConfig shapes a two-state Markov-modulated Poisson process:
// exponentially-distributed residences in a base state and a burst state,
// each emitting Poisson arrivals at its own rate.
type BurstyConfig struct {
	// BaseRate / BurstRate are the arrival rates (per second) in each state.
	BaseRate  float64
	BurstRate float64
	// MeanBase / MeanBurst are the mean residence times in each state.
	MeanBase  time.Duration
	MeanBurst time.Duration
}

// MeanRate is the long-run arrival rate of the process: the
// residence-weighted average of the two state rates.
func (c BurstyConfig) MeanRate() float64 {
	base := c.MeanBase.Seconds()
	burst := c.MeanBurst.Seconds()
	return (c.BaseRate*base + c.BurstRate*burst) / (base + burst)
}

// Bursty is the MMPP: the on/off pattern that defeats admission
// controllers tuned on smooth averages, which is exactly why the SLO
// tests drive the server with it.
type Bursty struct {
	cfg       BurstyConfig
	rng       *rand.Rand
	inBurst   bool
	remaining time.Duration // time left in the current state
}

// NewBursty builds the process; it starts in the base state.
func NewBursty(cfg BurstyConfig, seed uint64) *Bursty {
	b := &Bursty{cfg: cfg, rng: newRand(seed)}
	b.remaining = b.drawResidence()
	return b
}

// StandardBursty is the benchmark shape: 25% duty cycle at 3x the mean
// rate against a base of mean/3, normalized so the long-run rate is
// exactly the requested one, with 400ms/1200ms burst/base residences.
func StandardBursty(rate float64, seed uint64) *Bursty {
	return NewBursty(BurstyConfig{
		BaseRate:  rate / 3,
		BurstRate: 3 * rate,
		MeanBase:  1200 * time.Millisecond,
		MeanBurst: 400 * time.Millisecond,
	}, seed)
}

func (b *Bursty) drawResidence() time.Duration {
	mean := b.cfg.MeanBase
	if b.inBurst {
		mean = b.cfg.MeanBurst
	}
	return time.Duration(b.rng.ExpFloat64() * float64(mean))
}

func (b *Bursty) rate() float64 {
	if b.inBurst {
		return b.cfg.BurstRate
	}
	return b.cfg.BaseRate
}

// Next simulates the MMPP exactly: draw a gap at the current state's
// rate; if it crosses the state boundary, consume the residue, switch
// state and redraw — valid because exponential arrivals are memoryless,
// so conditioning on "no arrival before the switch" leaves a fresh
// exponential at the new rate.
func (b *Bursty) Next() time.Duration {
	var elapsed time.Duration
	for {
		gap := expGap(b.rng, b.rate())
		if gap < b.remaining {
			b.remaining -= gap
			return elapsed + gap
		}
		elapsed += b.remaining
		b.inBurst = !b.inBurst
		b.remaining = b.drawResidence()
	}
}

// DiurnalConfig shapes a sinusoidal rate curve: rate(t) oscillates
// between Trough and Peak with the given Period, starting at the mean and
// rising. The long-run rate is (Trough+Peak)/2.
type DiurnalConfig struct {
	Trough float64 // minimum arrival rate, per second
	Peak   float64 // maximum arrival rate, per second
	Period time.Duration
}

// MeanRate is the long-run arrival rate of the curve.
func (c DiurnalConfig) MeanRate() float64 { return (c.Trough + c.Peak) / 2 }

// Diurnal is an inhomogeneous Poisson process over the sinusoidal curve,
// sampled by Lewis-Shedler thinning: candidate arrivals at the peak rate,
// each kept with probability rate(t)/Peak.
type Diurnal struct {
	cfg DiurnalConfig
	rng *rand.Rand
	t   time.Duration // absolute time of the last emitted arrival
}

// NewDiurnal builds the process.
func NewDiurnal(cfg DiurnalConfig, seed uint64) *Diurnal {
	return &Diurnal{cfg: cfg, rng: newRand(seed)}
}

// StandardDiurnal is the benchmark shape: a curve between rate/2 and
// 3·rate/2 — mean exactly the requested rate — with a 10s period, so a
// short run still sees full peaks and troughs.
func StandardDiurnal(rate float64, seed uint64) *Diurnal {
	return NewDiurnal(DiurnalConfig{
		Trough: rate / 2,
		Peak:   3 * rate / 2,
		Period: 10 * time.Second,
	}, seed)
}

// rateAt evaluates the curve at absolute time t.
func (d *Diurnal) rateAt(t time.Duration) float64 {
	mean := d.cfg.MeanRate()
	amp := (d.cfg.Peak - d.cfg.Trough) / 2
	return mean + amp*math.Sin(2*math.Pi*t.Seconds()/d.cfg.Period.Seconds())
}

func (d *Diurnal) Next() time.Duration {
	prev := d.t
	for {
		d.t += expGap(d.rng, d.cfg.Peak)
		if d.rng.Float64()*d.cfg.Peak <= d.rateAt(d.t) {
			return d.t - prev
		}
	}
}
