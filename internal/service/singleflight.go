package service

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent duplicate work: while a call for a key
// is in flight, later callers for the same key wait for its result instead
// of computing their own. Unlike a cache, nothing is retained once the
// call completes — retention is the PlanCache's job.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  interface{}
	err  error
}

// do runs fn for key, or — if an identical call is already in flight —
// waits for that call and returns its result. shared reports whether the
// result came from another caller's flight. A waiter whose ctx ends
// before the flight completes returns ctx.Err() immediately, so a
// disconnected client never pins its handler goroutine on a long
// computation it no longer wants (the leader itself is not cancellable —
// its result may still serve other waiters).
//
// A panicking fn still releases the key and wakes its waiters with an
// error (the panic itself propagates to the leader's caller); otherwise
// one panic would poison the key for the life of the process, hanging
// every later request that coalesces onto the dead flight.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (interface{}, error)) (val interface{}, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	finished := false
	defer func() {
		if !finished {
			c.val, c.err = nil, fmt.Errorf("service: in-flight call panicked")
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, c.err, false
}
