package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// faultyReq is testReq with a straggler-host overlay attached.
func faultyReq(seed int64, faults *FaultsRef) *PlanRequest {
	req := testReq(seed)
	req.Faults = faults
	return req
}

var stragglerFaults = &FaultsRef{Hosts: []HostFaultRef{{Host: 1, NICScale: 0.5}}}

// TestV2PlanWithFaults: a /v2/plan request with a faults block plans
// against the degraded topology — slower than healthy, keyed apart from
// healthy, and cached separately.
func TestV2PlanWithFaults(t *testing.T) {
	s, client := newTestServer(t, Config{})
	ctx := context.Background()

	healthy, err := client.PlanV2(ctx, testReq(3))
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := client.PlanV2(ctx, faultyReq(3, stragglerFaults))
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Key == healthy.Key {
		t.Error("degraded and healthy requests share a cache key")
	}
	if degraded.MakespanSeconds <= healthy.MakespanSeconds {
		t.Errorf("halving host 1's NIC should slow the plan: degraded %g vs healthy %g",
			degraded.MakespanSeconds, healthy.MakespanSeconds)
	}
	if stats := s.Cache().Stats(); stats.Entries != 2 {
		t.Errorf("cache entries = %d, want 2 (healthy + degraded partitions)", stats.Entries)
	}
	// Re-requesting the degraded plan is a hit on the degraded entry.
	again, err := client.PlanV2(ctx, faultyReq(3, stragglerFaults))
	if err != nil {
		t.Fatal(err)
	}
	if again.Key != degraded.Key || again.MakespanSeconds != degraded.MakespanSeconds {
		t.Error("degraded re-request did not reuse the degraded entry")
	}
	// An empty faults block is the healthy request.
	empty, err := client.PlanV2(ctx, faultyReq(3, &FaultsRef{}))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Key != healthy.Key {
		t.Error("empty faults block must be byte-identical to omitting it")
	}
}

// TestV2PlanFaultScenario: a named registry scenario resolves against the
// request's topology.
func TestV2PlanFaultScenario(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	req := testReq(3)
	req.Topology.Hosts = 4 // link-down needs a detour host
	req.Src.Mesh, req.Dst.Mesh = "2x2@0", "2x2@4"
	healthy, err := client.PlanV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, scenario := range []string{"link-down", "brownout", "straggler"} {
		dreq := *req
		dreq.Faults = &FaultsRef{Scenario: scenario}
		degraded, err := client.PlanV2(ctx, &dreq)
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		// The straggler scenario hits host 3 only, which this boundary
		// never touches — its key legitimately stays healthy. The other
		// scenarios degrade the involved hosts and must re-key.
		if scenario != "straggler" && degraded.Key == healthy.Key {
			t.Errorf("%s: degraded key equals healthy key", scenario)
		}
		if degraded.MakespanSeconds < healthy.MakespanSeconds {
			t.Errorf("%s: degraded makespan %g beats healthy %g", scenario, degraded.MakespanSeconds, healthy.MakespanSeconds)
		}
	}
}

// TestV2MalformedFaults: every malformed faults block fails with a
// structured invalid_argument envelope, not a 500 or a silent ignore.
func TestV2MalformedFaults(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	cases := []struct {
		name   string
		faults *FaultsRef
	}{
		{"unknown scenario", &FaultsRef{Scenario: "meteor-strike"}},
		{"host out of range", &FaultsRef{Hosts: []HostFaultRef{{Host: 99, NICScale: 0.5}}}},
		{"scale above one", &FaultsRef{Hosts: []HostFaultRef{{Host: 0, NICScale: 1.5}}}},
		{"no-op host fault", &FaultsRef{Hosts: []HostFaultRef{{Host: 0}}}},
		{"self link", &FaultsRef{Links: []LinkFaultRef{{A: 1, B: 1, Down: true}}}},
		{"down with scale", &FaultsRef{Links: []LinkFaultRef{{A: 0, B: 1, Down: true, BandwidthScale: 0.5}}}},
		{"negative latency", &FaultsRef{Links: []LinkFaultRef{{A: 0, B: 1, ExtraLatencySeconds: -1}}}},
		{"isolating down link", &FaultsRef{Links: []LinkFaultRef{{A: 0, B: 1, Down: true}}}}, // 2 hosts: no detour
		{"duplicate link", &FaultsRef{Links: []LinkFaultRef{{A: 0, B: 1, BandwidthScale: 0.5}, {A: 1, B: 0, BandwidthScale: 0.25}}}},
	}
	for _, c := range cases {
		status, body := postRaw(t, ts.URL, "/v2/plan", faultyReq(3, c.faults))
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, status, body)
			continue
		}
		var env V2ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: bad envelope: %v", c.name, err)
			continue
		}
		if env.Error.Code != CodeInvalidArgument {
			t.Errorf("%s: code = %q, want %q (message %q)", c.name, env.Error.Code, CodeInvalidArgument, env.Error.Message)
		}
		if !strings.Contains(env.Error.Message, "faults") && !strings.Contains(env.Error.Message, "fault") {
			t.Errorf("%s: message %q does not mention the faults block", c.name, env.Error.Message)
		}
	}

	// Oversized fault lists are rejected before validation work.
	big := &FaultsRef{}
	for i := 0; i < MaxFaultEntries+1; i++ {
		big.Hosts = append(big.Hosts, HostFaultRef{Host: i, NICScale: 0.5})
	}
	if status, _ := postRaw(t, ts.URL, "/v2/plan", faultyReq(3, big)); status != http.StatusBadRequest {
		t.Errorf("oversized faults block: status = %d, want 400", status)
	}
}

// TestV1RejectsFaults: the /v1 endpoints refuse a faults block outright
// instead of silently planning healthy.
func TestV1RejectsFaults(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	status, body := postRaw(t, ts.URL, "/v1/plan", faultyReq(3, stragglerFaults))
	if status != http.StatusBadRequest || !strings.Contains(string(body), "/v2") {
		t.Errorf("/v1/plan with faults: status %d body %s, want 400 pointing at /v2", status, body)
	}
	areq := &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Faults:   stragglerFaults,
	}
	status, body = postRaw(t, ts.URL, "/v1/autotune", areq)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "/v2") {
		t.Errorf("/v1/autotune with faults: status %d body %s, want 400 pointing at /v2", status, body)
	}
}

// TestV2BatchWithFaults: a degraded batch plans every boundary against
// the overlay, partitions from the healthy batch, and still collapses
// congruent items to one class.
func TestV2BatchWithFaults(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	mkBatch := func(faults *FaultsRef) *BatchPlanRequest {
		req := &BatchPlanRequest{
			Topology: TopologyRef{Name: "p3", Hosts: 4},
			Faults:   faults,
		}
		for s := 0; s < 3; s++ {
			req.Items = append(req.Items, BatchPlanItem{
				Shape: []int{64, 96},
				Src:   Endpoint{Mesh: fmt.Sprintf("2x2@%d", 4*s), Spec: "S01R"},
				Dst:   Endpoint{Mesh: fmt.Sprintf("2x2@%d", 4*(s+1)), Spec: "S0R"},
			})
		}
		return req
	}
	healthy, err := client.PlanBatch(ctx, mkBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Brownout degrades every link, so every item re-keys.
	degraded, err := client.PlanBatch(ctx, mkBatch(&FaultsRef{Scenario: "brownout"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded.Items) != len(healthy.Items) {
		t.Fatalf("item counts differ: %d vs %d", len(degraded.Items), len(healthy.Items))
	}
	for i := range degraded.Items {
		h, d := healthy.Items[i], degraded.Items[i]
		if h.Error != nil || d.Error != nil {
			t.Fatalf("item %d errored: healthy %v degraded %v", i, h.Error, d.Error)
		}
		if d.Plan.Key == h.Plan.Key {
			t.Errorf("item %d: degraded batch shares the healthy key", i)
		}
		if d.Plan.MakespanSeconds <= h.Plan.MakespanSeconds {
			t.Errorf("item %d: brownout makespan %g does not exceed healthy %g", i, d.Plan.MakespanSeconds, h.Plan.MakespanSeconds)
		}
	}
	// Congruent boundaries still collapse: this GPT-style chain is one
	// equivalence class, healthy or degraded.
	if healthy.Distinct != 1 || degraded.Distinct != 1 {
		t.Errorf("distinct classes: healthy %d degraded %d, want 1 and 1", healthy.Distinct, degraded.Distinct)
	}

	// A malformed overlay fails the items that carried it (the faults
	// block is batch-level, so the whole batch reports invalid_argument).
	bad, err := client.PlanBatch(ctx, mkBatch(&FaultsRef{Hosts: []HostFaultRef{{Host: 77, NICScale: 0.5}}}))
	if err == nil {
		for i, it := range bad.Items {
			if it.Error == nil || it.Error.Code != CodeInvalidArgument {
				t.Errorf("item %d: error = %+v, want invalid_argument", i, it.Error)
			}
		}
	}
}
