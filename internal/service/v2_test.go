package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// postRaw posts a JSON body and returns status plus raw response bytes.
func postRaw(t *testing.T, url, path string, payload interface{}) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestV1V2PlanParity pins the satellite requirement: the same request on
// /v1/plan and /v2/plan returns a byte-identical plan payload.
func TestV1V2PlanParity(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	req := testReq(3)
	st1, body1 := postRaw(t, ts.URL, "/v1/plan", req)
	st2, body2 := postRaw(t, ts.URL, "/v2/plan", req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("status v1=%d v2=%d, body1=%s body2=%s", st1, st2, body1, body2)
	}
	// /v2 serves the identical payload struct; only Coalesced may differ
	// (the second call can hit the cache warmed by the first), so compare
	// the decoded plans field by field.
	var r1, r2 PlanResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	r1.Coalesced, r2.Coalesced = false, false
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("v1 and v2 plans differ:\nv1: %+v\nv2: %+v", r1, r2)
	}
}

// TestV1V2AutotuneParity: the grid-search winner and trial table agree
// across versions.
func TestV1V2AutotuneParity(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  PlanOptions{Seed: 5},
	}
	r1, err := client.Autotune(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.AutotuneV2(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r1.Coalesced, r2.Coalesced = false, false
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("v1 and v2 autotune differ:\nv1: %+v\nv2: %+v", r1, r2)
	}
}

// gptBoundaryBatch builds a batch shaped like a GPT pipeline job: pp
// stages on consecutive 2x2 meshes of a p3 cluster, every boundary
// resharding the same activation tensor — so all boundaries are congruent
// under host translation.
func gptBoundaryBatch(pp int) *BatchPlanRequest {
	req := &BatchPlanRequest{
		Topology: TopologyRef{Name: "p3", Hosts: pp},
	}
	for s := 0; s < pp-1; s++ {
		req.Items = append(req.Items, BatchPlanItem{
			Shape:   []int{64, 96},
			Src:     Endpoint{Mesh: fmt.Sprintf("2x2@%d", 4*s), Spec: "S01R"},
			Dst:     Endpoint{Mesh: fmt.Sprintf("2x2@%d", 4*(s+1)), Spec: "S0R"},
			Options: PlanOptions{Seed: 3},
		})
	}
	return req
}

// TestBatchMatchesSequentialV1 pins the acceptance criterion: every
// /v2/plan:batch item is byte-identical to the same boundary planned via
// /v1/plan, while the batch costs at most one planner computation per
// congruent-boundary equivalence class.
func TestBatchMatchesSequentialV1(t *testing.T) {
	s, client := newTestServer(t, Config{})
	const pp = 8
	req := gptBoundaryBatch(pp)

	batch, err := client.PlanBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != pp-1 {
		t.Fatalf("batch returned %d items, want %d", len(batch.Items), pp-1)
	}
	if batch.Distinct != 1 {
		t.Errorf("the %d congruent GPT boundaries should collapse to 1 class, got %d", pp-1, batch.Distinct)
	}
	// One planner computation total: one cache miss, everything else hits.
	if st := s.Cache().Stats(); st.Misses != 1 {
		t.Errorf("batch cost %d planner computations, want 1 (stats %+v)", st.Misses, st)
	}

	for i, item := range batch.Items {
		if item.Error != nil {
			t.Fatalf("item %d: %+v", i, item.Error)
		}
		single, err := client.Plan(context.Background(), &PlanRequest{
			Topology: req.Topology,
			Shape:    req.Items[i].Shape,
			DType:    req.Items[i].DType,
			Src:      req.Items[i].Src,
			Dst:      req.Items[i].Dst,
			Options:  req.Items[i].Options,
		})
		if err != nil {
			t.Fatalf("sequential /v1/plan %d: %v", i, err)
		}
		got, want := *item.Plan, *single
		got.Coalesced, want.Coalesced = false, false
		if !reflect.DeepEqual(got, want) {
			t.Errorf("item %d diverges from /v1/plan:\nbatch: %+v\nv1:    %+v", i, got, want)
		}
	}

	// Distinct senders per boundary: the shared plan must be remapped into
	// each item's own meshes, not replayed verbatim.
	if reflect.DeepEqual(batch.Items[0].Plan.Senders, batch.Items[1].Plan.Senders) {
		t.Errorf("boundaries 0 and 1 report identical senders %v; translation remap is missing",
			batch.Items[0].Plan.Senders)
	}
}

// TestBatchPartialItemErrors: malformed items fail alone with a structured
// code while sibling items still plan.
func TestBatchPartialItemErrors(t *testing.T) {
	_, client := newTestServer(t, Config{})
	req := gptBoundaryBatch(3)
	req.Items[1].Src.Spec = "BOGUS"
	batch, err := client.PlanBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Items[0].Plan == nil || batch.Items[0].Error != nil {
		t.Errorf("healthy item 0 should plan, got %+v", batch.Items[0].Error)
	}
	if batch.Items[1].Error == nil || batch.Items[1].Error.Code != CodeInvalidArgument {
		t.Errorf("bogus item 1 should fail with %s, got %+v", CodeInvalidArgument, batch.Items[1])
	}
}

// TestBatchBounds: empty and oversized batches are rejected with the
// structured envelope.
func TestBatchBounds(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	st, body := postRaw(t, ts.URL, "/v2/plan:batch", &BatchPlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}})
	if st != http.StatusBadRequest {
		t.Errorf("empty batch: status %d body %s", st, body)
	}
	var env V2ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeInvalidArgument {
		t.Errorf("empty batch envelope = %s (err %v)", body, err)
	}

	big := gptBoundaryBatch(3)
	for len(big.Items) <= MaxBatchItems {
		big.Items = append(big.Items, big.Items[0])
	}
	if st, body := postRaw(t, ts.URL, "/v2/plan:batch", big); st != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d body %s", st, body)
	}
}

// TestV2ErrorEnvelope: classification of bad method, bad body and
// unplannable requests into machine-readable codes.
func TestV2ErrorEnvelope(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v2/plan")
	if err != nil {
		t.Fatal(err)
	}
	var env V2ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != CodeMethodNotAllowed {
		t.Errorf("GET /v2/plan: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	bad := testReq(1)
	bad.Topology.Name = "no-such-fabric"
	st, body := postRaw(t, ts.URL, "/v2/plan", bad)
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	if st != http.StatusBadRequest || env.Error.Code != CodeInvalidArgument {
		t.Errorf("bad topology: status %d code %q", st, env.Error.Code)
	}
	if env.Error.Retryable {
		t.Error("invalid_argument must not be retryable")
	}
}

// TestV2DeadlineHeader: an absurdly small propagated budget fires before a
// heavy search completes and maps to 504/deadline_exceeded (retryable).
func TestV2DeadlineHeader(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	req := &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 4},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x4@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x4@8", Spec: "RS0"},
		// A 16-unit boundary with the maximum DFS budget: far more search
		// than a 1ms deadline allows.
		Options: PlanOptions{Seed: 1, DFSNodes: MaxDFSNodes},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/autotune", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(TimeoutHeader, "1")
	start := time.Now()
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env V2ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout || env.Error.Code != CodeDeadlineExceeded {
		t.Errorf("deadline: status %d envelope %+v", resp.StatusCode, env.Error)
	}
	if !env.Error.Retryable {
		t.Error("deadline_exceeded must be retryable")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline response took %v; the search was not aborted", elapsed)
	}

	// Bad header values are rejected up front.
	hreq2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/autotune", bytes.NewReader(body))
	hreq2.Header.Set("Content-Type", "application/json")
	hreq2.Header.Set(TimeoutHeader, "soon")
	resp2, err := http.DefaultClient.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad %s header: status %d", TimeoutHeader, resp2.StatusCode)
	}
}

// TestClientDeadlinePropagation: a client ctx deadline reaches the server
// as X-Timeout-Ms and surfaces as a typed retryable APIError.
func TestClientDeadlinePropagation(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := client.AutotuneV2(ctx, &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 4},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x4@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x4@8", Spec: "RS0"},
		Options:  PlanOptions{Seed: 1, DFSNodes: MaxDFSNodes},
	})
	if err == nil {
		t.Fatal("a 2ms budget cannot finish a maximum-budget grid search")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.Code != CodeDeadlineExceeded || !apiErr.Retryable {
			t.Errorf("want retryable %s, got %+v", CodeDeadlineExceeded, apiErr)
		}
	}
	// err may also be the client-side context error if the local deadline
	// fired before the response; both are acceptable abort signals.
}
