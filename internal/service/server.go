// Package service is the plan-serving subsystem: an HTTP+JSON API that
// turns the resharding planner into a multi-tenant service.
//
// The paper invokes the planner once per training job; a production
// deployment serves resharding plans to many concurrent jobs, most of
// which ask structurally identical questions. The server therefore layers
// three mechanisms in front of the planner:
//
//   - Request coalescing: duplicate in-flight requests (same canonical
//     resharding.CacheKey) share one computation — N clients asking for
//     the same boundary at once cost one planning pass and zero extra
//     worker slots.
//
//   - A bounded LRU plan cache (resharding.NewLRUPlanCache): completed
//     plans are retained up to a fixed capacity with least-recently-used
//     eviction, so memory stays flat under millions of distinct requests
//     while the hot working set stays resident.
//
//   - Admission control with backpressure: each endpoint runs its
//     requests on a bounded worker pool with a bounded wait queue.
//     Overflow is rejected immediately with 429 and a Retry-After header.
//     Plan and autotune have separate pools, so a burst of grid searches
//     (one autotune = 20 planning passes) cannot starve cheap cached
//     lookups. Request parsing itself (topology construction, task
//     decomposition, key rendering) runs under its own bounded intake
//     gate, and every client-supplied effort parameter is capped, so no
//     stage of a request runs with unbounded concurrency or unbounded
//     cost.
//
// Endpoints:
//
//	POST /v1/plan       — plan and simulate one resharding (PlanRequest).
//	POST /v1/autotune   — strategy x scheduler grid search (AutotuneRequest).
//	GET  /v1/stats      — cache, coalescing and admission counters.
//	POST /v2/plan       — /v1/plan semantics, v2 error envelope + deadline.
//	POST /v2/autotune   — /v1/autotune semantics, v2 envelope + deadline.
//	POST /v2/plan:batch — plan every stage boundary of a pipeline job in
//	                      one request (BatchPlanRequest); congruent
//	                      boundaries cost one planner computation total.
//
// Every handler is an adapter over one resharding.Planner session, so the
// caches, coalescing and cancellation behavior are identical no matter
// which API version a client speaks: /v1 keeps its original flat error
// body, /v2 adds a structured machine-readable error envelope (see V2Error)
// and deadline propagation via the X-Timeout-Ms header. A client that
// disconnects — or whose propagated deadline fires — while its request is
// queued or mid-search aborts the work instead of riding it out.
//
// Topologies are named, not transmitted: requests reference presets of a
// mesh.Registry ("p3", "dgx-a100", "mixed") plus host count and fabric
// oversubscription. Planning is deterministic — the service forces a
// node-budgeted DFS — so identical requests return identical plans
// regardless of server load, machine speed, or which replica answered.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
)

// DefaultCacheCapacity bounds the plan cache when Config.Cache is nil.
const DefaultCacheCapacity = 4096

// Config configures a Server. The zero value is usable: default registry,
// a bounded LRU cache of DefaultCacheCapacity entries, GOMAXPROCS plan
// workers, and half as many autotune workers.
type Config struct {
	// Registry resolves topology names; nil means mesh.DefaultRegistry().
	Registry *mesh.Registry
	// Cache serves and stores plans; nil means a new LRU cache of
	// DefaultCacheCapacity entries. Pass resharding.NewPlanCache() for an
	// unbounded cache, or share one cache between servers.
	Cache *resharding.PlanCache
	// AutotuneCache memoizes the per-candidate plans of /v1/autotune grid
	// searches. It is separate from Cache so an autotune burst (~20
	// entries per request, keyed with derived seeds that /v1/plan lookups
	// never match) cannot evict the hot plan working set. Nil means a new
	// cache with Cache's capacity.
	AutotuneCache *resharding.PlanCache
	// PlanWorkers bounds concurrent /v1/plan computations; 0 = GOMAXPROCS.
	PlanWorkers int
	// PlanQueue is the /v1/plan wait-queue depth beyond the workers;
	// 0 = 4x PlanWorkers. Overflow is rejected with 429.
	PlanQueue int
	// AutotuneWorkers bounds concurrent /v1/autotune grid searches;
	// 0 = max(1, GOMAXPROCS/2). Each search fans its candidates out over
	// its own internal pool, so one slot already uses multiple cores.
	AutotuneWorkers int
	// AutotuneQueue is the /v1/autotune wait-queue depth; 0 = 2x workers.
	AutotuneQueue int
	// RetryAfter is the backoff hint attached to 429 responses;
	// 0 = 1 second.
	RetryAfter time.Duration
	// SLO enables the SLO-aware admission controller on /v2/plan: the
	// server observes served latencies and degrades (search-free plans)
	// then sheds (structured overloaded) when the p99 budget is at risk.
	// Nil — or a zero P99Budget — leaves only the fixed worker pools.
	SLO *SLOConfig
}

// Server implements the plan-serving HTTP API. Create with New; it is an
// http.Handler ready to mount on any mux or listener.
type Server struct {
	reg *mesh.Registry
	// planner is the session every API version plans through: it owns the
	// plan cache, the autotune candidate cache and the context plumbing.
	planner       *resharding.Planner
	cache         *resharding.PlanCache
	autotuneCache *resharding.PlanCache
	topos         topologyCache
	// reqMemo memoizes fault-free request parses (task decomposition +
	// cache-key rendering), the dominant per-request cost once the plan
	// itself is a pre-serialized cache hit.
	reqMemo parseMemo
	flight  flightGroup
	// intake bounds the pre-admission work every request pays before it
	// can be coalesced or queued: topology construction, task
	// decomposition and cache-key rendering. Without it that work would
	// run with one goroutine per connection, outside any backpressure.
	intake   *admission
	plan     *admission
	autotune *admission
	// slo, when set, is the SLO-aware admission controller consulted by
	// /v2/plan ahead of the worker pools; nil = fixed pools only.
	slo        *SLOController
	planC      endpointCounters
	autotuneC  endpointCounters
	batchC     endpointCounters
	retryAfter time.Duration
	mux        *http.ServeMux
	// router, when set, makes this server one node of a cluster tier: cold
	// keys owned by a peer are fetched (and verified) from it instead of
	// computed locally. Nil = standalone. See SetRouter.
	router Router
	// routedLocalC / routedProxyC / proxyFallbackC count miss routing
	// outcomes; see ClusterNodeStats.
	routedLocalC   atomic.Int64
	routedProxyC   atomic.Int64
	proxyFallbackC atomic.Int64
}

// New builds a Server from the config (see Config for defaults).
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = mesh.DefaultRegistry()
	}
	if cfg.Cache == nil {
		cfg.Cache = resharding.NewLRUPlanCache(DefaultCacheCapacity)
	}
	if cfg.AutotuneCache == nil {
		cfg.AutotuneCache = resharding.NewLRUPlanCache(cfg.Cache.Capacity())
	}
	if cfg.PlanWorkers <= 0 {
		cfg.PlanWorkers = defaultPlanWorkers()
	}
	if cfg.PlanQueue <= 0 {
		cfg.PlanQueue = 4 * cfg.PlanWorkers
	}
	if cfg.AutotuneWorkers <= 0 {
		cfg.AutotuneWorkers = runtime.GOMAXPROCS(0) / 2
		if cfg.AutotuneWorkers < 1 {
			cfg.AutotuneWorkers = 1
		}
	}
	if cfg.AutotuneQueue <= 0 {
		cfg.AutotuneQueue = 2 * cfg.AutotuneWorkers
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	// Serving returns timings, never event traces, and rendering the
	// per-op timeline dominates a cache fill's allocations — so the
	// server's caches simulate trace-free (timing fields are identical, see
	// resharding.PlanCache.SetSimulateNoTrace). A cache shared with an
	// in-process planner that needs traces should not be passed here.
	cfg.Cache.SetSimulateNoTrace(true)
	cfg.AutotuneCache.SetSimulateNoTrace(true)
	// Floor the intake gate: parsing is cheap and the gate exists to bound
	// memory, so a small-core machine must not reject a burst of duplicate
	// requests that the coalescing right behind the gate would collapse to
	// one computation anyway.
	intakeWorkers := 4 * runtime.GOMAXPROCS(0)
	if intakeWorkers < 16 {
		intakeWorkers = 16
	}
	s := &Server{
		reg: cfg.Registry,
		planner: resharding.NewPlanner(
			resharding.WithCache(cfg.Cache),
			resharding.WithAutotuneCache(cfg.AutotuneCache),
		),
		cache:         cfg.Cache,
		autotuneCache: cfg.AutotuneCache,
		intake:        newAdmission(intakeWorkers, 4*intakeWorkers),
		plan:          newAdmission(cfg.PlanWorkers, cfg.PlanQueue),
		autotune:      newAdmission(cfg.AutotuneWorkers, cfg.AutotuneQueue),
		retryAfter:    cfg.RetryAfter,
		mux:           http.NewServeMux(),
	}
	if cfg.SLO != nil && cfg.SLO.P99Budget > 0 {
		s.slo = NewSLOController(cfg.SLO.withDefaults(cfg.PlanWorkers, cfg.PlanQueue), nil)
	}
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/autotune", s.handleAutotune)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v2/plan", s.handlePlanV2)
	s.mux.HandleFunc("/v2/autotune", s.handleAutotuneV2)
	s.mux.HandleFunc("/v2/plan:batch", s.handlePlanBatch)
	s.mux.HandleFunc("/v2/stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the API endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the server's plan cache (e.g. to pre-warm it or to share
// it with an in-process planner).
func (s *Server) Cache() *resharding.PlanCache { return s.cache }

// AutotuneCache exposes the separate cache backing /v1/autotune grid
// searches.
func (s *Server) AutotuneCache() *resharding.PlanCache { return s.autotuneCache }

// SetSLOController replaces the server's admission controller; nil
// disables SLO admission. Call before serving traffic. Deterministic
// tests and the loadgen simulator inject a controller built on a
// synthetic clock here; production servers configure Config.SLO instead.
func (s *Server) SetSLOController(c *SLOController) { s.slo = c }

// SLOController returns the server's admission controller, nil when SLO
// admission is disabled.
func (s *Server) SLOController() *SLOController { return s.slo }

// defaultPlanWorkers is the plan-pool width when Config leaves it unset.
func defaultPlanWorkers() int { return runtime.GOMAXPROCS(0) }

// errOverloaded marks an admission rejection; mapped to 429.
var errOverloaded = errors.New("service: worker pool and queue full")

// errSLOShed marks a request shed by the SLO controller; mapped to 429
// like errOverloaded, but distinguishable in logs and tests.
var errSLOShed = errors.New("service: shedding load to protect the p99 SLO budget")

// AdmissionHeader reports the SLO controller's decision on /v2/plan
// responses it affected: "degraded" on a response planned at degraded
// quality, "shed" on a 429 it produced. Absent on full-quality responses.
const AdmissionHeader = "X-Alpacomm-Admission"

// errFaultsNeedV2 rejects a faults block on a /v1 endpoint: degraded
// planning is a /v2 feature (structured errors can name the bad fault).
var errFaultsNeedV2 = errors.New("faults block requires the /v2 API (use /v2/plan, /v2/autotune or /v2/plan:batch)")

// admission is one endpoint's worker pool: a caller first takes a queue
// token (failing fast when the queue is full — the backpressure signal)
// and then waits for one of the worker slots.
type admission struct {
	slots chan struct{}
	queue chan struct{}
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, workers+queueDepth),
	}
}

func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.queue <- struct{}{}:
	default:
		return errOverloaded
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-a.queue
		return ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	<-a.queue
}

// endpointCounters aggregate one endpoint's outcomes.
type endpointCounters struct {
	requests  atomic.Int64
	ok        atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64
	coalesced atomic.Int64
	inFlight  atomic.Int64
}

func (c *endpointCounters) snapshot() EndpointStats {
	return EndpointStats{
		Requests:  c.requests.Load(),
		OK:        c.ok.Load(),
		Errors:    c.errors.Load(),
		Rejected:  c.rejected.Load(),
		Coalesced: c.coalesced.Load(),
		InFlight:  c.inFlight.Load(),
	}
}

// maxCachedTopologies bounds the topology memo: the parameters are
// client-controlled, so a parameter sweep must not grow server memory
// without bound. Beyond the cap, topologies are built per request.
const maxCachedTopologies = 256

// topologyCache memoizes built topologies by (name, hosts, oversub):
// topologies are immutable once built, so requests can share them.
type topologyCache struct {
	mu sync.RWMutex
	m  map[string]mesh.Topology
}

//alpacomm:hotpath
func (tc *topologyCache) get(reg *mesh.Registry, ref TopologyRef) (mesh.Topology, error) {
	// Normalize the name the same way Registry.Build does, so case and
	// whitespace variants of one preset share a memo slot instead of
	// letting clients fill the bounded memo with junk aliases. Rendered
	// with strconv appends: this runs on every parse, cache hit or miss.
	name := strings.ToLower(strings.TrimSpace(ref.Name))
	kb := make([]byte, 0, len(name)+24)
	kb = append(kb, name...)
	kb = append(kb, '|')
	kb = strconv.AppendInt(kb, int64(ref.Hosts), 10)
	kb = append(kb, '|')
	kb = strconv.AppendFloat(kb, ref.Oversubscription, 'g', -1, 64)
	key := string(kb)
	tc.mu.RLock()
	t, ok := tc.m[key]
	tc.mu.RUnlock()
	if ok {
		return t, nil
	}
	t, err := reg.Build(ref.Name, mesh.TopologyParams{Hosts: ref.Hosts, Oversubscription: ref.Oversubscription})
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	if tc.m == nil {
		tc.m = map[string]mesh.Topology{}
	}
	// Keep the first build if another request raced us in, so every
	// request for one key sees the same instance.
	if prev, ok := tc.m[key]; ok {
		t = prev
	} else if len(tc.m) < maxCachedTopologies {
		tc.m[key] = t
	}
	tc.mu.Unlock()
	return t, nil
}

// maxBodyBytes bounds request bodies; plan requests are tiny.
const maxBodyBytes = 1 << 20

// newBodyDecoder wraps a request body with the size bound and strict
// field checking every endpoint shares.
func newBodyDecoder(w http.ResponseWriter, r *http.Request) *json.Decoder {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec
}

// planned is one computed (plan, simulation) pair shared by every caller
// of a canonical key, plus the pre-serialized wire bodies built at fill
// time (nil only when serialization was impossible; callers then fall
// back to per-request encoding).
type planned struct {
	plan *resharding.Plan
	sim  *resharding.SimResult
	enc  *encodedPlan
}

// computePlan serves one canonical planning problem: a completed cache
// entry is returned before any admission (hits must stay cheap even when
// the plan pool is saturated with slow cold requests); otherwise the
// computation is coalesced with identical in-flight requests and runs
// through the plan admission pool under the caller's context — a cancelled
// caller abandons its queue slot, and a cancelled waiter detaches without
// disturbing the flight. The flight leader serializes the response bodies
// once and attaches them to the cache entry, so every later hit writes
// pre-rendered bytes.
//
// In cluster mode (router set) a miss on a key owned by a peer is fetched
// from that peer instead of computed: the owner's in-process coalescing
// then makes a tier-wide thundering herd on one cold key cost exactly one
// DFS. The fetch shares the local flight key with the compute path, so
// in-process duplicates coalesce no matter which route each took (a
// membership change mid-flight cannot double-compute locally). wireReq nil
// or forwarded true (the request came from a peer — see PeerHeader) pins
// resolution to this node. A failed fetch falls back to local computation:
// availability beats ownership, and the verified-fill gate has already
// kept any bad peer plan out of the cache.
//
// A non-nil fromTask (with its key fromKey) names the same boundary on the
// overlay being replanned away from — for a degraded /v2 request, its
// fault-free twin. A cold miss then warm-starts from the cached plan under
// fromKey instead of searching from scratch (Planner.PlanKeyedWarm);
// fromTask nil plans cold exactly as before.
func (s *Server) computePlan(ctx context.Context, cacheKey string, task *sharding.Task, opts resharding.Options, wireReq *PlanRequest, forwarded bool, fromKey string, fromTask *sharding.Task) (*planned, bool, error) {
	if p, ok := s.cachedPlan(cacheKey, opts); ok {
		return p, false, nil
	}
	if s.router != nil && wireReq != nil && !forwarded {
		if owner, local := s.router.Route(cacheKey); !local {
			s.routedProxyC.Add(1)
			v, err, shared := s.flight.do(ctx, "plan|"+cacheKey, func() (interface{}, error) {
				plan, sim, err := s.router.Fetch(ctx, owner, cacheKey, wireReq, task, opts)
				if err != nil {
					return nil, err
				}
				enc := newEncodedPlan(plan, sim, opts, cacheKey)
				if s.cache.Install(cacheKey, plan, sim) {
					s.cache.Attach(cacheKey, enc)
				}
				s.router.Record(cacheKey, wireReq)
				return &planned{plan: plan, sim: sim, enc: enc}, nil
			})
			if err == nil {
				return v.(*planned), shared, nil
			}
			if ctx.Err() != nil {
				return nil, shared, err
			}
			s.proxyFallbackC.Add(1)
		} else {
			s.routedLocalC.Add(1)
		}
	}
	v, err, shared := s.flight.do(ctx, "plan|"+cacheKey, func() (interface{}, error) {
		if err := s.plan.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.plan.release()
		plan, sim, err := s.planner.PlanKeyedWarm(ctx, cacheKey, task, opts, fromKey, fromTask)
		if err != nil {
			return nil, err
		}
		enc := newEncodedPlan(plan, sim, opts, cacheKey)
		s.cache.Attach(cacheKey, enc)
		if s.router != nil && wireReq != nil {
			s.router.Record(cacheKey, wireReq)
		}
		return &planned{plan: plan, sim: sim, enc: enc}, nil
	})
	if err != nil {
		return nil, shared, err
	}
	return v.(*planned), shared, nil
}

// cachedPlan returns the completed cache entry for the key, ensuring its
// pre-serialized sidecar exists. An entry without one predates this
// server's fills (shared cache) or its attach raced an eviction; it is
// serialized now so the next hit is free.
func (s *Server) cachedPlan(cacheKey string, opts resharding.Options) (*planned, bool) {
	plan, sim, att, ok := s.cache.LookupKeyedAttachment(cacheKey)
	if !ok {
		return nil, false
	}
	enc, _ := att.(*encodedPlan)
	if enc == nil {
		enc = newEncodedPlan(plan, sim, opts, cacheKey)
		s.cache.Attach(cacheKey, enc)
	}
	return &planned{plan: plan, sim: sim, enc: enc}, true
}

// isPeerRequest reports whether the request came from another tier node
// (see PeerHeader); such requests always resolve locally.
func isPeerRequest(r *http.Request) bool { return r.Header.Get(PeerHeader) != "" }

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.planC.requests.Add(1)
	var req PlanRequest
	if !s.decode(w, r, &req, &s.planC) {
		return
	}
	if req.Faults != nil {
		s.fail(w, &s.planC, http.StatusBadRequest, errFaultsNeedV2)
		return
	}
	task, opts, cacheKey, err := s.parseTask(r.Context(),
		req.Topology, nil, req.Shape, req.DType, req.Src, req.Dst, req.Options)
	if err != nil {
		s.failParse(w, &s.planC, err)
		return
	}

	s.planC.inFlight.Add(1)
	defer s.planC.inFlight.Add(-1)
	p, shared, err := s.computePlan(r.Context(), cacheKey, task, opts, &req, isPeerRequest(r), "", nil)
	if err != nil {
		s.failCompute(w, &s.planC, err)
		return
	}
	if shared {
		s.planC.coalesced.Add(1)
	}
	s.servePlan(w, &s.planC, p, task, opts, cacheKey, shared, false)
}

// servePlan writes one plan response from the entry's pre-serialized
// bodies: a pooled buffer, the fill-time bytes, and at most the coalesced
// flag and the translated sender section patched — no marshaling. The
// fallback (enc nil) renders per request exactly as the service did before
// serialize-once fills.
//
//alpacomm:hotpath
func (s *Server) servePlan(w http.ResponseWriter, c *endpointCounters, p *planned,
	task *sharding.Task, opts resharding.Options, cacheKey string, shared, binary bool) {

	if p.enc == nil {
		resp := s.planResponse(p.plan, p.sim, task, opts, cacheKey, shared)
		if binary {
			buf := getBuf()
			b := appendPlanBinary((*buf)[:0], &resp)
			*buf = b
			c.ok.Add(1)
			writeBinary(w, http.StatusOK, b)
			putBuf(buf)
			return
		}
		//alpacomm:allow hotalloc fallback without a pre-serialized plan; encoding/json boxes inherently
		s.ok(w, c, resp)
		return
	}
	buf := getBuf()
	var b []byte
	if binary {
		b = p.enc.appendBinary((*buf)[:0], task, shared)
	} else {
		b = append(p.enc.appendJSON((*buf)[:0], task, shared), '\n')
	}
	*buf = b
	c.ok.Add(1)
	if binary {
		writeBinary(w, http.StatusOK, b)
	} else {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	}
	putBuf(buf)
}

// writeBinary writes one complete binary frame.
func writeBinary(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(status)
	_, _ = w.Write(frame)
}

// wantsBinary reports whether the request negotiated the binary response
// format; only the /v2 handlers consult it.
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ContentTypeBinary)
}

// planResponse renders a plan for one request. It is built per request,
// not inside the flight: on a translated cache hit (or a coalesced flight
// joined with congruent but differently-placed meshes) the shared plan's
// devices belong to the first task planned under the key and must be
// remapped into this request's meshes.
func (s *Server) planResponse(plan *resharding.Plan, sim *resharding.SimResult,
	task *sharding.Task, opts resharding.Options, cacheKey string, shared bool) PlanResponse {
	return PlanResponse{
		Strategy:        opts.Strategy.String(),
		Scheduler:       opts.Scheduler.String(),
		NumUnits:        len(task.Units),
		Senders:         remapSenders(plan, task),
		Order:           plan.Order,
		MakespanSeconds: sim.Makespan,
		EffectiveGbps:   sim.EffectiveGbps,
		NumOps:          sim.NumOps,
		Key:             cacheKey,
		Degraded:        opts.Scheduler == resharding.SchedDegraded,
		Coalesced:       shared,
	}
}

// remapSenders translates a (possibly cached) plan's sender devices into
// the requesting task's source mesh. Tasks sharing a cache key have
// congruent meshes — same shape, same host-relative layout — so the
// sender for unit i is the device at the same logical mesh position. When
// the plan was computed for this very task, the mapping is the identity.
func remapSenders(plan *resharding.Plan, task *sharding.Task) []int {
	senders := make([]int, len(task.Units))
	if plan.Task == task {
		for i := range senders {
			senders[i] = plan.SenderOf[i]
		}
		return senders
	}
	pos := make(map[int]int, len(plan.Task.Src.Mesh.Devices))
	for idx, d := range plan.Task.Src.Mesh.Devices {
		pos[d] = idx
	}
	for i := range senders {
		senders[i] = task.Src.Mesh.Devices[pos[plan.SenderOf[i]]]
	}
	return senders
}

// computeAutotune serves one canonical grid search, coalesced with
// identical in-flight searches and admitted to the autotune pool under the
// caller's context. Workers is excluded from the coalescing key: the
// search result is deterministic and identical for every worker count.
func (s *Server) computeAutotune(ctx context.Context, cacheKey string, task *sharding.Task, opts resharding.Options, workers int) (*AutotuneResponse, bool, error) {
	v, err, shared := s.flight.do(ctx, "autotune|"+cacheKey, func() (interface{}, error) {
		if err := s.autotune.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.autotune.release()
		res, err := s.planner.AutotuneWorkers(ctx, task, opts, workers)
		if err != nil {
			return nil, err
		}
		resp := &AutotuneResponse{
			Winner:          res.Trials[res.BestIndex].Candidate.String(),
			BestIndex:       res.BestIndex,
			MakespanSeconds: res.BestSim.Makespan,
			EffectiveGbps:   res.BestSim.EffectiveGbps,
			Trials:          make([]AutotuneTrial, len(res.Trials)),
		}
		for i, tr := range res.Trials {
			resp.Trials[i] = AutotuneTrial{
				Candidate:       tr.Candidate.String(),
				MakespanSeconds: tr.Makespan,
				EffectiveGbps:   tr.EffectiveGbps,
				Err:             tr.Err,
			}
		}
		return resp, nil
	})
	if err != nil {
		return nil, shared, err
	}
	return v.(*AutotuneResponse), shared, nil
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	s.autotuneC.requests.Add(1)
	var req AutotuneRequest
	if !s.decode(w, r, &req, &s.autotuneC) {
		return
	}
	if req.Workers < 0 {
		s.fail(w, &s.autotuneC, http.StatusBadRequest, fmt.Errorf("negative workers"))
		return
	}
	if req.Faults != nil {
		s.fail(w, &s.autotuneC, http.StatusBadRequest, errFaultsNeedV2)
		return
	}
	task, opts, cacheKey, err := s.parseTask(r.Context(),
		req.Topology, nil, req.Shape, req.DType, req.Src, req.Dst, req.Options)
	if err != nil {
		s.failParse(w, &s.autotuneC, err)
		return
	}

	s.autotuneC.inFlight.Add(1)
	defer s.autotuneC.inFlight.Add(-1)
	v, shared, err := s.computeAutotune(r.Context(), cacheKey, task, opts, req.Workers)
	if err != nil {
		s.failCompute(w, &s.autotuneC, err)
		return
	}
	resp := *v
	resp.Coalesced = shared
	if shared {
		s.autotuneC.coalesced.Add(1)
	}
	s.ok(w, &s.autotuneC, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	resp := StatsResponse{
		Cache:         wireCacheStats(s.cache.Stats()),
		AutotuneCache: wireCacheStats(s.autotuneCache.Stats()),
		Plan:          s.planC.snapshot(),
		Autotune:      s.autotuneC.snapshot(),
		Batch:         s.batchC.snapshot(),
		Topologies:    s.reg.Names(),
		Replan:        s.planner.ReplanStats(),
	}
	if s.router != nil {
		cs := s.router.Info()
		cs.RoutedLocal = s.routedLocalC.Load()
		cs.RoutedProxied = s.routedProxyC.Load()
		cs.ProxyFallbacks = s.proxyFallbackC.Load()
		resp.Cluster = &cs
	}
	if s.slo != nil {
		a := s.slo.Snapshot()
		resp.Admission = &a
	}
	writeJSON(w, http.StatusOK, resp)
}

// badRequestError marks a request that parsed as HTTP but cannot be
// planned as asked: unknown topology, bad mesh, out-of-bound effort.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// parseTask runs the bounded pre-admission stage: under an intake token it
// builds the topology, decomposes the task and renders the canonical cache
// key. Failures are classified, not written: intake overflow and context
// ends surface as-is (retryable), everything else as *badRequestError. The
// intake token is released before the caller coalesces or queues, so
// parsing capacity is never held across a computation.
//
// Fault-free requests are memoized on their raw wire fields: a repeated
// request returns the stored (task, options, key) without touching the
// intake gate — the memo hit does no bounded work for the gate to bound —
// and the serve path stays allocation-free end to end.
func (s *Server) parseTask(ctx context.Context,
	ref TopologyRef, faults *FaultsRef, shape []int, dtype string, src, dst Endpoint, po PlanOptions) (task *sharding.Task, opts resharding.Options, key string, err error) {

	if faults == nil {
		if pr, ok := s.reqMemo.get(ref, shape, dtype, src, dst, po); ok {
			return pr.task, pr.opts, pr.key, nil
		}
	}
	if err := s.intake.acquire(ctx); err != nil {
		return nil, opts, "", err
	}
	defer s.intake.release()
	task, opts, err = buildTask(s.reg, &s.topos, ref, faults, shape, dtype, src, dst, po)
	if err != nil {
		return nil, opts, "", &badRequestError{err}
	}
	opts = opts.WithDefaults()
	key = resharding.CacheKey(task, opts)
	if faults == nil {
		s.reqMemo.put(ref, shape, dtype, src, dst, po, parsedReq{task: task, opts: opts, key: key})
	}
	return task, opts, key, nil
}

// failParse writes a parseTask failure in the v1 envelope: bad requests
// are 400, everything else (intake overflow, context ends) goes through
// the retryable compute path.
func (s *Server) failParse(w http.ResponseWriter, c *endpointCounters, err error) {
	var bad *badRequestError
	if errors.As(err, &bad) {
		s.fail(w, c, http.StatusBadRequest, bad.err)
		return
	}
	s.failCompute(w, c, err)
}

// decode reads a POST JSON body into dst; on failure it writes the error
// response and returns false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst interface{}, c *endpointCounters) bool {
	if r.Method != http.MethodPost {
		s.fail(w, c, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	if err := newBodyDecoder(w, r).Decode(dst); err != nil {
		s.fail(w, c, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

// failCompute maps a computation error to its HTTP status: admission
// overflow becomes 429 + Retry-After (for every coalesced waiter of the
// rejected flight), and so does a context cancellation — when a flight
// leader disconnects while queued, its live coalesced waiters hold valid
// requests that were never attempted, so they get a retryable status, not
// an error class. Everything else is 422 (the request parsed but cannot
// be planned).
func (s *Server) failCompute(w http.ResponseWriter, c *endpointCounters, err error) {
	if errors.Is(err, errOverloaded) || errors.Is(err, errSLOShed) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.retryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	s.fail(w, c, http.StatusUnprocessableEntity, err)
}

func (s *Server) fail(w http.ResponseWriter, c *endpointCounters, status int, err error) {
	c.errors.Add(1)
	writeError(w, status, err)
}

func (s *Server) ok(w http.ResponseWriter, c *endpointCounters, payload interface{}) {
	c.ok.Add(1)
	writeJSON(w, http.StatusOK, payload)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func wireCacheStats(cs resharding.CacheStats) CacheStats {
	return CacheStats{
		Hits: cs.Hits, Misses: cs.Misses, Entries: cs.Entries,
		Evictions: cs.Evictions, Capacity: cs.Capacity,
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// encodeFailureLog rate-limits the encode-failure log line: a payload that
// cannot encode is a programming bug hit on every affected request, and
// one line is enough to surface it.
var encodeFailureLog sync.Once

// writeJSON encodes the payload into a pooled buffer first and only then
// touches the ResponseWriter. Encoding a response type can only fail on a
// programming bug (an unencodable field), but the old stream-encoder path
// discovered that after the 200 header was committed and silently
// truncated the body; buffering turns the same bug into a logged 500 with
// an intact error envelope.
func writeJSON(w http.ResponseWriter, status int, payload interface{}) {
	je := getEncoder()
	if err := je.enc.Encode(payload); err != nil {
		putEncoder(je)
		encodeFailureLog.Do(func() {
			log.Printf("service: response encoding failed (suppressing further reports): %v", err)
		})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"response encoding failed"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(je.buf.Bytes())
	putEncoder(je)
}
