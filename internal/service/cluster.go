package service

import (
	"context"
	"errors"

	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
)

// errNotPlanFrame rejects a frame of the wrong kind where a plan frame is
// required (snapshot records, peer fills).
var errNotPlanFrame = errors.New("service: binary frame is not a plan frame")

// Cluster integration. The service knows nothing about rings, peers or
// snapshots — it exposes a Router seam that internal/cluster plugs into:
// the router decides whether a canonical cache key belongs to this node,
// fetches plans from the owning peer when it does not, and records
// successful fills for snapshot persistence. Keeping the dependency in
// this direction (cluster imports service, never the reverse) lets a
// standalone server run with zero cluster overhead: a nil router skips
// every hook.

// PeerHeader marks a request as originating from another tier node rather
// than a client; its value is the sending node's id. A server receiving it
// always resolves the plan locally — owner-side compute or cache — and
// never re-proxies, so routing disagreement during a membership change
// costs at most one extra computation, never a forwarding loop.
const PeerHeader = "X-Alpacomm-Peer"

// Router is the cluster tier's routing seam; see internal/cluster for the
// consistent-hash implementation. Implementations must be safe for
// concurrent use. Install a router with SetRouter before serving.
type Router interface {
	// Route reports the owner of a canonical cache key and whether that
	// owner is this node.
	Route(key string) (owner string, local bool)
	// Fetch obtains the plan for key from the owning peer. The returned
	// plan must already be verified against this node's own task (the
	// fetcher re-simulates it); an error falls the caller back to local
	// computation.
	Fetch(ctx context.Context, owner, key string, req *PlanRequest, task *sharding.Task, opts resharding.Options) (*resharding.Plan, *resharding.SimResult, error)
	// Record notes a successful fill (local compute or verified peer
	// fetch) so snapshots can persist the request alongside the plan.
	Record(key string, req *PlanRequest)
	// Info snapshots the router's identity and counters for /v2/stats;
	// the server overlays its own routing counters on the result.
	Info() ClusterNodeStats
}

// ClusterNodeStats is the per-node cluster block of a stats response; nil
// when the server runs standalone. Ownership and verification counters
// come from the router, routing counters from the server.
type ClusterNodeStats struct {
	// NodeID is this node's tier-unique identity.
	NodeID string `json:"node_id"`
	// Members lists the ring members this node currently sees (self
	// included), sorted.
	Members []string `json:"members"`
	// OwnershipShare is the fraction of the hash space this node owns —
	// ~1/N with virtual-node smoothing.
	OwnershipShare float64 `json:"ownership_share"`
	// RoutedLocal counts misses whose key this node owned (computed here).
	RoutedLocal int64 `json:"routed_local"`
	// RoutedProxied counts misses routed to an owning peer.
	RoutedProxied int64 `json:"routed_proxied"`
	// ProxyFallbacks counts proxied misses that fell back to local
	// computation (peer unreachable, fill rejected): availability wins
	// over ownership.
	ProxyFallbacks int64 `json:"proxy_fallbacks"`
	// VerifiedFillAccepts counts peer plans accepted after re-simulation.
	VerifiedFillAccepts int64 `json:"verified_fill_accepts"`
	// VerifiedFillRejects counts peer plans rejected by re-simulation —
	// a buggy or byzantine peer's plans never enter this node's cache.
	VerifiedFillRejects int64 `json:"verified_fill_rejects"`
	// SnapshotRestored / SnapshotRejected count warm-restart entries that
	// passed / failed replay verification.
	SnapshotRestored int64 `json:"snapshot_restored"`
	// SnapshotRejected — see SnapshotRestored.
	SnapshotRejected int64 `json:"snapshot_rejected"`
}

// SetRouter installs the cluster router. Call before the server starts
// handling requests (it is not synchronized against in-flight handlers);
// a nil router (the default) serves standalone.
func (s *Server) SetRouter(r Router) { s.router = r }

// AsPeer marks every request from this client as tier-internal traffic
// from the named node: the receiving server resolves it locally instead of
// re-routing (see PeerHeader).
func AsPeer(nodeID string) ClientOption {
	return func(c *Client) { c.peer = nodeID }
}

// InstallPlan inserts an externally obtained, already-verified plan into
// the serving cache as a completed entry, pre-serializing the wire bodies
// exactly like a local fill so later hits are byte-identical to locally
// computed ones. It reports false when the key is already resident.
func (s *Server) InstallPlan(key string, plan *resharding.Plan, sim *resharding.SimResult, opts resharding.Options) bool {
	if !s.cache.Install(key, plan, sim) {
		return false
	}
	s.cache.Attach(key, newEncodedPlan(plan, sim, opts, key))
	return true
}

// ParsePlanRequest resolves a wire request into its task, normalized
// options and canonical cache key — the same bounded parse the handlers
// run, exposed for snapshot replay and cluster routing.
func (s *Server) ParsePlanRequest(ctx context.Context, req *PlanRequest) (*sharding.Task, resharding.Options, string, error) {
	return s.parseTask(ctx, req.Topology, req.Faults, req.Shape, req.DType, req.Src, req.Dst, req.Options)
}

// ExportedPlan is one cache entry in snapshot form: the canonical key plus
// the entry's pre-serialized binary plan frame (see DecodePlanFrame).
type ExportedPlan struct {
	Key   string
	Frame []byte
}

// ExportPlans snapshots the plan cache as binary wire frames — the same
// bytes a binary-negotiated /v2/plan response carries, reused as the
// persistence format. Entries whose frame is missing (a fill raced an
// eviction before Attach) are re-serialized; the frames are copies, safe
// to hold after the entries are evicted. Order is most- to least-recently
// used, so truncating a snapshot keeps the hottest keys.
func (s *Server) ExportPlans() []ExportedPlan {
	entries := s.cache.Export()
	out := make([]ExportedPlan, 0, len(entries))
	for _, e := range entries {
		enc, _ := e.Attach.(*encodedPlan)
		if enc == nil {
			enc = newEncodedPlan(e.Plan, e.Sim, e.Plan.Opts, e.Key)
		}
		if enc == nil {
			continue
		}
		out = append(out, ExportedPlan{Key: e.Key, Frame: append([]byte(nil), enc.bin...)})
	}
	return out
}

// DecodePlanFrame decodes one binary plan frame (an ExportPlans frame, or
// the body of a binary /v2/plan response) into its wire response.
func DecodePlanFrame(data []byte) (*PlanResponse, error) {
	v, err := decodeBinary(data)
	if err != nil {
		return nil, err
	}
	p, ok := v.(*PlanResponse)
	if !ok {
		return nil, errNotPlanFrame
	}
	return p, nil
}
