package service

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// The admission controller is exercised entirely on a synthetic clock: no
// sleeps, no wall time. Every test scripts a latency trace, advances the
// clock explicitly, and asserts the exact transition sequence — which is
// only possible because the controller's decisions are a pure function of
// (config, samples, clock).

// fakeClock is the injected clock of the deterministic tests (and of the
// loadgen simulator).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testSLOConfig is the base config of the controller tests: thresholds at
// 75/100/50ms of a 100ms budget, latency-only triggers (depths out of
// reach), and evaluation on every Admit.
func testSLOConfig() SLOConfig {
	return SLOConfig{
		P99Budget:    100 * time.Millisecond,
		Window:       150 * time.Millisecond,
		MinSamples:   4,
		Dwell:        100 * time.Millisecond,
		EvalEvery:    -1,
		DegradeDepth: 1000,
		ShedDepth:    2000,
	}
}

func observeN(ctl *SLOController, n int, lat time.Duration) {
	for i := 0; i < n; i++ {
		ctl.Observe(lat)
	}
}

// TestSLOTransitionSequence replays a scripted latency trace and asserts
// the exact degrade→shed→recover sequence, timestamps included.
func TestSLOTransitionSequence(t *testing.T) {
	clk := newFakeClock()
	ctl := NewSLOController(testSLOConfig(), clk.now)

	// Healthy baseline: p99 10ms, mode full.
	observeN(ctl, 4, 10*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitFull {
		t.Fatalf("healthy mode = %v, want full", mode)
	}

	// p99 jumps to 80ms ≥ 0.75·budget: degrade.
	clk.advance(10 * time.Millisecond)
	observeN(ctl, 10, 80*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitDegraded {
		t.Fatalf("after 80ms trace mode = %v, want degraded", mode)
	}

	// p99 blows through the budget: shed.
	clk.advance(10 * time.Millisecond)
	observeN(ctl, 10, 130*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitShed {
		t.Fatalf("after 130ms trace mode = %v, want shed", mode)
	}

	// The slow samples age out of the window and fresh ones are fast:
	// recover one level (shed→degraded) once the dwell has passed.
	clk.advance(180 * time.Millisecond) // t = 200ms
	observeN(ctl, 20, 10*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitDegraded {
		t.Fatalf("after recovery trace mode = %v, want degraded", mode)
	}

	// Still fast after another dwell: full recovery.
	clk.advance(140 * time.Millisecond) // t = 340ms
	observeN(ctl, 20, 10*time.Millisecond)
	clk.advance(10 * time.Millisecond) // t = 350ms
	if mode := ctl.Admit(0); mode != AdmitFull {
		t.Fatalf("after second recovery trace mode = %v, want full", mode)
	}

	want := []string{
		"full→degraded@10ms",
		"degraded→shed@20ms",
		"shed→degraded@200ms",
		"degraded→full@350ms",
	}
	if got := ctl.Transitions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("transition log = %v, want %v", got, want)
	}
	st := ctl.Snapshot()
	if st.Degrades != 1 || st.Sheds != 1 || st.Recoveries != 2 {
		t.Fatalf("counters = %d/%d/%d degrades/sheds/recoveries, want 1/1/2", st.Degrades, st.Sheds, st.Recoveries)
	}
}

// TestSLOHysteresisNoFlap pins the hysteresis band: a p99 hovering just
// below the degrade threshold never degrades, one at the threshold
// degrades exactly once, and a p99 inside the (RecoverAt, DegradeAt) band
// holds the degraded state through many evaluations — no flapping.
func TestSLOHysteresisNoFlap(t *testing.T) {
	cfg := testSLOConfig()
	cfg.Window = time.Second
	clk := newFakeClock()
	ctl := NewSLOController(cfg, clk.now)

	// Just under the threshold: 74ms < 75ms, stays full however often the
	// controller evaluates.
	observeN(ctl, 20, 74*time.Millisecond)
	for i := 0; i < 50; i++ {
		if mode := ctl.Admit(0); mode != AdmitFull {
			t.Fatalf("eval %d: mode = %v below threshold, want full", i, mode)
		}
	}

	// At the threshold: degrade, exactly once.
	clk.advance(time.Millisecond)
	observeN(ctl, 20, 76*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitDegraded {
		t.Fatalf("mode = %v at threshold, want degraded", mode)
	}

	// Inside the hysteresis band (50ms ≤ 60ms < 75ms): neither recovers
	// nor escalates, no matter how long it dwells there.
	clk.advance(1200 * time.Millisecond) // old samples age out
	observeN(ctl, 20, 60*time.Millisecond)
	for i := 0; i < 50; i++ {
		clk.advance(10 * time.Millisecond)
		observeN(ctl, 1, 60*time.Millisecond)
		if mode := ctl.Admit(0); mode != AdmitDegraded {
			t.Fatalf("eval %d: mode = %v inside band, want degraded", i, mode)
		}
	}

	// Below the recovery threshold: full again.
	clk.advance(1200 * time.Millisecond)
	observeN(ctl, 20, 40*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitFull {
		t.Fatalf("mode = %v below recovery threshold, want full", mode)
	}

	if got := len(ctl.Transitions()); got != 2 {
		t.Fatalf("transitions = %v, want exactly degrade + recover", ctl.Transitions())
	}
}

// TestSLODwellBlocksRecovery pins the dwell: even with a perfectly healthy
// window, the controller refuses to de-escalate until it has resided in
// the degraded state for Dwell.
func TestSLODwellBlocksRecovery(t *testing.T) {
	cfg := testSLOConfig()
	cfg.Window = 30 * time.Millisecond
	clk := newFakeClock()
	ctl := NewSLOController(cfg, clk.now)

	observeN(ctl, 10, 200*time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitDegraded {
		t.Fatalf("mode = %v, want degraded", mode)
	}

	clk.advance(25 * time.Millisecond)
	observeN(ctl, 20, 10*time.Millisecond)
	clk.advance(25 * time.Millisecond) // t = 50ms: healthy window, dwell not met
	if mode := ctl.Admit(0); mode != AdmitDegraded {
		t.Fatalf("mode = %v before dwell, want degraded", mode)
	}

	clk.advance(100 * time.Millisecond) // t = 150ms: dwell met
	if mode := ctl.Admit(0); mode != AdmitFull {
		t.Fatalf("mode = %v after dwell, want full", mode)
	}
}

// TestSLOQueueDepthEscalates pins the depth triggers: a queue burst
// escalates before any latency sample exists, one level per evaluation.
func TestSLOQueueDepthEscalates(t *testing.T) {
	cfg := testSLOConfig()
	cfg.DegradeDepth = 8
	cfg.ShedDepth = 32
	clk := newFakeClock()
	ctl := NewSLOController(cfg, clk.now)

	if mode := ctl.Admit(7); mode != AdmitFull {
		t.Fatalf("Admit(7) = %v, want full", mode)
	}
	if mode := ctl.Admit(8); mode != AdmitDegraded {
		t.Fatalf("Admit(8) = %v, want degraded", mode)
	}
	if mode := ctl.Admit(40); mode != AdmitShed {
		t.Fatalf("Admit(40) = %v, want shed", mode)
	}

	// Escalation moves one level per evaluation even under an extreme
	// burst: a fresh controller needs two Admits to reach shed.
	ctl2 := NewSLOController(cfg, clk.now)
	if mode := ctl2.Admit(1000); mode != AdmitDegraded {
		t.Fatalf("fresh Admit(1000) = %v, want degraded (one level per eval)", mode)
	}
	if mode := ctl2.Admit(1000); mode != AdmitShed {
		t.Fatalf("second Admit(1000) = %v, want shed", mode)
	}

	// Depth drains: recover one level per dwell.
	clk.advance(150 * time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitDegraded {
		t.Fatalf("drained Admit(0) = %v, want degraded", mode)
	}
	clk.advance(150 * time.Millisecond)
	if mode := ctl.Admit(0); mode != AdmitFull {
		t.Fatalf("drained second Admit(0) = %v, want full", mode)
	}
}
