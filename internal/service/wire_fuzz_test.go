package service

import (
	"bytes"
	"testing"
)

// FuzzBinaryDecode throws arbitrary bytes at the binary decoder. The
// invariants: never panic, never accept trailing garbage, and every frame
// that does decode re-encodes to the exact input bytes (the format has one
// canonical encoding — no redundant representations).
func FuzzBinaryDecode(f *testing.F) {
	plan := wireTestPlan()
	f.Add(appendPlanBinary(nil, &plan))
	coalesced := plan
	coalesced.Coalesced = true
	f.Add(appendPlanBinary(nil, &coalesced))
	f.Add(appendErrorBinary(nil, &V2Error{Code: CodeOverloaded, Message: "queue full", Retryable: true, RetryAfterSeconds: 2}))
	f.Add(appendAutotuneBinary(nil, &AutotuneResponse{
		Winner:          "broadcast/ensemble",
		MakespanSeconds: 0.25,
		EffectiveGbps:   40,
		Trials: []AutotuneTrial{
			{Candidate: "broadcast/ensemble", MakespanSeconds: 0.25, EffectiveGbps: 40},
			{Candidate: "send-recv/naive", Err: "cancelled"},
		},
	}))
	f.Add(appendBatchBinary(nil, &BatchPlanResponse{
		Distinct: 1,
		Items: []BatchPlanItemResult{
			{Plan: &plan},
			{Error: &V2Error{Code: CodeInvalidArgument, Message: "bad spec"}},
		},
	}))
	// Adversarial seeds: valid magic with a mangled body steers the fuzzer
	// past the magic check.
	f.Add(binMagic[:])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := decodeBinary(data)
		if err != nil {
			return
		}
		var re []byte
		switch r := v.(type) {
		case *PlanResponse:
			re = appendPlanBinary(nil, r)
		case *AutotuneResponse:
			re = appendAutotuneBinary(nil, r)
		case *V2Error:
			re = appendErrorBinary(nil, r)
		case *BatchPlanResponse:
			re = appendBatchBinary(nil, r)
		default:
			t.Fatalf("decodeBinary returned unexpected type %T", v)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip not byte-identical:\n in  %x\n out %x", data, re)
		}
	})
}
