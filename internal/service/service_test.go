package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// testReq is the canonical request most tests serve: the paper's 2-host p3
// boundary.
func testReq(seed int64) *PlanRequest {
	return &PlanRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  PlanOptions{Seed: seed},
	}
}

// directTask rebuilds testReq's task outside the service.
func directTask(t *testing.T, seed int64) (*sharding.Task, resharding.Options) {
	t.Helper()
	topo, err := mesh.DefaultRegistry().Build("p3", mesh.TopologyParams{Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := topo.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := topo.Slice([]int{2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := NormalizedOptions(PlanOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return task, opts
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL, nil)
}

// TestPlanMatchesDirectPath pins the acceptance criterion: the served plan
// is byte-identical to resharding.NewPlan on the same task and options.
func TestPlanMatchesDirectPath(t *testing.T) {
	_, client := newTestServer(t, Config{})
	resp, err := client.Plan(context.Background(), testReq(3))
	if err != nil {
		t.Fatal(err)
	}

	task, opts := directTask(t, 3)
	plan, err := resharding.NewPlan(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}

	senders := make([]int, len(task.Units))
	for i := range senders {
		senders[i] = plan.SenderOf[i]
	}
	if !reflect.DeepEqual(resp.Senders, senders) {
		t.Errorf("senders: served %v, direct %v", resp.Senders, senders)
	}
	if !reflect.DeepEqual(resp.Order, plan.Order) {
		t.Errorf("order: served %v, direct %v", resp.Order, plan.Order)
	}
	if resp.MakespanSeconds != sim.Makespan || resp.EffectiveGbps != sim.EffectiveGbps || resp.NumOps != sim.NumOps {
		t.Errorf("timing: served (%g, %g, %d), direct (%g, %g, %d)",
			resp.MakespanSeconds, resp.EffectiveGbps, resp.NumOps,
			sim.Makespan, sim.EffectiveGbps, sim.NumOps)
	}
	if resp.NumUnits != len(task.Units) {
		t.Errorf("units: %d vs %d", resp.NumUnits, len(task.Units))
	}
	if resp.Key != resharding.CacheKey(task, opts.WithDefaults()) {
		t.Errorf("key mismatch: %q", resp.Key)
	}
}

// TestPlanTranslatedHitRemapsDevices: a request served from an entry
// planned for a congruent boundary on different hosts must get sender
// devices in its own meshes — identical to planning it directly.
func TestPlanTranslatedHitRemapsDevices(t *testing.T) {
	s, client := newTestServer(t, Config{})
	ctx := context.Background()
	mk := func(srcMesh, dstMesh string) *PlanRequest {
		return &PlanRequest{
			Topology: TopologyRef{Name: "p3", Hosts: 4},
			Shape:    []int{64, 96},
			Src:      Endpoint{Mesh: srcMesh, Spec: "S01R"},
			Dst:      Endpoint{Mesh: dstMesh, Spec: "S0R"},
			Options:  PlanOptions{Seed: 1},
		}
	}
	// Populate the cache with the boundary on hosts 0-1...
	if _, err := client.Plan(ctx, mk("2x2@0", "2x2@4")); err != nil {
		t.Fatal(err)
	}
	// ...then request the congruent boundary on hosts 2-3.
	resp, err := client.Plan(ctx, mk("2x2@8", "2x2@12"))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Cache().Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("translated boundary must hit the cache: %+v", st)
	}
	for i, d := range resp.Senders {
		if d < 8 || d > 11 {
			t.Errorf("sender %d = device %d, not in the requested source mesh [8,11]", i, d)
		}
	}

	// And the remapped plan equals the direct path on the translated task.
	topo, err := mesh.DefaultRegistry().Build("p3", mesh.TopologyParams{Hosts: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, err := topo.Slice([]int{2, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := topo.Slice([]int{2, 2}, 12)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := NormalizedOptions(PlanOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := resharding.NewPlan(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]int, len(task.Units))
	for i := range direct {
		direct[i] = plan.SenderOf[i]
	}
	if !reflect.DeepEqual(resp.Senders, direct) {
		t.Errorf("translated hit: served senders %v, direct %v", resp.Senders, direct)
	}
	if !reflect.DeepEqual(resp.Order, plan.Order) {
		t.Errorf("translated hit: served order %v, direct %v", resp.Order, plan.Order)
	}
}

// TestPlanCoalescing pins the tentpole: N concurrent identical requests
// plan exactly once, and every response is identical.
func TestPlanCoalescing(t *testing.T) {
	const n = 64
	s, client := newTestServer(t, Config{})
	responses := make([]*PlanResponse, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := client.Plan(context.Background(), testReq(1))
			if err != nil {
				t.Error(err)
				return
			}
			responses[i] = resp
		}(i)
	}
	close(start)
	wg.Wait()

	if st := s.Cache().Stats(); st.Misses != 1 {
		t.Errorf("duplicate-key burst must plan once: %+v", st)
	}
	for i, r := range responses {
		if r == nil {
			t.Fatalf("request %d failed", i)
		}
		if !reflect.DeepEqual(r.Senders, responses[0].Senders) ||
			!reflect.DeepEqual(r.Order, responses[0].Order) ||
			r.MakespanSeconds != responses[0].MakespanSeconds {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan.OK != n {
		t.Errorf("ok = %d, want %d", stats.Plan.OK, n)
	}
	// Coalesced + cache hits + the single planning pass account for all n.
	if int(stats.Plan.Coalesced)+s.Cache().Stats().Hits+1 != n {
		t.Errorf("accounting: %d coalesced + %d hits + 1 miss != %d",
			stats.Plan.Coalesced, s.Cache().Stats().Hits, n)
	}
}

// TestBackpressure429 pins admission control: with the pool and queue
// full, new requests are rejected immediately with 429 + Retry-After, and
// the pool recovers once drained.
func TestBackpressure429(t *testing.T) {
	s, client := newTestServer(t, Config{PlanWorkers: 1, PlanQueue: 1})
	// Fill every queue token; requests now fail fast at admission.
	for i := 0; i < cap(s.plan.queue); i++ {
		s.plan.queue <- struct{}{}
	}
	_, err := client.Plan(context.Background(), testReq(1))
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("want OverloadedError, got %v", err)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("Retry-After hint missing: %+v", over)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", stats.Plan.Rejected)
	}

	// Drain; the same request now succeeds.
	for i := 0; i < cap(s.plan.queue); i++ {
		<-s.plan.queue
	}
	if _, err := client.Plan(context.Background(), testReq(1)); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestServedLRUBound pins the memory-flatness property end to end: a
// small-capacity server absorbing many distinct requests keeps its cache
// at the bound.
func TestServedLRUBound(t *testing.T) {
	const capacity = 4
	s, client := newTestServer(t, Config{Cache: resharding.NewLRUPlanCache(capacity)})
	for seed := int64(1); seed <= 5*capacity; seed++ {
		if _, err := client.Plan(context.Background(), testReq(seed)); err != nil {
			t.Fatal(err)
		}
		if st := s.Cache().Stats(); st.Entries > capacity {
			t.Fatalf("entries %d > capacity %d", st.Entries, capacity)
		}
	}
	st := s.Cache().Stats()
	if st.Evictions == 0 {
		t.Error("distinct-key flood must evict")
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Entries != st.Entries || stats.Cache.Evictions != st.Evictions || stats.Cache.Capacity != capacity {
		t.Errorf("stats endpoint disagrees with cache: %+v vs %+v", stats.Cache, st)
	}
}

// TestAutotuneMatchesDirectPath: the served grid search returns the same
// winner and trials as resharding.Autotune.
func TestAutotuneMatchesDirectPath(t *testing.T) {
	_, client := newTestServer(t, Config{})
	resp, err := client.Autotune(context.Background(), &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  PlanOptions{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	task, opts := directTask(t, 1)
	direct, err := resharding.Autotune(task, resharding.AutotuneOptions{Base: opts})
	if err != nil {
		t.Fatal(err)
	}
	if resp.BestIndex != direct.BestIndex {
		t.Errorf("best index: served %d, direct %d", resp.BestIndex, direct.BestIndex)
	}
	if resp.Winner != direct.Trials[direct.BestIndex].Candidate.String() {
		t.Errorf("winner: served %q, direct %q", resp.Winner, direct.Trials[direct.BestIndex].Candidate)
	}
	if resp.MakespanSeconds != direct.BestSim.Makespan {
		t.Errorf("makespan: served %g, direct %g", resp.MakespanSeconds, direct.BestSim.Makespan)
	}
	if len(resp.Trials) != len(direct.Trials) {
		t.Fatalf("trials: %d vs %d", len(resp.Trials), len(direct.Trials))
	}
	for i := range resp.Trials {
		if resp.Trials[i].MakespanSeconds != direct.Trials[i].Makespan {
			t.Errorf("trial %d: %g vs %g", i, resp.Trials[i].MakespanSeconds, direct.Trials[i].Makespan)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	cases := []struct {
		name string
		req  *PlanRequest
	}{
		{"unknown topology", &PlanRequest{Topology: TopologyRef{Name: "nope"}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}}},
		{"bad mesh", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}}},
		{"bad spec", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "Q"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}}},
		{"bad dtype", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4}, DType: "int8",
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}}},
		{"bad strategy", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"},
			Options: PlanOptions{Strategy: "teleport"}}},
		{"unbounded trials", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"},
			Options: PlanOptions{Trials: MaxTrials + 1}}},
		{"unbounded dfs", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"},
			Options: PlanOptions{DFSNodes: MaxDFSNodes + 1}}},
		{"unbounded hosts", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 1 << 30}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}}},
		{"overlapping meshes", &PlanRequest{Topology: TopologyRef{Name: "p3", Hosts: 2}, Shape: []int{4, 4},
			Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@0", Spec: "S0R"}}},
	}
	for _, tc := range cases {
		_, err := client.Plan(ctx, tc.req)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
			t.Errorf("%s: want 400, got %v", tc.name, err)
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan.Errors != int64(len(cases)) {
		t.Errorf("errors = %d, want %d", stats.Plan.Errors, len(cases))
	}
	if len(stats.Topologies) == 0 {
		t.Error("stats must list topologies")
	}
}

// TestIntakeBackpressure: the parse stage has its own gate, so even
// requests that never reach a worker pool are bounded and rejected with
// 429 when it overflows.
func TestIntakeBackpressure(t *testing.T) {
	s, client := newTestServer(t, Config{})
	for i := 0; i < cap(s.intake.queue); i++ {
		s.intake.queue <- struct{}{}
	}
	_, err := client.Plan(context.Background(), testReq(1))
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("want OverloadedError from the intake gate, got %v", err)
	}
	for i := 0; i < cap(s.intake.queue); i++ {
		<-s.intake.queue
	}
	if _, err := client.Plan(context.Background(), testReq(1)); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestFlightGroupSurvivesPanic: a panicking leader must release the key
// and wake its waiters with an error, not poison the key forever.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	var g flightGroup
	leaderIn := make(chan struct{})
	waiterErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("the panic must propagate to the leader's caller")
			}
		}()
		g.do(context.Background(), "k", func() (interface{}, error) {
			close(leaderIn)
			panic("boom")
		})
	}()
	go func() {
		defer wg.Done()
		<-leaderIn
		_, err, _ := g.do(context.Background(), "k", func() (interface{}, error) {
			// May run if the leader already unwound; that is fine — the
			// key must be free again.
			return "fresh", nil
		})
		waiterErr <- err
	}()
	wg.Wait()
	if err := <-waiterErr; err != nil && err.Error() != "service: in-flight call panicked" {
		t.Errorf("waiter got %v", err)
	}
	// The key is released: a later call computes normally.
	v, err, shared := g.do(context.Background(), "k", func() (interface{}, error) { return 42, nil })
	if err != nil || shared || v != 42 {
		t.Errorf("post-panic call: v=%v err=%v shared=%v", v, err, shared)
	}
}

// TestTopologyCacheSharesInstances: repeated requests for one preset reuse
// the built topology.
func TestTopologyCacheSharesInstances(t *testing.T) {
	var tc topologyCache
	reg := mesh.DefaultRegistry()
	a, err := tc.get(reg, TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.get(reg, TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same ref must return the same topology instance")
	}
	c, err := tc.get(reg, TopologyRef{Name: "mixed", Hosts: 3, Oversubscription: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different oversubscription must build a different topology")
	}
	// Name normalization: case/whitespace variants share the memo slot.
	d, err := tc.get(reg, TopologyRef{Name: " MIXED ", Hosts: 3, Oversubscription: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if d != a {
		t.Error("case/whitespace variants of one preset must share the memo slot")
	}
}

// BenchmarkServedPlanCached measures the cached-lookup hot path through
// the full HTTP stack (the loadgen steady state).
func BenchmarkServedPlanCached(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := NewClient(ts.URL, nil)
	req := testReq(1)
	if _, err := client.Plan(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.Plan(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServedPlanDistinct measures the planning path: every request a
// fresh key against a bounded cache, i.e. the eviction steady state.
func BenchmarkServedPlanDistinct(b *testing.B) {
	s := New(Config{Cache: resharding.NewLRUPlanCache(64)})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := NewClient(ts.URL, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Plan(context.Background(), testReq(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}
