package service

import (
	"strconv"
	"sync"
	"time"
)

// SLO-aware admission control. The fixed worker pools bound *concurrency*;
// they know nothing about latency, so under a saturating open-loop arrival
// rate the queue in front of them grows until every response is late. The
// SLOController closes that loop: it watches a sliding window of served
// latencies plus the instantaneous queue depth and decides, per request,
// whether the server can still afford full-quality planning.
//
// The controller is a three-state machine with hysteresis:
//
//	full ──p99 ≥ DegradeAt·budget──▶ degraded ──p99 ≥ ShedAt·budget──▶ shed
//	  ◀──p99 < RecoverAt·budget──       ◀──p99 < DegradeAt·budget──
//	       (after Dwell)                     (after Dwell)
//
//   - degraded: /v2/plan misses are planned with the search-free
//     resharding.SchedDegraded ensemble instead of the ensemble DFS —
//     bounded microseconds of scheduling work per fill instead of a
//     node-budgeted search. Degraded responses carry `"degraded":true`
//     (binary: a flags bit) and the X-Alpacomm-Admission header, and
//     partition under their own cache keys (the scheduler is part of
//     resharding.CacheKey), so they never pollute full-quality entries.
//   - shed: misses are rejected with the structured `overloaded` envelope
//     and Retry-After. Cache hits are always served — a hit costs
//     microseconds and shedding it would protect nothing.
//
// Escalation (full→degraded→shed) acts immediately, one level per
// evaluation; de-escalation additionally requires Dwell of residence in
// the current state, so a p99 estimate oscillating around a threshold
// cannot flap the mode. Queue depth is the fast path: a burst fills the
// pool long before its latencies are observable, so depth thresholds
// escalate even while the latency window still looks healthy.
//
// The clock is injected (NewSLOController's now). Every decision is a pure
// function of (config, observed samples, clock), which is what makes the
// degrade→shed→recover sequence unit-testable without sleeps or wall time.

// SLOConfig configures the admission controller. The zero value disables
// it (Config.SLO nil or P99Budget 0 = no controller, fixed pools only).
type SLOConfig struct {
	// P99Budget is the corrected-p99 latency target the server defends.
	// Required: 0 disables the controller.
	P99Budget time.Duration
	// Window is the sliding window over which p99 is estimated; default 2s.
	Window time.Duration
	// MinSamples is the minimum window population before latency thresholds
	// act (queue-depth thresholds always act); default 32.
	MinSamples int
	// DegradeAt escalates full→degraded when p99 ≥ DegradeAt·P99Budget;
	// default 0.75.
	DegradeAt float64
	// ShedAt escalates degraded→shed when p99 ≥ ShedAt·P99Budget;
	// default 1.0.
	ShedAt float64
	// RecoverAt de-escalates degraded→full when p99 < RecoverAt·P99Budget
	// (after Dwell); default 0.5. The gap between RecoverAt and DegradeAt
	// is the hysteresis band.
	RecoverAt float64
	// Dwell is the minimum residence time in a state before de-escalating;
	// default 500ms.
	Dwell time.Duration
	// EvalEvery throttles the p99 re-estimate (the sort); default 10ms.
	// Negative re-evaluates on every Admit — deterministic tests use this.
	EvalEvery time.Duration
	// DegradeDepth escalates full→degraded when the in-flight count reaches
	// it; default plan workers + queue (the pool is saturated).
	DegradeDepth int
	// ShedDepth escalates degraded→shed at this in-flight count; default
	// 4x DegradeDepth.
	ShedDepth int
}

// withDefaults fills unset fields; depth defaults derive from the plan
// pool's size.
func (c SLOConfig) withDefaults(planWorkers, planQueue int) SLOConfig {
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 0.75
	}
	if c.ShedAt <= 0 {
		c.ShedAt = 1.0
	}
	if c.RecoverAt <= 0 {
		c.RecoverAt = 0.5
	}
	if c.Dwell <= 0 {
		c.Dwell = 500 * time.Millisecond
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 10 * time.Millisecond
	}
	if c.DegradeDepth <= 0 {
		c.DegradeDepth = planWorkers + planQueue
	}
	if c.ShedDepth <= 0 {
		c.ShedDepth = 4 * c.DegradeDepth
	}
	return c
}

// AdmissionMode is the controller's decision for one request.
type AdmissionMode int

const (
	// AdmitFull: plan at full quality.
	AdmitFull AdmissionMode = iota
	// AdmitDegraded: serve cache hits; plan misses with the search-free
	// degraded scheduler.
	AdmitDegraded
	// AdmitShed: serve cache hits (full or degraded); reject misses.
	AdmitShed
)

func (m AdmissionMode) String() string {
	switch m {
	case AdmitFull:
		return "full"
	case AdmitDegraded:
		return "degraded"
	case AdmitShed:
		return "shed"
	default:
		return "mode(" + strconv.Itoa(int(m)) + ")"
	}
}

// AdmissionStats is the /v2/stats `admission` block.
type AdmissionStats struct {
	// Mode is the controller's current state.
	Mode string `json:"mode"`
	// P99Ms is the current sliding-window p99 estimate.
	P99Ms float64 `json:"p99_ms"`
	// BudgetMs is the configured p99 budget.
	BudgetMs float64 `json:"budget_ms"`
	// WindowSamples is the window population behind the estimate.
	WindowSamples int `json:"window_samples"`
	// Degrades / Sheds count escalations into each state; Recoveries counts
	// de-escalations (shed→degraded and degraded→full).
	Degrades   int64 `json:"degrades"`
	Sheds      int64 `json:"sheds"`
	Recoveries int64 `json:"recoveries"`
	// DegradedServed counts responses planned at degraded quality;
	// ShedRequests counts rejected requests, of which FullQualityShed
	// required full quality (and so could not take the degraded path).
	DegradedServed  int64 `json:"degraded_served"`
	ShedRequests    int64 `json:"shed_requests"`
	FullQualityShed int64 `json:"full_quality_shed"`
	// Transitions is the recent transition log, oldest first, as
	// "from→to@<ms since controller start>ms".
	Transitions []string `json:"transitions,omitempty"`
}

// maxSLOSamples bounds the latency ring: at high rates the window is
// effectively "the last 4096 responses", which is plenty for a p99.
const maxSLOSamples = 4096

// maxSLOTransitions bounds the transition log kept for stats.
const maxSLOTransitions = 64

type latSample struct {
	at  time.Time
	lat time.Duration
}

// SLOController is the admission controller. Safe for concurrent use. All
// methods are non-blocking; Admit's cost is a mutex plus, at most every
// EvalEvery, one sort of the window.
type SLOController struct {
	cfg SLOConfig
	now func() time.Time

	mu             sync.Mutex
	start          time.Time
	mode           AdmissionMode
	lastEval       time.Time
	evaluated      bool
	lastTransition time.Time
	ring           [maxSLOSamples]latSample
	head, count    int
	scratch        []time.Duration
	p99            time.Duration
	windowN        int

	degrades, sheds, recoveries                   int64
	degradedServed, shedRequests, fullQualityShed int64
	transitions                                   []string
}

// NewSLOController builds a controller; now nil means the wall clock.
// Depth defaults (when unset) derive from GOMAXPROCS-shaped pools; New
// passes the server's actual pool sizes instead.
func NewSLOController(cfg SLOConfig, now func() time.Time) *SLOController {
	if now == nil {
		now = time.Now
	}
	w := defaultPlanWorkers()
	cfg = cfg.withDefaults(w, 4*w)
	t := now()
	return &SLOController{
		cfg:            cfg,
		now:            now,
		start:          t,
		lastTransition: t,
	}
}

// Observe records one served request's latency (measured from handler
// entry, i.e. including queue wait). Only successful plan responses are
// observed; rejections are not evidence about service latency.
func (c *SLOController) Observe(lat time.Duration) {
	c.mu.Lock()
	i := (c.head + c.count) % maxSLOSamples
	if c.count == maxSLOSamples {
		c.head = (c.head + 1) % maxSLOSamples
	} else {
		c.count++
	}
	c.ring[i] = latSample{at: c.now(), lat: lat}
	c.mu.Unlock()
}

// Admit evaluates the state machine against the current clock, window and
// queue depth, and returns the mode the request should be served under.
func (c *SLOController) Admit(depth int) AdmissionMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evaluate(c.now(), depth)
	return c.mode
}

// Mode returns the current mode without re-evaluating.
func (c *SLOController) Mode() AdmissionMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// NoteDegraded counts one response served at degraded quality.
func (c *SLOController) NoteDegraded() {
	c.mu.Lock()
	c.degradedServed++
	c.mu.Unlock()
}

// NoteShed counts one rejected request; fullQuality marks a client that
// required full quality and so could not be served degraded.
func (c *SLOController) NoteShed(fullQuality bool) {
	c.mu.Lock()
	c.shedRequests++
	if fullQuality {
		c.fullQualityShed++
	}
	c.mu.Unlock()
}

// Snapshot returns the stats block.
func (c *SLOController) Snapshot() AdmissionStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return AdmissionStats{
		Mode:            c.mode.String(),
		P99Ms:           float64(c.p99) / float64(time.Millisecond),
		BudgetMs:        float64(c.cfg.P99Budget) / float64(time.Millisecond),
		WindowSamples:   c.windowN,
		Degrades:        c.degrades,
		Sheds:           c.sheds,
		Recoveries:      c.recoveries,
		DegradedServed:  c.degradedServed,
		ShedRequests:    c.shedRequests,
		FullQualityShed: c.fullQualityShed,
		Transitions:     append([]string(nil), c.transitions...),
	}
}

// Transitions returns the recent transition log, oldest first.
func (c *SLOController) Transitions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.transitions...)
}

// evaluate advances the state machine. Escalations act on the spot (one
// level per evaluation); de-escalations require Dwell of residence plus a
// p99 safely inside the next state's band — the hysteresis that keeps an
// estimate hovering at a threshold from flapping the mode. Caller holds mu.
func (c *SLOController) evaluate(now time.Time, depth int) {
	if !c.evaluated || c.cfg.EvalEvery < 0 || now.Sub(c.lastEval) >= c.cfg.EvalEvery {
		c.p99, c.windowN = c.windowP99(now)
		c.lastEval = now
		c.evaluated = true
	}
	degradeUp := scaleDuration(c.cfg.P99Budget, c.cfg.DegradeAt)
	shedUp := scaleDuration(c.cfg.P99Budget, c.cfg.ShedAt)
	recoverDown := scaleDuration(c.cfg.P99Budget, c.cfg.RecoverAt)
	latencyKnown := c.windowN >= c.cfg.MinSamples
	dwelt := now.Sub(c.lastTransition) >= c.cfg.Dwell
	switch c.mode {
	case AdmitFull:
		if (latencyKnown && c.p99 >= degradeUp) || depth >= c.cfg.DegradeDepth {
			c.transition(AdmitDegraded, now)
		}
	case AdmitDegraded:
		switch {
		case (latencyKnown && c.p99 >= shedUp) || depth >= c.cfg.ShedDepth:
			c.transition(AdmitShed, now)
		case dwelt && c.p99 < recoverDown && depth < c.cfg.DegradeDepth:
			c.transition(AdmitFull, now)
		}
	case AdmitShed:
		if dwelt && c.p99 < degradeUp && depth < c.cfg.ShedDepth {
			c.transition(AdmitDegraded, now)
		}
	}
}

func (c *SLOController) transition(to AdmissionMode, now time.Time) {
	from := c.mode
	c.mode = to
	c.lastTransition = now
	switch {
	case to == AdmitShed:
		c.sheds++
	case to == AdmitDegraded && from == AdmitFull:
		c.degrades++
	default:
		c.recoveries++
	}
	entry := from.String() + "→" + to.String() + "@" +
		strconv.FormatInt(now.Sub(c.start).Milliseconds(), 10) + "ms"
	if len(c.transitions) == maxSLOTransitions {
		copy(c.transitions, c.transitions[1:])
		c.transitions[maxSLOTransitions-1] = entry
	} else {
		c.transitions = append(c.transitions, entry)
	}
}

// windowP99 estimates the nearest-rank p99 over the samples inside the
// window. Caller holds mu.
func (c *SLOController) windowP99(now time.Time) (time.Duration, int) {
	cutoff := now.Add(-c.cfg.Window)
	c.scratch = c.scratch[:0]
	for k := 0; k < c.count; k++ {
		s := &c.ring[(c.head+k)%maxSLOSamples]
		if s.at.After(cutoff) {
			c.scratch = append(c.scratch, s.lat)
		}
	}
	n := len(c.scratch)
	if n == 0 {
		return 0, 0
	}
	sortDurations(c.scratch)
	idx := (99*n + 99) / 100 // ceil(0.99n)
	if idx < 1 {
		idx = 1
	}
	return c.scratch[idx-1], n
}

// sortDurations is an in-place insertion-friendly sort; windows are small
// (≤ maxSLOSamples) and mostly ordered, so a shell sort beats pulling in
// sort.Slice's closure allocation on the admit path.
func sortDurations(d []time.Duration) {
	for gap := len(d) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(d); i++ {
			v := d[i]
			j := i
			for ; j >= gap && d[j-gap] > v; j -= gap {
				d[j] = d[j-gap]
			}
			d[j] = v
		}
	}
}

func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
