package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
)

// The /v2 API serves the same planner session as /v1 with three additions:
//
//   - a structured, machine-readable error envelope ({"error": {code,
//     message, retryable, retry_after_seconds}}) instead of /v1's flat
//     string, so clients branch on codes rather than parsing prose;
//
//   - deadline propagation: the X-Timeout-Ms request header bounds the
//     server-side work (queue wait, coalesced wait, grid search) with a
//     context deadline, so a client budget reaches every layer below;
//
//   - POST /v2/plan:batch — all stage boundaries of a pipeline job in one
//     request. Items are grouped by canonical cache key server-side, so the
//     congruent boundaries of a deep pipeline cost one planner computation
//     total, and every item's senders are remapped into its own meshes.

// TimeoutHeader is the /v2 deadline-propagation header: a positive integer
// millisecond budget for the whole server-side computation.
const TimeoutHeader = "X-Timeout-Ms"

// MaxTimeoutMs caps the propagated deadline; like every client-supplied
// parameter it must not scale server state unboundedly.
const MaxTimeoutMs = 10 * 60 * 1000

// MaxBatchItems bounds one /v2/plan:batch request: deeper jobs split into
// multiple requests (the cache makes the split free).
const MaxBatchItems = 256

// V2 error codes.
const (
	// CodeInvalidArgument: the request cannot be planned as written (400).
	CodeInvalidArgument = "invalid_argument"
	// CodeUnplannable: the request parsed but planning failed (422).
	CodeUnplannable = "unplannable"
	// CodeOverloaded: admission queues are full; retry after backoff (429).
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the propagated deadline fired first (504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the client went away mid-computation (499).
	CodeCanceled = "canceled"
	// CodeMethodNotAllowed: wrong HTTP method (405).
	CodeMethodNotAllowed = "method_not_allowed"
)

// V2Error is the structured error payload of every non-2xx /v2 response,
// wrapped as {"error": {...}}. Retryable errors carry the same request
// again later; RetryAfterSeconds, when set, is the server's backoff hint.
type V2Error struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	Retryable         bool   `json:"retryable,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// V2ErrorEnvelope is the /v2 error body.
type V2ErrorEnvelope struct {
	Error V2Error `json:"error"`
}

// BatchPlanItem is one boundary of a /v2/plan:batch request; the topology
// is shared by the whole batch.
type BatchPlanItem struct {
	Shape   []int       `json:"shape"`
	DType   string      `json:"dtype,omitempty"`
	Src     Endpoint    `json:"src"`
	Dst     Endpoint    `json:"dst"`
	Options PlanOptions `json:"options"`
}

// BatchPlanRequest plans every stage boundary of a pipeline job in one
// request. Congruent items (same canonical cache key under host
// translation) are planned once. The optional Faults overlay applies to
// the whole batch — the degraded-fleet shape of the same job — and
// re-keys every item away from its healthy twin.
type BatchPlanRequest struct {
	Topology TopologyRef     `json:"topology"`
	Faults   *FaultsRef      `json:"faults,omitempty"`
	Items    []BatchPlanItem `json:"items"`
}

// BatchPlanItemResult is one item's outcome: exactly one of Plan and Error
// is set. Item-level errors (a malformed boundary, an unplannable spec) do
// not fail the sibling items; batch-level failures (overload, deadline)
// fail the whole request with a top-level envelope instead.
type BatchPlanItemResult struct {
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error *V2Error      `json:"error,omitempty"`
}

// BatchPlanResponse reports a batch in request order.
type BatchPlanResponse struct {
	Items []BatchPlanItemResult `json:"items"`
	// Distinct is the number of congruent-boundary equivalence classes the
	// batch collapsed to — the number of planner computations the request
	// could cost at most (cache hits cost zero).
	Distinct int `json:"distinct"`
	// Coalesced counts distinct classes served from another request's
	// in-flight computation.
	Coalesced int `json:"coalesced"`
}

// v2Ctx derives the request context from the X-Timeout-Ms header. The
// returned cancel must always be called.
func v2Ctx(r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get(TimeoutHeader)
	if h == "" {
		return r.Context(), func() {}, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return nil, nil, &badRequestError{fmt.Errorf("bad %s header %q: want a positive integer millisecond budget", TimeoutHeader, h)}
	}
	if ms > MaxTimeoutMs {
		ms = MaxTimeoutMs
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// v2Error classifies an error into its envelope and HTTP status. ctx is
// the request's own context: a context error that the request's ctx did
// NOT produce was inherited from a coalesced flight whose leader
// disconnected or timed out — this request holds a valid problem that was
// never attempted, so it gets a retryable "overloaded" (as /v1 does), not
// a deadline/cancel code that would lie about its own budget.
func (s *Server) v2Error(ctx context.Context, err error) (int, V2Error) {
	var bad *badRequestError
	ctxErr := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	switch {
	case errors.Is(err, errOverloaded) || errors.Is(err, errSLOShed) || (ctxErr && ctx.Err() == nil):
		return http.StatusTooManyRequests, V2Error{
			Code: CodeOverloaded, Message: err.Error(), Retryable: true,
			RetryAfterSeconds: retryAfterSeconds(s.retryAfter),
		}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, V2Error{
			Code: CodeDeadlineExceeded, Message: err.Error(), Retryable: true,
		}
	case errors.Is(err, context.Canceled):
		// 499 (client closed request): the requester is gone.
		return 499, V2Error{Code: CodeCanceled, Message: err.Error(), Retryable: true}
	case errors.As(err, &bad):
		return http.StatusBadRequest, V2Error{Code: CodeInvalidArgument, Message: bad.err.Error()}
	default:
		return http.StatusUnprocessableEntity, V2Error{Code: CodeUnplannable, Message: err.Error()}
	}
}

// failV2 writes the envelope — JSON or, when the request negotiated it,
// the binary error frame — and bumps the endpoint counters the same way
// the /v1 writers do: 429/deadline/cancel count as rejected, the rest as
// errors.
func (s *Server) failV2(ctx context.Context, w http.ResponseWriter, c *endpointCounters, err error, bin bool) {
	status, ve := s.v2Error(ctx, err)
	if ve.Retryable {
		c.rejected.Add(1)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.retryAfter)))
		}
	} else {
		c.errors.Add(1)
	}
	s.writeV2Error(w, status, ve, bin)
}

// writeV2Error renders one envelope in the request's negotiated format.
func (s *Server) writeV2Error(w http.ResponseWriter, status int, ve V2Error, bin bool) {
	if !bin {
		writeJSON(w, status, V2ErrorEnvelope{Error: ve})
		return
	}
	buf := getBuf()
	b := appendErrorBinary((*buf)[:0], &ve)
	*buf = b
	writeBinary(w, status, b)
	putBuf(buf)
}

// decodeV2 is decode with the v2 envelope on failure.
func (s *Server) decodeV2(w http.ResponseWriter, r *http.Request, dst interface{}, c *endpointCounters, bin bool) bool {
	if r.Method != http.MethodPost {
		c.errors.Add(1)
		s.writeV2Error(w, http.StatusMethodNotAllowed, V2Error{
			Code: CodeMethodNotAllowed, Message: "use POST",
		}, bin)
		return false
	}
	dec := newBodyDecoder(w, r)
	if err := dec.Decode(dst); err != nil {
		s.failV2(r.Context(), w, c, &badRequestError{fmt.Errorf("bad request body: %v", err)}, bin)
		return false
	}
	return true
}

// handlePlanV2 is /v1/plan over the same planner session with the v2
// envelope and deadline propagation; the plan payload is byte-identical to
// /v1's for the same request.
func (s *Server) handlePlanV2(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.planC.requests.Add(1)
	bin := wantsBinary(r)
	var req PlanRequest
	if !s.decodeV2(w, r, &req, &s.planC, bin) {
		return
	}
	ctx, cancel, err := v2Ctx(r)
	if err != nil {
		s.failV2(r.Context(), w, &s.planC, err, bin)
		return
	}
	defer cancel()
	task, opts, cacheKey, err := s.parseTask(ctx,
		req.Topology, req.Faults, req.Shape, req.DType, req.Src, req.Dst, req.Options)
	if err != nil {
		s.failV2(ctx, w, &s.planC, err, bin)
		return
	}
	// A degraded request replans warm from its fault-free twin when the
	// twin is cached: the healthy parse is memoized, so under churn (the
	// same boundary arriving with one overlay after another) this costs a
	// memo lookup, and the fill diffs instances instead of searching from
	// scratch. A twin parse failure just plans cold — warming is an
	// optimization, never a new failure mode.
	var fromKey string
	var fromTask *sharding.Task
	if req.Faults != nil {
		if t0, _, k0, err := s.parseTask(ctx,
			req.Topology, nil, req.Shape, req.DType, req.Src, req.Dst, req.Options); err == nil && k0 != cacheKey {
			fromKey, fromTask = k0, t0
		}
	}

	s.planC.inFlight.Add(1)
	defer s.planC.inFlight.Add(-1)

	// SLO admission. A full-quality cache hit is served whatever the mode
	// — it costs microseconds and shedding it protects nothing. On a miss,
	// degraded mode rewrites the request to the search-free scheduler
	// (partitioned under its own cache key, never proxied to a peer, never
	// warm-started — its planning is already cheap), and shed mode rejects
	// with the structured overloaded envelope, after trying the
	// already-cached degraded entry for clients that accept one. A client
	// that required full quality ("quality":"full") is never answered with
	// a degraded plan: it gets the full-quality hit or the rejection.
	wireReq, forwarded := &req, isPeerRequest(r)
	degraded := false
	if s.slo != nil {
		if mode := s.slo.Admit(int(s.planC.inFlight.Load())); mode != AdmitFull {
			fullOnly := qualityRequiresFull(req.Options.Quality)
			if p, ok := s.cachedPlan(cacheKey, opts); ok {
				s.servePlan(w, &s.planC, p, task, opts, cacheKey, false, bin)
				s.slo.Observe(time.Since(start))
				return
			}
			if fullOnly || mode == AdmitShed {
				if !fullOnly {
					dOpts := degradeOptions(opts)
					dKey := resharding.CacheKey(task, dOpts)
					if p, ok := s.cachedPlan(dKey, dOpts); ok {
						w.Header().Set(AdmissionHeader, "degraded")
						s.slo.NoteDegraded()
						s.servePlan(w, &s.planC, p, task, dOpts, dKey, false, bin)
						s.slo.Observe(time.Since(start))
						return
					}
				}
				w.Header().Set(AdmissionHeader, "shed")
				s.slo.NoteShed(fullOnly)
				s.failV2(ctx, w, &s.planC, errSLOShed, bin)
				return
			}
			opts = degradeOptions(opts)
			cacheKey = resharding.CacheKey(task, opts)
			fromKey, fromTask, wireReq = "", nil, nil
			degraded = true
		}
	}

	p, shared, err := s.computePlan(ctx, cacheKey, task, opts, wireReq, forwarded, fromKey, fromTask)
	if err != nil {
		s.failV2(ctx, w, &s.planC, err, bin)
		return
	}
	if shared {
		s.planC.coalesced.Add(1)
	}
	if degraded {
		w.Header().Set(AdmissionHeader, "degraded")
		s.slo.NoteDegraded()
	}
	s.servePlan(w, &s.planC, p, task, opts, cacheKey, shared, bin)
	if s.slo != nil {
		s.slo.Observe(time.Since(start))
	}
}

// qualityRequiresFull reports whether the request's quality option forbids
// a degraded answer; "" and "auto" accept one.
func qualityRequiresFull(q string) bool { return q == "full" }

// degradeOptions is the degraded twin of full-quality options: the
// search-free scheduler with every search knob normalized away, so all
// degraded fills of one boundary share one cache key no matter which
// seeds, trials or node budgets the original requests carried — and that
// key can never collide with a full-quality entry (the scheduler is part
// of resharding.CacheKey).
func degradeOptions(o resharding.Options) resharding.Options {
	d := resharding.Options{
		Strategy:  o.Strategy,
		Scheduler: resharding.SchedDegraded,
		Chunks:    o.Chunks,
		DFSNodes:  resharding.DefaultAutotuneDFSNodes,
	}
	return d.WithDefaults()
}

// handleAutotuneV2 is /v1/autotune with the v2 envelope and deadline
// propagation — so a deadline (or disconnect) aborts a queued or running
// grid search.
func (s *Server) handleAutotuneV2(w http.ResponseWriter, r *http.Request) {
	s.autotuneC.requests.Add(1)
	bin := wantsBinary(r)
	var req AutotuneRequest
	if !s.decodeV2(w, r, &req, &s.autotuneC, bin) {
		return
	}
	if req.Workers < 0 {
		s.failV2(r.Context(), w, &s.autotuneC, &badRequestError{fmt.Errorf("negative workers")}, bin)
		return
	}
	ctx, cancel, err := v2Ctx(r)
	if err != nil {
		s.failV2(r.Context(), w, &s.autotuneC, err, bin)
		return
	}
	defer cancel()
	task, opts, cacheKey, err := s.parseTask(ctx,
		req.Topology, req.Faults, req.Shape, req.DType, req.Src, req.Dst, req.Options)
	if err != nil {
		s.failV2(ctx, w, &s.autotuneC, err, bin)
		return
	}

	s.autotuneC.inFlight.Add(1)
	defer s.autotuneC.inFlight.Add(-1)
	v, shared, err := s.computeAutotune(ctx, cacheKey, task, opts, req.Workers)
	if err != nil {
		s.failV2(ctx, w, &s.autotuneC, err, bin)
		return
	}
	resp := *v
	resp.Coalesced = shared
	if shared {
		s.autotuneC.coalesced.Add(1)
	}
	if bin {
		buf := getBuf()
		b := appendAutotuneBinary((*buf)[:0], &resp)
		*buf = b
		s.autotuneC.ok.Add(1)
		writeBinary(w, http.StatusOK, b)
		putBuf(buf)
		return
	}
	s.ok(w, &s.autotuneC, resp)
}

// batchItem is one parsed batch entry, carrying its equivalence class.
type batchItem struct {
	task *sharding.Task
	opts resharding.Options
	key  string
	err  error // parse error; the item is excluded from planning
}

// handlePlanBatch plans all boundaries of a pipeline job in one request.
// Items are parsed under one intake token, grouped by canonical cache key,
// and each distinct class is planned once through the shared session —
// exactly the computation N individual /v1/plan calls would coalesce to,
// without the N round trips.
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	s.batchC.requests.Add(1)
	bin := wantsBinary(r)
	var req BatchPlanRequest
	if !s.decodeV2(w, r, &req, &s.batchC, bin) {
		return
	}
	if len(req.Items) == 0 {
		s.failV2(r.Context(), w, &s.batchC, &badRequestError{fmt.Errorf("empty batch")}, bin)
		return
	}
	if len(req.Items) > MaxBatchItems {
		s.failV2(r.Context(), w, &s.batchC, &badRequestError{fmt.Errorf("batch has %d items, server bound is %d", len(req.Items), MaxBatchItems)}, bin)
		return
	}
	ctx, cancel, err := v2Ctx(r)
	if err != nil {
		s.failV2(r.Context(), w, &s.batchC, err, bin)
		return
	}
	defer cancel()

	s.batchC.inFlight.Add(1)
	defer s.batchC.inFlight.Add(-1)

	// Parse every item under one intake token: the whole batch is one
	// admission to the pre-planning stage, not MaxBatchItems of them. The
	// token is released by defer inside the closure so a panic in task
	// building cannot leak an intake slot.
	items := make([]batchItem, len(req.Items))
	if err := func() error {
		if err := s.intake.acquire(ctx); err != nil {
			return err
		}
		defer s.intake.release()
		// The topology and the fault overlay are shared by the whole
		// batch: resolve them once (overlay validation and down-link
		// detour precomputation are not free), then decompose per item. A
		// bad shared block fails every item identically, keeping the
		// per-item error semantics of other parse failures.
		topo, topoErr := buildTopology(s.reg, &s.topos, req.Topology, req.Faults)
		for i, it := range req.Items {
			if topoErr != nil {
				items[i] = batchItem{err: &badRequestError{fmt.Errorf("item %d: %v", i, topoErr)}}
				continue
			}
			task, opts, err := buildTaskOn(topo, it.Shape, it.DType, it.Src, it.Dst, it.Options)
			if err != nil {
				items[i] = batchItem{err: &badRequestError{fmt.Errorf("item %d: %v", i, err)}}
				continue
			}
			opts = opts.WithDefaults()
			items[i] = batchItem{task: task, opts: opts, key: resharding.CacheKey(task, opts)}
		}
		return nil
	}(); err != nil {
		s.failV2(ctx, w, &s.batchC, err, bin)
		return
	}

	// Group by equivalence class in first-seen order and plan each class
	// once, fanning distinct classes out concurrently — bounded by the
	// plan pool width, so one batch can saturate the workers it would be
	// admitted to anyway but cannot flood the admission queue. A
	// batch-level failure (overload, deadline, disconnect) aborts the
	// request: its items were never independently at fault.
	order := make([]string, 0, len(items))
	leaders := map[string]int{}
	for i := range items {
		if items[i].err != nil {
			continue
		}
		if _, seen := leaders[items[i].key]; !seen {
			leaders[items[i].key] = i
			order = append(order, items[i].key)
		}
	}
	classes := make(map[string]*planned, len(order))
	classShared := make(map[string]bool, len(order))
	classErrs := map[string]error{}
	coalesced := 0
	var fatal error
	var mu sync.Mutex
	gate := make(chan struct{}, cap(s.plan.slots))
	var wg sync.WaitGroup
	forwarded := isPeerRequest(r)
	for _, key := range order {
		wg.Add(1)
		go func(key string, li int) {
			defer wg.Done()
			gate <- struct{}{}
			defer func() { <-gate }()
			// Each class resolves through the cluster router like an
			// individual plan request would, so batch misses also land on
			// (and fill) their owning node; the per-item wire request is
			// built only on this miss path.
			it := &req.Items[li]
			itemReq := &PlanRequest{
				Topology: req.Topology, Faults: req.Faults,
				Shape: it.Shape, DType: it.DType,
				Src: it.Src, Dst: it.Dst, Options: it.Options,
			}
			p, shared, err := s.computePlan(ctx, key, items[li].task, items[li].opts, itemReq, forwarded, "", nil)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if shared {
					coalesced++
					classShared[key] = true
				}
				classes[key] = p
			case errors.Is(err, errOverloaded) || ctx.Err() != nil:
				// Admission overflow, or the batch's own deadline/client is
				// gone: the whole request fails retryably.
				if fatal == nil {
					fatal = err
				}
			default:
				// Includes a context error inherited from a foreign flight
				// leader that went away: this class alone reports a
				// retryable error (v2Error maps it to "overloaded" since
				// the batch's own ctx is live) while siblings keep their
				// plans.
				classErrs[key] = err
			}
		}(key, leaders[key])
	}
	wg.Wait()
	if fatal != nil {
		s.failV2(ctx, w, &s.batchC, fatal, bin)
		return
	}
	s.batchC.coalesced.Add(int64(coalesced))

	// Assemble the whole response into one pooled buffer: every planned
	// item appends its class's pre-serialized body (senders remapped into
	// its own meshes where needed) and item errors — the rare path —
	// marshal individually. One buffer, one Write, no per-item allocation
	// on the happy path.
	buf := getBuf()
	b := (*buf)[:0]
	if bin {
		b = appendBatchBinaryHeader(b, len(order), coalesced, len(items))
	} else {
		b = append(b, `{"items":[`...)
	}
	for i := range items {
		itemErr := items[i].err
		if itemErr == nil && items[i].key != "" {
			if err, ok := classErrs[items[i].key]; ok {
				itemErr = err
			}
		}
		if !bin && i > 0 {
			b = append(b, ',')
		}
		if itemErr != nil {
			_, ve := s.v2Error(ctx, itemErr)
			if bin {
				b = append(b, 1)
				b = appendErrorBinary(b, &ve)
				continue
			}
			eb, err := json.Marshal(&ve)
			if err != nil {
				// Unreachable for V2Error; keep the envelope well-formed.
				eb = []byte(`{"code":"unplannable","message":"error encoding failed"}`)
			}
			b = append(b, `{"error":`...)
			b = append(b, eb...)
			b = append(b, '}')
			continue
		}
		p := classes[items[i].key]
		shared := classShared[items[i].key]
		// Render per item: congruent items on different hosts each need
		// the shared plan's senders remapped into their own meshes.
		if bin {
			b = append(b, 0)
			if p.enc != nil {
				b = p.enc.appendBinary(b, items[i].task, shared)
			} else {
				pr := s.planResponse(p.plan, p.sim, items[i].task, items[i].opts, items[i].key, shared)
				b = appendPlanBinary(b, &pr)
			}
			continue
		}
		b = append(b, `{"plan":`...)
		if p.enc != nil {
			b = p.enc.appendJSON(b, items[i].task, shared)
		} else {
			pr := s.planResponse(p.plan, p.sim, items[i].task, items[i].opts, items[i].key, shared)
			pb, err := json.Marshal(&pr)
			if err != nil {
				pb = []byte(`null`)
			}
			b = append(b, pb...)
		}
		b = append(b, '}')
	}
	if !bin {
		b = append(b, `],"distinct":`...)
		b = strconv.AppendInt(b, int64(len(order)), 10)
		b = append(b, `,"coalesced":`...)
		b = strconv.AppendInt(b, int64(coalesced), 10)
		b = append(b, '}', '\n')
	}
	*buf = b
	s.batchC.ok.Add(1)
	if bin {
		writeBinary(w, http.StatusOK, b)
	} else {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	}
	putBuf(buf)
}
