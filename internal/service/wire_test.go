package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

func wireTestPlan() PlanResponse {
	return PlanResponse{
		Strategy:        "broadcast",
		Scheduler:       "ensemble",
		NumUnits:        4,
		Senders:         []int{0, 1, 2, 3},
		Order:           []int{3, 1, 0, 2},
		MakespanSeconds: 0.0123,
		EffectiveGbps:   87.5,
		NumOps:          12,
		Key:             "t=[64 96]/fp32;s=[2 2]/S01R@0.0;o=1/2/0/0/50000/0/7",
	}
}

func TestBinaryPlanRoundTrip(t *testing.T) {
	for _, coalesced := range []bool{false, true} {
		want := wireTestPlan()
		want.Coalesced = coalesced
		frame := appendPlanBinary(nil, &want)
		v, err := decodeBinary(frame)
		if err != nil {
			t.Fatalf("coalesced=%v: %v", coalesced, err)
		}
		got, ok := v.(*PlanResponse)
		if !ok {
			t.Fatalf("decoded %T, want *PlanResponse", v)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("coalesced=%v: round trip changed the plan:\n got %+v\nwant %+v", coalesced, *got, want)
		}
		// Re-encoding the decoded value must reproduce the frame exactly.
		if !bytes.Equal(appendPlanBinary(nil, got), frame) {
			t.Errorf("coalesced=%v: re-encoded frame differs", coalesced)
		}
	}
}

func TestBinaryAutotuneRoundTrip(t *testing.T) {
	want := AutotuneResponse{
		Winner:          "broadcast/ensemble",
		BestIndex:       2,
		MakespanSeconds: 0.5,
		EffectiveGbps:   12.25,
		Coalesced:       true,
		Trials: []AutotuneTrial{
			{Candidate: "send-recv/naive", MakespanSeconds: 1.5, EffectiveGbps: 4},
			{Candidate: "broadcast/dfs", Err: "budget exhausted"},
		},
	}
	frame := appendAutotuneBinary(nil, &want)
	v, err := decodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*AutotuneResponse)
	if !ok {
		t.Fatalf("decoded %T, want *AutotuneResponse", v)
	}
	if !reflect.DeepEqual(*got, want) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", *got, want)
	}
	if !bytes.Equal(appendAutotuneBinary(nil, got), frame) {
		t.Error("re-encoded frame differs")
	}
}

func TestBinaryErrorRoundTrip(t *testing.T) {
	want := V2Error{Code: CodeOverloaded, Message: "queue full", Retryable: true, RetryAfterSeconds: 3}
	frame := appendErrorBinary(nil, &want)
	v, err := decodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*V2Error)
	if !ok {
		t.Fatalf("decoded %T, want *V2Error", v)
	}
	if *got != want {
		t.Errorf("round trip changed the envelope: got %+v want %+v", *got, want)
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	plan := wireTestPlan()
	want := BatchPlanResponse{
		Distinct:  1,
		Coalesced: 1,
		Items: []BatchPlanItemResult{
			{Plan: &plan},
			{Error: &V2Error{Code: CodeInvalidArgument, Message: "item 1: bad src mesh"}},
		},
	}
	frame := appendBatchBinary(nil, &want)
	v, err := decodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*BatchPlanResponse)
	if !ok {
		t.Fatalf("decoded %T, want *BatchPlanResponse", v)
	}
	if !reflect.DeepEqual(*got, want) {
		t.Errorf("round trip changed the batch:\n got %+v\nwant %+v", *got, want)
	}
	if !bytes.Equal(appendBatchBinary(nil, got), frame) {
		t.Error("re-encoded frame differs")
	}
}

// TestBinaryDecodeRejectsMalformed exercises the decoder's failure paths:
// every malformed input must produce an error, never a panic and never a
// huge allocation.
func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	plan := wireTestPlan()
	good := appendPlanBinary(nil, &plan)
	cases := map[string][]byte{
		"empty":           {},
		"short magic":     good[:3],
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"unknown kind":    {'A', 'P', 'B', '1', 99},
		"truncated body":  good[:12],
		"truncated array": good[:binPlanSendersOff+2],
		"trailing bytes":  append(append([]byte{}, good...), 0),
	}
	// A frame that advertises a giant sender array must fail on the bound
	// check, not allocate.
	huge := append([]byte{}, good...)
	putU32(huge[binPlanSendersOff-4:], 1<<31-1)
	cases["oversized array count"] = huge

	for name, data := range cases {
		if _, err := decodeBinary(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// directTaskAt builds the testReq boundary on a p3 cluster of the given
// host count, with the source/destination meshes at arbitrary device
// offsets — congruent placements share a cache key, so two offsets give an
// identity task and a translated one.
func directTaskAt(t *testing.T, hosts, srcOff, dstOff int, seed int64) (*sharding.Task, resharding.Options) {
	t.Helper()
	topo, err := mesh.DefaultRegistry().Build("p3", mesh.TopologyParams{Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	src, err := topo.Slice([]int{2, 2}, srcOff)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := topo.Slice([]int{2, 2}, dstOff)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := NormalizedOptions(PlanOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return task, opts
}

// TestServedBodiesMatchPerRequestEncoding pins the serialize-once
// invariant: the segment-assembled bodies the hit path writes are
// byte-identical to encoding the per-request response struct — across the
// identity, coalesced and translated-sender cases, in both wire formats.
func TestServedBodiesMatchPerRequestEncoding(t *testing.T) {
	task, opts := directTaskAt(t, 4, 0, 4, 7)
	transTask, _ := directTaskAt(t, 4, 8, 12, 7)
	key := resharding.CacheKey(task, opts)
	if tk := resharding.CacheKey(transTask, opts); tk != key {
		t.Fatalf("translated task must share the cache key: %q vs %q", tk, key)
	}

	s := New(Config{})
	p, shared, err := s.computePlan(context.Background(), key, task, opts, nil, false, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared || p.enc == nil {
		t.Fatalf("fill: shared=%v enc=%v", shared, p.enc)
	}

	for _, tc := range []struct {
		name   string
		task   *sharding.Task
		shared bool
	}{
		{"identity", task, false},
		{"identity coalesced", task, true},
		{"translated", transTask, false},
		{"translated coalesced", transTask, true},
	} {
		resp := s.planResponse(p.plan, p.sim, tc.task, opts, key, tc.shared)
		wantJSON, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.enc.appendJSON(nil, tc.task, tc.shared); !bytes.Equal(got, wantJSON) {
			t.Errorf("%s json:\n got %s\nwant %s", tc.name, got, wantJSON)
		}
		wantBin := appendPlanBinary(nil, &resp)
		if got := p.enc.appendBinary(nil, tc.task, tc.shared); !bytes.Equal(got, wantBin) {
			t.Errorf("%s binary: served frame differs from per-request frame", tc.name)
		}
	}
}

// TestBinaryServedMatchesJSONServed serves the same request over both wire
// formats through the real handler and asserts the decoded responses are
// identical.
func TestBinaryServedMatchesJSONServed(t *testing.T) {
	_, jsonClient := newTestServer(t, Config{})
	binClient := NewClient(jsonClient.base, nil, WithBinary())
	ctx := context.Background()

	jr, err := jsonClient.PlanV2(ctx, testReq(5))
	if err != nil {
		t.Fatal(err)
	}
	br, err := binClient.PlanV2(ctx, testReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jr, br) {
		t.Errorf("wire formats disagree:\n json %+v\n bin  %+v", jr, br)
	}

	ja, err := jsonClient.AutotuneV2(ctx, &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  PlanOptions{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := binClient.AutotuneV2(ctx, &AutotuneRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{64, 96},
		Src:      Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  PlanOptions{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Coalesced depends on request timing, not format; mask it.
	ja.Coalesced, ba.Coalesced = false, false
	if !reflect.DeepEqual(ja, ba) {
		t.Errorf("autotune wire formats disagree:\n json %+v\n bin  %+v", ja, ba)
	}

	batchReq := &BatchPlanRequest{
		Topology: TopologyRef{Name: "p3", Hosts: 2},
		Items: []BatchPlanItem{
			{Shape: []int{64, 96}, Src: Endpoint{Mesh: "2x2@0", Spec: "S01R"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}, Options: PlanOptions{Seed: 5}},
			{Shape: []int{64, 96}, Src: Endpoint{Mesh: "2x2@0", Spec: "bogus"}, Dst: Endpoint{Mesh: "2x2@4", Spec: "S0R"}},
		},
	}
	jb, err := jsonClient.PlanBatch(ctx, batchReq)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := binClient.PlanBatch(ctx, batchReq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jb, bb) {
		t.Errorf("batch wire formats disagree:\n json %+v\n bin  %+v", jb, bb)
	}
	if jb.Items[1].Error == nil || jb.Items[1].Error.Code != CodeInvalidArgument {
		t.Errorf("item error: %+v", jb.Items[1].Error)
	}
}

// TestBinaryErrorEnvelope asserts a negotiated request gets its errors as
// binary frames the client decodes into the same APIError the JSON path
// yields.
func TestBinaryErrorEnvelope(t *testing.T) {
	_, jsonClient := newTestServer(t, Config{})
	binClient := NewClient(jsonClient.base, nil, WithBinary())
	ctx := context.Background()

	bad := testReq(1)
	bad.Src.Spec = "bogus"
	_, jerr := jsonClient.PlanV2(ctx, bad)
	_, berr := binClient.PlanV2(ctx, bad)
	japi, ok := jerr.(*APIError)
	if !ok {
		t.Fatalf("json error: %v", jerr)
	}
	bapi, ok := berr.(*APIError)
	if !ok {
		t.Fatalf("binary error: %v", berr)
	}
	if *japi != *bapi {
		t.Errorf("error envelopes disagree:\n json %+v\n bin  %+v", *japi, *bapi)
	}
	if bapi.Code != CodeInvalidArgument {
		t.Errorf("code = %q, want %q", bapi.Code, CodeInvalidArgument)
	}
}

// TestServedHitAllocations pins the zero-alloc serve path: a cache hit
// through the real handler stays under 50 allocations in both wire
// formats. Skipped under the race detector, whose instrumentation inflates
// allocation counts.
func TestServedHitAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under the race detector")
	}
	for _, tc := range []struct {
		name   string
		accept string
	}{
		{"json", ""},
		{"binary", ContentTypeBinary},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(Config{})
			body, err := json.Marshal(testReq(9))
			if err != nil {
				t.Fatal(err)
			}
			rd := bytes.NewReader(body)
			req, err := http.NewRequest(http.MethodPost, "/v2/plan", struct {
				io.ReadSeeker
				io.Closer
			}{rd, io.NopCloser(nil)})
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			w := &statusOnlyWriter{h: http.Header{}}
			srv.ServeHTTP(w, req) // warm: fills cache, memo and wire bodies
			if w.status != http.StatusOK {
				t.Fatalf("warm request: status %d", w.status)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := rd.Seek(0, io.SeekStart); err != nil {
					t.Fatal(err)
				}
				w.status = 0
				srv.ServeHTTP(w, req)
				if w.status != http.StatusOK {
					t.Fatalf("status %d", w.status)
				}
			})
			if allocs > 50 {
				t.Errorf("served cache hit: %.0f allocs/op, want <= 50", allocs)
			}
		})
	}
}

type statusOnlyWriter struct {
	h      http.Header
	status int
}

func (s *statusOnlyWriter) Header() http.Header         { return s.h }
func (s *statusOnlyWriter) WriteHeader(c int)           { s.status = c }
func (s *statusOnlyWriter) Write(p []byte) (int, error) { return len(p), nil }
