package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Server-level admission tests: degraded responses are flagged on the
// wire, partition under their own cache keys, and are never served to a
// client that required full quality. The controller runs on a fakeClock
// with huge latency budgets, so the real (microsecond) serve latencies the
// handler observes can never move the state machine — only the scripted
// samples do.

// slowSLOConfig is the server-test controller config: a 10s budget keeps
// real latencies irrelevant, the hour-long window and dwell freeze the
// forced mode, and the depth thresholds are out of reach.
func slowSLOConfig() SLOConfig {
	return SLOConfig{
		P99Budget:    10 * time.Second,
		Window:       time.Hour,
		MinSamples:   4,
		Dwell:        time.Hour,
		EvalEvery:    -1,
		DegradeDepth: 1 << 20,
		ShedDepth:    1 << 21,
	}
}

func newSLOTestServer(t *testing.T, cfg SLOConfig) (*Client, *SLOController, *fakeClock, string) {
	t.Helper()
	s := New(Config{})
	clk := newFakeClock()
	ctl := NewSLOController(cfg, clk.now)
	s.SetSLOController(ctl)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, nil), ctl, clk, ts.URL
}

// forceMode drives the controller into the target mode with scripted
// observations; lat should sit in the target's latency band.
func forceMode(t *testing.T, ctl *SLOController, target AdmissionMode, lat time.Duration) {
	t.Helper()
	observeN(ctl, 32, lat)
	for i := 0; i < 2 && ctl.Mode() != target; i++ {
		ctl.Admit(0)
	}
	if got := ctl.Mode(); got != target {
		t.Fatalf("could not force mode %v, controller is %v", target, got)
	}
}

// rawPlanV2 posts the request without the client wrapper so the test can
// read the admission header off the raw response.
func rawPlanV2(t *testing.T, url string, req *PlanRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestDegradedPartitionAndQuality walks a server through
// full→degraded→shed and pins the satellite-4 contract at each step:
// degraded responses are flagged and keyed apart, full-quality cache
// entries stay clean and servable, and "quality":"full" clients are shed
// rather than answered with a degraded plan.
func TestDegradedPartitionAndQuality(t *testing.T) {
	client, ctl, _, url := newSLOTestServer(t, slowSLOConfig())
	ctx := context.Background()

	// Healthy baseline: full-quality plan, no degraded flag.
	respFull, err := client.PlanV2(ctx, testReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if respFull.Degraded {
		t.Fatal("healthy response marked degraded")
	}

	forceMode(t, ctl, AdmitDegraded, 8*time.Second)

	// A miss in degraded mode is planned by the search-free scheduler,
	// flagged, and keyed apart from every full-quality entry.
	respD, err := client.PlanV2(ctx, testReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if !respD.Degraded {
		t.Fatal("degraded-mode miss not marked degraded")
	}
	if respD.Scheduler != "greedy-degraded" {
		t.Fatalf("degraded scheduler = %q, want greedy-degraded", respD.Scheduler)
	}
	if respD.Key == respFull.Key {
		t.Fatalf("degraded plan shares the full-quality cache key %q", respD.Key)
	}

	// Degraded fills normalize the search knobs away: another seed of the
	// same boundary lands on the same degraded key.
	respD2, err := client.PlanV2(ctx, testReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if !respD2.Degraded || respD2.Key != respD.Key {
		t.Fatalf("degraded twin key = %q (degraded=%v), want shared key %q",
			respD2.Key, respD2.Degraded, respD.Key)
	}

	// The wire surfaces the decision: admission header on a degraded
	// response.
	raw := rawPlanV2(t, url, testReq(2))
	if got := raw.Header.Get(AdmissionHeader); got != "degraded" {
		t.Fatalf("%s = %q on degraded response, want degraded", AdmissionHeader, got)
	}

	// A full-quality cache hit is served untouched whatever the mode.
	hit, err := client.PlanV2(ctx, testReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if hit.Degraded || hit.Key != respFull.Key {
		t.Fatalf("cached full-quality hit degraded=%v key=%q, want clean %q",
			hit.Degraded, hit.Key, respFull.Key)
	}

	// A client that requires full quality is never answered degraded: an
	// uncached boundary is shed...
	reqFullQ := testReq(4)
	reqFullQ.Options.Quality = "full"
	var oe *OverloadedError
	if _, err := client.PlanV2(ctx, reqFullQ); !errors.As(err, &oe) {
		t.Fatalf("quality=full miss under degrade: err = %v, want OverloadedError", err)
	}

	// ...but its cached full-quality entry is still served.
	reqFullQ1 := testReq(1)
	reqFullQ1.Options.Quality = "full"
	hitFullQ, err := client.PlanV2(ctx, reqFullQ1)
	if err != nil {
		t.Fatal(err)
	}
	if hitFullQ.Degraded || hitFullQ.Key != respFull.Key {
		t.Fatalf("quality=full cache hit degraded=%v key=%q, want clean %q",
			hitFullQ.Degraded, hitFullQ.Key, respFull.Key)
	}

	// Shed mode: cached degraded plans still flow to clients that accept
	// them...
	forceMode(t, ctl, AdmitShed, 11*time.Second)
	shedHit, err := client.PlanV2(ctx, testReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if !shedHit.Degraded || shedHit.Key != respD.Key {
		t.Fatalf("shed-mode degraded hit degraded=%v key=%q, want %q",
			shedHit.Degraded, shedHit.Key, respD.Key)
	}

	// ...while a boundary cached nowhere is rejected with the structured
	// overloaded envelope and a Retry-After.
	fresh := testReq(6)
	fresh.Shape = []int{128, 96}
	if _, err := client.PlanV2(ctx, fresh); !errors.As(err, &oe) {
		t.Fatalf("shed-mode miss: err = %v, want OverloadedError", err)
	}
	rawShed := rawPlanV2(t, url, fresh)
	if rawShed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", rawShed.StatusCode)
	}
	if got := rawShed.Header.Get(AdmissionHeader); got != "shed" {
		t.Fatalf("%s = %q on shed response, want shed", AdmissionHeader, got)
	}
	if rawShed.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// The stats block accounts for all of it.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a := stats.Admission
	if a == nil {
		t.Fatal("stats missing admission block")
	}
	if a.Mode != "shed" {
		t.Fatalf("admission mode = %q, want shed", a.Mode)
	}
	if a.DegradedServed < 3 || a.ShedRequests < 2 || a.FullQualityShed < 1 {
		t.Fatalf("admission counters = %d/%d/%d served/shed/full-shed, want ≥ 3/2/1",
			a.DegradedServed, a.ShedRequests, a.FullQualityShed)
	}
	if len(a.Transitions) == 0 {
		t.Fatal("admission stats missing transition log")
	}
}

// TestDegradedRecoveryRestoresFullQuality pins the back edge: once the
// window drains and the dwell passes, the same boundary that was planned
// degraded is re-planned at full quality under its original key.
func TestDegradedRecoveryRestoresFullQuality(t *testing.T) {
	cfg := slowSLOConfig()
	cfg.Window = 100 * time.Millisecond
	cfg.Dwell = 50 * time.Millisecond
	client, ctl, clk, _ := newSLOTestServer(t, cfg)
	ctx := context.Background()

	forceMode(t, ctl, AdmitDegraded, 8*time.Second)
	respD, err := client.PlanV2(ctx, testReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if !respD.Degraded {
		t.Fatal("degraded-mode plan not marked degraded")
	}

	// The scripted samples age out of the 100ms window and the dwell
	// passes: the next request recovers to full and plans at full quality.
	clk.advance(time.Second)
	respF, err := client.PlanV2(ctx, testReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Mode() != AdmitFull {
		t.Fatalf("controller mode after recovery = %v, want full", ctl.Mode())
	}
	if respF.Degraded || respF.Scheduler == "greedy-degraded" {
		t.Fatalf("post-recovery plan degraded=%v scheduler=%q, want full quality",
			respF.Degraded, respF.Scheduler)
	}
	if respF.Key == respD.Key {
		t.Fatal("post-recovery plan served from the degraded cache entry")
	}
}

// TestDegradedBinaryFlag pins the wire parity: the degraded flag survives
// the binary frame and the binary body matches the JSON body.
func TestDegradedBinaryFlag(t *testing.T) {
	s := New(Config{})
	clk := newFakeClock()
	ctl := NewSLOController(slowSLOConfig(), clk.now)
	s.SetSLOController(ctl)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	jsonClient := NewClient(ts.URL, nil)
	binClient := NewClient(ts.URL, nil, WithBinary())
	ctx := context.Background()

	forceMode(t, ctl, AdmitDegraded, 8*time.Second)
	respJSON, err := jsonClient.PlanV2(ctx, testReq(8))
	if err != nil {
		t.Fatal(err)
	}
	respBin, err := binClient.PlanV2(ctx, testReq(8))
	if err != nil {
		t.Fatal(err)
	}
	if !respJSON.Degraded || !respBin.Degraded {
		t.Fatalf("degraded flag json=%v bin=%v, want true/true", respJSON.Degraded, respBin.Degraded)
	}
	if respBin.Key != respJSON.Key || respBin.Scheduler != respJSON.Scheduler {
		t.Fatalf("binary response diverges: key %q vs %q, scheduler %q vs %q",
			respBin.Key, respJSON.Key, respBin.Scheduler, respJSON.Scheduler)
	}
}

// TestV1UnaffectedByAdmission pins the blast radius: the controller only
// guards /v2/plan; the v1 endpoint plans at full quality regardless.
func TestV1UnaffectedByAdmission(t *testing.T) {
	client, ctl, _, _ := newSLOTestServer(t, slowSLOConfig())
	forceMode(t, ctl, AdmitDegraded, 8*time.Second)
	resp, err := client.Plan(context.Background(), testReq(9))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("v1 response marked degraded")
	}
}
