package service

import (
	"context"
	"reflect"
	"testing"
)

// A link brownout is valid on the 2-host testReq topology (downing the
// only link would be rejected) and never changes the host-level instance,
// so a warm replan must serve it in identity mode.
var brownoutFaults = &FaultsRef{Links: []LinkFaultRef{{A: 0, B: 1, BandwidthScale: 0.5}}}

// TestV2PlanWarmServesFromHealthyTwin: once a boundary's healthy plan is
// cached, a degraded request for the same boundary is filled by the warm
// replan path — visible in /v2/stats' replan counters — and serves bytes
// identical to what a cold fill on a fresh server produces.
func TestV2PlanWarmServesFromHealthyTwin(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := client.PlanV2(ctx, testReq(5)); err != nil {
		t.Fatal(err)
	}
	warm, err := client.PlanV2(ctx, faultyReq(5, brownoutFaults))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replan.WarmIdentity != 1 {
		t.Errorf("warm_identity = %d, want 1 (link brownout never changes the host instance)",
			stats.Replan.WarmIdentity)
	}
	if stats.Replan.Cold != 0 {
		t.Errorf("cold = %d, want 0 (the healthy twin was cached)", stats.Replan.Cold)
	}

	// The same degraded request on a fresh server — no healthy twin cached —
	// fills cold, and must produce the same bytes the warm path served.
	_, coldClient := newTestServer(t, Config{})
	cold, err := coldClient.PlanV2(ctx, faultyReq(5, brownoutFaults))
	if err != nil {
		t.Fatal(err)
	}
	coldStats, err := coldClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Replan.Cold != 1 {
		t.Errorf("fresh server: cold = %d, want 1", coldStats.Replan.Cold)
	}
	if warm.Key != cold.Key {
		t.Errorf("warm and cold fills keyed apart: %q vs %q", warm.Key, cold.Key)
	}
	if !reflect.DeepEqual(warm.Senders, cold.Senders) || !reflect.DeepEqual(warm.Order, cold.Order) {
		t.Error("warm-served degraded plan differs from the cold fill")
	}
	if warm.MakespanSeconds != cold.MakespanSeconds {
		t.Errorf("warm makespan %.9f != cold %.9f", warm.MakespanSeconds, cold.MakespanSeconds)
	}
}

// TestV2PlanWarmSearchOnHostFault: a straggler overlay changes the host
// instance, so the warm fill runs the pinned search (or serves the rebound
// incumbent) instead of the identity shortcut — never a cold plan.
func TestV2PlanWarmSearchOnHostFault(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := client.PlanV2(ctx, testReq(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PlanV2(ctx, faultyReq(7, stragglerFaults)); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Replan.WarmSearch + stats.Replan.WarmRejected; got != 1 {
		t.Errorf("warm search+rejected = %d, want 1 (host fault impacts the instance)", got)
	}
	if stats.Replan.Cold != 0 {
		t.Errorf("cold = %d, want 0", stats.Replan.Cold)
	}
}
