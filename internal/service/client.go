package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// OverloadedError is returned when the server rejected a request with 429;
// RetryAfter carries the server's backoff hint.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service: server overloaded, retry after %v", e.RetryAfter)
}

// APIError is a non-429 error response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %d: %s", e.StatusCode, e.Message)
}

// Client talks to a plan server. Safe for concurrent use; a zero
// http.Client limit would throttle closed-loop load generators, so the
// default transport keeps enough idle connections for large client counts.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a base URL like "http://127.0.0.1:8100".
// httpClient nil means a dedicated client whose transport tolerates
// hundreds of concurrent connections to one host.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		// DefaultTransport may have been replaced by the embedding
		// program with an arbitrary RoundTripper; fall back to a fresh
		// transport rather than panicking on the assertion.
		tr, ok := http.DefaultTransport.(*http.Transport)
		if ok {
			tr = tr.Clone()
		} else {
			tr = &http.Transport{}
		}
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 512
		httpClient = &http.Client{Transport: tr}
	}
	return &Client{base: baseURL, hc: httpClient}
}

// Plan requests one resharding plan.
func (c *Client) Plan(ctx context.Context, req *PlanRequest) (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.post(ctx, "/v1/plan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Autotune requests a strategy x scheduler grid search.
func (c *Client) Autotune(ctx context.Context, req *AutotuneRequest) (*AutotuneResponse, error) {
	var resp AutotuneResponse
	if err := c.post(ctx, "/v1/autotune", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's cache and admission counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var resp StatsResponse
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path string, payload, out interface{}) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.roundTrip(req, out)
}

func (c *Client) roundTrip(req *http.Request, out interface{}) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		retry := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			retry = time.Duration(v) * time.Second
		}
		return &OverloadedError{RetryAfter: retry}
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
