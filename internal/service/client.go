package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// OverloadedError is returned when the server rejected a request with 429;
// RetryAfter carries the server's backoff hint.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service: server overloaded, retry after %v", e.RetryAfter)
}

// APIError is a non-429 error response from the server. Code and
// Retryable are filled from the structured envelope on /v2 responses and
// empty on /v1 ones.
type APIError struct {
	StatusCode int
	Message    string
	Code       string
	Retryable  bool
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("service: %d %s: %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("service: %d: %s", e.StatusCode, e.Message)
}

// Client talks to a plan server. Safe for concurrent use; a zero
// http.Client limit would throttle closed-loop load generators, so the
// default transport keeps enough idle connections for large client counts.
type Client struct {
	base string
	hc   *http.Client
	// binary negotiates the binary wire format on /v2 responses; see
	// WithBinary.
	binary bool
	// peer, when non-empty, stamps every request with PeerHeader so the
	// receiving tier node resolves it locally instead of re-routing; see
	// AsPeer.
	peer string
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithBinary makes the client negotiate the binary wire format
// (ContentTypeBinary) on every /v2 request via the Accept header. The
// server answers /v2 responses — including error envelopes — as binary
// frames, which the client decodes into the same response structs the
// JSON path fills; /v1 requests are unaffected. Servers that predate the
// binary format ignore the Accept header and keep answering JSON, which
// the client still decodes, so the option is safe against old servers.
func WithBinary() ClientOption {
	return func(c *Client) { c.binary = true }
}

// NewClient builds a client for a base URL like "http://127.0.0.1:8100".
// httpClient nil means a dedicated client whose transport tolerates
// hundreds of concurrent connections to one host.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		// DefaultTransport may have been replaced by the embedding
		// program with an arbitrary RoundTripper; fall back to a fresh
		// transport rather than panicking on the assertion.
		tr, ok := http.DefaultTransport.(*http.Transport)
		if ok {
			tr = tr.Clone()
		} else {
			tr = &http.Transport{}
		}
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 512
		httpClient = &http.Client{Transport: tr}
	}
	c := &Client{base: baseURL, hc: httpClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Plan requests one resharding plan.
func (c *Client) Plan(ctx context.Context, req *PlanRequest) (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.post(ctx, "/v1/plan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Autotune requests a strategy x scheduler grid search.
func (c *Client) Autotune(ctx context.Context, req *AutotuneRequest) (*AutotuneResponse, error) {
	var resp AutotuneResponse
	if err := c.post(ctx, "/v1/autotune", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PlanV2 requests one resharding plan over /v2: same plan payload as
// Plan, structured error envelope, and — when ctx carries a deadline —
// the remaining budget propagated to the server via X-Timeout-Ms so the
// server-side queue wait and search are bounded by it too.
func (c *Client) PlanV2(ctx context.Context, req *PlanRequest) (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.post(ctx, "/v2/plan", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// AutotuneV2 requests a grid search over /v2; a ctx deadline aborts the
// queued or running search server-side.
func (c *Client) AutotuneV2(ctx context.Context, req *AutotuneRequest) (*AutotuneResponse, error) {
	var resp AutotuneResponse
	if err := c.post(ctx, "/v2/autotune", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PlanBatch plans every boundary of the batch in one request; congruent
// items cost one server-side computation total.
func (c *Client) PlanBatch(ctx context.Context, req *BatchPlanRequest) (*BatchPlanResponse, error) {
	var resp BatchPlanResponse
	if err := c.post(ctx, "/v2/plan:batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's cache and admission counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var resp StatsResponse
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(ctx context.Context, path string, payload, out interface{}) error {
	// Marshal into a pooled buffer: the request body must stay alive for
	// the whole round trip, so the buffer is returned only afterwards.
	je := getEncoder()
	defer putEncoder(je)
	if err := je.enc.Encode(payload); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(je.buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.peer != "" {
		req.Header.Set(PeerHeader, c.peer)
	}
	if strings.HasPrefix(path, "/v2/") {
		if c.binary {
			req.Header.Set("Accept", ContentTypeBinary)
		}
		if deadline, ok := ctx.Deadline(); ok {
			if ms := time.Until(deadline).Milliseconds(); ms > 0 {
				req.Header.Set(TimeoutHeader, strconv.FormatInt(ms, 10))
			}
		}
	}
	return c.roundTrip(req, out)
}

func (c *Client) roundTrip(req *http.Request, out interface{}) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		retry := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			retry = time.Duration(v) * time.Second
		}
		return &OverloadedError{RetryAfter: retry}
	}
	binary := strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeBinary)
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
		if binary {
			// Binary errors are a complete error frame.
			if data, err := io.ReadAll(resp.Body); err == nil {
				if v, err := decodeBinary(data); err == nil {
					if ve, ok := v.(*V2Error); ok {
						apiErr.Message, apiErr.Code, apiErr.Retryable = ve.Message, ve.Code, ve.Retryable
					}
				}
			}
			return apiErr
		}
		// /v2 errors are a structured envelope, /v1 errors a flat string;
		// the envelope decodes first so its code and retryability survive.
		var raw json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&struct {
			Error *json.RawMessage `json:"error"`
		}{&raw}); err == nil && len(raw) > 0 {
			var ve V2Error
			if err := json.Unmarshal(raw, &ve); err == nil && ve.Code != "" {
				apiErr.Message, apiErr.Code, apiErr.Retryable = ve.Message, ve.Code, ve.Retryable
			} else {
				var msg string
				if err := json.Unmarshal(raw, &msg); err == nil && msg != "" {
					apiErr.Message = msg
				}
			}
		}
		return apiErr
	}
	if binary {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return decodeBinaryInto(data, out)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeBinaryInto decodes one binary frame into the response struct the
// caller expects, rejecting kind mismatches (a plan frame answering an
// autotune request means a server bug, not a value).
func decodeBinaryInto(data []byte, out interface{}) error {
	v, err := decodeBinary(data)
	if err != nil {
		return err
	}
	switch dst := out.(type) {
	case *PlanResponse:
		if p, ok := v.(*PlanResponse); ok {
			*dst = *p
			return nil
		}
	case *AutotuneResponse:
		if a, ok := v.(*AutotuneResponse); ok {
			*dst = *a
			return nil
		}
	case *BatchPlanResponse:
		if b, ok := v.(*BatchPlanResponse); ok {
			*dst = *b
			return nil
		}
	}
	return fmt.Errorf("service: binary frame kind does not match expected %T", out)
}
