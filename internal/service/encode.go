package service

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"

	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
)

// The zero-alloc serve path. A plan is serialized exactly once, when its
// cache entry is filled: the leader renders the JSON body and the binary
// frame for the identity response and attaches them to the entry
// (resharding.PlanCache.Attach), so every later hit is a pooled-buffer
// copy plus at most two in-place patches — the coalesced flag and, on a
// translated hit, the remapped sender section. Nothing on the hit path
// calls json.Marshal.

// bufPool recycles the scratch buffers of the serve path: response
// assembly, request parsing and memo-key rendering. Buffers are returned
// via putBuf, which drops oversized ones so a single giant batch response
// cannot pin memory in the pool forever.
var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledBuf bounds what putBuf retains; larger buffers are left to the
// collector.
const maxPooledBuf = 1 << 20

func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// encoderPool recycles the bytes.Buffer + json.Encoder pairs writeJSON
// uses for the slow (non-pre-serialized) responses: stats, autotune,
// errors.
var encoderPool = sync.Pool{
	New: func() interface{} {
		je := &jsonEncoder{buf: &bytes.Buffer{}}
		je.enc = json.NewEncoder(je.buf)
		return je
	},
}

type jsonEncoder struct {
	buf *bytes.Buffer
	enc *json.Encoder
}

func getEncoder() *jsonEncoder {
	je := encoderPool.Get().(*jsonEncoder)
	je.buf.Reset()
	return je
}

func putEncoder(je *jsonEncoder) {
	if je.buf.Cap() > maxPooledBuf {
		return
	}
	encoderPool.Put(je)
}

// encodedPlan is the pre-serialized form of one cached plan: the full
// response bodies for the identity case plus the offsets needed to patch
// the two request-dependent parts (the coalesced flag and the sender
// devices) without re-encoding anything else. It is built once per cache
// fill by newEncodedPlan and shared read-only by every request that hits
// the entry; the serve path copies it into a pooled buffer and patches
// the copy.
type encodedPlan struct {
	// task is the task the plan was computed for; a request carrying this
	// exact task serves the identity senders verbatim. Congruent requests
	// on other hosts remap through senderPos instead.
	task *sharding.Task
	// senderPos[i] is the logical position of unit i's sender in the source
	// mesh: a translated hit's sender is task.Src.Mesh.Devices[senderPos[i]].
	senderPos []int32

	// jsonFull is the complete encoding/json-rendered response body
	// (identity senders, coalesced unset), without the json.Encoder's
	// trailing newline. jsonHead/jsonIdent/jsonTail are its three slices
	// around the senders array — head ends just after `"senders":[`, tail
	// runs from the closing `]` up to (excluding) the final `}` — so a
	// translated or coalesced response reuses every byte that doesn't
	// change.
	jsonFull  []byte
	jsonHead  []byte
	jsonIdent []byte
	jsonTail  []byte

	// bin is the complete binary frame for the identity, non-coalesced
	// response. The senders array lives at the fixed offset
	// binPlanSendersOff and the flags byte at binFlagsOff, so patched
	// variants copy the frame and overwrite in place.
	bin []byte
}

// newEncodedPlan renders both wire bodies for one cached plan. The
// identity response is produced by encoding/json itself, so the
// serialize-once bytes are exactly what the per-request encoder wrote
// before this path existed. Returns nil only if the rendered JSON does not
// contain the senders marker, which cannot happen for PlanResponse.
func newEncodedPlan(plan *resharding.Plan, sim *resharding.SimResult,
	opts resharding.Options, key string) *encodedPlan {

	task := plan.Task
	n := len(task.Units)
	senders := make([]int, n)
	pos := make(map[int]int, len(task.Src.Mesh.Devices))
	for idx, d := range task.Src.Mesh.Devices {
		pos[d] = idx
	}
	senderPos := make([]int32, n)
	for i := 0; i < n; i++ {
		senders[i] = plan.SenderOf[i]
		senderPos[i] = int32(pos[plan.SenderOf[i]])
	}

	resp := PlanResponse{
		Strategy:        opts.Strategy.String(),
		Scheduler:       opts.Scheduler.String(),
		NumUnits:        n,
		Senders:         senders,
		Order:           plan.Order,
		MakespanSeconds: sim.Makespan,
		EffectiveGbps:   sim.EffectiveGbps,
		NumOps:          sim.NumOps,
		Key:             key,
		Degraded:        opts.Scheduler == resharding.SchedDegraded,
	}
	full, err := json.Marshal(resp)
	if err != nil {
		return nil
	}
	marker := []byte(`"senders":[`)
	i := bytes.Index(full, marker)
	if i < 0 {
		return nil
	}
	// The senders array holds only integers, so the first ']' after the
	// marker closes it. The key string is the only free-form field and a
	// cache key never contains a quote, so the marker cannot occur inside
	// it.
	start := i + len(marker)
	end := bytes.IndexByte(full[start:], ']')
	if end < 0 {
		return nil
	}
	end += start

	e := &encodedPlan{
		task:      task,
		senderPos: senderPos,
		jsonFull:  full,
		jsonHead:  full[:start],
		jsonIdent: full[start:end],
		jsonTail:  full[end : len(full)-1],
	}
	e.bin = appendPlanBinary(nil, &resp)
	return e
}

// appendJSON appends the response body for one request — without the
// trailing newline, so batch items can embed it — patching only what
// differs from the fill-time identity body.
//
//alpacomm:hotpath
func (e *encodedPlan) appendJSON(b []byte, task *sharding.Task, shared bool) []byte {
	if !shared && task == e.task {
		return append(b, e.jsonFull...)
	}
	b = append(b, e.jsonHead...)
	if task == e.task {
		b = append(b, e.jsonIdent...)
	} else {
		b = e.appendSenders(b, task)
	}
	b = append(b, e.jsonTail...)
	if shared {
		b = append(b, `,"coalesced":true`...)
	}
	return append(b, '}')
}

// appendSenders renders the translated sender list: congruent tasks have
// congruent meshes, so unit i's sender sits at the same logical position
// in this request's source mesh.
//
//alpacomm:hotpath
func (e *encodedPlan) appendSenders(b []byte, task *sharding.Task) []byte {
	devs := task.Src.Mesh.Devices
	for i, p := range e.senderPos {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(devs[p]), 10)
	}
	return b
}

// appendBinary appends the binary frame for one request, patching the
// flags byte and — on a translated hit — the fixed-offset sender section
// in the appended copy, never in the shared original.
//
//alpacomm:hotpath
func (e *encodedPlan) appendBinary(b []byte, task *sharding.Task, shared bool) []byte {
	n := len(b)
	b = append(b, e.bin...)
	if shared {
		b[n+binFlagsOff] |= binFlagCoalesced
	}
	if task != e.task {
		devs := task.Src.Mesh.Devices
		off := n + binPlanSendersOff
		for i, p := range e.senderPos {
			putU32(b[off+4*i:], uint32(int32(devs[p])))
		}
	}
	return b
}

// parsedReq is one memoized request parse: the decomposed task, the
// normalized options and the canonical cache key — everything parseTask
// produces, keyed by the raw wire fields so a repeated request skips
// topology resolution, task decomposition and cache-key rendering
// entirely. Entries are immutable and shared; the planner only reads
// tasks.
type parsedReq struct {
	task *sharding.Task
	opts resharding.Options
	key  string
}

// maxMemoEntries bounds the request-parse memo. Like the topology memo the
// key space is client-controlled, so beyond the cap the memo stops adding
// and requests fall back to the full parse path — correctness never
// depends on a memo hit.
const maxMemoEntries = 4096

// parseMemo memoizes request parses for fault-free requests (fault
// overlays re-derive topologies per request and are never memoized).
type parseMemo struct {
	mu sync.RWMutex
	m  map[string]parsedReq
}

// appendMemoKey renders the raw request fields into b. Strings are
// NUL-separated (none of the wire fields may contain NUL and still parse)
// so distinct field splits never collide.
//
//alpacomm:hotpath
func appendMemoKey(b []byte, ref TopologyRef, shape []int, dtype string, src, dst Endpoint, po PlanOptions) []byte {
	b = append(b, ref.Name...)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(ref.Hosts), 10)
	b = strconv.AppendFloat(b, ref.Oversubscription, 'g', -1, 64)
	b = append(b, 0)
	for _, d := range shape {
		b = strconv.AppendInt(b, int64(d), 10)
		b = append(b, ',')
	}
	b = append(b, dtype...)
	b = append(b, 0)
	b = append(b, src.Mesh...)
	b = append(b, 0)
	b = append(b, src.Spec...)
	b = append(b, 0)
	b = append(b, dst.Mesh...)
	b = append(b, 0)
	b = append(b, dst.Spec...)
	b = append(b, 0)
	b = append(b, po.Strategy...)
	b = append(b, 0)
	b = append(b, po.Scheduler...)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(po.Chunks), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(po.DFSNodes), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(po.Trials), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, po.Seed, 10)
	b = append(b, 0)
	b = append(b, po.Quality...)
	return b
}

// get looks the raw request up without allocating: the scratch buffer is
// pooled and the map lookup converts it to a string key for free.
func (pm *parseMemo) get(ref TopologyRef, shape []int, dtype string, src, dst Endpoint, po PlanOptions) (parsedReq, bool) {
	buf := getBuf()
	b := appendMemoKey((*buf)[:0], ref, shape, dtype, src, dst, po)
	*buf = b
	pm.mu.RLock()
	pr, ok := pm.m[string(b)]
	pm.mu.RUnlock()
	putBuf(buf)
	return pr, ok
}

// put stores one parse result, keeping the first entry if another request
// raced us in and stopping at the bound.
func (pm *parseMemo) put(ref TopologyRef, shape []int, dtype string, src, dst Endpoint, po PlanOptions, pr parsedReq) {
	buf := getBuf()
	b := appendMemoKey((*buf)[:0], ref, shape, dtype, src, dst, po)
	*buf = b
	key := string(b)
	putBuf(buf)
	pm.mu.Lock()
	if pm.m == nil {
		pm.m = map[string]parsedReq{}
	}
	if _, ok := pm.m[key]; !ok && len(pm.m) < maxMemoEntries {
		pm.m[key] = pr
	}
	pm.mu.Unlock()
}
