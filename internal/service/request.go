package service

import (
	"fmt"
	"strings"

	"alpacomm/internal/mesh"
	"alpacomm/internal/resharding"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// TopologyRef names a hardware topology by registry preset plus parameters.
type TopologyRef struct {
	// Name is a registry preset: "p3", "dgx-a100" (alias "dgx"), "mixed".
	Name string `json:"name"`
	// Hosts is the host count; 0 means the preset's default.
	Hosts int `json:"hosts,omitempty"`
	// Oversubscription is the fabric oversubscription for presets with a
	// shared switch fabric; 0 means 1:1.
	Oversubscription float64 `json:"oversubscription,omitempty"`
}

// LinkFaultRef is one inter-host link degradation over the wire; see
// mesh.LinkFault. Exactly one form is valid per link: down, or scaled
// (bandwidth_scale in (0,1] and/or extra_latency_seconds > 0).
type LinkFaultRef struct {
	A                   int     `json:"a"`
	B                   int     `json:"b"`
	Down                bool    `json:"down,omitempty"`
	BandwidthScale      float64 `json:"bandwidth_scale,omitempty"`
	ExtraLatencySeconds float64 `json:"extra_latency_seconds,omitempty"`
}

// HostFaultRef is one straggler host over the wire; see mesh.HostFault.
type HostFaultRef struct {
	Host       int     `json:"host"`
	NICScale   float64 `json:"nic_scale,omitempty"`
	IntraScale float64 `json:"intra_scale,omitempty"`
}

// FaultsRef is the optional degradation overlay of a /v2 request: a named
// scenario from the registry ("link-down", "brownout", "straggler"),
// explicit link and host faults, or both (the scenario's faults come
// first; duplicates are rejected). The topology the request planned
// against becomes mesh.Faulted over the named preset, so the response's
// cache key — and the server's plan cache — partition degraded plans
// away from healthy ones. An entirely empty block degrades nothing.
// Malformed fault specs fail with code invalid_argument. Only the /v2
// endpoints accept a faults block.
type FaultsRef struct {
	Scenario string         `json:"scenario,omitempty"`
	Links    []LinkFaultRef `json:"links,omitempty"`
	Hosts    []HostFaultRef `json:"hosts,omitempty"`
}

// Endpoint is one side of a resharding: a mesh slice plus a sharding spec.
type Endpoint struct {
	// Mesh is the device mesh as ROWSxCOLS@FIRSTDEV (n-dimensional:
	// "2x4@0", "2x2x2@8").
	Mesh string `json:"mesh"`
	// Spec is the sharding spec in the paper's notation ("S01R", "RS0").
	Spec string `json:"spec"`
}

// PlanOptions mirror resharding.Options over the wire. Empty strategy and
// scheduler mean the service defaults (broadcast + ensemble). The service
// always plans with a deterministic DFS node budget: a zero DFSNodes is
// replaced by resharding.DefaultAutotuneDFSNodes so identical requests get
// identical plans regardless of server machine speed or load.
type PlanOptions struct {
	Strategy  string `json:"strategy,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Chunks    int    `json:"chunks,omitempty"`
	DFSNodes  int    `json:"dfs_nodes,omitempty"`
	Trials    int    `json:"trials,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	// Quality states what the client accepts under SLO admission control:
	// "" or "auto" accepts a degraded (search-free) plan when the server
	// is defending its p99 budget; "full" insists on full-quality planning
	// — such a request is served full quality or shed, never degraded. It
	// does not affect the plan or cache key of a full-quality response.
	Quality string `json:"quality,omitempty"`
}

// PlanRequest asks for one cross-mesh resharding plan.
type PlanRequest struct {
	Topology TopologyRef `json:"topology"`
	// Shape is the global tensor shape.
	Shape []int `json:"shape"`
	// DType is "fp16"/"fp32"/"fp64" (aliases float16/32/64); empty = fp32.
	DType   string      `json:"dtype,omitempty"`
	Src     Endpoint    `json:"src"`
	Dst     Endpoint    `json:"dst"`
	Options PlanOptions `json:"options"`
	// Faults overlays a degradation on the topology; /v2 only.
	Faults *FaultsRef `json:"faults,omitempty"`
}

// PlanResponse reports one planned-and-simulated resharding. Senders are
// always expressed in the requesting task's device space: when the plan
// was first computed for a congruent boundary on different hosts (a
// translated cache hit, see resharding.PlanCache), the server remaps the
// cached senders through the meshes' logical-position correspondence
// before responding.
type PlanResponse struct {
	Strategy  string `json:"strategy"`
	Scheduler string `json:"scheduler"`
	// NumUnits is the unit-task count of the decomposition.
	NumUnits int `json:"num_units"`
	// Senders[i] is the chosen sender device of unit task i.
	Senders []int `json:"senders"`
	// Order lists unit-task indices in launch order.
	Order           []int   `json:"order"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	EffectiveGbps   float64 `json:"effective_gbps"`
	NumOps          int     `json:"num_ops"`
	// Key is the canonical cache key of the problem, for client-side
	// dedup accounting.
	Key string `json:"key"`
	// Degraded reports that the plan was computed with the search-free
	// degraded scheduler — the SLO admission controller traded plan
	// quality for latency (or the client asked for "greedy-degraded"
	// outright). Degraded plans live under their own cache keys.
	// Declared before Coalesced so it lands inside the pre-serialized
	// jsonTail slice; appendJSON patches Coalesced after it.
	Degraded bool `json:"degraded,omitempty"`
	// Coalesced reports that this response was shared from another
	// client's identical in-flight request rather than computed (or looked
	// up) for this one.
	Coalesced bool `json:"coalesced,omitempty"`
}

// AutotuneRequest asks for a strategy x scheduler grid search over one
// resharding. Options.Strategy/Scheduler seed the base options; the grid
// overrides them per candidate.
type AutotuneRequest struct {
	Topology TopologyRef `json:"topology"`
	Shape    []int       `json:"shape"`
	DType    string      `json:"dtype,omitempty"`
	Src      Endpoint    `json:"src"`
	Dst      Endpoint    `json:"dst"`
	Options  PlanOptions `json:"options"`
	// Workers bounds the per-request autotune concurrency; 0 = GOMAXPROCS.
	// The winner is identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// Faults overlays a degradation on the topology; /v2 only.
	Faults *FaultsRef `json:"faults,omitempty"`
}

// AutotuneTrial is one candidate's outcome over the wire.
type AutotuneTrial struct {
	Candidate       string  `json:"candidate"`
	MakespanSeconds float64 `json:"makespan_seconds,omitempty"`
	EffectiveGbps   float64 `json:"effective_gbps,omitempty"`
	Err             string  `json:"err,omitempty"`
}

// AutotuneResponse reports the grid search outcome.
type AutotuneResponse struct {
	Winner          string          `json:"winner"`
	BestIndex       int             `json:"best_index"`
	MakespanSeconds float64         `json:"makespan_seconds"`
	EffectiveGbps   float64         `json:"effective_gbps"`
	Trials          []AutotuneTrial `json:"trials"`
	Coalesced       bool            `json:"coalesced,omitempty"`
}

// CacheStats mirrors resharding.CacheStats over the wire.
type CacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Entries   int `json:"entries"`
	Evictions int `json:"evictions"`
	Capacity  int `json:"capacity"`
}

// EndpointStats are one endpoint's admission and outcome counters.
type EndpointStats struct {
	// Requests is the number of requests admitted to parsing (including
	// ones later rejected or failed).
	Requests int64 `json:"requests"`
	// OK is the number of 200 responses.
	OK int64 `json:"ok"`
	// Errors is the number of 4xx/5xx responses other than 429.
	Errors int64 `json:"errors"`
	// Rejected is the number of 429 responses (admission queue full).
	Rejected int64 `json:"rejected"`
	// Coalesced is the number of responses shared from another client's
	// identical in-flight request.
	Coalesced int64 `json:"coalesced"`
	// InFlight is the number of requests the endpoint is currently
	// processing: waiting in the admission queue, holding a worker slot,
	// or coalesced onto another request's in-flight computation.
	InFlight int64 `json:"in_flight"`
}

// StatsResponse is the /v1/stats payload. Cache is the plan cache shared
// by /v1/plan, /v2/plan and /v2/plan:batch; AutotuneCache is the separate
// cache holding grid-search candidate plans; Batch counts /v2/plan:batch
// requests (one request may carry many items).
type StatsResponse struct {
	Cache         CacheStats    `json:"cache"`
	AutotuneCache CacheStats    `json:"autotune_cache"`
	Plan          EndpointStats `json:"plan"`
	Autotune      EndpointStats `json:"autotune"`
	Batch         EndpointStats `json:"batch"`
	Topologies    []string      `json:"topologies"`
	// Replan counts how degraded-request fills were served by the session
	// planner: warm identity/search replans from a cached fault-free twin,
	// acceptance-rule rejections, invalid rebinds, and cold fills with no
	// incumbent. (Repeat requests for an already-cached overlay are served
	// from the plan cache before reaching the planner, so they show up in
	// Cache.Hits, not here.)
	Replan resharding.ReplanStats `json:"replan"`
	// Cluster is the per-node tier block — identity, ring share, routing
	// and verified-fill counters; nil on a standalone server.
	Cluster *ClusterNodeStats `json:"cluster,omitempty"`
	// Admission is the SLO admission controller's block — mode, windowed
	// p99 estimate, transition counters; nil when SLO admission is off.
	Admission *AdmissionStats `json:"admission,omitempty"`
}

// MaxFaultEntries bounds one request's explicit fault list: like every
// client-supplied parameter, the overlay must not scale server work
// unboundedly (validation and detour precomputation are per-fault).
const MaxFaultEntries = 256

// resolveFaults applies a request's faults block to a built topology:
// the named scenario's faults (if any) plus the explicit lists, validated
// together by mesh.NewFaulted. An empty block returns the base untouched,
// so sending "faults": {} is byte-identical to omitting it.
func resolveFaults(reg *mesh.Registry, topo mesh.Topology, fr *FaultsRef) (mesh.Topology, error) {
	if fr == nil {
		return topo, nil
	}
	if len(fr.Links)+len(fr.Hosts) > MaxFaultEntries {
		return nil, fmt.Errorf("faults block has %d entries, server bound is %d", len(fr.Links)+len(fr.Hosts), MaxFaultEntries)
	}
	var fs mesh.FaultSet
	if fr.Scenario != "" {
		var err error
		if fs, err = reg.BuildFaultScenario(fr.Scenario, topo); err != nil {
			return nil, err
		}
	}
	for _, l := range fr.Links {
		fs.Links = append(fs.Links, mesh.LinkFault{
			A: l.A, B: l.B, Down: l.Down,
			BandwidthScale: l.BandwidthScale, ExtraLatency: l.ExtraLatencySeconds,
		})
	}
	for _, h := range fr.Hosts {
		fs.Hosts = append(fs.Hosts, mesh.HostFault{
			Host: h.Host, NICScale: h.NICScale, IntraScale: h.IntraScale,
		})
	}
	if fs.Empty() {
		return topo, nil
	}
	return mesh.NewFaulted(topo, fs)
}

// buildTopology resolves the request's topology against the registry and
// applies the optional fault overlay.
func buildTopology(reg *mesh.Registry, topoCache *topologyCache, ref TopologyRef, faults *FaultsRef) (mesh.Topology, error) {
	topo, err := topoCache.get(reg, ref)
	if err != nil {
		return nil, err
	}
	if topo, err = resolveFaults(reg, topo, faults); err != nil {
		return nil, fmt.Errorf("bad faults block: %v", err)
	}
	return topo, nil
}

// buildTask resolves the request's topology against the registry, applies
// the optional fault overlay, and decomposes the resharding. The returned
// options have the service's deterministic defaults applied.
func buildTask(reg *mesh.Registry, topoCache *topologyCache, ref TopologyRef, faults *FaultsRef,
	shape []int, dtype string, src, dst Endpoint, po PlanOptions) (*sharding.Task, resharding.Options, error) {

	topo, err := buildTopology(reg, topoCache, ref, faults)
	if err != nil {
		var zero resharding.Options
		return nil, zero, err
	}
	return buildTaskOn(topo, shape, dtype, src, dst, po)
}

// buildTaskOn decomposes one resharding on an already-resolved topology;
// batch requests resolve their shared (topology, faults) pair once and
// call this per item.
func buildTaskOn(topo mesh.Topology,
	shape []int, dtype string, src, dst Endpoint, po PlanOptions) (*sharding.Task, resharding.Options, error) {

	var zero resharding.Options
	gshape, err := tensor.NewShape(shape...)
	if err != nil {
		return nil, zero, fmt.Errorf("bad shape: %v", err)
	}
	dt, err := ParseDType(dtype)
	if err != nil {
		return nil, zero, err
	}
	srcMesh, err := mesh.ParseSlice(topo, src.Mesh)
	if err != nil {
		return nil, zero, fmt.Errorf("bad src mesh: %v", err)
	}
	dstMesh, err := mesh.ParseSlice(topo, dst.Mesh)
	if err != nil {
		return nil, zero, fmt.Errorf("bad dst mesh: %v", err)
	}
	srcSpec, err := sharding.Parse(src.Spec)
	if err != nil {
		return nil, zero, fmt.Errorf("bad src spec: %v", err)
	}
	dstSpec, err := sharding.Parse(dst.Spec)
	if err != nil {
		return nil, zero, fmt.Errorf("bad dst spec: %v", err)
	}
	task, err := sharding.NewTask(gshape, dt, srcMesh, srcSpec, dstMesh, dstSpec)
	if err != nil {
		return nil, zero, err
	}
	opts, err := planOptions(po)
	if err != nil {
		return nil, zero, err
	}
	return task, opts, nil
}

// Upper bounds on client-supplied planning effort: like
// mesh.MaxRegistryHosts, every wire parameter that scales server work must
// be bounded, or one request could pin a worker slot indefinitely.
const (
	// MaxChunks bounds the broadcast pipelining depth.
	MaxChunks = 4096
	// MaxTrials bounds the randomized-greedy trial count.
	MaxTrials = 10000
	// MaxDFSNodes bounds the deterministic DFS budget (default 50k).
	MaxDFSNodes = 10_000_000
)

// NormalizedOptions converts wire options into the exact planning options
// the server uses: parsed strategy/scheduler, effort bounds enforced, the
// deterministic DFS node budget forced, and package defaults applied.
// Verifiers comparing served plans against the direct resharding path must
// plan with these options, not hand-built ones.
func NormalizedOptions(po PlanOptions) (resharding.Options, error) {
	opts, err := planOptions(po)
	if err != nil {
		return opts, err
	}
	return opts.WithDefaults(), nil
}

// planOptions converts wire options, forcing the deterministic node budget.
func planOptions(po PlanOptions) (resharding.Options, error) {
	var opts resharding.Options
	var err error
	if opts.Strategy, err = resharding.ParseStrategy(po.Strategy); err != nil {
		return opts, err
	}
	if opts.Scheduler, err = resharding.ParseScheduler(po.Scheduler); err != nil {
		return opts, err
	}
	if po.Chunks < 0 || po.DFSNodes < 0 || po.Trials < 0 {
		return opts, fmt.Errorf("negative plan option")
	}
	switch po.Quality {
	case "", "auto", "full":
	default:
		return opts, fmt.Errorf("unknown quality %q (want auto or full)", po.Quality)
	}
	if po.Chunks > MaxChunks || po.Trials > MaxTrials || po.DFSNodes > MaxDFSNodes {
		return opts, fmt.Errorf("plan option beyond server bound (chunks <= %d, trials <= %d, dfs_nodes <= %d)",
			MaxChunks, MaxTrials, MaxDFSNodes)
	}
	opts.Chunks = po.Chunks
	opts.Trials = po.Trials
	opts.Seed = po.Seed
	opts.DFSNodes = po.DFSNodes
	if opts.DFSNodes == 0 {
		opts.DFSNodes = resharding.DefaultAutotuneDFSNodes
	}
	return opts, nil
}

// ParseDType accepts the tensor String() names ("fp16"/"fp32"/"fp64") and
// the spelled-out aliases (float16/32/64); empty means fp32.
func ParseDType(s string) (tensor.DType, error) {
	switch strings.ToLower(s) {
	case "fp16", "float16":
		return tensor.Float16, nil
	case "", "fp32", "float32":
		return tensor.Float32, nil
	case "fp64", "float64":
		return tensor.Float64, nil
	default:
		return 0, fmt.Errorf("unknown dtype %q (want fp16, fp32 or fp64)", s)
	}
}
