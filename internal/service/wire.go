package service

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary wire format. /v2 responses are negotiated via the Accept
// header: a request accepting ContentTypeBinary receives a length-prefixed
// little-endian frame instead of JSON, carrying exactly the fields of the
// JSON payload — including the structured error envelope — so the two
// formats decode to identical values. JSON remains the default; /v1 is
// JSON-only.
//
// Every frame is magic "APB1", a kind byte, then the kind's body:
//
//	plan (1):     flags u8 (bit0 = coalesced, bit1 = degraded) |
//	              num_units u32 | num_ops u32 |
//	              makespan f64 | effective_gbps f64 |
//	              senders  u32 count + i32 × count |
//	              order    u32 count + i32 × count |
//	              strategy str | scheduler str | key str
//	autotune (2): flags u8 (bit0 = coalesced) | best_index u32 |
//	              makespan f64 | effective_gbps f64 | winner str |
//	              trials u32 count × (candidate str | makespan f64 |
//	                                  effective_gbps f64 | err str)
//	batch (3):    distinct u32 | coalesced u32 |
//	              items u32 count × (tag u8: 0 = plan frame, 1 = error frame)
//	error (4):    code str | message str | retryable u8 |
//	              retry_after_seconds u32
//
// str is u32 length + raw bytes. The plan body's fixed prefix puts the
// flags byte and the sender array at constant offsets (binFlagsOff,
// binPlanSendersOff), which is what lets a pre-serialized frame be patched
// in place for coalesced and translated responses.

// ContentTypeBinary is the negotiated media type of the binary format.
const ContentTypeBinary = "application/x-alpacomm-plan"

const (
	binKindPlan     = 1
	binKindAutotune = 2
	binKindBatch    = 3
	binKindError    = 4
)

const (
	binFlagCoalesced = 1 << 0
	// binFlagDegraded marks a plan computed with the search-free degraded
	// scheduler (SLO admission); plan frames only.
	binFlagDegraded = 1 << 1
	// binFlagsOff is the flags byte's offset in a plan frame.
	binFlagsOff = 5
	// binPlanSendersOff is the offset of the first sender i32 in a plan
	// frame: magic(4) + kind(1) + flags(1) + num_units(4) + num_ops(4) +
	// makespan(8) + effective_gbps(8) + sender count(4).
	binPlanSendersOff = 34
)

var binMagic = [4]byte{'A', 'P', 'B', '1'}

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendMagic(b []byte, kind byte) []byte {
	b = append(b, binMagic[:]...)
	return append(b, kind)
}

// appendPlanBinary appends a full plan frame for the response.
func appendPlanBinary(b []byte, r *PlanResponse) []byte {
	b = appendMagic(b, binKindPlan)
	var flags byte
	if r.Coalesced {
		flags |= binFlagCoalesced
	}
	if r.Degraded {
		flags |= binFlagDegraded
	}
	b = append(b, flags)
	b = appendU32(b, uint32(r.NumUnits))
	b = appendU32(b, uint32(r.NumOps))
	b = appendF64(b, r.MakespanSeconds)
	b = appendF64(b, r.EffectiveGbps)
	b = appendU32(b, uint32(len(r.Senders)))
	for _, s := range r.Senders {
		b = appendU32(b, uint32(int32(s)))
	}
	b = appendU32(b, uint32(len(r.Order)))
	for _, o := range r.Order {
		b = appendU32(b, uint32(int32(o)))
	}
	b = appendStr(b, r.Strategy)
	b = appendStr(b, r.Scheduler)
	return appendStr(b, r.Key)
}

// appendAutotuneBinary appends a full autotune frame.
func appendAutotuneBinary(b []byte, r *AutotuneResponse) []byte {
	b = appendMagic(b, binKindAutotune)
	var flags byte
	if r.Coalesced {
		flags |= binFlagCoalesced
	}
	b = append(b, flags)
	b = appendU32(b, uint32(r.BestIndex))
	b = appendF64(b, r.MakespanSeconds)
	b = appendF64(b, r.EffectiveGbps)
	b = appendStr(b, r.Winner)
	b = appendU32(b, uint32(len(r.Trials)))
	for i := range r.Trials {
		t := &r.Trials[i]
		b = appendStr(b, t.Candidate)
		b = appendF64(b, t.MakespanSeconds)
		b = appendF64(b, t.EffectiveGbps)
		b = appendStr(b, t.Err)
	}
	return b
}

// appendErrorBinary appends a full error frame — the binary form of
// V2ErrorEnvelope.
func appendErrorBinary(b []byte, e *V2Error) []byte {
	b = appendMagic(b, binKindError)
	b = appendStr(b, e.Code)
	b = appendStr(b, e.Message)
	var retryable byte
	if e.Retryable {
		retryable = 1
	}
	b = append(b, retryable)
	return appendU32(b, uint32(e.RetryAfterSeconds))
}

// appendBatchBinary appends a full batch frame from already-rendered item
// frames; see handlePlanBatch for the streaming assembly the server uses
// instead.
func appendBatchBinary(b []byte, r *BatchPlanResponse) []byte {
	b = appendBatchBinaryHeader(b, r.Distinct, r.Coalesced, len(r.Items))
	for i := range r.Items {
		b = appendBatchItemBinary(b, &r.Items[i])
	}
	return b
}

// appendBatchBinaryHeader appends the batch frame prefix up to (and
// including) the item count; item frames follow.
func appendBatchBinaryHeader(b []byte, distinct, coalesced, items int) []byte {
	b = appendMagic(b, binKindBatch)
	b = appendU32(b, uint32(distinct))
	b = appendU32(b, uint32(coalesced))
	return appendU32(b, uint32(items))
}

// appendBatchItemBinary appends one item: a tag byte plus the nested plan
// or error frame.
func appendBatchItemBinary(b []byte, it *BatchPlanItemResult) []byte {
	if it.Error != nil {
		b = append(b, 1)
		return appendErrorBinary(b, it.Error)
	}
	b = append(b, 0)
	return appendPlanBinary(b, it.Plan)
}

// binReader is a bounds-checked cursor over one frame; every read
// validates the remaining length, so malformed input yields an error,
// never a panic or an oversized allocation.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("service: binary decode: "+format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) u8() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *binReader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *binReader) f64() float64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(r.remaining()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.remaining())
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// ints reads a count-prefixed i32 array, bounding the allocation by the
// bytes actually present.
func (r *binReader) ints() []int {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(n)*4 > int64(r.remaining()) {
		r.fail("array length %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int32(r.u32()))
	}
	return out
}

// flags reads a flags byte, rejecting bits outside the frame kind's mask:
// the format has one canonical encoding per value, so every accepted
// frame re-encodes to the exact bytes it arrived as.
func (r *binReader) flags(mask byte) byte {
	v := r.u8()
	if r.err == nil && v&^mask != 0 {
		r.fail("undefined flag bits %#x", v)
		return 0
	}
	return v
}

// boolean reads a bool byte, rejecting values other than 0 and 1 for the
// same canonical-encoding reason as flags.
func (r *binReader) boolean() bool {
	v := r.u8()
	if r.err == nil && v > 1 {
		r.fail("non-canonical bool byte %#x", v)
		return false
	}
	return v == 1
}

// magic consumes the frame prefix and returns the kind byte.
func (r *binReader) magic() byte {
	if r.err != nil || r.remaining() < 5 {
		r.fail("frame shorter than its header")
		return 0
	}
	if [4]byte(r.data[r.off:r.off+4]) != binMagic {
		r.fail("bad magic %q", r.data[r.off:r.off+4])
		return 0
	}
	r.off += 4
	return r.u8()
}

func (r *binReader) plan() *PlanResponse {
	var p PlanResponse
	flags := r.flags(binFlagCoalesced | binFlagDegraded)
	p.Coalesced = flags&binFlagCoalesced != 0
	p.Degraded = flags&binFlagDegraded != 0
	p.NumUnits = int(r.u32())
	p.NumOps = int(r.u32())
	p.MakespanSeconds = r.f64()
	p.EffectiveGbps = r.f64()
	p.Senders = r.ints()
	p.Order = r.ints()
	p.Strategy = r.str()
	p.Scheduler = r.str()
	p.Key = r.str()
	if r.err != nil {
		return nil
	}
	return &p
}

func (r *binReader) autotune() *AutotuneResponse {
	var a AutotuneResponse
	flags := r.flags(binFlagCoalesced)
	a.Coalesced = flags&binFlagCoalesced != 0
	a.BestIndex = int(r.u32())
	a.MakespanSeconds = r.f64()
	a.EffectiveGbps = r.f64()
	a.Winner = r.str()
	n := r.u32()
	if r.err != nil {
		return nil
	}
	// Each trial is at least 4+8+8+4 bytes; bound the allocation by what
	// the frame can actually hold.
	if int64(n)*24 > int64(r.remaining()) {
		r.fail("trial count %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	a.Trials = make([]AutotuneTrial, n)
	for i := range a.Trials {
		a.Trials[i].Candidate = r.str()
		a.Trials[i].MakespanSeconds = r.f64()
		a.Trials[i].EffectiveGbps = r.f64()
		a.Trials[i].Err = r.str()
	}
	if r.err != nil {
		return nil
	}
	return &a
}

func (r *binReader) errorEnvelope() *V2Error {
	var e V2Error
	e.Code = r.str()
	e.Message = r.str()
	e.Retryable = r.boolean()
	e.RetryAfterSeconds = int(r.u32())
	if r.err != nil {
		return nil
	}
	return &e
}

func (r *binReader) batch() *BatchPlanResponse {
	var b BatchPlanResponse
	b.Distinct = int(r.u32())
	b.Coalesced = int(r.u32())
	n := r.u32()
	if r.err != nil {
		return nil
	}
	// Each item is at least a tag byte plus a frame header.
	if int64(n)*6 > int64(r.remaining()) {
		r.fail("item count %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	b.Items = make([]BatchPlanItemResult, n)
	for i := range b.Items {
		tag := r.u8()
		kind := r.magic()
		if r.err != nil {
			return nil
		}
		switch {
		case tag == 0 && kind == binKindPlan:
			b.Items[i].Plan = r.plan()
		case tag == 1 && kind == binKindError:
			b.Items[i].Error = r.errorEnvelope()
		default:
			r.fail("item %d: tag %d does not match frame kind %d", i, tag, kind)
			return nil
		}
	}
	if r.err != nil {
		return nil
	}
	return &b
}

// decodeBinary decodes one complete frame into any of the response types
// (or *V2Error for an error frame). Trailing bytes after the frame are an
// error: frames are self-delimiting, so leftovers mean a framing bug.
func decodeBinary(data []byte) (interface{}, error) {
	r := &binReader{data: data}
	kind := r.magic()
	var v interface{}
	switch kind {
	case binKindPlan:
		v = r.plan()
	case binKindAutotune:
		v = r.autotune()
	case binKindBatch:
		v = r.batch()
	case binKindError:
		v = r.errorEnvelope()
	default:
		if r.err == nil {
			r.fail("unknown frame kind %d", kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("service: binary decode: %d trailing bytes after frame", r.remaining())
	}
	return v, nil
}
