package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"alpacomm/internal/service"
)

// fillTier serves seeds 1..n through the node and returns the raw response
// bodies keyed by seed — the reference for byte-identity after restore.
func fillTier(t *testing.T, tn *testNode, n int) map[int64][]byte {
	t.Helper()
	bodies := make(map[int64][]byte, n)
	for seed := int64(1); seed <= int64(n); seed++ {
		bodies[seed] = rawPlan(t, tn.url, tierReq(seed))
	}
	return bodies
}

// frameRegion walks the snapshot's length-prefixed records and returns the
// byte range of record rec's plan frame.
func frameRegion(t *testing.T, data []byte, rec int) (start, length int) {
	t.Helper()
	off := 9 // magic + version + count
	for i := 0; ; i++ {
		reqLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4 + reqLen
		frameLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if i == rec {
			return off, frameLen
		}
		off += frameLen
	}
}

// TestSnapshotRoundTrip: snapshot a filled node, restore into a fresh one,
// and every restored key serves byte-identical bodies as pure cache hits.
func TestSnapshotRoundTrip(t *testing.T) {
	const n = 12
	path := filepath.Join(t.TempDir(), "plans.snap")
	warm := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	bodies := fillTier(t, warm, n)
	st, err := warm.node.Snapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != n || st.Bytes <= 0 {
		t.Fatalf("snapshot stats = %+v, want %d entries", st, n)
	}

	cold := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	rst, err := cold.node.Restore(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Restored != n || rst.Rejected != 0 {
		t.Fatalf("restore stats = %+v, want %d restored, 0 rejected", rst, n)
	}
	if info := cold.node.Info(); info.SnapshotRestored != n || info.SnapshotRejected != 0 {
		t.Errorf("node counters = %d restored / %d rejected", info.SnapshotRestored, info.SnapshotRejected)
	}
	for seed, want := range bodies {
		if got := rawPlan(t, cold.url, tierReq(seed)); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: restored body differs\n got %s\nwant %s", seed, got, want)
		}
	}
	cs := cold.srv.Cache().Stats()
	if cs.Misses != 0 || cs.Hits != n {
		t.Errorf("warm restart served %d misses / %d hits, want 0 / %d", cs.Misses, cs.Hits, n)
	}

	// A re-snapshot of the restored node round-trips to the same record
	// set (the journal was rebuilt during restore).
	path2 := filepath.Join(t.TempDir(), "plans2.snap")
	st2, err := cold.node.Snapshot(path2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Entries != n {
		t.Errorf("re-snapshot entries = %d, want %d", st2.Entries, n)
	}
}

// TestSnapshotCorruptFrame: flipping one byte of one record's claimed
// makespan rejects exactly that entry on restart — replay verification
// catches it — while every other record restores and serves.
func TestSnapshotCorruptFrame(t *testing.T) {
	const n = 6
	path := filepath.Join(t.TempDir(), "plans.snap")
	warm := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	bodies := fillTier(t, warm, n)
	if _, err := warm.node.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	start, length := frameRegion(t, data, 2)
	if length <= 22 {
		t.Fatalf("frame unexpectedly small: %d bytes", length)
	}
	data[start+14] ^= 0xff // one byte of the frame's makespan field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cold := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	rst, err := cold.node.Restore(context.Background(), path)
	if err != nil {
		t.Fatal(err) // framing is intact; only the one record may fail
	}
	if rst.Restored != n-1 || rst.Rejected != 1 {
		t.Fatalf("restore stats = %+v, want %d restored, 1 rejected", rst, n-1)
	}
	// Every key — including the rejected one, recomputed on demand —
	// serves the original bytes.
	for seed, want := range bodies {
		if got := rawPlan(t, cold.url, tierReq(seed)); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: body differs after corrupt restart", seed)
		}
	}
	if cs := cold.srv.Cache().Stats(); cs.Misses != 1 {
		t.Errorf("recomputed %d entries, want exactly the rejected one", cs.Misses)
	}
}

// TestSnapshotTruncated: a snapshot cut mid-record restores everything
// before the cut, counts the rest rejected, and reports the error.
func TestSnapshotTruncated(t *testing.T) {
	const n = 5
	path := filepath.Join(t.TempDir(), "plans.snap")
	warm := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	fillTier(t, warm, n)
	if _, err := warm.node.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart, _ := frameRegion(t, data, n-1)
	if err := os.WriteFile(path, data[:lastStart+3], 0o644); err != nil {
		t.Fatal(err)
	}

	cold := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	rst, err := cold.node.Restore(context.Background(), path)
	if err == nil {
		t.Fatal("truncated snapshot restored without error")
	}
	if rst.Restored != n-1 || rst.Rejected != 1 {
		t.Errorf("restore stats = %+v, want %d restored, 1 rejected", rst, n-1)
	}
}

// TestSnapshotColdStart: a missing snapshot file is a clean cold start,
// and a non-snapshot file is refused outright.
func TestSnapshotColdStart(t *testing.T) {
	tn := startTier(t, []string{"solo"}, func() service.Config { return service.Config{} })[0]
	st, err := tn.node.Restore(context.Background(), filepath.Join(t.TempDir(), "absent.snap"))
	if err != nil || st.Entries != 0 {
		t.Fatalf("missing file: stats %+v, err %v", st, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.node.Restore(context.Background(), bad); err == nil {
		t.Fatal("garbage file accepted as snapshot")
	}
}
