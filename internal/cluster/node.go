package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"alpacomm/internal/resharding"
	"alpacomm/internal/service"
	"alpacomm/internal/sharding"
)

// DefaultFetchTimeout bounds one peer fetch: a hung owner must not pin the
// requester past it — the fetch fails and the requester computes locally.
const DefaultFetchTimeout = 30 * time.Second

// Config configures one tier node.
type Config struct {
	// NodeID is this node's tier-unique identity (ring position derives
	// from it, so restarting under the same id restores the same
	// ownership). Required.
	NodeID string
	// SelfAddr is this node's advertised base URL ("http://host:port"),
	// announced to peers on Join. May be empty for a node that never
	// joins dynamically (static -peers on every member).
	SelfAddr string
	// Peers maps peer node ids to base URLs — the initial static
	// membership, self excluded (including it is harmless).
	Peers map[string]string
	// VNodes is the virtual-node count per member; <= 0 = DefaultVNodes.
	// Must be identical on every member or nodes would disagree on
	// ownership.
	VNodes int
	// FetchTimeout bounds one peer fetch; <= 0 = DefaultFetchTimeout.
	FetchTimeout time.Duration
	// HTTPClient is used for peer traffic; nil = a service.NewClient
	// default per peer.
	HTTPClient *http.Client
}

// Node makes one service.Server a member of a plan-serving tier. It
// implements service.Router (install with server.SetRouter — New does it)
// and serves the membership endpoints under /cluster/ (mount via Handler).
type Node struct {
	cfg  Config
	srv  *service.Server
	ring *Ring

	mu      sync.RWMutex
	addrs   map[string]string // member id -> base URL (self absent)
	clients map[string]*service.Client

	journal journal

	accepts   atomic.Int64
	rejects   atomic.Int64
	restored  atomic.Int64
	rejectedR atomic.Int64
}

// New builds a tier node around srv, seeds the ring with self plus the
// configured peers, and installs itself as the server's router. Announce
// dynamic membership with Join/Leave; persist and restore the cache with
// Snapshot/Restore.
func New(cfg Config, srv *service.Server) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: NodeID is required")
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = DefaultFetchTimeout
	}
	n := &Node{
		cfg:     cfg,
		srv:     srv,
		ring:    NewRing(cfg.VNodes),
		addrs:   map[string]string{},
		clients: map[string]*service.Client{},
	}
	n.journal.init(journalBound(srv))
	n.ring.Add(cfg.NodeID)
	for id, addr := range cfg.Peers {
		if id == cfg.NodeID {
			continue
		}
		n.addMember(id, addr)
	}
	srv.SetRouter(n)
	return n, nil
}

// journalBound sizes the fill journal to the cache it shadows: the journal
// only needs to cover resident entries (snapshots join the two), with
// headroom so eviction churn between sweeps does not drop records.
func journalBound(srv *service.Server) int {
	if c := srv.Cache().Capacity(); c > 0 {
		return 2*c + 1024
	}
	return 1 << 16
}

// NodeID returns this node's identity.
func (n *Node) NodeID() string { return n.cfg.NodeID }

// Ring exposes the node's ring (tests and loadgen assert on ownership).
func (n *Node) Ring() *Ring { return n.ring }

// addMember registers a member address and ring position.
func (n *Node) addMember(id, addr string) {
	if id == "" || id == n.cfg.NodeID {
		return
	}
	n.mu.Lock()
	if addr != "" && n.addrs[id] != addr {
		n.addrs[id] = addr
		delete(n.clients, id) // rebuilt lazily against the new address
	}
	n.mu.Unlock()
	n.ring.Add(id)
}

// removeMember drops a member from the ring and the address table.
func (n *Node) removeMember(id string) {
	n.ring.Remove(id)
	n.mu.Lock()
	delete(n.addrs, id)
	delete(n.clients, id)
	n.mu.Unlock()
}

// client returns (building if needed) the peer client for a member: binary
// wire (the frames are what verification and snapshots consume) and the
// peer header so the owner resolves locally.
func (n *Node) client(id string) *service.Client {
	n.mu.RLock()
	cl, ok := n.clients[id]
	addr := n.addrs[id]
	n.mu.RUnlock()
	if ok {
		return cl
	}
	if addr == "" {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if cl, ok = n.clients[id]; ok {
		return cl
	}
	cl = service.NewClient(addr, n.cfg.HTTPClient, service.WithBinary(), service.AsPeer(n.cfg.NodeID))
	n.clients[id] = cl
	return cl
}

// Route implements service.Router: consistent-hash ownership of the
// canonical cache key.
func (n *Node) Route(key string) (owner string, local bool) {
	owner, ok := n.ring.Owner(key)
	if !ok {
		// Ring drained (this node left and peers are gone): serve locally.
		return n.cfg.NodeID, true
	}
	return owner, owner == n.cfg.NodeID
}

// Fetch implements service.Router: ask the owning peer for the plan over
// /v2 (binary wire, peer-marked so the owner never re-routes), then gate
// it through VerifyFill before the server caches it. The owner's own
// request coalescing merges concurrent fetches of one cold key from every
// node in the tier — cluster-wide singleflight — while the caller's
// in-process flight already merged local duplicates.
func (n *Node) Fetch(ctx context.Context, owner, key string, req *service.PlanRequest, task *sharding.Task, opts resharding.Options) (*resharding.Plan, *resharding.SimResult, error) {
	cl := n.client(owner)
	if cl == nil {
		return nil, nil, fmt.Errorf("cluster: no address for owner %q", owner)
	}
	fctx, cancel := context.WithTimeout(ctx, n.cfg.FetchTimeout)
	defer cancel()
	resp, err := cl.PlanV2(fctx, req)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: fetch from %q failed: %w", owner, err)
	}
	if resp.Key != key {
		// The peer decomposed the same request to a different canonical
		// key: version skew or corruption — either way not the entry we
		// asked for.
		n.rejects.Add(1)
		return nil, nil, fmt.Errorf("cluster: fill rejected: peer %q answered key %q, want %q", owner, resp.Key, key)
	}
	plan, sim, err := VerifyFill(task, opts, resp)
	if err != nil {
		n.rejects.Add(1)
		return nil, nil, err
	}
	n.accepts.Add(1)
	return plan, sim, nil
}

// Record implements service.Router: remember the wire request that filled
// a key so Snapshot can persist a replayable record.
func (n *Node) Record(key string, req *service.PlanRequest) {
	n.journal.put(key, req)
}

// Info implements service.Router.
func (n *Node) Info() service.ClusterNodeStats {
	return service.ClusterNodeStats{
		NodeID:              n.cfg.NodeID,
		Members:             n.ring.Members(),
		OwnershipShare:      n.ring.Share(n.cfg.NodeID),
		VerifiedFillAccepts: n.accepts.Load(),
		VerifiedFillRejects: n.rejects.Load(),
		SnapshotRestored:    n.restored.Load(),
		SnapshotRejected:    n.rejectedR.Load(),
	}
}

// Handler returns the node's full HTTP surface: /cluster/* membership
// endpoints plus the wrapped plan server for everything else — what a
// daemon (or an in-process tier) should serve.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/cluster/", n)
	mux.Handle("/", n.srv)
	return mux
}

// memberChange is the body of /cluster/join and /cluster/leave.
type memberChange struct {
	Node string `json:"node"`
	Addr string `json:"addr,omitempty"`
}

// memberList is the body of /cluster/members and the join response: the
// receiver's full view, so a joiner learns members it was not configured
// with.
type memberList struct {
	Members map[string]string `json:"members"`
}

// ServeHTTP serves the membership endpoints:
//
//	POST /cluster/join   {"node","addr"} — add a member; returns the view
//	POST /cluster/leave  {"node"}        — remove a member
//	GET  /cluster/members               — current view
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/cluster/join", "/cluster/leave":
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"use POST"}`, http.StatusMethodNotAllowed)
			return
		}
		var mc memberChange
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&mc); err != nil || mc.Node == "" {
			http.Error(w, `{"error":"bad membership body"}`, http.StatusBadRequest)
			return
		}
		if r.URL.Path == "/cluster/join" {
			n.addMember(mc.Node, mc.Addr)
		} else if mc.Node != n.cfg.NodeID {
			n.removeMember(mc.Node)
		}
		n.writeMembers(w)
	case "/cluster/members":
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"use GET"}`, http.StatusMethodNotAllowed)
			return
		}
		n.writeMembers(w)
	default:
		http.NotFound(w, r)
	}
}

func (n *Node) writeMembers(w http.ResponseWriter) {
	n.mu.RLock()
	view := make(map[string]string, len(n.addrs)+1)
	for id, addr := range n.addrs {
		view[id] = addr
	}
	n.mu.RUnlock()
	view[n.cfg.NodeID] = n.cfg.SelfAddr
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(memberList{Members: view})
}

// Join announces this node to every configured peer and merges the
// membership views they answer with, so a node joining an established
// tier learns members it was not configured with. Unreachable peers are
// skipped (best-effort: static Peers already seeded the ring); the first
// error is returned after all peers were tried.
func (n *Node) Join(ctx context.Context) error {
	var firstErr error
	for _, id := range n.ring.Members() {
		if id == n.cfg.NodeID {
			continue
		}
		view, err := n.postMembership(ctx, id, "/cluster/join",
			memberChange{Node: n.cfg.NodeID, Addr: n.cfg.SelfAddr})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for mid, addr := range view {
			n.addMember(mid, addr)
		}
	}
	return firstErr
}

// Leave removes this node from its own ring and announces the departure
// to every peer — the leave-the-ring-first half of a graceful shutdown:
// once it returns, peers stop routing new keys here while this node
// drains in-flight requests (still serving hits and proxying, since its
// own ring now routes everything to peers).
func (n *Node) Leave(ctx context.Context) {
	n.ring.Remove(n.cfg.NodeID)
	for _, id := range n.ring.Members() {
		_, _ = n.postMembership(ctx, id, "/cluster/leave", memberChange{Node: n.cfg.NodeID})
	}
}

// postMembership posts one membership change to a peer's /cluster
// endpoint and decodes the returned view.
func (n *Node) postMembership(ctx context.Context, id, path string, mc memberChange) (map[string]string, error) {
	n.mu.RLock()
	addr := n.addrs[id]
	n.mu.RUnlock()
	if addr == "" {
		return nil, fmt.Errorf("cluster: no address for member %q", id)
	}
	body, err := json.Marshal(mc)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := n.cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s on %q: %s", path, id, resp.Status)
	}
	var ml memberList
	if err := json.NewDecoder(resp.Body).Decode(&ml); err != nil {
		return nil, err
	}
	return ml.Members, nil
}

// journal shadows the plan cache with the wire request that filled each
// key: a snapshot record must be replayable (parse request -> task ->
// verify plan), and the cache itself only holds the parsed form. Bounded;
// when full it first sweeps entries whose keys are no longer resident.
type journal struct {
	mu    sync.Mutex
	bound int
	m     map[string]*service.PlanRequest
}

func (j *journal) init(bound int) {
	j.bound = bound
	j.m = make(map[string]*service.PlanRequest)
}

func (j *journal) put(key string, req *service.PlanRequest) {
	if req == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.m[key]; !ok && len(j.m) >= j.bound {
		return // sweep() reclaims space at snapshot time
	}
	j.m[key] = req
}

func (j *journal) get(key string) *service.PlanRequest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.m[key]
}

// sweep drops journal entries whose keys are no longer cache-resident.
func (j *journal) sweep(resident map[string]bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for k := range j.m {
		if !resident[k] {
			delete(j.m, k)
		}
	}
}
