package cluster

import (
	"fmt"
	"math"
	"testing"
)

// ringKeys synthesizes a deterministic key population shaped like real
// cache keys (long strings with a varying tail).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("t=[128 128 8]/fp32;s=[2 4]/RS01R@0;d=[2 4]/S01RR@8;o=1/2/8/0/20000/0/%d", i)
	}
	return keys
}

func ringWithNodes(n int) *Ring {
	r := NewRing(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	return r
}

func owners(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("empty ring")
		}
		m[k] = o
	}
	return m
}

// TestRingAddMovesBoundedFraction is the rebalancing property test: adding
// a member to an N-node ring moves at most 1/(N+1) of keys plus a
// virtual-node smoothing epsilon, and every moved key moves TO the new
// member — no key is ever reassigned between two surviving members.
func TestRingAddMovesBoundedFraction(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{1, 2, 3, 4, 7, 8, 15} {
		r := ringWithNodes(n)
		before := owners(t, r, keys)
		r.Add("joiner")
		after := owners(t, r, keys)
		moved := 0
		for _, k := range keys {
			if before[k] != after[k] {
				moved++
				if after[k] != "joiner" {
					t.Fatalf("n=%d: key moved between surviving members %q -> %q", n, before[k], after[k])
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		bound := 1/float64(n+1) + 0.08
		if frac > bound {
			t.Errorf("n=%d: adding a node moved %.3f of keys, bound %.3f", n, frac, bound)
		}
		// The join must actually take ownership, not land on a dead arc.
		if moved == 0 {
			t.Errorf("n=%d: joiner owns no keys", n)
		}
	}
}

// TestRingRemoveMovesOnlyOwnedKeys: removing a member reassigns exactly
// the keys it owned; every key owned by a survivor keeps its owner.
func TestRingRemoveMovesOnlyOwnedKeys(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 4, 8} {
		r := ringWithNodes(n)
		before := owners(t, r, keys)
		victim := "node0"
		r.Remove(victim)
		after := owners(t, r, keys)
		moved := 0
		for _, k := range keys {
			if before[k] == victim {
				moved++
				if after[k] == victim {
					t.Fatalf("n=%d: key still owned by removed member", n)
				}
				continue
			}
			if before[k] != after[k] {
				t.Fatalf("n=%d: survivor-owned key moved %q -> %q", n, before[k], after[k])
			}
		}
		frac := float64(moved) / float64(len(keys))
		bound := 1/float64(n) + 0.08
		if frac > bound {
			t.Errorf("n=%d: removing a node moved %.3f of keys, bound %.3f", n, frac, bound)
		}
	}
}

// TestRingShare: ownership shares sum to 1 and stay within vnode-smoothing
// distance of 1/N, and Share agrees with the measured key fraction.
func TestRingShare(t *testing.T) {
	keys := ringKeys(50000)
	for _, n := range []int{1, 2, 4, 8} {
		r := ringWithNodes(n)
		var sum float64
		counts := map[string]int{}
		for k, o := range owners(t, r, keys) {
			_ = k
			counts[o]++
		}
		for _, m := range r.Members() {
			share := r.Share(m)
			sum += share
			if want := 1 / float64(n); math.Abs(share-want) > 0.08 {
				t.Errorf("n=%d: %s share %.3f, want %.3f ± 0.08", n, m, share, want)
			}
			measured := float64(counts[m]) / float64(len(keys))
			if math.Abs(share-measured) > 0.02 {
				t.Errorf("n=%d: %s share %.3f but owns %.3f of keys", n, m, share, measured)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: shares sum to %v, want 1", n, sum)
		}
	}
	if s := NewRing(0).Share("ghost"); s != 0 {
		t.Errorf("non-member share = %v, want 0", s)
	}
}

// TestRingDeterministicAcrossInstances: two rings built with the same
// members in different insertion orders route every key identically —
// the property that keeps tier routing loop-free.
func TestRingDeterministicAcrossInstances(t *testing.T) {
	keys := ringKeys(2000)
	a := NewRing(0)
	b := NewRing(0)
	for i := 0; i < 5; i++ {
		a.Add(fmt.Sprintf("node%d", i))
	}
	for i := 4; i >= 0; i-- {
		b.Add(fmt.Sprintf("node%d", i))
	}
	for _, k := range keys {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %q: %q vs %q", k, oa, ob)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Error("empty ring reported an owner")
	}
	if r.Add("") {
		t.Error("empty member id accepted")
	}
	if !r.Add("a") || r.Add("a") {
		t.Error("Add idempotence broken")
	}
	if o, ok := r.Owner("k"); !ok || o != "a" {
		t.Errorf("single-member ring owner = %q, %v", o, ok)
	}
	if r.Share("a") != 1 {
		t.Errorf("single-member share = %v, want 1", r.Share("a"))
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Error("Remove idempotence broken")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after removing all", r.Len())
	}
}
