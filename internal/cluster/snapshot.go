package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"alpacomm/internal/service"
)

// Snapshot file format ("APSN", version 1, little-endian):
//
//	magic "APSN" | version u8 | count u32 |
//	count × record
//	record: req_len u32 | request JSON | frame_len u32 | binary plan frame
//
// A record pairs the wire request that filled a cache entry with the
// entry's pre-serialized binary plan frame — the exact bytes a
// binary-negotiated /v2/plan response carries, reused as the persistence
// format. Restore replays each record from scratch: parse the request,
// decode the frame, and gate the plan through VerifyFill exactly as a
// peer fill would be. The snapshot is therefore untrusted input — a
// corrupt or tampered record fails its own verification and is skipped,
// while length-prefixed framing keeps the stream in sync so every other
// record still restores.

var snapMagic = [4]byte{'A', 'P', 'S', 'N'}

const snapVersion = 1

// maxSnapRecordBytes bounds one record's decoded lengths: snapshot files
// are untrusted, so a corrupt length must not drive an oversized
// allocation.
const maxSnapRecordBytes = 16 << 20

// SnapshotStats reports one snapshot or restore pass.
type SnapshotStats struct {
	// Entries is the number of records written (snapshot) or present
	// (restore).
	Entries int `json:"entries"`
	// Restored / Rejected split a restore's records into replay-verified
	// installs and corrupt-or-stale skips; both zero on snapshot.
	Restored int `json:"restored"`
	Rejected int `json:"rejected"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes"`
}

// Snapshot persists the server's plan cache to path: every completed
// entry whose fill request is still journaled, hottest first. The write
// is atomic (temp file + rename), so a crash mid-snapshot leaves the
// previous snapshot intact; the journal is swept to the resident key set
// as a side effect.
func (n *Node) Snapshot(path string) (SnapshotStats, error) {
	var st SnapshotStats
	plans := n.srv.ExportPlans()
	resident := make(map[string]bool, len(plans))
	type rec struct {
		req   []byte
		frame []byte
	}
	recs := make([]rec, 0, len(plans))
	for _, p := range plans {
		resident[p.Key] = true
		req := n.journal.get(p.Key)
		if req == nil {
			// Filled outside the routed path (e.g. a pre-warmed shared
			// cache): not replayable, so not persistable.
			continue
		}
		rb, err := json.Marshal(req)
		if err != nil {
			continue
		}
		recs = append(recs, rec{req: rb, frame: p.Frame})
	}
	n.journal.sweep(resident)

	size := 4 + 1 + 4
	for _, r := range recs {
		size += 8 + len(r.req) + len(r.frame)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.req)))
		buf = append(buf, r.req...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.frame)))
		buf = append(buf, r.frame...)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return st, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return st, err
	}
	if err := tmp.Close(); err != nil {
		return st, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return st, err
	}
	st.Entries = len(recs)
	st.Bytes = int64(len(buf))
	return st, nil
}

// Restore warm-starts the cache from a snapshot written by Snapshot:
// every record is replayed from scratch — request parsed, frame decoded,
// plan re-simulated and compared via VerifyFill — and only verified
// entries are installed. Corrupt records are counted and skipped
// individually; a framing-level corruption (bad magic, a length running
// past the file) stops the scan and reports the records salvaged before
// it. A missing file is not an error: a cold start restores nothing.
func (n *Node) Restore(ctx context.Context, path string) (SnapshotStats, error) {
	var st SnapshotStats
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	st.Bytes = int64(len(data))
	if len(data) < 9 || [4]byte(data[:4]) != snapMagic {
		return st, fmt.Errorf("cluster: %s is not a snapshot file", path)
	}
	if data[4] != snapVersion {
		return st, fmt.Errorf("cluster: snapshot version %d, want %d", data[4], snapVersion)
	}
	count := int(binary.LittleEndian.Uint32(data[5:9]))
	st.Entries = count
	off := 9
	readBlob := func() ([]byte, bool) {
		if len(data)-off < 4 {
			return nil, false
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if l > maxSnapRecordBytes || l > len(data)-off {
			return nil, false
		}
		b := data[off : off+l]
		off += l
		return b, true
	}
	for i := 0; i < count; i++ {
		reqB, ok := readBlob()
		if !ok {
			st.Rejected += count - i
			n.rejectedR.Add(int64(count - i))
			return st, fmt.Errorf("cluster: snapshot truncated at record %d (%d restored)", i, st.Restored)
		}
		frame, ok := readBlob()
		if !ok {
			st.Rejected += count - i
			n.rejectedR.Add(int64(count - i))
			return st, fmt.Errorf("cluster: snapshot truncated at record %d (%d restored)", i, st.Restored)
		}
		if n.restoreRecord(ctx, reqB, frame) {
			st.Restored++
		} else {
			st.Rejected++
		}
	}
	return st, nil
}

// restoreRecord replays one snapshot record through the same verification
// gate as a peer fill; see Restore.
func (n *Node) restoreRecord(ctx context.Context, reqB, frame []byte) bool {
	ok := func() bool {
		var req service.PlanRequest
		if err := json.Unmarshal(reqB, &req); err != nil {
			return false
		}
		task, opts, key, err := n.srv.ParsePlanRequest(ctx, &req)
		if err != nil {
			return false
		}
		resp, err := service.DecodePlanFrame(frame)
		if err != nil {
			return false
		}
		if resp.Key != key {
			return false
		}
		plan, sim, err := VerifyFill(task, opts, resp)
		if err != nil {
			return false
		}
		n.srv.InstallPlan(key, plan, sim, opts)
		n.journal.put(key, &req)
		return true
	}()
	if ok {
		n.restored.Add(1)
	} else {
		n.rejectedR.Add(1)
	}
	return ok
}

// SnapshotLoop snapshots every interval until ctx ends, then writes one
// final snapshot — the shutdown path's "persist what we drained with".
// Errors are reported through report (nil to ignore): a failed periodic
// snapshot must not kill serving.
func (n *Node) SnapshotLoop(ctx context.Context, path string, interval time.Duration, report func(error)) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := n.Snapshot(path); err != nil && report != nil {
				report(err)
			}
		case <-ctx.Done():
			if _, err := n.Snapshot(path); err != nil && report != nil {
				report(err)
			}
			return
		}
	}
}
