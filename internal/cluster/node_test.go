package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"alpacomm/internal/service"
)

// testNode is one member of an in-process tier over real loopback HTTP.
type testNode struct {
	node *Node
	srv  *service.Server
	ts   *httptest.Server
	url  string
}

// startTier builds an n-member tier: every node gets its own plan server
// (cfg built per node — caches must not be shared) and knows every peer's
// address up front.
func startTier(t testing.TB, ids []string, mkCfg func() service.Config) []*testNode {
	t.Helper()
	n := len(ids)
	nodes := make([]*testNode, n)
	handlers := make([]http.Handler, n)
	for i := range ids {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{ts: ts, url: ts.URL}
	}
	for i, id := range ids {
		peers := map[string]string{}
		for j, pid := range ids {
			if j != i {
				peers[pid] = nodes[j].url
			}
		}
		srv := service.New(mkCfg())
		node, err := New(Config{NodeID: id, SelfAddr: nodes[i].url, Peers: peers}, srv)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].srv, nodes[i].node = srv, node
		handlers[i] = node.Handler()
	}
	return nodes
}

// tierReq is a small, fast, valid plan request; distinct seeds give
// distinct cache keys.
func tierReq(seed int64) *service.PlanRequest {
	return &service.PlanRequest{
		Topology: service.TopologyRef{Name: "p3", Hosts: 2},
		Shape:    []int{128, 128},
		Src:      service.Endpoint{Mesh: "2x2@0", Spec: "S01R"},
		Dst:      service.Endpoint{Mesh: "2x2@4", Spec: "S0R"},
		Options:  service.PlanOptions{Seed: seed},
	}
}

// rawPlan posts the request as JSON and returns the raw response body —
// the bytes clients see, for byte-identity assertions.
func rawPlan(t *testing.T, baseURL string, req *service.PlanRequest) []byte {
	t.Helper()
	body, err := postJSON(baseURL+"/v2/plan", req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postJSON(url string, req *service.PlanRequest) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

func tierMisses(nodes []*testNode) int {
	total := 0
	for _, tn := range nodes {
		total += tn.srv.Cache().Stats().Misses
	}
	return total
}

// TestTierByteIdenticalAcrossNodes: the same request served by every node
// of a 3-node tier — owner, proxier, cache-aside — returns byte-identical
// bodies, identical to a standalone server's.
func TestTierByteIdenticalAcrossNodes(t *testing.T) {
	nodes := startTier(t, []string{"a", "b", "c"}, func() service.Config { return service.Config{} })
	standalone := httptest.NewServer(service.New(service.Config{}))
	defer standalone.Close()
	for seed := int64(1); seed <= 5; seed++ {
		req := tierReq(seed)
		want := rawPlan(t, standalone.URL, req)
		for round := 0; round < 2; round++ { // cold then cached
			for _, tn := range nodes {
				if got := rawPlan(t, tn.url, req); !bytes.Equal(got, want) {
					t.Fatalf("seed %d round %d node %s: body differs\n got %s\nwant %s",
						seed, round, tn.node.NodeID(), got, want)
				}
			}
		}
	}
	// The tier computed each key exactly once no matter how many nodes
	// served it.
	if m := tierMisses(nodes); m != 5 {
		t.Errorf("tier computed %d plans for 5 distinct keys", m)
	}
}

// TestTierCrossNodeSingleflight: a thundering herd on one cold key,
// spread across every node of the tier, costs exactly one planner
// computation tier-wide — the owner's in-process coalescing merges the
// proxied fetches, and each non-owner's local flight merges its own herd.
func TestTierCrossNodeSingleflight(t *testing.T) {
	nodes := startTier(t, []string{"a", "b", "c"}, func() service.Config { return service.Config{} })
	req := tierReq(99)
	const herd = 24
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	bodies := make([][]byte, herd)
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body, err := postJSON(nodes[g%len(nodes)].url+"/v2/plan", req)
			if err != nil {
				errs <- err
				return
			}
			bodies[g] = body
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := tierMisses(nodes); m != 1 {
		t.Errorf("cold key cost %d computations tier-wide, want exactly 1", m)
	}
	// Coalesced responses differ from computed ones only in the coalesced
	// flag; normalize it away and every body must match.
	norm := func(b []byte) string {
		return string(bytes.ReplaceAll(b, []byte(`,"coalesced":true`), nil))
	}
	for g := 1; g < herd; g++ {
		if norm(bodies[g]) != norm(bodies[0]) {
			t.Fatalf("herd member %d got a different plan:\n %s\n vs %s", g, bodies[g], bodies[0])
		}
	}
}

// TestTierVerifiedFill: a non-owner's fetch is verified before it is
// cached (accept counter), and a tampered peer response — a byzantine
// owner claiming a makespan its plan does not achieve — is rejected, with
// the node falling back to a correct local computation.
func TestTierVerifiedFill(t *testing.T) {
	// Honest 2-node tier first: find a seed owned by b, request it via a.
	nodes := startTier(t, []string{"a", "b"}, func() service.Config { return service.Config{} })
	a, b := nodes[0], nodes[1]
	seedOwnedBy := func(owner string) int64 {
		for seed := int64(1); ; seed++ {
			req := tierReq(seed)
			_, _, key, err := a.srv.ParsePlanRequest(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := a.node.Ring().Owner(key); got == owner {
				return seed
			}
		}
	}
	seed := seedOwnedBy("b")
	req := tierReq(seed)
	want := rawPlan(t, b.url, req) // owner computes
	if got := rawPlan(t, a.url, req); !bytes.Equal(got, want) {
		t.Fatalf("proxied fill differs from owner's plan")
	}
	if acc := a.node.Info().VerifiedFillAccepts; acc != 1 {
		t.Errorf("accepts = %d, want 1", acc)
	}
	if m := b.srv.Cache().Stats().Misses; m != 1 {
		t.Errorf("owner misses = %d, want 1", m)
	}
	// a now serves the cache-aside copy without touching b.
	if got := rawPlan(t, a.url, req); !bytes.Equal(got, want) {
		t.Fatalf("cache-aside serve differs")
	}

	// Byzantine tier: node a2's address for its peer points through a
	// proxy that corrupts the claimed makespan in every binary plan frame.
	tamperTarget := ""
	tamper := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := http.NewRequest(r.Method, tamperTarget+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		out.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(out)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK && r.URL.Path == "/v2/plan" && len(body) > 22 {
			body[14] ^= 0xff // one makespan byte of the APB1 plan frame
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
	}))
	defer tamper.Close()

	honest := service.New(service.Config{})
	honestTS := httptest.NewServer(honest)
	defer honestTS.Close()
	honestNode, err := New(Config{NodeID: "b2", Peers: map[string]string{}}, honest)
	if err != nil {
		t.Fatal(err)
	}
	_ = honestNode
	tamperTarget = honestTS.URL

	victim := service.New(service.Config{})
	victimNode, err := New(Config{NodeID: "a2", Peers: map[string]string{"b2": tamper.URL}}, victim)
	if err != nil {
		t.Fatal(err)
	}
	victimTS := httptest.NewServer(victimNode.Handler())
	defer victimTS.Close()

	for s := int64(1); ; s++ {
		r := tierReq(s)
		_, _, key, err := victim.ParsePlanRequest(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := victimNode.Ring().Owner(key); owner == "b2" {
			req = r
			break
		}
	}
	direct := rawPlan(t, honestTS.URL, req)
	got := rawPlan(t, victimTS.URL, req)
	if !bytes.Equal(got, direct) {
		t.Fatalf("fallback plan differs from direct computation:\n %s\n vs %s", got, direct)
	}
	info := victimNode.Info()
	if info.VerifiedFillRejects != 1 {
		t.Errorf("rejects = %d, want 1 (tampered fill must not be trusted)", info.VerifiedFillRejects)
	}
	if info.VerifiedFillAccepts != 0 {
		t.Errorf("accepts = %d, want 0", info.VerifiedFillAccepts)
	}
}

// TestTierMembershipChangeDuringMiss: joins and leaves racing a coalesced
// cold miss never double-compute on any single node and never strand a
// waiter — every request completes with the same correct plan. Run under
// -race in CI.
func TestTierMembershipChangeDuringMiss(t *testing.T) {
	nodes := startTier(t, []string{"a", "b", "c"}, func() service.Config { return service.Config{} })
	// A slow cold key: a large deterministic DFS budget keeps the miss in
	// flight while membership churns.
	req := tierReq(7)
	req.Options.DFSNodes = 2_000_000
	req.Options.Strategy = "broadcast"
	req.Options.Scheduler = "ensemble"

	const herd = 12
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	bodies := make([][]byte, herd)
	start := make(chan struct{})
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			body, err := postJSON(nodes[g%len(nodes)].url+"/v2/plan", req)
			if err != nil {
				errs <- err
				return
			}
			bodies[g] = body
		}(g)
	}
	// Membership churn: a ghost member joins and leaves every node's ring
	// while the miss is in flight. Its address points at a real node so a
	// rerouted fetch still resolves (and is then verified like any fill).
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 50; i++ {
			for _, tn := range nodes {
				body := `{"node":"ghost","addr":"` + nodes[0].url + `"}`
				resp, err := http.Post(tn.url+"/cluster/join", "application/json", bytes.NewReader([]byte(body)))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Post(tn.url+"/cluster/leave", "application/json", bytes.NewReader([]byte(`{"node":"ghost"}`)))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	close(start)
	wg.Wait()
	<-churnDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// No node may have computed the key more than once, and no waiter may
	// have been lost: every body present and identical modulo coalesced.
	for _, tn := range nodes {
		if m := tn.srv.Cache().Stats().Misses; m > 1 {
			t.Errorf("node %s computed the key %d times", tn.node.NodeID(), m)
		}
	}
	if total := tierMisses(nodes); total < 1 {
		t.Errorf("no node computed the key at all")
	}
	norm := func(b []byte) string {
		return string(bytes.ReplaceAll(b, []byte(`,"coalesced":true`), nil))
	}
	for g := 0; g < herd; g++ {
		if bodies[g] == nil {
			t.Fatalf("herd member %d lost (no response)", g)
		}
		if norm(bodies[g]) != norm(bodies[0]) {
			t.Fatalf("herd member %d got a different plan", g)
		}
	}
	// Rings converged back to the static membership.
	for _, tn := range nodes {
		if tn.node.Ring().Has("ghost") {
			t.Errorf("node %s still has the ghost member", tn.node.NodeID())
		}
	}
}

// TestTierStats: /v2/stats exposes the per-node cluster block — identity,
// members, ownership share, routing and verification counters — and a
// standalone server omits it.
func TestTierStats(t *testing.T) {
	nodes := startTier(t, []string{"a", "b"}, func() service.Config { return service.Config{} })
	// One proxied and one locally-owned fill.
	for seed := int64(1); seed <= 6; seed++ {
		rawPlan(t, nodes[0].url, tierReq(seed))
	}
	cl := service.NewClient(nodes[0].url, nil)
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cluster
	if cs == nil {
		t.Fatal("tier node stats have no cluster block")
	}
	if cs.NodeID != "a" {
		t.Errorf("node_id = %q", cs.NodeID)
	}
	if len(cs.Members) != 2 {
		t.Errorf("members = %v", cs.Members)
	}
	if cs.OwnershipShare <= 0.2 || cs.OwnershipShare >= 0.8 {
		t.Errorf("ownership_share = %v, want ~0.5", cs.OwnershipShare)
	}
	if cs.RoutedLocal+cs.RoutedProxied != 6 {
		t.Errorf("routed local %d + proxied %d, want 6 total", cs.RoutedLocal, cs.RoutedProxied)
	}
	if cs.RoutedProxied != cs.VerifiedFillAccepts || cs.VerifiedFillRejects != 0 {
		t.Errorf("proxied %d, accepts %d, rejects %d: every proxied fill should verify",
			cs.RoutedProxied, cs.VerifiedFillAccepts, cs.VerifiedFillRejects)
	}

	// /v2/stats serves the same payload.
	resp, err := http.Get(nodes[0].url + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"cluster"`)) {
		t.Errorf("/v2/stats: %s: %s", resp.Status, body)
	}

	standalone := httptest.NewServer(service.New(service.Config{}))
	defer standalone.Close()
	sst, err := service.NewClient(standalone.URL, nil).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sst.Cluster != nil {
		t.Error("standalone server reports a cluster block")
	}
}

// TestNodeLeaveRoutesAway: after Leave, the departing node's own ring
// routes every key to the survivors (it drains by proxying), and the
// survivors no longer own... route to it.
func TestNodeLeaveRoutesAway(t *testing.T) {
	nodes := startTier(t, []string{"a", "b", "c"}, func() service.Config { return service.Config{} })
	a := nodes[0]
	a.node.Leave(context.Background())
	for seed := int64(1); seed <= 20; seed++ {
		_, _, key, err := a.srv.ParsePlanRequest(context.Background(), tierReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := a.node.Route(key); local {
			t.Fatalf("left node still owns key (owner %q)", owner)
		}
		for _, tn := range nodes[1:] {
			if owner, _ := tn.node.Ring().Owner(key); owner == "a" {
				t.Fatalf("survivor %s still routes to the departed node", tn.node.NodeID())
			}
		}
	}
	// The drained node still serves correctly by proxying.
	req := tierReq(3)
	want := rawPlan(t, nodes[1].url, req)
	if got := rawPlan(t, a.url, req); !bytes.Equal(got, want) {
		t.Fatal("draining node served a different plan")
	}
}
