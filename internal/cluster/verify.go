package cluster

import (
	"fmt"

	"alpacomm/internal/resharding"
	"alpacomm/internal/service"
	"alpacomm/internal/sharding"
)

// VerifyFill turns a peer's wire response into a locally trusted
// (plan, simulation) pair, or rejects it. The receiving node rebuilds the
// plan against its OWN decomposition of the problem — the peer only
// contributes the sender choice and launch order — validates that every
// choice is one the planner could legally have made, re-simulates the plan
// trace-free on the local network model, and compares the result against
// the peer's claimed numbers. Planning and simulation are deterministic
// and the binary wire format round-trips float64 bits exactly (JSON's
// shortest-float encoding round-trips too), so an honest peer matches
// exactly; any mismatch — a corrupt frame, a buggy planner, a byzantine
// peer claiming a better makespan than its plan achieves — is rejected
// and never enters this node's cache.
func VerifyFill(task *sharding.Task, opts resharding.Options, resp *service.PlanResponse) (*resharding.Plan, *resharding.SimResult, error) {
	n := len(task.Units)
	if resp == nil {
		return nil, nil, fmt.Errorf("cluster: fill rejected: no plan in response")
	}
	if len(resp.Senders) != n || len(resp.Order) != n {
		return nil, nil, fmt.Errorf("cluster: fill rejected: plan shape mismatch (%d senders, %d order entries for %d units)",
			len(resp.Senders), len(resp.Order), n)
	}
	// Senders must be legal per unit and the order a permutation — the
	// same invariants a local planner output holds. Checking them first
	// bounds what the simulation below can see, so a malformed fill can
	// never index outside the topology.
	senderOf := make(map[int]int, n)
	for i, dev := range resp.Senders {
		legal := false
		for _, s := range task.Units[i].Senders {
			if s == dev {
				legal = true
				break
			}
		}
		if !legal {
			return nil, nil, fmt.Errorf("cluster: fill rejected: unit %d sender %d is not a legal sender", i, dev)
		}
		senderOf[i] = dev
	}
	seen := make([]bool, n)
	for _, idx := range resp.Order {
		if idx < 0 || idx >= n || seen[idx] {
			return nil, nil, fmt.Errorf("cluster: fill rejected: order is not a permutation of unit indices")
		}
		seen[idx] = true
	}
	plan := &resharding.Plan{
		Task:     task,
		Opts:     opts,
		SenderOf: senderOf,
		Order:    append([]int(nil), resp.Order...),
	}
	sim, err := plan.SimulateNoTrace()
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: fill rejected: re-simulation failed: %v", err)
	}
	if sim.Makespan != resp.MakespanSeconds || sim.NumOps != resp.NumOps || sim.EffectiveGbps != resp.EffectiveGbps {
		return nil, nil, fmt.Errorf("cluster: fill rejected: claimed makespan %g / %d ops / %g Gbps, re-simulated %g / %d / %g",
			resp.MakespanSeconds, resp.NumOps, resp.EffectiveGbps, sim.Makespan, sim.NumOps, sim.EffectiveGbps)
	}
	return plan, sim, nil
}
