// Package cluster turns N plan servers into one logical plan cache: a
// consistent-hash ring routes every canonical resharding.CacheKey to an
// owner node, non-owners fetch cold keys from the owner (keeping verified
// cache-aside copies), the owner's in-process request coalescing gives the
// tier cluster-wide singleflight, and periodic snapshots of the
// pre-serialized plan frames make restarts warm.
//
// The tier trusts no peer: every plan received over the wire — from a
// peer fill or a snapshot file — is re-simulated locally
// (resharding.Plan.SimulateNoTrace, trace-free and allocation-free) and
// rejected if the claimed makespan, op count or throughput do not
// reproduce exactly. Plans are deterministic, so honest peers always pass
// and a buggy or byzantine peer cannot poison the tier; see VerifyFill.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per member: enough to keep
// per-node ownership within a few percent of 1/N for single-digit N
// without making membership changes expensive.
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the member that owns the arc ending there.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. A key is owned by the
// member whose first virtual node follows the key's hash clockwise.
// Membership changes move only the arcs adjacent to the changed member's
// virtual nodes — ≤ 1/N of keys plus a vnode-smoothing epsilon — and
// never reassign a key between two surviving members. Safe for concurrent
// use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, member: map[string]bool{}}
}

// hashKey positions a key (or virtual node label) on the circle: FNV-1a
// 64 with a murmur3-style avalanche finalizer. FNV alone places the
// short, near-identical virtual-node labels ("node3#17") too unevenly for
// ~1/N balance; the finalizer spreads them without losing the property
// that matters — the hash is stable across processes, so every node
// places every key identically and routing cannot loop.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Add inserts a member; it reports false (no change) when already present.
func (r *Ring) Add(node string) bool {
	if node == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[node] {
		return false
	}
	r.member[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return true
}

// Remove deletes a member; it reports false when absent.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[node] {
		return false
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Owner returns the member owning key; ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	h := hashKey(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return r.points[i].node, true
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.member[node]
}

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Share returns the fraction of the hash space node owns — the
// expected fraction of keys routed to it, ~1/N with vnode smoothing; 0
// when node is not a member.
func (r *Ring) Share(node string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.member[node] || len(r.points) == 0 {
		return 0
	}
	if len(r.member) == 1 {
		return 1
	}
	// Each point owns the arc from its predecessor (exclusive) to itself;
	// the first point's arc wraps around from the last.
	var owned uint64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		if p.node == node {
			owned += p.hash - prev // wrap-safe: uint64 arithmetic is mod 2^64
		}
		prev = p.hash
	}
	return float64(owned) / (1 << 63) / 2
}
