package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar. Annotations are ordinary line comments whose
// text starts with "alpacomm:":
//
//	//alpacomm:hotpath
//	    On (or in the doc comment of) a function declaration: the
//	    function's body is subject to hotalloc checking.
//
//	//alpacomm:nondet-ok [reason]
//	    Exempts the annotated line — or, on a function declaration, the
//	    whole function — from the determinism analyzer. Sugar for
//	    "alpacomm:allow determinism".
//
//	//alpacomm:allow NAME[,NAME...] [reason]
//	    The generic form: exempts from each named analyzer.
//
// Placement: an exemption applies to a diagnostic when the annotation
// sits on the diagnostic's line, on the line directly above it, or on the
// enclosing function declaration (its doc comment or the line above the
// func keyword). Line-based matching keeps the rule predictable — the
// annotation travels with the statement it excuses.

const annotationPrefix = "alpacomm:"

// annotationIndex is the per-package view of every //alpacomm: comment.
type annotationIndex struct {
	// lineTags maps file name -> line -> analyzer names allowed there.
	lineTags map[string]map[int][]string
	// funcs records each function declaration's body span and its
	// function-level allowances (from doc comments or the decl line).
	funcs []funcAnnotation
}

type funcAnnotation struct {
	file       string
	start, end token.Pos
	allowed    []string
	hot        bool
}

// parseAnnotation decodes one comment's annotation content: the analyzer
// names it allows and whether it marks a hot path. Unknown alpacomm:
// directives are ignored (they may belong to a future suite version).
func parseAnnotation(text string) (allowed []string, hot bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, annotationPrefix) {
		return nil, false
	}
	body := text[len(annotationPrefix):]
	directive := body
	rest := ""
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		directive, rest = body[:i], strings.TrimSpace(body[i+1:])
	}
	switch directive {
	case "hotpath":
		return nil, true
	case "nondet-ok":
		return []string{"determinism"}, false
	case "allow":
		names := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			names = rest[:i]
		}
		for _, n := range strings.Split(names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				allowed = append(allowed, n)
			}
		}
		return allowed, false
	}
	return nil, false
}

// buildAnnotationIndex scans every comment in the package once.
func buildAnnotationIndex(fset *token.FileSet, files []*ast.File) *annotationIndex {
	idx := &annotationIndex{lineTags: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				allowed, hot := parseAnnotation(c.Text)
				if len(allowed) == 0 && !hot {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.lineTags[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx.lineTags[pos.Filename] = lines
				}
				if hot {
					lines[pos.Line] = append(lines[pos.Line], "hotpath")
				}
				lines[pos.Line] = append(lines[pos.Line], allowed...)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fa := funcAnnotation{
				file:  fset.Position(fd.Pos()).Filename,
				start: fd.Pos(),
				end:   fd.Body.End(),
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					allowed, hot := parseAnnotation(c.Text)
					fa.allowed = append(fa.allowed, allowed...)
					fa.hot = fa.hot || hot
				}
			}
			// An annotation on the line directly above the declaration (or
			// its doc comment) also counts as function-level.
			declLine := fset.Position(fd.Pos()).Line
			if fd.Doc != nil {
				declLine = fset.Position(fd.Doc.Pos()).Line
			}
			if lines := idx.lineTags[fa.file]; lines != nil {
				for _, tag := range lines[declLine-1] {
					if tag == "hotpath" {
						fa.hot = true
					} else {
						fa.allowed = append(fa.allowed, tag)
					}
				}
			}
			idx.funcs = append(idx.funcs, fa)
		}
	}
	return idx
}

// allowed reports whether a diagnostic of analyzer name at pos is
// exempted by an annotation.
func (idx *annotationIndex) allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	if lines := idx.lineTags[p.Filename]; lines != nil {
		for _, l := range []int{p.Line, p.Line - 1} {
			for _, tag := range lines[l] {
				if tag == name {
					return true
				}
			}
		}
	}
	for i := range idx.funcs {
		fa := &idx.funcs[i]
		if fa.file != p.Filename || pos < fa.start || pos > fa.end {
			continue
		}
		for _, tag := range fa.allowed {
			if tag == name {
				return true
			}
		}
	}
	return false
}

// hot reports whether the function declaration carries //alpacomm:hotpath.
func (idx *annotationIndex) hot(fset *token.FileSet, fn *ast.FuncDecl) bool {
	file := fset.Position(fn.Pos()).Filename
	for i := range idx.funcs {
		fa := &idx.funcs[i]
		if fa.file == file && fa.start == fn.Pos() {
			return fa.hot
		}
	}
	return false
}
