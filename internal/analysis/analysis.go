// Package analysis is the repo's static-analysis suite: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic, suggested fixes) plus five
// analyzers that mechanically enforce the invariants the rest of the
// system is built on — byte-identical plans (determinism), the zero-alloc
// serve path (hotalloc), cancellation reaching every blocking layer
// (ctxflow), pooled buffers returning to their pools (pooldiscipline) and
// cache keys covering every identity-bearing field (fingerprint).
//
// The framework is self-contained on purpose: the build environment has
// no module proxy access, so the x/tools analysis driver cannot be
// vendored. Types are shape-compatible with go/analysis where it matters
// (an Analyzer has a Name, a Doc and a Run over a Pass), so migrating to
// the upstream framework later is a mechanical change.
//
// Two source annotations steer the suite (see the README "Static
// analysis" section):
//
//	//alpacomm:hotpath            opt a function into hotalloc checking
//	//alpacomm:nondet-ok [why]    exempt a statement/function from determinism
//	//alpacomm:allow NAME [why]   exempt from the named analyzer (generic form)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //alpacomm:allow
	// annotations.
	Name string
	// Doc is the one-paragraph description shown by `alpalint -list`.
	Doc string
	// Run reports diagnostics for one package through pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// annotations indexes //alpacomm: comments; built once per package by
	// the driver and shared by every analyzer.
	annotations *annotationIndex

	report func(Diagnostic)
}

// Diagnostic is one finding, with optional mechanical fixes.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// SuggestedFix is one mechanical rewrite that resolves a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
	// NeedImport names a package the rewritten code requires (e.g. "sort");
	// the fixer adds the import if the file lacks it.
	NeedImport string
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Report emits a diagnostic unless an //alpacomm: annotation at or around
// its position exempts this analyzer. Suppression is centralized here so
// every analyzer honors annotations identically.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if p.annotations != nil && p.annotations.allowed(p.Fset, d.Pos, p.Analyzer.Name) {
		return
	}
	p.report(d)
}

// Reportf is Report with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, End: pos, Message: fmt.Sprintf(format, args...)})
}

// HotFunc reports whether fn is annotated //alpacomm:hotpath.
func (p *Pass) HotFunc(fn *ast.FuncDecl) bool {
	return p.annotations != nil && p.annotations.hot(p.Fset, fn)
}

// RunAnalyzers runs every analyzer over the package and returns the
// surviving (non-suppressed) diagnostics in position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	idx := buildAnnotationIndex(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			TypesInfo:   pkg.Info,
			annotations: idx,
			report:      func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, HotAlloc, CtxFlow, PoolDiscipline, Fingerprint}
}

// ByName resolves an analyzer by name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
