package analysis

import "testing"

func TestDeterminismFixture(t *testing.T)    { runFixture(t, "determinism", "determinism") }
func TestHotAllocFixture(t *testing.T)       { runFixture(t, "hotalloc", "hotalloc") }
func TestCtxFlowFixture(t *testing.T)        { runFixture(t, "ctxflow", "ctxflow") }
func TestPoolDisciplineFixture(t *testing.T) { runFixture(t, "pooldiscipline", "pooldiscipline") }
func TestFingerprintFixture(t *testing.T)    { runFixture(t, "fingerprint", "fingerprint") }

// TestLoadRepo proves the export-data loader type-checks the whole module
// offline — the property everything above depends on.
func TestLoadRepo(t *testing.T) {
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected the full package set, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("%s: missing type information", pkg.ImportPath)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown analyzer should be nil")
	}
}

func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		in      string
		allowed []string
		hot     bool
	}{
		{"//alpacomm:hotpath", nil, true},
		{"//alpacomm:nondet-ok budget mode", []string{"determinism"}, false},
		{"//alpacomm:allow hotalloc cold branch", []string{"hotalloc"}, false},
		{"//alpacomm:allow hotalloc,ctxflow shim", []string{"hotalloc", "ctxflow"}, false},
		{"// ordinary comment", nil, false},
		{"//alpacomm:future-directive x", nil, false},
	}
	for _, c := range cases {
		allowed, hot := parseAnnotation(c.in)
		if hot != c.hot || len(allowed) != len(c.allowed) {
			t.Errorf("parseAnnotation(%q) = %v, %v; want %v, %v", c.in, allowed, hot, c.allowed, c.hot)
			continue
		}
		for i := range allowed {
			if allowed[i] != c.allowed[i] {
				t.Errorf("parseAnnotation(%q) allowed[%d] = %q, want %q", c.in, i, allowed[i], c.allowed[i])
			}
		}
	}
}
