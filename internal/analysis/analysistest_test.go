package analysis

import (
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runFixture is the repo's analysistest: it loads the fixture package
// under testdata/src/<name>, runs the named analyzer, and matches the
// diagnostics against `// want "regex"` comments line by line — every
// diagnostic must be expected, every expectation must fire. Lines carrying
// //alpacomm: annotations and no want comment double as suppression
// tests: if suppression broke, the stray diagnostic would fail the run.
func runFixture(t *testing.T, analyzerName, fixture string) {
	t.Helper()
	a := ByName(analyzerName)
	if a == nil {
		t.Fatalf("unknown analyzer %q", analyzerName)
	}
	pkg, err := LoadFixtureDir("../..", "testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", analyzerName, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("expected diagnostic matching %q at %s:%d, got none",
				w.re, w.file, w.line)
		}
	}
}

type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, pkg *Package) []wantExpectation {
	t.Helper()
	var wants []wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Fatalf("malformed want comment (use // want `regex`): %s", c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, wantExpectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}
