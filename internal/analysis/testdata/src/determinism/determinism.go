// Package determinism exercises the determinism analyzer: order-sensitive
// map iteration, wall-clock reads and global math/rand use are flagged;
// the whitelisted order-insensitive shapes and annotated exemptions are
// not.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func orderSensitive(m map[string]int) {
	for k, v := range m { // want `iteration over map is ordered randomly`
		fmt.Println(k, v)
	}
}

// The sanctioned idiom: collect the keys, sort, iterate — not flagged.
func sortedIteration(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Integer accumulation commutes — not flagged.
func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Float accumulation does not commute under IEEE rounding — flagged.
func floatAccumulate(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `iteration over map is ordered randomly`
		total += v
	}
	return total
}

// Map copy and delete commute — not flagged.
func copyAndPrune(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
	for k := range dst {
		delete(dst, k)
	}
}

// Max folding commutes — not flagged.
func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Per-bucket in-place sort erases the leaked order — not flagged.
func normalizeBuckets(m map[int][]int) {
	for k := range m {
		sort.Ints(m[k])
	}
}

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read time.Now`
	return time.Since(start) // want `wall-clock read time.Since`
}

// The annotation exempts the whole function: deadline mode is an explicit
// caller opt-in here, mirroring the DFSBudget escape hatch.
//
//alpacomm:nondet-ok caller explicitly requested wall-clock budget mode
func allowedWallClock() time.Time {
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

// A *rand.Rand over a caller-derived seed is the sanctioned pattern — not
// flagged.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Line-level exemption: the annotation on the statement's line excuses
// only that statement.
func lineExempt(m map[string]int) {
	for k, v := range m { //alpacomm:nondet-ok debug dump, order immaterial
		fmt.Println(k, v)
	}
	for k, v := range m { // want `iteration over map is ordered randomly`
		fmt.Println(k, v)
	}
}
