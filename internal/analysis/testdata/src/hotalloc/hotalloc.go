// Package hotalloc exercises the hotalloc analyzer: allocation patterns
// inside //alpacomm:hotpath functions are flagged; the same code in an
// unannotated function, hinted/strconv alternatives and annotated cold
// branches are not.
package hotalloc

import (
	"fmt"
	"strconv"
)

//alpacomm:hotpath
func hotSprintf(id int) string {
	return fmt.Sprintf("plan-%d", id) // want `fmt.Sprintf in hot path`
}

// Identical body, no hotpath annotation — not flagged.
func coldSprintf(id int) string {
	return fmt.Sprintf("plan-%d", id)
}

// The strconv replacement the analyzer points at — not flagged.
//
//alpacomm:hotpath
func hotStrconv(buf []byte, id int) []byte {
	buf = append(buf, "plan-"...)
	return strconv.AppendInt(buf, int64(id), 10)
}

//alpacomm:hotpath
func hotConcat(parts []string) string {
	out := ""
	for _, p := range parts {
		out = out + p // want `string concatenation in a loop`
	}
	return out
}

//alpacomm:hotpath
func hotConcatAssign(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p // want `string \+= in a loop`
	}
	return out
}

//alpacomm:hotpath
func hotAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `grows an unhinted slice`
	}
	return out
}

// Capacity-hinted growth — not flagged.
//
//alpacomm:hotpath
func hintedAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func consume(v interface{}) { _ = v }

//alpacomm:hotpath
func hotBoxingCall(n int) {
	consume(n) // want `boxes a concrete value into an interface parameter`
}

//alpacomm:hotpath
func hotBoxingAssign(n int) interface{} {
	var sink interface{}
	sink = n // want `boxes a concrete value`
	return sink
}

// Passing an interface through is not boxing — not flagged.
//
//alpacomm:hotpath
func hotPassThrough(v interface{}) {
	consume(v)
}

//alpacomm:hotpath
func hotClosure(xs []int) func() int {
	total := 0
	f := func() int { // want `closure captures`
		for _, x := range xs {
			total += x
		}
		return total
	}
	return f
}

// Immediately-invoked literals keep their captures on the stack — not
// flagged.
//
//alpacomm:hotpath
func hotIIFE(xs []int) int {
	total := 0
	func() {
		for _, x := range xs {
			total += x
		}
	}()
	return total
}

// Line-level exemption for a genuinely cold branch inside a hot function.
//
//alpacomm:hotpath
func hotWithColdBranch(id int, fail bool) string {
	if fail {
		return fmt.Sprintf("failed-%d", id) //alpacomm:allow hotalloc cold error branch
	}
	return "ok"
}
