// Package fingerprint exercises the fingerprint analyzer: exported
// fields of a fingerprinted struct that the fingerprint function never
// reads are flagged; transitive reads through helpers, whole-struct
// formatting, unexported fields and annotated identity-free fields are
// not.
package fingerprint

import "fmt"

type Spec struct {
	Hosts     int
	Bandwidth float64
	Label     string // want `exported field Spec.Label is not reachable`
	debug     string
}

func (s *Spec) Fingerprint() string {
	return fmt.Sprintf("%d|%g", s.Hosts, s.Bandwidth)
}

// Every exported field folded in — not flagged.
type Full struct {
	A int
	B string
}

func (f Full) Fingerprint() string {
	return fmt.Sprintf("%d|%s", f.A, f.B)
}

// Fields read through a same-package helper still count — not flagged.
type Nested struct {
	Core  int
	Extra int
}

func (n *Nested) Fingerprint() string { return n.core() }

func (n *Nested) core() string { return fmt.Sprintf("%d|%d", n.Core, n.Extra) }

// Passing the whole struct to a formatter reads every field — not
// flagged.
type Dumped struct {
	X int
	Y int
}

func (d Dumped) Fingerprint() string { return fmt.Sprintf("%+v", d) }

// Package-level CacheKey over a same-package options struct.
type Options struct {
	Strategy int
	Seed     int64
	Note     string // want `exported field Options.Note is not reachable`
}

func CacheKey(opts Options) string {
	return fmt.Sprintf("%d|%d", opts.Strategy, opts.Seed)
}

// A deliberately identity-free field carries the annotation at its
// declaration.
type WithMeta struct {
	ID      int
	Metrics string //alpacomm:allow fingerprint observability only, no identity
}

func (w WithMeta) Fingerprint() string { return fmt.Sprintf("%d", w.ID) }
