// Package ctxflow exercises the ctxflow analyzer: ctx-second signatures,
// severed contexts and blocking exported functions without a ctx are
// flagged; http handlers, unexported helpers, ctx-threading functions and
// annotated shims are not.
package ctxflow

import (
	"context"
	"net/http"
	"sync"
	"time"
)

func work(ctx context.Context) error { return ctx.Err() }

func CtxSecond(name string, ctx context.Context) error { // want `context.Context should be the first parameter`
	return work(ctx)
}

// Correct ordering — not flagged.
func CtxFirst(ctx context.Context, name string) error {
	return work(ctx)
}

func Severed(ctx context.Context) error {
	return work(context.Background()) // want `severs the caller's cancellation`
}

func SeveredTODO(ctx context.Context) error {
	return work(context.TODO()) // want `severs the caller's cancellation`
}

// A goroutine that must outlive the request may build its own context —
// function literals are not judged.
func DetachedWorker(ctx context.Context, ch chan error) {
	go func() {
		ch <- work(context.Background())
	}()
}

func ReceivesNoCtx(ch chan int) int {
	return <-ch // want `channel receive`
}

func SendsNoCtx(ch chan int) {
	ch <- 1 // want `channel send`
}

func SleepsNoCtx() {
	time.Sleep(time.Millisecond) // want `time.Sleep`
}

func WaitsNoCtx(wg *sync.WaitGroup) {
	wg.Wait() // want `sync.WaitGroup.Wait`
}

func SelectsNoCtx(a, b chan int) int {
	select { // want `select without default`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// A select with a default polls instead of blocking — not flagged.
func Polls(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// With a ctx parameter the blocking rule does not apply — not flagged.
func BlocksWithCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Unexported helpers are the caller's responsibility — not flagged.
func blocksUnexported(ch chan int) int {
	return <-ch
}

type handler struct{ done chan struct{} }

// *http.Request carries the context — not flagged.
func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	<-h.done
}

// Annotated compatibility shim — not flagged.
//
//alpacomm:allow ctxflow v0-compat wrapper; removal tracked in the roadmap
func LegacyWait(ch chan int) int {
	return <-ch
}
