// Package pooldiscipline exercises the pooldiscipline analyzer: pooled
// values leaked on a return path, at function end or into retained
// structures are flagged; balanced use, deferred release, ownership
// transfer, classified helpers and annotated handoffs are not.
package pooldiscipline

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

var bufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 64); return &b }}

type response struct{ buf *[]byte }

func use(b *[]byte) {}

// getBuf returns the acquired value: an acquire helper, classified and
// not checked from the inside.
func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// putBuf releases its parameter: a release helper. The early return for
// oversized buffers is the intentional drop the classifier exists to
// excuse.
func putBuf(b *[]byte) {
	if cap(*b) > 1<<16 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Deferred release covers every exit — not flagged.
func deferredRelease() {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	use(b)
}

// Release present on every path — not flagged.
func branchBalanced(fail bool) error {
	b := getBuf()
	if fail {
		putBuf(b)
		return errFail
	}
	use(b)
	putBuf(b)
	return nil
}

func leakOnErrorPath(fail bool) error {
	b := getBuf()
	if fail {
		return errFail // want `return without releasing pooled b`
	}
	putBuf(b)
	return nil
}

func leakAtEnd() {
	b := getBuf() // want `pooled b from getBuf is not released`
	use(b)
}

// Returning the pooled value transfers ownership — not flagged (and
// classifies this function as an acquire helper in turn).
func ownershipTransfer() *[]byte {
	b := getBuf()
	return b
}

func escapesIntoField(r *response) {
	b := getBuf()
	r.buf = b // want `stored into field buf`
	putBuf(b)
}

// Annotated handoff: the response writer releases the buffer later.
//
//alpacomm:allow pooldiscipline released by the response writer after flush
func annotatedHandoff(r *response) {
	b := getBuf()
	r.buf = b
}
