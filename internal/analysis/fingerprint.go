package analysis

import (
	"go/ast"
	"go/types"
)

// Fingerprint checks cache-key completeness. Plans are cached under
// resharding.CacheKey, which folds in mesh fingerprints; a struct field
// that influences planning but is missing from the fingerprint makes two
// different configurations collide on one cache entry — the cache serves
// a stale plan and every layer above it (pre-serialization, the cluster
// tier, warm restart) faithfully replicates the wrong answer.
//
// For every fingerprint function — a method named Fingerprint or
// fingerprint, or a package function named CacheKey — the analyzer takes
// the receiver and any same-package struct parameters as roots, then
// walks the function and (transitively) every same-package function it
// calls, recording which fields of the root structs are read. Exported
// fields never reached are reported at their declaration. Cross-package
// parameters are not roots: each package owns the completeness of its own
// fingerprints, and the analyzer cannot see into another package's
// accessor bodies. A field that deliberately does not affect identity
// (metrics, debug labels) carries //alpacomm:allow fingerprint at its
// declaration.
var Fingerprint = &Analyzer{
	Name: "fingerprint",
	Doc:  "requires every exported field of fingerprinted structs to be reachable from the fingerprint function",
	Run:  runFingerprint,
}

const fingerprintCallDepth = 6

func runFingerprint(pass *Pass) error {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isFingerprintFunc(fn) {
				continue
			}
			checkFingerprintFunc(pass, decls, fn)
		}
	}
	return nil
}

func isFingerprintFunc(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if fn.Recv != nil {
		return name == "Fingerprint" || name == "fingerprint"
	}
	return name == "CacheKey"
}

func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					m[obj] = fn
				}
			}
		}
	}
	return m
}

// fingerprintRoot is one struct type whose fields the fingerprint must
// cover.
type fingerprintRoot struct {
	named  *types.Named
	strct  *types.Struct
	origin string // "receiver" or the parameter name, for the message
}

func checkFingerprintFunc(pass *Pass, decls map[*types.Func]*ast.FuncDecl, fn *ast.FuncDecl) {
	roots := collectRoots(pass, fn)
	if len(roots) == 0 {
		return
	}
	reached := map[*types.Var]bool{}
	coverAll := map[*types.Named]bool{}
	visited := map[*ast.FuncDecl]bool{}
	walkFingerprint(pass, decls, fn, roots, reached, coverAll, visited, 0)

	for _, root := range roots {
		if coverAll[root.named] {
			continue
		}
		for i := 0; i < root.strct.NumFields(); i++ {
			f := root.strct.Field(i)
			if !f.Exported() || reached[f] {
				continue
			}
			pass.Reportf(f.Pos(),
				"exported field %s.%s is not reachable from %s; a change to it "+
					"would not change the cache key (annotate //alpacomm:allow fingerprint "+
					"if it deliberately carries no identity)",
				root.named.Obj().Name(), f.Name(), fn.Name.Name)
		}
	}
}

// collectRoots gathers the receiver and same-package struct parameters.
func collectRoots(pass *Pass, fn *ast.FuncDecl) []fingerprintRoot {
	var roots []fingerprintRoot
	add := func(t types.Type, origin string) {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		if named.Obj().Pkg() != pass.Pkg {
			return // cross-package: its package owns its fingerprint
		}
		strct, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		roots = append(roots, fingerprintRoot{named: named, strct: strct, origin: origin})
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		add(pass.TypesInfo.TypeOf(fn.Recv.List[0].Type), "receiver")
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		name := ""
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		add(t, name)
	}
	return roots
}

// walkFingerprint records root-struct field reads in fn's body and
// recurses into same-package callees. Passing a whole root value to a
// function outside the package (fmt.Fprintf(w, "%v", opts)) marks every
// field of that root as covered — the formatter reads them all.
func walkFingerprint(pass *Pass, decls map[*types.Func]*ast.FuncDecl, fn *ast.FuncDecl,
	roots []fingerprintRoot, reached map[*types.Var]bool, coverAll map[*types.Named]bool,
	visited map[*ast.FuncDecl]bool, depth int) {

	if visited[fn] || depth > fingerprintCallDepth {
		return
	}
	visited[fn] = true

	rootNamed := func(t types.Type) *types.Named {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for _, r := range roots {
			if r.named.Obj() == named.Obj() {
				return r.named
			}
		}
		return nil
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			selInfo, ok := pass.TypesInfo.Selections[n]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			if rootNamed(selInfo.Recv()) != nil {
				if f, ok := selInfo.Obj().(*types.Var); ok {
					reached[f] = true
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass, n)
			if callee != nil {
				if decl, ok := decls[callee]; ok {
					walkFingerprint(pass, decls, decl, roots, reached, coverAll, visited, depth+1)
					return true
				}
			}
			// External call: a root passed whole is fully read (formatting,
			// hashing, encoding all traverse every field).
			for _, arg := range n.Args {
				if t := pass.TypesInfo.TypeOf(arg); t != nil {
					if named := rootNamed(t); named != nil {
						coverAll[named] = true
					}
				}
			}
		}
		return true
	})
}
