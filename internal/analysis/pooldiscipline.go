package analysis

import (
	"go/ast"
	"go/types"
)

// PoolDiscipline checks that every value taken from a sync.Pool goes
// back. A pooled buffer that misses its Put on one return path degrades
// the pool silently — the serve path stays correct but re-allocates,
// which is exactly the regression the zero-alloc benchmarks gate against
// and the hardest one to spot in review.
//
// The analyzer first classifies the package's own helpers: a function
// whose body reaches (*sync.Pool).Get and returns the value is an
// acquire helper (getBuf, AcquirePlanBuilder); one that reaches
// (*sync.Pool).Put is a release helper (putBuf, (*PlanBuilder).Release),
// transitively. Inside every other function, each acquire —
// `x := pool.Get().(*T)` or `x := getBuf()` — must be matched by a
// release of x (deferred, or present on every path before each return
// and before falling off the end). Returning the pooled value itself is
// ownership transfer and is fine. Storing the pooled value into a field
// or element is flagged: a retained reference outlives the Put.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "matches sync.Pool acquires with releases on every path and flags escaping pooled values",
	Run:  runPoolDiscipline,
}

// poolFuncs is the per-package classification of acquire/release helpers.
type poolFuncs struct {
	acquirers map[*types.Func]bool
	releasers map[*types.Func]bool
}

func runPoolDiscipline(pass *Pass) error {
	pf := classifyPoolFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj != nil && (pf.acquirers[obj] || pf.releasers[obj]) {
				// Acquire helpers hand ownership to their caller; release
				// helpers intentionally decide whether to Put (oversized
				// buffers are dropped). Neither is checked from the inside.
				continue
			}
			checkPoolUse(pass, pf, fn)
		}
	}
	return nil
}

// classifyPoolFuncs finds the package's acquire and release helpers,
// iterating to a fixpoint so wrappers of wrappers classify too.
func classifyPoolFuncs(pass *Pass) *poolFuncs {
	pf := &poolFuncs{
		acquirers: map[*types.Func]bool{},
		releasers: map[*types.Func]bool{},
	}
	type declInfo struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var decls []declInfo
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls = append(decls, declInfo{obj, fn})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			if !pf.acquirers[di.obj] && returnsAcquired(pass, pf, di.decl) {
				pf.acquirers[di.obj] = true
				changed = true
			}
			if !pf.releasers[di.obj] && releasesParam(pass, pf, di.decl) {
				pf.releasers[di.obj] = true
				changed = true
			}
		}
	}
	return pf
}

// returnsAcquired reports whether the function hands a pool-acquired
// value to its caller: it returns a pool.Get / acquirer call directly, or
// a local variable that was assigned from one. Merely containing a Get
// does not make a function an acquire helper — a function that gets,
// uses and puts internally is an ordinary pool user and stays checked.
func returnsAcquired(pass *Pass, pf *poolFuncs, fn *ast.FuncDecl) bool {
	acquired := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok {
			if obj, ok := acquireTarget(pass, pf, stmt); ok {
				acquired[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			r := res
			if ta, ok := r.(*ast.TypeAssertExpr); ok {
				r = ta.X
			}
			if call, ok := r.(*ast.CallExpr); ok {
				if isPoolMethodCall(pass, call, "Get") || isAcquirerCall(pass, pf, call) {
					found = true
				}
			}
			if id, ok := res.(*ast.Ident); ok && acquired[pass.TypesInfo.ObjectOf(id)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// releasesParam reports whether the function releases a value it received
// from its caller — a parameter or the receiver — which makes it a
// release helper (putBuf, (*PlanBuilder).Release). Releasing a local is
// ordinary balanced use, not helping.
func releasesParam(pass *Pass, fn0 *poolFuncs, fn *ast.FuncDecl) bool {
	params := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
				params[obj] = true
			}
		}
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			addField(f)
		}
	}
	for _, f := range fn.Type.Params.List {
		addField(f)
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if !isPoolMethodCall(pass, call, "Put") && !isReleaserCall(pass, fn0, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && params[pass.TypesInfo.ObjectOf(id)] {
				found = true
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && params[pass.TypesInfo.ObjectOf(id)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isPoolMethodCall reports whether call is (*sync.Pool).Get or .Put.
func isPoolMethodCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	return recv != nil && recvTypeName(recv) == "Pool"
}

func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func isAcquirerCall(pass *Pass, pf *poolFuncs, call *ast.CallExpr) bool {
	f := calleeFunc(pass, call)
	return f != nil && pf.acquirers[f]
}

func isReleaserCall(pass *Pass, pf *poolFuncs, call *ast.CallExpr) bool {
	f := calleeFunc(pass, call)
	return f != nil && pf.releasers[f]
}

// poolCheck tracks one acquired variable through the function body.
type poolCheck struct {
	pass *Pass
	pf   *poolFuncs
	obj  types.Object // the pooled variable
	fn   *ast.FuncDecl
}

func checkPoolUse(pass *Pass, pf *poolFuncs, fn *ast.FuncDecl) {
	// Find acquire statements at any block depth; each starts its own
	// tracked lifetime within its enclosing statement list.
	var walkList func(stmts []ast.Stmt)
	walkList = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if obj, ok := acquireTarget(pass, pf, stmt); ok {
				c := &poolCheck{pass: pass, pf: pf, obj: obj, fn: fn}
				c.checkEscapes(stmts[i+1:])
				released, terminated := c.walk(stmts[i+1:], false)
				if !released && !terminated {
					pass.Reportf(stmt.Pos(),
						"pooled %s from %s is not released before the end of %s",
						obj.Name(), acquireName(pass, pf, stmt), fn.Name.Name)
				}
			}
			// Recurse into nested blocks for acquires scoped inside them.
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				walkList(s.List)
			case *ast.IfStmt:
				walkList(s.Body.List)
				if eb, ok := s.Else.(*ast.BlockStmt); ok {
					walkList(eb.List)
				}
			case *ast.ForStmt:
				walkList(s.Body.List)
			case *ast.RangeStmt:
				walkList(s.Body.List)
			case *ast.SwitchStmt:
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						walkList(c.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						walkList(c.Body)
					}
				}
			case *ast.SelectStmt:
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CommClause); ok {
						walkList(c.Body)
					}
				}
			}
		}
	}
	walkList(fn.Body.List)
}

// acquireTarget recognizes `x := <acquire>` and returns x's object.
func acquireTarget(pass *Pass, pf *poolFuncs, stmt ast.Stmt) (types.Object, bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	rhs := as.Rhs[0]
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X // pool.Get().(*T)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if !isPoolMethodCall(pass, call, "Get") && !isAcquirerCall(pass, pf, call) {
		return nil, false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj, obj != nil
}

func acquireName(pass *Pass, pf *poolFuncs, stmt ast.Stmt) string {
	as := stmt.(*ast.AssignStmt)
	rhs := as.Rhs[0]
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		if f := calleeFunc(pass, call); f != nil {
			return f.Name()
		}
	}
	return "pool"
}

// walk checks the statement list with the pooled var in state released;
// it reports returns reached unreleased and returns the end-of-list state
// plus whether every path through the list terminated.
func (c *poolCheck) walk(stmts []ast.Stmt, released bool) (endReleased, terminated bool) {
	for _, stmt := range stmts {
		if released {
			return true, false
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if c.releases(s.X) {
				released = true
			}
		case *ast.DeferStmt:
			// A deferred release covers every subsequent exit.
			if c.releasesCall(s.Call) {
				released = true
			}
		case *ast.ReturnStmt:
			if !released && !c.returnsValue(s) {
				c.pass.Reportf(s.Pos(),
					"return without releasing pooled %s acquired in %s",
					c.obj.Name(), c.fn.Name.Name)
			}
			return released, true
		case *ast.BlockStmt:
			rel, term := c.walk(s.List, released)
			if term {
				return rel, true
			}
			released = rel
		case *ast.IfStmt:
			bodyRel, bodyTerm := c.walk(s.Body.List, released)
			if s.Else != nil {
				var elseRel, elseTerm bool
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseRel, elseTerm = c.walk(e.List, released)
				case *ast.IfStmt:
					elseRel, elseTerm = c.walk([]ast.Stmt{e}, released)
				}
				if bodyTerm && elseTerm {
					return released, true
				}
				// Fallthrough state merges over the branches that reach it.
				rel := true
				if !bodyTerm {
					rel = rel && bodyRel
				}
				if !elseTerm {
					rel = rel && elseRel
				}
				released = rel
			} else {
				// Condition-false path keeps the current state; only if the
				// body terminates does fallthrough stay at `released`.
				if !bodyTerm {
					released = released && bodyRel
				}
			}
		case *ast.ForStmt:
			c.walk(s.Body.List, released) // zero iterations possible: state unchanged
		case *ast.RangeStmt:
			c.walk(s.Body.List, released)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			c.walkClauses(stmt, released)
		case *ast.LabeledStmt:
			rel, term := c.walk([]ast.Stmt{s.Stmt}, released)
			if term {
				return rel, true
			}
			released = rel
		}
	}
	return released, false
}

// walkClauses conservatively walks switch/select bodies: returns inside
// clauses are checked, but the post-switch state stays whatever it was —
// a release inside one clause does not prove the others released.
func (c *poolCheck) walkClauses(stmt ast.Stmt, released bool) {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	for _, cl := range body.List {
		switch cc := cl.(type) {
		case *ast.CaseClause:
			c.walk(cc.Body, released)
		case *ast.CommClause:
			c.walk(cc.Body, released)
		}
	}
}

// releases reports whether expr is a call that releases the tracked var.
func (c *poolCheck) releases(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	return ok && c.releasesCall(call)
}

func (c *poolCheck) releasesCall(call *ast.CallExpr) bool {
	// pool.Put(x), putBuf(x): the var among the arguments.
	if isPoolMethodCall(c.pass, call, "Put") || isReleaserCall(c.pass, c.pf, call) {
		for _, arg := range call.Args {
			if c.isObj(arg) {
				return true
			}
		}
		// x.Release(): the var as the receiver.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.isObj(sel.X) {
			return true
		}
	}
	return false
}

// returnsValue reports whether the return hands the pooled value itself
// (or a method call on it) to the caller — ownership transfer.
func (c *poolCheck) returnsValue(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if c.isObj(res) {
			return true
		}
	}
	return false
}

func (c *poolCheck) isObj(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && c.pass.TypesInfo.ObjectOf(id) == c.obj
}

// checkEscapes flags the pooled value being stored somewhere that
// outlives the function: a struct field, a map/slice element, or a
// package-level variable.
func (c *poolCheck) checkEscapes(stmts []ast.Stmt) {
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if !c.isObj(rhs) || i >= len(as.Lhs) {
					continue
				}
				switch lhs := as.Lhs[i].(type) {
				case *ast.SelectorExpr:
					c.pass.Reportf(as.Pos(),
						"pooled %s stored into field %s outlives its release",
						c.obj.Name(), lhs.Sel.Name)
				case *ast.IndexExpr:
					c.pass.Reportf(as.Pos(),
						"pooled %s stored into a container element outlives its release",
						c.obj.Name())
				case *ast.Ident:
					if v, ok := c.pass.TypesInfo.ObjectOf(lhs).(*types.Var); ok && v.Parent() == c.pass.Pkg.Scope() {
						c.pass.Reportf(as.Pos(),
							"pooled %s stored into package-level %s outlives its release",
							c.obj.Name(), lhs.Name)
					}
				}
			}
			return true
		})
	}
}
