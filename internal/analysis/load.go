package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream. -export populates the build cache with export data for
// every listed package and reports the file path, which is what lets the
// type checker resolve imports without network access or a vendored
// x/tools: each analyzed package is checked from source against the
// compiler's own export data for everything it imports.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup table: import path -> export
// data file.
func exportLookup(pkgs []*listedPkg) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadPackages loads and type-checks the packages matching patterns
// (relative to dir), returning them in deterministic import-path order.
// Only non-test Go files are analyzed: the enforced invariants concern
// production code, and test files routinely use patterns (wall clocks,
// unsorted iteration over assertion maps) the suite exists to keep out of
// the planners.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := exportLookup(listed)
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)

	var targets []*listedPkg
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*Package
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg, info, err := typeCheck(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return out, nil
}

// typeCheck runs go/types over one package's parsed files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := newInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// LoadFixtureDir loads a single analysistest fixture directory as one
// package. Fixtures live under testdata (invisible to the go tool), so
// the loader parses the directory itself and resolves their stdlib
// imports through one `go list -export` call. moduleDir anchors the go
// invocation; fixtures must import only the standard library.
func LoadFixtureDir(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	var imports []string
	for p := range importSet {
		if p != "unsafe" {
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		exports = exportLookup(listed)
	}
	imp := newImporter(fset, exports)
	path := "fixture/" + filepath.Base(fixtureDir)
	pkg, info, err := typeCheck(fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path,
		Name:       files[0].Name.Name,
		Dir:        fixtureDir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}
