package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the zero-alloc discipline inside functions annotated
// //alpacomm:hotpath — the cache-hit serve path, Simulate*, the DFS inner
// loops and the wire encode/decode routines whose allocation counts are
// gated by cmd/benchgate. Inside a hot function it flags:
//
//   - fmt formatting calls (Sprintf and friends; Errorf is exempt — error
//     construction marks a cold exit);
//   - string concatenation inside loops (each + allocates a new string);
//   - append growth into slices declared without a capacity hint;
//   - interface boxing of known-concrete values (conversions, arguments
//     and assignments into interface-typed slots allocate to box);
//   - closures that capture enclosing locals without being invoked on the
//     spot (the closure and its captures escape to the heap).
//
// Cold branches inside a hot function (error exits, fallback paths) are
// exempted line-by-line with //alpacomm:allow hotalloc.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation patterns inside //alpacomm:hotpath functions",
	Run:  runHotAlloc,
}

// fmtAllocFuncs are the fmt package functions that run the reflection
// formatter; any of them in a hot path is an allocation and a dispatch.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.HotFunc(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	var loopDepth int
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			// Walk children explicitly so the depth unwinds correctly.
			if fs, ok := n.(*ast.ForStmt); ok {
				if fs.Init != nil {
					ast.Inspect(fs.Init, inspect)
				}
				if fs.Cond != nil {
					ast.Inspect(fs.Cond, inspect)
				}
				if fs.Post != nil {
					ast.Inspect(fs.Post, inspect)
				}
				ast.Inspect(fs.Body, inspect)
			} else {
				rs := n.(*ast.RangeStmt)
				ast.Inspect(rs.X, inspect)
				ast.Inspect(rs.Body, inspect)
			}
			loopDepth--
			return false
		case *ast.BinaryExpr:
			if loopDepth > 0 && n.Op == token.ADD && isStringExpr(pass, n.X) {
				pass.Reportf(n.OpPos,
					"string concatenation in a loop inside hot path %s allocates per iteration; "+
						"append into a reused []byte or precompute", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if loopDepth > 0 && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.TokPos,
					"string += in a loop inside hot path %s allocates per iteration", fn.Name.Name)
			}
			checkBoxingAssign(pass, fn, n)
		case *ast.CallExpr:
			checkFmtCall(pass, fn, n)
			if loopDepth > 0 {
				checkUnhintedAppend(pass, fn, n)
			}
			checkBoxingCall(pass, fn, n)
		case *ast.FuncLit:
			checkEscapingClosure(pass, fn, n)
		}
		return true
	}
	ast.Inspect(fn.Body, inspect)
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkFmtCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	if fmtAllocFuncs[obj.Name()] {
		pass.Reportf(call.Pos(),
			"fmt.%s in hot path %s runs the reflection formatter and allocates; "+
				"use strconv appends or pre-rendered bytes", obj.Name(), fn.Name.Name)
	}
}

// checkUnhintedAppend flags `x = append(x, ...)` in a loop when x is
// declared in the same function without a capacity hint: every growth
// step reallocates and copies. The fix hints the capacity from the ranged
// operand when the loop is a range.
func checkUnhintedAppend(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(dst)
	if obj == nil {
		return
	}
	decl := findLocalDecl(fn, obj)
	if decl == nil || hasCapacityHint(pass, decl) {
		return
	}
	pass.Reportf(call.Pos(),
		"append into %s grows an unhinted slice in a loop inside hot path %s; "+
			"declare it with make(..., 0, n)", dst.Name, fn.Name.Name)
}

// findLocalDecl locates the statement declaring obj inside fn, or nil if
// obj is a parameter, field or package-level variable (whose capacity the
// function cannot be blamed for).
func findLocalDecl(fn *ast.FuncDecl, obj types.Object) ast.Node {
	var found ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Pos() == obj.Pos() {
					found = n
					return false
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if name.Pos() == obj.Pos() {
					found = n
					return false
				}
			}
		}
		return true
	})
	return found
}

// hasCapacityHint reports whether the declaration gives the slice a
// capacity: make with a cap argument, a non-empty literal, or any
// initializer that is not an obviously empty slice.
func hasCapacityHint(pass *Pass, decl ast.Node) bool {
	var init ast.Expr
	switch d := decl.(type) {
	case *ast.AssignStmt:
		if len(d.Rhs) != 1 {
			return true // multi-assign; don't guess
		}
		init = d.Rhs[0]
	case *ast.ValueSpec:
		if len(d.Values) == 0 {
			return false // var x []T
		}
		if len(d.Values) != 1 {
			return true
		}
		init = d.Values[0]
	default:
		return true
	}
	switch e := init.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return len(e.Args) >= 3 // make([]T, len, cap)
			}
		}
		return true // some constructor; assume it sized the slice
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	case *ast.Ident:
		return e.Name != "nil"
	}
	return true
}

// checkBoxingCall flags concrete values passed into interface-typed
// parameters: each one allocates to box the value. fmt calls are skipped
// (already flagged wholesale).
func checkBoxingCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			return
		}
	}
	// Explicit conversion to an interface type: I(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isConcrete(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion boxes a concrete value into an interface in hot path %s", fn.Name.Name)
		}
		return
	}
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // x... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && isConcrete(pass, arg) {
			pass.Reportf(arg.Pos(),
				"argument boxes a concrete value into an interface parameter in hot path %s", fn.Name.Name)
		}
	}
}

func calleeSignature(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// checkBoxingAssign flags assignments of concrete values into
// interface-typed variables or fields.
func checkBoxingAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(as.Lhs[i])
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if isConcrete(pass, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(),
				"assignment boxes a concrete value into an interface in hot path %s", fn.Name.Name)
		}
	}
}

// isConcrete reports whether e has a concrete (non-interface, non-nil)
// static type — the case where storing it in an interface allocates.
func isConcrete(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// checkEscapingClosure flags function literals that capture enclosing
// locals without being called on the spot: the literal and every captured
// variable move to the heap. Immediately-invoked literals (including
// under defer and go) keep their captures stack-allocatable.
func checkEscapingClosure(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	if immediatelyInvoked(fn, lit) {
		return
	}
	captured := capturedLocals(pass, fn, lit)
	if len(captured) == 0 {
		return
	}
	pass.Reportf(lit.Pos(),
		"closure captures %s and escapes in hot path %s, forcing heap allocation of the captures",
		fmt.Sprintf("%q", captured[0]), fn.Name.Name)
}

// immediatelyInvoked reports whether lit is the callee of a call
// expression somewhere in fn (covers f(){...}(), defer f(){...}(), go).
func immediatelyInvoked(fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == lit {
			invoked = true
		}
		return !invoked
	})
	return invoked
}

// capturedLocals lists variables declared in fn (outside lit) that lit
// references.
func capturedLocals(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if v.Pos() > fn.Pos() && v.Pos() < fn.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}
