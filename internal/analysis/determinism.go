package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Determinism flags sources of run-to-run nondeterminism in packages
// whose outputs must be byte-identical across machines and replicas:
//
//   - `range` over a map, unless the loop body is one of a small set of
//     provably order-insensitive shapes (copying into another map,
//     deleting, integer accumulation, min/max folding);
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - package-level math/rand calls (the shared global source), as
//     opposed to a *rand.Rand built from a derived seed, which is fine.
//
// Plans are cached, cross-checked between cluster nodes and served as
// pre-serialized bytes, so "mostly deterministic" is indistinguishable
// from broken: a map-ordered sender list or a wall-clock-budgeted search
// produces plans that fail byte-identity verification on another node.
// Deliberate wall-clock modes (the DFSBudget deadline) carry
// //alpacomm:nondet-ok with a reason.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags map iteration order, wall-clock reads and global math/rand use in plan-producing packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Range statements are checked through their enclosing
			// statement list so the key-collection idiom (append keys, sort,
			// iterate) can see the sort call that follows the loop.
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			case *ast.CallExpr:
				checkClockAndRand(pass, n)
				return true
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				var next ast.Stmt
				if i+1 < len(list) {
					next = list[i+1]
				}
				checkMapRange(pass, rs, next)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `for ... := range m` when m is a map and the body
// is not provably order-insensitive. next is the statement following the
// loop (nil at the end of a block), consulted for the sorted-keys idiom.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, next ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	mt, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	if orderInsensitiveBody(pass, rs) {
		return
	}
	if isBucketNormalize(pass, rs) {
		return
	}
	if isKeyCollection(pass, rs, next) {
		return
	}
	d := Diagnostic{
		Pos: rs.Pos(),
		End: rs.End(),
		Message: "iteration over map is ordered randomly and this body is order-sensitive; " +
			"sort the keys first (or annotate //alpacomm:nondet-ok with a reason)",
	}
	if fix, ok := sortedRangeFix(pass, rs, mt); ok {
		d.Fixes = append(d.Fixes, fix)
	}
	pass.Report(d)
}

// orderInsensitiveBody recognizes loop bodies whose effect cannot depend
// on iteration order: every top-level statement is a map write, a map
// delete, an integer accumulation (float accumulation is order-sensitive
// under IEEE rounding), or a min/max fold.
func orderInsensitiveBody(pass *Pass, rs *ast.RangeStmt) bool {
	for _, stmt := range rs.Body.List {
		if !orderInsensitiveStmt(pass, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ASSIGN:
			// dst[k] = v — writing through distinct keys commutes.
			idx, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := pass.TypesInfo.TypeOf(idx.X)
			if t == nil {
				return false
			}
			_, isMap := t.Underlying().(*types.Map)
			return isMap
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes exactly; float does not.
			return isIntegerExpr(pass, s.Lhs[0])
		}
		return false
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k) commutes.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.IfStmt:
		// Min/max folding: `if v > best { best = v }` (any comparison
		// operator, single plain assignment, no else, no init).
		if s.Else != nil || s.Init != nil {
			return false
		}
		cmp, ok := s.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch cmp.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return false
		}
		if len(s.Body.List) != 1 {
			return false
		}
		as, ok := s.Body.List[0].(*ast.AssignStmt)
		return ok && as.Tok == token.ASSIGN && len(as.Lhs) == 1
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

// isBucketNormalize recognizes the per-bucket normalization idiom:
//
//	for k := range m {
//		sort.Ints(m[k])
//	}
//
// Each iteration sorts one bucket in place; buckets are disjoint and the
// sort erases any order the iteration could have leaked into them, so the
// loop commutes.
func isBucketNormalize(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return false
	}
	mapID, ok := rs.X.(*ast.Ident)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	for _, arg := range call.Args {
		idx, ok := arg.(*ast.IndexExpr)
		if !ok {
			return false
		}
		base, ok := idx.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != pass.TypesInfo.ObjectOf(mapID) {
			return false
		}
		key, ok := idx.Index.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[key] != pass.TypesInfo.ObjectOf(keyID) {
			return false
		}
	}
	return true
}

// isKeyCollection recognizes the sanctioned sorted-iteration idiom: a
// loop whose body only appends the keys to a slice, immediately followed
// by a sort call over that slice. The iteration order the map leaks is
// erased by the sort, so the pair is deterministic as a unit.
func isKeyCollection(pass *Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	// The statement after the loop must sort the collected slice.
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := sortCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return false
	}
	for _, arg := range sortCall.Args {
		if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == pass.TypesInfo.ObjectOf(dst) {
			return true
		}
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// checkClockAndRand flags wall-clock reads and global math/rand calls.
func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on *rand.Rand (derived seeds)
	// and on time.Time values are deterministic given their inputs.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s makes results depend on machine speed; "+
					"use a deterministic budget (or annotate //alpacomm:nondet-ok with a reason)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors over caller-supplied (derived) seeds are the
			// sanctioned pattern.
		default:
			pass.Reportf(call.Pos(),
				"global math/rand.%s draws from the shared process-wide source; "+
					"thread a seeded *rand.Rand instead (or annotate //alpacomm:nondet-ok)", fn.Name())
		}
	}
}

// sortedRangeFix builds the mechanical rewrite for an order-sensitive map
// range when the key type sorts directly: collect the keys, sort, then
// iterate the sorted slice looking values back up. Offered only for plain
// int/string keys over a simple (ident or selector) map expression, so the
// generated code is exactly what a human would write.
func sortedRangeFix(pass *Pass, rs *ast.RangeStmt, mt *types.Map) (SuggestedFix, bool) {
	var sortCall, keyType string
	if b, ok := mt.Key().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int:
			sortCall, keyType = "sort.Ints", "int"
		case types.String:
			sortCall, keyType = "sort.Strings", "string"
		}
	}
	if sortCall == "" {
		return SuggestedFix{}, false
	}
	switch rs.X.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return SuggestedFix{}, false
	}
	if rs.Tok != token.DEFINE {
		return SuggestedFix{}, false
	}
	keyName := "k"
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	var valDecl string
	if vid, ok := rs.Value.(*ast.Ident); ok && vid.Name != "_" {
		valDecl = fmt.Sprintf("%s := %s[%s]", vid.Name, exprString(pass.Fset, rs.X), keyName)
	}
	line := pass.Fset.Position(rs.Pos()).Line
	keysVar := fmt.Sprintf("keys%d", line)
	mapExpr := exprString(pass.Fset, rs.X)
	prelude := fmt.Sprintf("%s := make([]%s, 0, len(%s))\nfor %s := range %s {\n%s = append(%s, %s)\n}\n%s(%s)\n",
		keysVar, keyType, mapExpr, keyName, mapExpr, keysVar, keysVar, keyName, sortCall, keysVar)
	header := fmt.Sprintf("for _, %s := range %s {\n%s", keyName, keysVar, valDecl)
	return SuggestedFix{
		Message:    "iterate over sorted keys",
		NeedImport: "sort",
		Edits: []TextEdit{{
			Pos:     rs.Pos(),
			End:     rs.Body.Lbrace + 1,
			NewText: []byte(prelude + header),
		}},
	}, true
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	_ = printer.Fprint(&sb, fset, e)
	return sb.String()
}
