package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces that cancellation can reach every layer that blocks or
// searches. In the packages the driver applies it to (service, cluster,
// resharding) it checks three things:
//
//  1. a context.Context parameter, where present, is the first parameter
//     (the universal Go convention — callers and wrappers rely on it);
//  2. a function that already receives a ctx must not manufacture a fresh
//     context.Background()/TODO() for downstream calls — that silently
//     severs the caller's deadline and cancellation;
//  3. an exported function with no ctx parameter must not block (channel
//     ops, select, sync waits, time.Sleep) or call into ctx-first
//     functions with a severed context — if it can wait, the caller must
//     be able to cancel the wait.
//
// http.Handler methods (those taking *http.Request, which carries its own
// context) are exempt from rule 3, as are annotated compatibility shims
// (//alpacomm:allow ctxflow).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "requires context.Context first and unbroken ctx propagation in blocking/searching packages",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFunc(pass, fn)
		}
	}
	return nil
}

func checkCtxFunc(pass *Pass, fn *ast.FuncDecl) {
	ctxIdx := ctxParamIndex(pass, fn)
	if ctxIdx > 0 {
		pass.Reportf(fn.Type.Params.List[ctxIdx].Pos(),
			"context.Context should be the first parameter of %s", fn.Name.Name)
	}
	if ctxIdx >= 0 {
		checkSeveredCtx(pass, fn)
		return
	}
	// No ctx parameter. Exported functions that can block need one;
	// unexported helpers are the callee's business.
	if !fn.Name.IsExported() {
		return
	}
	if hasRequestParam(pass, fn) {
		return // *http.Request carries the context
	}
	if pos, what, ok := findBlocking(pass, fn); ok {
		pass.Reportf(pos,
			"exported %s blocks (%s) but takes no context.Context; "+
				"callers cannot cancel the wait", fn.Name.Name, what)
	}
}

// ctxParamIndex returns the flattened index of the context.Context
// parameter, or -1 if none.
func ctxParamIndex(pass *Pass, fn *ast.FuncDecl) int {
	idx := 0
	for fieldIdx, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			if idx == 0 {
				return 0
			}
			// Report at the field; return its field index so the caller can
			// point at it. Encode: any nonzero means "not first".
			return fieldIdx
		}
		idx += n
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkSeveredCtx flags context.Background()/TODO() inside a function
// that already has a caller-supplied ctx: passing the fresh context on
// discards the caller's deadline.
func checkSeveredCtx(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A goroutine or stored callback may legitimately need to
			// outlive the request; judge only straight-line body code.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if obj.Name() == "Background" || obj.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"%s already receives a context.Context; context.%s here severs the caller's "+
					"cancellation and deadline", fn.Name.Name, obj.Name())
		}
		return true
	})
}

func hasRequestParam(pass *Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
			return true
		}
	}
	return false
}

// findBlocking scans fn's straight-line body (not nested literals, which
// run on their own goroutines or as callbacks) for operations that can
// wait indefinitely.
func findBlocking(pass *Pass, fn *ast.FuncDecl) (pos token.Pos, what string, found bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			// A select with a default case polls; without one it blocks.
			// Either way its comm clauses belong to the select — walk only
			// the clause bodies, not the send/receive operations themselves.
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pos, what, found = n.Pos(), "select without default", true
				return false
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, visit)
					}
				}
			}
			return false
		case *ast.SendStmt:
			pos, what, found = n.Pos(), "channel send", true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, what, found = n.Pos(), "channel receive", true
			}
		case *ast.CallExpr:
			if name, ok := blockingCallName(pass, n); ok {
				pos, what, found = n.Pos(), name, true
			}
		}
		return !found
	}
	ast.Inspect(fn.Body, visit)
	return pos, what, found
}

// blockingCallName recognizes well-known blocking calls from the standard
// library: time.Sleep, sync.WaitGroup.Wait, sync.Cond.Wait,
// sync.Mutex/RWMutex excluded (bounded critical sections are fine).
func blockingCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Sleep" && obj.Type().(*types.Signature).Recv() == nil {
			return "time.Sleep", true
		}
	case "sync":
		if obj.Name() == "Wait" {
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				return "sync." + recvTypeName(recv) + ".Wait", true
			}
		}
	}
	return "", false
}

func recvTypeName(recv *types.Var) string {
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
