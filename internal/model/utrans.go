package model

import (
	"fmt"

	"alpacomm/internal/tensor"
)

// UTransConfig describes a U-Transformer (Petit et al. 2021): a U-Net with
// attention blocks and long skip connections from each encoder level to
// the mirrored decoder level. When the network is pipeline-partitioned
// into an encoder stage and a decoder stage, every skip connection crosses
// the mesh boundary — the communication pattern that makes cross-mesh
// resharding the bottleneck in §5.2.
//
// Calibration note (see DESIGN.md): the paper does not publish the scaled
// network's geometry. The presets below are chosen to land the ratio of
// skip-connection bytes to stage FLOPs in the regime the paper reports
// (cross-mesh communication comparable to or exceeding per-micro-batch
// compute, shrinking as the model grows), while keeping the parameter
// counts near Table 3's 1B / 2.1B.
type UTransConfig struct {
	// Levels is the number of down/up-sampling levels.
	Levels int
	// BaseChannels is the channel count at full resolution.
	BaseChannels int
	// Mult scales channels per level: level k uses BaseChannels·Mult[k]
	// channels at 1/2^k resolution. len(Mult) == Levels.
	Mult []int
	// Resolution is the (square) input resolution.
	Resolution int
	// InChannels is the input image channel count.
	InChannels int
	// AttentionFrom is the first level with attention blocks.
	AttentionFrom int
}

// UTrans1B is the paper's Table 3 "U-Trans case1" (~1 B parameters).
func UTrans1B() UTransConfig {
	return UTransConfig{Levels: 4, BaseChannels: 1792, Mult: []int{1, 1, 1, 1}, Resolution: 64, InChannels: 4, AttentionFrom: 2}
}

// UTrans2_1B is Table 3's "U-Trans case2/case3" (~2.1 B parameters).
func UTrans2_1B() UTransConfig {
	return UTransConfig{Levels: 4, BaseChannels: 2800, Mult: []int{1, 1, 1, 1}, Resolution: 64, InChannels: 4, AttentionFrom: 2}
}

// channels returns the channel count at level k.
func (u UTransConfig) channels(k int) int64 {
	return int64(u.BaseChannels) * int64(u.Mult[k])
}

// spatial returns the number of spatial positions at level k.
func (u UTransConfig) spatial(k int) int64 {
	r := int64(u.Resolution >> uint(k))
	return r * r
}

// Validate checks structural consistency.
func (u UTransConfig) Validate() error {
	if u.Levels < 1 || len(u.Mult) != u.Levels {
		return fmt.Errorf("model: U-Trans Mult must have one entry per level")
	}
	if u.Resolution>>uint(u.Levels-1) < 1 {
		return fmt.Errorf("model: resolution %d too small for %d levels", u.Resolution, u.Levels)
	}
	if u.BaseChannels < 1 {
		return fmt.Errorf("model: non-positive base channels")
	}
	return nil
}

// NumParams counts parameters: per level, two 3x3 convs in the encoder,
// two in the decoder (the first consuming the concatenated skip), down/up
// transition convs, and attention projections (4·C²) at attention levels,
// mirrored in the decoder.
func (u UTransConfig) NumParams() int64 {
	var p int64
	for k := 0; k < u.Levels; k++ {
		c := u.channels(k)
		// Encoder: conv(c,c) x2; decoder: conv(2c,c) + conv(c,c).
		p += 9 * (2*c*c + 2*c*c + c*c)
		if k < u.Levels-1 {
			// Down and up transitions between level widths.
			p += 2 * 9 * c * u.channels(k+1)
		}
		if k >= u.AttentionFrom {
			p += 2 * 4 * c * c // QKVO in encoder and decoder blocks
		}
	}
	// Bottleneck: two convs at the deepest width.
	cb := u.channels(u.Levels - 1)
	p += 9 * 2 * cb * cb
	return p
}

// levelFlopsFwd returns the forward FLOPs of one level's blocks (encoder or
// decoder side) for a micro-batch of b images.
func (u UTransConfig) levelFlopsFwd(k, b int, decoder bool) float64 {
	c := float64(u.channels(k))
	n := float64(u.spatial(k))
	bf := float64(b)
	// Two 3x3 convs; the decoder's first conv reads 2c channels (concat).
	convIn := c
	if decoder {
		convIn = 2 * c
	}
	fl := 2 * 9 * (convIn*c + c*c) * n * bf
	if k >= u.AttentionFrom {
		// Self-attention: scores+AV 4·b·n²·c, projections 8·b·n·c².
		fl += 4*bf*n*n*c + 8*bf*n*c*c
	}
	return fl
}

// EncoderFlopsFwd returns the encoder+bottleneck forward FLOPs per
// micro-batch.
func (u UTransConfig) EncoderFlopsFwd(b int) float64 {
	var fl float64
	for k := 0; k < u.Levels; k++ {
		fl += u.levelFlopsFwd(k, b, false)
	}
	// Bottleneck ≈ one more deepest-level block.
	fl += u.levelFlopsFwd(u.Levels-1, b, false)
	return fl
}

// DecoderFlopsFwd returns the decoder forward FLOPs per micro-batch.
func (u UTransConfig) DecoderFlopsFwd(b int) float64 {
	var fl float64
	for k := 0; k < u.Levels; k++ {
		fl += u.levelFlopsFwd(k, b, true)
	}
	return fl
}

// SkipShape is the tensor carried by the level-k skip connection for a
// micro-batch of b images, as (batch, channels, spatial).
func (u UTransConfig) SkipShape(b, k int) tensor.Shape {
	return tensor.MustShape(b, int(u.channels(k)), int(u.spatial(k)))
}

// NewUTransWorkload partitions the network into two pipeline stages —
// encoder(+bottleneck) and decoder — the paper's manual partition (§5.2).
// The bottleneck activation and every skip tensor cross the boundary.
func NewUTransWorkload(u UTransConfig, pc ParallelConfig, dt tensor.DType, globalBatch, microBatch int) (*Workload, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if !pc.Valid() {
		return nil, fmt.Errorf("model: invalid parallel config %+v", pc)
	}
	if pc.PP != 2 {
		return nil, fmt.Errorf("model: U-Transformer is partitioned into exactly 2 stages, got pp=%d", pc.PP)
	}
	if microBatch < 1 || globalBatch < microBatch*pc.DP {
		return nil, fmt.Errorf("model: invalid batch sizes global=%d micro=%d dp=%d", globalBatch, microBatch, pc.DP)
	}
	numMB := globalBatch / (microBatch * pc.DP)
	paramBytes := u.NumParams() * dt.Size()
	w := &Workload{
		Name:            fmt.Sprintf("utrans-C%d-L%d", u.BaseChannels, u.Levels),
		DType:           dt,
		MicroBatch:      microBatch,
		NumMicroBatches: numMB,
		Stages: []StageCost{
			{
				FlopsFwd:   u.EncoderFlopsFwd(microBatch),
				FlopsBwd:   2 * u.EncoderFlopsFwd(microBatch),
				ParamBytes: paramBytes * 6 / 10, // encoder+bottleneck share
			},
			{
				FlopsFwd:   u.DecoderFlopsFwd(microBatch),
				FlopsBwd:   2 * u.DecoderFlopsFwd(microBatch),
				ParamBytes: paramBytes * 4 / 10,
			},
		},
	}
	// Bottleneck output.
	bAll := microBatch * pc.DP
	w.Boundaries = append(w.Boundaries, BoundaryTensor{
		Boundary: 0,
		Name:     "bottleneck",
		Shape:    u.SkipShape(bAll, u.Levels-1),
		SrcSpec:  "S0RR",
		DstSpec:  "S0RR",
	})
	// One long skip per level: the U-shape's defining communication.
	for k := 0; k < u.Levels; k++ {
		w.Boundaries = append(w.Boundaries, BoundaryTensor{
			Boundary: 0,
			Name:     fmt.Sprintf("skip%d", k),
			Shape:    u.SkipShape(bAll, k),
			SrcSpec:  "S0RR",
			DstSpec:  "S0RR",
		})
	}
	return w, w.Validate()
}
