package model

import (
	"fmt"

	"alpacomm/internal/tensor"
)

// BoundaryTensor is one tensor that crosses a pipeline-stage boundary and
// therefore requires a cross-mesh resharding every forward (and its
// gradient every backward).
type BoundaryTensor struct {
	// Boundary is the stage boundary index: tensor flows from stage
	// Boundary to stage Boundary+1 (forward direction).
	Boundary int
	// Name describes the tensor (for reports).
	Name string
	// Shape is the per-micro-batch tensor shape.
	Shape tensor.Shape
	// SrcSpec / DstSpec are the sharding specs on the producing and
	// consuming meshes, in the paper's string notation.
	SrcSpec, DstSpec string
}

// Elements returns the tensor's element count.
func (b BoundaryTensor) Elements() int64 { return b.Shape.NumElements() }

// StageCost is the per-micro-batch compute cost of one pipeline stage.
type StageCost struct {
	// FlopsFwd / FlopsBwd are forward and backward FLOPs per micro-batch.
	FlopsFwd, FlopsBwd float64
	// ParamBytes is the stage's parameter memory (one copy).
	ParamBytes int64
}

// Workload is a model partitioned into pipeline stages: everything the
// training simulator needs.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// DType is the training precision.
	DType tensor.DType
	// MicroBatch is the per-micro-batch sample count.
	MicroBatch int
	// NumMicroBatches per training iteration.
	NumMicroBatches int
	// Stages lists per-stage compute costs.
	Stages []StageCost
	// Boundaries lists every tensor crossing a stage boundary.
	Boundaries []BoundaryTensor
}

// Validate checks structural consistency.
func (w *Workload) Validate() error {
	if len(w.Stages) == 0 {
		return fmt.Errorf("model: workload %q has no stages", w.Name)
	}
	if w.MicroBatch < 1 || w.NumMicroBatches < 1 {
		return fmt.Errorf("model: workload %q has invalid batch configuration", w.Name)
	}
	for _, b := range w.Boundaries {
		if b.Boundary < 0 || b.Boundary >= len(w.Stages)-1 {
			return fmt.Errorf("model: boundary tensor %q at invalid boundary %d", b.Name, b.Boundary)
		}
	}
	return nil
}

// TotalFlopsPerIteration returns the summed forward+backward FLOPs of one
// training iteration across all stages and micro-batches — the numerator
// of the paper's aggregated-TFLOPS throughput metric.
func (w *Workload) TotalFlopsPerIteration() float64 {
	var per float64
	for _, s := range w.Stages {
		per += s.FlopsFwd + s.FlopsBwd
	}
	return per * float64(w.NumMicroBatches)
}

// BoundaryBytes returns the total bytes crossing the given boundary per
// micro-batch in the forward direction.
func (w *Workload) BoundaryBytes(boundary int) int64 {
	var total int64
	for _, b := range w.Boundaries {
		if b.Boundary == boundary {
			total += b.Elements() * w.DType.Size()
		}
	}
	return total
}
