package model

// Table1 reproduces the paper's Table 1: per-GPU sizes of parameters,
// optimizer state and activations for one GPT-3 layer under mixed-precision
// training with tensor-model-parallel degree TMP.
type Table1 struct {
	// Params is the per-GPU parameter count: 12·H²/TMP.
	Params int64
	// OptStateParams is the per-GPU optimizer state count: 24·H²/TMP
	// (fp32 master weights, momentum and variance).
	OptStateParams int64
	// ActivationElements is B·S·H.
	ActivationElements int64
	// WeightOptBytes is the memory of weights plus optimizer state:
	// 168·H²/TMP bytes (2B fp16 weights + 2B fp16 grads... following the
	// paper's 168·H² accounting).
	WeightOptBytes int64
	// ActivationBytes is 2·B·S·H (fp16).
	ActivationBytes int64
}

// GPTLayerMemory evaluates Table 1's formulas for sequence length S,
// hidden size H, per-GPU micro-batch B and tensor-model-parallel degree
// TMP.
func GPTLayerMemory(S, H, B, TMP int) Table1 {
	h2 := int64(H) * int64(H)
	bsh := int64(B) * int64(S) * int64(H)
	return Table1{
		Params:             12 * h2 / int64(TMP),
		OptStateParams:     24 * h2 / int64(TMP),
		ActivationElements: bsh,
		WeightOptBytes:     168 * h2 / int64(TMP),
		ActivationBytes:    2 * bsh,
	}
}

// EagerMemoryIncreaseBytes bounds the extra activation memory of the
// eager-1F1B schedule at stage s (0-indexed) of a `stages`-deep pipeline:
// (eager warm-up − 1F1B warm-up) extra in-flight activations, each of
// activationBytes — at most stages·activationBytes (§4's Table 1
// argument).
func EagerMemoryIncreaseBytes(stages, s int, activationBytes int64) int64 {
	oneF := stages - s
	eager := 2*(stages-s-1) + 1
	extra := eager - oneF
	if extra < 0 {
		extra = 0
	}
	return int64(extra) * activationBytes
}
