// Package model provides analytic cost models for the paper's two
// evaluation workloads — a GPT-3-style transformer and the U-Transformer
// (U-Net with attention and long skip connections) — plus the Table 1
// per-GPU memory accounting. The models produce stage graphs (per-stage
// FLOPs and the tensors crossing each pipeline boundary with their sharding
// specs), which the training simulator turns into pipeline configurations.
package model

import "alpacomm/internal/tensor"

// DeviceSpec models one accelerator's sustained compute throughput.
type DeviceSpec struct {
	// PeakFlopsFP16 is the peak half-precision throughput (FLOP/s).
	PeakFlopsFP16 float64
	// PeakFlopsFP32 is the peak single-precision throughput.
	PeakFlopsFP32 float64
	// MFU is the model FLOPs utilization actually sustained (0..1).
	MFU float64
}

// V100 returns the paper's testbed accelerator (Tesla V100 16GB): 125
// TFLOPS tensor-core fp16, 15.7 TFLOPS fp32, at a typical 45% utilization.
func V100() DeviceSpec {
	return DeviceSpec{PeakFlopsFP16: 125e12, PeakFlopsFP32: 15.7e12, MFU: 0.45}
}

// V100Conv is the V100 running convolution/attention-mixed kernels, which
// sustain a much lower fraction of peak than transformer GEMMs. Used for
// the U-Transformer workloads.
func V100Conv() DeviceSpec {
	return DeviceSpec{PeakFlopsFP16: 125e12, PeakFlopsFP32: 15.7e12, MFU: 0.15}
}

// Effective returns sustained FLOP/s for the given element type.
func (d DeviceSpec) Effective(dt tensor.DType) float64 {
	if dt == tensor.Float16 {
		return d.PeakFlopsFP16 * d.MFU
	}
	return d.PeakFlopsFP32 * d.MFU
}

// ParallelConfig is the paper's Table 3 notation: (data-parallel degree,
// operator-parallel degree, pipeline-parallel degree).
type ParallelConfig struct {
	DP, OP, PP int
}

// DevicesPerStage returns DP·OP, the mesh size of one pipeline stage.
func (p ParallelConfig) DevicesPerStage() int { return p.DP * p.OP }

// TotalDevices returns DP·OP·PP.
func (p ParallelConfig) TotalDevices() int { return p.DP * p.OP * p.PP }

// Valid reports whether all degrees are positive.
func (p ParallelConfig) Valid() bool { return p.DP >= 1 && p.OP >= 1 && p.PP >= 1 }
