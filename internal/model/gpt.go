package model

import (
	"fmt"

	"alpacomm/internal/tensor"
)

// GPTConfig describes a GPT-3-style decoder-only transformer.
type GPTConfig struct {
	// Layers is the number of transformer blocks.
	Layers int
	// Hidden is the model dimension H.
	Hidden int
	// SeqLen is the sequence length S.
	SeqLen int
	// Vocab is the vocabulary size (embedding parameters only).
	Vocab int
}

// GPT1_3B is the paper's Table 3 "GPT 1.3B" model.
func GPT1_3B() GPTConfig { return GPTConfig{Layers: 24, Hidden: 2048, SeqLen: 1024, Vocab: 51200} }

// GPT2_6B is the paper's Table 3 "GPT 2.6B" model.
func GPT2_6B() GPTConfig { return GPTConfig{Layers: 32, Hidden: 2560, SeqLen: 1024, Vocab: 51200} }

// NumParams returns the parameter count: 12·L·H² transformer weights plus
// V·H embeddings.
func (g GPTConfig) NumParams() int64 {
	h := int64(g.Hidden)
	return 12*int64(g.Layers)*h*h + int64(g.Vocab)*h
}

// LayerFlopsFwd returns the forward FLOPs of one transformer block for a
// micro-batch of b sequences: 24·b·S·H² for the matmuls plus 4·b·S²·H for
// attention scores (multiply-accumulate counted as 2 FLOPs).
func (g GPTConfig) LayerFlopsFwd(b int) float64 {
	bf, s, h := float64(b), float64(g.SeqLen), float64(g.Hidden)
	return 24*bf*s*h*h + 4*bf*s*s*h
}

// LayerFlopsBwd is the backward cost, conventionally 2x forward.
func (g GPTConfig) LayerFlopsBwd(b int) float64 { return 2 * g.LayerFlopsFwd(b) }

// ActivationShape is the (micro-batch, sequence, hidden) tensor a stage
// sends to its successor.
func (g GPTConfig) ActivationShape(b int) tensor.Shape {
	return tensor.MustShape(b, g.SeqLen, g.Hidden)
}

// NewGPTWorkload partitions the model into pp equal pipeline stages for
// the given parallel config and batch settings. The boundary activation is
// partitioned over data-parallel devices and replicated over
// operator-parallel devices (§5.2: spec S0RR on a (dp, op) mesh).
func NewGPTWorkload(g GPTConfig, pc ParallelConfig, dt tensor.DType, globalBatch, microBatch int) (*Workload, error) {
	if !pc.Valid() {
		return nil, fmt.Errorf("model: invalid parallel config %+v", pc)
	}
	if g.Layers%pc.PP != 0 {
		return nil, fmt.Errorf("model: %d layers do not split into %d stages", g.Layers, pc.PP)
	}
	if microBatch < 1 || globalBatch < microBatch*pc.DP {
		return nil, fmt.Errorf("model: invalid batch sizes global=%d micro=%d dp=%d", globalBatch, microBatch, pc.DP)
	}
	numMB := globalBatch / (microBatch * pc.DP)
	layersPerStage := g.Layers / pc.PP
	h := int64(g.Hidden)
	paramBytesPerLayer := 12 * h * h * dt.Size()

	w := &Workload{
		Name:            fmt.Sprintf("gpt-L%d-H%d", g.Layers, g.Hidden),
		DType:           dt,
		MicroBatch:      microBatch,
		NumMicroBatches: numMB,
	}
	for s := 0; s < pc.PP; s++ {
		w.Stages = append(w.Stages, StageCost{
			FlopsFwd:   float64(layersPerStage) * g.LayerFlopsFwd(microBatch),
			FlopsBwd:   float64(layersPerStage) * g.LayerFlopsBwd(microBatch),
			ParamBytes: int64(layersPerStage) * paramBytesPerLayer,
		})
	}
	// The micro-batch activation is sharded over all DP·OP samples... the
	// batch dimension is partitioned across data-parallel replicas, so the
	// tensor crossing the boundary covers microBatch samples per replica;
	// we describe the full micro-batch with the batch dim sharded on mesh
	// axis 0 (data parallel) and replicated on axis 1 (operator parallel).
	actShape := g.ActivationShape(microBatch * pc.DP)
	for s := 0; s < pc.PP-1; s++ {
		w.Boundaries = append(w.Boundaries, BoundaryTensor{
			Boundary: s,
			Name:     fmt.Sprintf("hidden%d", s),
			Shape:    actShape,
			SrcSpec:  "S0RR",
			DstSpec:  "S0RR",
		})
	}
	return w, w.Validate()
}
