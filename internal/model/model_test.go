package model

import (
	"math"
	"testing"

	"alpacomm/internal/tensor"
)

func TestGPTPresetsMatchTable3(t *testing.T) {
	// Table 3: 1.3B and 2.6B parameters.
	p13 := float64(GPT1_3B().NumParams())
	if p13 < 1.2e9 || p13 > 1.4e9 {
		t.Errorf("GPT 1.3B params = %g", p13)
	}
	p26 := float64(GPT2_6B().NumParams())
	if p26 < 2.5e9 || p26 > 2.8e9 {
		t.Errorf("GPT 2.6B params = %g", p26)
	}
}

func TestUTransPresetsMatchTable3(t *testing.T) {
	p1 := float64(UTrans1B().NumParams())
	if p1 < 0.8e9 || p1 > 1.25e9 {
		t.Errorf("U-Trans 1B params = %g", p1)
	}
	p2 := float64(UTrans2_1B().NumParams())
	if p2 < 1.8e9 || p2 > 2.4e9 {
		t.Errorf("U-Trans 2.1B params = %g", p2)
	}
}

func TestGPTLayerFlops(t *testing.T) {
	g := GPTConfig{Layers: 1, Hidden: 1024, SeqLen: 512, Vocab: 1000}
	fwd := g.LayerFlopsFwd(2)
	want := 24*2*512*1024*1024 + 4*2*512*512*1024
	if math.Abs(fwd-float64(want)) > 1 {
		t.Errorf("LayerFlopsFwd = %g, want %d", fwd, want)
	}
	if g.LayerFlopsBwd(2) != 2*fwd {
		t.Error("backward should be 2x forward")
	}
}

func TestNewGPTWorkload(t *testing.T) {
	pc := ParallelConfig{DP: 2, OP: 2, PP: 2}
	w, err := NewGPTWorkload(GPT1_3B(), pc, tensor.Float16, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stages) != 2 {
		t.Fatalf("stages = %d", len(w.Stages))
	}
	if w.NumMicroBatches != 1024/(2*2) {
		t.Errorf("num micro-batches = %d, want %d", w.NumMicroBatches, 256)
	}
	if len(w.Boundaries) != 1 {
		t.Fatalf("boundaries = %d", len(w.Boundaries))
	}
	b := w.Boundaries[0]
	// Activation: (microBatch*dp, S, H).
	if !b.Shape.Equal(tensor.MustShape(4, 1024, 2048)) {
		t.Errorf("boundary shape = %v", b.Shape)
	}
	if b.SrcSpec != "S0RR" || b.DstSpec != "S0RR" {
		t.Errorf("boundary specs = %s -> %s", b.SrcSpec, b.DstSpec)
	}
	// Stage FLOPs split evenly.
	if w.Stages[0].FlopsFwd != w.Stages[1].FlopsFwd {
		t.Error("uniform GPT stages should have equal FLOPs")
	}
	if w.TotalFlopsPerIteration() <= 0 {
		t.Error("iteration FLOPs must be positive")
	}
}

func TestNewGPTWorkloadValidation(t *testing.T) {
	g := GPT1_3B()
	if _, err := NewGPTWorkload(g, ParallelConfig{DP: 0, OP: 1, PP: 1}, tensor.Float16, 64, 2); err == nil {
		t.Error("invalid parallel config should fail")
	}
	if _, err := NewGPTWorkload(g, ParallelConfig{DP: 1, OP: 1, PP: 7}, tensor.Float16, 64, 2); err == nil {
		t.Error("non-divisible layer split should fail")
	}
	if _, err := NewGPTWorkload(g, ParallelConfig{DP: 4, OP: 1, PP: 2}, tensor.Float16, 2, 2); err == nil {
		t.Error("batch smaller than micro*dp should fail")
	}
}

func TestNewUTransWorkload(t *testing.T) {
	pc := ParallelConfig{DP: 2, OP: 2, PP: 2}
	u := UTrans1B()
	w, err := NewUTransWorkload(u, pc, tensor.Float16, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bottleneck + one skip per level all cross boundary 0.
	if len(w.Boundaries) != 1+u.Levels {
		t.Fatalf("boundaries = %d, want %d", len(w.Boundaries), 1+u.Levels)
	}
	// Skip 0 is the largest tensor (full resolution).
	var skip0, skipLast int64
	for _, b := range w.Boundaries {
		if b.Name == "skip0" {
			skip0 = b.Elements()
		}
		if b.Name == "skip3" {
			skipLast = b.Elements()
		}
	}
	if skip0 <= skipLast {
		t.Errorf("skip0 (%d) should dwarf skip3 (%d)", skip0, skipLast)
	}
	if w.BoundaryBytes(0) <= 0 {
		t.Error("boundary bytes must be positive")
	}
}

func TestNewUTransWorkloadValidation(t *testing.T) {
	u := UTrans1B()
	if _, err := NewUTransWorkload(u, ParallelConfig{DP: 1, OP: 1, PP: 3}, tensor.Float16, 64, 1); err == nil {
		t.Error("pp != 2 should fail")
	}
	if _, err := NewUTransWorkload(u, ParallelConfig{DP: 0, OP: 1, PP: 2}, tensor.Float16, 64, 1); err == nil {
		t.Error("invalid parallel config should fail")
	}
	if _, err := NewUTransWorkload(u, ParallelConfig{DP: 64, OP: 1, PP: 2}, tensor.Float16, 8, 1); err == nil {
		t.Error("batch too small should fail")
	}
}

// TestUTransCommHeavierThanGPT pins the motivation for §5.2: per unit of
// compute, the U-Transformer moves far more bytes across the stage
// boundary than GPT.
func TestUTransCommHeavierThanGPT(t *testing.T) {
	pc := ParallelConfig{DP: 2, OP: 2, PP: 2}
	gw, err := NewGPTWorkload(GPT1_3B(), pc, tensor.Float16, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := NewUTransWorkload(UTrans1B(), pc, tensor.Float16, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	gRatio := float64(gw.BoundaryBytes(0)) / (gw.Stages[0].FlopsFwd + gw.Stages[0].FlopsBwd)
	uRatio := float64(uw.BoundaryBytes(0)) / (uw.Stages[0].FlopsFwd + uw.Stages[0].FlopsBwd)
	if uRatio < 3*gRatio {
		t.Errorf("U-Trans comm/compute (%g) should far exceed GPT's (%g)", uRatio, gRatio)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	// Paper's Table 1: S=1024, H=12288, B=2, TMP=8.
	m := GPTLayerMemory(1024, 12288, 2, 8)
	if m.Params != 216*1024*1024-m.Params%1 && m.Params != 12*12288*12288/8 {
		t.Errorf("params = %d", m.Params)
	}
	if m.Params != 226492416 { // 12*12288^2/8 = 216M (binary M)
		t.Errorf("params = %d, want 226492416 (216M)", m.Params)
	}
	if m.OptStateParams != 2*m.Params {
		t.Errorf("optimizer state = %d, want 2x params", m.OptStateParams)
	}
	if m.ActivationElements != 2*1024*12288 {
		t.Errorf("activation elements = %d", m.ActivationElements)
	}
	// 2.95 GB weights+optimizer.
	gb := float64(m.WeightOptBytes) / (1 << 30)
	if gb < 2.9 || gb > 3.0 {
		t.Errorf("weight+opt = %.2f GiB, want 2.95", gb)
	}
	// 48 MB activations.
	mb := float64(m.ActivationBytes) / (1 << 20)
	if mb != 48 {
		t.Errorf("activation = %v MiB, want 48", mb)
	}
}

func TestEagerMemoryIncrease(t *testing.T) {
	act := int64(48 << 20)
	// Stage 0 of 4: eager holds 7, 1f1b holds 4: +3 activations.
	if got := EagerMemoryIncreaseBytes(4, 0, act); got != 3*act {
		t.Errorf("increase = %d, want %d", got, 3*act)
	}
	// Last stage: no increase.
	if got := EagerMemoryIncreaseBytes(4, 3, act); got != 0 {
		t.Errorf("last stage increase = %d", got)
	}
}

func TestDeviceSpecEffective(t *testing.T) {
	v := V100()
	if v.Effective(tensor.Float16) <= v.Effective(tensor.Float32) {
		t.Error("fp16 must be faster than fp32 on V100")
	}
	if v.Effective(tensor.Float16) != 125e12*0.45 {
		t.Errorf("fp16 effective = %g", v.Effective(tensor.Float16))
	}
}

func TestParallelConfig(t *testing.T) {
	pc := ParallelConfig{DP: 2, OP: 2, PP: 2}
	if pc.DevicesPerStage() != 4 || pc.TotalDevices() != 8 {
		t.Error("device counts wrong")
	}
	if (ParallelConfig{DP: 0, OP: 1, PP: 1}).Valid() {
		t.Error("zero degree should be invalid")
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := &Workload{Name: "x", MicroBatch: 1, NumMicroBatches: 1}
	if err := w.Validate(); err == nil {
		t.Error("no stages should fail")
	}
	w.Stages = []StageCost{{FlopsFwd: 1, FlopsBwd: 2}}
	w.Boundaries = []BoundaryTensor{{Boundary: 5, Shape: tensor.MustShape(1)}}
	if err := w.Validate(); err == nil {
		t.Error("out-of-range boundary should fail")
	}
}
