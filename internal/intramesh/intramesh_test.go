package intramesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

func oneHostMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	c := mesh.AWSP3Cluster(1)
	m, err := c.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdentityConversionNeedsNoMoves(t *testing.T) {
	m := oneHostMesh(t)
	task, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("S0R"), sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Moves) != 0 {
		t.Errorf("identity conversion produced %d moves", len(task.Moves))
	}
	if task.CollectiveKind() != "none" {
		t.Errorf("kind = %s", task.CollectiveKind())
	}
	res, err := task.Simulate()
	if err != nil || res.Makespan != 0 {
		t.Errorf("identity should be free: %+v, %v", res, err)
	}
}

func TestReplicatedToShardedIsFree(t *testing.T) {
	// R -> S: every device already holds its shard (slicing is local).
	m := oneHostMesh(t)
	task, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("RR"), sharding.MustParse("S0S1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Moves) != 0 {
		t.Errorf("R->S should need no communication, got %d moves", len(task.Moves))
	}
	if task.MovedElements != 0 {
		t.Errorf("moved elements = %d", task.MovedElements)
	}
}

func TestShardedToReplicatedIsAllGather(t *testing.T) {
	// S0S1 -> RR: classic all-gather; every device needs the other 3
	// shards.
	m := oneHostMesh(t)
	task, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("S0S1"), sharding.MustParse("RR"))
	if err != nil {
		t.Fatal(err)
	}
	if task.CollectiveKind() != "all-gather" {
		t.Errorf("kind = %s", task.CollectiveKind())
	}
	// 4 shards x 3 needers each.
	if len(task.Moves) != 4 {
		t.Errorf("moves = %d, want 4", len(task.Moves))
	}
	for _, mv := range task.Moves {
		if len(mv.Needers) != 3 {
			t.Errorf("move %d has %d needers, want 3", mv.Index, len(mv.Needers))
		}
	}
	// Each device keeps its own shard locally: 4 x 16 elements local.
	if task.LocalElements != 64 {
		t.Errorf("local elements = %d, want 64", task.LocalElements)
	}
}

func TestAxisSwapIsAllToAll(t *testing.T) {
	m := oneHostMesh(t)
	task, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("S0R"), sharding.MustParse("RS0"))
	if err != nil {
		t.Fatal(err)
	}
	if task.CollectiveKind() != "all-to-all" {
		t.Errorf("kind = %s", task.CollectiveKind())
	}
	if len(task.Moves) == 0 {
		t.Error("axis swap needs communication")
	}
}

func TestSimulatePrefersNVLink(t *testing.T) {
	// On one host all transfers ride NVLink: an 8x8 fp32 all-gather is
	// orders of magnitude below NIC time.
	m := oneHostMesh(t)
	task, _ := NewTask(tensor.MustShape(1024, 1024), tensor.Float32, m, sharding.MustParse("S0S1"), sharding.MustParse("RR"))
	res, err := task.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	nicTime := float64(1024*1024*4) / mesh.P3HostBandwidth
	if res.Makespan > nicTime/10 {
		t.Errorf("intra-host conversion (%v) should be far below NIC time (%v)", res.Makespan, nicTime)
	}
}

func TestCrossHostConversionUsesNIC(t *testing.T) {
	// A (2,4) mesh across two hosts: S0R -> RR forces each row's data to
	// the other host.
	c := mesh.AWSP3Cluster(2)
	m, _ := c.Slice([]int{2, 4}, 0)
	task, err := NewTask(tensor.MustShape(1024, 1024), tensor.Float32, m, sharding.MustParse("S0R"), sharding.MustParse("RR"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := task.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Half the tensor must cross each NIC (both directions in parallel).
	wantMin := float64(1024*1024*4/2) / mesh.P3HostBandwidth
	if res.Makespan < wantMin*0.9 {
		t.Errorf("cross-host conversion too fast: %v < %v", res.Makespan, wantMin)
	}
}

func TestExecuteCorrectness(t *testing.T) {
	m := oneHostMesh(t)
	task, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("S0S1"), sharding.MustParse("S1S0"))
	if err != nil {
		t.Fatal(err)
	}
	srcBufs, err := task.Src.Buffers()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range srcBufs {
		b.FillLinear()
	}
	dstBufs, err := task.Dst.Buffers()
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Execute(srcBufs, dstBufs); err != nil {
		t.Fatal(err)
	}
	for dev, b := range dstBufs {
		if ok, pt, got, want := b.VerifyLinear(); !ok {
			t.Errorf("device %d wrong at %v: got %v want %v", dev, pt, got, want)
		}
	}
}

func TestNewTaskRejectsBadSpecs(t *testing.T) {
	m := oneHostMesh(t)
	if _, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("S2R"), sharding.MustParse("RR")); err == nil {
		t.Error("bad source spec should fail")
	}
	if _, err := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("RR"), sharding.MustParse("S2R")); err == nil {
		t.Error("bad destination spec should fail")
	}
}

func TestStringer(t *testing.T) {
	m := oneHostMesh(t)
	task, _ := NewTask(tensor.MustShape(8, 8), tensor.Float32, m, sharding.MustParse("S0S1"), sharding.MustParse("RR"))
	if task.String() == "" {
		t.Error("empty String")
	}
}

// Property: for any spec pair, executing the conversion delivers the
// linear pattern to every destination device, and the accounting
// (local + moved unique elements) covers every destination requirement.
func TestConversionProperty(t *testing.T) {
	specs := []string{"RR", "S0R", "S1R", "RS0", "RS1", "S0S1", "S1S0", "S01R", "RS01"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := mesh.AWSP3Cluster(2)
		m, _ := c.Slice([]int{2, 2}, r.Intn(4))
		shape := tensor.MustShape(4+2*r.Intn(10), 4+2*r.Intn(10))
		task, err := NewTask(shape, tensor.Float32, m,
			sharding.MustParse(specs[r.Intn(len(specs))]), sharding.MustParse(specs[r.Intn(len(specs))]))
		if err != nil {
			return false
		}
		srcBufs, err := task.Src.Buffers()
		if err != nil {
			return false
		}
		for _, b := range srcBufs {
			b.FillLinear()
		}
		dstBufs, err := task.Dst.Buffers()
		if err != nil {
			return false
		}
		if err := task.Execute(srcBufs, dstBufs); err != nil {
			return false
		}
		for _, b := range dstBufs {
			if ok, _, _, _ := b.VerifyLinear(); !ok {
				return false
			}
		}
		res, err := task.Simulate()
		return err == nil && res.Makespan >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
