// Package intramesh implements layout conversion within a single device
// mesh — the §2.1 background case. When an operator requires its input
// tensor under a different sharding spec on the same mesh, the conversion
// is served by collective communication (all-gather for S→R, slicing for
// R→S, all-to-all for re-sharding along a different axis). Unlike
// cross-mesh resharding, source and destination devices coincide, so data
// already in place moves for free.
//
// The package mirrors the cross-mesh pipeline: decompose into moves, plan
// transfers, simulate on the cluster model, and execute on the data plane.
package intramesh

import (
	"fmt"

	"alpacomm/internal/mesh"
	"alpacomm/internal/netsim"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// Move is one required data movement: a slice that some devices hold and
// other devices need.
type Move struct {
	// Index identifies the move.
	Index int
	// Slice is the region of the global tensor to deliver.
	Slice tensor.Region
	// Holders are devices that hold the slice under the source spec.
	Holders []int
	// Needers are devices that require the slice under the destination
	// spec but do not already hold it.
	Needers []int
}

// Task is an intra-mesh layout conversion.
type Task struct {
	Global tensor.Shape
	DType  tensor.DType
	Mesh   *mesh.Mesh
	Src    *sharding.Placement
	Dst    *sharding.Placement
	// Moves lists the required movements; slices every destination device
	// already holds do not appear.
	Moves []Move
	// LocalElements counts elements already in place (moved for free).
	LocalElements int64
	// MovedElements counts elements that must travel.
	MovedElements int64
}

// NewTask decomposes a layout conversion on one mesh. Source and
// destination specs bind to the same mesh (the defining property of
// intra-mesh resharding).
func NewTask(global tensor.Shape, dt tensor.DType, m *mesh.Mesh, srcSpec, dstSpec sharding.Spec) (*Task, error) {
	src, err := sharding.NewPlacement(m, srcSpec, global)
	if err != nil {
		return nil, fmt.Errorf("intramesh: source placement: %v", err)
	}
	dst, err := sharding.NewPlacement(m, dstSpec, global)
	if err != nil {
		return nil, fmt.Errorf("intramesh: destination placement: %v", err)
	}
	t := &Task{Global: global.Clone(), DType: dt, Mesh: m, Src: src, Dst: dst}

	// Merge shard cuts of both specs per dimension, then cross-multiply
	// into slices (the same Appendix B.2 machinery as cross-mesh).
	rank := global.Rank()
	dims := make([][]tensor.Interval, rank)
	for i := 0; i < rank; i++ {
		dims[i] = tensor.IntervalsFromCuts(tensor.MergeCuts(src.Cuts(i), dst.Cuts(i)))
	}
	for _, s := range tensor.CrossProduct(dims) {
		holders := src.HoldersOf(s)
		holderSet := map[int]bool{}
		for _, h := range holders {
			holderSet[h] = true
		}
		var needers []int
		for _, d := range dst.HoldersOf(s) {
			if holderSet[d] {
				t.LocalElements += s.NumElements()
			} else {
				needers = append(needers, d)
			}
		}
		if len(needers) == 0 {
			continue
		}
		t.MovedElements += s.NumElements() * int64(len(needers))
		t.Moves = append(t.Moves, Move{
			Index:   len(t.Moves),
			Slice:   s,
			Holders: holders,
			Needers: needers,
		})
	}
	return t, nil
}

// CollectiveKind classifies which collective primitive would serve the
// conversion in an SPMD runtime (§2.1's all-gather / all-to-all mapping).
func (t *Task) CollectiveKind() string {
	switch {
	case len(t.Moves) == 0:
		return "none"
	case t.Src.Spec.Equal(t.Dst.Spec):
		return "none"
	case allReplicated(t.Dst.Spec):
		return "all-gather"
	case allReplicated(t.Src.Spec):
		return "slice" // replicated -> sharded needs no communication...
	default:
		return "all-to-all"
	}
}

func allReplicated(s sharding.Spec) bool {
	for _, d := range s.Dims {
		if !d.Replicated() {
			return false
		}
	}
	return true
}

// SimResult reports the simulated conversion.
type SimResult struct {
	Makespan      float64
	EffectiveGbps float64
	NumOps        int
}

// Simulate times the conversion with a nearest-holder transfer plan: each
// needer receives its slice from a holder on its own host when one exists
// (NVLink), otherwise from the least-loaded remote holder's host.
func (t *Task) Simulate() (*SimResult, error) {
	net := netsim.NewClusterNet(t.Mesh.Topo)
	c := t.Mesh.Topo
	load := map[int]int64{} // per-sender committed bytes
	seq := 0
	for _, mv := range t.Moves {
		bytes := mv.Slice.NumElements() * t.DType.Size()
		for _, needer := range mv.Needers {
			sender := -1
			// Prefer a holder on the needer's host.
			for _, h := range mv.Holders {
				if c.SameHost(h, needer) {
					sender = h
					break
				}
			}
			if sender < 0 {
				// Least-loaded remote holder.
				var best int64
				for _, h := range mv.Holders {
					if sender < 0 || load[h] < best {
						sender, best = h, load[h]
					}
				}
			}
			load[sender] += bytes
			lbl := netsim.Label{Prefix: "m", Kind: netsim.LabelMove, A: int32(mv.Index), B: int32(needer)}
			if _, err := net.Transfer(lbl, sender, needer, bytes, seq); err != nil {
				return nil, err
			}
			seq++
		}
	}
	makespan, err := net.Run()
	if err != nil {
		return nil, err
	}
	res := &SimResult{Makespan: makespan, NumOps: net.Sim.NumOps()}
	if makespan > 0 {
		res.EffectiveGbps = float64(t.MovedElements*t.DType.Size()) * 8 / makespan / 1e9
	}
	return res, nil
}

// Execute performs the conversion on the data plane: destination buffers
// receive their regions from source buffers (local regions copied from the
// device's own source buffer, moved slices from a holder).
func (t *Task) Execute(srcBufs, dstBufs map[int]*tensor.Buffer) error {
	// Local copies: every destination device first copies the overlap of
	// its own source buffer.
	for _, dr := range t.Dst.DeviceRegions() {
		src, ok := srcBufs[dr.Device]
		if !ok {
			return fmt.Errorf("intramesh: no source buffer for device %d", dr.Device)
		}
		dst, ok := dstBufs[dr.Device]
		if !ok {
			return fmt.Errorf("intramesh: no destination buffer for device %d", dr.Device)
		}
		if overlap, ok := src.Region.Intersect(dr.Region); ok {
			if err := dst.CopyRegion(src, overlap); err != nil {
				return err
			}
		}
	}
	// Moved slices.
	for _, mv := range t.Moves {
		src, ok := srcBufs[mv.Holders[0]]
		if !ok {
			return fmt.Errorf("intramesh: no source buffer for device %d", mv.Holders[0])
		}
		for _, needer := range mv.Needers {
			dst, ok := dstBufs[needer]
			if !ok {
				return fmt.Errorf("intramesh: no destination buffer for device %d", needer)
			}
			if err := dst.CopyRegion(src, mv.Slice); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *Task) String() string {
	return fmt.Sprintf("intramesh %v %s: %s -> %s on %v (%d moves, %s)",
		t.Global, t.DType, t.Src.Spec, t.Dst.Spec, t.Mesh.Devices, len(t.Moves), t.CollectiveKind())
}
