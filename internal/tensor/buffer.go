package tensor

import (
	"fmt"
)

// DType identifies the element type of a tensor. Only the element width
// matters for communication volume; buffers always store float64 values so
// correctness checks are exact.
type DType int

const (
	// Float32 is a 4-byte element (paper's FP32 configurations).
	Float32 DType = iota
	// Float16 is a 2-byte element (paper's mixed-precision configurations).
	Float16
	// Float64 is an 8-byte element.
	Float64
)

// Size returns the width of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float16:
		return 2
	case Float32:
		return 4
	case Float64:
		return 8
	default:
		return 4
	}
}

func (d DType) String() string {
	switch d {
	case Float16:
		return "fp16"
	case Float32:
		return "fp32"
	case Float64:
		return "fp64"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Buffer holds the data of one Region of a global tensor on one device.
// Data is stored row-major over the region's local shape.
type Buffer struct {
	// Global is the shape of the full (unsharded) tensor.
	Global Shape
	// Region is the sub-box of the global tensor this buffer holds.
	Region Region
	// Data holds Region.NumElements() values in row-major order.
	Data []float64
}

// NewBuffer allocates a zeroed buffer covering region of a tensor with the
// given global shape.
func NewBuffer(global Shape, region Region) (*Buffer, error) {
	if len(global) != len(region) {
		return nil, fmt.Errorf("tensor: region rank %d != shape rank %d", len(region), len(global))
	}
	if !global.Region().Contains(region) {
		return nil, fmt.Errorf("tensor: region %v outside global shape %v", region, global)
	}
	return &Buffer{
		Global: global.Clone(),
		Region: region.Clone(),
		Data:   make([]float64, region.NumElements()),
	}, nil
}

// localOffset maps a global coordinate (inside Region) to an index in Data.
func (b *Buffer) localOffset(pt []int) int64 {
	off := int64(0)
	for i, iv := range b.Region {
		off = off*int64(iv.Len()) + int64(pt[i]-iv.Lo)
	}
	return off
}

// At returns the value at a global coordinate. The coordinate must lie
// inside the buffer's region.
func (b *Buffer) At(pt ...int) (float64, error) {
	if !b.Region.ContainsPoint(pt) {
		return 0, fmt.Errorf("tensor: point %v outside region %v", pt, b.Region)
	}
	return b.Data[b.localOffset(pt)], nil
}

// Set writes the value at a global coordinate.
func (b *Buffer) Set(v float64, pt ...int) error {
	if !b.Region.ContainsPoint(pt) {
		return fmt.Errorf("tensor: point %v outside region %v", pt, b.Region)
	}
	b.Data[b.localOffset(pt)] = v
	return nil
}

// FillFunc sets every element to fn(globalCoordinates).
func (b *Buffer) FillFunc(fn func(pt []int) float64) {
	i := 0
	b.Region.ForEachPoint(func(pt []int) {
		b.Data[i] = fn(pt)
		i++
	})
}

// FillLinear fills the buffer with each element's global row-major linear
// index. This is the canonical test pattern: after a resharding, a
// destination buffer is correct iff every element equals its linear index.
func (b *Buffer) FillLinear() {
	strides := b.Global.Strides()
	b.FillFunc(func(pt []int) float64 {
		off := int64(0)
		for i, p := range pt {
			off += int64(p) * strides[i]
		}
		return float64(off)
	})
}

// Bytes returns the size of the buffer in bytes for the given element type.
func (b *Buffer) Bytes(dt DType) int64 {
	return b.Region.NumElements() * dt.Size()
}

// CopyRegion copies the elements of region r (global coordinates) from src
// into b. r must be contained in both buffers' regions.
func (b *Buffer) CopyRegion(src *Buffer, r Region) error {
	if !b.Global.Equal(src.Global) {
		return fmt.Errorf("tensor: buffers belong to different global tensors %v vs %v", b.Global, src.Global)
	}
	if !src.Region.Contains(r) {
		return fmt.Errorf("tensor: source region %v does not contain %v", src.Region, r)
	}
	if !b.Region.Contains(r) {
		return fmt.Errorf("tensor: destination region %v does not contain %v", b.Region, r)
	}
	var err error
	r.ForEachPoint(func(pt []int) {
		b.Data[b.localOffset(pt)] = src.Data[src.localOffset(pt)]
	})
	return err
}

// VerifyLinear checks that every element equals its global row-major linear
// index (the FillLinear pattern). It returns the first mismatching global
// coordinate, or ok=true.
func (b *Buffer) VerifyLinear() (ok bool, badPt []int, got, want float64) {
	strides := b.Global.Strides()
	ok = true
	b.Region.ForEachPoint(func(pt []int) {
		if !ok {
			return
		}
		off := int64(0)
		for i, p := range pt {
			off += int64(p) * strides[i]
		}
		v := b.Data[b.localOffset(pt)]
		if v != float64(off) {
			ok = false
			badPt = append([]int(nil), pt...)
			got, want = v, float64(off)
		}
	})
	return ok, badPt, got, want
}
