package tensor

import (
	"fmt"
	"strings"
)

// Interval is a half-open integer range [Lo, Hi) along one tensor dimension.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of indices in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Empty reports whether the interval contains no indices.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether o is fully inside iv.
func (iv Interval) Contains(o Interval) bool {
	if o.Empty() {
		return true
	}
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Interval{lo, hi}
}

// Overlaps reports whether the two intervals share at least one index.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Intersect(o).Empty()
}

func (iv Interval) String() string { return fmt.Sprintf("[%d:%d)", iv.Lo, iv.Hi) }

// Region is an axis-aligned box: one Interval per tensor dimension.
// Regions are the unit of reasoning in resharding: each device holds a
// Region of the global tensor, and each unit communication task moves one
// Region.
type Region []Interval

// Rank returns the number of dimensions of the region.
func (r Region) Rank() int { return len(r) }

// NumElements returns the number of tensor elements inside the region.
func (r Region) NumElements() int64 {
	n := int64(1)
	for _, iv := range r {
		n *= int64(iv.Len())
	}
	return n
}

// Empty reports whether any dimension of the region is empty.
func (r Region) Empty() bool {
	for _, iv := range r {
		if iv.Empty() {
			return true
		}
	}
	return len(r) == 0
}

// Contains reports whether o fits entirely inside r.
func (r Region) Contains(o Region) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Contains(o[i]) {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the given coordinates lie inside the region.
func (r Region) ContainsPoint(pt []int) bool {
	if len(pt) != len(r) {
		return false
	}
	for i, iv := range r {
		if pt[i] < iv.Lo || pt[i] >= iv.Hi {
			return false
		}
	}
	return true
}

// Intersect returns the overlap box of two regions. The second return is
// false when the regions have different ranks or do not overlap.
func (r Region) Intersect(o Region) (Region, bool) {
	if len(r) != len(o) {
		return nil, false
	}
	out := make(Region, len(r))
	for i := range r {
		out[i] = r[i].Intersect(o[i])
		if out[i].Empty() {
			return nil, false
		}
	}
	return out, true
}

// Overlaps reports whether two regions share at least one element.
func (r Region) Overlaps(o Region) bool {
	_, ok := r.Intersect(o)
	return ok
}

// Equal reports whether two regions are identical boxes.
func (r Region) Equal(o Region) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// Shape returns the extent of the region along each dimension.
func (r Region) Shape() Shape {
	s := make(Shape, len(r))
	for i, iv := range r {
		s[i] = iv.Len()
	}
	return s
}

// Clone returns a copy of the region.
func (r Region) Clone() Region {
	c := make(Region, len(r))
	copy(c, r)
	return c
}

func (r Region) String() string {
	parts := make([]string, len(r))
	for i, iv := range r {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "x")
}

// ForEachPoint invokes fn for every coordinate inside the region, in
// row-major order. fn receives a reused coordinate slice; callers must copy
// it if they retain it.
func (r Region) ForEachPoint(fn func(pt []int)) {
	if r.Empty() {
		return
	}
	pt := make([]int, len(r))
	for i, iv := range r {
		pt[i] = iv.Lo
	}
	for {
		fn(pt)
		// Row-major increment: bump the last dimension first.
		d := len(r) - 1
		for d >= 0 {
			pt[d]++
			if pt[d] < r[d].Hi {
				break
			}
			pt[d] = r[d].Lo
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Box builds a Region from flat (lo, hi) pairs: Box(0,2, 1,4) is the 2-D
// region [0:2)x[1:4). It panics on an odd number of arguments; it is meant
// for literals in tests and examples.
func Box(bounds ...int) Region {
	if len(bounds)%2 != 0 {
		panic("tensor: Box requires (lo, hi) pairs")
	}
	r := make(Region, len(bounds)/2)
	for i := range r {
		r[i] = Interval{Lo: bounds[2*i], Hi: bounds[2*i+1]}
	}
	return r
}
