package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	if Float16.Size() != 2 || Float32.Size() != 4 || Float64.Size() != 8 {
		t.Error("element widths wrong")
	}
	if Float16.String() != "fp16" || Float32.String() != "fp32" || Float64.String() != "fp64" {
		t.Error("dtype names wrong")
	}
	if DType(99).Size() != 4 {
		t.Error("unknown dtype should default to 4 bytes")
	}
}

func TestNewBufferValidation(t *testing.T) {
	g := MustShape(4, 4)
	if _, err := NewBuffer(g, Region{{0, 2}}); err == nil {
		t.Error("rank mismatch should fail")
	}
	if _, err := NewBuffer(g, Region{{0, 5}, {0, 4}}); err == nil {
		t.Error("region outside shape should fail")
	}
	b, err := NewBuffer(g, Region{{1, 3}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Data) != 4 {
		t.Errorf("allocated %d elements, want 4", len(b.Data))
	}
}

func TestBufferAtSet(t *testing.T) {
	b, _ := NewBuffer(MustShape(4, 4), Region{{1, 3}, {2, 4}})
	if err := b.Set(7.5, 2, 3); err != nil {
		t.Fatal(err)
	}
	v, err := b.At(2, 3)
	if err != nil || v != 7.5 {
		t.Errorf("At = %v, %v", v, err)
	}
	if _, err := b.At(0, 0); err == nil {
		t.Error("At outside region should fail")
	}
	if err := b.Set(1, 3, 3); err == nil {
		t.Error("Set outside region should fail")
	}
}

func TestFillLinearAndVerify(t *testing.T) {
	b, _ := NewBuffer(MustShape(4, 4), Region{{1, 3}, {0, 4}})
	b.FillLinear()
	// Element (1,0) has linear index 4, (2,3) has 11.
	if v, _ := b.At(1, 0); v != 4 {
		t.Errorf("At(1,0) = %v, want 4", v)
	}
	if v, _ := b.At(2, 3); v != 11 {
		t.Errorf("At(2,3) = %v, want 11", v)
	}
	if ok, _, _, _ := b.VerifyLinear(); !ok {
		t.Error("freshly FillLinear'd buffer should verify")
	}
	b.Set(99, 2, 2)
	ok, pt, got, want := b.VerifyLinear()
	if ok {
		t.Error("corrupted buffer should not verify")
	}
	if len(pt) != 2 || pt[0] != 2 || pt[1] != 2 || got != 99 || want != 10 {
		t.Errorf("mismatch report = %v got=%v want=%v", pt, got, want)
	}
}

func TestBufferBytes(t *testing.T) {
	b, _ := NewBuffer(MustShape(8, 8), Region{{0, 4}, {0, 8}})
	if b.Bytes(Float32) != 32*4 {
		t.Errorf("Bytes = %d", b.Bytes(Float32))
	}
	if b.Bytes(Float16) != 32*2 {
		t.Errorf("Bytes fp16 = %d", b.Bytes(Float16))
	}
}

func TestCopyRegion(t *testing.T) {
	g := MustShape(4, 4)
	src, _ := NewBuffer(g, Region{{0, 4}, {0, 2}})
	src.FillLinear()
	dst, _ := NewBuffer(g, Region{{1, 3}, {0, 4}})
	if err := dst.CopyRegion(src, Region{{1, 3}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.At(1, 1); v != 5 {
		t.Errorf("copied value = %v, want 5", v)
	}
	if v, _ := dst.At(2, 0); v != 8 {
		t.Errorf("copied value = %v, want 8", v)
	}
	// Untouched area remains zero.
	if v, _ := dst.At(1, 3); v != 0 {
		t.Errorf("untouched value = %v, want 0", v)
	}
}

func TestCopyRegionErrors(t *testing.T) {
	g := MustShape(4, 4)
	src, _ := NewBuffer(g, Region{{0, 2}, {0, 4}})
	dst, _ := NewBuffer(g, Region{{2, 4}, {0, 4}})
	if err := dst.CopyRegion(src, Region{{0, 1}, {0, 4}}); err == nil {
		t.Error("copying a region outside dst should fail")
	}
	if err := dst.CopyRegion(src, Region{{2, 3}, {0, 4}}); err == nil {
		t.Error("copying a region outside src should fail")
	}
	other, _ := NewBuffer(MustShape(5, 5), Region{{0, 2}, {0, 4}})
	if err := dst.CopyRegion(other, Region{{2, 3}, {0, 4}}); err == nil {
		t.Error("copying across different global tensors should fail")
	}
}

// Property: copying the intersection of two random buffers transfers the
// FillLinear pattern exactly.
func TestCopyRegionPropagatesPattern(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := MustShape(16, 16)
		a := randRegion(r, 2)
		b := randRegion(r, 2)
		src, _ := NewBuffer(g, a)
		src.FillLinear()
		dst, _ := NewBuffer(g, b)
		iv, ok := a.Intersect(b)
		if !ok {
			return true
		}
		if err := dst.CopyRegion(src, iv); err != nil {
			return false
		}
		good := true
		iv.ForEachPoint(func(pt []int) {
			v, _ := dst.At(pt...)
			want := float64(pt[0]*16 + pt[1])
			if v != want {
				good = false
			}
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
