// Package tensor provides the data-plane substrate for cross-mesh
// resharding: N-dimensional shapes, integer intervals and regions
// (axis-aligned boxes), and dense buffers with region-level copy.
//
// The resharding planner reasons about tensors purely through Region
// algebra; the executor moves real bytes between Buffers so that tests can
// verify that every destination device ends up with exactly the data its
// sharding spec requires.
package tensor

import (
	"fmt"
	"strings"
)

// Shape is the extent of each dimension of an N-dimensional tensor.
type Shape []int

// NewShape validates and returns a Shape. All extents must be positive.
func NewShape(dims ...int) (Shape, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("tensor: shape must have at least one dimension")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: dimension %d has non-positive extent %d", i, d)
		}
	}
	s := make(Shape, len(dims))
	copy(s, dims)
	return s, nil
}

// MustShape is NewShape that panics on error; for tests and literals.
func MustShape(dims ...int) Shape {
	s, err := NewShape(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// NumElements returns the total number of elements.
func (s Shape) NumElements() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Strides returns row-major strides for the shape.
func (s Shape) Strides() []int64 {
	st := make([]int64, len(s))
	acc := int64(1)
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= int64(s[i])
	}
	return st
}

// Region returns the full region covering the whole shape.
func (s Shape) Region() Region {
	r := make(Region, len(s))
	for i, d := range s {
		r[i] = Interval{0, d}
	}
	return r
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "(" + strings.Join(parts, ",") + ")"
}
