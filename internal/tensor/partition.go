package tensor

import "fmt"

// PartitionBoundaries returns the k+1 cut points that divide a dimension of
// the given length into k near-even contiguous parts. Part j covers
// [boundaries[j], boundaries[j+1]). Cuts are at floor(j*length/k), so when k
// divides length all parts are equal, and otherwise they differ by at most
// one element (the "tiling/padding" behaviour the paper's broadcast strategy
// handles natively, §5.1.1).
func PartitionBoundaries(length, k int) ([]int, error) {
	if length <= 0 {
		return nil, fmt.Errorf("tensor: non-positive length %d", length)
	}
	if k <= 0 {
		return nil, fmt.Errorf("tensor: non-positive partition count %d", k)
	}
	if k > length {
		return nil, fmt.Errorf("tensor: cannot split length %d into %d non-empty parts", length, k)
	}
	b := make([]int, k+1)
	for j := 0; j <= k; j++ {
		b[j] = j * length / k
	}
	return b, nil
}

// PartitionInterval returns the j-th of k near-even parts of [0, length).
func PartitionInterval(length, k, j int) (Interval, error) {
	if j < 0 || j >= k {
		return Interval{}, fmt.Errorf("tensor: partition index %d out of range [0,%d)", j, k)
	}
	b, err := PartitionBoundaries(length, k)
	if err != nil {
		return Interval{}, err
	}
	return Interval{b[j], b[j+1]}, nil
}

// MergeCuts returns the sorted union of multiple cut-point lists. This is
// step one of the paper's Appendix B.2 decomposition: per-dimension cut
// points from the sender and receiver specs are merged, and the resulting
// intervals cross-multiplied into slices.
func MergeCuts(lists ...[]int) []int {
	seen := map[int]bool{}
	var out []int
	for _, l := range lists {
		for _, c := range l {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	// Insertion sort: cut lists are short (tens of entries).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// IntervalsFromCuts converts sorted cut points {p0 < p1 < ... < pn} into the
// interval list {[p0,p1), [p1,p2), ...}.
func IntervalsFromCuts(cuts []int) []Interval {
	if len(cuts) < 2 {
		return nil
	}
	out := make([]Interval, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		out = append(out, Interval{cuts[i], cuts[i+1]})
	}
	return out
}

// CrossProduct enumerates the cross product of per-dimension interval lists
// as regions, in row-major order.
func CrossProduct(dims [][]Interval) []Region {
	if len(dims) == 0 {
		return nil
	}
	total := 1
	for _, d := range dims {
		total *= len(d)
		if len(d) == 0 {
			return nil
		}
	}
	out := make([]Region, 0, total)
	idx := make([]int, len(dims))
	for {
		r := make(Region, len(dims))
		for i, j := range idx {
			r[i] = dims[i][j]
		}
		out = append(out, r)
		d := len(dims) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(dims[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return out
		}
	}
}
