package tensor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPartitionBoundariesEven(t *testing.T) {
	b, err := PartitionBoundaries(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, []int{0, 2, 4, 6, 8}) {
		t.Errorf("boundaries = %v", b)
	}
}

func TestPartitionBoundariesUneven(t *testing.T) {
	b, err := PartitionBoundaries(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[3] != 10 {
		t.Errorf("boundaries must span [0,len]: %v", b)
	}
	// Parts are 3,3,4 (floor-based), each within one of the others.
	sizes := []int{b[1] - b[0], b[2] - b[1], b[3] - b[2]}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("uneven part size %d out of range: %v", s, b)
		}
	}
}

func TestPartitionBoundariesErrors(t *testing.T) {
	if _, err := PartitionBoundaries(0, 2); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := PartitionBoundaries(4, 0); err == nil {
		t.Error("zero parts should fail")
	}
	if _, err := PartitionBoundaries(2, 4); err == nil {
		t.Error("more parts than elements should fail")
	}
}

func TestPartitionInterval(t *testing.T) {
	iv, err := PartitionInterval(8, 2, 1)
	if err != nil || iv != (Interval{4, 8}) {
		t.Errorf("PartitionInterval = %v, %v", iv, err)
	}
	if _, err := PartitionInterval(8, 2, 2); err == nil {
		t.Error("out-of-range part index should fail")
	}
	if _, err := PartitionInterval(8, 2, -1); err == nil {
		t.Error("negative part index should fail")
	}
}

// Property: partitions are contiguous, non-empty, and cover [0, length).
func TestPartitionBoundariesProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		length := 1 + r.Intn(1000)
		k := 1 + r.Intn(length)
		b, err := PartitionBoundaries(length, k)
		if err != nil {
			return false
		}
		if b[0] != 0 || b[k] != length {
			return false
		}
		for j := 0; j < k; j++ {
			if b[j+1] <= b[j] {
				return false // every part non-empty
			}
			if b[j+1]-b[j] > (length+k-1)/k {
				return false // near-even
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeCuts(t *testing.T) {
	got := MergeCuts([]int{0, 4, 8}, []int{0, 2, 4, 6, 8}, []int{8, 0})
	if !reflect.DeepEqual(got, []int{0, 2, 4, 6, 8}) {
		t.Errorf("MergeCuts = %v", got)
	}
	if MergeCuts() != nil {
		t.Error("MergeCuts() should be nil")
	}
}

func TestIntervalsFromCuts(t *testing.T) {
	got := IntervalsFromCuts([]int{0, 2, 5})
	want := []Interval{{0, 2}, {2, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IntervalsFromCuts = %v", got)
	}
	if IntervalsFromCuts([]int{3}) != nil {
		t.Error("single cut should produce no intervals")
	}
}

func TestCrossProduct(t *testing.T) {
	dims := [][]Interval{
		{{0, 2}, {2, 4}},
		{{0, 3}},
	}
	got := CrossProduct(dims)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if !got[0].Equal(Region{{0, 2}, {0, 3}}) || !got[1].Equal(Region{{2, 4}, {0, 3}}) {
		t.Errorf("CrossProduct = %v", got)
	}
	if CrossProduct(nil) != nil {
		t.Error("empty input should give nil")
	}
	if CrossProduct([][]Interval{{}, {{0, 1}}}) != nil {
		t.Error("dimension with no intervals should give nil")
	}
}

// Property (Appendix B.2): the slices produced by merging sender and
// receiver cuts tile the tensor exactly — they are pairwise disjoint and
// their sizes sum to the tensor size.
func TestSlicesTileTensor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := MustShape(2+r.Intn(30), 2+r.Intn(30))
		dims := make([][]Interval, 2)
		for d := 0; d < 2; d++ {
			k1 := 1 + r.Intn(4)
			k2 := 1 + r.Intn(4)
			if k1 > shape[d] {
				k1 = shape[d]
			}
			if k2 > shape[d] {
				k2 = shape[d]
			}
			c1, _ := PartitionBoundaries(shape[d], k1)
			c2, _ := PartitionBoundaries(shape[d], k2)
			dims[d] = IntervalsFromCuts(MergeCuts(c1, c2))
		}
		slices := CrossProduct(dims)
		total := int64(0)
		for i, s := range slices {
			total += s.NumElements()
			for j := i + 1; j < len(slices); j++ {
				if s.Overlaps(slices[j]) {
					return false
				}
			}
		}
		return total == shape.NumElements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
