package tensor

import (
	"testing"
)

func TestNewShapeValid(t *testing.T) {
	s, err := NewShape(4, 4)
	if err != nil {
		t.Fatalf("NewShape: %v", err)
	}
	if s.Rank() != 2 {
		t.Errorf("Rank = %d, want 2", s.Rank())
	}
	if s.NumElements() != 16 {
		t.Errorf("NumElements = %d, want 16", s.NumElements())
	}
}

func TestNewShapeRejectsEmpty(t *testing.T) {
	if _, err := NewShape(); err == nil {
		t.Error("NewShape() should fail for zero dimensions")
	}
}

func TestNewShapeRejectsNonPositive(t *testing.T) {
	for _, dims := range [][]int{{0}, {-1}, {4, 0}, {4, -2, 3}} {
		if _, err := NewShape(dims...); err == nil {
			t.Errorf("NewShape(%v) should fail", dims)
		}
	}
}

func TestMustShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustShape(0) should panic")
		}
	}()
	MustShape(0)
}

func TestShapeStrides(t *testing.T) {
	s := MustShape(2, 3, 4)
	st := s.Strides()
	want := []int64{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Errorf("Strides()[%d] = %d, want %d", i, st[i], want[i])
		}
	}
}

func TestShapeRegion(t *testing.T) {
	s := MustShape(3, 5)
	r := s.Region()
	if !r.Equal(Region{{0, 3}, {0, 5}}) {
		t.Errorf("Region = %v", r)
	}
	if r.NumElements() != s.NumElements() {
		t.Errorf("full region has %d elements, shape has %d", r.NumElements(), s.NumElements())
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	a := MustShape(2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should equal original")
	}
	b[0] = 9
	if a.Equal(b) {
		t.Error("mutating clone must not affect original")
	}
	if a.Equal(MustShape(2, 3, 1)) {
		t.Error("different ranks must not be equal")
	}
	if a.Equal(MustShape(2, 4)) {
		t.Error("different extents must not be equal")
	}
}

func TestShapeString(t *testing.T) {
	if got := MustShape(4, 4).String(); got != "(4,4)" {
		t.Errorf("String = %q", got)
	}
}

func TestShapeNumElementsLarge(t *testing.T) {
	// 1024*1024*512 must not overflow (the paper's Fig. 6 tensor).
	s := MustShape(1024, 1024, 512)
	if s.NumElements() != 1<<29 {
		t.Errorf("NumElements = %d, want %d", s.NumElements(), 1<<29)
	}
}
