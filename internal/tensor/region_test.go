package tensor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 {
		t.Errorf("Len = %d", iv.Len())
	}
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if !(Interval{3, 3}).Empty() {
		t.Error("zero-length interval should be empty")
	}
	if !(Interval{5, 2}).Empty() {
		t.Error("inverted interval should be empty")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{2, 8}
	cases := []struct {
		o    Interval
		want bool
	}{
		{Interval{2, 8}, true},
		{Interval{3, 5}, true},
		{Interval{1, 5}, false},
		{Interval{5, 9}, false},
		{Interval{4, 4}, true}, // empty is contained everywhere
	}
	for _, c := range cases {
		if got := iv.Contains(c.o); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", iv, c.o, got, c.want)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{Interval{0, 4}, Interval{2, 6}, Interval{2, 4}},
		{Interval{0, 4}, Interval{4, 8}, Interval{4, 4}},
		{Interval{0, 4}, Interval{6, 8}, Interval{6, 6}},
		{Interval{0, 8}, Interval{2, 4}, Interval{2, 4}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Len() != c.want.Len() || (!got.Empty() && got != c.want) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	if (Interval{0, 4}).Overlaps(Interval{4, 8}) {
		t.Error("touching intervals must not overlap")
	}
	if !(Interval{0, 5}).Overlaps(Interval{4, 8}) {
		t.Error("intersecting intervals must overlap")
	}
}

func TestRegionNumElements(t *testing.T) {
	r := Region{{0, 2}, {1, 4}}
	if r.NumElements() != 6 {
		t.Errorf("NumElements = %d, want 6", r.NumElements())
	}
}

func TestRegionEmpty(t *testing.T) {
	if (Region{{0, 2}, {3, 3}}).Empty() == false {
		t.Error("region with empty dim should be empty")
	}
	if (Region{{0, 2}, {0, 1}}).Empty() {
		t.Error("non-empty region reported empty")
	}
	if !(Region{}).Empty() {
		t.Error("rank-0 region treated as non-empty")
	}
}

func TestRegionContainsAndIntersect(t *testing.T) {
	outer := Region{{0, 8}, {0, 8}}
	inner := Region{{2, 4}, {3, 7}}
	if !outer.Contains(inner) {
		t.Error("outer should contain inner")
	}
	if inner.Contains(outer) {
		t.Error("inner must not contain outer")
	}
	got, ok := outer.Intersect(inner)
	if !ok || !got.Equal(inner) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := (Region{{0, 2}}).Intersect(Region{{2, 4}}); ok {
		t.Error("disjoint regions must not intersect")
	}
	if _, ok := (Region{{0, 2}}).Intersect(Region{{0, 2}, {0, 2}}); ok {
		t.Error("rank mismatch must not intersect")
	}
}

func TestRegionContainsPoint(t *testing.T) {
	r := Region{{2, 4}, {0, 3}}
	if !r.ContainsPoint([]int{2, 2}) {
		t.Error("point inside reported outside")
	}
	if r.ContainsPoint([]int{4, 2}) {
		t.Error("Hi bound is exclusive")
	}
	if r.ContainsPoint([]int{2}) {
		t.Error("rank mismatch must be outside")
	}
}

func TestRegionForEachPointOrder(t *testing.T) {
	r := Region{{0, 2}, {1, 3}}
	var got [][]int
	r.ForEachPoint(func(pt []int) {
		got = append(got, append([]int(nil), pt...))
	})
	want := [][]int{{0, 1}, {0, 2}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEachPoint order = %v, want %v", got, want)
	}
}

func TestRegionForEachPointEmpty(t *testing.T) {
	n := 0
	(Region{{0, 2}, {3, 3}}).ForEachPoint(func([]int) { n++ })
	if n != 0 {
		t.Errorf("empty region visited %d points", n)
	}
}

// randRegion generates a non-empty region inside [0,16)^rank.
func randRegion(r *rand.Rand, rank int) Region {
	reg := make(Region, rank)
	for i := range reg {
		lo := r.Intn(15)
		hi := lo + 1 + r.Intn(16-lo-1)
		reg[i] = Interval{lo, hi}
	}
	return reg
}

// Property: intersection is symmetric and contained in both operands.
func TestRegionIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRegion(r, 3), randRegion(r, 3)
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA {
			return false
		}
		if !okAB {
			return !a.Overlaps(b)
		}
		return ab.Equal(ba) && a.Contains(ab) && b.Contains(ab)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: NumElements of intersection = number of points in both regions.
func TestRegionIntersectCountsPoints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRegion(r, 2), randRegion(r, 2)
		count := int64(0)
		a.ForEachPoint(func(pt []int) {
			if b.ContainsPoint(pt) {
				count++
			}
		})
		iv, ok := a.Intersect(b)
		if !ok {
			return count == 0
		}
		return iv.NumElements() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
