package resharding

import (
	"context"
	"fmt"
	"math/rand"

	"alpacomm/internal/mesh"
	"alpacomm/internal/schedule"
	"alpacomm/internal/sharding"
)

// Plan is a scheduled cross-mesh resharding: for every unit task, a chosen
// sender device, and a global launch order.
type Plan struct {
	Task *sharding.Task
	Opts Options
	// SenderOf maps unit-task index to the chosen sender device.
	SenderOf map[int]int
	// Order lists unit-task indices in launch order.
	Order []int
	// HostPlan is the host-level schedule the plan was derived from.
	HostPlan schedule.Plan
	// HostTasks is the Eq. 1-3 problem instance (one entry per unit task).
	HostTasks []schedule.Task
}

// NewPlan schedules a resharding task under the given options. It cannot
// be interrupted; long searches should go through NewPlanContext (or a
// Planner session, which threads its context everywhere).
func NewPlan(task *sharding.Task, opts Options) (*Plan, error) {
	return NewPlanContext(context.Background(), task, opts)
}

// NewPlanContext is NewPlan with cooperative cancellation: the context is
// checked on entry and polled between the ensemble DFS's node-budget
// slices, so cancelling aborts a heavy search within one slice's worth of
// work and returns ctx.Err(). A context that never fires yields a plan
// bit-identical to NewPlan's.
func NewPlanContext(ctx context.Context, task *sharding.Task, opts Options) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if !mesh.SameTopology(task.Src.Mesh.Topo, task.Dst.Mesh.Topo) {
		return nil, fmt.Errorf("resharding: source and destination meshes must share a topology")
	}

	hostTasks := buildHostTasks(task, opts)

	var hostPlan schedule.Plan
	switch opts.Scheduler {
	case SchedNaive:
		hostPlan = schedule.Naive(hostTasks)
	case SchedGreedyLoad:
		hostPlan = schedule.GreedyLoad(hostTasks)
	case SchedLoadBalanceOnly:
		hostPlan = schedule.LoadBalanceOnly(hostTasks)
	case SchedDegraded:
		hostPlan = schedule.GreedyEnsemble(hostTasks)
	case SchedEnsemble:
		rng := rand.New(rand.NewSource(opts.Seed))
		stop := func() bool { return ctx.Err() != nil }
		if opts.DFSNodes > 0 {
			hostPlan = schedule.EnsembleNodesStop(hostTasks, opts.DFSNodes, opts.Trials, rng, stop)
		} else {
			hostPlan = schedule.EnsembleStop(hostTasks, opts.DFSBudget, opts.Trials, rng, stop)
		}
	default:
		return nil, fmt.Errorf("resharding: unknown scheduler %v", opts.Scheduler)
	}
	if err := ctx.Err(); err != nil {
		// The DFS yielded its incumbent early; a cancelled plan must not
		// look like a successful one.
		return nil, err
	}
	if err := schedule.Validate(hostTasks, hostPlan); err != nil {
		return nil, fmt.Errorf("resharding: scheduler produced invalid plan: %v", err)
	}

	senderOf, err := resolveDeviceSenders(task, hostPlan)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Task:      task,
		Opts:      opts,
		SenderOf:  senderOf,
		Order:     hostPlan.Order,
		HostPlan:  hostPlan,
		HostTasks: hostTasks,
	}, nil
}

// buildHostTasks builds the host-level Eq. 1-3 instance of a resharding.
// Task durations estimate the strategy's cross-host cost: one copy per
// receiver host for SendRecv, one copy total for the gather/broadcast
// strategies. On heterogeneous topologies the copy is costed at the
// slowest NIC among the hosts the task can touch, the bandwidth it
// bottlenecks on. Because durations depend only on per-host NIC bandwidth
// (plus inter-host latency for Signal), overlays that degrade only links
// leave the instance unchanged — the property the warm replanner exploits
// to skip the search entirely.
func buildHostTasks(task *sharding.Task, opts Options) []schedule.Task {
	cluster := task.Src.Mesh.Topo
	hostTasks := make([]schedule.Task, len(task.Units))
	for i, u := range task.Units {
		bytes := float64(u.Bytes(task.DType))
		senderHosts := task.SenderHosts(u)
		recvHosts := task.ReceiverHosts(u)
		dur := bytes / minNICBandwidth(cluster, senderHosts, recvHosts)
		if opts.Strategy == SendRecv {
			dur *= float64(len(u.Receivers))
		}
		if opts.Strategy == Signal {
			dur = maxInterLatency(cluster, senderHosts, recvHosts)
		}
		hostTasks[i] = schedule.Task{
			ID:            u.Index,
			SenderHosts:   senderHosts,
			ReceiverHosts: recvHosts,
			Duration:      dur,
		}
	}
	return hostTasks
}

// resolveDeviceSenders maps a host-level schedule onto concrete sender
// devices, spreading intra-host load round-robin over the replicas
// available on each chosen host (in launch order, so the assignment is a
// pure function of the host plan).
func resolveDeviceSenders(task *sharding.Task, hostPlan schedule.Plan) (map[int]int, error) {
	cluster := task.Src.Mesh.Topo
	senderOf := make(map[int]int, len(hostPlan.Order))
	perHostCount := map[int]int{}
	for _, idx := range hostPlan.Order {
		u := task.Units[idx]
		host := hostPlan.Sender[idx]
		var onHost []int
		for _, s := range u.Senders {
			if cluster.HostOf(s) == host {
				onHost = append(onHost, s)
			}
		}
		if len(onHost) == 0 {
			return nil, fmt.Errorf("resharding: unit %d has no sender on chosen host %d", idx, host)
		}
		dev := onHost[perHostCount[host]%len(onHost)]
		perHostCount[host]++
		senderOf[idx] = dev
	}
	return senderOf, nil
}

// minNICBandwidth returns the slowest per-NIC bandwidth among the hosts a
// unit task can touch — the rate its cross-host copy bottlenecks on. On
// homogeneous clusters this is simply the uniform NIC bandwidth.
func minNICBandwidth(t mesh.Topology, senderHosts, recvHosts []int) float64 {
	min := 0.0
	for _, hosts := range [][]int{senderHosts, recvHosts} {
		for _, h := range hosts {
			if bw := t.NICBandwidth(h); min == 0 || bw < min {
				min = bw
			}
		}
	}
	return min
}

// maxInterLatency returns the worst cross-host latency among (sender,
// receiver) host pairs; the Signal strategy's unit cost.
func maxInterLatency(t mesh.Topology, senderHosts, recvHosts []int) float64 {
	max := 0.0
	for _, s := range senderHosts {
		for _, r := range recvHosts {
			if l := t.InterLatency(s, r); l > max {
				max = l
			}
		}
	}
	return max
}

// HostMakespan returns the Eq. 1-3 objective value of the host-level plan,
// before chunk-level simulation.
func (p *Plan) HostMakespan() (float64, error) {
	return schedule.Makespan(p.HostTasks, p.HostPlan)
}

func (p *Plan) String() string {
	return fmt.Sprintf("plan(%s, %s, %d units)", p.Opts.Strategy, p.Opts.Scheduler, len(p.Task.Units))
}
