package resharding

import (
	"fmt"
	"math"
	"math/rand"

	"alpacomm/internal/schedule"
	"alpacomm/internal/sharding"
)

// Plan is a scheduled cross-mesh resharding: for every unit task, a chosen
// sender device, and a global launch order.
type Plan struct {
	Task *sharding.Task
	Opts Options
	// SenderOf maps unit-task index to the chosen sender device.
	SenderOf map[int]int
	// Order lists unit-task indices in launch order.
	Order []int
	// HostPlan is the host-level schedule the plan was derived from.
	HostPlan schedule.Plan
	// HostTasks is the Eq. 1-3 problem instance (one entry per unit task).
	HostTasks []schedule.Task
}

// NewPlan schedules a resharding task under the given options.
func NewPlan(task *sharding.Task, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	if task.Src.Mesh.Cluster != task.Dst.Mesh.Cluster {
		return nil, fmt.Errorf("resharding: source and destination meshes must share a cluster")
	}
	cluster := task.Src.Mesh.Cluster

	// Build the host-level Eq. 1-3 instance. Task durations estimate the
	// strategy's cross-host cost: one copy per receiver host for SendRecv,
	// one copy total for the gather/broadcast strategies.
	hostTasks := make([]schedule.Task, len(task.Units))
	for i, u := range task.Units {
		bytes := float64(u.Bytes(task.DType))
		recvHosts := task.ReceiverHosts(u)
		dur := bytes / cluster.HostBandwidth
		if opts.Strategy == SendRecv {
			dur *= float64(len(u.Receivers))
		}
		if opts.Strategy == Signal {
			dur = cluster.InterHostLatency
		}
		hostTasks[i] = schedule.Task{
			ID:            u.Index,
			SenderHosts:   task.SenderHosts(u),
			ReceiverHosts: recvHosts,
			Duration:      dur,
		}
	}

	var hostPlan schedule.Plan
	switch opts.Scheduler {
	case SchedNaive:
		hostPlan = schedule.Naive(hostTasks)
	case SchedGreedyLoad:
		hostPlan = greedyLoad(hostTasks)
	case SchedLoadBalanceOnly:
		hostPlan = schedule.LoadBalanceOnly(hostTasks)
	case SchedEnsemble:
		rng := rand.New(rand.NewSource(opts.Seed))
		hostPlan = schedule.Ensemble(hostTasks, opts.DFSBudget, opts.Trials, rng)
	default:
		return nil, fmt.Errorf("resharding: unknown scheduler %v", opts.Scheduler)
	}
	if err := schedule.Validate(hostTasks, hostPlan); err != nil {
		return nil, fmt.Errorf("resharding: scheduler produced invalid plan: %v", err)
	}

	// Resolve host-level senders to devices, spreading intra-host load
	// round-robin over the replicas available on the chosen host.
	p := &Plan{
		Task:      task,
		Opts:      opts,
		SenderOf:  map[int]int{},
		Order:     hostPlan.Order,
		HostPlan:  hostPlan,
		HostTasks: hostTasks,
	}
	perHostCount := map[int]int{}
	for _, idx := range hostPlan.Order {
		u := task.Units[idx]
		host := hostPlan.Sender[idx]
		var onHost []int
		for _, s := range u.Senders {
			if cluster.HostOf(s) == host {
				onHost = append(onHost, s)
			}
		}
		if len(onHost) == 0 {
			return nil, fmt.Errorf("resharding: unit %d has no sender on chosen host %d", idx, host)
		}
		dev := onHost[perHostCount[host]%len(onHost)]
		perHostCount[host]++
		p.SenderOf[idx] = dev
	}
	return p, nil
}

// greedyLoad is the baselines' load balancing (§5.1.2): iterate unit tasks
// in order and give each to the candidate sender host with the lowest
// committed load.
func greedyLoad(tasks []schedule.Task) schedule.Plan {
	load := map[int]float64{}
	p := schedule.Plan{Sender: map[int]int{}}
	for _, t := range tasks {
		best, bestLoad := -1, math.Inf(1)
		for _, c := range t.SenderHosts {
			if load[c] < bestLoad || (load[c] == bestLoad && c < best) {
				best, bestLoad = c, load[c]
			}
		}
		p.Sender[t.ID] = best
		load[best] += t.Duration
		p.Order = append(p.Order, t.ID)
	}
	return p
}

// HostMakespan returns the Eq. 1-3 objective value of the host-level plan,
// before chunk-level simulation.
func (p *Plan) HostMakespan() (float64, error) {
	return schedule.Makespan(p.HostTasks, p.HostPlan)
}

func (p *Plan) String() string {
	return fmt.Sprintf("plan(%s, %s, %d units)", p.Opts.Strategy, p.Opts.Scheduler, len(p.Task.Units))
}
