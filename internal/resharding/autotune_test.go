package resharding

import (
	"reflect"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// autotuneTask builds a two-host resharding with several unit tasks so the
// schedulers have real choices to make.
func autotuneTask(t *testing.T, c mesh.Topology, srcFirst, dstFirst int) *sharding.Task {
	t.Helper()
	src, err := mesh.NewMesh(c, []int{2, 2}, contiguous(srcFirst, 4))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := mesh.NewMesh(c, []int{2, 2}, contiguous(dstFirst, 4))
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func contiguous(first, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = first + i
	}
	return out
}

// TestAutotuneDeterministic pins the issue's requirement: the same seed
// yields the identical winning plan across runs and worker-pool sizes.
func TestAutotuneDeterministic(t *testing.T) {
	c := microCluster(2)
	var first *AutotuneResult
	for _, workers := range []int{1, 2, 7, 16} {
		task := autotuneTask(t, c, 0, 4)
		res, err := Autotune(task, AutotuneOptions{
			Base:    Options{Seed: 42},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.BestIndex != first.BestIndex {
			t.Errorf("workers=%d: best candidate %d, want %d", workers, res.BestIndex, first.BestIndex)
		}
		if res.BestSim.Makespan != first.BestSim.Makespan {
			t.Errorf("workers=%d: makespan %g, want %g", workers, res.BestSim.Makespan, first.BestSim.Makespan)
		}
		if !reflect.DeepEqual(res.Best.Order, first.Best.Order) {
			t.Errorf("workers=%d: launch order %v, want %v", workers, res.Best.Order, first.Best.Order)
		}
		if !reflect.DeepEqual(res.Best.SenderOf, first.Best.SenderOf) {
			t.Errorf("workers=%d: senders %v, want %v", workers, res.Best.SenderOf, first.Best.SenderOf)
		}
		if !reflect.DeepEqual(res.Trials, first.Trials) {
			t.Errorf("workers=%d: trial table differs", workers)
		}
	}
}

// TestAutotuneWinnerIsMinimum: the winner must not lose to any trial, and
// ties must resolve to the earliest grid position.
func TestAutotuneWinnerIsMinimum(t *testing.T) {
	c := microCluster(2)
	res, err := Autotune(autotuneTask(t, c, 0, 4), AutotuneOptions{Base: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(DefaultAutotuneGrid()) {
		t.Fatalf("trials = %d, want full grid %d", len(res.Trials), len(DefaultAutotuneGrid()))
	}
	for i, tr := range res.Trials {
		if tr.Err != "" {
			t.Errorf("candidate %v failed: %s", tr.Candidate, tr.Err)
			continue
		}
		if tr.Makespan < res.BestSim.Makespan {
			t.Errorf("candidate %d (%v) beats the declared winner: %g < %g",
				i, tr.Candidate, tr.Makespan, res.BestSim.Makespan)
		}
		if tr.Makespan == res.BestSim.Makespan && i < res.BestIndex {
			t.Errorf("tie at %g must go to grid position %d, winner is %d", tr.Makespan, i, res.BestIndex)
		}
	}
}

// TestAutotuneCustomGrid: a restricted grid only evaluates its candidates.
func TestAutotuneCustomGrid(t *testing.T) {
	c := microCluster(2)
	grid := []AutotuneCandidate{
		{Strategy: SendRecv, Scheduler: SchedNaive},
		{Strategy: Broadcast, Scheduler: SchedEnsemble},
	}
	res, err := Autotune(autotuneTask(t, c, 0, 4), AutotuneOptions{
		Base:       Options{Seed: 1},
		Candidates: grid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 2 {
		t.Fatalf("trials = %d, want 2", len(res.Trials))
	}
	// Broadcast + ensemble is the paper's configuration; it must beat naive
	// send/recv on a one-to-many-heavy boundary.
	if res.BestIndex != 1 {
		t.Errorf("best = %v, want broadcast+ensemble", res.Trials[res.BestIndex].Candidate)
	}
	if _, err := Autotune(autotuneTask(t, c, 0, 4), AutotuneOptions{Candidates: []AutotuneCandidate{}}); err == nil {
		t.Error("empty candidate grid should fail")
	}
}

// TestAutotuneSharedCache: autotuning two congruent boundaries through one
// cache plans the grid once and serves the second boundary from memory.
func TestAutotuneSharedCache(t *testing.T) {
	c := microCluster(4)
	cache := NewPlanCache()
	gridSize := len(DefaultAutotuneGrid())

	r1, err := Autotune(autotuneTask(t, c, 0, 4), AutotuneOptions{Base: Options{Seed: 9}, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != gridSize || st.Hits != 0 {
		t.Fatalf("first sweep: stats = %+v, want %d misses", st, gridSize)
	}

	// Hosts 2->3 instead of 0->1: structurally identical, translated.
	r2, err := Autotune(autotuneTask(t, c, 8, 12), AutotuneOptions{Base: Options{Seed: 9}, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != gridSize || st.Hits != gridSize {
		t.Errorf("second sweep: stats = %+v, want %d hits and no new misses", st, gridSize)
	}
	if r1.BestIndex != r2.BestIndex || r1.BestSim.Makespan != r2.BestSim.Makespan {
		t.Errorf("congruent boundaries disagree: (%d, %g) vs (%d, %g)",
			r1.BestIndex, r1.BestSim.Makespan, r2.BestIndex, r2.BestSim.Makespan)
	}
}

// TestDeriveSeedStreams: candidates must not share RNG streams, and the
// derivation must be stable.
func TestDeriveSeedStreams(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := deriveSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at candidate %d", i)
		}
		seen[s] = true
		if s != deriveSeed(7, i) {
			t.Fatal("deriveSeed must be pure")
		}
	}
}
