package resharding

import (
	"context"
	"fmt"
	"sync/atomic"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
)

// Planner is a planning session: one object owning everything the paper's
// workflow threads by hand — the topology the session plans against, the
// translation-canonical plan cache, the separate autotune candidate cache,
// the strategy x scheduler grid, the worker budget and the session's
// default planning options. Every entry point takes a context.Context and
// honors it end to end: cancellation is checked between autotune
// candidates, polled inside the ensemble DFS between node-budget slices,
// and observed by coalesced cache waiters, so a deadline or a disconnected
// caller aborts queued grid searches instead of riding them out.
//
// The zero-config session (NewPlanner()) owns a private unbounded plan
// cache and a private autotune cache; long-lived services bound both with
// WithLRUCache or share caches across sessions with WithCache /
// WithAutotuneCache. A Planner is safe for concurrent use.
type Planner struct {
	topo          mesh.Topology
	cache         *PlanCache
	autotuneCache *PlanCache
	grid          []AutotuneCandidate
	workers       int
	defaults      Options
	// faults, when non-empty, is the session-wide degradation overlay:
	// every task planned through the session is rebound to a mesh.Faulted
	// wrap of its topology first. See WithFaults.
	faults mesh.FaultSet
	// noTrace flips the session's caches to trace-free simulation at
	// construction; see WithTraceFreeSim.
	noTrace bool
	// replans counts how the session's replan steps were served; see
	// ReplanStats.
	replans replanCounters
}

// ReplanStats reports how a session's replan-on-churn steps were served:
// target-key cache hits (including empty fault deltas and heals back to an
// overlay already planned), each warm mode of WarmReplanContext, and cold
// replans that found no incumbent to warm from.
type ReplanStats struct {
	// CacheHits is replan steps whose target overlay was already cached.
	CacheHits int64 `json:"cache_hits"`
	// WarmIdentity is warm replans that proved the host-level instance
	// unchanged and returned the rebound incumbent without searching.
	WarmIdentity int64 `json:"warm_identity"`
	// WarmSearch is warm replans served by the pinned warm-started search.
	WarmSearch int64 `json:"warm_search"`
	// WarmRejected is warm searches whose plan re-simulated worse than the
	// rebound incumbent, which was served instead (the acceptance rule).
	WarmRejected int64 `json:"warm_rejected"`
	// WarmInvalid is warm attempts whose incumbent rebound as invalid,
	// falling back to a cold plan.
	WarmInvalid int64 `json:"warm_invalid"`
	// Cold is replan steps with no cached incumbent to warm from.
	Cold int64 `json:"cold"`
}

// replanCounters is the atomic backing store of ReplanStats.
type replanCounters struct {
	hits, identity, search, rejected, invalid, cold atomic.Int64
}

func (c *replanCounters) note(info WarmInfo) {
	switch info.Mode {
	case WarmIdentity:
		c.identity.Add(1)
	case WarmSearch:
		c.search.Add(1)
	case WarmIncumbent:
		c.rejected.Add(1)
	default:
		c.invalid.Add(1)
	}
}

// ReplanStats snapshots the session's replan counters.
func (p *Planner) ReplanStats() ReplanStats {
	return ReplanStats{
		CacheHits:    p.replans.hits.Load(),
		WarmIdentity: p.replans.identity.Load(),
		WarmSearch:   p.replans.search.Load(),
		WarmRejected: p.replans.rejected.Load(),
		WarmInvalid:  p.replans.invalid.Load(),
		Cold:         p.replans.cold.Load(),
	}
}

// PlannerOption configures a Planner at construction.
type PlannerOption func(*Planner)

// WithTopology pins the session to one hardware topology: every task
// planned through the session must live on it (mesh.SameTopology), turning
// a cross-session mix-up into an immediate error instead of a silently
// wrong cache key.
func WithTopology(t mesh.Topology) PlannerOption {
	return func(p *Planner) { p.topo = t }
}

// WithCache supplies the session's plan cache (shared caches let congruent
// boundaries reuse plans across sessions). Nil is ignored.
func WithCache(c *PlanCache) PlannerOption {
	return func(p *Planner) {
		if c != nil {
			p.cache = c
		}
	}
}

// WithLRUCache bounds the session's plan cache to n entries with
// least-recently-used eviction (n <= 0 means unbounded).
func WithLRUCache(n int) PlannerOption {
	return func(p *Planner) { p.cache = NewLRUPlanCache(n) }
}

// WithAutotuneCache supplies the cache memoizing autotune candidate plans.
// It is separate from the plan cache by default so a grid search's ~20
// derived-seed entries cannot evict the hot plan working set; pass the
// session's plan cache here to deliberately share one pool. Nil is
// ignored.
func WithAutotuneCache(c *PlanCache) PlannerOption {
	return func(p *Planner) {
		if c != nil {
			p.autotuneCache = c
		}
	}
}

// WithAutotuneGrid replaces the candidate grid Autotune searches; nil or
// empty means DefaultAutotuneGrid.
func WithAutotuneGrid(grid []AutotuneCandidate) PlannerOption {
	return func(p *Planner) { p.grid = grid }
}

// WithParallelism bounds the session's autotune fan-out (0 = GOMAXPROCS).
// Results are identical for every worker count.
func WithParallelism(workers int) PlannerOption {
	return func(p *Planner) { p.workers = workers }
}

// WithFaults overlays a deterministic degradation (mesh.FaultSet) on
// every task planned through the session: before planning, the task is
// rebound to a mesh.Faulted wrap of its own topology, so netsim costs,
// plans and cache keys all reflect the degraded fabric. The overlay is
// folded into the topology fingerprint, so a session with faults and a
// healthy session sharing one cache never share entries. An empty fault
// set is a no-op. Overlay validation (host ranges, detour existence)
// happens per plan call, against the task's topology.
func WithFaults(fs mesh.FaultSet) PlannerOption {
	return func(p *Planner) { p.faults = fs }
}

// WithTraceFreeSim makes the session's caches simulate new entries with
// Plan.SimulateNoTrace: timing fields are identical to a full simulation,
// but SimResult.Events and SimResult.Utilization are nil. Serving layers
// use this — responses carry makespans, never traces, and rendering the
// per-op event timeline dominates a cache fill's allocations. The switch
// applies to whatever caches the session ends up with, including ones
// supplied via WithCache/WithAutotuneCache/WithLRUCache.
func WithTraceFreeSim() PlannerOption {
	return func(p *Planner) { p.noTrace = true }
}

// WithDefaultPlanOptions sets the options a call with a zero Options value
// plans under (strategy, scheduler, chunking, budgets, seed).
//
// Note the sentinel collision: the zero Options value is also the literal
// SendRecv+SchedNaive configuration, so a session with defaults set cannot
// receive that exact request as a zero value — it would be read as "use
// the session defaults". To request the send-recv/naive baseline through
// such a session, make the value non-zero (e.g. set Seed or Trials
// explicitly); sessions without defaults are unaffected.
func WithDefaultPlanOptions(o Options) PlannerOption {
	return func(p *Planner) { p.defaults = o }
}

// NewPlanner builds a session from the options; see Planner for defaults.
func NewPlanner(opts ...PlannerOption) *Planner {
	p := &Planner{}
	for _, o := range opts {
		o(p)
	}
	if p.cache == nil {
		p.cache = NewPlanCache()
	}
	if p.autotuneCache == nil {
		p.autotuneCache = NewPlanCache()
	}
	if p.noTrace {
		p.cache.SetSimulateNoTrace(true)
		p.autotuneCache.SetSimulateNoTrace(true)
	}
	return p
}

// Cache returns the session's plan cache (e.g. to pre-warm or inspect it).
func (p *Planner) Cache() *PlanCache { return p.cache }

// AutotuneCache returns the cache holding autotune candidate plans.
func (p *Planner) AutotuneCache() *PlanCache { return p.autotuneCache }

// Topology returns the session's pinned topology, nil when unpinned.
func (p *Planner) Topology() mesh.Topology { return p.topo }

// Faults returns the session-wide degradation overlay (empty for a
// healthy session).
func (p *Planner) Faults() mesh.FaultSet { return p.faults }

// ResolveOptions returns the fully defaulted options a per-call value
// plans under: a zero value means the session's defaults, and package
// defaults fill whatever is still unset. CacheKey(task,
// ResolveOptions(opts)) is the canonical key a session call uses.
func (p *Planner) ResolveOptions(opts Options) Options {
	if opts == (Options{}) {
		opts = p.defaults
	}
	return opts.withDefaults()
}

// resolve applies ResolveOptions and validates the task against the
// pinned topology. The check is structural (same instance or same
// fingerprint — SameTopology covers both), so equal topologies built
// independently still share the session — which is exactly when the
// translation-canonical cache keys remain valid.
func (p *Planner) resolve(task *sharding.Task, opts Options) (Options, error) {
	if task == nil {
		return opts, fmt.Errorf("resharding: planner: nil task")
	}
	if p.topo != nil && !mesh.SameTopology(task.Src.Mesh.Topo, p.topo) {
		return opts, fmt.Errorf("resharding: planner: task topology differs from the session's")
	}
	return p.ResolveOptions(opts), nil
}

// degradeTask rebinds the task to a mesh.Faulted overlay of its own
// topology. An empty fault set returns the task unchanged — the identity
// that keeps healthy keys healthy. Overlays stack: a task already living
// on an overlay is wrapped again.
func degradeTask(task *sharding.Task, fs mesh.FaultSet) (*sharding.Task, error) {
	if fs.Empty() {
		return task, nil
	}
	ft, err := mesh.NewFaulted(task.Src.Mesh.Topo, fs)
	if err != nil {
		return nil, fmt.Errorf("resharding: fault overlay: %w", err)
	}
	degraded, err := task.OnTopology(ft)
	if err != nil {
		return nil, fmt.Errorf("resharding: fault overlay: %w", err)
	}
	return degraded, nil
}

// Plan returns the session's plan and simulation for the task under the
// options (zero opts = the session defaults), serving congruent reshardings
// from the session cache. On a translated cache hit the plan's devices
// belong to the first congruent task planned — see PlanCache.
func (p *Planner) Plan(ctx context.Context, task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	opts, err := p.resolve(task, opts)
	if err != nil {
		return nil, nil, err
	}
	if task, err = degradeTask(task, p.faults); err != nil {
		return nil, nil, err
	}
	return p.cache.PlanAndSimulateKeyedContext(ctx, CacheKey(task, opts), task, opts)
}

// ReplanDegraded re-plans a (possibly cached) boundary against a fault
// overlay without rebuilding anything: the task — which may already be
// planned and cached healthy through this session — is rebound to a
// mesh.Faulted wrap of its own topology and planned through the same
// session cache. The overlay is part of the cache key (host fingerprints
// and pairwise fabric properties change under it), so degraded plans
// partition away from healthy ones automatically — each distinct overlay
// a churn timeline visits gets its own CacheKey, re-planning the same
// overlay twice is a cache hit, and healing back to an earlier FaultSet
// (including the empty one) hits that earlier entry byte-identically. The
// given fault set applies instead of any session-wide WithFaults overlay;
// an empty fault set degrades nothing and is byte-identical to Plan.
//
// Replanning is warm when the session already holds the healthy plan:
// ReplanDegraded is ReplanDegradedFrom with an empty "from" overlay.
func (p *Planner) ReplanDegraded(ctx context.Context, task *sharding.Task, opts Options, fs mesh.FaultSet) (*Plan, *SimResult, error) {
	return p.ReplanDegradedFrom(ctx, task, opts, mesh.FaultSet{}, fs)
}

// ReplanDegradedFrom is the churn-timeline step: re-plan the boundary onto
// overlay "to", warm-started from the session's cached plan for overlay
// "from" (typically the timeline's previous step). When the target
// overlay's plan is already cached it is returned as-is — so an empty
// fault delta costs one lookup and returns the cached plan byte-identical,
// with no search at all. On a miss with a cached "from"-incumbent, the
// fill runs WarmReplanContext (impact diff, pinned warm-started DFS,
// re-simulation acceptance); without one it plans cold. Either way the
// result lands in the session cache under the target overlay's own key.
func (p *Planner) ReplanDegradedFrom(ctx context.Context, task *sharding.Task, opts Options, from, to mesh.FaultSet) (*Plan, *SimResult, error) {
	opts, err := p.resolve(task, opts)
	if err != nil {
		return nil, nil, err
	}
	toTask, err := degradeTask(task, to)
	if err != nil {
		return nil, nil, err
	}
	fromTask, err := degradeTask(task, from)
	if err != nil {
		return nil, nil, err
	}
	return p.replanKeyed(ctx, CacheKey(toTask, opts), toTask, opts, CacheKey(fromTask, opts), fromTask)
}

// replanKeyed serves one replan step given both canonical keys: target
// fast path first, then a warm or cold fill under the target key.
func (p *Planner) replanKeyed(ctx context.Context, key string, task *sharding.Task, opts Options, fromKey string, fromTask *sharding.Task) (*Plan, *SimResult, error) {
	if plan, sim, ok := p.cache.LookupKeyed(key); ok {
		p.replans.hits.Add(1)
		return plan, sim, nil
	}
	if fromKey != key {
		if incumbent, _, ok := p.cache.LookupKeyed(fromKey); ok {
			return p.cache.PlanAndSimulateKeyedFillContext(ctx, key, task, opts, func(ctx context.Context) (*Plan, *SimResult, error) {
				plan, sim, info, err := WarmReplanContext(ctx, task, opts, fromTask, incumbent)
				if err == nil {
					p.replans.note(info)
				}
				return plan, sim, err
			})
		}
	}
	p.replans.cold.Add(1)
	return p.cache.PlanAndSimulateKeyedContext(ctx, key, task, opts)
}

// TaskKey returns the canonical cache key a session call plans the task
// under — options resolved and the session's WithFaults overlay applied —
// plus the (possibly degraded) task the key describes. This is the key
// PlanKeyed expects.
func (p *Planner) TaskKey(task *sharding.Task, opts Options) (string, *sharding.Task, error) {
	opts, err := p.resolve(task, opts)
	if err != nil {
		return "", nil, err
	}
	if task, err = degradeTask(task, p.faults); err != nil {
		return "", nil, err
	}
	return CacheKey(task, opts), task, nil
}

// PlanKeyed is Plan for callers that already hold the canonical
// CacheKey(task, opts) of defaulted options — e.g. a server that rendered
// it once for request coalescing. On a session with a WithFaults overlay
// the task is rebound to the overlay first and the supplied key is
// recomputed for the degraded task (use TaskKey to obtain it up front),
// so a healthy key can never alias a degraded computation.
func (p *Planner) PlanKeyed(ctx context.Context, key string, task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	if !p.faults.Empty() {
		degraded, err := degradeTask(task, p.faults)
		if err != nil {
			return nil, nil, err
		}
		task = degraded
		key = CacheKey(task, opts)
	}
	return p.cache.PlanAndSimulateKeyedContext(ctx, key, task, opts)
}

// PlanKeyedWarm is PlanKeyed for a degraded request whose healthy twin the
// caller also holds: fromKey/fromTask name the same boundary on the
// overlay being replanned away from (for serving, the fault-free parse of
// the request). A cached plan under fromKey warm-starts the fill exactly
// as ReplanDegradedFrom does; otherwise the call degenerates to PlanKeyed.
// Sessions with their own WithFaults overlay fall back to PlanKeyed — the
// session overlay already owns the keying there.
func (p *Planner) PlanKeyedWarm(ctx context.Context, key string, task *sharding.Task, opts Options, fromKey string, fromTask *sharding.Task) (*Plan, *SimResult, error) {
	if !p.faults.Empty() || fromTask == nil || fromKey == "" {
		return p.PlanKeyed(ctx, key, task, opts)
	}
	return p.replanKeyed(ctx, key, task, opts, fromKey, fromTask)
}

// Simulate returns the simulated timing of the task under the options,
// planning it only if no congruent resharding is cached.
func (p *Planner) Simulate(ctx context.Context, task *sharding.Task, opts Options) (*SimResult, error) {
	_, sim, err := p.Plan(ctx, task, opts)
	return sim, err
}

// Autotune searches the session's candidate grid for the fastest plan of
// the task, fanning out over the session's worker budget and memoizing
// candidate plans in the session's autotune cache — so the congruent
// boundaries of a pipeline cost one grid sweep total. base options follow
// Plan's zero-value rule.
func (p *Planner) Autotune(ctx context.Context, task *sharding.Task, base Options) (*AutotuneResult, error) {
	return p.AutotuneWorkers(ctx, task, base, p.workers)
}

// AutotuneWorkers is Autotune with a per-call worker override (<= 0 means
// the session's parallelism); the result is identical for every worker
// count.
func (p *Planner) AutotuneWorkers(ctx context.Context, task *sharding.Task, base Options, workers int) (*AutotuneResult, error) {
	base, err := p.resolve(task, base)
	if err != nil {
		return nil, err
	}
	if task, err = degradeTask(task, p.faults); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = p.workers
	}
	return AutotuneContext(ctx, task, AutotuneOptions{
		Base:       base,
		Candidates: p.grid,
		Workers:    workers,
		Cache:      p.autotuneCache,
	})
}
