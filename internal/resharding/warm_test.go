package resharding

import (
	"context"
	"reflect"
	"testing"

	"alpacomm/internal/mesh"
)

// planEqual reports whether two plans choose the same senders in the same
// launch order — the byte-level identity the wire format serializes.
func planEqual(a, b *Plan) bool {
	return reflect.DeepEqual(a.SenderOf, b.SenderOf) && reflect.DeepEqual(a.Order, b.Order)
}

// TestReplanEmptyDeltaReturnsCachedPlan: a replan step whose fault delta
// is empty (same overlay as the cached plan) must return the cached entry
// itself — the same pointer, so provably byte-identical and search-free —
// and count as a cache hit, not a warm or cold fill.
func TestReplanEmptyDeltaReturnsCachedPlan(t *testing.T) {
	topo := mesh.AWSP3Cluster(2)
	task := degradedBoundary(t, topo)
	p := NewPlanner(WithTopology(topo))
	ctx := context.Background()

	healthy, _, err := p.Plan(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := p.ReplanDegraded(ctx, task, degradedTestOpts, mesh.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if again != healthy {
		t.Error("empty-delta replan did not return the cached healthy plan pointer")
	}
	fs := mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 1, NICScale: 0.5}}}
	deg, _, err := p.ReplanDegraded(ctx, task, degradedTestOpts, fs)
	if err != nil {
		t.Fatal(err)
	}
	degAgain, _, err := p.ReplanDegradedFrom(ctx, task, degradedTestOpts, fs, fs)
	if err != nil {
		t.Fatal(err)
	}
	if degAgain != deg {
		t.Error("empty-delta degraded replan did not return the cached degraded plan pointer")
	}
	stats := p.ReplanStats()
	if stats.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (one empty-delta step per overlay)", stats.CacheHits)
	}
	if stats.Cold != 0 {
		t.Errorf("cold replans = %d, want 0", stats.Cold)
	}
}

// TestWarmReplanMatchesColdOnFaultScenarios runs every registry fault
// scenario as one warm replan step and checks the warm contract against a
// cold search on the same degraded task: link-only overlays (which never
// change the host-level instance) must reproduce the cold plan exactly in
// identity mode with no simulation; host overlays must re-simulate no
// worse than the rebound incumbent (the acceptance rule).
func TestWarmReplanMatchesColdOnFaultScenarios(t *testing.T) {
	reg := mesh.DefaultRegistry()
	topo := mesh.AWSP3Cluster(4)
	task := degradedBoundary(t, topo)
	ctx := context.Background()

	healthy, err := NewPlanContext(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, scenario := range reg.FaultScenarioNames() {
		fs, err := reg.BuildFaultScenario(scenario, topo)
		if err != nil {
			t.Fatal(err)
		}
		degTask, err := task.OnTopology(mesh.MustFaulted(topo, fs))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewPlanContext(ctx, degTask, degradedTestOpts)
		if err != nil {
			t.Fatal(err)
		}
		coldSim, err := cold.SimulateNoTrace()
		if err != nil {
			t.Fatal(err)
		}
		warm, warmSim, info, err := WarmReplanContext(ctx, degTask, degradedTestOpts, task, healthy)
		if err != nil {
			t.Fatal(err)
		}
		switch info.Mode {
		case WarmIdentity:
			if info.ImpactedUnits != 0 {
				t.Errorf("%s: identity mode with %d impacted units", scenario, info.ImpactedUnits)
			}
			if warmSim != nil {
				t.Errorf("%s: identity mode returned a simulation; the contract is nil", scenario)
			}
			if !planEqual(warm, cold) {
				t.Errorf("%s: identity-mode warm plan differs from the cold plan", scenario)
			}
		case WarmSearch, WarmIncumbent:
			if info.ImpactedUnits == 0 {
				t.Errorf("%s: search ran with no impacted units", scenario)
			}
			if warmSim == nil {
				t.Fatalf("%s: search mode returned no acceptance simulation", scenario)
			}
			if warmSim.Makespan > info.IncumbentMakespan {
				t.Errorf("%s: warm makespan %.9f worse than rebound incumbent %.9f",
					scenario, warmSim.Makespan, info.IncumbentMakespan)
			}
		default:
			t.Errorf("%s: unexpected warm mode %q", scenario, info.Mode)
		}
		// Universal: whatever mode served the step, the warm plan must never
		// be worse than what the cold search found.
		sim := warmSim
		if sim == nil {
			if sim, err = warm.SimulateNoTrace(); err != nil {
				t.Fatal(err)
			}
		}
		if sim.Makespan > coldSim.Makespan+1e-12 {
			t.Errorf("%s: warm makespan %.9f worse than cold %.9f (mode %s)",
				scenario, sim.Makespan, coldSim.Makespan, info.Mode)
		}
	}
}

// TestWarmReplanColdFallbacks: every path without a usable incumbent must
// fall back to a plan bit-identical to cold planning, reported as
// Mode == WarmCold with a nil simulation.
func TestWarmReplanColdFallbacks(t *testing.T) {
	topo := mesh.AWSP3Cluster(4)
	task := degradedBoundary(t, topo)
	ctx := context.Background()
	fs := mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 0, NICScale: 0.5}}}
	degTask, err := task.OnTopology(mesh.MustFaulted(topo, fs))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewPlanContext(ctx, degTask, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewPlanContext(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	naive := degradedTestOpts
	naive.Scheduler = SchedNaive
	for name, call := range map[string]func() (*Plan, *SimResult, WarmInfo, error){
		"nil-incumbent": func() (*Plan, *SimResult, WarmInfo, error) {
			return WarmReplanContext(ctx, degTask, degradedTestOpts, task, nil)
		},
		"nil-from-task": func() (*Plan, *SimResult, WarmInfo, error) {
			return WarmReplanContext(ctx, degTask, degradedTestOpts, nil, healthy)
		},
	} {
		plan, sim, info, err := call()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Mode != WarmCold {
			t.Errorf("%s: mode %q, want %q", name, info.Mode, WarmCold)
		}
		if sim != nil {
			t.Errorf("%s: cold fallback returned a simulation; the contract is nil", name)
		}
		if !planEqual(plan, cold) {
			t.Errorf("%s: cold-fallback plan differs from NewPlanContext", name)
		}
	}
	// A non-ensemble scheduler replans cold in closed form — no warming.
	naiveCold, err := NewPlanContext(ctx, degTask, naive)
	if err != nil {
		t.Fatal(err)
	}
	naiveHealthy, err := NewPlanContext(ctx, task, naive)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, info, err := WarmReplanContext(ctx, degTask, naive, task, naiveHealthy)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != WarmCold || !planEqual(plan, naiveCold) {
		t.Errorf("naive scheduler: mode %q (want cold fallback identical to NewPlanContext)", info.Mode)
	}
}

// TestReplanStatsAcrossChurnTimeline documents ReplanDegradedFrom's
// cache-key behavior over successive fault deltas: each overlay partitions
// under its own key, healing back to an earlier overlay (including the
// healthy one) is a cache hit on that earlier entry, and a session that
// already holds the previous step's plan never replans cold.
func TestReplanStatsAcrossChurnTimeline(t *testing.T) {
	topo := mesh.AWSP3Cluster(4)
	task := degradedBoundary(t, topo)
	p := NewPlanner(WithTopology(topo), WithTraceFreeSim())
	ctx := context.Background()

	healthy, _, err := p.Plan(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	linkDown := mesh.FaultSet{Links: []mesh.LinkFault{{A: 0, B: 1, Down: true}}}
	straggler := mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 1, NICScale: 0.25}}}

	// @0 link-down arrives: warm identity (link faults never change the
	// host-level instance).
	down1, _, err := p.ReplanDegradedFrom(ctx, task, degradedTestOpts, mesh.FaultSet{}, linkDown)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.ReplanStats(); s.WarmIdentity != 1 || s.Cold != 0 {
		t.Fatalf("after link-down: %+v, want 1 warm identity and no cold", s)
	}
	// @1 the link heals: back to the healthy overlay's own cache entry.
	healed, _, err := p.ReplanDegradedFrom(ctx, task, degradedTestOpts, linkDown, mesh.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if healed != healthy {
		t.Error("heal-back did not hit the healthy overlay's cache entry")
	}
	// @2 the link flaps down again: the overlay re-keys to the same entry
	// as step one — a hit, not a second fill.
	down2, _, err := p.ReplanDegradedFrom(ctx, task, degradedTestOpts, mesh.FaultSet{}, linkDown)
	if err != nil {
		t.Fatal(err)
	}
	if down2 != down1 {
		t.Error("flap revisit did not hit the link-down overlay's cache entry")
	}
	// @3 a straggler instead: the host instance changes, so a warm search
	// (or the rebound incumbent, per the acceptance rule) serves the step.
	if _, _, err := p.ReplanDegradedFrom(ctx, task, degradedTestOpts, mesh.FaultSet{}, straggler); err != nil {
		t.Fatal(err)
	}
	s := p.ReplanStats()
	if s.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (heal-back + flap revisit)", s.CacheHits)
	}
	if s.WarmSearch+s.WarmRejected != 1 {
		t.Errorf("warm search+rejected = %d, want 1 (the straggler step)", s.WarmSearch+s.WarmRejected)
	}
	if s.Cold != 0 {
		t.Errorf("cold replans = %d, want 0 (every step had an incumbent)", s.Cold)
	}
	if got := s.CacheHits + s.WarmIdentity + s.WarmSearch + s.WarmRejected + s.WarmInvalid + s.Cold; got != 4 {
		t.Errorf("counters sum to %d, want 4 (one per timeline step)", got)
	}

	// A fresh session with no cached incumbent replans the same overlay
	// cold — and says so.
	cold := NewPlanner(WithTopology(topo), WithTraceFreeSim())
	if _, _, err := cold.ReplanDegraded(ctx, task, degradedTestOpts, linkDown); err != nil {
		t.Fatal(err)
	}
	if s := cold.ReplanStats(); s.Cold != 1 || s.WarmIdentity != 0 {
		t.Errorf("fresh session: %+v, want exactly one cold replan", s)
	}
}
