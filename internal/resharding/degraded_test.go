package resharding

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// degradedBoundary builds the stage boundary the degraded-planning tests
// share: (2,2)@0 -> (2,2)@4 on a 4-host p3-like cluster.
func degradedBoundary(t *testing.T, topo mesh.Topology) *sharding.Task {
	t.Helper()
	src, err := topo.Slice([]int{2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := topo.Slice([]int{2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 64), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

var degradedTestOpts = Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 5000, Chunks: 4}

// TestReplanDegradedPartitionsCache: healthy and degraded plans of one
// boundary through one session never share a PlanCache entry, under
// concurrency — run with -race in CI.
func TestReplanDegradedPartitionsCache(t *testing.T) {
	topo := mesh.AWSP3Cluster(2)
	task := degradedBoundary(t, topo)
	fs := mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 1, NICScale: 0.5}}}
	p := NewPlanner(WithTopology(topo))
	ctx := context.Background()

	const workers = 8
	healthy := make([]*SimResult, workers)
	degraded := make([]*SimResult, workers)
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sim, err := p.Plan(ctx, task, degradedTestOpts)
			if err != nil {
				errs <- err
				return
			}
			healthy[i] = sim
			_, dsim, err := p.ReplanDegraded(ctx, task, degradedTestOpts, fs)
			if err != nil {
				errs <- err
				return
			}
			degraded[i] = dsim
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := p.Cache().Stats()
	if stats.Entries != 2 || stats.Misses != 2 {
		t.Errorf("cache entries/misses = %d/%d, want 2/2 (one healthy + one degraded class)", stats.Entries, stats.Misses)
	}
	for i := 1; i < workers; i++ {
		if healthy[i].Makespan != healthy[0].Makespan || degraded[i].Makespan != degraded[0].Makespan {
			t.Fatalf("worker %d saw different timings", i)
		}
	}
	if degraded[0].Makespan <= healthy[0].Makespan {
		t.Errorf("halving a NIC should slow the boundary: degraded %g vs healthy %g", degraded[0].Makespan, healthy[0].Makespan)
	}

	// The partition is visible in the keys themselves.
	opts := p.ResolveOptions(degradedTestOpts)
	degradedTask, err := degradeTask(task, fs)
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(task, opts) == CacheKey(degradedTask, opts) {
		t.Error("healthy and degraded boundaries share a cache key")
	}
}

// TestReplanDegradedEmptyOverlayIsIdentity: an empty FaultSet must hit
// the exact same cache entry as the healthy plan — same key, same plan,
// same simulation, no extra miss.
func TestReplanDegradedEmptyOverlayIsIdentity(t *testing.T) {
	topo := mesh.AWSP3Cluster(2)
	task := degradedBoundary(t, topo)
	p := NewPlanner(WithTopology(topo))
	ctx := context.Background()

	plan, sim, err := p.Plan(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	rplan, rsim, err := p.ReplanDegraded(ctx, task, degradedTestOpts, mesh.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if plan != rplan || sim != rsim {
		t.Error("empty overlay did not share the healthy cache entry")
	}
	if stats := p.Cache().Stats(); stats.Misses != 1 {
		t.Errorf("misses = %d, want 1", stats.Misses)
	}
}

// TestWithFaultsSession: a session constructed with WithFaults plans
// every task against the overlay — same result as ReplanDegraded on a
// healthy session, and cache-partitioned from healthy plans sharing the
// same cache.
func TestWithFaultsSession(t *testing.T) {
	topo := mesh.AWSP3Cluster(2)
	task := degradedBoundary(t, topo)
	fs := mesh.FaultSet{Links: []mesh.LinkFault{{A: 0, B: 1, BandwidthScale: 0.5}}}
	cache := NewPlanCache()
	ctx := context.Background()

	healthySession := NewPlanner(WithTopology(topo), WithCache(cache))
	faultySession := NewPlanner(WithTopology(topo), WithCache(cache), WithFaults(fs))

	_, hsim, err := healthySession.Plan(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, fsim, err := faultySession.Plan(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, rsim, err := healthySession.ReplanDegraded(ctx, task, degradedTestOpts, fs)
	if err != nil {
		t.Fatal(err)
	}
	if fsim.Makespan != rsim.Makespan {
		t.Errorf("WithFaults session and ReplanDegraded disagree: %g vs %g", fsim.Makespan, rsim.Makespan)
	}
	if fsim.Makespan <= hsim.Makespan {
		t.Errorf("halved link should slow the boundary: %g vs %g", fsim.Makespan, hsim.Makespan)
	}
	// Healthy plan + one degraded class in the shared cache; the
	// ReplanDegraded call hit the faulty session's entry.
	if stats := cache.Stats(); stats.Misses != 2 || stats.Hits < 1 {
		t.Errorf("shared cache stats = %+v, want 2 misses and a degraded hit", stats)
	}

	// The faulted autotune path degrades too: the winner's timing must
	// never beat the healthy winner on a bandwidth-only overlay.
	hres, err := healthySession.Autotune(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := faultySession.Autotune(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fres.BestSim.Makespan < hres.BestSim.Makespan {
		t.Errorf("degraded autotune winner %g beats healthy %g", fres.BestSim.Makespan, hres.BestSim.Makespan)
	}
}

// TestReplanDegradedRejectsBadOverlay: overlay validation surfaces as a
// plan-time error, not a panic.
func TestReplanDegradedRejectsBadOverlay(t *testing.T) {
	topo := mesh.AWSP3Cluster(2)
	task := degradedBoundary(t, topo)
	p := NewPlanner(WithTopology(topo))
	if _, _, err := p.ReplanDegraded(context.Background(), task, degradedTestOpts,
		mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 99, NICScale: 0.5}}}); err == nil {
		t.Error("out-of-range host fault must fail")
	}
	if _, _, err := p.ReplanDegraded(context.Background(), task, degradedTestOpts,
		mesh.FaultSet{Links: []mesh.LinkFault{{A: 0, B: 1, Down: true}}}); err == nil {
		t.Error("down link with no detour must fail")
	}
}

// TestCacheKeyNeverCollidesAcrossTopologies is the audit table test:
// congruent boundaries on hardware whose differences are observable by
// the involved hosts — per-host bandwidths and latencies, NIC overrides,
// fabric oversubscription, every fault-overlay shape — must never map to
// one cache key (and hence never share a PlanCache entry). The boundary
// spans hosts 0-1, so every variant differs there.
func TestCacheKeyNeverCollidesAcrossTopologies(t *testing.T) {
	hosts := func(n int, spec mesh.HostSpec) []mesh.HostSpec {
		out := make([]mesh.HostSpec, n)
		for i := range out {
			out[i] = spec
		}
		return out
	}
	p3spec := mesh.P3HostSpec()
	variant := func(mutate func(*mesh.HostSpec)) []mesh.HostSpec {
		specs := hosts(4, p3spec)
		mutate(&specs[0])
		return specs
	}

	base4 := mesh.AWSP3Cluster(4)
	variants := []struct {
		name string
		topo mesh.Topology
	}{
		{"p3-4", base4},
		{"p3-4-2nics", base4.WithNICs(2)},
		{"p3-4-4nics", base4.WithNICs(4)},
		{"hetero-oversub-1.5", mesh.MustHeteroCluster(hosts(4, p3spec), mesh.P3InterHostLatency, 1.5)},
		{"hetero-oversub-2", mesh.MustHeteroCluster(hosts(4, p3spec), mesh.P3InterHostLatency, 2)},
		{"hetero-slow-nic", mesh.MustHeteroCluster(variant(func(s *mesh.HostSpec) { s.NICBandwidth /= 2 }), mesh.P3InterHostLatency, 1)},
		{"hetero-slow-intra", mesh.MustHeteroCluster(variant(func(s *mesh.HostSpec) { s.IntraBandwidth /= 2 }), mesh.P3InterHostLatency, 1)},
		{"hetero-multi-nic", mesh.MustHeteroCluster(variant(func(s *mesh.HostSpec) { s.NICs = 2 }), mesh.P3InterHostLatency, 1)},
		{"hetero-lag-intra", mesh.MustHeteroCluster(variant(func(s *mesh.HostSpec) { s.IntraLatency *= 2 }), mesh.P3InterHostLatency, 1)},
		{"hetero-fat-host", mesh.MustHeteroCluster(variant(func(s *mesh.HostSpec) { s.Devices = 8 }), mesh.P3InterHostLatency, 1)},
		{"hetero-inter-lat", mesh.MustHeteroCluster(hosts(4, p3spec), 3*mesh.P3InterHostLatency, 1)},
		{"mixed-1p3-3dgx", mesh.MixedP3DGXCluster(1, 3, 1)},
		{"faulted-straggler", mesh.MustFaulted(base4, mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 1, NICScale: 0.5}}})},
		{"faulted-straggler-deeper", mesh.MustFaulted(base4, mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 1, NICScale: 0.25}}})},
		{"faulted-intra", mesh.MustFaulted(base4, mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 0, IntraScale: 0.25}}})},
		{"faulted-link-scale", mesh.MustFaulted(base4, mesh.FaultSet{Links: []mesh.LinkFault{{A: 0, B: 1, BandwidthScale: 0.4}}})},
		{"faulted-link-lat", mesh.MustFaulted(base4, mesh.FaultSet{Links: []mesh.LinkFault{{A: 0, B: 1, ExtraLatency: 10e-6}}})},
		{"faulted-link-down", mesh.MustFaulted(base4, mesh.FaultSet{Links: []mesh.LinkFault{{A: 0, B: 1, Down: true}}})},
	}

	opts := Options{Seed: 1, DFSNodes: 1000}.WithDefaults()
	keys := map[string]string{}
	prints := map[string]string{}
	for _, v := range variants {
		task := degradedBoundary(t, v.topo)
		key := CacheKey(task, opts)
		if prev, ok := keys[key]; ok {
			t.Errorf("cache key collision: %s and %s share %q", prev, v.name, key)
		}
		keys[key] = v.name
		fp := v.topo.Fingerprint()
		if prev, ok := prints[fp]; ok {
			t.Errorf("fingerprint collision: %s and %s share %q", prev, v.name, fp)
		}
		prints[fp] = v.name
	}

	// The flip side of the audit — the key is canonical over OBSERVABLE
	// hardware, not instances or implementations:
	// identical hardware built twice shares one key;
	a := degradedBoundary(t, mesh.AWSP3Cluster(4))
	b := degradedBoundary(t, mesh.AWSP3Cluster(4))
	if CacheKey(a, opts) != CacheKey(b, opts) {
		t.Error("identical hardware built twice must share one cache key")
	}
	// a HeteroCluster with uniform p3 specs times transfers exactly like
	// the homogeneous Cluster, so the boundary shares the key even though
	// the fingerprints (identities) differ;
	uniform := mesh.MustHeteroCluster(hosts(4, p3spec), mesh.P3InterHostLatency, 1)
	if CacheKey(degradedBoundary(t, uniform), opts) != CacheKey(a, opts) {
		t.Error("observably identical hardware should share one cache key")
	}
	if uniform.Fingerprint() == base4.Fingerprint() {
		t.Error("distinct implementations must keep distinct fingerprints")
	}
	// and a fault on a host the boundary never touches leaves the
	// boundary's key alone — the plan really is identical there.
	idle := mesh.MustFaulted(base4, mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 3, NICScale: 0.5}}})
	if CacheKey(degradedBoundary(t, idle), opts) != CacheKey(a, opts) {
		t.Error("fault on an uninvolved host must not re-key the boundary")
	}
	if idle.Fingerprint() == base4.Fingerprint() {
		t.Error("the faulted topology's own fingerprint must still differ")
	}
}

// TestDegradedPlanDeterministic: planning the same boundary under the
// same overlay twice yields byte-identical plans and timings.
func TestDegradedPlanDeterministic(t *testing.T) {
	topo := mesh.MixedP3DGXCluster(2, 2, 1.5)
	fs := mesh.FaultSet{
		Links: []mesh.LinkFault{{A: 0, B: 2, BandwidthScale: 0.5, ExtraLatency: 5e-6}},
		Hosts: []mesh.HostFault{{Host: 3, NICScale: 0.5, IntraScale: 0.5}},
	}
	task := degradedBoundary(t, topo)
	run := func() (*Plan, *SimResult) {
		dt, err := degradeTask(task, fs)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(dt, degradedTestOpts)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := plan.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		return plan, sim
	}
	p1, s1 := run()
	p2, s2 := run()
	if !reflect.DeepEqual(p1.SenderOf, p2.SenderOf) || !reflect.DeepEqual(p1.Order, p2.Order) {
		t.Error("degraded plan is not deterministic")
	}
	if s1.Makespan != s2.Makespan || fmt.Sprint(s1.Events) != fmt.Sprint(s2.Events) {
		t.Error("degraded simulation is not deterministic")
	}
}

// TestPlanKeyedHonorsSessionFaults: PlanKeyed on a WithFaults session
// rebinds the task to the overlay and recomputes the key, so a healthy
// key handed to a degraded session can never alias (or poison) the
// healthy cache entry. TaskKey exposes the key such a call plans under.
func TestPlanKeyedHonorsSessionFaults(t *testing.T) {
	topo := mesh.AWSP3Cluster(2)
	task := degradedBoundary(t, topo)
	fs := mesh.FaultSet{Hosts: []mesh.HostFault{{Host: 1, NICScale: 0.5}}}
	cache := NewPlanCache()
	healthySession := NewPlanner(WithTopology(topo), WithCache(cache))
	faultySession := NewPlanner(WithTopology(topo), WithCache(cache), WithFaults(fs))
	ctx := context.Background()

	opts := healthySession.ResolveOptions(degradedTestOpts)
	healthyKey, _, err := healthySession.TaskKey(task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if healthyKey != CacheKey(task, opts) {
		t.Fatal("healthy session's TaskKey must be the plain canonical key")
	}
	faultyKey, degradedTask, err := faultySession.TaskKey(task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if faultyKey == healthyKey {
		t.Fatal("faulted session's TaskKey must differ from the healthy key")
	}
	if mesh.SameTopology(degradedTask.Src.Mesh.Topo, topo) {
		t.Fatal("TaskKey must return the task rebound to the overlay")
	}

	// Handing the HEALTHY key to the degraded session must still plan
	// degraded — and leave the healthy entry untouched.
	_, fsim, err := faultySession.PlanKeyed(ctx, healthyKey, task, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, hsim, err := healthySession.PlanKeyed(ctx, healthyKey, task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fsim.Makespan <= hsim.Makespan {
		t.Errorf("degraded PlanKeyed makespan %g does not exceed healthy %g", fsim.Makespan, hsim.Makespan)
	}
	if stats := cache.Stats(); stats.Entries != 2 || stats.Misses != 2 {
		t.Errorf("shared cache stats = %+v, want exactly one healthy and one degraded entry", stats)
	}
	// And PlanKeyed agrees with Plan on the faulted session (cache hit).
	_, fsim2, err := faultySession.Plan(ctx, task, degradedTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fsim2 != fsim {
		t.Error("faulted Plan and PlanKeyed did not share the degraded entry")
	}
}
