package resharding

import (
	"testing"

	"alpacomm/internal/netsim"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// strategyNet builds a fresh net over the standard micro cluster.
func strategyNet(hosts int) *netsim.ClusterNet {
	return netsim.NewClusterNet(microCluster(hosts))
}

func TestBuildSendRecvOpsPerReceiver(t *testing.T) {
	net := strategyNet(2)
	done, err := buildSendRecv(net, "u", 0, []int{4, 5, 6}, 1000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Errorf("send/recv should emit one op per receiver, got %d", len(done))
	}
}

func TestLocalAllGatherOnSenderHostIsDirect(t *testing.T) {
	// Receivers on the sender's own host get plain NVLink copies (no
	// scatter+gather round trip).
	net := strategyNet(1)
	done, err := buildLocalAllGather(net, "u", 0, []int{1, 2}, 1000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || net.Sim.NumOps() != 2 {
		t.Errorf("expected 2 direct copies, got %d done / %d ops", len(done), net.Sim.NumOps())
	}
}

func TestLocalAllGatherSingleReceiverHost(t *testing.T) {
	net := strategyNet(2)
	// 3 receivers on host 1: scatter (3 ops) + ring all-gather (2 rounds x
	// 3 devices = 6 ops).
	_, err := buildLocalAllGather(net, "u", 0, []int{4, 5, 6}, 999, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.Sim.NumOps() != 9 {
		t.Errorf("ops = %d, want 9 (3 scatter + 6 all-gather)", net.Sim.NumOps())
	}
}

func TestGlobalAllGatherSingleReceiverFallsBack(t *testing.T) {
	net := strategyNet(2)
	done, err := buildGlobalAllGather(net, "u", 0, []int{4}, 1000, 0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || net.Sim.NumOps() != 1 {
		t.Error("single receiver should degenerate to one send")
	}
}

// TestBroadcastBeatsAlpaAcrossHosts pins the Fig. 6 case-7/8 mechanism:
// for multi-host receivers Alpa's staged scatter + cross-node all-gather
// costs ≈ 2t while the pipelined broadcast stays near t.
func TestBroadcastBeatsAlpaAcrossHosts(t *testing.T) {
	recvs := []int{4, 5, 8, 9} // hosts 1 and 2
	run := func(build func(net *netsim.ClusterNet) error) float64 {
		net := strategyNet(3)
		if err := build(net); err != nil {
			t.Fatal(err)
		}
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	alpa := run(func(net *netsim.ClusterNet) error {
		_, err := buildAlpa(net, "u", 0, recvs, 1000, 4000, 0, nil)
		return err
	})
	bc := run(func(net *netsim.ClusterNet) error {
		_, err := buildBroadcast(net, Options{Chunks: 64}, "u", 0, recvs, 4000, 0, nil)
		return err
	})
	if bc*1.5 > alpa {
		t.Errorf("broadcast (%v) should be ≈ 2x faster than staged alpa (%v)", bc, alpa)
	}
}

func TestAlpaSingleHostUnevenFallsBack(t *testing.T) {
	net := strategyNet(2)
	// 1001 elements over 3 receivers on one host: uneven -> send/recv.
	done, err := buildAlpa(net, "u", 0, []int{4, 5, 6}, 1001, 4004, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || net.Sim.NumOps() != 3 {
		t.Errorf("uneven single-host alpa should fall back to 3 sends, got %d ops", net.Sim.NumOps())
	}
}

func TestBuildUnitOpsUnknownStrategy(t *testing.T) {
	net := strategyNet(1)
	if _, err := buildUnitOps(net, Options{Strategy: Strategy(42)}, "u", 0, []int{1}, 10, 40, 0, nil); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestGroupByHost(t *testing.T) {
	c := microCluster(3)
	groups := groupByHost(c, []int{9, 1, 0, 8, 5})
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][0] != 0 || groups[0][1] != 1 || groups[1][0] != 5 || groups[2][0] != 8 {
		t.Errorf("groups = %v", groups)
	}
}

func TestSplitBytes(t *testing.T) {
	parts := splitBytes(10, 4)
	var sum int64
	for _, p := range parts {
		sum += p
		if p < 2 || p > 3 {
			t.Errorf("part %d outside near-even range", p)
		}
	}
	if sum != 10 {
		t.Errorf("parts sum to %d", sum)
	}
}

// TestSenderRoundRobin: when a unit task's chosen host holds several
// replicas, consecutive unit tasks rotate the sending device to spread
// intra-host load.
func TestSenderRoundRobin(t *testing.T) {
	c := microCluster(2)
	src, _ := c.Slice([]int{1, 4}, 0)
	dst, _ := c.Slice([]int{1, 4}, 4)
	// RR -> S0R... with a (1,4) mesh, S1 shards over devices: use RR->RS0
	// to get several unit tasks all sent from host 0's replicas.
	task, err := sharding.NewTask(tensor.MustShape(8, 8), tensor.Float32, src, sharding.MustParse("RR"), dst, sharding.MustParse("RS1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Units) < 2 {
		t.Skipf("need >=2 unit tasks, got %d", len(task.Units))
	}
	p, err := NewPlan(task, Options{Strategy: Broadcast, Scheduler: SchedNaive})
	if err != nil {
		t.Fatal(err)
	}
	senders := map[int]bool{}
	for _, s := range p.SenderOf {
		senders[s] = true
	}
	if len(senders) < 2 {
		t.Errorf("round-robin should use several sender devices, got %v", p.SenderOf)
	}
}

// TestMultiNICBroadcastHalvesTime pins the §3.1 future-work extension:
// with 2 NICs per host, splitting the unit task across NICs roughly
// doubles cross-host bandwidth.
func TestMultiNICBroadcastHalvesTime(t *testing.T) {
	run := func(nics int) float64 {
		c := microCluster(2).WithNICs(nics)
		net := netsim.NewClusterNet(c)
		_, err := buildBroadcast(net, Options{Chunks: 64}, "u", 0, []int{4, 5, 6, 7}, 64000, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		mk, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	one, two := run(1), run(2)
	if two > one*0.6 {
		t.Errorf("2-NIC broadcast (%v) should be ≈ half the 1-NIC time (%v)", two, one)
	}
	four := run(4)
	if four > two*0.6 {
		t.Errorf("4-NIC broadcast (%v) should be ≈ half the 2-NIC time (%v)", four, two)
	}
}

// TestMultiNICRoundTrip: the data plane is unaffected by NIC splitting.
func TestMultiNICRoundTrip(t *testing.T) {
	c := microCluster(2).WithNICs(2)
	src, _ := c.Slice([]int{2, 2}, 0)
	dst, _ := c.Slice([]int{2, 2}, 4)
	task, err := sharding.NewTask(tensor.MustShape(16, 16), tensor.Float32, src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(task, Options{Strategy: Broadcast})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoundTrip(p); err != nil {
		t.Fatal(err)
	}
}
