package resharding

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// slowTask builds a 16-unit resharding whose ensemble DFS consumes its
// whole node budget (measured: ~100ns/node), so a large budget makes
// planning take long enough to be interrupted mid-search.
func slowTask(t *testing.T) *sharding.Task {
	t.Helper()
	c := mesh.AWSP3Cluster(4)
	src, err := c.Slice([]int{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.Slice([]int{2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("RS0"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(task.Units); n < 10 || n > 20 {
		t.Fatalf("slowTask has %d units; need 10..20 so the ensemble DFS engages and burns its budget", n)
	}
	return task
}

// TestPlannerMatchesFreeFunctions: a session plan and autotune result are
// byte-identical to the deprecated free-function path.
func TestPlannerMatchesFreeFunctions(t *testing.T) {
	c := microCluster(2)
	task := autotuneTask(t, c, 0, 4)
	opts := Options{Seed: 7, DFSNodes: DefaultAutotuneDFSNodes}

	p := NewPlanner(WithTopology(c), WithDefaultPlanOptions(opts))
	plan, sim, err := p.Plan(context.Background(), task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewPlan(autotuneTask(t, c, 0, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	directSim, err := direct.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Makespan != directSim.Makespan || sim.NumOps != directSim.NumOps {
		t.Errorf("session sim (%g, %d) != direct (%g, %d)", sim.Makespan, sim.NumOps, directSim.Makespan, directSim.NumOps)
	}
	for i := range plan.SenderOf {
		if plan.SenderOf[i] != direct.SenderOf[i] {
			t.Fatalf("sender of unit %d: session %d, direct %d", i, plan.SenderOf[i], direct.SenderOf[i])
		}
	}

	res, err := p.Autotune(context.Background(), task, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	directRes, err := Autotune(autotuneTask(t, c, 0, 4), AutotuneOptions{Base: Options{Seed: 42, DFSNodes: DefaultAutotuneDFSNodes}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIndex != directRes.BestIndex || res.BestSim.Makespan != directRes.BestSim.Makespan {
		t.Errorf("session autotune (best %d, %g) != direct (best %d, %g)",
			res.BestIndex, res.BestSim.Makespan, directRes.BestIndex, directRes.BestSim.Makespan)
	}
}

// TestPlannerTopologyMismatch: a session pinned to one topology rejects
// tasks living on another.
func TestPlannerTopologyMismatch(t *testing.T) {
	p := NewPlanner(WithTopology(mesh.AWSP3Cluster(4)))
	other := microCluster(2)
	if _, _, err := p.Plan(context.Background(), autotuneTask(t, other, 0, 4), Options{}); err == nil {
		t.Fatal("planning a foreign-topology task should fail")
	}
	if _, err := p.Autotune(context.Background(), autotuneTask(t, other, 0, 4), Options{}); err == nil {
		t.Fatal("autotuning a foreign-topology task should fail")
	}
}

// settleGoroutines polls until the goroutine count returns to at most
// baseline (with slack for runtime helpers) or the deadline passes.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestAutotuneCancellation pins the acceptance criterion: cancelling a
// running grid search returns ctx.Err() within one candidate's node-budget
// slice — far sooner than the search could finish — and leaks no worker
// goroutine.
func TestAutotuneCancellation(t *testing.T) {
	task := slowTask(t)
	// ~1<<40 DFS nodes per ensemble candidate: days of search if
	// cancellation failed to reach inside a candidate.
	p := NewPlanner(
		WithParallelism(2),
		WithDefaultPlanOptions(Options{Seed: 1, DFSNodes: 1 << 40}),
	)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := p.Autotune(ctx, task, Options{})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled autotune returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("autotune did not return after cancellation")
	}
	// A 2048-node DFS slice is ~0.2ms of work; returning within a second
	// of cancel (generous for -race) proves the abort reached inside the
	// running candidate rather than waiting out its budget.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled autotune took %v", elapsed)
	}
	settleGoroutines(t, baseline)
}

// TestAutotuneDeadline: a context deadline aborts the same way.
func TestAutotuneDeadline(t *testing.T) {
	task := slowTask(t)
	p := NewPlanner(WithDefaultPlanOptions(Options{Seed: 1, DFSNodes: 1 << 40}))
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.Autotune(ctx, task, Options{}); err != context.DeadlineExceeded {
		t.Fatalf("deadline autotune returned %v, want context.DeadlineExceeded", err)
	}
	settleGoroutines(t, baseline)
}

// TestCacheWaiterCancelDoesNotPoison pins the satellite requirement: a
// coalesced waiter that cancels gets ctx.Err() immediately, while the
// leader and every other waiter complete normally and the entry stays
// cached.
func TestCacheWaiterCancelDoesNotPoison(t *testing.T) {
	task := slowTask(t)
	// ~2M nodes x 5 ensemble members is a few hundred ms of planning —
	// long enough that waiters reliably join mid-flight, short enough to
	// complete under -race.
	opts := Options{Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 2_000_000}.WithDefaults()
	key := CacheKey(task, opts)
	cache := NewPlanCache()

	type result struct {
		sim *SimResult
		err error
	}
	leader := make(chan result, 1)
	go func() {
		_, sim, err := cache.PlanAndSimulateKeyedContext(context.Background(), key, task, opts)
		leader <- result{sim, err}
	}()
	// Wait for the leader to register its miss so later callers coalesce.
	for start := time.Now(); ; {
		if cache.Stats().Misses == 1 {
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("leader never registered its miss")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A second healthy waiter joins before the cancelled one departs.
	healthy := make(chan result, 1)
	go func() {
		_, sim, err := cache.PlanAndSimulateKeyedContext(context.Background(), key, task, opts)
		healthy <- result{sim, err}
	}()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := cache.PlanAndSimulateKeyedContext(cancelled, key, task, opts)
	if err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled waiter blocked for %v", elapsed)
	}

	lr := <-leader
	if lr.err != nil {
		t.Fatalf("leader failed after a waiter cancelled: %v", lr.err)
	}
	hr := <-healthy
	if hr.err != nil {
		t.Fatalf("healthy waiter failed after another waiter cancelled: %v", hr.err)
	}
	if hr.sim.Makespan != lr.sim.Makespan {
		t.Errorf("waiter makespan %g != leader %g", hr.sim.Makespan, lr.sim.Makespan)
	}
	if _, _, ok := cache.LookupKeyed(key); !ok {
		t.Error("entry was not retained after a waiter cancelled")
	}
	st := cache.Stats()
	if st.Entries != 1 || st.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 entry / 1 miss", st)
	}
}

// TestCacheLeaderCancelForgotten: a cancelled leader reports ctx.Err() to
// itself and its live waiters, and the key is forgotten — the next caller
// plans afresh and succeeds.
func TestCacheLeaderCancelForgotten(t *testing.T) {
	task := slowTask(t)
	opts := Options{Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 1 << 40}.WithDefaults()
	key := CacheKey(task, opts)
	cache := NewPlanCache()

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, _, err := cache.PlanAndSimulateKeyedContext(ctx, key, task, opts)
		errs <- err
	}()
	for start := time.Now(); cache.Stats().Misses == 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("leader never registered its miss")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errs; err != context.Canceled {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	// The failure is transient: it must not be replayed to later callers.
	quick := Options{Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 10_000}.WithDefaults()
	if _, _, err := cache.PlanAndSimulateKeyedContext(context.Background(), CacheKey(task, quick), task, quick); err != nil {
		t.Fatalf("fresh plan after a cancelled leader failed: %v", err)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Errorf("cancelled leader's entry should be forgotten, stats %+v", st)
	}
}

// TestCacheLeaderCancelWaiterRetries: a healthy waiter coalesced onto a
// leader whose own context cancels must not inherit that cancellation —
// its request was never attempted, the errored entry is forgotten, so the
// waiter retries as a fresh leader and succeeds.
func TestCacheLeaderCancelWaiterRetries(t *testing.T) {
	task := slowTask(t)
	opts := Options{Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 2_000_000}.WithDefaults()
	key := CacheKey(task, opts)
	cache := NewPlanCache()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := cache.PlanAndSimulateKeyedContext(leaderCtx, key, task, opts)
		leaderErr <- err
	}()
	for start := time.Now(); cache.Stats().Misses == 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("leader never registered its miss")
		}
		time.Sleep(100 * time.Microsecond)
	}

	type result struct {
		sim *SimResult
		err error
	}
	waiter := make(chan result, 1)
	go func() {
		_, sim, err := cache.PlanAndSimulateKeyedContext(context.Background(), key, task, opts)
		waiter <- result{sim, err}
	}()
	// Let the waiter coalesce onto the in-flight leader (planning takes
	// hundreds of ms; 10ms is plenty to join, and the retry path is
	// exercised either way), then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	wr := <-waiter
	if wr.err != nil {
		t.Fatalf("healthy waiter inherited the leader's cancellation: %v", wr.err)
	}
	if wr.sim == nil || wr.sim.Makespan <= 0 {
		t.Fatalf("waiter result degenerate: %+v", wr.sim)
	}
	if _, _, ok := cache.LookupKeyed(key); !ok {
		t.Error("the waiter's retry should have left a completed entry")
	}
}

// TestPlannerConcurrentSharedKey: many goroutines planning one congruent
// problem through a session compute it exactly once (run under -race).
func TestPlannerConcurrentSharedKey(t *testing.T) {
	c := microCluster(2)
	p := NewPlanner(WithTopology(c), WithDefaultPlanOptions(Options{Seed: 3, DFSNodes: 100_000}))
	const n = 16
	var wg sync.WaitGroup
	sims := make([]*SimResult, n)
	errs := make([]error, n)
	tasks := make([]*sharding.Task, n)
	for i := range tasks {
		tasks[i] = autotuneTask(t, c, 0, 4)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sims[i], errs[i] = p.Simulate(context.Background(), tasks[i], Options{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if sims[i].Makespan != sims[0].Makespan {
			t.Errorf("goroutine %d makespan %g != %g", i, sims[i].Makespan, sims[0].Makespan)
		}
	}
	st := p.Cache().Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("cache stats %+v, want exactly 1 miss and %d hits", st, n-1)
	}
}
