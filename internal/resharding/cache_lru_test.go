package resharding

import (
	"reflect"
	"sync"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// optsWithSeed returns otherwise-identical options whose seed makes the
// cache key distinct — the cheapest way to mint fresh keys.
func optsWithSeed(seed int64) Options {
	return Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: seed, DFSNodes: 1000}
}

func TestLRUCacheBoundAndEviction(t *testing.T) {
	c := microCluster(2)
	task := autotuneTask(t, c, 0, 4)
	const capacity = 4
	cache := NewLRUPlanCache(capacity)
	if cache.Capacity() != capacity {
		t.Fatalf("Capacity() = %d", cache.Capacity())
	}

	// Fill to twice the capacity with distinct keys.
	for i := 0; i < 2*capacity; i++ {
		if _, err := cache.Simulate(task, optsWithSeed(int64(i+1))); err != nil {
			t.Fatal(err)
		}
		if st := cache.Stats(); st.Entries > capacity {
			t.Fatalf("after %d inserts: %d entries > capacity %d", i+1, st.Entries, capacity)
		}
	}
	st := cache.Stats()
	if st.Entries != capacity {
		t.Errorf("entries = %d, want %d", st.Entries, capacity)
	}
	if st.Evictions != capacity {
		t.Errorf("evictions = %d, want %d", st.Evictions, capacity)
	}
	if st.Misses != 2*capacity || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}

	// The most recent keys are resident; the oldest were evicted.
	if _, err := cache.Simulate(task, optsWithSeed(int64(2*capacity))); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("most recent key must hit: %+v", st)
	}
	if _, err := cache.Simulate(task, optsWithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2*capacity+1 {
		t.Errorf("evicted key must miss: %+v", st)
	}
}

func TestLRUCacheRecencyOrder(t *testing.T) {
	c := microCluster(2)
	task := autotuneTask(t, c, 0, 4)
	cache := NewLRUPlanCache(2)

	for _, seed := range []int64{1, 2} {
		if _, err := cache.Simulate(task, optsWithSeed(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes the LRU victim of the next insert.
	if _, err := cache.Simulate(task, optsWithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Simulate(task, optsWithSeed(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Simulate(task, optsWithSeed(1)); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 2 {
		t.Errorf("touched key must survive the eviction: %+v", st)
	}
	if _, err := cache.Simulate(task, optsWithSeed(2)); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 2 || st.Misses != 4 {
		t.Errorf("untouched key must have been evicted: %+v", st)
	}
}

// failingTask builds a task whose planning always errors: its two meshes
// live on topologies with different fingerprints, which NewPlan rejects.
func failingTask(t *testing.T, devs int) *sharding.Task {
	t.Helper()
	a := microCluster(2)
	b, err := mesh.NewCluster(2, 4, 999, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src, err := mesh.NewMesh(a, []int{2, 2}, contiguous(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := mesh.NewMesh(b, []int{2, 2}, contiguous(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// TestCacheDropsErroredEntries pins the sticky-error fix: a failed
// planning must not be replayed from the cache forever.
func TestCacheDropsErroredEntries(t *testing.T) {
	for _, cache := range []*PlanCache{NewPlanCache(), NewLRUPlanCache(8)} {
		task := failingTask(t, 8)
		opts := optsWithSeed(1)
		if _, _, err := cache.PlanAndSimulate(task, opts); err == nil {
			t.Fatal("planning across mismatched topologies must fail")
		}
		st := cache.Stats()
		if st.Entries != 0 {
			t.Errorf("errored entry retained: %+v", st)
		}
		if st.Misses != 1 {
			t.Errorf("stats = %+v", st)
		}
		// The retry misses again (no poisoned hit) and still reports the
		// error.
		if _, _, err := cache.PlanAndSimulate(task, opts); err == nil {
			t.Fatal("retry must re-plan and fail again")
		}
		st = cache.Stats()
		if st.Misses != 2 || st.Hits != 0 || st.Entries != 0 {
			t.Errorf("retry stats = %+v", st)
		}
	}
}

// TestCacheConcurrentExactCounts is the issue's satellite: N concurrent
// PlanAndSimulate calls on one key must produce exactly one miss, N-1
// hits, and identical plans (run under -race).
func TestCacheConcurrentExactCounts(t *testing.T) {
	const n = 32
	c := microCluster(2)
	cache := NewPlanCache()
	opts := optsWithSeed(7)

	tasks := make([]*sharding.Task, n)
	for i := range tasks {
		tasks[i] = autotuneTask(t, c, 0, 4)
	}
	plans := make([]*Plan, n)
	sims := make([]*SimResult, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			plan, sim, err := cache.PlanAndSimulate(tasks[i], opts)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i], sims[i] = plan, sim
		}(i)
	}
	close(start)
	wg.Wait()

	st := cache.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want exactly 1 miss and %d hits", st, n-1)
	}
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("lookup %d returned a different plan instance", i)
		}
		if !reflect.DeepEqual(plans[i].Order, plans[0].Order) ||
			!reflect.DeepEqual(plans[i].SenderOf, plans[0].SenderOf) {
			t.Fatalf("lookup %d returned a different schedule", i)
		}
		if sims[i].Makespan != sims[0].Makespan {
			t.Fatalf("lookup %d returned makespan %g, want %g", i, sims[i].Makespan, sims[0].Makespan)
		}
	}
}

// TestLRUCacheConcurrentDistinctKeys hammers a tiny cache with many
// distinct keys from many goroutines: the bound must hold at every
// observation and the cache must stay coherent under eviction (-race).
func TestLRUCacheConcurrentDistinctKeys(t *testing.T) {
	const capacity = 4
	const workers = 8
	const perWorker = 24
	c := microCluster(2)
	cache := NewLRUPlanCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := autotuneTask(t, c, 0, 4)
			for i := 0; i < perWorker; i++ {
				// Overlapping key ranges across workers: some coalesce,
				// some evict each other.
				seed := int64(1 + (w*perWorker+i)%(3*capacity))
				if _, err := cache.Simulate(task, optsWithSeed(seed)); err != nil {
					t.Error(err)
					return
				}
				if st := cache.Stats(); st.Entries > capacity {
					t.Errorf("entries %d > capacity %d", st.Entries, capacity)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Entries > capacity {
		t.Errorf("final entries %d > capacity %d", st.Entries, capacity)
	}
	if st.Hits+st.Misses != workers*perWorker {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, workers*perWorker)
	}
}
