package resharding

import (
	"reflect"
	"sync"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// builderTask builds a multi-host resharding with several unit tasks, the
// shape the pooled builder replays.
func builderTask(t *testing.T, c mesh.Topology, srcFirst, dstFirst int) *sharding.Task {
	t.Helper()
	src, err := c.Slice([]int{2, 4}, srcFirst)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.Slice([]int{2, 4}, dstFirst)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(64, 64, 8), tensor.Float32,
		src, sharding.MustParse("RS01R"), dst, sharding.MustParse("S01RR"))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func assertSameSim(t *testing.T, name string, got, want *SimResult) {
	t.Helper()
	if got.Makespan != want.Makespan || got.NumOps != want.NumOps || got.EffectiveGbps != want.EffectiveGbps {
		t.Fatalf("%s: makespan/ops/gbps = %v/%d/%v, want %v/%d/%v",
			name, got.Makespan, got.NumOps, got.EffectiveGbps, want.Makespan, want.NumOps, want.EffectiveGbps)
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatalf("%s: event timeline differs from baseline", name)
	}
	if !reflect.DeepEqual(got.Utilization, want.Utilization) {
		t.Fatalf("%s: utilization differs from baseline", name)
	}
}

// TestSimulateConcurrentPooledReuse hammers Plan.Simulate from many
// goroutines so pooled builders are reset and replayed continuously; every
// result must be byte-identical to the baseline. Run under -race this is
// the safety proof for the arena-reuse design.
func TestSimulateConcurrentPooledReuse(t *testing.T) {
	task := builderTask(t, microCluster(4), 0, 8)
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 5000, Chunks: 4}
	plan, err := NewPlan(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sim, err := plan.Simulate()
				if err != nil {
					errs <- err
					return
				}
				if sim.Makespan != baseline.Makespan || sim.NumOps != baseline.NumOps ||
					!reflect.DeepEqual(sim.Events, baseline.Events) {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errString("pooled simulate diverged from baseline")

type errString string

func (e errString) Error() string { return string(e) }

// TestPlanBuilderRebindsAcrossTopologies holds one builder and alternates
// plans from different topologies and strategies through it: the builder
// must rebuild its net on a topology change and rewind it on a match,
// always reproducing the fresh-simulation result.
func TestPlanBuilderRebindsAcrossTopologies(t *testing.T) {
	b := NewPlanBuilder()
	topos := []mesh.Topology{
		microCluster(4),
		mesh.DGXA100Cluster(2),
		mesh.MixedP3DGXCluster(2, 2, 2),
	}
	strategies := []Strategy{SendRecv, Broadcast, Alpa}
	for round := 0; round < 3; round++ {
		for ti, topo := range topos {
			task := builderTask(t, topo, 0, 8)
			opts := Options{Strategy: strategies[(round+ti)%len(strategies)], Scheduler: SchedGreedyLoad, Chunks: 4}
			plan, err := NewPlan(task, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plan.SimulateWith(NewPlanBuilder())
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.SimulateWith(b)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSim(t, plan.String(), got, want)
		}
	}
}

// TestAutotuneReusesArenas runs a full grid autotune (which draws pooled
// builders from every worker) and checks the winner is identical to the
// sequential single-worker result — the determinism contract the pool must
// not break.
func TestAutotuneReusesArenas(t *testing.T) {
	task := builderTask(t, microCluster(4), 0, 8)
	base := Options{Seed: 7, Chunks: 4}
	seq, err := Autotune(task, AutotuneOptions{Base: base, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Autotune(task, AutotuneOptions{Base: base, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestIndex != par.BestIndex {
		t.Fatalf("winner differs: %d vs %d", seq.BestIndex, par.BestIndex)
	}
	if !reflect.DeepEqual(seq.Trials, par.Trials) {
		t.Fatal("trial table differs between worker counts")
	}
	assertSameSim(t, "autotune best", par.BestSim, seq.BestSim)
}
