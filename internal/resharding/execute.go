package resharding

import (
	"fmt"
	"sort"

	"alpacomm/internal/tensor"
)

// Execute moves real tensor bytes according to the plan: for every unit
// task, the slice is copied from the chosen sender's buffer into every
// receiver's buffer. srcBufs/dstBufs map physical device index to that
// device's buffer (as produced by Placement.Buffers).
//
// After Execute, every destination buffer holds exactly the region its
// sharding spec requires — tests verify this against the FillLinear
// pattern.
func (p *Plan) Execute(srcBufs, dstBufs map[int]*tensor.Buffer) error {
	for _, idx := range p.Order {
		u := p.Task.Units[idx]
		sender := p.SenderOf[idx]
		src, ok := srcBufs[sender]
		if !ok {
			return fmt.Errorf("resharding: no source buffer for device %d", sender)
		}
		for _, rcv := range u.Receivers {
			dst, ok := dstBufs[rcv]
			if !ok {
				return fmt.Errorf("resharding: no destination buffer for device %d", rcv)
			}
			if err := dst.CopyRegion(src, u.Slice); err != nil {
				return fmt.Errorf("resharding: unit %d to device %d: %v", idx, rcv, err)
			}
		}
	}
	return nil
}

// RoundTrip plans, simulates and executes a resharding in one call,
// returning the simulation result. It allocates source buffers filled with
// the linear-index pattern and destination buffers, and verifies every
// destination buffer after execution. Intended for examples and
// integration tests.
func RoundTrip(p *Plan) (*SimResult, error) {
	srcBufs, err := p.Task.Src.Buffers()
	if err != nil {
		return nil, err
	}
	keys48 := make([]int, 0, len(srcBufs))
	for k := range srcBufs {
		keys48 = append(keys48, k)
	}
	sort.Ints(keys48)
	for _, k := range keys48 {
		b := srcBufs[k]
		b.FillLinear()
	}
	dstBufs, err := p.Task.Dst.Buffers()
	if err != nil {
		return nil, err
	}
	if err := p.Execute(srcBufs, dstBufs); err != nil {
		return nil, err
	}
	keys58 := make([]int, 0, len(dstBufs))
	for dev := range dstBufs {
		keys58 = append(keys58, dev)
	}
	sort.Ints(keys58)
	for _, dev := range keys58 {
		b := dstBufs[dev]
		if ok, pt, got, want := b.VerifyLinear(); !ok {
			return nil, fmt.Errorf("resharding: device %d corrupt at %v: got %v want %v", dev, pt, got, want)
		}
	}
	return p.Simulate()
}
