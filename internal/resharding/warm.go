package resharding

import (
	"context"
	"fmt"
	"math/rand"

	"alpacomm/internal/schedule"
	"alpacomm/internal/sharding"
)

// Incremental warm replanning: when a fleet's topology churns — a link
// browns out, a host straggles, a fault heals — the boundary being served
// usually already has a plan for the previous overlay. Restarting the
// ensemble DFS from scratch re-pays the full cold-plan node budget for
// every step of churn. WarmReplanContext instead diffs the two overlays
// through the host-level problem instance the scheduler actually solves:
//
//   - units whose host-task (durations, sender hosts, receiver hosts) are
//     unchanged between the overlays are unimpacted; when no unit is
//     impacted the instance is identical and the rebound incumbent IS the
//     plan a cold search would return — no search at all (link faults
//     never change durations, which cost only per-host NIC bandwidth, so
//     a single link-down replans in simulation time);
//   - otherwise the impacted set drives a warm-started DFS: unimpacted
//     units have their senders pinned to the incumbent's choices, the
//     incumbent seeds the search bound from node one, and the node budget
//     is scaled down by the impacted fraction;
//   - prove-don't-trust acceptance: the warm plan is re-simulated against
//     the rebound incumbent and rejected — the incumbent served instead —
//     if it is ever worse, so a warm replan's makespan is never worse
//     than the incumbent's rebound.
type WarmInfo struct {
	// Mode is how the plan was produced; one of the Warm* constants.
	Mode string
	// ImpactedUnits counts units whose host-level task changed between the
	// overlays; TotalUnits is the decomposition size.
	ImpactedUnits, TotalUnits int
	// DFSNodes is the node budget the warm search ran under; 0 when no
	// search ran (identity and cold modes).
	DFSNodes int
	// WarmMakespan / IncumbentMakespan are the trace-free simulated
	// makespans compared by the acceptance rule (0 when no search ran).
	WarmMakespan, IncumbentMakespan float64
}

// Warm replan modes reported in WarmInfo.Mode.
const (
	// WarmIdentity: no unit's host task changed; the rebound incumbent was
	// returned without any search.
	WarmIdentity = "identity"
	// WarmSearch: a pinned, incumbent-seeded search ran and its plan passed
	// the re-simulation acceptance rule.
	WarmSearch = "search"
	// WarmIncumbent: the search result re-simulated worse than the rebound
	// incumbent, which was served instead.
	WarmIncumbent = "incumbent"
	// WarmCold: no usable incumbent (rebind failed or the incumbent was
	// invalid for the task); a cold plan was computed.
	WarmCold = "cold"
)

// MinWarmDFSNodes floors the impact-scaled node budget of a warm search,
// so a tiny impacted set still gets enough nodes to reorder itself.
const MinWarmDFSNodes = 1024

// warmBudget scales the cold node budget by the impacted fraction,
// flooring at MinWarmDFSNodes and capping at the cold budget.
func warmBudget(coldNodes, impacted, total int) int {
	if coldNodes <= 0 {
		coldNodes = DefaultAutotuneDFSNodes
	}
	b := coldNodes * impacted / total
	if b < MinWarmDFSNodes {
		b = MinWarmDFSNodes
	}
	if b > coldNodes {
		b = coldNodes
	}
	return b
}

// rebindSenders translates an incumbent plan's sender devices into a
// congruent task's device space by logical mesh position (the identity
// when the plan was computed for this very task) and reports false when
// the decompositions do not line up. This mirrors the translation rule of
// PlanCache: tasks sharing a cache key have congruent meshes, so the
// sender for unit i is the device at the same mesh position.
func rebindSenders(incumbent *Plan, task *sharding.Task) (map[int]int, bool) {
	if len(incumbent.SenderOf) != len(task.Units) || len(incumbent.Order) != len(task.Units) {
		return nil, false
	}
	senderOf := make(map[int]int, len(task.Units))
	if incumbent.Task == task {
		for i, d := range incumbent.SenderOf {
			senderOf[i] = d
		}
		return senderOf, true
	}
	if len(incumbent.Task.Src.Mesh.Devices) != len(task.Src.Mesh.Devices) {
		return nil, false
	}
	pos := make(map[int]int, len(incumbent.Task.Src.Mesh.Devices))
	for idx, d := range incumbent.Task.Src.Mesh.Devices {
		pos[d] = idx
	}
	for i := range task.Units {
		dev, ok := incumbent.SenderOf[i]
		if !ok {
			return nil, false
		}
		p, ok := pos[dev]
		if !ok {
			return nil, false
		}
		senderOf[i] = task.Src.Mesh.Devices[p]
	}
	return senderOf, true
}

// sameHostTask reports whether a unit's host-level task is unchanged
// between two overlay bindings of the same boundary.
func sameHostTask(a, b *schedule.Task) bool {
	if a.ID != b.ID || a.Duration != b.Duration ||
		len(a.SenderHosts) != len(b.SenderHosts) || len(a.ReceiverHosts) != len(b.ReceiverHosts) {
		return false
	}
	for i := range a.SenderHosts {
		if a.SenderHosts[i] != b.SenderHosts[i] {
			return false
		}
	}
	for i := range a.ReceiverHosts {
		if a.ReceiverHosts[i] != b.ReceiverHosts[i] {
			return false
		}
	}
	return true
}

// ImpactedUnits diffs the host-level problem instances a boundary poses
// under two overlay bindings (the same devices on two topologies) and
// reports, per unit, whether its host task changed — different duration,
// sender hosts or receiver hosts. Units outside the impacted set can keep
// their incumbent senders: nothing the scheduler scores about them moved.
func ImpactedUnits(fromTask, toTask *sharding.Task, opts Options) ([]bool, int, error) {
	opts = opts.withDefaults()
	if len(fromTask.Units) != len(toTask.Units) {
		return nil, 0, fmt.Errorf("resharding: impacted units: decompositions differ (%d vs %d units)",
			len(fromTask.Units), len(toTask.Units))
	}
	fromHT := buildHostTasks(fromTask, opts)
	toHT := buildHostTasks(toTask, opts)
	impacted := make([]bool, len(toHT))
	count := 0
	for i := range toHT {
		if !sameHostTask(&fromHT[i], &toHT[i]) {
			impacted[i] = true
			count++
		}
	}
	return impacted, count, nil
}

// WarmReplanContext plans task — a boundary bound to the overlay being
// replanned onto — warm-started from incumbent, a (possibly translated)
// cached plan for fromTask, the same boundary bound to the overlay being
// replanned away from. See the package comment above WarmInfo for the
// impact/pinning/acceptance pipeline. The returned simulation is non-nil
// only when deciding the plan required one (the search-mode acceptance
// rule), and is then trace-free; in identity and cold modes it is nil —
// the replan itself needs no simulation, and the cache layer (or any
// other caller that wants timings) simulates the returned plan under its
// own trace configuration. A nil incumbent, a failed rebind or a
// non-ensemble scheduler falls back to a cold NewPlanContext with
// Mode == WarmCold; the result is then bit-identical to cold planning.
func WarmReplanContext(ctx context.Context, task *sharding.Task, opts Options, fromTask *sharding.Task, incumbent *Plan) (*Plan, *SimResult, WarmInfo, error) {
	opts = opts.withDefaults()
	info := WarmInfo{Mode: WarmCold, TotalUnits: len(task.Units)}
	cold := func() (*Plan, *SimResult, WarmInfo, error) {
		plan, err := NewPlanContext(ctx, task, opts)
		if err != nil {
			return nil, nil, info, err
		}
		return plan, nil, info, nil
	}
	// Only the ensemble scheduler pays a search worth warming; the
	// closed-form schedulers replan cold in microseconds.
	if incumbent == nil || fromTask == nil || opts.Scheduler != SchedEnsemble {
		return cold()
	}
	senderOf, ok := rebindSenders(incumbent, task)
	if !ok {
		return cold()
	}

	hostTasks := buildHostTasks(task, opts)
	topo := task.Src.Mesh.Topo
	incHostPlan := schedule.Plan{
		Sender: make(map[int]int, len(senderOf)),
		Order:  append([]int(nil), incumbent.Order...),
	}
	for i, dev := range senderOf {
		incHostPlan.Sender[i] = topo.HostOf(dev)
	}
	// Cold fallback when the incumbent rebinds as invalid for this task —
	// e.g. a cached plan from a congruent boundary whose sender replicas do
	// not line up after translation.
	if err := schedule.Validate(hostTasks, incHostPlan); err != nil {
		return cold()
	}

	impacted, count, err := ImpactedUnits(fromTask, task, opts)
	if err != nil {
		return cold()
	}
	info.ImpactedUnits = count

	// rebound materializes the incumbent on this task: same senders, same
	// order, re-costed host tasks.
	rebound := func() *Plan {
		return &Plan{
			Task:      task,
			Opts:      opts,
			SenderOf:  senderOf,
			Order:     append([]int(nil), incumbent.Order...),
			HostPlan:  incHostPlan,
			HostTasks: hostTasks,
		}
	}

	if count == 0 {
		// The degraded instance is identical to the incumbent's, so a cold
		// search would reproduce the incumbent's host plan bit for bit —
		// only the chunk-level simulation (detours, browned-out links) can
		// differ. Skip the search entirely; the caller simulates if it
		// wants timings.
		info.Mode = WarmIdentity
		return rebound(), nil, info, nil
	}

	// Pin the senders of unimpacted units to the incumbent's choices and
	// let the DFS re-decide only the impacted ones, under a node budget
	// scaled to the impacted fraction.
	pinned := make([]schedule.Task, len(hostTasks))
	copy(pinned, hostTasks)
	for i := range pinned {
		if !impacted[i] {
			pinned[i].SenderHosts = []int{incHostPlan.Sender[i]}
		}
	}
	info.DFSNodes = warmBudget(opts.DFSNodes, count, len(hostTasks))
	rng := rand.New(rand.NewSource(opts.Seed))
	stop := func() bool { return ctx.Err() != nil }
	hostPlan := schedule.EnsembleWarmStart(pinned, info.DFSNodes, opts.Trials, rng, incHostPlan, stop)
	if err := ctx.Err(); err != nil {
		return nil, nil, info, err
	}
	// Senders were chosen from pinned subsets of the real candidate sets,
	// so the plan must validate against the unpinned instance too.
	if err := schedule.Validate(hostTasks, hostPlan); err != nil {
		return nil, nil, info, fmt.Errorf("resharding: warm scheduler produced invalid plan: %v", err)
	}
	warmSenderOf, err := resolveDeviceSenders(task, hostPlan)
	if err != nil {
		return nil, nil, info, err
	}
	warmPlan := &Plan{
		Task:      task,
		Opts:      opts,
		SenderOf:  warmSenderOf,
		Order:     hostPlan.Order,
		HostPlan:  hostPlan,
		HostTasks: hostTasks,
	}

	// Prove-don't-trust acceptance: the host-level objective ranks plans by
	// an estimate; only the chunk-level simulation is authoritative. Accept
	// the warm plan iff it re-simulates no worse than the rebound incumbent.
	warmSim, err := warmPlan.SimulateNoTrace()
	if err != nil {
		return nil, nil, info, err
	}
	incPlan := rebound()
	incSim, err := incPlan.SimulateNoTrace()
	if err != nil {
		return nil, nil, info, err
	}
	info.WarmMakespan, info.IncumbentMakespan = warmSim.Makespan, incSim.Makespan
	if warmSim.Makespan > incSim.Makespan {
		info.Mode = WarmIncumbent
		return incPlan, incSim, info, nil
	}
	info.Mode = WarmSearch
	return warmPlan, warmSim, info, nil
}
