package resharding

import (
	"sync"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

func TestCacheHitMissSemantics(t *testing.T) {
	c := microCluster(2)
	cache := NewPlanCache()
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}

	task := autotuneTask(t, c, 0, 4)
	r1, err := cache.Simulate(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("after first lookup: %+v", st)
	}

	// The identical problem hits, and returns the same simulation.
	r2, err := cache.Simulate(autotuneTask(t, c, 0, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("after identical lookup: %+v", st)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("hit returned different makespan: %g vs %g", r1.Makespan, r2.Makespan)
	}

	// Any option that changes planning misses.
	for _, other := range []Options{
		{Strategy: SendRecv, Scheduler: SchedEnsemble, Seed: 1},
		{Strategy: Broadcast, Scheduler: SchedNaive, Seed: 1},
		{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 2},
		{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1, Chunks: 8},
	} {
		if _, err := cache.Simulate(autotuneTask(t, c, 0, 4), other); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Misses != 5 {
		t.Errorf("option variants must all miss: %+v", st)
	}
}

// TestCacheTranslationInvariance pins the cross-boundary property: a
// boundary on hosts 2->3 is served by the entry planned for hosts 0->1, and
// the cached timing equals what planning the translated boundary from
// scratch would produce.
func TestCacheTranslationInvariance(t *testing.T) {
	c := microCluster(4)
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}

	first := autotuneTask(t, c, 0, 4)
	translated := autotuneTask(t, c, 8, 12)
	if CacheKey(first, opts) != CacheKey(translated, opts) {
		t.Fatalf("congruent boundaries must share a key:\n%s\n%s",
			CacheKey(first, opts), CacheKey(translated, opts))
	}

	cache := NewPlanCache()
	if _, err := cache.Simulate(first, opts); err != nil {
		t.Fatal(err)
	}
	cached, err := cache.Simulate(translated, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("translated boundary must hit: %+v", st)
	}

	plan, err := NewPlan(translated, opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if cached.Makespan != fresh.Makespan || cached.NumOps != fresh.NumOps {
		t.Errorf("cached timing (%.9g, %d ops) != fresh timing (%.9g, %d ops)",
			cached.Makespan, cached.NumOps, fresh.Makespan, fresh.NumOps)
	}
}

// TestCacheKeyDiscriminates: keys must separate problems the simulator
// times differently.
func TestCacheKeyDiscriminates(t *testing.T) {
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}
	c := microCluster(4)

	base := autotuneTask(t, c, 0, 4)
	// Different destination placement.
	dst2, err := mesh.NewMesh(c, []int{1, 4}, contiguous(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	src, err := mesh.NewMesh(c, []int{2, 2}, contiguous(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	otherShape, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		src, sharding.MustParse("S01R"), dst2, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(base, opts) == CacheKey(otherShape, opts) {
		t.Error("different destination mesh shapes must not collide")
	}

	// A boundary that straddles a host is not congruent with an aligned one.
	srcStraddle, err := mesh.NewMesh(c, []int{2, 2}, []int{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	dstStraddle, err := mesh.NewMesh(c, []int{2, 2}, []int{10, 11, 12, 13})
	if err != nil {
		t.Fatal(err)
	}
	straddle, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		srcStraddle, sharding.MustParse("S01R"), dstStraddle, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(base, opts) == CacheKey(straddle, opts) {
		t.Error("host-aligned and host-straddling boundaries must not collide")
	}

	// The same layout on a different hardware tier must not collide.
	dgx := mesh.DGXA100Cluster(2)
	srcD, err := mesh.NewMesh(dgx, []int{2, 2}, contiguous(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	dstD, err := mesh.NewMesh(dgx, []int{2, 2}, contiguous(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	onDGX, err := sharding.NewTask(tensor.MustShape(64, 96), tensor.Float32,
		srcD, sharding.MustParse("S01R"), dstD, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(base, opts) == CacheKey(onDGX, opts) {
		t.Error("different hardware tiers must not collide")
	}
}

// TestCacheConcurrentSingleflight: concurrent lookups of one key plan once.
func TestCacheConcurrentSingleflight(t *testing.T) {
	c := microCluster(2)
	cache := NewPlanCache()
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1, DFSNodes: 1000}
	var wg sync.WaitGroup
	results := make([]float64, 16)
	tasks := make([]*sharding.Task, len(results))
	for i := range tasks {
		tasks[i] = autotuneTask(t, c, 0, 4)
	}
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cache.Simulate(tasks[i], opts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Makespan
		}(i)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Entries != 1 || st.Hits+st.Misses != 16 {
		t.Errorf("stats = %+v, want one entry and 16 lookups", st)
	}
	for i, m := range results {
		if m != results[0] {
			t.Fatalf("lookup %d returned %g, want %g", i, m, results[0])
		}
	}
}
