package resharding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// microCluster: GPUs like the paper's testbed but with round numbers:
// 4 devices/host, intra 1000 B/s, NIC 10 B/s, zero latency.
func microCluster(hosts int) *mesh.Cluster {
	c, err := mesh.NewCluster(hosts, 4, 1000, 10, 0, 0)
	if err != nil {
		panic(err)
	}
	return c
}

// oneToMany builds the Fig. 5 setting: a single sender device on host 0
// holding a replicated tensor, and n receiver devices on hosts 1.. with a
// replicated destination spec. The tensor has `elements` float32 elements.
func oneToMany(t *testing.T, c *mesh.Cluster, recvDevices []int, rows, cols int) *sharding.Task {
	t.Helper()
	src, err := mesh.NewMesh(c, []int{1, 1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := mesh.NewMesh(c, []int{1, len(recvDevices)}, recvDevices)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sharding.NewTask(tensor.MustShape(rows, cols), tensor.Float32, src, sharding.MustParse("RR"), dst, sharding.MustParse("RR"))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func simulate(t *testing.T, task *sharding.Task, opts Options) *SimResult {
	t.Helper()
	p, err := NewPlan(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSendRecvScalesWithReceivers pins Fig. 5a's Send/Recv curve: latency
// grows linearly with receiver count.
func TestSendRecvScalesWithReceivers(t *testing.T) {
	c := microCluster(2)
	// 40 x 10 fp32 = 1600 bytes; t = 160 s.
	const tUnit = 160.0
	for n := 1; n <= 4; n++ {
		devs := make([]int, n)
		for i := range devs {
			devs[i] = 4 + i
		}
		task := oneToMany(t, c, devs, 40, 10)
		res := simulate(t, task, Options{Strategy: SendRecv, Scheduler: SchedNaive})
		want := float64(n) * tUnit
		if math.Abs(res.Makespan-want) > 1e-6 {
			t.Errorf("n=%d: send/recv makespan = %v, want %v", n, res.Makespan, want)
		}
	}
}

// TestBroadcastFlatAcrossReceivers pins Fig. 5a/5b's "Ours" curve: the
// broadcast completes in ≈ t regardless of receiver count or host count.
func TestBroadcastFlatAcrossReceivers(t *testing.T) {
	const tUnit = 160.0
	// 5a: one receiver host, 1-4 GPUs.
	c := microCluster(2)
	for n := 1; n <= 4; n++ {
		devs := make([]int, n)
		for i := range devs {
			devs[i] = 4 + i
		}
		task := oneToMany(t, c, devs, 40, 10)
		res := simulate(t, task, Options{Strategy: Broadcast, Chunks: 16})
		if res.Makespan < tUnit || res.Makespan > tUnit*1.15 {
			t.Errorf("5a n=%d: broadcast makespan = %v, want ≈ %v", n, res.Makespan, tUnit)
		}
	}
	// 5b: 1-4 receiver hosts, 2 GPUs each.
	c = microCluster(5)
	for a := 1; a <= 4; a++ {
		var devs []int
		for h := 1; h <= a; h++ {
			devs = append(devs, h*4, h*4+1)
		}
		task := oneToMany(t, c, devs, 40, 10)
		res := simulate(t, task, Options{Strategy: Broadcast, Chunks: 32})
		if res.Makespan < tUnit || res.Makespan > tUnit*1.2 {
			t.Errorf("5b hosts=%d: broadcast makespan = %v, want ≈ %v", a, res.Makespan, tUnit)
		}
	}
}

// TestAlpaUnevenFallback pins the Fig. 5 "sudden performance drop": with 3
// receivers the slice does not divide evenly, Alpa falls back to send/recv
// and slows down ~3x, while broadcast is unaffected.
func TestAlpaUnevenFallback(t *testing.T) {
	c := microCluster(2)
	// 40 x 10 = 400 elements: divisible by 2 and 4, not by 3.
	mk := func(n int, s Strategy) float64 {
		devs := make([]int, n)
		for i := range devs {
			devs[i] = 4 + i
		}
		return simulate(t, oneToMany(t, c, devs, 40, 10), Options{Strategy: s, Scheduler: SchedGreedyLoad}).Makespan
	}
	even := mk(2, Alpa)
	uneven := mk(3, Alpa)
	if uneven < 2.5*even {
		t.Errorf("alpa at n=3 should collapse to send/recv: even=%v uneven=%v", even, uneven)
	}
	if b := mk(3, Broadcast); b > 1.2*even {
		t.Errorf("broadcast must handle uneven partitions natively: %v vs %v", b, even)
	}
}

// TestAlpaMultiHostDegrades pins §5.1.1: once the receiver mesh spans
// several hosts, Alpa's all-gather crosses slow links and costs ≈ 2t,
// while the pipelined broadcast stays at ≈ t.
func TestAlpaMultiHostDegrades(t *testing.T) {
	c := microCluster(3)
	devs := []int{4, 5, 8, 9} // hosts 1 and 2, 2 GPUs each
	task := oneToMany(t, c, devs, 40, 10)
	alpa := simulate(t, task, Options{Strategy: Alpa, Scheduler: SchedGreedyLoad}).Makespan
	ours := simulate(t, task, Options{Strategy: Broadcast, Chunks: 32}).Makespan
	if alpa < 1.5*ours {
		t.Errorf("alpa (%v) should be ≈ 2x broadcast (%v) for multi-host receivers", alpa, ours)
	}
}

// TestSchedulingOrderMatters reproduces the Fig. 6 case-3 phenomenon: four
// unit tasks between two sender hosts and two receiver hosts; the naive
// order makes both senders target the same receiver first (one idles),
// while the ensemble finds the 2-round packing.
func TestSchedulingOrderMatters(t *testing.T) {
	c := microCluster(4)
	src, _ := c.Slice([]int{2, 4}, 0)
	dst, _ := c.Slice([]int{2, 4}, 8)
	task, err := sharding.NewTask(tensor.MustShape(64, 64), tensor.Float32, src, sharding.MustParse("RS0"), dst, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Units) != 4 {
		t.Fatalf("expected 4 unit tasks, got %d", len(task.Units))
	}
	naive, err := NewPlan(task, Options{Strategy: Broadcast, Scheduler: SchedNaive, Chunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	ours, err := NewPlan(task, Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Chunks: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nm, _ := naive.Simulate()
	om, _ := ours.Simulate()
	if om.Makespan >= nm.Makespan {
		t.Errorf("ensemble (%v) should beat naive order (%v)", om.Makespan, nm.Makespan)
	}
	// The packed schedule uses both sender NICs: effective bandwidth above
	// a single NIC's 10 B/s * 8 = 80 bits/s... compare in ratio instead.
	if nm.Makespan/om.Makespan < 1.4 {
		t.Errorf("expected ≈ 1.5x gain from ordering, got %v", nm.Makespan/om.Makespan)
	}
}

// TestHostMakespanMatchesSim: the Eq. 1-3 host-level objective should agree
// with the chunk-level simulation within pipelining slack.
func TestHostMakespanMatchesSim(t *testing.T) {
	c := microCluster(4)
	src, _ := c.Slice([]int{2, 4}, 0)
	dst, _ := c.Slice([]int{2, 4}, 8)
	task, _ := sharding.NewTask(tensor.MustShape(64, 64), tensor.Float32, src, sharding.MustParse("RS0"), dst, sharding.MustParse("S0R"))
	p, err := NewPlan(task, Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Chunks: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	host, err := p.HostMakespan()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Makespan < host*0.99 || sim.Makespan > host*1.3 {
		t.Errorf("sim makespan %v vs host-level estimate %v", sim.Makespan, host)
	}
}

// TestSignalStrategyIsCheap: the Signal upper bound moves one byte per
// receiver and completes essentially immediately.
func TestSignalStrategyIsCheap(t *testing.T) {
	c := microCluster(2)
	task := oneToMany(t, c, []int{4, 5, 6, 7}, 40, 10)
	res := simulate(t, task, Options{Strategy: Signal})
	real := simulate(t, task, Options{Strategy: Broadcast})
	if res.Makespan > real.Makespan/50 {
		t.Errorf("signal makespan %v should be negligible vs %v", res.Makespan, real.Makespan)
	}
}

func TestPlanRejectsMismatchedClusters(t *testing.T) {
	// The clusters must differ in hardware, not just in instance:
	// SameTopology treats independently built identical topologies as one
	// (fingerprint fallback), and planning across those is well-defined.
	c1, c2 := microCluster(2), microCluster(3)
	src, _ := c1.Slice([]int{1, 1}, 0)
	dst, _ := c2.Slice([]int{1, 1}, 4)
	task, err := sharding.NewTask(tensor.MustShape(8, 8), tensor.Float32, src, sharding.MustParse("RR"), dst, sharding.MustParse("RR"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(task, Options{}); err == nil {
		t.Error("meshes on different clusters should be rejected")
	}
}

func TestStrategyAndSchedulerStrings(t *testing.T) {
	for _, s := range []Strategy{SendRecv, LocalAllGather, GlobalAllGather, Broadcast, Alpa, Signal, Strategy(99)} {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
	for _, s := range []Scheduler{SchedNaive, SchedGreedyLoad, SchedLoadBalanceOnly, SchedEnsemble, Scheduler(99)} {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
}

func TestPlanUnknownScheduler(t *testing.T) {
	c := microCluster(2)
	task := oneToMany(t, c, []int{4}, 8, 8)
	if _, err := NewPlan(task, Options{Scheduler: Scheduler(42)}); err == nil {
		t.Error("unknown scheduler should be rejected")
	}
}

// TestExecuteCorrectness: the data plane delivers exactly the right bytes
// for the paper's Figure 2 tasks.
func TestExecuteCorrectness(t *testing.T) {
	c := microCluster(2)
	meshA, _ := c.Slice([]int{2, 2}, 0)
	meshB, _ := c.Slice([]int{2, 2}, 4)
	task, err := sharding.NewTask(tensor.MustShape(4, 4), tensor.Float32, meshA, sharding.MustParse("S01R"), meshB, sharding.MustParse("S0R"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(task, Options{Strategy: Broadcast})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoundTrip(p); err != nil {
		t.Fatal(err)
	}
}

// Property: for random spec pairs and every strategy/scheduler combination,
// plan + execute delivers correct bytes to every destination device, and
// the simulation produces a positive finite makespan.
func TestRoundTripProperty(t *testing.T) {
	specs := []string{"RR", "S0R", "S1R", "RS0", "RS1", "S0S1", "S1S0", "S01R", "RS01"}
	strategies := []Strategy{SendRecv, LocalAllGather, GlobalAllGather, Broadcast, Alpa}
	schedulers := []Scheduler{SchedNaive, SchedGreedyLoad, SchedLoadBalanceOnly, SchedEnsemble}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := microCluster(4)
		src, _ := c.Slice([]int{2, 2}, r.Intn(2)) // may straddle host boundary? 2x2 from 0 or 1
		dst, _ := c.Slice([]int{2, 2}, 8+r.Intn(2))
		shape := tensor.MustShape(4+2*r.Intn(15), 4+2*r.Intn(15))
		task, err := sharding.NewTask(shape, tensor.Float32, src,
			sharding.MustParse(specs[r.Intn(len(specs))]), dst, sharding.MustParse(specs[r.Intn(len(specs))]))
		if err != nil {
			return false
		}
		opts := Options{
			Strategy:  strategies[r.Intn(len(strategies))],
			Scheduler: schedulers[r.Intn(len(schedulers))],
			Seed:      seed,
		}
		p, err := NewPlan(task, opts)
		if err != nil {
			return false
		}
		res, err := RoundTrip(p)
		if err != nil {
			return false
		}
		return res.Makespan > 0 && !math.IsInf(res.Makespan, 0) && !math.IsNaN(res.Makespan)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: broadcast is never slower than naive send/recv, for any
// random resharding (the §3.1 dominance claim).
func TestBroadcastDominatesSendRecv(t *testing.T) {
	specs := []string{"RR", "S0R", "RS0", "S0S1", "S01R"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := microCluster(4)
		src, _ := c.Slice([]int{2, 2}, 0)
		dst, _ := c.Slice([]int{2, 2}, 8)
		shape := tensor.MustShape(16+2*r.Intn(8), 16+2*r.Intn(8))
		task, err := sharding.NewTask(shape, tensor.Float32, src,
			sharding.MustParse(specs[r.Intn(len(specs))]), dst, sharding.MustParse(specs[r.Intn(len(specs))]))
		if err != nil {
			return false
		}
		pb, err := NewPlan(task, Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: seed, Chunks: 16})
		if err != nil {
			return false
		}
		ps, err := NewPlan(task, Options{Strategy: SendRecv, Scheduler: SchedEnsemble, Seed: seed})
		if err != nil {
			return false
		}
		rb, err1 := pb.Simulate()
		rs, err2 := ps.Simulate()
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.Makespan <= rs.Makespan*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
