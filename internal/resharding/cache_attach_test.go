package resharding

import (
	"testing"
)

// TestCacheTraceFreeSimulation: a trace-free cache produces timings
// identical to a full-trace fill, with the Events/Utilization payload —
// the dominant fill allocation — absent.
func TestCacheTraceFreeSimulation(t *testing.T) {
	c := microCluster(2)
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}
	task := autotuneTask(t, c, 0, 4)

	full := NewPlanCache()
	if full.SimulatesNoTrace() {
		t.Fatal("new cache must default to full traces")
	}
	fullSim, err := full.Simulate(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullSim.Events) == 0 {
		t.Fatal("full-trace fill has no events")
	}

	lean := NewPlanCache()
	lean.SetSimulateNoTrace(true)
	if !lean.SimulatesNoTrace() {
		t.Fatal("SetSimulateNoTrace(true) not observed")
	}
	leanSim, err := lean.Simulate(autotuneTask(t, c, 0, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if leanSim.Events != nil || leanSim.Utilization != nil {
		t.Errorf("trace-free fill kept a trace: %d events", len(leanSim.Events))
	}
	if leanSim.Makespan != fullSim.Makespan ||
		leanSim.EffectiveGbps != fullSim.EffectiveGbps ||
		leanSim.NumOps != fullSim.NumOps {
		t.Errorf("trace-free timings differ: %+v vs %+v", leanSim, fullSim)
	}
}

// TestCacheAttachment: Attach sticks an arbitrary value to a ready entry
// and LookupKeyedAttachment returns it alongside the plan; missing,
// in-flight or unknown keys refuse the attachment.
func TestCacheAttachment(t *testing.T) {
	c := microCluster(2)
	cache := NewPlanCache()
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}
	task := autotuneTask(t, c, 0, 4)
	key := CacheKey(task, opts.WithDefaults())

	if cache.Attach(key, "early") {
		t.Error("Attach succeeded on a key that was never filled")
	}
	if _, _, _, ok := cache.LookupKeyedAttachment(key); ok {
		t.Error("LookupKeyedAttachment hit an empty cache")
	}

	plan, sim, err := cache.PlanAndSimulateKeyed(key, task, opts)
	if err != nil {
		t.Fatal(err)
	}
	payload := &struct{ n int }{42}
	if !cache.Attach(key, payload) {
		t.Fatal("Attach refused a ready entry")
	}

	gotPlan, gotSim, att, ok := cache.LookupKeyedAttachment(key)
	if !ok {
		t.Fatal("LookupKeyedAttachment missed a filled key")
	}
	if gotPlan != plan || gotSim != sim {
		t.Error("attachment lookup returned a different plan or simulation")
	}
	if att != interface{}(payload) {
		t.Errorf("attachment = %v, want the attached payload", att)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("attachment lookup must count as a hit: %+v", st)
	}

	// Re-attaching replaces the value (last writer wins).
	if !cache.Attach(key, "v2") {
		t.Fatal("re-Attach refused")
	}
	if _, _, att, _ := cache.LookupKeyedAttachment(key); att != interface{}("v2") {
		t.Errorf("re-attachment not visible: %v", att)
	}
}

// TestCacheAttachmentEvicted: an attachment dies with its entry — after an
// LRU eviction both Attach and the lookup miss.
func TestCacheAttachmentEvicted(t *testing.T) {
	c := microCluster(2)
	cache := NewLRUPlanCache(1)
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}

	taskA := autotuneTask(t, c, 0, 4)
	keyA := CacheKey(taskA, opts.WithDefaults())
	if _, _, err := cache.PlanAndSimulateKeyed(keyA, taskA, opts); err != nil {
		t.Fatal(err)
	}
	if !cache.Attach(keyA, "a") {
		t.Fatal("Attach refused a ready entry")
	}

	// A second key evicts the first from the capacity-1 cache.
	optsB := opts
	optsB.Seed = 2
	keyB := CacheKey(taskA, optsB.WithDefaults())
	if _, _, err := cache.PlanAndSimulateKeyed(keyB, autotuneTask(t, c, 0, 4), optsB); err != nil {
		t.Fatal(err)
	}

	if cache.Attach(keyA, "resurrect") {
		t.Error("Attach succeeded on an evicted entry")
	}
	if _, _, _, ok := cache.LookupKeyedAttachment(keyA); ok {
		t.Error("LookupKeyedAttachment hit an evicted entry")
	}
}
