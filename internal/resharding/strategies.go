package resharding

import (
	"fmt"
	"sort"

	"alpacomm/internal/collective"
	"alpacomm/internal/mesh"
	"alpacomm/internal/netsim"
)

// buildUnitOps registers the communication ops of one unit task under the
// plan's strategy and returns the completion ops (one per receiver-side
// endpoint), used to chain Eq. 3 exclusivity between unit tasks.
func buildUnitOps(net *netsim.ClusterNet, opts Options, label string, sender int, receivers []int, elements, bytes int64, seq int, deps []netsim.OpID) ([]netsim.OpID, error) {
	switch opts.Strategy {
	case SendRecv:
		return buildSendRecv(net, label, sender, receivers, bytes, seq, deps)
	case LocalAllGather:
		return buildLocalAllGather(net, label, sender, receivers, bytes, seq, deps)
	case GlobalAllGather:
		return buildGlobalAllGather(net, label, sender, receivers, bytes, seq, deps, false)
	case Broadcast:
		return buildBroadcast(net, opts, label, sender, receivers, bytes, seq, deps)
	case Alpa:
		return buildAlpa(net, label, sender, receivers, elements, bytes, seq, deps)
	case Signal:
		return buildSendRecv(net, label, sender, receivers, 1, seq, deps)
	default:
		return nil, fmt.Errorf("resharding: unknown strategy %v", opts.Strategy)
	}
}

// buildSendRecv: one full copy per receiver device, serialized on the
// sender's resources (Fig. 3a).
func buildSendRecv(net *netsim.ClusterNet, label string, sender int, receivers []int, bytes int64, seq int, deps []netsim.OpID) ([]netsim.OpID, error) {
	var done []netsim.OpID
	for _, dst := range receivers {
		lbl := netsim.Label{Prefix: label, Kind: netsim.LabelSendRecv, A: int32(dst)}
		id, err := net.Transfer(lbl, sender, dst, bytes, seq, deps...)
		if err != nil {
			return nil, err
		}
		done = append(done, id)
	}
	return done, nil
}

// buildLocalAllGather: per receiver host, scatter 1/B to each device and
// all-gather locally (Fig. 3b). Receivers on the sender's own host get
// direct NVLink copies.
func buildLocalAllGather(net *netsim.ClusterNet, label string, sender int, receivers []int, bytes int64, seq int, deps []netsim.OpID) ([]netsim.OpID, error) {
	c := net.Topo
	var done []netsim.OpID
	for _, group := range groupByHost(c, receivers) {
		if c.HostOf(group[0]) == c.HostOf(sender) || len(group) == 1 {
			d, err := buildSendRecv(net, label, sender, group, bytes, seq, deps)
			if err != nil {
				return nil, err
			}
			done = append(done, d...)
			continue
		}
		parts := splitBytes(bytes, len(group))
		startDeps := map[int][]netsim.OpID{}
		for i, dst := range group {
			lbl := netsim.Label{Prefix: label, Kind: netsim.LabelScatter, A: int32(dst)}
			id, err := net.Transfer(lbl, sender, dst, parts[i], seq, deps...)
			if err != nil {
				return nil, err
			}
			startDeps[dst] = []netsim.OpID{id}
		}
		res, err := collective.RingAllGather(net, label+"/lag", group, bytes, seq, startDeps)
		if err != nil {
			return nil, err
		}
		done = append(done, res.AllDone()...)
	}
	return done, nil
}

// buildGlobalAllGather: scatter 1/(A·B) to every receiver, then one global
// ring all-gather (Fig. 3c). With barrier=true the all-gather waits for the
// whole scatter phase (separate launches, the Alpa baseline's behaviour);
// otherwise each device's part of the all-gather starts as soon as its own
// chunk arrives.
func buildGlobalAllGather(net *netsim.ClusterNet, label string, sender int, receivers []int, bytes int64, seq int, deps []netsim.OpID, barrier bool) ([]netsim.OpID, error) {
	if len(receivers) == 1 {
		return buildSendRecv(net, label, sender, receivers, bytes, seq, deps)
	}
	ring := collective.RingOrder(net.Topo, receivers)
	parts := splitBytes(bytes, len(ring))
	startDeps := map[int][]netsim.OpID{}
	var scatterOps []netsim.OpID
	for i, dst := range ring {
		lbl := netsim.Label{Prefix: label, Kind: netsim.LabelScatter, A: int32(dst)}
		id, err := net.Transfer(lbl, sender, dst, parts[i], seq, deps...)
		if err != nil {
			return nil, err
		}
		scatterOps = append(scatterOps, id)
		startDeps[dst] = []netsim.OpID{id}
	}
	if barrier {
		for _, dst := range ring {
			startDeps[dst] = scatterOps
		}
	}
	res, err := collective.RingAllGather(net, label+"/gag", ring, bytes, seq, startDeps)
	if err != nil {
		return nil, err
	}
	return res.AllDone(), nil
}

// buildBroadcast: the paper's pipelined broadcast chain (Fig. 3d). On
// clusters with several NICs per host, the unit task is divided into one
// sub-task per NIC (the §3.1 future-work extension): each part travels its
// own chain over a distinct NIC, multiplying cross-host bandwidth.
func buildBroadcast(net *netsim.ClusterNet, opts Options, label string, sender int, receivers []int, bytes int64, seq int, deps []netsim.OpID) ([]netsim.OpID, error) {
	chain := collective.BroadcastOrder(net.Topo, sender, receivers)
	chunks := opts.Chunks
	if chunks <= 0 {
		chunks = collective.DefaultChunks(bytes)
	}
	nics := chainNICs(net.Topo, chain)
	if nics == 1 || bytes < int64(nics) {
		res, err := collective.BroadcastChain(net, label+"/bc", chain, bytes, chunks, seq, deps...)
		if err != nil {
			return nil, err
		}
		return res.AllDone(), nil
	}
	parts := splitBytes(bytes, nics)
	perNICChunks := (chunks + nics - 1) / nics
	if perNICChunks < 1 {
		perNICChunks = 1
	}
	var done []netsim.OpID
	for k, part := range parts {
		res, err := collective.BroadcastChain(net.OnNIC(k), fmt.Sprintf("%s/bc.nic%d", label, k), chain, part, perNICChunks, seq, deps...)
		if err != nil {
			return nil, err
		}
		done = append(done, res.AllDone()...)
	}
	return done, nil
}

// buildAlpa models the Alpa/Megatron-LM all-gather baseline: per-host
// all-gather when the receivers sit on one host, global all-gather with a
// scatter barrier otherwise — but only when the slice divides evenly over
// the receivers; uneven partitions fall back to naive send/recv (§5.1.1:
// "Alpa cannot handle uneven partition").
func buildAlpa(net *netsim.ClusterNet, label string, sender int, receivers []int, elements, bytes int64, seq int, deps []netsim.OpID) ([]netsim.OpID, error) {
	c := net.Topo
	groups := groupByHost(c, receivers)
	multiHost := len(groups) > 1
	if !multiHost {
		if elements%int64(len(receivers)) != 0 {
			return buildSendRecv(net, label, sender, receivers, bytes, seq, deps)
		}
		return buildLocalAllGather(net, label, sender, receivers, bytes, seq, deps)
	}
	if elements%int64(len(receivers)) != 0 {
		return buildSendRecv(net, label, sender, receivers, bytes, seq, deps)
	}
	return buildGlobalAllGather(net, label, sender, receivers, bytes, seq, deps, true)
}

// chainNICs returns the number of NICs a broadcast chain can stripe over:
// the smallest NIC count among the hosts on the chain, so every part of a
// split unit task has a dedicated NIC on every hop.
func chainNICs(t mesh.Topology, chain []int) int {
	nics := 0
	seen := map[int]bool{}
	for _, d := range chain {
		h := t.HostOf(d)
		if seen[h] {
			continue
		}
		seen[h] = true
		if n := t.NICCount(h); nics == 0 || n < nics {
			nics = n
		}
	}
	if nics < 1 {
		nics = 1
	}
	return nics
}

// groupByHost splits devices into per-host groups, hosts ascending,
// devices ascending within a host.
func groupByHost(c mesh.Topology, devices []int) [][]int {
	byHost := map[int][]int{}
	for _, d := range devices {
		byHost[c.HostOf(d)] = append(byHost[c.HostOf(d)], d)
	}
	var hosts []int
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	out := make([][]int, 0, len(hosts))
	for _, h := range hosts {
		g := byHost[h]
		sort.Ints(g)
		out = append(out, g)
	}
	return out
}

// splitBytes divides bytes into n near-even parts.
func splitBytes(bytes int64, n int) []int64 {
	out := make([]int64, n)
	prev := int64(0)
	for j := 1; j <= n; j++ {
		b := int64(j) * bytes / int64(n)
		out[j-1] = b - prev
		prev = b
	}
	return out
}
