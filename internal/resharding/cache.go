package resharding

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
)

// PlanCache memoizes planned-and-simulated reshardings keyed by
// (source placement, destination placement, topology, options). The key is
// canonical under host translation: two stage boundaries whose meshes have
// the same shape, the same specs and the same layout relative to
// interchangeable hosts share one entry, even when they sit on different
// physical hosts. A production planner sees millions of structurally
// identical boundaries — one per stage pair per pipeline — and this cache
// collapses them to one planning pass each.
//
// Timing fields of the cached SimResult (Makespan, EffectiveGbps, NumOps)
// are exact for every task that maps to the key: the network model is
// translation-invariant across interchangeable hosts. The cached Plan and
// the trace fields (Events, Utilization) belong to the first task planned
// under the key, so their device and host identifiers may be translated
// relative to a later caller's meshes; use NewPlan directly when a plan
// must be executed on specific devices.
//
// A PlanCache is safe for concurrent use; concurrent requests for the same
// key plan once and share the entry.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	once sync.Once
	plan *Plan
	sim  *SimResult
	err  error
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: map[string]*cacheEntry{}}
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Hits is the number of lookups served from an existing entry.
	Hits int
	// Misses is the number of lookups that had to plan and simulate.
	Misses int
	// Entries is the number of distinct keys planned.
	Entries int
}

// Stats returns a snapshot of the hit/miss counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Simulate returns the simulated execution of the task under the options,
// planning it only if no structurally identical resharding has been planned
// before.
func (c *PlanCache) Simulate(task *sharding.Task, opts Options) (*SimResult, error) {
	_, sim, err := c.PlanAndSimulate(task, opts)
	return sim, err
}

// PlanAndSimulate returns the cached plan and simulation for the task,
// computing and storing them on first use. See the type comment for what
// the cached plan means on a translated hit.
func (c *PlanCache) PlanAndSimulate(task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	opts = opts.withDefaults()
	key := CacheKey(task, opts)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.plan, e.err = NewPlan(task, opts)
		if e.err != nil {
			return
		}
		e.sim, e.err = e.plan.Simulate()
	})
	return e.plan, e.sim, e.err
}

// CacheKey renders the canonical identity of a resharding problem: global
// shape and dtype, both mesh layouts with devices rebased to the lowest
// involved host, both specs, the per-host hardware fingerprints and
// pairwise fabric properties of the involved hosts, and every option that
// influences planning or simulation.
func CacheKey(task *sharding.Task, opts Options) string {
	topo := task.Src.Mesh.Topo
	hosts := involvedHosts(topo, task)
	base := hosts[0]
	// Memoize each host's first device index: DevicesOnHost allocates, and
	// the key is computed on every lookup — the cache-hit fast path.
	firstDev := make(map[int]int, len(hosts))
	for _, h := range hosts {
		firstDev[h] = topo.DevicesOnHost(h)[0]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "t=%v/%v;", task.Global, task.DType)
	writeMesh(&b, "s", topo, task.Src, base, firstDev)
	writeMesh(&b, "d", topo, task.Dst, base, firstDev)
	for _, h := range hosts {
		fmt.Fprintf(&b, "h%d[%s];", h-base, mesh.HostFingerprint(topo, h))
	}
	for _, a := range hosts {
		for _, r := range hosts {
			if a == r {
				continue
			}
			fmt.Fprintf(&b, "x%d-%d:%g/%g;", a-base, r-base, topo.InterBandwidth(a, r), topo.InterLatency(a, r))
		}
	}
	fmt.Fprintf(&b, "o=%d/%d/%d/%d/%d/%d/%d", opts.Strategy, opts.Scheduler,
		opts.Chunks, int64(opts.DFSBudget), opts.DFSNodes, opts.Trials, opts.Seed)
	return b.String()
}

// writeMesh renders one placement: mesh shape, spec, and each device as
// (host - base, offset within host).
func writeMesh(b *strings.Builder, tag string, topo mesh.Topology, p *sharding.Placement, base int, firstDev map[int]int) {
	fmt.Fprintf(b, "%s=%v/%s@", tag, p.Mesh.Shape, p.Spec)
	for _, d := range p.Mesh.Devices {
		h := topo.HostOf(d)
		fmt.Fprintf(b, "%d.%d,", h-base, d-firstDev[h])
	}
	b.WriteByte(';')
}

// involvedHosts returns the sorted union of hosts the two meshes span.
func involvedHosts(topo mesh.Topology, task *sharding.Task) []int {
	seen := map[int]bool{}
	var hosts []int
	for _, m := range []*mesh.Mesh{task.Src.Mesh, task.Dst.Mesh} {
		for _, d := range m.Devices {
			h := topo.HostOf(d)
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
	}
	sort.Ints(hosts)
	return hosts
}
