package resharding

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
)

// PlanCache memoizes planned-and-simulated reshardings keyed by
// (source placement, destination placement, topology, options). The key is
// canonical under host translation: two stage boundaries whose meshes have
// the same shape, the same specs and the same layout relative to
// interchangeable hosts share one entry, even when they sit on different
// physical hosts. A production planner sees millions of structurally
// identical boundaries — one per stage pair per pipeline — and this cache
// collapses them to one planning pass each.
//
// Timing fields of the cached SimResult (Makespan, EffectiveGbps, NumOps)
// are exact for every task that maps to the key: the network model is
// translation-invariant across interchangeable hosts. The cached Plan and
// the trace fields (Events, Utilization) belong to the first task planned
// under the key, so their device and host identifiers may be translated
// relative to a later caller's meshes; use NewPlan directly when a plan
// must be executed on specific devices.
//
// A cache created by NewLRUPlanCache is bounded: once it holds Capacity
// entries, each new key evicts the least-recently-used entry, so memory
// stays flat no matter how many distinct reshardings pass through it. A
// cache created by NewPlanCache never evicts.
//
// Entries whose planning or simulation failed are not retained: the error
// is returned to every lookup that coalesced onto the failing computation,
// then the key is forgotten, so a transient failure is never replayed to
// later callers.
//
// A PlanCache is safe for concurrent use; concurrent requests for the same
// key plan once and share the entry — including requests that race with
// the entry's eviction, which complete against the shared computation
// while new arrivals plan afresh. Coalesced waits are cancellable: a
// waiter whose context ends before the leader finishes returns ctx.Err()
// immediately and leaves the entry intact for every other waiter.
type PlanCache struct {
	mu        sync.Mutex
	entries   map[string]*cacheEntry
	lru       *list.List // most recent at front; nil when unbounded
	capacity  int        // 0 = unbounded
	hits      int
	misses    int
	evictions int
	// noTrace makes leaders simulate without the Events timeline or the
	// Utilization report; see SetSimulateNoTrace.
	noTrace atomic.Bool
}

type cacheEntry struct {
	key string
	// elem is the entry's LRU list node; nil when the cache is unbounded
	// or the entry has been evicted.
	elem *list.Element
	// done is closed by the leader (the goroutine that created the entry)
	// once plan/sim/err are set; waiters select on it against their own
	// context, so a disconnected waiter never blocks on a computation it
	// no longer wants — and its departure is invisible to other waiters.
	done chan struct{}
	// ready is set just before done closes; a true load makes reading
	// plan/sim/err safe without touching the channel.
	ready atomic.Bool
	plan  *Plan
	sim   *SimResult
	err   error
	// attach is an opaque sidecar a caller associated with the completed
	// entry via PlanCache.Attach — e.g. the plan server's pre-serialized
	// wire bodies, built once at fill time and handed back byte-for-byte
	// on every later hit. It shares the entry's lifetime: evicting or
	// forgetting the entry drops the attachment with it.
	attach atomic.Value
}

// NewPlanCache returns an empty unbounded cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: map[string]*cacheEntry{}}
}

// NewLRUPlanCache returns an empty cache bounded to capacity entries with
// least-recently-used eviction. capacity <= 0 means unbounded.
func NewLRUPlanCache(capacity int) *PlanCache {
	c := NewPlanCache()
	if capacity > 0 {
		c.capacity = capacity
		c.lru = list.New()
	}
	return c
}

// Capacity returns the eviction bound, 0 when unbounded.
func (c *PlanCache) Capacity() int { return c.capacity }

// SetSimulateNoTrace switches the cache between full-trace and trace-free
// simulation of new entries. When on, a leader fills its entry with
// Plan.SimulateNoTrace: the timing fields (Makespan, EffectiveGbps,
// NumOps) are identical to Simulate's, but Events and Utilization are nil.
// Serving layers flip this on — responses carry timings, never traces, and
// the Events rendering dominates a cache fill's allocations. Entries
// already resident keep whatever simulation they were filled with.
func (c *PlanCache) SetSimulateNoTrace(on bool) { c.noTrace.Store(on) }

// SimulateNoTrace reports whether new entries are simulated trace-free.
func (c *PlanCache) SimulatesNoTrace() bool { return c.noTrace.Load() }

// Attach associates an opaque sidecar value with the completed entry for
// key — e.g. a pre-serialized response body a server wants to reuse on
// later hits. It reports false (and stores nothing) when the key is
// absent, still being planned, or errored; the caller simply rebuilds the
// sidecar on a later hit. Attach never blocks on in-flight planning.
func (c *PlanCache) Attach(key string, v interface{}) bool {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok || !e.ready.Load() || e.err != nil {
		return false
	}
	// atomic.Value requires one consistent concrete type across stores;
	// the box keeps Attach agnostic to what callers attach.
	e.attach.Store(attachBox{v})
	return true
}

// attachBox wraps attachments of arbitrary dynamic type for atomic.Value.
type attachBox struct{ v interface{} }

// LookupKeyedAttachment is LookupKeyed plus the entry's attachment (nil
// when none was attached). Like LookupKeyed it never blocks on an
// in-flight computation.
func (c *PlanCache) LookupKeyedAttachment(key string) (*Plan, *SimResult, interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.ready.Load() || e.err != nil {
		return nil, nil, nil, false
	}
	c.hits++
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	var att interface{}
	if box, ok := e.attach.Load().(attachBox); ok {
		att = box.v
	}
	return e.plan, e.sim, att, true
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Hits is the number of lookups served from an existing entry.
	Hits int
	// Misses is the number of lookups that had to plan and simulate.
	Misses int
	// Entries is the number of keys currently resident.
	Entries int
	// Evictions is the number of entries dropped to respect Capacity.
	Evictions int
	// Capacity is the eviction bound, 0 when unbounded.
	Capacity int
}

// Stats returns a snapshot of the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Entries: len(c.entries),
		Evictions: c.evictions, Capacity: c.capacity,
	}
}

// Simulate returns the simulated execution of the task under the options,
// planning it only if no structurally identical resharding has been planned
// before.
//
// Deprecated: use SimulateContext (or a Planner session) so heavy searches
// and coalesced waits stay cancellable.
func (c *PlanCache) Simulate(task *sharding.Task, opts Options) (*SimResult, error) {
	return c.SimulateContext(context.Background(), task, opts)
}

// SimulateContext is Simulate with cooperative cancellation; see
// PlanAndSimulateContext.
func (c *PlanCache) SimulateContext(ctx context.Context, task *sharding.Task, opts Options) (*SimResult, error) {
	_, sim, err := c.PlanAndSimulateContext(ctx, task, opts)
	return sim, err
}

// PlanAndSimulate returns the cached plan and simulation for the task,
// computing and storing them on first use. See the type comment for what
// the cached plan means on a translated hit.
//
// Deprecated: use PlanAndSimulateContext (or a Planner session) so heavy
// searches and coalesced waits stay cancellable.
func (c *PlanCache) PlanAndSimulate(task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	return c.PlanAndSimulateContext(context.Background(), task, opts)
}

// PlanAndSimulateContext returns the cached plan and simulation for the
// task, computing and storing them on first use. The first caller of a key
// (the leader) plans under its own context — a cancelled leader records
// ctx.Err(), which the errored-entry path then forgets like any transient
// failure. Later callers coalesce onto the in-flight computation and wait
// cancellably: a waiter whose context ends returns ctx.Err() at once,
// without disturbing the entry the leader will complete for everyone else.
func (c *PlanCache) PlanAndSimulateContext(ctx context.Context, task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	opts = opts.withDefaults()
	return c.PlanAndSimulateKeyedContext(ctx, CacheKey(task, opts), task, opts)
}

// PlanAndSimulateKeyed is PlanAndSimulateKeyedContext without a context.
//
// Deprecated: use PlanAndSimulateKeyedContext (or a Planner session).
func (c *PlanCache) PlanAndSimulateKeyed(key string, task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	return c.PlanAndSimulateKeyedContext(context.Background(), key, task, opts)
}

// PlanAndSimulateKeyedContext is PlanAndSimulateContext for callers that
// already hold the problem's canonical key — e.g. a server that computed
// it once for request coalescing. opts must be defaulted
// (Options.WithDefaults) and key must equal CacheKey(task, opts);
// rendering the key is the cache-hit fast path's dominant cost, so this
// avoids paying it twice.
func (c *PlanCache) PlanAndSimulateKeyedContext(ctx context.Context, key string, task *sharding.Task, opts Options) (*Plan, *SimResult, error) {
	return c.PlanAndSimulateKeyedFillContext(ctx, key, task, opts, nil)
}

// PlanFill computes a cache entry's plan in place of the default cold
// NewPlanContext — e.g. a warm replan seeded from another overlay's
// incumbent. It may return a trace-free simulation alongside the plan; a
// nil simulation makes the cache simulate the plan itself, in the cache's
// configured trace mode. A fill must produce a plan for the exact
// (task, opts) it was keyed under.
type PlanFill func(ctx context.Context) (*Plan, *SimResult, error)

// PlanAndSimulateKeyedFillContext is PlanAndSimulateKeyedContext with a
// caller-supplied fill for the leader path: when the key misses, fill
// computes the plan instead of NewPlanContext. Hits, coalescing, errored-
// entry forgetting and cancellation behave identically — a fill only ever
// replaces the cold computation, never the caching discipline. A nil fill
// is exactly PlanAndSimulateKeyedContext.
func (c *PlanCache) PlanAndSimulateKeyedFillContext(ctx context.Context, key string, task *sharding.Task, opts Options, fill PlanFill) (*Plan, *SimResult, error) {
	for {
		plan, sim, err := c.planAndSimulateOnce(ctx, key, task, opts, fill)
		// A leader that was cancelled reports its own ctx error to every
		// waiter — but a waiter whose context is still live holds a valid
		// request that was never attempted, and the errored entry has
		// already been forgotten, so the waiter retries and becomes (or
		// joins) a fresh leader instead of inheriting a cancellation that
		// was never its own.
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
			continue
		}
		return plan, sim, err
	}
}

// planAndSimulateOnce runs one lookup-or-lead round; see
// PlanAndSimulateKeyedContext for the retry wrapper.
func (c *PlanCache) planAndSimulateOnce(ctx context.Context, key string, task *sharding.Task, opts Options, fill PlanFill) (*Plan, *SimResult, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	} else {
		e = &cacheEntry{key: key, done: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		if c.lru != nil {
			e.elem = c.lru.PushFront(e)
			for c.lru.Len() > c.capacity {
				victim := c.lru.Remove(c.lru.Back()).(*cacheEntry)
				victim.elem = nil
				delete(c.entries, victim.key)
				c.evictions++
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		// Leader: compute under this caller's context. A panic in planning
		// must not strand the entry's waiters or leave it looking like a
		// successful nil result, so the unwind path records an error (the
		// errored-entry path then forgets the key) and still closes done
		// while the panic propagates to the caller that hit it.
		finished := false
		defer func() {
			if !finished {
				e.plan, e.sim = nil, nil
				e.err = fmt.Errorf("resharding: planning panicked")
				e.ready.Store(true)
				close(e.done)
				c.forget(e)
			}
		}()
		if fill != nil {
			e.plan, e.sim, e.err = fill(ctx)
			// A trace-free fill simulation only satisfies a trace-free
			// cache; a full-trace cache re-simulates the filled plan.
			if e.err == nil && e.sim != nil && !c.noTrace.Load() {
				e.sim = nil
			}
		} else {
			e.plan, e.err = NewPlanContext(ctx, task, opts)
		}
		if e.err == nil && e.sim == nil {
			if c.noTrace.Load() {
				e.sim, e.err = e.plan.SimulateNoTrace()
			} else {
				e.sim, e.err = e.plan.Simulate()
			}
		}
		finished = true
		e.ready.Store(true)
		close(e.done)
		if e.err != nil {
			c.forget(e)
		}
		return e.plan, e.sim, e.err
	}
	if !e.ready.Load() {
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return e.plan, e.sim, e.err
}

// Install inserts an externally computed (plan, simulation) pair as a
// completed entry for key, as if a leader had just filled it. It is the
// import half of the cluster tier's cache transfer: a node that fetched a
// verified plan from a peer — or replayed one from a snapshot — installs
// it so later lookups hit locally. The insert counts as neither a hit nor
// a miss (no lookup happened), respects the LRU bound like any fill, and
// reports false without storing anything when the key is already resident
// (completed or in flight — an in-flight leader will finish its own
// computation and must keep its waiters).
func (c *PlanCache) Install(key string, plan *Plan, sim *SimResult) bool {
	if plan == nil || sim == nil {
		return false
	}
	e := &cacheEntry{key: key, done: make(chan struct{}), plan: plan, sim: sim}
	e.ready.Store(true)
	close(e.done)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = e
	if c.lru != nil {
		e.elem = c.lru.PushFront(e)
		for c.lru.Len() > c.capacity {
			victim := c.lru.Remove(c.lru.Back()).(*cacheEntry)
			victim.elem = nil
			delete(c.entries, victim.key)
			c.evictions++
		}
	}
	return true
}

// ExportedEntry is one completed cache entry surfaced by Export: the key,
// the plan/simulation pair, and whatever sidecar was attached (nil when
// none).
type ExportedEntry struct {
	Key    string
	Plan   *Plan
	Sim    *SimResult
	Attach interface{}
}

// Export snapshots every completed, non-errored entry. On a bounded cache
// the slice is ordered most- to least-recently used, so a consumer that
// persists a prefix keeps the hottest keys; an unbounded cache exports in
// key order. The snapshot is taken under the cache lock but shares the
// entries' plans and simulations — callers must treat them as immutable
// (they already are for every cache user). Recency is not touched: an
// export is an observation, not a use.
func (c *PlanCache) Export() []ExportedEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ExportedEntry, 0, len(c.entries))
	appendEntry := func(e *cacheEntry) {
		if !e.ready.Load() || e.err != nil {
			return
		}
		var att interface{}
		if box, ok := e.attach.Load().(attachBox); ok {
			att = box.v
		}
		out = append(out, ExportedEntry{Key: e.key, Plan: e.plan, Sim: e.sim, Attach: att})
	}
	if c.lru != nil {
		for el := c.lru.Front(); el != nil; el = el.Next() {
			appendEntry(el.Value.(*cacheEntry))
		}
		return out
	}
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		appendEntry(c.entries[k])
	}
	return out
}

// LookupKeyed returns the completed entry for a canonical key without
// planning anything and without ever blocking on an in-flight
// computation: entries still being planned (or whose planning failed)
// report a miss without counting one. Servers use this to serve hot
// cached lookups ahead of admission control, so a hit never queues behind
// slow cold planning work.
func (c *PlanCache) LookupKeyed(key string) (*Plan, *SimResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.ready.Load() || e.err != nil {
		return nil, nil, false
	}
	c.hits++
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	return e.plan, e.sim, true
}

// forget drops an errored entry so the failure is not replayed forever;
// only the exact entry is removed, never a fresh one racing in under the
// same key.
func (c *PlanCache) forget(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
	}
}

// CacheKey renders the canonical identity of a resharding problem: global
// shape and dtype, both mesh layouts with devices rebased to the lowest
// involved host, both specs, the per-host hardware fingerprints and
// pairwise fabric properties of the involved hosts, and every option that
// influences planning or simulation.
func CacheKey(task *sharding.Task, opts Options) string {
	topo := task.Src.Mesh.Topo
	hosts := involvedHosts(topo, task)
	base := hosts[0]
	// Memoize each host's first device index: DevicesOnHost allocates, and
	// the key is computed on every lookup — the cache-hit fast path.
	firstDev := make(map[int]int, len(hosts))
	for _, h := range hosts {
		firstDev[h] = topo.DevicesOnHost(h)[0]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "t=%v/%v;", task.Global, task.DType)
	writeMesh(&b, "s", topo, task.Src, base, firstDev)
	writeMesh(&b, "d", topo, task.Dst, base, firstDev)
	for _, h := range hosts {
		fmt.Fprintf(&b, "h%d[%s];", h-base, mesh.HostFingerprint(topo, h))
	}
	for _, a := range hosts {
		for _, r := range hosts {
			if a == r {
				continue
			}
			fmt.Fprintf(&b, "x%d-%d:%g/%g;", a-base, r-base, topo.InterBandwidth(a, r), topo.InterLatency(a, r))
		}
	}
	fmt.Fprintf(&b, "o=%d/%d/%d/%d/%d/%d/%d", opts.Strategy, opts.Scheduler,
		opts.Chunks, int64(opts.DFSBudget), opts.DFSNodes, opts.Trials, opts.Seed)
	return b.String()
}

// writeMesh renders one placement: mesh shape, spec, and each device as
// (host - base, offset within host).
func writeMesh(b *strings.Builder, tag string, topo mesh.Topology, p *sharding.Placement, base int, firstDev map[int]int) {
	fmt.Fprintf(b, "%s=%v/%s@", tag, p.Mesh.Shape, p.Spec)
	for _, d := range p.Mesh.Devices {
		h := topo.HostOf(d)
		fmt.Fprintf(b, "%d.%d,", h-base, d-firstDev[h])
	}
	b.WriteByte(';')
}

// involvedHosts returns the sorted union of hosts the two meshes span.
func involvedHosts(topo mesh.Topology, task *sharding.Task) []int {
	seen := map[int]bool{}
	var hosts []int
	for _, m := range []*mesh.Mesh{task.Src.Mesh, task.Dst.Mesh} {
		for _, d := range m.Devices {
			h := topo.HostOf(d)
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
	}
	sort.Ints(hosts)
	return hosts
}
