package resharding

import (
	"testing"
)

// TestCacheInstall: an externally obtained plan installed into the cache
// serves later lookups as hits, counts neither hit nor miss itself, and
// never displaces or duplicates an existing entry.
func TestCacheInstall(t *testing.T) {
	c := microCluster(2)
	opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: 1}
	task := autotuneTask(t, c, 0, 4)
	key := CacheKey(task, opts)

	// Source of truth: compute once in a donor cache.
	donor := NewPlanCache()
	plan, sim, err := donor.PlanAndSimulateKeyed(key, task, opts)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewLRUPlanCache(4)
	if cache.Install(key, nil, sim) || cache.Install(key, plan, nil) {
		t.Error("nil plan or sim accepted")
	}
	if !cache.Install(key, plan, sim) {
		t.Fatal("install refused on an empty cache")
	}
	if cache.Install(key, plan, sim) {
		t.Error("second install of a resident key accepted")
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 1 {
		t.Errorf("install must not count as traffic: %+v", st)
	}

	gotPlan, gotSim, ok := cache.LookupKeyed(key)
	if !ok || gotPlan != plan || gotSim != sim {
		t.Fatal("installed entry not served by keyed lookup")
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("lookup of installed entry must hit: %+v", st)
	}
	// The planner path also sees it as a hit: no recomputation.
	if _, _, err := cache.PlanAndSimulateKeyed(key, task, opts); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 0 {
		t.Errorf("plan-and-simulate recomputed an installed entry: %+v", st)
	}
}

// TestCacheInstallRespectsCapacity: installs participate in the LRU bound
// exactly like computed fills — the cache never exceeds capacity.
func TestCacheInstallRespectsCapacity(t *testing.T) {
	c := microCluster(2)
	task := autotuneTask(t, c, 0, 4)
	const capacity = 3
	cache := NewLRUPlanCache(capacity)
	donor := NewPlanCache()
	for i := 0; i < 2*capacity; i++ {
		opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: int64(i + 1)}
		key := CacheKey(task, opts)
		plan, sim, err := donor.PlanAndSimulateKeyed(key, task, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !cache.Install(key, plan, sim) {
			t.Fatalf("install %d refused", i)
		}
		if st := cache.Stats(); st.Entries > capacity {
			t.Fatalf("cache grew to %d entries, capacity %d", st.Entries, capacity)
		}
	}
	if st := cache.Stats(); st.Entries != capacity {
		t.Errorf("entries = %d, want %d", st.Entries, capacity)
	}
	// The most recent installs survived.
	for i := 2*capacity - 1; i >= capacity; i-- {
		opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: int64(i + 1)}
		if _, _, ok := cache.LookupKeyed(CacheKey(task, opts)); !ok {
			t.Errorf("recently installed seed %d evicted", i+1)
		}
	}
}

// TestCacheExport: Export returns every completed entry exactly once —
// MRU first on a bounded cache — with plan, sim and attachment intact.
func TestCacheExport(t *testing.T) {
	c := microCluster(2)
	task := autotuneTask(t, c, 0, 4)
	cache := NewLRUPlanCache(8)
	keys := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: int64(i + 1)}
		key := CacheKey(task, opts)
		if _, _, err := cache.PlanAndSimulateKeyed(key, task, opts); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	cache.Attach(keys[0], "payload-0")

	got := cache.Export()
	if len(got) != 4 {
		t.Fatalf("exported %d entries, want 4", len(got))
	}
	seen := map[string]bool{}
	for i, e := range got {
		if e.Plan == nil || e.Sim == nil {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
		if seen[e.Key] {
			t.Fatalf("key exported twice: %s", e.Key)
		}
		seen[e.Key] = true
	}
	// MRU-first on a bounded cache: last filled comes first.
	for i, e := range got {
		if want := keys[len(keys)-1-i]; e.Key != want {
			t.Errorf("export order[%d] = %s, want %s", i, e.Key, want)
		}
	}
	if got[3].Attach != "payload-0" {
		t.Errorf("attachment not exported: %v", got[3].Attach)
	}

	// Unbounded cache exports everything too (key-sorted for determinism).
	ub := NewPlanCache()
	for i := 0; i < 3; i++ {
		opts := Options{Strategy: Broadcast, Scheduler: SchedEnsemble, Seed: int64(i + 1)}
		if _, _, err := ub.PlanAndSimulateKeyed(CacheKey(task, opts), task, opts); err != nil {
			t.Fatal(err)
		}
	}
	ue := ub.Export()
	if len(ue) != 3 {
		t.Fatalf("unbounded export = %d entries, want 3", len(ue))
	}
	for i := 1; i < len(ue); i++ {
		if ue[i-1].Key >= ue[i].Key {
			t.Errorf("unbounded export not key-sorted at %d", i)
		}
	}

	if n := len(NewPlanCache().Export()); n != 0 {
		t.Errorf("empty cache exported %d entries", n)
	}
}
