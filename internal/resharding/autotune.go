package resharding

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"alpacomm/internal/sharding"
)

// AutotuneCandidate is one point of the autotuner's strategy x scheduler
// grid.
type AutotuneCandidate struct {
	Strategy  Strategy
	Scheduler Scheduler
}

func (c AutotuneCandidate) String() string {
	return fmt.Sprintf("%s+%s", c.Strategy, c.Scheduler)
}

// DefaultAutotuneGrid returns the full candidate grid: every real transfer
// strategy crossed with every scheduler. Signal is excluded — it is the
// hypothetical lower bound, not an executable configuration.
func DefaultAutotuneGrid() []AutotuneCandidate {
	strategies := []Strategy{SendRecv, LocalAllGather, GlobalAllGather, Broadcast, Alpa}
	schedulers := []Scheduler{SchedNaive, SchedGreedyLoad, SchedLoadBalanceOnly, SchedEnsemble}
	grid := make([]AutotuneCandidate, 0, len(strategies)*len(schedulers))
	for _, st := range strategies {
		for _, sc := range schedulers {
			grid = append(grid, AutotuneCandidate{Strategy: st, Scheduler: sc})
		}
	}
	return grid
}

// DefaultAutotuneDFSNodes is the deterministic DFS budget the autotuner
// applies when the caller did not set Options.DFSNodes: wall-clock DFS
// budgets would make the winner depend on machine speed and concurrency.
const DefaultAutotuneDFSNodes = 50000

// AutotuneOptions configures an autotuning run.
type AutotuneOptions struct {
	// Base supplies the options shared by all candidates (chunks, trials,
	// seed, budgets); each candidate overrides Strategy and Scheduler and
	// derives its own RNG seed from Base.Seed and its grid position. If
	// Base.DFSNodes is zero it is set to DefaultAutotuneDFSNodes so the
	// search is deterministic.
	Base Options
	// Candidates is the grid to search; nil means DefaultAutotuneGrid.
	Candidates []AutotuneCandidate
	// Workers bounds the planning/simulation concurrency; <= 0 means
	// GOMAXPROCS. The result is identical for every worker count.
	Workers int
	// Cache, when non-nil, memoizes each candidate's plan and simulation —
	// autotuning the structurally identical boundaries of a pipeline then
	// costs one grid sweep total instead of one per boundary.
	Cache *PlanCache
}

// AutotuneTrial reports one candidate's outcome.
type AutotuneTrial struct {
	Candidate AutotuneCandidate
	// Makespan is the candidate's simulated completion time, seconds.
	Makespan float64
	// EffectiveGbps is the candidate's effective bandwidth.
	EffectiveGbps float64
	// Err is the planning/simulation error, if any ("" on success).
	Err string
}

// AutotuneResult is the outcome of an autotuning run.
type AutotuneResult struct {
	// Best is the winning plan (lowest simulated makespan; ties broken by
	// grid position). On a cache hit its devices may be translated relative
	// to the task's meshes — see PlanCache.
	Best *Plan
	// BestSim is the winning plan's simulation.
	BestSim *SimResult
	// BestIndex is the winner's index into the candidate grid.
	BestIndex int
	// Trials reports every candidate in grid order.
	Trials []AutotuneTrial
}

// deriveSeed gives candidate i its own RNG stream: a fixed odd multiplier
// (splitmix64's golden-gamma) keeps streams disjoint for any base seed
// while remaining a pure function of (base, i).
func deriveSeed(base int64, i int) int64 {
	return base ^ (int64(i+1) * -0x61c8864680b583eb)
}

// Autotune searches the strategy x scheduler grid for the fastest plan of
// one resharding task, fanning candidates out over a bounded worker pool.
//
// The search is deterministic under a fixed Base.Seed: every candidate
// plans with its own derived RNG and a node-budgeted DFS, candidates are
// evaluated independently, and the winner is picked by (makespan, grid
// position) — so the result does not depend on the worker count or on
// scheduling order.
//
// Deprecated: use AutotuneContext (or a Planner session) so a queued or
// running grid search can be aborted by a deadline or disconnect.
func Autotune(task *sharding.Task, opts AutotuneOptions) (*AutotuneResult, error) {
	return AutotuneContext(context.Background(), task, opts)
}

// AutotuneContext is Autotune with cooperative cancellation: the context
// is checked between candidates (a worker never starts a new grid cell
// once it fires) and polled inside each candidate's DFS between
// node-budget slices, so cancellation returns ctx.Err() within one slice's
// worth of work with every worker goroutine joined. A context that never
// fires yields a result bit-identical to Autotune's.
func AutotuneContext(ctx context.Context, task *sharding.Task, opts AutotuneOptions) (*AutotuneResult, error) {
	cands := opts.Candidates
	if cands == nil {
		cands = DefaultAutotuneGrid()
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("resharding: autotune needs at least one candidate")
	}
	base := opts.Base.withDefaults()
	if base.DFSNodes == 0 {
		base.DFSNodes = DefaultAutotuneDFSNodes
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	type outcome struct {
		plan *Plan
		sim  *SimResult
		err  error
	}
	outcomes := make([]outcome, len(cands))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					// Drain without starting new candidates so the feeder
					// never blocks; the joined result reports ctx.Err().
					continue
				}
				o := candidateOptions(base, cands[i], i)
				var out outcome
				if opts.Cache != nil {
					out.plan, out.sim, out.err = opts.Cache.PlanAndSimulateKeyedContext(ctx, CacheKey(task, o), task, o)
				} else {
					out.plan, out.err = NewPlanContext(ctx, task, o)
					if out.err == nil {
						// Trials only compare timings; the winner is
						// re-simulated with a full trace below.
						out.sim, out.err = out.plan.SimulateNoTrace()
					}
				}
				outcomes[i] = out
			}
		}()
	}
	for i := range cands {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &AutotuneResult{BestIndex: -1, Trials: make([]AutotuneTrial, len(cands))}
	for i, out := range outcomes {
		trial := AutotuneTrial{Candidate: cands[i]}
		if out.err != nil {
			trial.Err = out.err.Error()
		} else {
			trial.Makespan = out.sim.Makespan
			trial.EffectiveGbps = out.sim.EffectiveGbps
			if res.BestIndex < 0 || out.sim.Makespan < res.BestSim.Makespan {
				res.Best, res.BestSim, res.BestIndex = out.plan, out.sim, i
			}
		}
		res.Trials[i] = trial
	}
	if res.BestIndex < 0 {
		return nil, fmt.Errorf("resharding: autotune: every candidate failed (first: %s)", res.Trials[0].Err)
	}
	if res.BestSim.Events == nil && res.BestSim.Utilization == nil {
		// Trials ran trace-free; give the winner its full Events timeline
		// and utilization report. The simulator is deterministic, so the
		// timings are the ones the trial measured.
		sim, err := res.Best.Simulate()
		if err != nil {
			return nil, fmt.Errorf("resharding: autotune: re-simulating winner: %v", err)
		}
		res.BestSim = sim
	}
	return res, nil
}

// candidateOptions specialises the base options for grid position i.
func candidateOptions(base Options, c AutotuneCandidate, i int) Options {
	o := base
	o.Strategy = c.Strategy
	o.Scheduler = c.Scheduler
	o.Seed = deriveSeed(base.Seed, i)
	return o
}
