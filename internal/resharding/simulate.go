package resharding

import (
	"fmt"

	"alpacomm/internal/netsim"
)

// SimResult reports the simulated execution of a plan.
type SimResult struct {
	// Makespan is the completion time of the last unit task, seconds.
	Makespan float64
	// EffectiveGbps is the paper's figure-of-merit: total tensor bits
	// divided by the makespan (Figs. 5, 6, 8).
	EffectiveGbps float64
	// NumOps is the number of transfer ops issued.
	NumOps int
	// Events is the full op trace, for timeline rendering.
	Events []netsim.Event
	// Utilization maps resource name to busy fraction.
	Utilization map[string]float64
}

// Simulate times the plan on the cluster's network model. Unit tasks that
// share a sender host (send side) or a receiver host (receive side) are
// serialized in plan order per Eq. 3; everything else proceeds in parallel
// at chunk granularity.
func (p *Plan) Simulate() (*SimResult, error) {
	cluster := p.Task.Src.Mesh.Topo
	net := netsim.NewClusterNet(cluster)
	// lastUse[key] holds the completion ops of the previous unit task that
	// occupied the host-side resource identified by key.
	lastUse := map[string][]netsim.OpID{}
	for pos, idx := range p.Order {
		u := p.Task.Units[idx]
		sender, ok := p.SenderOf[idx]
		if !ok {
			return nil, fmt.Errorf("resharding: no sender assigned for unit %d", idx)
		}
		keys := exclusivityKeys(cluster.HostOf(sender), p.Task.ReceiverHosts(u))
		var deps []netsim.OpID
		for _, k := range keys {
			deps = append(deps, lastUse[k]...)
		}
		done, err := buildUnitOps(net, p.Opts, fmt.Sprintf("u%d", idx), sender, u.Receivers,
			u.Slice.NumElements(), u.Bytes(p.Task.DType), pos, deps)
		if err != nil {
			return nil, fmt.Errorf("resharding: unit %d: %v", idx, err)
		}
		for _, k := range keys {
			lastUse[k] = done
		}
	}
	makespan, err := net.Run()
	if err != nil {
		return nil, err
	}
	res := &SimResult{
		Makespan:    makespan,
		NumOps:      net.Sim.NumOps(),
		Events:      net.Sim.Events(),
		Utilization: net.Sim.Utilization(),
	}
	if makespan > 0 {
		res.EffectiveGbps = float64(p.Task.TotalBytes()) * 8 / makespan / 1e9
	}
	return res, nil
}

// exclusivityKeys identifies the host-side resources a unit task occupies
// for Eq. 3 serialization: the sender host's send side and each receiver
// host's receive side.
func exclusivityKeys(senderHost int, receiverHosts []int) []string {
	keys := []string{fmt.Sprintf("s%d", senderHost)}
	for _, h := range receiverHosts {
		keys = append(keys, fmt.Sprintf("r%d", h))
	}
	return keys
}
