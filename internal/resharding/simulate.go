package resharding

import (
	"fmt"
	"strconv"
	"sync"

	"alpacomm/internal/mesh"
	"alpacomm/internal/netsim"
)

// SimResult reports the simulated execution of a plan.
type SimResult struct {
	// Makespan is the completion time of the last unit task, seconds.
	Makespan float64
	// EffectiveGbps is the paper's figure-of-merit: total tensor bits
	// divided by the makespan (Figs. 5, 6, 8).
	EffectiveGbps float64
	// NumOps is the number of transfer ops issued.
	NumOps int
	// Events is the full op trace, for timeline rendering.
	Events []netsim.Event
	// Utilization maps resource name to busy fraction.
	Utilization map[string]float64
}

// PlanBuilder is a reusable simulation context: a ClusterNet whose op and
// resource arenas are rewound (not freed) between plans, plus the scratch
// state of Eq. 3 exclusivity chaining. One builder simulates any number of
// plans sequentially with near-zero steady-state allocation; it is not safe
// for concurrent use. Plan.Simulate draws builders from an internal
// sync.Pool, so autotune workers and serving-cache misses replay warm
// arenas automatically; embedders that simulate many plans on one
// goroutine can hold a builder explicitly via AcquirePlanBuilder.
type PlanBuilder struct {
	net *netsim.ClusterNet
	// lastSend[h] / lastRecv[h] hold the completion ops of the previous
	// unit task that occupied host h's send / receive side (Eq. 3).
	lastSend map[int][]netsim.OpID
	lastRecv map[int][]netsim.OpID
	deps     []netsim.OpID
	// labels memoizes the "u<idx>" unit labels so repeated simulations on
	// a pooled builder stop re-rendering the same strings.
	labels []string
}

// unitLabel returns the memoized label for unit idx.
func (b *PlanBuilder) unitLabel(idx int) string {
	for idx >= len(b.labels) {
		b.labels = append(b.labels, "u"+strconv.Itoa(len(b.labels)))
	}
	return b.labels[idx]
}

// NewPlanBuilder returns an empty builder.
func NewPlanBuilder() *PlanBuilder {
	return &PlanBuilder{
		lastSend: map[int][]netsim.OpID{},
		lastRecv: map[int][]netsim.OpID{},
	}
}

var planBuilderPool = sync.Pool{New: func() interface{} { return NewPlanBuilder() }}

// AcquirePlanBuilder takes a builder from the shared pool.
func AcquirePlanBuilder() *PlanBuilder {
	return planBuilderPool.Get().(*PlanBuilder)
}

// Release returns the builder to the shared pool.
func (b *PlanBuilder) Release() {
	planBuilderPool.Put(b)
}

// bind points the builder's net at the topology, reusing the existing
// arenas when the topology is unchanged and rebuilding them otherwise.
func (b *PlanBuilder) bind(topo mesh.Topology) *netsim.ClusterNet {
	if b.net != nil && mesh.SameTopology(b.net.Topo, topo) {
		b.net.Reset()
	} else {
		b.net = netsim.NewClusterNet(topo)
	}
	clear(b.lastSend)
	clear(b.lastRecv)
	return b.net
}

// Simulate times the plan on the cluster's network model. Unit tasks that
// share a sender host (send side) or a receiver host (receive side) are
// serialized in plan order per Eq. 3; everything else proceeds in parallel
// at chunk granularity.
func (p *Plan) Simulate() (*SimResult, error) {
	b := AcquirePlanBuilder()
	defer b.Release()
	return p.SimulateWith(b)
}

// SimulateNoTrace is Simulate without rendering the Events timeline or the
// Utilization report (both nil in the result). Timing fields are identical
// to Simulate's; rendering is the only per-op string work left in the
// simulation path, so sweeps that only compare makespans — autotune trials,
// load tests — use this to stay allocation-free.
func (p *Plan) SimulateNoTrace() (*SimResult, error) {
	b := AcquirePlanBuilder()
	defer b.Release()
	return p.simulateWith(b, false)
}

// SimulateWith is Simulate on an explicitly held builder, for callers that
// simulate many plans on one goroutine and want to keep the arena warm
// without round-tripping the pool.
func (p *Plan) SimulateWith(b *PlanBuilder) (*SimResult, error) {
	return p.simulateWith(b, true)
}

//alpacomm:hotpath
func (p *Plan) simulateWith(b *PlanBuilder, trace bool) (*SimResult, error) {
	cluster := p.Task.Src.Mesh.Topo
	net := b.bind(cluster)
	for pos, idx := range p.Order {
		u := p.Task.Units[idx]
		sender, ok := p.SenderOf[idx]
		if !ok {
			return nil, fmt.Errorf("resharding: no sender assigned for unit %d", idx)
		}
		senderHost := cluster.HostOf(sender)
		recvHosts := p.Task.ReceiverHosts(u)
		deps := b.deps[:0]
		deps = append(deps, b.lastSend[senderHost]...)
		for _, h := range recvHosts {
			deps = append(deps, b.lastRecv[h]...)
		}
		b.deps = deps
		done, err := buildUnitOps(net, p.Opts, b.unitLabel(idx), sender, u.Receivers,
			u.Slice.NumElements(), u.Bytes(p.Task.DType), pos, deps)
		if err != nil {
			return nil, fmt.Errorf("resharding: unit %d: %v", idx, err)
		}
		b.lastSend[senderHost] = done
		for _, h := range recvHosts {
			b.lastRecv[h] = done
		}
	}
	makespan, err := net.Run()
	if err != nil {
		return nil, err
	}
	res := &SimResult{
		Makespan: makespan,
		NumOps:   net.Sim.NumOps(),
	}
	if trace {
		res.Events = net.Sim.Events()
		res.Utilization = net.Sim.Utilization()
	}
	if makespan > 0 {
		res.EffectiveGbps = float64(p.Task.TotalBytes()) * 8 / makespan / 1e9
	}
	return res, nil
}
