package resharding

import (
	"math/rand"
	"reflect"
	"testing"

	"alpacomm/internal/mesh"
	"alpacomm/internal/sharding"
	"alpacomm/internal/tensor"
)

// Property-based fuzzing of the degraded-topology scenario engine. Two
// seeds drive deterministic generators (so the corpus replays bit-
// identically): one shapes a random heterogeneous topology plus a random
// stage boundary, the other a random fault overlay. The properties:
//
//  1. Replayability — any valid (topology, overlay, boundary) triple
//     yields a plan that simulates in netsim without error.
//  2. Determinism — planning and simulating twice is byte-identical.
//  3. Monotonicity — the degraded plan, replayed transfer-for-transfer
//     on the healthy base topology, never gets slower: every overlay only
//     scales bandwidth down, adds latency, or detours a down link with
//     bandwidth capped at (and latency floored at) the direct link's, so
//     the degraded makespan can never beat the healthy replay. This is
//     the rigorous form of "bandwidth-only degradations never beat the
//     healthy makespan": the comparison holds the plan fixed, which is
//     what makes it provable (the generator keeps every host single-NIC
//     and plans with the broadcast strategy, so all resource-sharing ops
//     are dependency-ordered and netsim's makespan is monotone in
//     per-transfer durations).
//  4. Identity — the empty overlay leaves the canonical cache key
//     byte-identical to the unwrapped topology's.
//
// Run the seeded corpus with `go test`; explore with
// `go test -fuzz FuzzDegradedPlan -fuzztime 10s ./internal/resharding`.

// fuzzTopology derives a 2-4 host single-NIC heterogeneous cluster from
// the rng: per-host device counts and bandwidth tiers vary, NIC counts
// stay 1 (see property 3 above).
func fuzzTopology(rng *rand.Rand) *mesh.HeteroCluster {
	hosts := 2 + rng.Intn(3)
	intraTiers := []float64{50e9, 150e9, 600e9}
	nicTiers := []float64{1.25e9, 3.125e9, 12.5e9, 25e9}
	specs := make([]mesh.HostSpec, hosts)
	for h := range specs {
		specs[h] = mesh.HostSpec{
			Devices:        1 + rng.Intn(4),
			IntraBandwidth: intraTiers[rng.Intn(len(intraTiers))],
			IntraLatency:   float64(rng.Intn(3)) * 2e-6,
			NICBandwidth:   nicTiers[rng.Intn(len(nicTiers))],
			NICs:           1,
		}
	}
	oversubs := []float64{1, 1.5, 2}
	return mesh.MustHeteroCluster(specs, float64(1+rng.Intn(3))*10e-6, oversubs[rng.Intn(len(oversubs))])
}

// fuzzBoundary derives a random stage boundary on the topology: two
// disjoint contiguous device runs viewed as rank-1 meshes, a small 2-d
// tensor, and random (possibly uneven) spec pairs. Returns nil when the
// topology is too small for two meshes.
func fuzzBoundary(rng *rand.Rand, topo mesh.Topology, tb testing.TB) *sharding.Task {
	d := topo.NumDevices()
	if d < 2 {
		return nil
	}
	srcN := 1 + rng.Intn(d-1)
	dstN := 1 + rng.Intn(d-srcN)
	src, err := topo.Slice([]int{srcN}, 0)
	if err != nil {
		tb.Fatalf("src slice: %v", err)
	}
	dst, err := topo.Slice([]int{dstN}, srcN)
	if err != nil {
		tb.Fatalf("dst slice: %v", err)
	}
	dims := []int{8, 12, 16, 24, 64}
	shape := tensor.MustShape(dims[rng.Intn(len(dims))], dims[rng.Intn(len(dims))])
	specNames := []string{"RR", "S0R", "RS0"}
	srcSpec := sharding.MustParse(specNames[rng.Intn(len(specNames))])
	dstSpec := sharding.MustParse(specNames[rng.Intn(len(specNames))])
	task, err := sharding.NewTask(shape, tensor.Float32, src, srcSpec, dst, dstSpec)
	if err != nil {
		// Some random spec pairs are unbuildable; the generator just
		// declines them.
		return nil
	}
	return task
}

// fuzzFaultSet derives a random overlay: per-pair link faults (scaled,
// latency-inflated, or — when the fabric can detour — down) and per-host
// straggler faults. Every generated fault degrades something, but the
// set may still be rejected by NewFaulted (e.g. down links isolating a
// host); callers skip those.
func fuzzFaultSet(rng *rand.Rand, hosts int) mesh.FaultSet {
	scales := []float64{0.25, 0.5, 0.75}
	var fs mesh.FaultSet
	for a := 0; a < hosts; a++ {
		for b := a + 1; b < hosts; b++ {
			switch rng.Intn(5) {
			case 0:
				if hosts >= 3 {
					fs.Links = append(fs.Links, mesh.LinkFault{A: a, B: b, Down: true})
				}
			case 1:
				fs.Links = append(fs.Links, mesh.LinkFault{A: a, B: b, BandwidthScale: scales[rng.Intn(len(scales))]})
			case 2:
				fs.Links = append(fs.Links, mesh.LinkFault{
					A: a, B: b,
					BandwidthScale: scales[rng.Intn(len(scales))],
					ExtraLatency:   float64(1+rng.Intn(5)) * 10e-6,
				})
			}
		}
	}
	for h := 0; h < hosts; h++ {
		if rng.Intn(3) == 0 {
			fs.Hosts = append(fs.Hosts, mesh.HostFault{
				Host:       h,
				NICScale:   scales[rng.Intn(len(scales))],
				IntraScale: scales[rng.Intn(len(scales))],
			})
		}
	}
	return fs
}

func FuzzDegradedPlan(f *testing.F) {
	for _, seed := range [][2]int64{
		{1, 1}, {2, 7}, {3, 13}, {5, 77}, {8, 123}, {11, 999}, {42, 4242}, {17, 31},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, topoSeed, faultSeed int64) {
		trng := rand.New(rand.NewSource(topoSeed))
		topo := fuzzTopology(trng)
		task := fuzzBoundary(trng, topo, t)
		if task == nil {
			t.Skip("unbuildable boundary")
		}
		frng := rand.New(rand.NewSource(faultSeed))
		fs := fuzzFaultSet(frng, topo.HostCount())
		ft, err := mesh.NewFaulted(topo, fs)
		if err != nil {
			t.Skip("overlay rejected (e.g. down links isolate a host)")
		}
		opts := Options{
			Strategy: Broadcast, Scheduler: SchedEnsemble,
			Seed: faultSeed, DFSNodes: 2000, Trials: 8, Chunks: 4,
		}.withDefaults()

		degTask, err := task.OnTopology(ft)
		if err != nil {
			t.Fatalf("rebind onto overlay: %v", err)
		}

		// 1. Replayability.
		plan, err := NewPlan(degTask, opts)
		if err != nil {
			t.Fatalf("degraded plan: %v (topo %v, faults %q)", err, topo, fs.Canonical())
		}
		sim, err := plan.Simulate()
		if err != nil {
			t.Fatalf("degraded simulate: %v (topo %v, faults %q)", err, topo, fs.Canonical())
		}

		// 2. Determinism.
		plan2, err := NewPlan(degTask, opts)
		if err != nil {
			t.Fatal(err)
		}
		sim2, err := plan2.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan.SenderOf, plan2.SenderOf) || !reflect.DeepEqual(plan.Order, plan2.Order) {
			t.Fatalf("degraded plan not deterministic (faults %q)", fs.Canonical())
		}
		if sim.Makespan != sim2.Makespan || sim.NumOps != sim2.NumOps {
			t.Fatalf("degraded simulation not deterministic: %g/%d vs %g/%d",
				sim.Makespan, sim.NumOps, sim2.Makespan, sim2.NumOps)
		}

		// 3. Monotonicity: the identical schedule on the healthy base can
		// only be faster (or equal).
		healthyReplay := &Plan{Task: task, Opts: opts, SenderOf: plan.SenderOf, Order: plan.Order}
		baseSim, err := healthyReplay.Simulate()
		if err != nil {
			t.Fatalf("healthy replay: %v", err)
		}
		if baseSim.Makespan > sim.Makespan {
			t.Fatalf("degraded makespan %.12g beats the healthy replay %.12g (faults %q)",
				sim.Makespan, baseSim.Makespan, fs.Canonical())
		}

		// 4. Identity: an empty overlay leaves the cache key untouched.
		emptyWrap, err := mesh.NewFaulted(topo, mesh.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		idTask, err := task.OnTopology(emptyWrap)
		if err != nil {
			t.Fatal(err)
		}
		if CacheKey(idTask, opts) != CacheKey(task, opts) {
			t.Fatal("empty overlay changed the canonical cache key")
		}
	})
}
