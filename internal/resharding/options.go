// Package resharding is the paper's core contribution: planning, timing
// and executing cross-mesh resharding tasks.
//
// A sharding.Task (the decomposition into unit communication tasks) is
// turned into a Plan by choosing a communication strategy (§3.1), a sender
// per unit task and a launch order (§3.2). The Plan can then be simulated
// on the netsim cluster model to obtain completion time and effective
// bandwidth, and executed on the tensor data plane to verify that every
// destination device receives exactly the bytes its spec requires.
package resharding

import (
	"fmt"
	"time"
)

// Strategy selects how one unit communication task is carried out (§3.1).
type Strategy int

const (
	// SendRecv is the naive baseline (Fig. 3a): the sender transmits a
	// full copy to every receiver device, one by one.
	SendRecv Strategy = iota
	// LocalAllGather (Fig. 3b): the sender scatters 1/B of the slice to
	// each device of a receiver host, which then all-gathers over fast
	// intra-host links. One copy crosses the network per receiver host.
	LocalAllGather
	// GlobalAllGather (Fig. 3c): the sender scatters 1/(A·B) to every
	// receiver device, followed by one global ring all-gather.
	GlobalAllGather
	// Broadcast (Fig. 3d) is the paper's strategy: a pipelined chunked
	// chain through all receivers, provably within t·(K+hops)/K of the
	// lower bound t.
	Broadcast
	// Alpa models the all-gather-based baseline used by Alpa/Megatron-LM:
	// like the all-gather strategies but it cannot handle uneven
	// partitions and falls back to SendRecv when slice sizes do not divide
	// evenly (§5.1.1), and its scatter and all-gather phases are separate
	// launches (no pipelining between them).
	Alpa
	// Signal is the hypothetical upper bound (§4): every unit task ships a
	// single byte, preserving dependencies while removing almost all cost.
	Signal
)

func (s Strategy) String() string {
	switch s {
	case SendRecv:
		return "send/recv"
	case LocalAllGather:
		return "send/recv+local-allgather"
	case GlobalAllGather:
		return "send/recv+global-allgather"
	case Broadcast:
		return "broadcast"
	case Alpa:
		return "alpa"
	case Signal:
		return "signal"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy parses a strategy name as used on command lines and in the
// plan-serving API. The empty string is the default strategy (Broadcast).
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "send-recv", "send/recv":
		return SendRecv, nil
	case "local-allgather":
		return LocalAllGather, nil
	case "global-allgather":
		return GlobalAllGather, nil
	case "broadcast", "":
		return Broadcast, nil
	case "alpa":
		return Alpa, nil
	case "signal":
		return Signal, nil
	default:
		return 0, fmt.Errorf("resharding: unknown strategy %q (want send-recv, local-allgather, global-allgather, broadcast, alpa or signal)", s)
	}
}

// Scheduler selects the §3.2 load-balancing/ordering algorithm.
type Scheduler int

const (
	// SchedNaive: lowest-indexed candidate sender, unit-task order.
	SchedNaive Scheduler = iota
	// SchedGreedyLoad: pick the sender with the lowest committed load for
	// each slice in order — the baseline systems' load balancing (§5.1.2).
	SchedGreedyLoad
	// SchedLoadBalanceOnly: LPT greedy over Eq. 4 (the "Load balance only"
	// ablation of Fig. 8).
	SchedLoadBalanceOnly
	// SchedEnsemble: best of naive, LPT, randomized-greedy and (small
	// problems) DFS-with-pruning — AlpaComm's configuration.
	SchedEnsemble
	// SchedDegraded: the search-free ensemble (best of naive, LPT and
	// greedy-load; no DFS, no randomized trials). This is what the serving
	// tier's SLO-aware admission controller plans with when the p99 budget
	// is at risk: bounded, seed-independent work per request. Because the
	// scheduler is part of CacheKey, degraded plans partition under their
	// own cache keys and never pollute full-quality entries.
	SchedDegraded
)

func (s Scheduler) String() string {
	switch s {
	case SchedNaive:
		return "naive"
	case SchedGreedyLoad:
		return "greedy-load"
	case SchedLoadBalanceOnly:
		return "loadbalance-only"
	case SchedEnsemble:
		return "ensemble"
	case SchedDegraded:
		return "greedy-degraded"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// ParseScheduler parses a scheduler name as used on command lines and in
// the plan-serving API. The empty string is the default scheduler
// (SchedEnsemble).
func ParseScheduler(s string) (Scheduler, error) {
	switch s {
	case "naive":
		return SchedNaive, nil
	case "greedy-load":
		return SchedGreedyLoad, nil
	case "loadbalance", "loadbalance-only":
		return SchedLoadBalanceOnly, nil
	case "ensemble", "":
		return SchedEnsemble, nil
	case "greedy-degraded":
		return SchedDegraded, nil
	default:
		return 0, fmt.Errorf("resharding: unknown scheduler %q (want naive, greedy-load, loadbalance, loadbalance-only, ensemble or greedy-degraded)", s)
	}
}

// Options configures planning.
type Options struct {
	// Strategy for unit tasks. Default Broadcast.
	Strategy Strategy
	// Scheduler for load balance and ordering. Default SchedEnsemble.
	Scheduler Scheduler
	// Chunks is the broadcast pipelining depth; 0 picks
	// collective.DefaultChunks per message.
	Chunks int
	// DFSBudget bounds the DFS search (default 50ms).
	DFSBudget time.Duration
	// DFSNodes, when positive, replaces the wall-clock DFSBudget with a
	// deterministic node budget: the DFS explores at most DFSNodes search
	// states. Required for bit-reproducible ensemble plans (the autotuner
	// sets it so results do not depend on machine speed or concurrency).
	DFSNodes int
	// Trials is the randomized-greedy trial count (default 32).
	Trials int
	// Seed makes the randomized scheduler deterministic.
	Seed int64
}

// WithDefaults returns the options with unset fields replaced by the
// package defaults (DFSBudget 50ms, Trials 32). PlanCache keys are
// computed over defaulted options, so callers that need the canonical
// CacheKey of a request should default it the same way.
func (o Options) WithDefaults() Options {
	if o.DFSBudget == 0 {
		o.DFSBudget = 50 * time.Millisecond
	}
	if o.Trials == 0 {
		o.Trials = 32
	}
	return o
}

func (o Options) withDefaults() Options { return o.WithDefaults() }
