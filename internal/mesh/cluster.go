// Package mesh models the hardware the paper runs on: a cluster of hosts,
// each with several accelerator devices, fast intra-host interconnect
// (NVLink) and a single slower NIC per host (§3's cluster properties), and
// device meshes sliced out of the cluster for pipeline stages.
package mesh

import "fmt"

// Cluster describes a homogeneous accelerator cluster.
//
// The model captures exactly the four properties §3 of the paper assumes:
// fast intra-node / slow inter-node links, a fully connected inter-node
// fabric, a single NIC per host that bottlenecks cross-host traffic, and
// full-duplex (separate send/receive) bandwidth everywhere.
type Cluster struct {
	// NumHosts is the number of nodes.
	NumHosts int
	// DevicesPerHost is the number of accelerators per node.
	DevicesPerHost int
	// IntraHostBandwidth is the device-to-device bandwidth within a node,
	// in bytes/second per direction (NVLink-class).
	IntraHostBandwidth float64
	// HostBandwidth is the NIC bandwidth of one host, in bytes/second per
	// direction (Ethernet/InfiniBand-class).
	HostBandwidth float64
	// IntraHostLatency is the fixed per-transfer latency within a node, in
	// seconds.
	IntraHostLatency float64
	// InterHostLatency is the fixed per-transfer latency across nodes, in
	// seconds.
	InterHostLatency float64
	// NICsPerHost is the number of independent NICs per host, each with
	// HostBandwidth in both directions. Zero means one (the common cloud
	// setup, §3); values above one enable the paper's future-work
	// extension of splitting a unit task across NICs.
	NICsPerHost int
}

// NICs returns the effective NIC count per host (at least one).
func (c *Cluster) NICs() int {
	if c.NICsPerHost < 1 {
		return 1
	}
	return c.NICsPerHost
}

// WithNICs returns a copy of the cluster with n NICs per host.
func (c *Cluster) WithNICs(n int) *Cluster {
	cp := *c
	cp.NICsPerHost = n
	return &cp
}

// NewCluster validates and builds a cluster.
func NewCluster(hosts, devicesPerHost int, intraBW, hostBW, intraLat, interLat float64) (*Cluster, error) {
	switch {
	case hosts <= 0:
		return nil, fmt.Errorf("mesh: non-positive host count %d", hosts)
	case devicesPerHost <= 0:
		return nil, fmt.Errorf("mesh: non-positive devices per host %d", devicesPerHost)
	case intraBW <= 0 || hostBW <= 0:
		return nil, fmt.Errorf("mesh: bandwidths must be positive (intra=%g host=%g)", intraBW, hostBW)
	case intraLat < 0 || interLat < 0:
		return nil, fmt.Errorf("mesh: latencies must be non-negative")
	}
	return &Cluster{
		NumHosts:           hosts,
		DevicesPerHost:     devicesPerHost,
		IntraHostBandwidth: intraBW,
		HostBandwidth:      hostBW,
		IntraHostLatency:   intraLat,
		InterHostLatency:   interLat,
	}, nil
}

// AWS p3.8xlarge-like constants used throughout the paper's evaluation:
// 4 V100s per node with NVLink, 10 Gbps Ethernet between nodes.
const (
	// P3IntraHostBandwidth is an effective NVLink bandwidth (bytes/s).
	P3IntraHostBandwidth = 150e9
	// P3HostBandwidth is 10 Gbps in bytes/s.
	P3HostBandwidth = 10e9 / 8
	// P3IntraHostLatency is the per-transfer launch overhead within a node.
	P3IntraHostLatency = 5e-6
	// P3InterHostLatency is the per-transfer latency across Ethernet.
	P3InterHostLatency = 30e-6
)

// AWSP3Cluster builds the paper's testbed: hosts × 4 GPUs, NVLink inside,
// 10 Gbps between hosts.
func AWSP3Cluster(hosts int) *Cluster {
	c, err := NewCluster(hosts, 4, P3IntraHostBandwidth, P3HostBandwidth, P3IntraHostLatency, P3InterHostLatency)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return c
}

// NumDevices returns the total device count of the cluster.
func (c *Cluster) NumDevices() int { return c.NumHosts * c.DevicesPerHost }

// HostOf returns the host index that owns a device.
func (c *Cluster) HostOf(device int) int { return device / c.DevicesPerHost }

// ValidDevice reports whether the device index exists in the cluster.
func (c *Cluster) ValidDevice(device int) bool {
	return device >= 0 && device < c.NumDevices()
}

// SameHost reports whether two devices share a host.
func (c *Cluster) SameHost(a, b int) bool { return c.HostOf(a) == c.HostOf(b) }

// DevicesOnHost returns the device indices of one host.
func (c *Cluster) DevicesOnHost(host int) []int {
	out := make([]int, c.DevicesPerHost)
	for i := range out {
		out[i] = host*c.DevicesPerHost + i
	}
	return out
}

func (c *Cluster) String() string {
	if c.NICs() > 1 {
		return fmt.Sprintf("cluster(%d hosts x %d devices, intra %.0fGB/s, %d NICs x %.1fGbps)",
			c.NumHosts, c.DevicesPerHost, c.IntraHostBandwidth/1e9, c.NICs(), c.HostBandwidth*8/1e9)
	}
	return fmt.Sprintf("cluster(%d hosts x %d devices, intra %.0fGB/s, NIC %.1fGbps)",
		c.NumHosts, c.DevicesPerHost, c.IntraHostBandwidth/1e9, c.HostBandwidth*8/1e9)
}
